// Reproduces Fig. 4: power decomposition of the RISC-V and ARM-M0 cores
// running Dhrystone and Coremark in the FF, master-slave, and 3-phase
// styles (the paper reports 15.6%/21.2% savings for RISC-V and 8.3%/20.1%
// for ARM-M0 vs FF and M-S respectively). Both workload sweeps run as one
// task wave on the flow-matrix engine.
//
//   $ ./bench/fig4_cpu_workloads [--cycles N] [--threads N] [--lanes N]
#include <cstdio>

#include "bench/paper_reference.hpp"
#include "src/flow/matrix.hpp"
#include "src/util/argparse.hpp"
#include "src/util/executor.hpp"

using namespace tp;
using namespace tp::flow;

int main(int argc, char** argv) {
  std::size_t cycles = 192, threads = 0, lanes = 1;
  util::ArgParser parser("fig4_cpu_workloads",
                         "reproduce Fig. 4 (CPU power under Dhrystone and "
                         "Coremark)");
  parser.add_value("--cycles", &cycles, "simulated cycles (default 192)");
  parser.add_value("--threads", &threads,
                   "worker threads (default TP_THREADS or hardware)");
  parser.add_value("--lanes", &lanes,
                   "stimulus lanes per task, 1-64 (default 1)");
  parser.parse_or_exit(argc, argv);
  if (lanes < 1 || lanes > kMaxSimLanes) {
    std::fprintf(stderr, "--lanes must be in [1, 64]\n%s",
                 parser.usage().c_str());
    return 2;
  }

  RunPlan base;
  base.benchmarks = {"RISCV", "ArmM0"};
  base.cycles = cycles;
  base.lanes = lanes;
  const std::size_t per_lane = (cycles + lanes - 1) / lanes;
  if (per_lane <= base.options.warmup_cycles) {
    base.options.warmup_cycles = per_lane / 2;
  }
  const circuits::Workload kWorkloads[] = {circuits::Workload::kDhrystone,
                                           circuits::Workload::kCoremark};
  std::vector<RunPlan> plans(2, base);
  plans[0].workload = kWorkloads[0];
  plans[1].workload = kWorkloads[1];

  util::Executor executor(threads);
  const std::vector<std::vector<MatrixResult>> results =
      run_matrices(plans, executor);
  const std::size_t num_styles = base.styles.size();

  std::printf("Fig. 4 — CPU power under Dhrystone and Coremark (mW)\n");
  for (std::size_t b = 0; b < base.benchmarks.size(); ++b) {
    for (std::size_t w = 0; w < plans.size(); ++w) {
      std::printf("\n%s / %s:\n", base.benchmarks[b].c_str(),
                  std::string(circuits::workload_name(kWorkloads[w]))
                      .c_str());
      PowerBreakdown power[3];
      for (std::size_t i = 0; i < num_styles; ++i) {
        const FlowResult& r = results[w][b * num_styles + i].result;
        power[i] = r.power;
        std::printf("  %-4s clock %6.3f  seq %6.3f  comb %6.3f  total "
                    "%6.3f\n",
                    std::string(style_name(base.styles[i])).c_str(),
                    r.power.clock_mw, r.power.seq_mw, r.power.comb_mw,
                    r.power.total_mw());
      }
      std::printf("  3-P saves %+5.1f%% vs FF, %+5.1f%% vs M-S\n",
                  bench::save_pct(power[0].total_mw(), power[2].total_mw()),
                  bench::save_pct(power[1].total_mw(), power[2].total_mw()));
      std::fflush(stdout);
    }
  }
  std::printf("\n(Paper averages across both workloads: RISC-V 15.6%% vs FF "
              "and 21.2%% vs M-S; ARM-M0 8.3%% and 20.1%%.)\n");
  return 0;
}
