// Reproduces Fig. 4: power decomposition of the RISC-V and ARM-M0 cores
// running Dhrystone and Coremark in the FF, master-slave, and 3-phase
// styles (the paper reports 15.6%/21.2% savings for RISC-V and 8.3%/20.1%
// for ARM-M0 vs FF and M-S respectively).
//
//   $ ./bench/fig4_cpu_workloads [cycles]
#include <cstdio>
#include <cstdlib>

#include "bench/paper_reference.hpp"
#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"

using namespace tp;
using namespace tp::flow;

int main(int argc, char** argv) {
  const std::size_t cycles =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 192;
  std::printf("Fig. 4 — CPU power under Dhrystone and Coremark (mW)\n");
  for (const auto& name : {"RISCV", "ArmM0"}) {
    const circuits::Benchmark bench = circuits::make_benchmark(name);
    for (const auto workload :
         {circuits::Workload::kDhrystone, circuits::Workload::kCoremark}) {
      const Stimulus stim =
          circuits::make_stimulus(bench, workload, cycles, 7);
      std::printf("\n%s / %s:\n", name,
                  std::string(circuits::workload_name(workload)).c_str());
      PowerBreakdown power[3];
      int i = 0;
      for (const DesignStyle style :
           {DesignStyle::kFlipFlop, DesignStyle::kMasterSlave,
            DesignStyle::kThreePhase}) {
        const FlowResult r = run_flow(bench, style, stim);
        power[i++] = r.power;
        std::printf("  %-4s clock %6.3f  seq %6.3f  comb %6.3f  total "
                    "%6.3f\n",
                    std::string(style_name(style)).c_str(), r.power.clock_mw,
                    r.power.seq_mw, r.power.comb_mw, r.power.total_mw());
      }
      std::printf("  3-P saves %+5.1f%% vs FF, %+5.1f%% vs M-S\n",
                  bench::save_pct(power[0].total_mw(), power[2].total_mw()),
                  bench::save_pct(power[1].total_mw(), power[2].total_mw()));
      std::fflush(stdout);
    }
  }
  std::printf("\n(Paper averages across both workloads: RISC-V 15.6%% vs FF "
              "and 21.2%% vs M-S; ARM-M0 8.3%% and 20.1%%.)\n");
  return 0;
}
