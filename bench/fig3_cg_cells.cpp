// Reproduces Fig. 3's cell-level study: p2 latches gated from common
// upstream enables, the M1 cell (inverter replaced by the borrowed p3
// phase), and the M2 legality analysis (ICG internal latch removable only
// when no enable path starts from a same-phase latch). Reports CG cell
// counts, M2 legality splits, and the clock-network power with each
// modification toggled.
//
//   $ ./bench/fig3_cg_cells [cycles]
#include <cstdio>
#include <cstdlib>

#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"

using namespace tp;
using namespace tp::flow;

int main(int argc, char** argv) {
  const std::size_t cycles =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 128;
  std::printf("Fig. 3 — p2 clock gating and the M1/M2 cell "
              "modifications\n\n");
  std::printf("%-8s | %7s %7s | %9s %7s | %11s %11s %11s\n", "design",
              "p2 CGs", "gated", "M2 conv", "M2 kept", "clk mW full",
              "clk mW -M1", "clk mW -M2");
  for (const auto& name : {"AES", "SHA256", "Plasma", "RISCV", "ArmM0"}) {
    const circuits::Benchmark bench = circuits::make_benchmark(name);
    const Stimulus stim = circuits::make_stimulus(
        bench, circuits::Workload::kPaperDefault, cycles, 7);

    const FlowResult full = run_flow(bench, DesignStyle::kThreePhase, stim);
    FlowOptions no_m1;
    no_m1.use_m1 = false;
    const FlowResult without_m1 =
        run_flow(bench, DesignStyle::kThreePhase, stim, no_m1);
    FlowOptions no_m2;
    no_m2.use_m2 = false;
    const FlowResult without_m2 =
        run_flow(bench, DesignStyle::kThreePhase, stim, no_m2);

    std::printf("%-8s | %7d %7d | %9d %7d | %11.3f %11.3f %11.3f\n", name,
                full.p2_gating.p2_cg_cells, full.p2_gating.p2_latches_gated,
                full.m2.converted, full.m2.kept, full.power.clock_mw,
                without_m1.power.clock_mw, without_m2.power.clock_mw);
    std::fflush(stdout);
  }
  std::printf("\nNote: without M1 the conventional p2 CG is only legal when "
              "no p1 latch or PI feeds the enable, so fewer latches can be "
              "gated (see p2_gating.hpp).\n");
  return 0;
}
