// Reproduces Fig. 3's cell-level study: p2 latches gated from common
// upstream enables, the M1 cell (inverter replaced by the borrowed p3
// phase), and the M2 legality analysis (ICG internal latch removable only
// when no enable path starts from a same-phase latch). Reports CG cell
// counts, M2 legality splits, and the clock-network power with each
// modification toggled. The three configurations run as one task wave on
// the flow-matrix engine.
//
//   $ ./bench/fig3_cg_cells [--cycles N] [--threads N] [--lanes N]
#include <cstdio>

#include "src/flow/matrix.hpp"
#include "src/util/argparse.hpp"
#include "src/util/executor.hpp"

using namespace tp;
using namespace tp::flow;

int main(int argc, char** argv) {
  std::size_t cycles = 128, threads = 0, lanes = 1;
  util::ArgParser parser("fig3_cg_cells",
                         "reproduce Fig. 3 (p2 clock gating and the M1/M2 "
                         "cell modifications)");
  parser.add_value("--cycles", &cycles, "simulated cycles (default 128)");
  parser.add_value("--threads", &threads,
                   "worker threads (default TP_THREADS or hardware)");
  parser.add_value("--lanes", &lanes,
                   "stimulus lanes per task, 1-64 (default 1)");
  parser.parse_or_exit(argc, argv);
  if (lanes < 1 || lanes > kMaxSimLanes) {
    std::fprintf(stderr, "--lanes must be in [1, 64]\n%s",
                 parser.usage().c_str());
    return 2;
  }

  RunPlan base;
  base.benchmarks = {"AES", "SHA256", "Plasma", "RISCV", "ArmM0"};
  base.styles = {DesignStyle::kThreePhase};
  base.cycles = cycles;
  base.lanes = lanes;
  const std::size_t per_lane = (cycles + lanes - 1) / lanes;
  if (per_lane <= base.options.warmup_cycles) {
    base.options.warmup_cycles = per_lane / 2;
  }
  // Plans: [0] full flow, [1] without M1, [2] without M2.
  std::vector<RunPlan> plans(3, base);
  plans[1].options.use_m1 = false;
  plans[2].options.use_m2 = false;

  util::Executor executor(threads);
  const std::vector<std::vector<MatrixResult>> results =
      run_matrices(plans, executor);

  std::printf("Fig. 3 — p2 clock gating and the M1/M2 cell "
              "modifications\n\n");
  std::printf("%-8s | %7s %7s | %9s %7s | %11s %11s %11s\n", "design",
              "p2 CGs", "gated", "M2 conv", "M2 kept", "clk mW full",
              "clk mW -M1", "clk mW -M2");
  for (std::size_t b = 0; b < base.benchmarks.size(); ++b) {
    const FlowResult& full = results[0][b].result;
    const FlowResult& without_m1 = results[1][b].result;
    const FlowResult& without_m2 = results[2][b].result;
    std::printf("%-8s | %7d %7d | %9d %7d | %11.3f %11.3f %11.3f\n",
                base.benchmarks[b].c_str(), full.p2_gating.p2_cg_cells,
                full.p2_gating.p2_latches_gated, full.m2.converted,
                full.m2.kept, full.power.clock_mw,
                without_m1.power.clock_mw, without_m2.power.clock_mw);
    std::fflush(stdout);
  }
  std::printf("\nNote: without M1 the conventional p2 CG is only legal when "
              "no p1 latch or PI feeds the enable, so fewer latches can be "
              "gated (see p2_gating.hpp).\n");
  return 0;
}
