// Reproduces Table II: power dissipation (mW) decomposed into Clock / Seq /
// Comb / Total for the FF, master-slave, and 3-phase designs, with the
// 3-phase savings relative to both baselines. Paper totals are printed
// alongside. All 18x3 flows run in parallel on the flow-matrix engine.
//
//   $ ./bench/table2_power [--cycles N] [--threads N] [--lanes N]
//
// --lanes N >= 2 splits the cycle budget across N stimulus lanes and
// simulates them bit-parallel (RunPlan::lanes), cutting the gate-level
// simulation share of the wall clock without changing the methodology —
// activity is the exact sum over lanes.
#include <cstdio>

#include "bench/paper_reference.hpp"
#include "src/flow/matrix.hpp"
#include "src/util/argparse.hpp"
#include "src/util/executor.hpp"

using namespace tp;
using namespace tp::flow;

namespace {

void print_power(const char* label, const PowerBreakdown& p) {
  std::printf("  %-4s clock %7.3f  seq %7.3f  comb %7.3f  total %7.3f\n",
              label, p.clock_mw, p.seq_mw, p.comb_mw, p.total_mw());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t cycles = 128, threads = 0, lanes = 1;
  util::ArgParser parser("table2_power",
                         "reproduce Table II (power dissipation)");
  parser.add_value("--cycles", &cycles, "simulated cycles (default 128)");
  parser.add_value("--threads", &threads,
                   "worker threads (default TP_THREADS or hardware)");
  parser.add_value("--lanes", &lanes,
                   "stimulus lanes per task, 1-64 (default 1)");
  parser.parse_or_exit(argc, argv);
  if (lanes < 1 || lanes > kMaxSimLanes) {
    std::fprintf(stderr, "--lanes must be in [1, 64]\n%s",
                 parser.usage().c_str());
    return 2;
  }

  RunPlan plan;
  plan.cycles = cycles;
  plan.lanes = lanes;
  const std::size_t per_lane = (cycles + lanes - 1) / lanes;
  if (per_lane <= plan.options.warmup_cycles) {
    plan.options.warmup_cycles = per_lane / 2;
  }
  util::Executor executor(threads);
  const std::vector<MatrixResult> results = run_matrix(plan, executor);
  const std::size_t num_styles = plan.styles.size();

  std::printf("Table II — power dissipation (mW)\n");

  double sum_ff = 0, sum_ms = 0;
  double group_save_ff[3] = {0, 0, 0};
  int rows = 0;
  const auto& names = circuits::benchmark_names();
  for (std::size_t b = 0; b < names.size(); ++b) {
    const std::string& name = names[b];
    const FlowResult& ff = results[b * num_styles + 0].result;
    const FlowResult& ms = results[b * num_styles + 1].result;
    const FlowResult& p3 = results[b * num_styles + 2].result;
    const circuits::Benchmark bench = circuits::make_benchmark(name);

    const double save_ff =
        bench::save_pct(ff.power.total_mw(), p3.power.total_mw());
    const double save_ms =
        bench::save_pct(ms.power.total_mw(), p3.power.total_mw());
    std::printf("\n%s (workload \"%s\"):\n", name.c_str(),
                bench.paper_workload.c_str());
    print_power("FF", ff.power);
    print_power("M-S", ms.power);
    print_power("3-P", p3.power);
    std::printf("  3-P saves %+5.1f%% vs FF, %+5.1f%% vs M-S", save_ff,
                save_ms);
    if (const auto paper = bench::paper_row(name)) {
      std::printf("   (paper: %+.1f%% vs FF, %+.1f%% vs M-S)",
                  bench::save_pct(paper->ff_power, paper->p3_power),
                  bench::save_pct(paper->ms_power, paper->p3_power));
    }
    std::printf("\n");
    std::fflush(stdout);
    sum_ff += save_ff;
    sum_ms += save_ms;
    group_save_ff[0] += bench::save_pct(ff.power.clock_mw, p3.power.clock_mw);
    group_save_ff[1] += bench::save_pct(ff.power.seq_mw, p3.power.seq_mw);
    group_save_ff[2] += bench::save_pct(ff.power.comb_mw, p3.power.comb_mw);
    ++rows;
  }
  std::printf("\nAverage 3-P total power saving: %+.1f%% vs FF "
              "(paper +15.5%%), %+.1f%% vs M-S (paper +18.5%%)\n",
              sum_ff / rows, sum_ms / rows);
  std::printf("Average 3-P group savings vs FF: clock %+.1f%% (paper "
              "+13.8%%), seq %+.1f%% (paper +6.6%%), comb %+.1f%% (paper "
              "+15.2%%)\n",
              group_save_ff[0] / rows, group_save_ff[1] / rows,
              group_save_ff[2] / rows);
  return 0;
}
