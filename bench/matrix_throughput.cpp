// Matrix-engine throughput benchmark and parallel-determinism gate.
//
// Runs the lint_smoke matrix (every built-in benchmark x the paper's three
// design styles, per-stage rule checking on) twice through the flow-matrix
// engine — once serially, once on an N-thread executor — verifies the two
// result sets are bit-identical (registers, area, power components, output
// stream hash), and writes a BENCH_matrix.json record: tasks/sec, speedup
// vs the serial run, and the per-stage wall-clock histogram. CI runs this
// and fails the build on any serial/parallel divergence; the JSON is
// uploaded as an artifact to track the perf trajectory over time.
//
// With --lanes N >= 2 every task simulates N stimulus lanes bit-parallel
// (RunPlan::lanes), and a third serial pass with the scalar lane-by-lane
// engine (FlowOptions::wide_sim off) gates the wide engine's bit-identity
// contract at the matrix level: serial-wide, serial-scalar, and parallel-
// wide must all match bit-for-bit.
//
//   $ ./bench/matrix_throughput [--cycles N] [--threads N] [--lanes N]
//                               [--out FILE]
//
// Exit status: 0 when every pass is bit-identical, 1 otherwise.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/flow/matrix.hpp"
#include "src/util/argparse.hpp"
#include "src/util/executor.hpp"
#include "src/util/json.hpp"

using namespace tp;
using namespace tp::flow;

namespace {

std::uint64_t bits(double value) {
  std::uint64_t out;
  std::memcpy(&out, &value, sizeof(out));
  return out;
}

/// Bit-exact comparison of everything the tables report; returns a
/// human-readable description of the first difference, or "".
std::string compare(const MatrixResult& serial, const MatrixResult& parallel) {
  const FlowResult& a = serial.result;
  const FlowResult& b = parallel.result;
  if (a.registers != b.registers) return "register count";
  if (bits(a.area_um2) != bits(b.area_um2)) return "area";
  if (bits(a.power.clock_mw) != bits(b.power.clock_mw) ||
      bits(a.power.seq_mw) != bits(b.power.seq_mw) ||
      bits(a.power.comb_mw) != bits(b.power.comb_mw)) {
    return "power breakdown";
  }
  if (stream_hash(a.outputs) != stream_hash(b.outputs)) {
    return "output stream";
  }
  if (a.lint.stages.size() != b.lint.stages.size()) return "lint stages";
  for (std::size_t i = 0; i < a.lint.stages.size(); ++i) {
    if (a.lint.stages[i].stage != b.lint.stages[i].stage ||
        a.lint.stages[i].report.errors != b.lint.stages[i].report.errors ||
        a.lint.stages[i].report.warnings !=
            b.lint.stages[i].report.warnings) {
      return "lint report";
    }
  }
  return "";
}

struct StageSums {
  double synthesis = 0, ilp = 0, convert = 0, retime = 0, cg = 0, hold = 0;
  double timing = 0, place = 0, cts = 0, sim = 0, lint = 0;

  void add(const StepTimes& t) {
    synthesis += t.synthesis_s;
    ilp += t.ilp_s;
    convert += t.convert_s;
    retime += t.retime_s;
    cg += t.clock_gating_s;
    hold += t.hold_s;
    timing += t.timing_s;
    place += t.place_s;
    cts += t.cts_s;
    sim += t.sim_s;
    lint += t.lint_s;
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t cycles = 48, threads = 0, lanes = 1;
  std::string out_file = "BENCH_matrix.json";

  util::ArgParser parser(
      "matrix_throughput",
      "run the lint_smoke matrix serially and on N threads, verify "
      "bit-identical results, and record throughput in BENCH_matrix.json");
  parser.add_value("--cycles", &cycles, "simulated cycles (default 48)");
  parser.add_value("--threads", &threads,
                   "worker threads for the parallel pass (default "
                   "TP_THREADS or hardware)");
  parser.add_value("--lanes", &lanes,
                   "stimulus lanes per task, 1-64; lanes >= 2 add a "
                   "wide-vs-scalar-engine divergence gate (default 1)");
  parser.add_value("--out", &out_file,
                   "JSON output path (default BENCH_matrix.json)", "FILE");
  parser.parse_or_exit(argc, argv);

  if (threads == 0) threads = util::Executor::default_thread_count();
  if (lanes < 1 || lanes > kMaxSimLanes) {
    std::fprintf(stderr, "--lanes must be in [1, 64]\n%s",
                 parser.usage().c_str());
    return 2;
  }

  RunPlan plan;
  plan.cycles = cycles;
  plan.lanes = lanes;
  plan.options.check_rules = true;
  // The per-lane split must leave post-warmup cycles to compare.
  const std::size_t per_lane = (cycles + lanes - 1) / lanes;
  if (per_lane <= plan.options.warmup_cycles) {
    plan.options.warmup_cycles = per_lane / 2;
  }

  std::printf("matrix_throughput: %zu tasks, %zu cycles, %zu lane(s), %zu "
              "thread(s)\n",
              plan.tasks().size(), cycles, lanes, threads);

  Stopwatch wall;
  const std::vector<MatrixResult> serial = run_matrix(plan);
  const double serial_s = wall.seconds();
  std::printf("  serial    %7.2f s (%.2f tasks/s)\n", serial_s,
              serial.size() / serial_s);
  std::fflush(stdout);

  wall.reset();
  std::vector<MatrixResult> parallel;
  {
    util::Executor executor(threads);
    parallel = run_matrix(plan, executor);
  }
  const double parallel_s = wall.seconds();
  const double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;
  std::printf("  parallel  %7.2f s (%.2f tasks/s, %.2fx vs serial)\n",
              parallel_s, parallel.size() / parallel_s, speedup);

  int divergent = 0;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const std::string diff = compare(serial[i], parallel[i]);
    if (diff.empty()) continue;
    ++divergent;
    std::fprintf(stderr,
                 "DIVERGENCE: %s/%s differs between serial and %zu-thread "
                 "runs (%s)\n",
                 serial[i].task.benchmark.c_str(),
                 std::string(style_name(serial[i].task.style)).c_str(),
                 threads, diff.c_str());
  }

  // Engine gate: with multi-lane tasks, a scalar lane-by-lane pass must
  // reproduce the wide-simulator results bit-for-bit.
  int engine_divergent = 0;
  if (lanes >= 2) {
    wall.reset();
    RunPlan scalar_plan = plan;
    scalar_plan.options.wide_sim = false;
    const std::vector<MatrixResult> scalar_engine = run_matrix(scalar_plan);
    const double scalar_engine_s = wall.seconds();
    std::printf("  scalar    %7.2f s (scalar-engine reference, %.2fx vs "
                "wide serial)\n",
                scalar_engine_s,
                serial_s > 0 ? scalar_engine_s / serial_s : 0.0);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const std::string diff = compare(scalar_engine[i], serial[i]);
      if (diff.empty()) continue;
      ++engine_divergent;
      std::fprintf(stderr,
                   "DIVERGENCE: %s/%s differs between scalar and wide "
                   "engines (%s)\n",
                   serial[i].task.benchmark.c_str(),
                   std::string(style_name(serial[i].task.style)).c_str(),
                   diff.c_str());
    }
  }

  // Histogram from the serial pass: parallel-run stage stopwatches are
  // inflated by core contention, the serial ones measure the real work.
  StageSums stages;
  for (const MatrixResult& r : serial) stages.add(r.result.times);

  std::ofstream out(out_file);
  if (!out.good()) {
    std::fprintf(stderr, "cannot open %s\n", out_file.c_str());
    return 1;
  }
  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("matrix_throughput");
  w.key("tasks").value(static_cast<std::uint64_t>(serial.size()));
  w.key("cycles").value(static_cast<std::uint64_t>(cycles));
  w.key("lanes").value(static_cast<std::uint64_t>(lanes));
  w.key("threads").value(static_cast<std::uint64_t>(threads));
  w.key("serial_s").value(serial_s);
  w.key("parallel_s").value(parallel_s);
  w.key("speedup").value(speedup);
  w.key("tasks_per_s").value(parallel.size() / parallel_s);
  w.key("identical").value(divergent == 0);
  w.key("wide_identical").value(engine_divergent == 0);
  w.key("stage_seconds").begin_object();
  w.key("synthesis").value(stages.synthesis);
  w.key("ilp").value(stages.ilp);
  w.key("convert").value(stages.convert);
  w.key("retime").value(stages.retime);
  w.key("clock_gating").value(stages.cg);
  w.key("hold").value(stages.hold);
  w.key("timing").value(stages.timing);
  w.key("place").value(stages.place);
  w.key("cts").value(stages.cts);
  w.key("sim").value(stages.sim);
  w.key("lint").value(stages.lint);
  w.end_object();
  w.end_object();
  out << w.take() << "\n";
  std::printf("  wrote     %s\n", out_file.c_str());

  if (divergent > 0 || engine_divergent > 0) {
    std::fprintf(stderr, "%d/%zu tasks diverged across thread counts, "
                 "%d/%zu across engines\n",
                 divergent, serial.size(), engine_divergent, serial.size());
    return 1;
  }
  std::printf("  identical %zu/%zu tasks bit-identical across thread "
              "counts%s\n",
              serial.size(), serial.size(),
              lanes >= 2 ? " and sim engines" : "");
  return 0;
}
