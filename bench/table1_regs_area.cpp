// Reproduces Table I: number of registers (FFs or latches) and total area
// in the FF, master-slave, and 3-phase designs, with savings of the 3-phase
// design relative to 2x the FF count and to the master-slave count. Paper
// reference values are printed alongside each measured row.
//
//   $ ./bench/table1_regs_area [cycles]
#include <cstdio>
#include <cstdlib>

#include "bench/paper_reference.hpp"
#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"

using namespace tp;
using namespace tp::flow;

int main(int argc, char** argv) {
  const std::size_t cycles =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 128;
  std::printf("Table I — registers and total area (paper values in "
              "parentheses)\n\n");
  std::printf("%-8s | %6s %6s %6s | save%%2FF save%%MS | %9s %9s %9s | "
              "saveFF saveMS\n",
              "design", "FF", "M-S", "3-P", "areaFF", "areaMS", "area3P");

  double sum_save_2ff = 0, sum_save_ms = 0, sum_area_ff = 0, sum_area_ms = 0;
  int rows = 0;
  for (const auto& name : circuits::benchmark_names()) {
    const circuits::Benchmark bench = circuits::make_benchmark(name);
    const Stimulus stim = circuits::make_stimulus(
        bench, circuits::Workload::kPaperDefault, cycles, 7);
    const FlowResult ff = run_flow(bench, DesignStyle::kFlipFlop, stim);
    const FlowResult ms = run_flow(bench, DesignStyle::kMasterSlave, stim);
    const FlowResult p3 = run_flow(bench, DesignStyle::kThreePhase, stim);

    const double save_2ff =
        bench::save_pct(2.0 * ff.registers, p3.registers);
    const double save_ms = bench::save_pct(ms.registers, p3.registers);
    const auto paper = bench::paper_row(name);
    std::printf("%-8s | %6d %6d %6d | %7.1f %7.1f | %9.0f %9.0f %9.0f | "
                "%+5.1f%% %+5.1f%%",
                name.c_str(), ff.registers, ms.registers, p3.registers,
                save_2ff, save_ms, ff.area_um2, ms.area_um2, p3.area_um2,
                bench::save_pct(ff.area_um2, p3.area_um2),
                bench::save_pct(ms.area_um2, p3.area_um2));
    if (paper) {
      std::printf("   (paper regs %d/%d/%d, save %.1f%%/%.1f%%)",
                  paper->ff_regs, paper->ms_regs, paper->p3_regs,
                  bench::save_pct(2.0 * paper->ff_regs, paper->p3_regs),
                  bench::save_pct(paper->ms_regs, paper->p3_regs));
    }
    std::printf("\n");
    std::fflush(stdout);
    sum_save_2ff += save_2ff;
    sum_save_ms += save_ms;
    sum_area_ff += bench::save_pct(ff.area_um2, p3.area_um2);
    sum_area_ms += bench::save_pct(ms.area_um2, p3.area_um2);
    ++rows;
  }
  std::printf("\nAverage register saving: %.1f%% vs 2xFF (paper 22.4%%), "
              "%.1f%% vs M-S (paper 21.3%%)\n",
              sum_save_2ff / rows, sum_save_ms / rows);
  std::printf("Average area saving:     %.1f%% vs FF (paper 11.0%%), "
              "%.1f%% vs M-S (paper 0.8%%)\n",
              sum_area_ff / rows, sum_area_ms / rows);
  return 0;
}
