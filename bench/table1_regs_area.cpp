// Reproduces Table I: number of registers (FFs or latches) and total area
// in the FF, master-slave, and 3-phase designs, with savings of the 3-phase
// design relative to 2x the FF count and to the master-slave count. Paper
// reference values are printed alongside each measured row. All 18x3 flows
// run in parallel on the flow-matrix engine.
//
//   $ ./bench/table1_regs_area [--cycles N] [--threads N]
#include <cstdio>

#include "bench/paper_reference.hpp"
#include "src/flow/matrix.hpp"
#include "src/util/argparse.hpp"
#include "src/util/executor.hpp"

using namespace tp;
using namespace tp::flow;

int main(int argc, char** argv) {
  std::size_t cycles = 128, threads = 0;
  util::ArgParser parser("table1_regs_area",
                         "reproduce Table I (registers and total area)");
  parser.add_value("--cycles", &cycles, "simulated cycles (default 128)");
  parser.add_value("--threads", &threads,
                   "worker threads (default TP_THREADS or hardware)");
  parser.parse_or_exit(argc, argv);

  RunPlan plan;
  plan.cycles = cycles;
  util::Executor executor(threads);
  const std::vector<MatrixResult> results = run_matrix(plan, executor);
  const std::size_t num_styles = plan.styles.size();

  std::printf("Table I — registers and total area (paper values in "
              "parentheses)\n\n");
  std::printf("%-8s | %6s %6s %6s | save%%2FF save%%MS | %9s %9s %9s | "
              "saveFF saveMS\n",
              "design", "FF", "M-S", "3-P", "areaFF", "areaMS", "area3P");

  double sum_save_2ff = 0, sum_save_ms = 0, sum_area_ff = 0, sum_area_ms = 0;
  int rows = 0;
  const auto& names = circuits::benchmark_names();
  for (std::size_t b = 0; b < names.size(); ++b) {
    const std::string& name = names[b];
    // Plan order is benchmark-major: [b*3+0..2] = FF, M-S, 3-P.
    const FlowResult& ff = results[b * num_styles + 0].result;
    const FlowResult& ms = results[b * num_styles + 1].result;
    const FlowResult& p3 = results[b * num_styles + 2].result;

    const double save_2ff =
        bench::save_pct(2.0 * ff.registers, p3.registers);
    const double save_ms = bench::save_pct(ms.registers, p3.registers);
    const auto paper = bench::paper_row(name);
    std::printf("%-8s | %6d %6d %6d | %7.1f %7.1f | %9.0f %9.0f %9.0f | "
                "%+5.1f%% %+5.1f%%",
                name.c_str(), ff.registers, ms.registers, p3.registers,
                save_2ff, save_ms, ff.area_um2, ms.area_um2, p3.area_um2,
                bench::save_pct(ff.area_um2, p3.area_um2),
                bench::save_pct(ms.area_um2, p3.area_um2));
    if (paper) {
      std::printf("   (paper regs %d/%d/%d, save %.1f%%/%.1f%%)",
                  paper->ff_regs, paper->ms_regs, paper->p3_regs,
                  bench::save_pct(2.0 * paper->ff_regs, paper->p3_regs),
                  bench::save_pct(paper->ms_regs, paper->p3_regs));
    }
    std::printf("\n");
    std::fflush(stdout);
    sum_save_2ff += save_2ff;
    sum_save_ms += save_ms;
    sum_area_ff += bench::save_pct(ff.area_um2, p3.area_um2);
    sum_area_ms += bench::save_pct(ms.area_um2, p3.area_um2);
    ++rows;
  }
  std::printf("\nAverage register saving: %.1f%% vs 2xFF (paper 22.4%%), "
              "%.1f%% vs M-S (paper 21.3%%)\n",
              sum_save_2ff / rows, sum_save_ms / rows);
  std::printf("Average area saving:     %.1f%% vs FF (paper 11.0%%), "
              "%.1f%% vs M-S (paper 0.8%%)\n",
              sum_area_ff / rows, sum_area_ms / rows);
  return 0;
}
