// Ablation: the exact phase-assignment solvers (the paper's ILP and this
// library's specialized reduction) against the greedy heuristic, measured
// by inserted p2 latches and solver run time on every benchmark's register
// graph. The generic ILP is run only below a size cutoff — its generic
// branch-and-bound has no problem-specific bound.
//
//   $ ./bench/ablation_ilp
#include <cstdio>

#include "src/circuits/benchmark.hpp"
#include "src/netlist/traverse.hpp"
#include "src/phase/assignment.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/util/log.hpp"

using namespace tp;

int main() {
  std::printf("Phase-assignment solver ablation (inserted p2 latches / "
              "seconds)\n\n");
  std::printf("%-8s %6s | %16s | %16s | %16s\n", "design", "FFs",
              "specialized", "generic ILP", "greedy");
  for (const auto& name : circuits::benchmark_names()) {
    circuits::Benchmark bench = circuits::make_benchmark(name);
    infer_clock_gating(bench.netlist);
    const RegisterGraph graph = build_register_graph(bench.netlist);

    Stopwatch sw;
    const PhaseAssignment spec = assign_phases_specialized(graph, 10.0);
    const double spec_s = sw.seconds();

    std::string ilp_text = "      (skipped)";
    if (graph.regs.size() <= 600) {
      sw.reset();
      const PhaseAssignment ilp = assign_phases_ilp(graph, 10.0);
      char buf[64];
      std::snprintf(buf, sizeof buf, "%6d%s /%6.2fs", ilp.num_inserted(),
                    ilp.optimal ? "*" : " ", sw.seconds());
      ilp_text = buf;
    }

    sw.reset();
    const PhaseAssignment greedy = assign_phases_greedy(graph);
    const double greedy_s = sw.seconds();

    std::printf("%-8s %6zu | %6d%s /%6.2fs | %16s | %6d  /%6.2fs\n",
                name.c_str(), graph.regs.size(), spec.num_inserted(),
                spec.optimal ? "*" : " ", spec_s, ilp_text.c_str(),
                greedy.num_inserted(), greedy_s);
    std::fflush(stdout);
  }
  std::printf("\n(* = proven optimal. The paper's Gurobi runs finished "
              "within 27 s on every benchmark.)\n");
  return 0;
}
