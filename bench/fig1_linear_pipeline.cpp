// Reproduces Fig. 1: converting a linear FF pipeline adds exactly one p2
// latch stage for every other original stage — the provable minimum under
// constraints C1-C3. Sweeps pipeline depth, prints the latch counts, and
// verifies stream equivalence at each depth.
//
//   $ ./bench/fig1_linear_pipeline [max_depth]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/sim/stimulus.hpp"
#include "src/transform/convert.hpp"

using namespace tp;

namespace {

Netlist linear_pipeline(int depth) {
  // A pure linear pipeline (Fig. 1(a)): one input chain, per-stage logic
  // that does not introduce extra cross-stage fanin (an inverter), so the
  // provable minimum of one inserted latch per two boundaries applies.
  Netlist nl("pipe" + std::to_string(depth));
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(1500, nl.cell(clk).out);
  const CellId in = nl.add_input("in");
  NetId d = nl.cell(in).out;
  for (int i = 0; i < depth; ++i) {
    const CellId x =
        nl.add_gate(CellKind::kInv, "x" + std::to_string(i), {d});
    const NetId q = nl.add_net("q" + std::to_string(i));
    nl.add_cell(CellKind::kDff, "ff" + std::to_string(i),
                {nl.cell(x).out, nl.cell(clk).out}, q, Phase::kClk);
    d = q;
  }
  nl.add_output("out", d);
  return nl;
}

}  // namespace

int main(int argc, char** argv) {
  const int max_depth = argc > 1 ? std::atoi(argv[1]) : 32;
  std::printf("Fig. 1 — linear pipeline conversion (minimum: one inserted "
              "p2 per two boundaries)\n\n");
  std::printf("%6s %6s %10s %10s %10s %8s\n", "depth", "FFs", "3P latches",
              "inserted", "minimum", "equal?");
  bool all_min = true, all_equal = true;
  for (int depth = 1; depth <= max_depth; ++depth) {
    const Netlist ff = linear_pipeline(depth);
    const ThreePhaseResult r = to_three_phase(ff);
    // Boundaries = depth FFs plus the PI treated as a p1 source; the
    // minimum inserted latches is ceil((depth + 1) / 2).
    const int minimum = (depth + 1) / 2;

    Rng rng(static_cast<std::uint64_t>(depth));
    const Stimulus stim = random_stimulus(1, 96, rng, 0.5);
    Simulator ff_sim(ff);
    SimOptions opt;
    opt.snapshot_event = 1;
    Simulator p3_sim(r.netlist, opt);
    const bool equal = streams_equal(run_stream(ff_sim, stim, 8),
                                     run_stream(p3_sim, stim, 8));
    std::printf("%6d %6d %10zu %10d %10d %8s\n", depth, depth,
                r.netlist.registers().size(), r.inserted_p2, minimum,
                equal ? "yes" : "NO");
    all_min &= (r.inserted_p2 == minimum);
    all_equal &= equal;
  }
  std::printf("\nILP reaches the provable minimum at every depth: %s\n",
              all_min ? "YES" : "NO");
  std::printf("all depths stream-equivalent to the FF pipeline: %s\n",
              all_equal ? "YES" : "NO");
  return all_min && all_equal ? 0 : 1;
}
