// Extension bench: multi-bit register banking (the future work the paper's
// Sec. IV-D points at via [25]). Estimates how much additional register
// clocking power the converted 3-phase designs could save by merging
// co-located same-clock latches into 2/4/8-bit banks with shared clock
// internals.
//
//   $ ./bench/ext_multibit_banking [cycles]
#include <cstdio>
#include <cstdlib>

#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"
#include "src/power/banking.hpp"

using namespace tp;
using namespace tp::flow;

int main(int argc, char** argv) {
  const std::size_t cycles =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 128;
  const CellLibrary& lib = CellLibrary::nominal_28nm();
  std::printf("Multi-bit banking headroom on 3-phase designs "
              "(extension)\n\n");
  std::printf("%-8s %9s %8s %6s | %12s %12s %7s\n", "design", "latches",
              "banked", "banks", "clk-reg mW", "banked mW", "save");
  for (const auto& name : {"s13207", "s35932", "SHA256", "Plasma",
                           "RISCV", "ArmM0"}) {
    const circuits::Benchmark bench = circuits::make_benchmark(name);
    const Stimulus stim = circuits::make_stimulus(
        bench, circuits::Workload::kPaperDefault, cycles, 7);
    const FlowResult r = run_flow(bench, DesignStyle::kThreePhase, stim);

    // Re-derive placement and activity for the final netlist.
    const Placement placement = place(r.netlist, lib);
    SimOptions opt;
    opt.snapshot_event = 1;
    Simulator sim(r.netlist, opt);
    run_stream(sim, stim, 16);

    const BankingReport b =
        analyze_banking(r.netlist, lib, placement, sim.stats());
    std::printf("%-8s %9d %8d %6d | %12.3f %12.3f %6.1f%%\n", name,
                b.candidate_latches, b.banked_latches, b.banks,
                b.clock_power_before_mw, b.clock_power_after_mw,
                b.saving_pct());
    std::fflush(stdout);
  }
  std::printf("\n(Clock-register power only; the rest of the clock network "
              "is unchanged by banking.)\n");
  return 0;
}
