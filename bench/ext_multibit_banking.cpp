// Extension bench: multi-bit register banking (the future work the paper's
// Sec. IV-D points at via [25]). Estimates how much additional register
// clocking power the converted 3-phase designs could save by merging
// co-located same-clock latches into 2/4/8-bit banks with shared clock
// internals.
//
// The conversions run as one RunPlan on the work-stealing executor; the
// banking analysis then reuses each task's converted netlist. --lanes >= 2
// splits the cycle budget across a bit-parallel wide simulation.
//
//   $ ./bench/ext_multibit_banking --cycles 128 --lanes 4
#include <cstdio>

#include "src/flow/matrix.hpp"
#include "src/power/banking.hpp"
#include "src/util/argparse.hpp"
#include "src/util/executor.hpp"

using namespace tp;
using namespace tp::flow;

int main(int argc, char** argv) {
  std::size_t cycles = 128, lanes = 1, threads = 0;

  util::ArgParser parser(
      "ext_multibit_banking",
      "estimate multi-bit banking headroom on converted 3-phase designs");
  parser.add_value("--cycles", &cycles, "simulated cycles (default 128)");
  parser.add_value("--lanes", &lanes,
                   "stimulus lanes per task, 1-64 (default 1)");
  parser.add_value("--threads", &threads,
                   "worker threads (default TP_THREADS or hardware)");
  parser.parse_or_exit(argc, argv);

  RunPlan plan;
  plan.benchmarks = {"s13207", "s35932", "SHA256", "Plasma", "RISCV",
                     "ArmM0"};
  plan.styles = {DesignStyle::kThreePhase};
  plan.cycles = cycles;
  plan.lanes = lanes;

  const CellLibrary& lib = CellLibrary::nominal_28nm();
  std::printf("Multi-bit banking headroom on 3-phase designs "
              "(extension)\n\n");
  std::printf("%-8s %9s %8s %6s | %12s %12s %7s\n", "design", "latches",
              "banked", "banks", "clk-reg mW", "banked mW", "save");

  util::Executor executor(threads);
  const std::vector<MatrixResult> results = run_matrix(plan, executor);

  int errors = 0;
  for (const MatrixResult& r : results) {
    if (!r.ok()) {
      std::printf("%-8s ERROR %s\n", r.task.benchmark.c_str(),
                  r.error.c_str());
      ++errors;
      continue;
    }
    // Re-derive placement and activity for the final netlist. Lane 0 keeps
    // the task's first-lane stimulus, so the activity matches the flow's.
    const circuits::Benchmark bench =
        circuits::make_benchmark(r.task.benchmark);
    const Stimulus stim = circuits::make_stimulus(
        bench, plan.workload, (cycles + lanes - 1) / lanes,
        lane_seed(r.task.seed, 0));
    const Placement placement = place(r.result.netlist, lib);
    SimOptions opt;
    opt.snapshot_event = 1;
    Simulator sim(r.result.netlist, opt);
    run_stream(sim, stim, 16);

    const BankingReport b =
        analyze_banking(r.result.netlist, lib, placement, sim.stats());
    std::printf("%-8s %9d %8d %6d | %12.3f %12.3f %6.1f%%\n",
                r.task.benchmark.c_str(), b.candidate_latches,
                b.banked_latches, b.banks, b.clock_power_before_mw,
                b.clock_power_after_mw, b.saving_pct());
    std::fflush(stdout);
  }
  std::printf("\n(Clock-register power only; the rest of the clock network "
              "is unchanged by banking.)\n");
  return errors == 0 ? 0 : 1;
}
