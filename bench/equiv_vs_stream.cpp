// SEC versus stream comparison as a conversion-validation method.
//
// The paper validates conversions by "streaming inputs ... and comparing
// output streams" for some number of cycles. That check is only as strong as
// the stream is long: a fault behind a rarely-enabled register bank can stay
// silent for thousands of cycles. This bench seeds single-point mutations
// into a converted 3-phase design and pits N-cycle stream comparison
// (N = 16 / 64 / 256) against the sequential equivalence checker, reporting
// detection rates and wall-clock cost per method. A 5000-cycle stream serves
// as the ground truth for whether a mutation is observable at all (some
// latch re-phasings are genuinely behavior-preserving).
//
// With --lanes L >= 2 each stream length also gets a bit-parallel row: L
// independent N-cycle stimuli (lane 0 reuses the scalar row's stream) are
// packed into one WideSimulator pass per mutant, with the golden wide
// stream simulated once per stream length and shared across mutants. That
// buys L streams of coverage for roughly one run's wall clock.
//
//   $ ./bench/equiv_vs_stream [circuit] [mutations] [--lanes L]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/circuits/benchmark.hpp"
#include "src/equiv/cex.hpp"
#include "src/equiv/sec.hpp"
#include "src/flow/matrix.hpp"  // flow::lane_seed
#include "src/sim/stimulus.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/transform/convert.hpp"
#include "src/transform/p2_gating.hpp"
#include "src/util/argparse.hpp"
#include "src/util/log.hpp"
#include "src/util/rng.hpp"

using namespace tp;

namespace {

constexpr std::size_t kGroundTruthCycles = 5000;
constexpr std::size_t kStreamLengths[] = {16, 64, 256};

struct Mutation {
  std::string label;
  Netlist netlist{"mutant"};
};

/// Single-point mutations: latch re-phasings (the realistic conversion bug:
/// a register assigned to the wrong phase) and input swaps on asymmetric
/// gates (mux data legs, the single leg of AOI/OAI cells) — swaps on
/// commutative gates would be no-ops.
std::vector<Mutation> seed_mutations(const Netlist& base, std::size_t count,
                                     Rng& rng) {
  std::vector<CellId> latches, gates;
  for (const CellId id : base.live_cells()) {
    const Cell& cell = base.cell(id);
    if (is_latch(cell.kind) &&
        (cell.phase == Phase::kP1 || cell.phase == Phase::kP3)) {
      latches.push_back(id);
    } else if (cell.kind == CellKind::kMux2 ||
               cell.kind == CellKind::kAoi21 ||
               cell.kind == CellKind::kOai21) {
      gates.push_back(id);
    }
  }
  std::vector<Mutation> mutations;
  for (std::size_t k = 0; k < count; ++k) {
    Mutation m;
    m.netlist = base;
    if ((k % 2 == 0 && !latches.empty()) || gates.empty()) {
      const CellId id = latches[rng.below(latches.size())];
      const Phase flipped = m.netlist.cell(id).phase == Phase::kP1
                                ? Phase::kP3
                                : Phase::kP1;
      m.netlist.set_phase(id, flipped);
      m.netlist.replace_input(id, 1, m.netlist.clocks().root(flipped));
      m.label = "latch-rephase " + base.cell(id).name;
    } else {
      const CellId id = gates[rng.below(gates.size())];
      // Mux: swap the data legs (select is pin 2). AOI/OAI !(a&b | c) /
      // !((a|b) & c): swap one AND/OR leg with the lone leg.
      const bool is_mux = m.netlist.cell(id).kind == CellKind::kMux2;
      const std::uint32_t pa = is_mux ? 0u : 1u;
      const std::uint32_t pb = is_mux ? 1u : 2u;
      const NetId a = m.netlist.cell(id).ins[pa];
      const NetId b = m.netlist.cell(id).ins[pb];
      if (a != b) {
        m.netlist.replace_input(id, pa, b);
        m.netlist.replace_input(id, pb, a);
      }
      m.label = "input-swap " + base.cell(id).name;
    }
    mutations.push_back(std::move(m));
  }
  return mutations;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positionals;
  std::size_t lanes = 16;
  util::ArgParser parser(
      "equiv_vs_stream",
      "pit N-cycle stream comparison (scalar and bit-parallel) against "
      "sequential equivalence checking on seeded conversion faults");
  parser.add_positionals(&positionals, "[circuit] [mutations]",
                         "benchmark name (default s5378) and mutation "
                         "count (default 20)");
  parser.add_value("--lanes", &lanes,
                   "bit-parallel stimulus lanes for the wide rows, 1-64; "
                   "1 disables them (default 16)");
  parser.parse_or_exit(argc, argv);
  if (lanes < 1 || lanes > kMaxSimLanes || positionals.size() > 2) {
    std::fprintf(stderr,
                 "--lanes must be in [1, 64] and at most 2 operands\n%s",
                 parser.usage().c_str());
    return 2;
  }
  const std::string circuit = !positionals.empty() ? positionals[0] : "s5378";
  const std::size_t count =
      positionals.size() > 1
          ? static_cast<std::size_t>(std::atoi(positionals[1].c_str()))
          : 20;

  const circuits::Benchmark bench = circuits::make_benchmark(circuit);
  const Netlist& golden = bench.netlist;
  Netlist converted = golden;
  infer_clock_gating(converted);
  ThreePhaseResult p3 = to_three_phase(converted);
  converted = std::move(p3.netlist);
  gate_p2_latches(converted);
  apply_m2(converted);

  Rng rng(2026);
  const std::vector<Mutation> mutations =
      seed_mutations(converted, count, rng);

  // Ground truth: which mutations are observable at all?
  const std::size_t num_inputs = golden.data_inputs().size();
  Rng stim_rng(777);
  const Stimulus truth_stim =
      random_stimulus(num_inputs, kGroundTruthCycles, stim_rng);
  const OutputStream golden_truth =
      equiv::simulate_outputs(golden, truth_stim);

  std::size_t breaking = 0;
  std::vector<bool> is_breaking(mutations.size());
  for (std::size_t k = 0; k < mutations.size(); ++k) {
    const OutputStream mutant_truth =
        equiv::simulate_outputs(mutations[k].netlist, truth_stim);
    is_breaking[k] = first_mismatch(golden_truth, mutant_truth) >= 0;
    breaking += is_breaking[k];
  }
  std::printf("%s: %zu mutations, %zu observable within %zu cycles\n\n",
              circuit.c_str(), mutations.size(), breaking,
              kGroundTruthCycles);
  std::printf("%-12s %9s %9s %9s %11s\n", "method", "detected", "missed",
              "false+", "time/run");

  // N-cycle stream comparison.
  for (const std::size_t cycles : kStreamLengths) {
    std::size_t detected = 0, missed = 0, false_positive = 0;
    Stopwatch watch;
    for (std::size_t k = 0; k < mutations.size(); ++k) {
      Rng r(31 + cycles);
      const Stimulus stim = random_stimulus(num_inputs, cycles, r);
      const OutputStream a = equiv::simulate_outputs(golden, stim);
      const OutputStream b =
          equiv::simulate_outputs(mutations[k].netlist, stim);
      const bool flagged = first_mismatch(a, b) >= 0;
      detected += flagged && is_breaking[k];
      missed += !flagged && is_breaking[k];
      false_positive += flagged && !is_breaking[k];
    }
    const double per_run = watch.seconds() / static_cast<double>(count);
    std::printf("stream-%-5zu %6zu/%-2zu %9zu %9zu %9.3f s\n", cycles,
                detected, breaking, missed, false_positive, per_run);
  }

  // Bit-parallel stream comparison: `lanes` independent N-cycle stimuli per
  // wide pass, lane 0 replaying the scalar row's stream. The golden wide
  // stream is computed once per stream length and reused for every mutant,
  // so time/run amortizes it. A lane that diverges on a mutation the
  // 5000-cycle truth stream never exposed is a genuine divergence (the wide
  // engine is bit-identical to the scalar one), reported like SEC's
  // beyond-horizon finds rather than as a false positive.
  if (lanes >= 2) {
    for (const std::size_t cycles : kStreamLengths) {
      std::vector<Stimulus> stims;
      stims.reserve(lanes);
      for (std::size_t l = 0; l < lanes; ++l) {
        Rng r(flow::lane_seed(31 + cycles, l));
        stims.push_back(random_stimulus(num_inputs, cycles, r));
      }
      const WideStimulus packed = pack_stimulus(stims);

      std::size_t detected = 0, missed = 0, beyond = 0;
      Stopwatch watch;
      SimOptions golden_options;
      golden_options.snapshot_event =
          golden.clocks().phases.size() == 3 ? 1 : 0;
      WideSimulator golden_sim(golden, lanes, golden_options);
      const OutputStream a = run_wide_stream(golden_sim, packed, 0);
      for (std::size_t k = 0; k < mutations.size(); ++k) {
        SimOptions mutant_options;
        mutant_options.snapshot_event =
            mutations[k].netlist.clocks().phases.size() == 3 ? 1 : 0;
        WideSimulator mutant_sim(mutations[k].netlist, lanes,
                                 mutant_options);
        const OutputStream b = run_wide_stream(mutant_sim, packed, 0);
        const bool flagged = first_mismatch(a, b) >= 0;
        detected += flagged && is_breaking[k];
        missed += !flagged && is_breaking[k];
        beyond += flagged && !is_breaking[k];
      }
      const double per_run = watch.seconds() / static_cast<double>(count);
      char label[32];
      std::snprintf(label, sizeof(label), "wide-%zux%zu", cycles, lanes);
      std::printf("%-12s %6zu/%-2zu %9zu %9zu %9.3f s", label, detected,
                  breaking, missed, std::size_t{0}, per_run);
      if (beyond) {
        std::printf("   (+%zu confirmed beyond the truth horizon)", beyond);
      }
      std::printf("\n");
    }
  }

  // Sequential equivalence checking. A falsification on a mutant the ground
  // truth calls "unobservable" is not a false alarm: the cex is replayed on
  // the reference simulator before SEC reports it, so it found a divergence
  // beyond the 5000-cycle horizon (or off the sampled stimulus path).
  {
    std::size_t detected = 0, missed = 0, beyond = 0, unknown = 0;
    Stopwatch watch;
    for (std::size_t k = 0; k < mutations.size(); ++k) {
      const equiv::SecResult r =
          equiv::check_sequential_equivalence(golden, mutations[k].netlist);
      const bool flagged =
          r.status == equiv::SecStatus::kFalsified && r.cex.confirmed;
      unknown += r.status == equiv::SecStatus::kUnknown;
      detected += flagged && is_breaking[k];
      missed += !flagged && is_breaking[k];
      beyond += flagged && !is_breaking[k];
    }
    const double per_run = watch.seconds() / static_cast<double>(count);
    std::printf("SEC          %6zu/%-2zu %9zu %9zu %9.3f s", detected,
                breaking, missed, std::size_t{0}, per_run);
    if (beyond) {
      std::printf("   (+%zu confirmed beyond the truth horizon)", beyond);
    }
    if (unknown) std::printf("   (%zu unknown)", unknown);
    std::printf("\n");
  }
  return 0;
}
