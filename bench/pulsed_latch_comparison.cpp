// Extension bench: the pulsed-latch alternative discussed in Sec. I,
// compared head-to-head with the FF, master-slave, and 3-phase backends.
// Pulsed latches are as small as 3-phase latches but pay the hold-padding
// bill the paper warns about ("subject to hold problems"): every short
// register-to-register path needs buffers to outlast the pulse. The table
// makes that cost and the remaining power gap visible.
//
// Runs as one RunPlan on the work-stealing executor; rows stream out in
// task order. --lanes >= 2 splits the cycle budget across a bit-parallel
// wide simulation.
//
//   $ ./bench/pulsed_latch_comparison --cycles 128 --lanes 4
#include <cstdio>
#include <map>
#include <string>

#include "src/flow/matrix.hpp"
#include "src/util/argparse.hpp"
#include "src/util/executor.hpp"

using namespace tp;
using namespace tp::flow;

int main(int argc, char** argv) {
  std::size_t cycles = 128, lanes = 1, threads = 0;

  util::ArgParser parser(
      "pulsed_latch_comparison",
      "compare the pulsed-latch backend against FF and 3-phase");
  parser.add_value("--cycles", &cycles, "simulated cycles (default 128)");
  parser.add_value("--lanes", &lanes,
                   "stimulus lanes per task, 1-64 (default 1)");
  parser.add_value("--threads", &threads,
                   "worker threads (default TP_THREADS or hardware)");
  parser.parse_or_exit(argc, argv);

  RunPlan plan;
  plan.benchmarks = {"s5378", "s13207", "s35932", "SHA256", "Plasma"};
  plan.styles = {DesignStyle::kFlipFlop, DesignStyle::kPulsedLatch,
                 DesignStyle::kThreePhase};
  plan.cycles = cycles;
  plan.lanes = lanes;

  std::printf("Pulsed-latch comparison (extension; Sec. I discussion)\n\n");
  std::printf("%-8s %-4s %7s %8s %9s %9s %9s %6s\n", "design", "style",
              "regs", "holdbuf", "area um2", "total mW", "slack ps", "eq?");

  util::Executor executor(threads);
  const std::vector<MatrixResult> results = run_matrix(plan, executor);

  // Streams are comparable across backends of one benchmark: RunPlan
  // derives the stimulus seed from the benchmark only.
  std::map<std::string, const FlowResult*> reference;
  int mismatches = 0, errors = 0;
  for (const MatrixResult& r : results) {
    if (!r.ok()) {
      std::printf("%-8s %-4s ERROR %s\n", r.task.benchmark.c_str(),
                  std::string(style_name(r.task.style)).c_str(),
                  r.error.c_str());
      ++errors;
      continue;
    }
    bool eq = true;
    if (r.task.style == DesignStyle::kFlipFlop) {
      reference[r.task.benchmark] = &r.result;
    } else if (const FlowResult* ff = reference[r.task.benchmark]) {
      eq = streams_equal(ff->outputs, r.result.outputs);
      if (!eq) ++mismatches;
    }
    std::printf("%-8s %-4s %7d %8d %9.0f %9.3f %9.0f %6s\n",
                r.task.benchmark.c_str(),
                std::string(style_name(r.task.style)).c_str(),
                r.result.registers, r.result.hold.buffers_inserted,
                r.result.area_um2, r.result.power.total_mw(),
                r.result.timing.worst_setup_slack_ps, eq ? "yes" : "NO");
    std::fflush(stdout);
  }
  std::printf("\nPulsed latches need hold padding on every fast path; the "
              "3-phase scheme avoids it with non-overlapping windows.\n");
  return mismatches == 0 && errors == 0 ? 0 : 1;
}
