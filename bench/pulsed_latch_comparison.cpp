// Extension bench: the pulsed-latch alternative discussed in Sec. I,
// compared head-to-head with the FF, master-slave, and 3-phase styles.
// Pulsed latches are as small as 3-phase latches but pay the hold-padding
// bill the paper warns about ("subject to hold problems"): every short
// register-to-register path needs buffers to outlast the pulse. The table
// makes that cost and the remaining power gap visible.
//
//   $ ./bench/pulsed_latch_comparison [cycles]
#include <cstdio>
#include <cstdlib>

#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"

using namespace tp;
using namespace tp::flow;

int main(int argc, char** argv) {
  const std::size_t cycles =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 128;
  std::printf("Pulsed-latch comparison (extension; Sec. I discussion)\n\n");
  std::printf("%-8s %-4s %7s %8s %9s %9s %9s %6s\n", "design", "style",
              "regs", "holdbuf", "area um2", "total mW", "slack ps", "eq?");
  for (const auto& name : {"s5378", "s13207", "s35932", "SHA256", "Plasma"}) {
    const circuits::Benchmark bench = circuits::make_benchmark(name);
    const Stimulus stim = circuits::make_stimulus(
        bench, circuits::Workload::kPaperDefault, cycles, 7);
    FlowResult reference;
    for (const DesignStyle style :
         {DesignStyle::kFlipFlop, DesignStyle::kPulsedLatch,
          DesignStyle::kThreePhase}) {
      const FlowResult r = run_flow(bench, style, stim);
      const bool eq = style == DesignStyle::kFlipFlop
                          ? true
                          : streams_equal(reference.outputs, r.outputs);
      std::printf("%-8s %-4s %7d %8d %9.0f %9.3f %9.0f %6s\n", name,
                  std::string(style_name(style)).c_str(), r.registers,
                  r.hold.buffers_inserted, r.area_um2, r.power.total_mw(),
                  r.timing.worst_setup_slack_ps, eq ? "yes" : "NO");
      std::fflush(stdout);
      if (style == DesignStyle::kFlipFlop) reference = r;
    }
  }
  std::printf("\nPulsed latches need hold padding on every fast path; the "
              "3-phase scheme avoids it with non-overlapping windows.\n");
  return 0;
}
