// Micro-benchmarks (google-benchmark): phase-assignment solver throughput
// on random register graphs of increasing size, plus the generic 0-1 ILP
// branch-and-bound on set-cover-style models.
#include <benchmark/benchmark.h>

#include "src/ilp/solver.hpp"
#include "src/phase/assignment.hpp"
#include "src/phase/ilp_formulation.hpp"
#include "src/util/rng.hpp"

namespace tp {
namespace {

RegisterGraph random_graph(int n, double edge_p, std::uint64_t seed) {
  Rng rng(seed);
  RegisterGraph g;
  for (int i = 0; i < n; ++i) {
    g.regs.push_back(CellId{static_cast<std::uint32_t>(i)});
    g.node_of.emplace(static_cast<std::uint32_t>(i), i);
  }
  g.fanout.resize(static_cast<std::size_t>(n));
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (rng.chance(edge_p)) {
        g.fanout[static_cast<std::size_t>(u)].push_back(v);
      }
    }
  }
  return g;
}

void BM_SpecializedSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const RegisterGraph g = random_graph(n, 4.0 / n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign_phases_specialized(g, 5.0));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SpecializedSolver)->Range(32, 4096)->Complexity();

void BM_GreedySolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const RegisterGraph g = random_graph(n, 4.0 / n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign_phases_greedy(g));
  }
}
BENCHMARK(BM_GreedySolver)->Range(32, 4096);

void BM_GenericIlp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const RegisterGraph g = random_graph(n, 4.0 / n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign_phases_ilp(g, 5.0));
  }
}
BENCHMARK(BM_GenericIlp)->Range(16, 256);

void BM_IlpFormulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const RegisterGraph g = random_graph(n, 4.0 / n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_phase_ilp(g));
  }
}
BENCHMARK(BM_IlpFormulation)->Range(64, 4096);

}  // namespace
}  // namespace tp

BENCHMARK_MAIN();
