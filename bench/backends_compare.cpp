// backends_compare — every registered conversion backend through one
// RunPlan, gated the same way: per-stage lint, per-stage SEC against the
// FF input, and output-stream equivalence against the FF baseline row.
// After the grid, each backend's canonical seeded violation is planted
// into a converted netlist and the checker must flag the exact rule the
// backend promised — proving the per-backend rule sets are non-vacuous.
// The same probe runs for the domain-level analyses: every backend plants
// an unsynchronized clock-domain crossing (A4 cdc-unsync) and a
// reset-domain crossing (A6 rdc-crossing) and run_analysis() must flag
// both.
//
// Writes BENCH_backends.json (one row per registered backend with mean
// power/area and summed runtime over the grid) for the CI perf trail.
//
//   $ ./bench/backends_compare [--quick] [--cycles N] [--lanes N]
//                              [--threads N] [--out FILE]
//
// Exit status: 0 when every gate holds on every backend, 1 otherwise,
// 2 on usage errors.
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/analysis.hpp"
#include "src/flow/backend.hpp"
#include "src/flow/matrix.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/util/argparse.hpp"
#include "src/util/executor.hpp"
#include "src/util/json.hpp"

using namespace tp;
using namespace tp::flow;

namespace {

/// Aggregated grid row for one backend.
struct BackendRow {
  const ConversionBackend* backend = nullptr;
  int benchmarks = 0;  // grid cells that ran
  int errors = 0;      // cells whose flow failed outright
  double registers = 0, area_um2 = 0, total_mw = 0, clock_mw = 0;
  double runtime_s = 0;  // summed task wall-clock
  bool lint_clean = true;
  bool sec_proven = true;
  bool stream_equal = true;
  bool seeded_detected = false;
  std::string seeded_rule;
  std::string seeded_error;
  bool cdc_detected = false;   // seed_cdc_violation() -> A4 flagged
  bool rdc_detected = false;   // seed_rdc_violation() -> A6 flagged
  std::string cdc_error;
  std::string rdc_error;
};

/// Converts `bench` with `backend` (shared with probe_seeded_violation)
/// and returns the converted netlist, ready for a domain-rule plant.
Netlist converted_copy(const ConversionBackend& backend,
                       const circuits::Benchmark& bench) {
  Netlist netlist = bench.netlist;
  infer_clock_gating(netlist);
  const FlowOptions options = FlowOptions::fast();
  const CellLibrary& library = CellLibrary::nominal_28nm();
  FlowResult scratch;
  FlowContext ctx{
      .netlist = netlist,
      .options = options,
      .library = library,
      .result = scratch,
      .checkpoint = [](std::string_view) {},
      .activity = [] { return ActivityStats{}; },
  };
  backend.convert(ctx);
  return netlist;
}

/// Plants a domain-rule violation via `seed` (seed_cdc_violation or
/// seed_rdc_violation) and returns true when run_analysis() reports the
/// promised rule — and was quiet on it before the plant.
bool probe_domain_violation(const ConversionBackend& backend,
                            const circuits::Benchmark& bench,
                            check::RuleId (ConversionBackend::*seed)(
                                Netlist&) const) {
  Netlist netlist = converted_copy(backend, bench);
  const check::CheckReport before = analysis::run_analysis(netlist);
  const check::RuleId rule = (backend.*seed)(netlist);
  if (before.count(rule) != 0) return false;  // vacuous plant
  const check::CheckReport after = analysis::run_analysis(netlist);
  return after.count(rule) > 0;
}

/// Converts `bench` with `backend` (fast options, no checks) and plants
/// the backend's canonical violation; returns true when run_checks()
/// reports the rule the backend promised.
bool probe_seeded_violation(const ConversionBackend& backend,
                            const circuits::Benchmark& bench,
                            BackendRow* row) {
  Netlist netlist = bench.netlist;
  infer_clock_gating(netlist);
  const FlowOptions options = FlowOptions::fast();
  const CellLibrary& library = CellLibrary::nominal_28nm();
  FlowResult scratch;
  FlowContext ctx{
      .netlist = netlist,
      .options = options,
      .library = library,
      .result = scratch,
      .checkpoint = [](std::string_view) {},
      .activity = [] { return ActivityStats{}; },  // fast(): DDCG is off
  };
  backend.convert(ctx);

  // The converted netlist must be quiet on the seeded rule before the
  // plant — otherwise detection would be vacuous.
  const check::RuleId rule = backend.seed_violation(netlist);
  row->seeded_rule = check::rule_name(rule);
  const check::CheckReport report = check::run_checks(netlist);
  return report.count(rule) > 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t cycles = 0, lanes = 1, threads = 0;
  bool quick = false;
  std::string out_file = "BENCH_backends.json";

  util::ArgParser parser(
      "backends_compare",
      "run every registered conversion backend through the same grid with "
      "lint + SEC + stream gates and per-backend seeded-violation probes");
  parser.add_flag("--quick", &quick,
                  "small grid for CI smoke (s5378 only, 48 cycles)");
  parser.add_value("--cycles", &cycles,
                   "simulated cycles (default 96, quick 48)");
  parser.add_value("--lanes", &lanes,
                   "stimulus lanes per task, 1-64 (default 1)");
  parser.add_value("--threads", &threads,
                   "worker threads (default TP_THREADS or hardware)");
  parser.add_value("--out", &out_file,
                   "JSON output path (default BENCH_backends.json)", "FILE");
  parser.parse_or_exit(argc, argv);

  RunPlan plan;
  plan.benchmarks = quick
                        ? std::vector<std::string>{"s5378"}
                        : std::vector<std::string>{"s5378", "s9234", "s13207"};
  plan.styles.clear();
  for (const ConversionBackend* backend : backend_registry()) {
    plan.styles.push_back(backend->id());
  }
  plan.cycles = cycles > 0 ? cycles : (quick ? 48 : 96);
  plan.lanes = lanes;
  plan.options = FlowOptions::fast();
  plan.options.check_rules = true;
  plan.options.check_equivalence = true;

  std::printf("backends_compare: %zu benchmark(s) x %zu backend(s), "
              "%zu cycles\n\n",
              plan.benchmarks.size(), plan.styles.size(), plan.cycles);
  std::printf("%-8s %-4s %7s %9s %9s %7s | %-5s %-4s %-6s\n", "design",
              "bknd", "regs", "area um2", "total mW", "time s", "lint",
              "sec", "stream");

  util::Executor executor(threads);
  const std::vector<MatrixResult> results = run_matrix(plan, executor);

  std::map<DesignStyle, BackendRow> rows;
  for (const ConversionBackend* backend : backend_registry()) {
    rows[backend->id()].backend = backend;
  }

  // Streams are comparable across backends of one benchmark (task_seed is
  // style-independent); the FF row arrives first in plan order.
  std::map<std::string, const FlowResult*> reference;
  int failures = 0;
  for (const MatrixResult& r : results) {
    BackendRow& row = rows[r.task.style];
    if (!r.ok()) {
      std::printf("%-8s %-4s ERROR %s\n", r.task.benchmark.c_str(),
                  std::string(style_name(r.task.style)).c_str(),
                  r.error.c_str());
      ++row.errors;
      ++failures;
      continue;
    }
    const bool lint_ok = r.result.lint.all_clean();
    const bool sec_ok = r.result.equiv.all_proven();
    bool stream_ok = true;
    if (r.task.style == DesignStyle::kFlipFlop) {
      reference[r.task.benchmark] = &r.result;
    } else if (const FlowResult* ff = reference[r.task.benchmark]) {
      stream_ok = streams_equal(ff->outputs, r.result.outputs);
    }
    row.benchmarks += 1;
    row.registers += r.result.registers;
    row.area_um2 += r.result.area_um2;
    row.total_mw += r.result.power.total_mw();
    row.clock_mw += r.result.power.clock_mw;
    row.runtime_s += r.seconds;
    row.lint_clean = row.lint_clean && lint_ok;
    row.sec_proven = row.sec_proven && sec_ok;
    row.stream_equal = row.stream_equal && stream_ok;
    if (!lint_ok || !sec_ok || !stream_ok) ++failures;
    std::printf("%-8s %-4s %7d %9.0f %9.3f %7.2f | %-5s %-4s %-6s\n",
                r.task.benchmark.c_str(),
                std::string(style_name(r.task.style)).c_str(),
                r.result.registers, r.result.area_um2,
                r.result.power.total_mw(), r.seconds,
                lint_ok ? "ok" : "FAIL", sec_ok ? "ok" : "FAIL",
                stream_ok ? "ok" : "FAIL");
    std::fflush(stdout);
  }

  // Seeded-violation probes: each backend plants its canonical illegality
  // into a converted copy of the smallest grid benchmark, and the checker
  // must report exactly the promised rule.
  std::printf("\nseeded-violation probes (%s):\n",
              plan.benchmarks.front().c_str());
  const circuits::Benchmark seed_bench =
      circuits::make_benchmark(plan.benchmarks.front());
  for (auto& [style, row] : rows) {
    try {
      row.seeded_detected =
          probe_seeded_violation(*row.backend, seed_bench, &row);
    } catch (const Error& e) {
      row.seeded_detected = false;
      row.seeded_error = e.what();
    }
    if (!row.seeded_detected) ++failures;
    std::printf("  %-4s plants %-22s %s%s%s\n",
                std::string(row.backend->display_name()).c_str(),
                row.seeded_rule.empty() ? "(convert failed)"
                                        : row.seeded_rule.c_str(),
                row.seeded_detected ? "detected" : "MISSED",
                row.seeded_error.empty() ? "" : " — ",
                row.seeded_error.c_str());
  }

  // Domain-rule probes: every backend must detect a planted A4
  // (cdc-unsync) and A6 (rdc-crossing) in its own converted netlist.
  std::printf("\ndomain-rule probes (%s):\n",
              plan.benchmarks.front().c_str());
  for (auto& [style, row] : rows) {
    try {
      row.cdc_detected = probe_domain_violation(
          *row.backend, seed_bench, &ConversionBackend::seed_cdc_violation);
    } catch (const Error& e) {
      row.cdc_detected = false;
      row.cdc_error = e.what();
    }
    try {
      row.rdc_detected = probe_domain_violation(
          *row.backend, seed_bench, &ConversionBackend::seed_rdc_violation);
    } catch (const Error& e) {
      row.rdc_detected = false;
      row.rdc_error = e.what();
    }
    if (!row.cdc_detected) ++failures;
    if (!row.rdc_detected) ++failures;
    std::printf("  %-4s cdc-unsync %s%s%s, rdc-crossing %s%s%s\n",
                std::string(row.backend->display_name()).c_str(),
                row.cdc_detected ? "detected" : "MISSED",
                row.cdc_error.empty() ? "" : " — ", row.cdc_error.c_str(),
                row.rdc_detected ? "detected" : "MISSED",
                row.rdc_error.empty() ? "" : " — ", row.rdc_error.c_str());
  }

  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("backends_compare");
  w.key("quick").value(quick);
  w.key("cycles").value(static_cast<std::uint64_t>(plan.cycles));
  w.key("lanes").value(static_cast<std::uint64_t>(plan.lanes));
  w.key("benchmarks").begin_array();
  for (const std::string& b : plan.benchmarks) w.value(b);
  w.end_array();
  w.key("backends").begin_array();
  for (const auto& [style, row] : rows) {
    const double n = row.benchmarks > 0 ? row.benchmarks : 1;
    w.begin_object();
    w.key("backend").value(row.backend->token());
    w.key("display").value(row.backend->display_name());
    w.key("cells_run").value(static_cast<std::uint64_t>(row.benchmarks));
    w.key("errors").value(static_cast<std::uint64_t>(row.errors));
    w.key("mean_registers").value(row.registers / n);
    w.key("mean_area_um2").value(row.area_um2 / n);
    w.key("mean_total_mw").value(row.total_mw / n);
    w.key("mean_clock_mw").value(row.clock_mw / n);
    w.key("runtime_s").value(row.runtime_s);
    w.key("lint_clean").value(row.lint_clean);
    w.key("sec_proven").value(row.sec_proven);
    w.key("stream_equal").value(row.stream_equal);
    w.key("seeded_rule").value(row.seeded_rule);
    w.key("seeded_detected").value(row.seeded_detected);
    w.key("seeded_cdc_detected").value(row.cdc_detected);
    w.key("seeded_rdc_detected").value(row.rdc_detected);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::ofstream out(out_file);
  if (!out.good()) {
    std::fprintf(stderr, "cannot open %s\n", out_file.c_str());
    return 1;
  }
  out << w.take() << "\n";
  std::printf("\nwrote %s\n", out_file.c_str());

  if (failures > 0) {
    std::fprintf(stderr, "backends_compare: %d gate failure(s)\n", failures);
    return 1;
  }
  return 0;
}
