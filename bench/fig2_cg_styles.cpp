// Reproduces Fig. 2's design-flow point: synthesizing with the gated-clock
// style (ICGs) instead of the enabled-clock style (recirculating muxes)
// minimizes FFs with combinational self-loops, which directly improves the
// phase-assignment objective. Sweeps the enable-heavy benchmarks under both
// styles and reports self-loop counts, inserted p2 latches, and power.
// Both style sweeps run as one task wave on the flow-matrix engine.
//
//   $ ./bench/fig2_cg_styles [--cycles N] [--threads N] [--lanes N]
#include <cstdio>

#include "src/flow/matrix.hpp"
#include "src/netlist/traverse.hpp"
#include "src/util/argparse.hpp"
#include "src/util/executor.hpp"

using namespace tp;
using namespace tp::flow;

namespace {

int self_loops(const Netlist& netlist) {
  const RegisterGraph g = build_register_graph(netlist);
  int loops = 0;
  for (std::size_t u = 0; u < g.regs.size(); ++u) {
    loops += g.has_self_loop(static_cast<int>(u));
  }
  return loops;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t cycles = 128, threads = 0, lanes = 1;
  util::ArgParser parser("fig2_cg_styles",
                         "reproduce Fig. 2 (clock-gating style and its "
                         "effect on the conversion)");
  parser.add_value("--cycles", &cycles, "simulated cycles (default 128)");
  parser.add_value("--threads", &threads,
                   "worker threads (default TP_THREADS or hardware)");
  parser.add_value("--lanes", &lanes,
                   "stimulus lanes per task, 1-64 (default 1)");
  parser.parse_or_exit(argc, argv);
  if (lanes < 1 || lanes > kMaxSimLanes) {
    std::fprintf(stderr, "--lanes must be in [1, 64]\n%s",
                 parser.usage().c_str());
    return 2;
  }

  // Enable-rich designs: CEP cores and the CPUs. One plan per synthesis
  // clock-gating style; both submitted in one wave.
  RunPlan base;
  base.benchmarks = {"AES", "DES3", "SHA256", "MD5", "Plasma", "RISCV",
                     "ArmM0"};
  base.styles = {DesignStyle::kThreePhase};
  base.cycles = cycles;
  base.lanes = lanes;
  const std::size_t per_lane = (cycles + lanes - 1) / lanes;
  if (per_lane <= base.options.warmup_cycles) {
    base.options.warmup_cycles = per_lane / 2;
  }
  const CgStyle kStyles[] = {CgStyle::kGated, CgStyle::kEnabled};
  std::vector<RunPlan> plans(2, base);
  plans[0].options.synthesis_cg.style = kStyles[0];
  plans[1].options.synthesis_cg.style = kStyles[1];

  util::Executor executor(threads);
  const std::vector<std::vector<MatrixResult>> results =
      run_matrices(plans, executor);

  std::printf("Fig. 2 — clock-gating style and its effect on the "
              "conversion\n\n");
  std::printf("%-8s %-8s %10s %10s %10s %10s\n", "design", "style",
              "self-loops", "insertedP2", "3P regs", "3P mW");
  for (std::size_t b = 0; b < base.benchmarks.size(); ++b) {
    const std::string& name = base.benchmarks[b];
    const circuits::Benchmark bench = circuits::make_benchmark(name);
    for (std::size_t s = 0; s < plans.size(); ++s) {
      const FlowResult& r = results[s][b].result;
      // Count self-loops on the synthesized FF netlist the conversion saw.
      Netlist synth = bench.netlist;
      infer_clock_gating(synth, plans[s].options.synthesis_cg);
      std::printf("%-8s %-8s %10d %10d %10d %10.3f\n", name.c_str(),
                  kStyles[s] == CgStyle::kGated ? "gated" : "enabled",
                  self_loops(synth), r.inserted_p2, r.registers,
                  r.power.total_mw());
      std::fflush(stdout);
    }
  }
  std::printf("\nThe gated style leaves fewer self-loops, so the ILP can "
              "convert more FFs to single latches (fewer inserted p2).\n");
  return 0;
}
