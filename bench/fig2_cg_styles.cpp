// Reproduces Fig. 2's design-flow point: synthesizing with the gated-clock
// style (ICGs) instead of the enabled-clock style (recirculating muxes)
// minimizes FFs with combinational self-loops, which directly improves the
// phase-assignment objective. Sweeps the enable-heavy benchmarks under both
// styles and reports self-loop counts, inserted p2 latches, and power.
//
//   $ ./bench/fig2_cg_styles [cycles]
#include <cstdio>
#include <cstdlib>

#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"
#include "src/netlist/traverse.hpp"

using namespace tp;
using namespace tp::flow;

namespace {

int self_loops(const Netlist& netlist) {
  const RegisterGraph g = build_register_graph(netlist);
  int loops = 0;
  for (std::size_t u = 0; u < g.regs.size(); ++u) {
    loops += g.has_self_loop(static_cast<int>(u));
  }
  return loops;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t cycles =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 128;
  std::printf("Fig. 2 — clock-gating style and its effect on the "
              "conversion\n\n");
  std::printf("%-8s %-8s %10s %10s %10s %10s\n", "design", "style",
              "self-loops", "insertedP2", "3P regs", "3P mW");
  // Enable-rich designs: CEP cores and the CPUs.
  for (const auto& name : {"AES", "DES3", "SHA256", "MD5", "Plasma",
                           "RISCV", "ArmM0"}) {
    const circuits::Benchmark bench = circuits::make_benchmark(name);
    const Stimulus stim = circuits::make_stimulus(
        bench, circuits::Workload::kPaperDefault, cycles, 7);
    for (const CgStyle style : {CgStyle::kGated, CgStyle::kEnabled}) {
      FlowOptions options;
      options.synthesis_cg.style = style;
      const FlowResult r =
          run_flow(bench, DesignStyle::kThreePhase, stim, options);
      // Count self-loops on the synthesized FF netlist the conversion saw.
      Netlist synth = bench.netlist;
      infer_clock_gating(synth, options.synthesis_cg);
      std::printf("%-8s %-8s %10d %10d %10d %10.3f\n", name,
                  style == CgStyle::kGated ? "gated" : "enabled",
                  self_loops(synth), r.inserted_p2, r.registers,
                  r.power.total_mw());
      std::fflush(stdout);
    }
  }
  std::printf("\nThe gated style leaves fewer self-loops, so the ILP can "
              "convert more FFs to single latches (fewer inserted p2).\n");
  return 0;
}
