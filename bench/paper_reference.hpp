// Reference values from the paper (Cheng et al., DATE 2020) used by the
// bench binaries to print paper-vs-measured comparisons.
//
// Table I: number of registers and total area (um^2).
// Table II: power (mW) split into Clock / Seq / Comb / Total.
#pragma once

#include <optional>
#include <string>

namespace tp::bench {

struct PaperRow {
  const char* name;
  // Table I.
  int ff_regs, ms_regs, p3_regs;
  double ff_area, ms_area, p3_area;
  // Table II totals.
  double ff_power, ms_power, p3_power;
};

inline constexpr PaperRow kPaperRows[] = {
    {"s1196", 18, 36, 26, 240, 228, 219, 0.30, 0.32, 0.28},
    {"s1238", 18, 36, 26, 238, 229, 215, 0.29, 0.32, 0.27},
    {"s1423", 81, 158, 146, 591, 466, 524, 0.82, 0.63, 0.75},
    {"s1488", 6, 16, 12, 217, 232, 239, 0.17, 0.19, 0.17},
    {"s5378", 163, 317, 250, 930, 914, 0, 1.44, 1.34, 1.13},
    {"s9234", 140, 278, 225, 902, 752, 741, 0.89, 0.78, 0.73},
    {"s13207", 457, 890, 725, 2675, 2058, 2056, 2.89, 2.69, 2.21},
    {"s15850", 454, 904, 747, 2885, 2565, 2315, 2.98, 2.87, 2.47},
    {"s35932", 1728, 3456, 2737, 11770, 9356, 9054, 18.50, 16.80, 14.00},
    {"s38417", 1489, 2751, 2366, 9395, 7272, 7863, 9.26, 8.62, 7.24},
    {"s38584", 1319, 2633, 2422, 9355, 7683, 7961, 14.50, 13.30, 13.70},
    {"AES", 9715, 16829, 12871, 133115, 121960, 119174, 19.10, 14.50, 8.27},
    {"DES3", 436, 842, 573, 2711, 2738, 2449, 0.91, 0.74, 0.72},
    {"SHA256", 1574, 3308, 2523, 9996, 9461, 8594, 0.31, 0.42, 0.30},
    {"MD5", 804, 1889, 996, 7023, 6630, 6947, 0.40, 1.78, 0.36},
    {"Plasma", 1606, 2357, 2078, 8944, 7546, 8029, 1.68, 1.63, 1.36},
    {"RISCV", 2795, 5312, 4084, 14453, 15268, 14002, 1.01, 1.25, 0.92},
    {"ArmM0", 1397, 2713, 2290, 10690, 11007, 11514, 2.00, 2.90, 1.84},
};

inline std::optional<PaperRow> paper_row(const std::string& name) {
  for (const PaperRow& row : kPaperRows) {
    if (name == row.name) return row;
  }
  return std::nullopt;
}

/// Percentage saving of b relative to a: 100 * (a - b) / a.
inline double save_pct(double a, double b) {
  return a > 0 ? 100.0 * (a - b) / a : 0.0;
}

}  // namespace tp::bench
