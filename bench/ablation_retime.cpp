// Ablation: the modified retiming of Sec. IV-C on/off — latch counts (the
// min-cut merges reconvergent p2 latches), worst setup slack (moves close
// half-stage violations), and total power. Both configurations run as one
// task wave on the flow-matrix engine.
//
//   $ ./bench/ablation_retime [--cycles N] [--threads N] [--lanes N]
#include <cstdio>

#include "src/flow/matrix.hpp"
#include "src/util/argparse.hpp"
#include "src/util/executor.hpp"

using namespace tp;
using namespace tp::flow;

int main(int argc, char** argv) {
  std::size_t cycles = 128, threads = 0, lanes = 1;
  util::ArgParser parser("ablation_retime",
                         "modified-retiming ablation (Sec. IV-C) on "
                         "3-phase designs");
  parser.add_value("--cycles", &cycles, "simulated cycles (default 128)");
  parser.add_value("--threads", &threads,
                   "worker threads (default TP_THREADS or hardware)");
  parser.add_value("--lanes", &lanes,
                   "stimulus lanes per task, 1-64 (default 1)");
  parser.parse_or_exit(argc, argv);
  if (lanes < 1 || lanes > kMaxSimLanes) {
    std::fprintf(stderr, "--lanes must be in [1, 64]\n%s",
                 parser.usage().c_str());
    return 2;
  }

  RunPlan base;
  base.benchmarks = {"s5378", "s13207", "s35932", "SHA256", "Plasma",
                     "RISCV", "ArmM0"};
  base.styles = {DesignStyle::kThreePhase};
  base.cycles = cycles;
  base.lanes = lanes;
  const std::size_t per_lane = (cycles + lanes - 1) / lanes;
  if (per_lane <= base.options.warmup_cycles) {
    base.options.warmup_cycles = per_lane / 2;
  }
  // Plans: [0] retiming off, [1] retiming on.
  std::vector<RunPlan> plans(2, base);
  plans[0].options.retime = false;

  util::Executor executor(threads);
  const std::vector<std::vector<MatrixResult>> results =
      run_matrices(plans, executor);

  std::printf("Modified-retiming ablation (3-phase designs)\n\n");
  std::printf("%-8s | %9s %9s %7s | %10s %10s | %9s %9s\n", "design",
              "regs off", "regs on", "moved", "slack off", "slack on",
              "mW off", "mW on");
  for (std::size_t b = 0; b < base.benchmarks.size(); ++b) {
    const FlowResult& without = results[0][b].result;
    const FlowResult& with = results[1][b].result;
    std::printf("%-8s | %9d %9d %7d | %9.0f %9.0f | %9.3f %9.3f\n",
                base.benchmarks[b].c_str(), without.registers,
                with.registers, with.retime.moved,
                without.timing.worst_setup_slack_ps,
                with.timing.worst_setup_slack_ps,
                without.power.total_mw(), with.power.total_mw());
    std::fflush(stdout);
  }
  std::printf("\n(The paper observes that retiming latch-based designs can "
              "also grow combinational area; negative 'slack off' rows show "
              "why the step is mandatory.)\n");
  return 0;
}
