// Ablation: the modified retiming of Sec. IV-C on/off — latch counts (the
// min-cut merges reconvergent p2 latches), worst setup slack (moves close
// half-stage violations), and total power.
//
//   $ ./bench/ablation_retime [cycles]
#include <cstdio>
#include <cstdlib>

#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"

using namespace tp;
using namespace tp::flow;

int main(int argc, char** argv) {
  const std::size_t cycles =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 128;
  std::printf("Modified-retiming ablation (3-phase designs)\n\n");
  std::printf("%-8s | %9s %9s %7s | %10s %10s | %9s %9s\n", "design",
              "regs off", "regs on", "moved", "slack off", "slack on",
              "mW off", "mW on");
  for (const auto& name : {"s5378", "s13207", "s35932", "SHA256", "Plasma",
                           "RISCV", "ArmM0"}) {
    const circuits::Benchmark bench = circuits::make_benchmark(name);
    const Stimulus stim = circuits::make_stimulus(
        bench, circuits::Workload::kPaperDefault, cycles, 7);
    FlowOptions off;
    off.retime = false;
    const FlowResult without = run_flow(bench, DesignStyle::kThreePhase,
                                        stim, off);
    const FlowResult with = run_flow(bench, DesignStyle::kThreePhase, stim);
    std::printf("%-8s | %9d %9d %7d | %9.0f %9.0f | %9.3f %9.3f\n", name,
                without.registers, with.registers, with.retime.moved,
                without.timing.worst_setup_slack_ps,
                with.timing.worst_setup_slack_ps,
                without.power.total_mw(), with.power.total_mw());
    std::fflush(stdout);
  }
  std::printf("\n(The paper observes that retiming latch-based designs can "
              "also grow combinational area; negative 'slack off' rows show "
              "why the step is mandatory.)\n");
  return 0;
}
