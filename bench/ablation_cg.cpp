// Ablation: the clock-gating feature ladder of Sec. IV-D — no p2 gating,
// +common-enable gating, +M1 cells, +M2 latch removal, +multi-bit DDCG —
// measured by total and clock-network power. All five rungs run as one
// task wave on the flow-matrix engine.
//
//   $ ./bench/ablation_cg [--cycles N] [--threads N] [--lanes N]
#include <cstdio>

#include "src/flow/matrix.hpp"
#include "src/util/argparse.hpp"
#include "src/util/executor.hpp"

using namespace tp;
using namespace tp::flow;

namespace {

struct Config {
  const char* label;
  bool common_enable;
  bool m1;
  bool m2;
  bool ddcg;
};

constexpr Config kConfigs[] = {
    {"none", false, false, false, false},
    {"+commonEN", true, false, false, false},
    {"+M1", true, true, false, false},
    {"+M2", true, true, true, false},
    {"+DDCG (full)", true, true, true, true},
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t cycles = 128, threads = 0, lanes = 1;
  util::ArgParser parser("ablation_cg",
                         "clock-gating feature ladder (Sec. IV-D) measured "
                         "by total and clock-network power");
  parser.add_value("--cycles", &cycles, "simulated cycles (default 128)");
  parser.add_value("--threads", &threads,
                   "worker threads (default TP_THREADS or hardware)");
  parser.add_value("--lanes", &lanes,
                   "stimulus lanes per task, 1-64 (default 1)");
  parser.parse_or_exit(argc, argv);
  if (lanes < 1 || lanes > kMaxSimLanes) {
    std::fprintf(stderr, "--lanes must be in [1, 64]\n%s",
                 parser.usage().c_str());
    return 2;
  }

  RunPlan base;
  base.benchmarks = {"s35932", "SHA256", "Plasma", "ArmM0"};
  base.styles = {DesignStyle::kThreePhase};
  base.cycles = cycles;
  base.lanes = lanes;
  const std::size_t per_lane = (cycles + lanes - 1) / lanes;
  if (per_lane <= base.options.warmup_cycles) {
    base.options.warmup_cycles = per_lane / 2;
  }
  std::vector<RunPlan> plans(std::size(kConfigs), base);
  for (std::size_t c = 0; c < plans.size(); ++c) {
    plans[c].options.p2_common_enable_cg = kConfigs[c].common_enable;
    plans[c].options.use_m1 = kConfigs[c].m1;
    plans[c].options.use_m2 = kConfigs[c].m2;
    plans[c].options.ddcg = kConfigs[c].ddcg;
  }

  util::Executor executor(threads);
  const std::vector<std::vector<MatrixResult>> results =
      run_matrices(plans, executor);

  std::printf("Clock-gating feature ladder (3-phase designs)\n");
  for (std::size_t b = 0; b < base.benchmarks.size(); ++b) {
    std::printf("\n%s:\n", base.benchmarks[b].c_str());
    std::printf("  %-14s %9s %9s %8s %8s\n", "config", "clk mW", "total mW",
                "p2gated", "ddcg");
    for (std::size_t c = 0; c < plans.size(); ++c) {
      const FlowResult& r = results[c][b].result;
      std::printf("  %-14s %9.3f %9.3f %8d %8d\n", kConfigs[c].label,
                  r.power.clock_mw, r.power.total_mw(),
                  r.p2_gating.p2_latches_gated, r.ddcg.latches_gated);
      std::fflush(stdout);
    }
  }
  return 0;
}
