// Ablation: the clock-gating feature ladder of Sec. IV-D — no p2 gating,
// +common-enable gating, +M1 cells, +M2 latch removal, +multi-bit DDCG —
// measured by total and clock-network power.
//
//   $ ./bench/ablation_cg [cycles]
#include <cstdio>
#include <cstdlib>

#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"

using namespace tp;
using namespace tp::flow;

namespace {

struct Config {
  const char* label;
  bool common_enable;
  bool m1;
  bool m2;
  bool ddcg;
};

constexpr Config kConfigs[] = {
    {"none", false, false, false, false},
    {"+commonEN", true, false, false, false},
    {"+M1", true, true, false, false},
    {"+M2", true, true, true, false},
    {"+DDCG (full)", true, true, true, true},
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t cycles =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 128;
  std::printf("Clock-gating feature ladder (3-phase designs)\n");
  for (const auto& name : {"s35932", "SHA256", "Plasma", "ArmM0"}) {
    const circuits::Benchmark bench = circuits::make_benchmark(name);
    const Stimulus stim = circuits::make_stimulus(
        bench, circuits::Workload::kPaperDefault, cycles, 7);
    std::printf("\n%s:\n", name);
    std::printf("  %-14s %9s %9s %8s %8s\n", "config", "clk mW", "total mW",
                "p2gated", "ddcg");
    for (const Config& config : kConfigs) {
      FlowOptions options;
      options.p2_common_enable_cg = config.common_enable;
      options.use_m1 = config.m1;
      options.use_m2 = config.m2;
      options.ddcg = config.ddcg;
      const FlowResult r =
          run_flow(bench, DesignStyle::kThreePhase, stim, options);
      std::printf("  %-14s %9.3f %9.3f %8d %8d\n", config.label,
                  r.power.clock_mw, r.power.total_mw(),
                  r.p2_gating.p2_latches_gated, r.ddcg.latches_gated);
      std::fflush(stdout);
    }
  }
  return 0;
}
