// Reproduces the paper's run-time discussion (Sec. V): per-step wall-clock
// decomposition of the three flows. The paper reports the 3-phase flow at
// +204% vs FF and +44% vs M-S overall, with the ILP solver below 1% of the
// total (<= 27 s with Gurobi) and clock-tree synthesis roughly 3x because
// three trees are routed. Hold repair is accounted in its own column
// (StepTimes::hold_s), separate from the STA signoff pass.
//
// The 5x3 grid runs through the flow-matrix engine; use --threads 1 for
// per-step timings free of multi-core contention.
//
//   $ ./bench/table3_runtime [--cycles N] [--threads N]
#include <cstdio>

#include "src/flow/matrix.hpp"
#include "src/util/argparse.hpp"
#include "src/util/executor.hpp"

using namespace tp;
using namespace tp::flow;

int main(int argc, char** argv) {
  std::size_t cycles = 96, threads = 0;
  util::ArgParser parser(
      "table3_runtime",
      "reproduce the paper's per-step flow run-time decomposition");
  parser.add_value("--cycles", &cycles, "simulated cycles (default 96)");
  parser.add_value("--threads", &threads,
                   "worker threads (default TP_THREADS or hardware)");
  parser.parse_or_exit(argc, argv);

  RunPlan plan;
  plan.benchmarks = {"s13207", "s35932", "SHA256", "Plasma", "RISCV"};
  plan.cycles = cycles;
  util::Executor executor(threads);
  const std::vector<MatrixResult> results = run_matrix(plan, executor);
  const std::size_t num_styles = plan.styles.size();

  std::printf("Run-time decomposition (seconds)\n\n");
  std::printf("%-8s %-4s %8s %8s %8s %8s %8s %8s %8s %8s %8s %8s %8s\n",
              "design", "style", "synth", "ilp", "convert", "retime", "cg",
              "hold", "place", "cts", "sta.full", "sta.inc", "total");
  double total[3] = {0, 0, 0};
  double ilp_total = 0, cts_total[3] = {0, 0, 0};
  for (std::size_t b = 0; b < plan.benchmarks.size(); ++b) {
    for (std::size_t i = 0; i < num_styles; ++i) {
      const MatrixResult& run = results[b * num_styles + i];
      const StepTimes& t = run.result.times;
      std::printf("%-8s %-4s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f "
                  "%8.3f %8.3f %8.3f %8.3f\n",
                  run.task.benchmark.c_str(),
                  std::string(style_name(run.task.style)).c_str(),
                  t.synthesis_s, t.ilp_s, t.convert_s, t.retime_s,
                  t.clock_gating_s, t.hold_s, t.place_s, t.cts_s,
                  t.sta_full_s, t.sta_incremental_s, t.total_s());
      std::fflush(stdout);
      total[i] += t.total_s();
      cts_total[i] += t.cts_s;
      if (run.task.style == DesignStyle::kThreePhase) ilp_total += t.ilp_s;
    }
  }
  std::printf("\n3-phase flow run time: %+.0f%% vs FF (paper +204%%), "
              "%+.0f%% vs M-S (paper +44%%)\n",
              100.0 * (total[2] - total[0]) / total[0],
              100.0 * (total[2] - total[1]) / total[1]);
  std::printf("ILP share of the 3-phase flow: %.1f%% (paper < 1%%)\n",
              100.0 * ilp_total / total[2]);
  std::printf("3-phase CTS vs FF CTS: %.1fx (paper ~3x, three clock "
              "trees)\n",
              cts_total[0] > 0 ? cts_total[2] / cts_total[0] : 0.0);
  return 0;
}
