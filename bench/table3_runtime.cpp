// Reproduces the paper's run-time discussion (Sec. V): per-step wall-clock
// decomposition of the three flows. The paper reports the 3-phase flow at
// +204% vs FF and +44% vs M-S overall, with the ILP solver below 1% of the
// total (<= 27 s with Gurobi) and clock-tree synthesis roughly 3x because
// three trees are routed.
//
//   $ ./bench/table3_runtime [cycles]
#include <cstdio>
#include <cstdlib>

#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"

using namespace tp;
using namespace tp::flow;

int main(int argc, char** argv) {
  const std::size_t cycles =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 96;
  std::printf("Run-time decomposition (seconds)\n\n");
  std::printf("%-8s %-4s %8s %8s %8s %8s %8s %8s %8s %8s\n", "design",
              "style", "synth", "ilp", "convert", "retime", "cg", "place",
              "cts", "total");
  double total[3] = {0, 0, 0};
  double ilp_total = 0, cts_total[3] = {0, 0, 0};
  for (const auto& name : {"s13207", "s35932", "SHA256", "Plasma",
                           "RISCV"}) {
    const circuits::Benchmark bench = circuits::make_benchmark(name);
    const Stimulus stim = circuits::make_stimulus(
        bench, circuits::Workload::kPaperDefault, cycles, 7);
    int i = 0;
    for (const DesignStyle style :
         {DesignStyle::kFlipFlop, DesignStyle::kMasterSlave,
          DesignStyle::kThreePhase}) {
      const FlowResult r = run_flow(bench, style, stim);
      const StepTimes& t = r.times;
      std::printf("%-8s %-4s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f "
                  "%8.3f\n",
                  name, std::string(style_name(style)).c_str(),
                  t.synthesis_s, t.ilp_s, t.convert_s, t.retime_s,
                  t.clock_gating_s, t.place_s, t.cts_s, t.total_s());
      std::fflush(stdout);
      total[i] += t.total_s();
      cts_total[i] += t.cts_s;
      if (style == DesignStyle::kThreePhase) ilp_total += t.ilp_s;
      ++i;
    }
  }
  std::printf("\n3-phase flow run time: %+.0f%% vs FF (paper +204%%), "
              "%+.0f%% vs M-S (paper +44%%)\n",
              100.0 * (total[2] - total[0]) / total[0],
              100.0 * (total[2] - total[1]) / total[1]);
  std::printf("ILP share of the 3-phase flow: %.1f%% (paper < 1%%)\n",
              100.0 * ilp_total / total[2]);
  std::printf("3-phase CTS vs FF CTS: %.1fx (paper ~3x, three clock "
              "trees)\n",
              cts_total[0] > 0 ? cts_total[2] / cts_total[0] : 0.0);
  return 0;
}
