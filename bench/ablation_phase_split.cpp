// Extension bench: non-uniform 3-phase schedules (SMO optimal clocking).
// For each converted design, sweeps the p1/p2 closing edges and compares
// the best schedule's worst setup slack (and the minimum achievable period
// under it) against the uniform-thirds default the conversion uses.
//
//   $ ./bench/ablation_phase_split
#include <cstdio>

#include "src/circuits/benchmark.hpp"
#include "src/phase/schedule.hpp"
#include "src/timing/incremental.hpp"
#include "src/timing/sta.hpp"
#include "src/transform/buffering.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/transform/convert.hpp"
#include "src/retime/retime.hpp"

using namespace tp;

int main() {
  const CellLibrary& lib = CellLibrary::nominal_28nm();
  std::printf("Phase-schedule exploration (worst setup slack, ps)\n\n");
  std::printf("%-8s | %9s | %9s %6s %6s | %11s %11s\n", "design",
              "uniform", "best", "e1/Tc", "e2/Tc", "Tmin uniform",
              "Tmin best");
  for (const auto& name : {"s5378", "s9234", "s13207", "SHA256", "Plasma",
                           "ArmM0"}) {
    circuits::Benchmark bench = circuits::make_benchmark(name);
    infer_clock_gating(bench.netlist);
    buffer_high_fanout(bench.netlist);
    ThreePhaseResult converted = to_three_phase(bench.netlist);
    retime_inserted_latches(converted.netlist, lib);

    const ScheduleExploration e =
        explore_phase_schedule(converted.netlist, lib, 12);
    const double period = static_cast<double>(
        converted.netlist.clocks().period_ps);

    // Minimum period under each schedule (same relative edges).
    Netlist uniform = converted.netlist;
    apply_phase_schedule(uniform, converted.netlist.clocks().period_ps / 3,
                         2 * converted.netlist.clocks().period_ps / 3);
    const MinPeriodResult tmin_uniform = find_min_period(
        uniform, lib, converted.netlist.clocks().period_ps / 4,
        2 * converted.netlist.clocks().period_ps);
    Netlist best = converted.netlist;
    apply_phase_schedule(best, e.best.e1_ps, e.best.e2_ps);
    const MinPeriodResult tmin_best = find_min_period(
        best, lib, converted.netlist.clocks().period_ps / 4,
        2 * converted.netlist.clocks().period_ps);

    std::printf("%-8s | %9.0f | %9.0f %6.2f %6.2f | %11lld %11lld\n", name,
                e.uniform.worst_setup_slack_ps,
                e.best.worst_setup_slack_ps,
                static_cast<double>(e.best.e1_ps) / period,
                static_cast<double>(e.best.e2_ps) / period,
                static_cast<long long>(
                    tmin_uniform.feasible ? tmin_uniform.period_ps : -1),
                static_cast<long long>(
                    tmin_best.feasible ? tmin_best.period_ps : -1));
    std::fflush(stdout);
  }
  std::printf("\nNon-uniform closing edges trade borrowing windows between "
              "segments; the conversion's uniform thirds are rarely "
              "optimal.\n");
  return 0;
}
