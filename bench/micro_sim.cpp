// Micro-benchmarks (google-benchmark): gate-level simulator throughput on
// the benchmark circuits (cycles per second drives how fast the power/
// validation half of the flow runs).
#include <benchmark/benchmark.h>

#include "src/circuits/workload.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/transform/convert.hpp"
#include "src/sim/stimulus.hpp"

namespace tp {
namespace {

void BM_SimulateFf(benchmark::State& state, const char* name) {
  circuits::Benchmark bench = circuits::make_benchmark(name);
  infer_clock_gating(bench.netlist);
  const Stimulus stim = circuits::make_stimulus(
      bench, circuits::Workload::kPaperDefault, 32, 7);
  Simulator sim(bench.netlist);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_stream(sim, stim, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stim.size()));
}
BENCHMARK_CAPTURE(BM_SimulateFf, s13207, "s13207");
BENCHMARK_CAPTURE(BM_SimulateFf, s35932, "s35932");
BENCHMARK_CAPTURE(BM_SimulateFf, SHA256, "SHA256");
BENCHMARK_CAPTURE(BM_SimulateFf, Plasma, "Plasma");

void BM_SimulateThreePhase(benchmark::State& state, const char* name) {
  circuits::Benchmark bench = circuits::make_benchmark(name);
  infer_clock_gating(bench.netlist);
  const ThreePhaseResult converted = to_three_phase(bench.netlist);
  const Stimulus stim = circuits::make_stimulus(
      bench, circuits::Workload::kPaperDefault, 32, 7);
  SimOptions options;
  options.snapshot_event = 1;
  Simulator sim(converted.netlist, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_stream(sim, stim, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stim.size()));
}
BENCHMARK_CAPTURE(BM_SimulateThreePhase, s13207, "s13207");
BENCHMARK_CAPTURE(BM_SimulateThreePhase, Plasma, "Plasma");

}  // namespace
}  // namespace tp

BENCHMARK_MAIN();
