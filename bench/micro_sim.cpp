// micro_sim — scalar vs bit-parallel simulator throughput.
//
// For each benchmark x design style, simulates the same lane count twice:
// once lane-by-lane on the scalar Simulator, once in a single bit-parallel
// WideSimulator pass (src/sim/wide_sim.hpp). Verifies the two output
// streams are bit-identical (the wide engine's contract doubles as the
// benchmark's correctness gate), prints cycles/second and the wide-over-
// scalar speedup, and writes a BENCH_sim.json record that CI uploads next
// to BENCH_matrix.json to track the perf trajectory over time.
//
//   $ ./bench/micro_sim [--lanes N] [--cycles N] [--repeat N] [--out FILE]
//   $ ./bench/micro_sim --circuit Plasma --backend 3p
//
// Exit status: 0 when every wide stream matches its scalar reference,
// 1 on divergence, 2 on usage errors.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/circuits/workload.hpp"
#include "src/flow/backend.hpp"
#include "src/flow/matrix.hpp"  // flow::lane_seed
#include "src/sim/stimulus.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/util/argparse.hpp"

using namespace tp;

namespace {

struct StyleCase {
  std::string label;
  Netlist netlist{"case"};
  int snapshot_event = 0;
};

/// Builds one simulation target per requested backend, through the same
/// conversion pipeline run_flow() dispatches to — any registered token
/// works, not just the original three. FlowOptions::fast() keeps the
/// conversion cheap (no retiming, DDCG, or hold repair; the benchmark
/// measures the simulator, not the flow) while the 3-P variant still
/// carries ICG/M1/M2 cells, so the clock-network word paths are covered.
StyleCase make_case(const circuits::Benchmark& bench,
                    const std::string& token) {
  const flow::ConversionBackend* backend = flow::find_backend(token);
  if (backend == nullptr) {
    throw Error("unknown backend '" + token + "' (valid backends: " +
                flow::backend_token_list() + ")");
  }
  StyleCase result;
  result.label = token;
  result.netlist = bench.netlist;
  infer_clock_gating(result.netlist);
  const flow::FlowOptions options = flow::FlowOptions::fast();
  const CellLibrary& library = CellLibrary::nominal_28nm();
  flow::FlowResult scratch;
  flow::FlowContext ctx{
      .netlist = result.netlist,
      .options = options,
      .library = library,
      .result = scratch,
      .checkpoint = [](std::string_view) {},
      .activity = [] { return ActivityStats{}; },  // fast(): DDCG is off
  };
  backend->convert(ctx);
  // Multi-phase plans snapshot at the second clock event, single-phase
  // plans at reset; mirrors run_flow()'s simulation setup.
  result.snapshot_event =
      result.netlist.clocks().phases.size() >= 2 ? 1 : 0;
  return result;
}

struct Row {
  std::string circuit;
  std::string style;
  double scalar_cps = 0;
  double wide_cps = 0;
  double speedup = 0;
  bool identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> circuits_arg, backends_arg, styles_arg;
  std::size_t lanes = 64, cycles = 32, repeat = 3;
  std::string out_file = "BENCH_sim.json";

  util::ArgParser parser(
      "micro_sim",
      "benchmark the scalar simulator against the 64-lane bit-parallel "
      "engine on the same stimuli and record cycles/sec in BENCH_sim.json");
  parser.add_list("--circuit", &circuits_arg,
                  "benchmark to include (repeatable; default s13207 s35932 "
                  "SHA256 Plasma)",
                  "NAME");
  parser.add_list("--backend", &backends_arg,
                  "conversion backend to include, any registered token "
                  "(repeatable; default ff 3p)",
                  "TOKEN");
  parser.add_list("--style", &styles_arg, "deprecated alias of --backend",
                  "TOKEN");
  parser.add_value("--lanes", &lanes,
                   "stimulus lanes per measurement, 1-64 (default 64)");
  parser.add_value("--cycles", &cycles, "cycles per lane (default 32)");
  parser.add_value("--repeat", &repeat,
                   "timed repetitions; the best run counts (default 3)");
  parser.add_value("--out", &out_file,
                   "JSON output path (default BENCH_sim.json)", "FILE");
  parser.parse_or_exit(argc, argv);

  if (lanes < 1 || lanes > kMaxSimLanes || repeat < 1) {
    std::fprintf(stderr, "--lanes must be in [1, 64], --repeat >= 1\n%s",
                 parser.usage().c_str());
    return 2;
  }
  if (circuits_arg.empty()) {
    circuits_arg = {"s13207", "s35932", "SHA256", "Plasma"};
  }
  if (backends_arg.empty()) backends_arg = styles_arg;
  if (backends_arg.empty()) backends_arg = {"ff", "3p"};

  const std::uint64_t total_cycles =
      static_cast<std::uint64_t>(lanes) * cycles;
  std::printf("micro_sim: %zu lane(s) x %zu cycles, best of %zu\n", lanes,
              cycles, repeat);
  std::printf("%-8s %-5s | %12s %12s | %7s | %s\n", "circuit", "style",
              "scalar c/s", "wide c/s", "speedup", "identical");

  std::vector<Row> rows;
  int divergent = 0;
  try {
    for (const std::string& name : circuits_arg) {
      const circuits::Benchmark bench = circuits::make_benchmark(name);
      std::vector<Stimulus> stimuli;
      stimuli.reserve(lanes);
      for (std::size_t l = 0; l < lanes; ++l) {
        stimuli.push_back(circuits::make_stimulus(
            bench, circuits::Workload::kPaperDefault, cycles,
            flow::lane_seed(7, l)));
      }
      for (const std::string& style : backends_arg) {
        const StyleCase target = make_case(bench, style);
        SimOptions options;
        options.snapshot_event = target.snapshot_event;

        // Scalar reference: one run per lane, streams concatenated
        // lane-major (exactly what the flow's scalar fallback does).
        Simulator scalar(target.netlist, options);
        OutputStream scalar_stream;
        double scalar_s = 0;
        for (std::size_t r = 0; r < repeat; ++r) {
          scalar_stream.clear();
          Stopwatch watch;
          for (const Stimulus& lane : stimuli) {
            OutputStream s = run_stream(scalar, lane, 0);
            scalar_stream.insert(scalar_stream.end(),
                                 std::make_move_iterator(s.begin()),
                                 std::make_move_iterator(s.end()));
          }
          const double seconds = watch.seconds();
          if (r == 0 || seconds < scalar_s) scalar_s = seconds;
        }

        // Wide engine: every lane in one pass.
        WideSimulator wide(target.netlist, lanes, options);
        const WideStimulus packed = pack_stimulus(stimuli);
        OutputStream wide_stream;
        double wide_s = 0;
        for (std::size_t r = 0; r < repeat; ++r) {
          Stopwatch watch;
          wide_stream = run_wide_stream(wide, packed, 0);
          const double seconds = watch.seconds();
          if (r == 0 || seconds < wide_s) wide_s = seconds;
        }

        Row row;
        row.circuit = name;
        row.style = target.label;
        row.scalar_cps = scalar_s > 0 ? total_cycles / scalar_s : 0;
        row.wide_cps = wide_s > 0 ? total_cycles / wide_s : 0;
        row.speedup = wide_s > 0 ? scalar_s / wide_s : 0;
        row.identical = streams_equal(scalar_stream, wide_stream);
        if (!row.identical) {
          ++divergent;
          std::fprintf(stderr,
                       "DIVERGENCE: %s/%s wide stream differs from scalar\n",
                       name.c_str(), style.c_str());
        }
        std::printf("%-8s %-5s | %12.0f %12.0f | %6.2fx | %s\n",
                    name.c_str(), style.c_str(), row.scalar_cps,
                    row.wide_cps, row.speedup, row.identical ? "yes" : "NO");
        std::fflush(stdout);
        rows.push_back(std::move(row));
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::ofstream out(out_file);
  if (!out.good()) {
    std::fprintf(stderr, "cannot open %s\n", out_file.c_str());
    return 1;
  }
  out << "{\"bench\":\"micro_sim\",\"lanes\":" << lanes
      << ",\"cycles_per_lane\":" << cycles << ",\"results\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"circuit\":\"%s\",\"style\":\"%s\","
                  "\"scalar_cycles_per_s\":%.0f,\"wide_cycles_per_s\":%.0f,"
                  "\"speedup\":%.3f,\"identical\":%s}",
                  i == 0 ? "" : ",", rows[i].circuit.c_str(),
                  rows[i].style.c_str(), rows[i].scalar_cps,
                  rows[i].wide_cps, rows[i].speedup,
                  rows[i].identical ? "true" : "false");
    out << buffer;
  }
  out << "]}\n";
  std::printf("wrote %s\n", out_file.c_str());

  return divergent == 0 ? 0 : 1;
}
