// Lint smoke sweep: run every built-in benchmark through the FF,
// master-slave, and 3-phase flows with per-stage rule checking enabled and
// assert the static phase-rule checker stays silent — clean flow outputs
// must produce zero findings at every checkpoint (the checker's
// false-positive regression gate, wired into CI).
//
// The 54-run matrix executes on the parallel flow-matrix engine
// (src/flow/matrix.hpp); results are identical for any thread count.
//
// --analysis adds the dataflow analyses (A1 X-propagation, A2 min-delay
// races, A3 borrowing chains, A4/A5 clock-domain crossings, A6
// reset-domain crossings) to every checkpoint: clean conversions must
// stay clean under them too, and the same grid re-runs inline twice —
// once with FlowOptions::incremental_analysis off and once on — requiring
// byte-identical per-stage reports and recording the wall-clock delta of
// the incremental AnalysisSession. --seeded additionally runs six
// hand-built netlists that each violate exactly one analysis class and
// requires the matching rule to fire — the detection (false-negative)
// half of the gate. --out writes the whole verdict as one JSON artifact
// for CI.
//
//   $ ./bench/lint_smoke [--json] [--cycles N] [--threads N] [NAME...]
//   $ ./bench/lint_smoke --analysis --seeded --out BENCH_lint.json
//
// Exit status: 0 when every stage of every run is clean, every seeded
// violation was detected, and every incremental report matched its full
// twin byte-for-byte; 1 otherwise.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/analysis/analysis.hpp"
#include "src/flow/matrix.hpp"
#include "src/util/argparse.hpp"
#include "src/util/executor.hpp"
#include "src/util/json.hpp"

using namespace tp;
using namespace tp::flow;

namespace {

/// One seeded-violation fixture: a netlist plus the analysis options and
/// the rule its defect must trip.
struct Seeded {
  std::string name;
  Netlist nl{"seeded"};
  analysis::AnalysisOptions options;
  check::RuleId rule = check::RuleId::kXProp;
};

/// A1: a legal 3-phase latch chain whose head register is declared
/// reset-less (x_sources), so its X must reach downstream registers and
/// the primary output.
Seeded seeded_xprop() {
  Seeded s;
  s.name = "x-escape";
  Netlist& nl = s.nl;
  const CellId p1 = nl.add_input("p1");
  const CellId p2 = nl.add_input("p2");
  nl.set_clock_root(p1, Phase::kP1);
  nl.set_clock_root(p2, Phase::kP2);
  const NetId p1n = nl.cell(p1).out;
  const NetId p2n = nl.cell(p2).out;
  const CellId p3 = nl.add_input("p3");
  nl.set_clock_root(p3, Phase::kP3);
  nl.clocks() = three_phase_spec(3000, p1n, p2n, nl.cell(p3).out);

  const NetId din = nl.cell(nl.add_input("din")).out;
  const NetId qa = nl.add_net("qa");
  nl.add_cell(CellKind::kLatchH, "a_p1", {din, p1n}, qa, Phase::kP1);
  const CellId inv = nl.add_gate(CellKind::kInv, "inv", {qa});
  const NetId qb = nl.add_net("qb");
  nl.add_cell(CellKind::kLatchH, "b_p2", {nl.cell(inv).out, p2n}, qb,
              Phase::kP2);
  nl.add_output("dout", qb);

  s.options.x_sources = {"a_p1"};
  s.rule = check::RuleId::kXProp;
  return s;
}

/// A2: two latches whose hand-written waveforms overlap on [1500, 1800)
/// with a single inverter between them — the min-delay path lands long
/// before the capture window closes.
Seeded seeded_race() {
  Seeded s;
  s.name = "race-through";
  Netlist& nl = s.nl;
  const CellId p1 = nl.add_input("p1");
  const CellId p2 = nl.add_input("p2");
  nl.set_clock_root(p1, Phase::kP1);
  nl.set_clock_root(p2, Phase::kP2);
  const NetId p1n = nl.cell(p1).out;
  const NetId p2n = nl.cell(p2).out;
  ClockSpec spec;
  spec.period_ps = 3000;
  spec.phases.push_back({Phase::kP1, p1n, 0, 1800});
  spec.phases.push_back({Phase::kP2, p2n, 1500, 3000});
  nl.clocks() = spec;

  const NetId din = nl.cell(nl.add_input("din")).out;
  const NetId qa = nl.add_net("qa");
  nl.add_cell(CellKind::kLatchH, "launch_p1", {din, p1n}, qa, Phase::kP1);
  const CellId inv = nl.add_gate(CellKind::kInv, "inv", {qa});
  const NetId qb = nl.add_net("qb");
  nl.add_cell(CellKind::kLatchH, "capture_p2", {nl.cell(inv).out, p2n}, qb,
              Phase::kP2);
  nl.add_output("dout", qb);

  s.rule = check::RuleId::kMinDelayRace;
  return s;
}

/// A3: a tight 300 ps / 3-phase schedule (100 ps budget) with enough
/// combinational depth between consecutive latches that each stage borrows
/// and the chain's cumulative borrow passes the one-segment budget.
Seeded seeded_borrow() {
  Seeded s;
  s.name = "over-borrow";
  Netlist& nl = s.nl;
  const CellId p1 = nl.add_input("p1");
  const CellId p2 = nl.add_input("p2");
  const CellId p3 = nl.add_input("p3");
  nl.set_clock_root(p1, Phase::kP1);
  nl.set_clock_root(p2, Phase::kP2);
  nl.set_clock_root(p3, Phase::kP3);
  const NetId p1n = nl.cell(p1).out;
  const NetId p2n = nl.cell(p2).out;
  const NetId p3n = nl.cell(p3).out;
  nl.clocks() = three_phase_spec(300, p1n, p2n, p3n);

  const auto comb_stage = [&](NetId from, int idx) {
    NetId at = from;
    for (int i = 0; i < 6; ++i) {
      const CellId inv = nl.add_gate(
          CellKind::kInv, "inv_" + std::to_string(idx) + "_" +
                              std::to_string(i), {at});
      at = nl.cell(inv).out;
    }
    return at;
  };

  const NetId din = nl.cell(nl.add_input("din")).out;
  const NetId qa = nl.add_net("qa");
  nl.add_cell(CellKind::kLatchH, "a_p1", {comb_stage(din, 0), p1n}, qa,
              Phase::kP1);
  const NetId qb = nl.add_net("qb");
  nl.add_cell(CellKind::kLatchH, "b_p2", {comb_stage(qa, 1), p2n}, qb,
              Phase::kP2);
  const NetId qc = nl.add_net("qc");
  nl.add_cell(CellKind::kLatchH, "c_p3", {comb_stage(qb, 2), p3n}, qc,
              Phase::kP3);
  nl.add_output("dout", qc);

  s.rule = check::RuleId::kBorrowChain;
  return s;
}

/// A4: a register clocked off a /2 divider feeds a full-rate register
/// directly, with no second synchronizer stage in the fast domain.
Seeded seeded_cdc_unsync() {
  Seeded s;
  s.name = "cdc-unsync";
  Netlist& nl = s.nl;
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  const NetId clkn = nl.cell(clk).out;
  nl.clocks() = single_phase_spec(2000, clkn);

  const CellId div = nl.add_gate(CellKind::kClkDiv2, "div", {clkn});
  const NetId din = nl.cell(nl.add_input("din")).out;
  const CellId src = nl.add_gate(CellKind::kDff, "slow_src",
                                 {din, nl.cell(div).out}, Phase::kClk);
  const NetId qd = nl.add_net("qd");
  nl.add_cell(CellKind::kDff, "fast_dst", {nl.cell(src).out, clkn}, qd,
              Phase::kClk);
  nl.add_output("dout", qd);

  s.rule = check::RuleId::kCdcUnsync;
  return s;
}

/// A5: one divided-clock source crosses through two independent 2-FF
/// synchronizers whose first-stage outputs remix in an AND gate — each
/// crossing alone is legal, their reconvergence is not.
Seeded seeded_cdc_reconverge() {
  Seeded s;
  s.name = "cdc-reconverge";
  Netlist& nl = s.nl;
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  const NetId clkn = nl.cell(clk).out;
  nl.clocks() = single_phase_spec(2000, clkn);

  const CellId div = nl.add_gate(CellKind::kClkDiv2, "div", {clkn});
  const NetId din = nl.cell(nl.add_input("din")).out;
  const CellId src = nl.add_gate(CellKind::kDff, "slow_src",
                                 {din, nl.cell(div).out}, Phase::kClk);
  const NetId q = nl.cell(src).out;
  const CellId sa = nl.add_gate(CellKind::kDff, "sync_a", {q, clkn},
                                Phase::kClk);
  const CellId sa2 = nl.add_gate(CellKind::kDff, "sync_a2",
                                 {nl.cell(sa).out, clkn}, Phase::kClk);
  const CellId sb = nl.add_gate(CellKind::kDff, "sync_b", {q, clkn},
                                Phase::kClk);
  const CellId sb2 = nl.add_gate(CellKind::kDff, "sync_b2",
                                 {nl.cell(sb).out, clkn}, Phase::kClk);
  const CellId meet = nl.add_gate(CellKind::kAnd2, "meet",
                                  {nl.cell(sa).out, nl.cell(sb).out});
  nl.add_output("dout_a", nl.cell(sa2).out);
  nl.add_output("dout_b", nl.cell(sb2).out);
  nl.add_output("dout_meet", nl.cell(meet).out);

  s.rule = check::RuleId::kCdcReconverge;
  return s;
}

/// A6: a two-register pipeline whose launch register sits in a reset
/// domain released *after* the capture register's — the capture side can
/// sample pre-reset garbage during the release gap.
Seeded seeded_rdc_crossing() {
  Seeded s;
  s.name = "rdc-crossing";
  Netlist& nl = s.nl;
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  const NetId clkn = nl.cell(clk).out;
  nl.clocks() = single_phase_spec(2000, clkn);

  const CellId rst_late = nl.add_input("rst_late");
  const CellId rst_early = nl.add_input("rst_early");
  nl.declare_reset_root(rst_late, /*active_low=*/true, /*release_order=*/1);
  nl.declare_reset_root(rst_early, /*active_low=*/true, /*release_order=*/0);

  const NetId din = nl.cell(nl.add_input("din")).out;
  const CellId src = nl.add_gate(CellKind::kDff, "late_src", {din, clkn},
                                 Phase::kClk);
  const CellId dst = nl.add_gate(CellKind::kDff, "early_dst",
                                 {nl.cell(src).out, clkn}, Phase::kClk);
  nl.set_reset(src, nl.cell(rst_late).out);
  nl.set_reset(dst, nl.cell(rst_early).out);
  nl.add_output("dout", nl.cell(dst).out);

  s.rule = check::RuleId::kRdcCrossing;
  return s;
}

struct SeededResult {
  std::string name;
  std::string rule;
  int findings = 0;
  bool detected = false;
  std::string first_message;
};

/// One cell of the incremental-vs-full gate: the same flow run twice
/// inline (no executor, so the AnalysisSession path is active), once per
/// FlowOptions::incremental_analysis setting.
struct IncrCell {
  std::string design;
  std::string style;
  bool identical = false;
  double full_lint_s = 0;
  double incremental_lint_s = 0;
  std::string error;
};

bool stage_reports_identical(const RuleChecks& a, const RuleChecks& b) {
  if (a.stages.size() != b.stages.size()) return false;
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    if (a.stages[i].stage != b.stages[i].stage) return false;
    if (a.stages[i].report.to_json() != b.stages[i].report.to_json()) {
      return false;
    }
  }
  return true;
}

IncrCell run_incremental_cell(const std::string& name, DesignStyle style,
                              std::size_t cycles) {
  IncrCell cell;
  cell.design = name;
  cell.style = std::string(style_name(style));
  try {
    const circuits::Benchmark bench = circuits::make_benchmark(name);
    const Stimulus stim = circuits::make_stimulus(
        bench, circuits::Workload::kPaperDefault, cycles, 7);
    FlowOptions options;
    options.check_rules = true;
    options.check_analysis = true;
    options.incremental_analysis = false;
    const FlowResult full = run_flow(bench, style, stim, options);
    options.incremental_analysis = true;
    const FlowResult incremental = run_flow(bench, style, stim, options);
    cell.full_lint_s = full.times.lint_s;
    cell.incremental_lint_s = incremental.times.lint_s;
    cell.identical = stage_reports_identical(full.lint, incremental.lint);
  } catch (const Error& e) {
    cell.error = e.what();
  }
  return cell;
}

SeededResult run_seeded(Seeded seeded) {
  SeededResult out;
  out.name = seeded.name;
  out.rule = std::string(
      check::rule_name(seeded.rule));
  const check::CheckReport report =
      analysis::run_analysis(seeded.nl, seeded.options);
  out.findings = report.count(seeded.rule);
  out.detected = out.findings > 0;
  for (const check::Diagnostic& diag : report.diags) {
    if (diag.rule == seeded.rule) {
      out.first_message = diag.message;
      break;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false, analysis = false, seeded = false;
  std::size_t cycles = 96, threads = 0;
  std::string out_file;
  std::vector<std::string> only;

  util::ArgParser parser(
      "lint_smoke", "run every benchmark x style flow with per-stage rule "
                    "checking and require zero findings");
  parser.add_flag("--json", &json, "emit one JSON object per run");
  parser.add_flag("--analysis", &analysis,
                  "also run the dataflow analyses at every checkpoint");
  parser.add_flag("--seeded", &seeded,
                  "run the seeded analysis violations and require each to "
                  "be detected");
  parser.add_value("--out", &out_file,
                   "write the sweep + seeded verdict as one JSON artifact",
                   "FILE");
  parser.add_value("--cycles", &cycles, "simulated cycles (default 96)");
  parser.add_value("--threads", &threads,
                   "worker threads (default TP_THREADS or hardware)");
  parser.add_positionals(&only, "NAME",
                         "benchmark names to include (default all)");
  parser.parse_or_exit(argc, argv);

  RunPlan plan;
  plan.benchmarks = only;  // empty selects every built-in benchmark
  plan.cycles = cycles;
  plan.stimulus_seed = 7;
  plan.options.check_rules = true;
  plan.options.check_analysis = analysis;

  std::vector<MatrixResult> results;
  std::vector<IncrCell> incr_cells;
  try {
    util::Executor executor(threads);
    results = run_matrix(plan, executor);
    if (analysis) {
      // Incremental-vs-full gate over the same grid: every cell runs the
      // flow twice inline, so the AnalysisSession's dirty-cone path is
      // exercised (the executor path above always analyzes snapshots in
      // full). Cells are independent and run on the pool.
      std::vector<std::future<IncrCell>> futures;
      futures.reserve(results.size());
      for (const MatrixResult& run : results) {
        if (!run.ok()) continue;
        const std::string name = run.task.benchmark;
        const DesignStyle style = run.task.style;
        futures.push_back(executor.submit(
            [name, style, cycles] {
              return run_incremental_cell(name, style, cycles);
            }));
      }
      for (std::future<IncrCell>& f : futures) {
        incr_cells.push_back(executor.wait(std::move(f)));
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  util::JsonWriter artifact;
  artifact.begin_object();
  artifact.key("analysis").value(analysis);
  artifact.key("runs").begin_array();

  int runs = 0, dirty = 0;
  double lint_seconds = 0;
  if (!json) {
    std::printf("%-8s %-5s | %7s %7s %6s | %s\n", "design", "style",
                "errors", "warns", "stages", "verdict");
  }
  for (const MatrixResult& run : results) {
    const FlowResult& result = run.result;
    int errors = 0, warnings = 0;
    for (const StageLint& stage : result.lint.stages) {
      errors += stage.report.errors;
      warnings += stage.report.warnings;
    }
    const StageLint* blamed = result.lint.first_violation();
    ++runs;
    if (blamed != nullptr) ++dirty;
    lint_seconds += result.times.lint_s;
    const std::string style = std::string(style_name(run.task.style));
    artifact.begin_object();
    artifact.key("design").value(run.task.benchmark);
    artifact.key("style").value(style);
    artifact.key("errors").value(errors);
    artifact.key("warnings").value(warnings);
    artifact.key("stages").value(result.lint.stages.size());
    artifact.key("lint_s").value(result.times.lint_s);
    artifact.key("clean").value(blamed == nullptr);
    if (blamed != nullptr) {
      artifact.key("blamed_stage").value(blamed->stage);
    }
    artifact.end_object();
    if (json) {
      std::printf("{\"design\":\"%s\",\"style\":\"%s\",\"errors\":%d,"
                  "\"warnings\":%d,\"stages\":%zu,\"clean\":%s%s%s%s}\n",
                  run.task.benchmark.c_str(), style.c_str(), errors,
                  warnings, result.lint.stages.size(),
                  blamed == nullptr ? "true" : "false",
                  blamed == nullptr ? "" : ",\"blamed_stage\":\"",
                  blamed == nullptr ? "" : blamed->stage.c_str(),
                  blamed == nullptr ? "" : "\"");
    } else {
      std::printf("%-8s %-5s | %7d %7d %6zu | %s\n",
                  run.task.benchmark.c_str(), style.c_str(), errors,
                  warnings, result.lint.stages.size(),
                  blamed == nullptr
                      ? "clean"
                      : ("VIOLATIONS at " + blamed->stage).c_str());
      if (blamed != nullptr) {
        std::printf("%s", blamed->report.to_text().c_str());
      }
    }
    std::fflush(stdout);
  }
  artifact.end_array();
  artifact.key("lint_seconds").value(lint_seconds);

  // Seeded violations: each fixture must trip exactly its analysis rule.
  int missed = 0, seeded_total = 0;
  if (seeded) {
    artifact.key("seeded").begin_array();
    for (const SeededResult& r :
         {run_seeded(seeded_xprop()), run_seeded(seeded_race()),
          run_seeded(seeded_borrow()), run_seeded(seeded_cdc_unsync()),
          run_seeded(seeded_cdc_reconverge()),
          run_seeded(seeded_rdc_crossing())}) {
      ++seeded_total;
      if (!r.detected) ++missed;
      artifact.begin_object();
      artifact.key("name").value(r.name);
      artifact.key("rule").value(r.rule);
      artifact.key("findings").value(r.findings);
      artifact.key("detected").value(r.detected);
      if (!r.first_message.empty()) {
        artifact.key("message").value(r.first_message);
      }
      artifact.end_object();
      if (!json) {
        std::printf("seeded %-14s %-16s %s (%d finding(s))\n",
                    r.name.c_str(), r.rule.c_str(),
                    r.detected ? "detected" : "MISSED", r.findings);
        if (r.detected) std::printf("  %s\n", r.first_message.c_str());
      }
    }
    artifact.end_array();
  }

  // Incremental-vs-full verdict: byte-identity is a hard gate, the
  // wall-clock delta of the AnalysisSession is recorded for tracking.
  int mismatched = 0;
  if (!incr_cells.empty()) {
    double full_total = 0, incr_total = 0;
    artifact.key("incremental").begin_object();
    artifact.key("runs").begin_array();
    for (const IncrCell& cell : incr_cells) {
      if (!cell.error.empty() || !cell.identical) ++mismatched;
      full_total += cell.full_lint_s;
      incr_total += cell.incremental_lint_s;
      artifact.begin_object();
      artifact.key("design").value(cell.design);
      artifact.key("style").value(cell.style);
      artifact.key("identical").value(cell.identical);
      artifact.key("full_lint_s").value(cell.full_lint_s);
      artifact.key("incremental_lint_s").value(cell.incremental_lint_s);
      if (!cell.error.empty()) artifact.key("error").value(cell.error);
      artifact.end_object();
      if (!json && (!cell.identical || !cell.error.empty())) {
        std::printf("incremental %-8s %-5s MISMATCH%s%s\n",
                    cell.design.c_str(), cell.style.c_str(),
                    cell.error.empty() ? "" : ": ", cell.error.c_str());
      }
    }
    artifact.end_array();
    artifact.key("full_lint_seconds").value(full_total);
    artifact.key("incremental_lint_seconds").value(incr_total);
    artifact.key("speedup")
        .value(incr_total > 0 ? full_total / incr_total : 0.0);
    artifact.key("identical").value(mismatched == 0);
    artifact.end_object();
    if (!json) {
      std::printf("incremental analysis: %zu/%zu byte-identical, lint "
                  "%.2f s full vs %.2f s incremental (%.2fx)\n",
                  incr_cells.size() - static_cast<std::size_t>(mismatched),
                  incr_cells.size(), full_total, incr_total,
                  incr_total > 0 ? full_total / incr_total : 0.0);
    }
  }
  artifact.key("clean").value(dirty == 0 && missed == 0 && mismatched == 0);
  artifact.end_object();

  if (!out_file.empty()) {
    std::ofstream out(out_file, std::ios::trunc);
    if (!out.good()) {
      std::fprintf(stderr, "error: cannot open %s\n", out_file.c_str());
      return 1;
    }
    out << artifact.str() << "\n";
  }
  if (!json) {
    std::printf("\n%d/%d runs clean", runs - dirty, runs);
    if (seeded) {
      std::printf(", %d/%d seeded violations detected", seeded_total - missed,
                  seeded_total);
    }
    std::printf(" (lint %.2f s)\n", lint_seconds);
  }
  return dirty == 0 && missed == 0 && mismatched == 0 ? 0 : 1;
}
