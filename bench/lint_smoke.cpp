// Lint smoke sweep: run every built-in benchmark through the FF,
// master-slave, and 3-phase flows with per-stage rule checking enabled and
// assert the static phase-rule checker stays silent — clean flow outputs
// must produce zero findings at every checkpoint (the checker's
// false-positive regression gate, wired into CI).
//
// The 54-run matrix executes on the parallel flow-matrix engine
// (src/flow/matrix.hpp); results are identical for any thread count.
//
//   $ ./bench/lint_smoke [--json] [--cycles N] [--threads N] [NAME...]
//
// Exit status: 0 when every stage of every run is clean, 1 otherwise.
#include <cstdio>
#include <string>
#include <vector>

#include "src/flow/matrix.hpp"
#include "src/util/argparse.hpp"
#include "src/util/executor.hpp"

using namespace tp;
using namespace tp::flow;

int main(int argc, char** argv) {
  bool json = false;
  std::size_t cycles = 96, threads = 0;
  std::vector<std::string> only;

  util::ArgParser parser(
      "lint_smoke", "run every benchmark x style flow with per-stage rule "
                    "checking and require zero findings");
  parser.add_flag("--json", &json, "emit one JSON object per run");
  parser.add_value("--cycles", &cycles, "simulated cycles (default 96)");
  parser.add_value("--threads", &threads,
                   "worker threads (default TP_THREADS or hardware)");
  parser.add_positionals(&only, "NAME",
                         "benchmark names to include (default all)");
  parser.parse_or_exit(argc, argv);

  RunPlan plan;
  plan.benchmarks = only;  // empty selects every built-in benchmark
  plan.cycles = cycles;
  plan.stimulus_seed = 7;
  plan.options.check_rules = true;

  std::vector<MatrixResult> results;
  try {
    util::Executor executor(threads);
    results = run_matrix(plan, executor);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  int runs = 0, dirty = 0;
  if (!json) {
    std::printf("%-8s %-5s | %7s %7s %6s | %s\n", "design", "style",
                "errors", "warns", "stages", "verdict");
  }
  for (const MatrixResult& run : results) {
    const FlowResult& result = run.result;
    int errors = 0, warnings = 0;
    for (const StageLint& stage : result.lint.stages) {
      errors += stage.report.errors;
      warnings += stage.report.warnings;
    }
    const StageLint* blamed = result.lint.first_violation();
    ++runs;
    if (blamed != nullptr) ++dirty;
    const std::string style = std::string(style_name(run.task.style));
    if (json) {
      std::printf("{\"design\":\"%s\",\"style\":\"%s\",\"errors\":%d,"
                  "\"warnings\":%d,\"stages\":%zu,\"clean\":%s%s%s%s}\n",
                  run.task.benchmark.c_str(), style.c_str(), errors,
                  warnings, result.lint.stages.size(),
                  blamed == nullptr ? "true" : "false",
                  blamed == nullptr ? "" : ",\"blamed_stage\":\"",
                  blamed == nullptr ? "" : blamed->stage.c_str(),
                  blamed == nullptr ? "" : "\"");
    } else {
      std::printf("%-8s %-5s | %7d %7d %6zu | %s\n",
                  run.task.benchmark.c_str(), style.c_str(), errors,
                  warnings, result.lint.stages.size(),
                  blamed == nullptr
                      ? "clean"
                      : ("VIOLATIONS at " + blamed->stage).c_str());
      if (blamed != nullptr) {
        std::printf("%s", blamed->report.to_text().c_str());
      }
    }
    std::fflush(stdout);
  }
  if (!json) {
    std::printf("\n%d/%d runs clean\n", runs - dirty, runs);
  }
  return dirty == 0 ? 0 : 1;
}
