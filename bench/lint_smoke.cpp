// Lint smoke sweep: run every built-in benchmark through the FF,
// master-slave, and 3-phase flows with per-stage rule checking enabled and
// assert the static phase-rule checker stays silent — clean flow outputs
// must produce zero findings at every checkpoint (the checker's
// false-positive regression gate, wired into CI).
//
//   $ ./bench/lint_smoke [--json] [--cycles N] [NAME...]
//
// Exit status: 0 when every stage of every run is clean, 1 otherwise.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"

using namespace tp;
using namespace tp::flow;

int main(int argc, char** argv) {
  bool json = false;
  std::size_t cycles = 96;
  std::vector<std::string> only;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc) {
      cycles = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      only.emplace_back(argv[i]);
    }
  }

  const DesignStyle styles[] = {DesignStyle::kFlipFlop,
                                DesignStyle::kMasterSlave,
                                DesignStyle::kThreePhase};
  int runs = 0, dirty = 0;
  if (!json) {
    std::printf("%-8s %-5s | %7s %7s %6s | %s\n", "design", "style",
                "errors", "warns", "stages", "verdict");
  }
  for (const auto& name : circuits::benchmark_names()) {
    if (!only.empty() &&
        std::find(only.begin(), only.end(), name) == only.end()) {
      continue;
    }
    const circuits::Benchmark bench = circuits::make_benchmark(name);
    const Stimulus stim = circuits::make_stimulus(
        bench, circuits::Workload::kPaperDefault, cycles, 7);
    for (const DesignStyle style : styles) {
      FlowOptions options;
      options.check_rules = true;
      const FlowResult result = run_flow(bench, style, stim, options);
      int errors = 0, warnings = 0;
      for (const StageLint& stage : result.lint.stages) {
        errors += stage.report.errors;
        warnings += stage.report.warnings;
      }
      const StageLint* blamed = result.lint.first_violation();
      ++runs;
      if (blamed != nullptr) ++dirty;
      if (json) {
        std::printf("{\"design\":\"%s\",\"style\":\"%s\",\"errors\":%d,"
                    "\"warnings\":%d,\"stages\":%zu,\"clean\":%s%s%s%s}\n",
                    name.c_str(), std::string(style_name(style)).c_str(),
                    errors, warnings, result.lint.stages.size(),
                    blamed == nullptr ? "true" : "false",
                    blamed == nullptr ? "" : ",\"blamed_stage\":\"",
                    blamed == nullptr ? "" : blamed->stage.c_str(),
                    blamed == nullptr ? "" : "\"");
      } else {
        std::printf("%-8s %-5s | %7d %7d %6zu | %s\n", name.c_str(),
                    std::string(style_name(style)).c_str(), errors, warnings,
                    result.lint.stages.size(),
                    blamed == nullptr
                        ? "clean"
                        : ("VIOLATIONS at " + blamed->stage).c_str());
        if (blamed != nullptr) {
          std::printf("%s", blamed->report.to_text().c_str());
        }
      }
      std::fflush(stdout);
    }
  }
  if (!json) {
    std::printf("\n%d/%d runs clean\n", runs - dirty, runs);
  }
  return dirty == 0 ? 0 : 1;
}
