// Macro-scale incremental-STA benchmark and identity gate.
//
// Steps the make_macro pipeline generator through a size grid (default
// 2k/20k/100k registers; pass --sizes to go to 10^6) in both variants —
// single-phase FF and direct 3-phase latch — and, per grid cell, times the
// repair_hold + min-period path twice:
//
//   full:        the pre-incremental behavior — every hold-repair pass and
//                every min-period probe is a cold full STA;
//   incremental: one IncrementalTimer session follows the netlist through
//                the repair passes (journal-scoped cone patches) and the
//                min-period search reuses one engine across probes.
//
// Every cell asserts the incremental identity contract: the session report
// is byte-identical (timing_identity) to a fresh check_timing after repair
// and after each of --edits random follow-up edits (buffer insertion, gate
// retype, and a clock-plan change that must take the fallback path);
// 3-phase cells additionally check borrow_identity through a second
// track-borrow session sharing the same journal. Both legs must insert the
// same buffers and find the same minimum period.
//
// The aggregate full/incremental STA wall-clock ratio at the largest cell
// with >= --gate-ffs registers gates the build (default 5x, --no-gate to
// record without failing — CI's small-size run and TSan use that).
//
// A final flow section runs run_flow (3-phase style) on a small macro once
// serially and once on --threads workers, asserting bit-identical results
// (registers, area, output stream, timing report) — the determinism gate
// for the intra-flow parallel CTS/retime/FM/placer paths — and records the
// per-stage wall clock plus the full/incremental STA split.
//
//   $ ./bench/macro_flow [--sizes 2000,20000,100000] [--edits N]
//                        [--gate-ffs N] [--gate-ratio X] [--no-gate]
//                        [--flow-ffs N] [--cycles N] [--threads N]
//                        [--out FILE]
//
// Exit status: 0 when every identity holds and the gate passes, 1 otherwise.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/circuits/benchmark.hpp"
#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"
#include "src/flow/matrix.hpp"
#include "src/timing/incremental.hpp"
#include "src/util/argparse.hpp"
#include "src/util/executor.hpp"
#include "src/util/json.hpp"
#include "src/util/log.hpp"
#include "src/util/rng.hpp"
#include "src/util/strcat.hpp"

using namespace tp;

namespace {

std::uint64_t bits(double value) {
  std::uint64_t out;
  std::memcpy(&out, &value, sizeof(out));
  return out;
}

/// The pre-incremental min-period search: a fresh full STA per probe (what
/// the old min_period_ps did), replicated here as the baseline leg.
MinPeriodResult baseline_min_period(const Netlist& netlist,
                                    const CellLibrary& library,
                                    std::int64_t lo_ps, std::int64_t hi_ps,
                                    std::int64_t step_ps,
                                    const TimingOptions& options) {
  Netlist scaled = netlist;
  const ClockSpec original = netlist.clocks();
  MinPeriodResult result;
  const auto passes = [&](std::int64_t period) {
    ClockSpec spec = original;
    spec.period_ps = period;
    for (PhaseWaveform& w : spec.phases) {
      w.rise_ps = w.rise_ps * period / original.period_ps;
      w.fall_ps = w.fall_ps * period / original.period_ps;
    }
    scaled.clocks() = spec;
    const TimingReport report = check_timing(scaled, library, options);
    ++result.probes;
    return report.converged && report.setup_ok;
  };
  if (!passes(hi_ps)) {
    result.feasible = false;
    result.period_ps = hi_ps;
    return result;
  }
  while (hi_ps - lo_ps > step_ps) {
    const std::int64_t mid = (lo_ps + hi_ps) / 2;
    if (passes(mid)) {
      hi_ps = mid;
    } else {
      lo_ps = mid;
    }
  }
  result.feasible = true;
  result.period_ps = hi_ps;
  return result;
}

struct CellRecord {
  std::string name;
  int ffs = 0;
  bool three_phase = false;
  std::size_t cells = 0;
  int buffers = 0;
  double full_hold_s = 0, full_minp_s = 0;
  double inc_prime_s = 0, inc_hold_s = 0, inc_minp_s = 0;
  double speedup = 0;
  bool min_period_feasible = false;
  std::int64_t min_period_ps = 0;
  int edit_checks = 0;
  int failures = 0;  // identity/equality violations in this cell
  SmoEngine::Stats stats;
};

/// True when the enum value is a plain combinational gate (kBuf..kMaj3 in
/// declaration order).
bool is_comb_gate(CellKind kind) {
  return kind >= CellKind::kBuf && kind <= CellKind::kMaj3;
}

CellRecord run_cell(int ffs, bool three_phase, int edits) {
  const CellLibrary& library = CellLibrary::nominal_28nm();
  TimingOptions topt;
  // Post-CTS-skew-class uncertainty: above the register clk->q intrinsic
  // (84 ps) so the generator's direct-shift segments violate hold, but
  // below clk->q plus one gate (~112 ps) so logic stages stay clean — the
  // repair loop then buffers a sparse set of endpoints whose cones the
  // incremental session patches instead of falling back to full passes.
  topt.hold_uncertainty_ps = 100;
  circuits::MacroSpec spec;
  spec.flip_flops = ffs;
  spec.three_phase = three_phase;
  spec.period_ps = three_phase ? 3000 : 2000;
  const Netlist base = circuits::make_macro(spec);

  CellRecord rec;
  rec.name = base.name();
  rec.ffs = ffs;
  rec.three_phase = three_phase;
  rec.cells = base.live_cells().size();
  const auto fail = [&](const char* what) {
    ++rec.failures;
    std::fprintf(stderr, "FAIL %s: %s\n", rec.name.c_str(), what);
  };

  // --- full leg: cold STA per repair pass, cold STA per probe. ----------
  Stopwatch watch;
  Netlist full_nl = base;
  const HoldRepairResult full_hold =
      repair_hold(full_nl, library, topt, 10, nullptr);
  rec.full_hold_s = watch.seconds();
  watch.reset();
  const MinPeriodResult full_minp = baseline_min_period(
      full_nl, library, spec.period_ps / 4, 4 * spec.period_ps, 5, topt);
  rec.full_minp_s = watch.seconds();

  // --- incremental leg: one session through the same path. --------------
  // Priming the session is a flow-level one-time cost (run_flow analyzes
  // once at flow start and every later stage reuses the arrivals), so it
  // is timed separately from the per-stage hold/min-period work that the
  // full leg repeats from scratch.
  Netlist inc_nl = base;
  inc_nl.enable_journal();
  IncrementalTimer timer(library, topt);
  watch.reset();
  timer.analyze(inc_nl);
  rec.inc_prime_s = watch.seconds();
  watch.reset();
  const HoldRepairResult inc_hold =
      repair_hold(inc_nl, library, topt, 10, &timer);
  rec.inc_hold_s = watch.seconds();
  watch.reset();
  const MinPeriodResult inc_minp =
      find_min_period(inc_nl, library, spec.period_ps / 4,
                      4 * spec.period_ps, 5, topt);
  rec.inc_minp_s = watch.seconds();

  rec.buffers = inc_hold.buffers_inserted;
  rec.min_period_feasible = inc_minp.feasible;
  rec.min_period_ps = inc_minp.period_ps;
  const double full_total = rec.full_hold_s + rec.full_minp_s;
  const double inc_total = rec.inc_hold_s + rec.inc_minp_s;
  rec.speedup = inc_total > 0 ? full_total / inc_total : 0.0;

  // --- identity gates. ---------------------------------------------------
  if (full_hold.buffers_inserted != inc_hold.buffers_inserted) {
    fail("full and incremental hold repair inserted different buffers");
  }
  // The oracle-backed search rounds the same sums in a different order
  // than the fresh-report baseline, so a probe whose worst slack sits
  // within ulps of zero may flip — the settled periods can differ by one
  // search step. Feasibility flags must still agree exactly.
  if (full_minp.feasible != inc_minp.feasible ||
      std::llabs(full_minp.period_ps - inc_minp.period_ps) > 5) {
    fail("full and incremental min-period searches disagree");
  }
  if (timing_identity(timer.sync(inc_nl)) !=
      timing_identity(check_timing(inc_nl, library, topt))) {
    fail("post-repair session report differs from fresh check_timing");
  }

  // A second session with its own journal cursor (and borrow tracking, for
  // the latch variant): exercises multi-consumer journal draining.
  IncrementalTimer borrow_timer(library, topt, /*track_borrow=*/true);
  borrow_timer.analyze(inc_nl);

  // Random follow-up edits, each re-checked against a fresh full pass.
  Rng rng(0xED17 ^ static_cast<std::uint64_t>(ffs) ^
          (three_phase ? 0x3F00u : 0u));
  std::vector<CellId> gates;
  for (const CellId id : inc_nl.live_cells()) {
    if (is_comb_gate(inc_nl.cell(id).kind)) gates.push_back(id);
  }
  for (int e = 0; e < edits && !gates.empty(); ++e) {
    const CellId victim = gates[static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(gates.size()) - 1))];
    const Cell& cell = inc_nl.cell(victim);
    switch (e % 3) {
      case 0: {  // buffer insertion in front of a random gate input
        const NetId d = cell.ins[0];
        const CellId buf = inc_nl.add_gate(
            CellKind::kBuf, cat(cell.name, "_mfbuf", e), {d});
        inc_nl.replace_input(victim, 0, inc_nl.cell(buf).out);
        break;
      }
      case 1: {  // gate retype (same pin count, different function)
        CellKind to = CellKind::kBuf;
        switch (cell.kind) {
          case CellKind::kBuf: to = CellKind::kInv; break;
          case CellKind::kInv: to = CellKind::kBuf; break;
          case CellKind::kAnd2: to = CellKind::kNand2; break;
          case CellKind::kOr2: to = CellKind::kNor2; break;
          case CellKind::kNand2: to = CellKind::kAnd2; break;
          case CellKind::kNor2: to = CellKind::kOr2; break;
          case CellKind::kXor2: to = CellKind::kXnor2; break;
          case CellKind::kXnor2: to = CellKind::kXor2; break;
          case CellKind::kAnd3: to = CellKind::kNand3; break;
          case CellKind::kOr3: to = CellKind::kNor3; break;
          case CellKind::kNand3: to = CellKind::kAnd3; break;
          case CellKind::kNor3: to = CellKind::kOr3; break;
          default: to = cell.kind == CellKind::kMux2 ? CellKind::kAoi21
                                                     : cell.kind; break;
        }
        inc_nl.morph_cell(victim, to);
        break;
      }
      case 2: {  // clock-plan change: bypasses the journal, must fall back
        ClockSpec spec2 = inc_nl.clocks();
        const std::int64_t p = spec2.period_ps + 10;
        for (PhaseWaveform& w : spec2.phases) {
          w.rise_ps = w.rise_ps * p / spec2.period_ps;
          w.fall_ps = w.fall_ps * p / spec2.period_ps;
        }
        spec2.period_ps = p;
        inc_nl.clocks() = spec2;
        break;
      }
    }
    ++rec.edit_checks;
    if (timing_identity(timer.sync(inc_nl)) !=
        timing_identity(check_timing(inc_nl, library, topt))) {
      fail("post-edit session report differs from fresh check_timing");
    }
  }
  // The borrow session saw every edit through its own cursor.
  borrow_timer.sync(inc_nl);
  if (borrow_identity(borrow_timer.borrow_records(inc_nl)) !=
      borrow_identity(borrow_profile(inc_nl, library, topt))) {
    fail("session borrow records differ from fresh borrow_profile");
  }

  rec.stats = timer.stats();
  std::printf(
      "%-16s %8zu cells  full %7.2fs (hold %6.2f + minp %6.2f)  "
      "inc %7.2fs (hold %6.2f + minp %6.2f, prime %5.2f)  %5.1fx  "
      "[%d full / %d patch / %d skip, cone %ld cells]%s\n",
      rec.name.c_str(), rec.cells, full_total, rec.full_hold_s,
      rec.full_minp_s, inc_total, rec.inc_hold_s, rec.inc_minp_s,
      rec.inc_prime_s, rec.speedup, rec.stats.full_runs,
      rec.stats.incremental_runs, rec.stats.skipped_runs,
      rec.stats.cone_cells, rec.failures ? "  FAILED" : "");
  std::fflush(stdout);
  return rec;
}

struct FlowRecord {
  int ffs = 0;
  std::size_t threads = 0;
  bool identical = false;
  double serial_s = 0, parallel_s = 0;
  flow::StepTimes times;  // serial pass (contention-free stopwatches)
};

FlowRecord run_flow_section(int ffs, std::size_t cycles,
                            std::size_t threads, int* failures) {
  circuits::MacroSpec spec;
  spec.flip_flops = ffs;
  circuits::Benchmark bench{.name = cat("macro", ffs),
                            .suite = "MACRO",
                            .netlist = circuits::make_macro(spec),
                            .period_ps = spec.period_ps,
                            .paper_workload = "pseudo-random"};
  const Stimulus stimulus = circuits::make_stimulus(
      bench, circuits::Workload::kPaperDefault, cycles);

  FlowRecord rec;
  rec.ffs = ffs;
  rec.threads = threads;

  flow::FlowOptions options;  // paper defaults: retime + hold repair on
  Stopwatch watch;
  const flow::FlowResult serial =
      run_flow(bench, flow::DesignStyle::kThreePhase, stimulus, options);
  rec.serial_s = watch.seconds();
  rec.times = serial.times;

  util::Executor executor(threads);
  options.executor = &executor;
  watch.reset();
  const flow::FlowResult parallel =
      run_flow(bench, flow::DesignStyle::kThreePhase, stimulus, options);
  rec.parallel_s = watch.seconds();

  rec.identical =
      serial.registers == parallel.registers &&
      bits(serial.area_um2) == bits(parallel.area_um2) &&
      flow::stream_hash(serial.outputs) ==
          flow::stream_hash(parallel.outputs) &&
      timing_identity(serial.timing) == timing_identity(parallel.timing);
  if (!rec.identical) {
    ++*failures;
    std::fprintf(stderr,
                 "FAIL flow: serial and %zu-thread runs diverge on "
                 "macro%d/3-phase\n",
                 threads, ffs);
  }
  std::printf(
      "flow macro%-7d serial %6.2fs, %zu-thread %6.2fs  %s  (sta full "
      "%.3fs + incremental %.3fs)\n",
      ffs, rec.serial_s, threads, rec.parallel_s,
      rec.identical ? "bit-identical" : "DIVERGED", rec.times.sta_full_s,
      rec.times.sta_incremental_s);
  std::fflush(stdout);
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  std::string sizes_arg = "2000,20000,100000";
  std::string out_file = "BENCH_macro.json";
  int edits = 6;
  std::size_t gate_ffs = 100000;
  double gate_ratio = 5.0;
  bool no_gate = false;
  int flow_ffs = 2000;
  std::size_t cycles = 64, threads = 0;

  util::ArgParser parser(
      "macro_flow",
      "step the macro generator through a size grid, time full-vs-"
      "incremental STA on the repair_hold + min-period path, assert the "
      "byte-identity contract per cell, and gate the aggregate speedup");
  parser.add_value("--sizes", &sizes_arg,
                   "comma-separated register counts "
                   "(default 2000,20000,100000; supports up to 1000000)");
  parser.add_value("--edits", &edits,
                   "random follow-up edits checked per cell (default 6)");
  parser.add_value("--gate-ffs", &gate_ffs,
                   "gate on cells with at least this many registers "
                   "(default 100000)");
  parser.add_value("--gate-ratio", &gate_ratio,
                   "required full/incremental wall-clock ratio (default 5)");
  parser.add_flag("--no-gate", &no_gate,
                  "record speedups without failing the gate (CI small "
                  "sizes, TSan)");
  parser.add_value("--flow-ffs", &flow_ffs,
                   "macro size for the 1-vs-N-thread flow determinism "
                   "section (default 2000)");
  parser.add_value("--cycles", &cycles,
                   "simulated cycles in the flow section (default 64)");
  parser.add_value("--threads", &threads,
                   "worker threads for the parallel flow pass (default "
                   "TP_THREADS or hardware)");
  parser.add_value("--out", &out_file,
                   "JSON output path (default BENCH_macro.json)", "FILE");
  parser.parse_or_exit(argc, argv);
  if (threads == 0) threads = util::Executor::default_thread_count();

  std::vector<int> sizes;
  for (std::size_t pos = 0; pos < sizes_arg.size();) {
    const std::size_t comma = sizes_arg.find(',', pos);
    const std::string tok = sizes_arg.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) sizes.push_back(std::stoi(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (sizes.empty()) {
    std::fprintf(stderr, "--sizes parsed to nothing\n%s",
                 parser.usage().c_str());
    return 2;
  }

  int failures = 0;
  std::vector<CellRecord> grid;
  for (const int ffs : sizes) {
    for (const bool three_phase : {false, true}) {
      grid.push_back(run_cell(ffs, three_phase, edits));
      failures += grid.back().failures;
    }
  }

  // Gate: aggregate full/incremental ratio over the largest qualifying
  // size (both variants summed).
  double gated_speedup = 0;
  bool gate_checked = false;
  int largest = 0;
  for (const CellRecord& r : grid) {
    if (static_cast<std::size_t>(r.ffs) >= gate_ffs) {
      largest = std::max(largest, r.ffs);
    }
  }
  if (largest > 0) {
    double full = 0, inc = 0;
    for (const CellRecord& r : grid) {
      if (r.ffs != largest) continue;
      full += r.full_hold_s + r.full_minp_s;
      inc += r.inc_hold_s + r.inc_minp_s;
    }
    gated_speedup = inc > 0 ? full / inc : 0.0;
    gate_checked = true;
    std::printf("gate @ %d FFs: %.1fx aggregate STA speedup (need %.1fx)\n",
                largest, gated_speedup, gate_ratio);
    if (!no_gate && gated_speedup < gate_ratio) {
      std::fprintf(stderr, "FAIL gate: %.1fx < %.1fx\n", gated_speedup,
                   gate_ratio);
      ++failures;
    }
  } else {
    std::printf("gate skipped: no cell reaches %zu FFs\n", gate_ffs);
  }

  const FlowRecord flow_rec =
      run_flow_section(flow_ffs, cycles, threads, &failures);

  std::ofstream out(out_file);
  if (!out.good()) {
    std::fprintf(stderr, "cannot open %s\n", out_file.c_str());
    return 1;
  }
  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("macro_flow");
  w.key("edits_per_cell").value(edits);
  w.key("grid").begin_array();
  for (const CellRecord& r : grid) {
    w.begin_object();
    w.key("name").value(r.name);
    w.key("ffs").value(r.ffs);
    w.key("three_phase").value(r.three_phase);
    w.key("cells").value(static_cast<std::uint64_t>(r.cells));
    w.key("hold_buffers").value(r.buffers);
    w.key("full_hold_s").value(r.full_hold_s);
    w.key("full_min_period_s").value(r.full_minp_s);
    w.key("incremental_prime_s").value(r.inc_prime_s);
    w.key("incremental_hold_s").value(r.inc_hold_s);
    w.key("incremental_min_period_s").value(r.inc_minp_s);
    w.key("speedup").value(r.speedup);
    w.key("min_period_feasible").value(r.min_period_feasible);
    w.key("min_period_ps").value(r.min_period_ps);
    w.key("sta_full_runs").value(r.stats.full_runs);
    w.key("sta_incremental_runs").value(r.stats.incremental_runs);
    w.key("sta_skipped_runs").value(r.stats.skipped_runs);
    w.key("cone_cells").value(static_cast<std::int64_t>(r.stats.cone_cells));
    w.key("edit_checks").value(r.edit_checks);
    w.key("identical").value(r.failures == 0);
    w.end_object();
  }
  w.end_array();
  w.key("gate_checked").value(gate_checked);
  w.key("gate_ffs").value(static_cast<std::uint64_t>(gate_ffs));
  w.key("gate_ratio").value(gate_ratio);
  w.key("gated_speedup").value(gated_speedup);
  w.key("flow").begin_object();
  w.key("ffs").value(flow_rec.ffs);
  w.key("threads").value(static_cast<std::uint64_t>(flow_rec.threads));
  w.key("identical").value(flow_rec.identical);
  w.key("serial_s").value(flow_rec.serial_s);
  w.key("parallel_s").value(flow_rec.parallel_s);
  w.key("synthesis_s").value(flow_rec.times.synthesis_s);
  w.key("ilp_s").value(flow_rec.times.ilp_s);
  w.key("convert_s").value(flow_rec.times.convert_s);
  w.key("retime_s").value(flow_rec.times.retime_s);
  w.key("clock_gating_s").value(flow_rec.times.clock_gating_s);
  w.key("hold_s").value(flow_rec.times.hold_s);
  w.key("timing_s").value(flow_rec.times.timing_s);
  w.key("place_s").value(flow_rec.times.place_s);
  w.key("cts_s").value(flow_rec.times.cts_s);
  w.key("sim_s").value(flow_rec.times.sim_s);
  w.key("sta_full_s").value(flow_rec.times.sta_full_s);
  w.key("sta_incremental_s").value(flow_rec.times.sta_incremental_s);
  w.end_object();
  w.key("failures").value(failures);
  w.end_object();
  out << w.str() << "\n";
  std::printf("wrote %s\n", out_file.c_str());
  return failures == 0 ? 0 : 1;
}
