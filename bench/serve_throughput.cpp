// Conversion-service throughput benchmark.
//
// Drives tp::serve::Server::run_wave directly (no sockets: this measures
// the cache + wave engine, not loopback TCP) with a mixed stream of novel
// and repeated requests — the access pattern a design-space-exploration
// client produces, where most sweep points have been asked before. Writes
// a BENCH_serve.json record: requests/s, p50/p99 per-request latency,
// cache hit rate, and bytes served. CI uploads the JSON as an artifact to
// track the serving-path perf trajectory over time.
//
//   $ ./bench/serve_throughput [--requests N] [--wave N] [--cycles N]
//                              [--threads N] [--out FILE]
//
// The first --unique requests are distinct computations; the remainder
// repeat them round-robin, so the expected steady-state hit rate is
// (requests - unique) / requests. The bench fails (exit 1) if a repeated
// request misses the cache or any response reports ok:false — either
// would mean the content-addressed keying is broken.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/circuits/benchmark.hpp"
#include "src/flow/backend.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/server.hpp"
#include "src/util/argparse.hpp"
#include "src/util/json.hpp"
#include "src/util/strcat.hpp"

using namespace tp;
using namespace tp::serve;

namespace {

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1)));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 1200, wave = 64, cycles = 24, threads = 0;
  std::size_t unique = 0;
  std::string out_file = "BENCH_serve.json";

  util::ArgParser parser(
      "serve_throughput",
      "replay a mixed novel/repeated request stream through the serving "
      "wave engine and record req/s, latency percentiles, and hit rate");
  parser.add_value("--requests", &requests,
                   "total requests to replay (default 1200)");
  parser.add_value("--unique", &unique,
                   "distinct computations; the rest repeat them "
                   "(default requests/4)");
  parser.add_value("--wave", &wave,
                   "requests coalesced per wave (default 64)");
  parser.add_value("--cycles", &cycles,
                   "simulated cycles per conversion (default 24)");
  parser.add_value("--threads", &threads,
                   "worker threads (default TP_THREADS or hardware)");
  parser.add_value("--out", &out_file,
                   "JSON output path (default BENCH_serve.json)", "FILE");
  parser.parse_or_exit(argc, argv);
  if (requests == 0 || wave == 0) {
    std::fprintf(stderr, "--requests and --wave must be positive\n%s",
                 parser.usage().c_str());
    return 2;
  }
  if (unique == 0) unique = std::max<std::size_t>(1, requests / 4);
  unique = std::min(unique, requests);

  // Small, fast circuits: the bench measures serving overhead and cache
  // behavior, not flow runtime.
  const std::vector<std::string> benchmarks = {"s1196", "s1238", "s1423",
                                               "s1488"};
  // Every registered backend takes part in the job mix, so the cache keys
  // cover the whole token space.
  std::vector<std::string_view> backends;
  for (const flow::ConversionBackend* backend : flow::backend_registry()) {
    backends.push_back(backend->token());
  }
  const std::vector<std::string_view> types = {"convert", "power_eval"};

  // Distinct computations differ in seed (and cycle the benchmark/backend
  // grid); repeats replay them round-robin with fresh ids.
  std::vector<std::string> lines;
  lines.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const std::size_t u = i < unique ? i : (i - unique) % unique;
    util::JsonWriter w;
    w.begin_object();
    w.key("id").value(cat("r", i));
    w.key("type").value(types[u % types.size()]);
    w.key("benchmark").value(benchmarks[u % benchmarks.size()]);
    w.key("backend").value(
        backends[(u / benchmarks.size()) % backends.size()]);
    w.key("preset").value("fast");
    w.key("cycles").value(static_cast<std::uint64_t>(cycles));
    w.key("seed").value(static_cast<std::uint64_t>(7 + u));
    w.end_object();
    lines.push_back(w.take());
  }

  ServerOptions options;
  options.threads = threads;
  options.cache.memory_entries = 4 * unique;  // no eviction noise
  Server server(options);

  std::printf("serve_throughput: %zu requests (%zu unique), waves of %zu, "
              "%zu thread(s)\n",
              requests, unique, wave, server.executor().thread_count());

  std::vector<double> latencies;
  latencies.reserve(requests);
  std::size_t ok = 0, cached = 0, repeat_misses = 0;
  Stopwatch wall;
  for (std::size_t base = 0; base < lines.size(); base += wave) {
    const std::size_t end = std::min(lines.size(), base + wave);
    const std::vector<std::string> batch(lines.begin() + base,
                                         lines.begin() + end);
    const std::vector<Outcome> outcomes = server.run_wave(batch);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const Outcome& out = outcomes[i];
      latencies.push_back(out.latency_s);
      if (out.ok) ++ok;
      if (out.cached) ++cached;
      // Repeats of a prior wave must hit (in-wave repeats may dedupe or
      // hit depending on wave alignment, so only count cross-wave ones).
      if (base + i >= unique && base >= unique && !out.cached) {
        ++repeat_misses;
      }
    }
  }
  const double wall_s = wall.seconds();

  const ServerCounters counters = server.counters();
  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double req_s = wall_s > 0 ? requests / wall_s : 0.0;
  const double hit_rate = counters.cache.hit_rate();

  std::printf("  %7.2f s wall, %.1f req/s\n", wall_s, req_s);
  std::printf("  latency p50 %.3f ms, p99 %.3f ms\n", 1e3 * p50, 1e3 * p99);
  std::printf("  %zu/%zu ok, %zu served without a flow run "
              "(%llu cache hits, %llu deduped, %llu computed)\n",
              ok, requests, cached,
              static_cast<unsigned long long>(counters.cells_cached),
              static_cast<unsigned long long>(counters.cells_deduped),
              static_cast<unsigned long long>(counters.cells_computed));
  std::printf("  cache hit rate %.1f%%, %llu bytes served\n",
              100.0 * hit_rate,
              static_cast<unsigned long long>(counters.bytes_out));

  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("serve_throughput");
  w.key("requests").value(static_cast<std::uint64_t>(requests));
  w.key("unique").value(static_cast<std::uint64_t>(unique));
  w.key("wave").value(static_cast<std::uint64_t>(wave));
  w.key("cycles").value(static_cast<std::uint64_t>(cycles));
  w.key("threads").value(
      static_cast<std::uint64_t>(server.executor().thread_count()));
  w.key("wall_s").value(wall_s);
  w.key("requests_per_s").value(req_s);
  w.key("latency_p50_s").value(p50);
  w.key("latency_p99_s").value(p99);
  w.key("hit_rate").value(hit_rate);
  w.key("bytes_out").value(counters.bytes_out);
  w.key("cells_computed").value(counters.cells_computed);
  w.key("cells_cached").value(counters.cells_cached);
  w.key("cells_deduped").value(counters.cells_deduped);
  w.key("ok").value(ok == requests && repeat_misses == 0);
  w.end_object();
  std::ofstream out(out_file);
  if (!out.good()) {
    std::fprintf(stderr, "cannot open %s\n", out_file.c_str());
    return 1;
  }
  out << w.take() << "\n";
  std::printf("  wrote     %s\n", out_file.c_str());

  if (ok != requests || repeat_misses != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu/%zu ok, %zu cross-wave repeats missed the "
                 "cache\n",
                 ok, requests, repeat_misses);
    return 1;
  }
  return 0;
}
