file(REMOVE_RECURSE
  "CMakeFiles/design_inspection.dir/design_inspection.cpp.o"
  "CMakeFiles/design_inspection.dir/design_inspection.cpp.o.d"
  "design_inspection"
  "design_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
