# Empty compiler generated dependencies file for design_inspection.
# This may be replaced when dependencies are built.
