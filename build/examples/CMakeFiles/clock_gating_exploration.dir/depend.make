# Empty dependencies file for clock_gating_exploration.
# This may be replaced when dependencies are built.
