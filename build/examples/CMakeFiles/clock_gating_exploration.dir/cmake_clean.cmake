file(REMOVE_RECURSE
  "CMakeFiles/clock_gating_exploration.dir/clock_gating_exploration.cpp.o"
  "CMakeFiles/clock_gating_exploration.dir/clock_gating_exploration.cpp.o.d"
  "clock_gating_exploration"
  "clock_gating_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_gating_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
