# Empty compiler generated dependencies file for cpu_conversion.
# This may be replaced when dependencies are built.
