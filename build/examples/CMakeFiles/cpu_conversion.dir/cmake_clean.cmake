file(REMOVE_RECURSE
  "CMakeFiles/cpu_conversion.dir/cpu_conversion.cpp.o"
  "CMakeFiles/cpu_conversion.dir/cpu_conversion.cpp.o.d"
  "cpu_conversion"
  "cpu_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
