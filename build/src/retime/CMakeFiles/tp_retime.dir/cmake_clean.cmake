file(REMOVE_RECURSE
  "CMakeFiles/tp_retime.dir/maxflow.cpp.o"
  "CMakeFiles/tp_retime.dir/maxflow.cpp.o.d"
  "CMakeFiles/tp_retime.dir/retime.cpp.o"
  "CMakeFiles/tp_retime.dir/retime.cpp.o.d"
  "libtp_retime.a"
  "libtp_retime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_retime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
