# Empty dependencies file for tp_retime.
# This may be replaced when dependencies are built.
