file(REMOVE_RECURSE
  "libtp_retime.a"
)
