file(REMOVE_RECURSE
  "CMakeFiles/tp_circuits.dir/benchmark.cpp.o"
  "CMakeFiles/tp_circuits.dir/benchmark.cpp.o.d"
  "CMakeFiles/tp_circuits.dir/builder.cpp.o"
  "CMakeFiles/tp_circuits.dir/builder.cpp.o.d"
  "CMakeFiles/tp_circuits.dir/cep.cpp.o"
  "CMakeFiles/tp_circuits.dir/cep.cpp.o.d"
  "CMakeFiles/tp_circuits.dir/cpu.cpp.o"
  "CMakeFiles/tp_circuits.dir/cpu.cpp.o.d"
  "CMakeFiles/tp_circuits.dir/iscas.cpp.o"
  "CMakeFiles/tp_circuits.dir/iscas.cpp.o.d"
  "CMakeFiles/tp_circuits.dir/workload.cpp.o"
  "CMakeFiles/tp_circuits.dir/workload.cpp.o.d"
  "libtp_circuits.a"
  "libtp_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
