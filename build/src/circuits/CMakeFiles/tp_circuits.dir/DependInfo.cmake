
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuits/benchmark.cpp" "src/circuits/CMakeFiles/tp_circuits.dir/benchmark.cpp.o" "gcc" "src/circuits/CMakeFiles/tp_circuits.dir/benchmark.cpp.o.d"
  "/root/repo/src/circuits/builder.cpp" "src/circuits/CMakeFiles/tp_circuits.dir/builder.cpp.o" "gcc" "src/circuits/CMakeFiles/tp_circuits.dir/builder.cpp.o.d"
  "/root/repo/src/circuits/cep.cpp" "src/circuits/CMakeFiles/tp_circuits.dir/cep.cpp.o" "gcc" "src/circuits/CMakeFiles/tp_circuits.dir/cep.cpp.o.d"
  "/root/repo/src/circuits/cpu.cpp" "src/circuits/CMakeFiles/tp_circuits.dir/cpu.cpp.o" "gcc" "src/circuits/CMakeFiles/tp_circuits.dir/cpu.cpp.o.d"
  "/root/repo/src/circuits/iscas.cpp" "src/circuits/CMakeFiles/tp_circuits.dir/iscas.cpp.o" "gcc" "src/circuits/CMakeFiles/tp_circuits.dir/iscas.cpp.o.d"
  "/root/repo/src/circuits/workload.cpp" "src/circuits/CMakeFiles/tp_circuits.dir/workload.cpp.o" "gcc" "src/circuits/CMakeFiles/tp_circuits.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/tp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
