# Empty compiler generated dependencies file for tp_circuits.
# This may be replaced when dependencies are built.
