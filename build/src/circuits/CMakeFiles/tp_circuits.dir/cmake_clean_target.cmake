file(REMOVE_RECURSE
  "libtp_circuits.a"
)
