# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("netlist")
subdirs("library")
subdirs("sim")
subdirs("ilp")
subdirs("phase")
subdirs("transform")
subdirs("timing")
subdirs("retime")
subdirs("place")
subdirs("cts")
subdirs("power")
subdirs("circuits")
subdirs("flow")
