file(REMOVE_RECURSE
  "CMakeFiles/tp_library.dir/cell_library.cpp.o"
  "CMakeFiles/tp_library.dir/cell_library.cpp.o.d"
  "libtp_library.a"
  "libtp_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
