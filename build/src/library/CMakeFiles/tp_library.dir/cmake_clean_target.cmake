file(REMOVE_RECURSE
  "libtp_library.a"
)
