# Empty dependencies file for tp_library.
# This may be replaced when dependencies are built.
