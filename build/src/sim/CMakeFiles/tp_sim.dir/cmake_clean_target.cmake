file(REMOVE_RECURSE
  "libtp_sim.a"
)
