file(REMOVE_RECURSE
  "CMakeFiles/tp_sim.dir/simulator.cpp.o"
  "CMakeFiles/tp_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/tp_sim.dir/stimulus.cpp.o"
  "CMakeFiles/tp_sim.dir/stimulus.cpp.o.d"
  "libtp_sim.a"
  "libtp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
