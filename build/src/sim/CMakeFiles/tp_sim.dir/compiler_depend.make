# Empty compiler generated dependencies file for tp_sim.
# This may be replaced when dependencies are built.
