file(REMOVE_RECURSE
  "libtp_phase.a"
)
