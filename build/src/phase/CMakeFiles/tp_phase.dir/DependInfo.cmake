
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phase/assignment.cpp" "src/phase/CMakeFiles/tp_phase.dir/assignment.cpp.o" "gcc" "src/phase/CMakeFiles/tp_phase.dir/assignment.cpp.o.d"
  "/root/repo/src/phase/greedy.cpp" "src/phase/CMakeFiles/tp_phase.dir/greedy.cpp.o" "gcc" "src/phase/CMakeFiles/tp_phase.dir/greedy.cpp.o.d"
  "/root/repo/src/phase/ilp_formulation.cpp" "src/phase/CMakeFiles/tp_phase.dir/ilp_formulation.cpp.o" "gcc" "src/phase/CMakeFiles/tp_phase.dir/ilp_formulation.cpp.o.d"
  "/root/repo/src/phase/schedule.cpp" "src/phase/CMakeFiles/tp_phase.dir/schedule.cpp.o" "gcc" "src/phase/CMakeFiles/tp_phase.dir/schedule.cpp.o.d"
  "/root/repo/src/phase/specialized_solver.cpp" "src/phase/CMakeFiles/tp_phase.dir/specialized_solver.cpp.o" "gcc" "src/phase/CMakeFiles/tp_phase.dir/specialized_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/tp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/tp_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/tp_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/tp_library.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
