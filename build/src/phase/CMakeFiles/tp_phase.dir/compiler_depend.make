# Empty compiler generated dependencies file for tp_phase.
# This may be replaced when dependencies are built.
