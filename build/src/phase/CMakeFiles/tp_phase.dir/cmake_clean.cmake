file(REMOVE_RECURSE
  "CMakeFiles/tp_phase.dir/assignment.cpp.o"
  "CMakeFiles/tp_phase.dir/assignment.cpp.o.d"
  "CMakeFiles/tp_phase.dir/greedy.cpp.o"
  "CMakeFiles/tp_phase.dir/greedy.cpp.o.d"
  "CMakeFiles/tp_phase.dir/ilp_formulation.cpp.o"
  "CMakeFiles/tp_phase.dir/ilp_formulation.cpp.o.d"
  "CMakeFiles/tp_phase.dir/schedule.cpp.o"
  "CMakeFiles/tp_phase.dir/schedule.cpp.o.d"
  "CMakeFiles/tp_phase.dir/specialized_solver.cpp.o"
  "CMakeFiles/tp_phase.dir/specialized_solver.cpp.o.d"
  "libtp_phase.a"
  "libtp_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
