# Empty compiler generated dependencies file for tp_timing.
# This may be replaced when dependencies are built.
