file(REMOVE_RECURSE
  "libtp_timing.a"
)
