file(REMOVE_RECURSE
  "CMakeFiles/tp_timing.dir/report.cpp.o"
  "CMakeFiles/tp_timing.dir/report.cpp.o.d"
  "CMakeFiles/tp_timing.dir/sta.cpp.o"
  "CMakeFiles/tp_timing.dir/sta.cpp.o.d"
  "libtp_timing.a"
  "libtp_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
