file(REMOVE_RECURSE
  "libtp_cts.a"
)
