# Empty dependencies file for tp_cts.
# This may be replaced when dependencies are built.
