file(REMOVE_RECURSE
  "CMakeFiles/tp_cts.dir/cts.cpp.o"
  "CMakeFiles/tp_cts.dir/cts.cpp.o.d"
  "libtp_cts.a"
  "libtp_cts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_cts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
