file(REMOVE_RECURSE
  "libtp_flow.a"
)
