# Empty compiler generated dependencies file for tp_flow.
# This may be replaced when dependencies are built.
