file(REMOVE_RECURSE
  "CMakeFiles/tp_flow.dir/flow.cpp.o"
  "CMakeFiles/tp_flow.dir/flow.cpp.o.d"
  "libtp_flow.a"
  "libtp_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
