# Empty dependencies file for tp_netlist.
# This may be replaced when dependencies are built.
