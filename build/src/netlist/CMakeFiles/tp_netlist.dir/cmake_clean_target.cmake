file(REMOVE_RECURSE
  "libtp_netlist.a"
)
