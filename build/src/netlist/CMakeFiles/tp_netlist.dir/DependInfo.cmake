
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/cell_kind.cpp" "src/netlist/CMakeFiles/tp_netlist.dir/cell_kind.cpp.o" "gcc" "src/netlist/CMakeFiles/tp_netlist.dir/cell_kind.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/tp_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/tp_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/stats.cpp" "src/netlist/CMakeFiles/tp_netlist.dir/stats.cpp.o" "gcc" "src/netlist/CMakeFiles/tp_netlist.dir/stats.cpp.o.d"
  "/root/repo/src/netlist/traverse.cpp" "src/netlist/CMakeFiles/tp_netlist.dir/traverse.cpp.o" "gcc" "src/netlist/CMakeFiles/tp_netlist.dir/traverse.cpp.o.d"
  "/root/repo/src/netlist/verilog.cpp" "src/netlist/CMakeFiles/tp_netlist.dir/verilog.cpp.o" "gcc" "src/netlist/CMakeFiles/tp_netlist.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
