file(REMOVE_RECURSE
  "CMakeFiles/tp_netlist.dir/cell_kind.cpp.o"
  "CMakeFiles/tp_netlist.dir/cell_kind.cpp.o.d"
  "CMakeFiles/tp_netlist.dir/netlist.cpp.o"
  "CMakeFiles/tp_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/tp_netlist.dir/stats.cpp.o"
  "CMakeFiles/tp_netlist.dir/stats.cpp.o.d"
  "CMakeFiles/tp_netlist.dir/traverse.cpp.o"
  "CMakeFiles/tp_netlist.dir/traverse.cpp.o.d"
  "CMakeFiles/tp_netlist.dir/verilog.cpp.o"
  "CMakeFiles/tp_netlist.dir/verilog.cpp.o.d"
  "libtp_netlist.a"
  "libtp_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
