file(REMOVE_RECURSE
  "CMakeFiles/tp_power.dir/banking.cpp.o"
  "CMakeFiles/tp_power.dir/banking.cpp.o.d"
  "CMakeFiles/tp_power.dir/power.cpp.o"
  "CMakeFiles/tp_power.dir/power.cpp.o.d"
  "libtp_power.a"
  "libtp_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
