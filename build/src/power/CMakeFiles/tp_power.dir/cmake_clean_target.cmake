file(REMOVE_RECURSE
  "libtp_power.a"
)
