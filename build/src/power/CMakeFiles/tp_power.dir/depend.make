# Empty dependencies file for tp_power.
# This may be replaced when dependencies are built.
