file(REMOVE_RECURSE
  "libtp_place.a"
)
