file(REMOVE_RECURSE
  "CMakeFiles/tp_place.dir/fm.cpp.o"
  "CMakeFiles/tp_place.dir/fm.cpp.o.d"
  "CMakeFiles/tp_place.dir/placer.cpp.o"
  "CMakeFiles/tp_place.dir/placer.cpp.o.d"
  "libtp_place.a"
  "libtp_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
