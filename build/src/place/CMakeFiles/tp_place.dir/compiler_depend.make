# Empty compiler generated dependencies file for tp_place.
# This may be replaced when dependencies are built.
