# Empty dependencies file for tp_ilp.
# This may be replaced when dependencies are built.
