file(REMOVE_RECURSE
  "CMakeFiles/tp_ilp.dir/model.cpp.o"
  "CMakeFiles/tp_ilp.dir/model.cpp.o.d"
  "CMakeFiles/tp_ilp.dir/solver.cpp.o"
  "CMakeFiles/tp_ilp.dir/solver.cpp.o.d"
  "libtp_ilp.a"
  "libtp_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
