file(REMOVE_RECURSE
  "libtp_ilp.a"
)
