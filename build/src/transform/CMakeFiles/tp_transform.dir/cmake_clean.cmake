file(REMOVE_RECURSE
  "CMakeFiles/tp_transform.dir/buffering.cpp.o"
  "CMakeFiles/tp_transform.dir/buffering.cpp.o.d"
  "CMakeFiles/tp_transform.dir/clock_gating.cpp.o"
  "CMakeFiles/tp_transform.dir/clock_gating.cpp.o.d"
  "CMakeFiles/tp_transform.dir/convert.cpp.o"
  "CMakeFiles/tp_transform.dir/convert.cpp.o.d"
  "CMakeFiles/tp_transform.dir/ddcg.cpp.o"
  "CMakeFiles/tp_transform.dir/ddcg.cpp.o.d"
  "CMakeFiles/tp_transform.dir/p2_gating.cpp.o"
  "CMakeFiles/tp_transform.dir/p2_gating.cpp.o.d"
  "CMakeFiles/tp_transform.dir/pulsed_latch.cpp.o"
  "CMakeFiles/tp_transform.dir/pulsed_latch.cpp.o.d"
  "libtp_transform.a"
  "libtp_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
