file(REMOVE_RECURSE
  "libtp_transform.a"
)
