# Empty compiler generated dependencies file for tp_transform.
# This may be replaced when dependencies are built.
