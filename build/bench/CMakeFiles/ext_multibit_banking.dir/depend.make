# Empty dependencies file for ext_multibit_banking.
# This may be replaced when dependencies are built.
