file(REMOVE_RECURSE
  "CMakeFiles/ext_multibit_banking.dir/ext_multibit_banking.cpp.o"
  "CMakeFiles/ext_multibit_banking.dir/ext_multibit_banking.cpp.o.d"
  "ext_multibit_banking"
  "ext_multibit_banking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multibit_banking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
