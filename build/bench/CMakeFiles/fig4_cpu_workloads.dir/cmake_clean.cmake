file(REMOVE_RECURSE
  "CMakeFiles/fig4_cpu_workloads.dir/fig4_cpu_workloads.cpp.o"
  "CMakeFiles/fig4_cpu_workloads.dir/fig4_cpu_workloads.cpp.o.d"
  "fig4_cpu_workloads"
  "fig4_cpu_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cpu_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
