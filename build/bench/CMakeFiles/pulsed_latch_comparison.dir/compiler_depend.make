# Empty compiler generated dependencies file for pulsed_latch_comparison.
# This may be replaced when dependencies are built.
