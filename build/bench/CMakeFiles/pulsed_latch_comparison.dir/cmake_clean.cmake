file(REMOVE_RECURSE
  "CMakeFiles/pulsed_latch_comparison.dir/pulsed_latch_comparison.cpp.o"
  "CMakeFiles/pulsed_latch_comparison.dir/pulsed_latch_comparison.cpp.o.d"
  "pulsed_latch_comparison"
  "pulsed_latch_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulsed_latch_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
