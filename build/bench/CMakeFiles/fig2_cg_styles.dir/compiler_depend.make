# Empty compiler generated dependencies file for fig2_cg_styles.
# This may be replaced when dependencies are built.
