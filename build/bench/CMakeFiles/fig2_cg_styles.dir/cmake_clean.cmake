file(REMOVE_RECURSE
  "CMakeFiles/fig2_cg_styles.dir/fig2_cg_styles.cpp.o"
  "CMakeFiles/fig2_cg_styles.dir/fig2_cg_styles.cpp.o.d"
  "fig2_cg_styles"
  "fig2_cg_styles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_cg_styles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
