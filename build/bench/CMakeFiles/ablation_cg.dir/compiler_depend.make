# Empty compiler generated dependencies file for ablation_cg.
# This may be replaced when dependencies are built.
