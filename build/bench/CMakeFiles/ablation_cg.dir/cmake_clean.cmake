file(REMOVE_RECURSE
  "CMakeFiles/ablation_cg.dir/ablation_cg.cpp.o"
  "CMakeFiles/ablation_cg.dir/ablation_cg.cpp.o.d"
  "ablation_cg"
  "ablation_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
