file(REMOVE_RECURSE
  "CMakeFiles/fig1_linear_pipeline.dir/fig1_linear_pipeline.cpp.o"
  "CMakeFiles/fig1_linear_pipeline.dir/fig1_linear_pipeline.cpp.o.d"
  "fig1_linear_pipeline"
  "fig1_linear_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_linear_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
