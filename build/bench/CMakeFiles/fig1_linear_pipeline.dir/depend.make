# Empty dependencies file for fig1_linear_pipeline.
# This may be replaced when dependencies are built.
