# Empty dependencies file for ablation_retime.
# This may be replaced when dependencies are built.
