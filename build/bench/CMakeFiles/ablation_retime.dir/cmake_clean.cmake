file(REMOVE_RECURSE
  "CMakeFiles/ablation_retime.dir/ablation_retime.cpp.o"
  "CMakeFiles/ablation_retime.dir/ablation_retime.cpp.o.d"
  "ablation_retime"
  "ablation_retime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_retime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
