
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_power.cpp" "bench/CMakeFiles/table2_power.dir/table2_power.cpp.o" "gcc" "bench/CMakeFiles/table2_power.dir/table2_power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/tp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/tp_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/tp_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/phase/CMakeFiles/tp_phase.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/tp_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/retime/CMakeFiles/tp_retime.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/tp_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/tp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cts/CMakeFiles/tp_cts.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/tp_place.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/tp_library.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/tp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
