file(REMOVE_RECURSE
  "CMakeFiles/fig3_cg_cells.dir/fig3_cg_cells.cpp.o"
  "CMakeFiles/fig3_cg_cells.dir/fig3_cg_cells.cpp.o.d"
  "fig3_cg_cells"
  "fig3_cg_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cg_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
