# Empty compiler generated dependencies file for fig3_cg_cells.
# This may be replaced when dependencies are built.
