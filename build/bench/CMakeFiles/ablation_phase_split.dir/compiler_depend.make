# Empty compiler generated dependencies file for ablation_phase_split.
# This may be replaced when dependencies are built.
