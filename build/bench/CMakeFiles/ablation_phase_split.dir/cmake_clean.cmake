file(REMOVE_RECURSE
  "CMakeFiles/ablation_phase_split.dir/ablation_phase_split.cpp.o"
  "CMakeFiles/ablation_phase_split.dir/ablation_phase_split.cpp.o.d"
  "ablation_phase_split"
  "ablation_phase_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_phase_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
