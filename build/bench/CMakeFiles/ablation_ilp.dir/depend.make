# Empty dependencies file for ablation_ilp.
# This may be replaced when dependencies are built.
