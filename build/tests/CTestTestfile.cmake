# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/cell_kind_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/verilog_test[1]_include.cmake")
include("/root/repo/build/tests/library_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/ilp_test[1]_include.cmake")
include("/root/repo/build/tests/phase_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
include("/root/repo/build/tests/retime_test[1]_include.cmake")
include("/root/repo/build/tests/place_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/circuits_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/sim_reference_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/pulsed_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/stats_banking_test[1]_include.cmake")
include("/root/repo/build/tests/icg_duplication_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
