# Empty compiler generated dependencies file for pulsed_buffer_test.
# This may be replaced when dependencies are built.
