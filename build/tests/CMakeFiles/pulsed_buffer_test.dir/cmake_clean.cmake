file(REMOVE_RECURSE
  "CMakeFiles/pulsed_buffer_test.dir/pulsed_buffer_test.cpp.o"
  "CMakeFiles/pulsed_buffer_test.dir/pulsed_buffer_test.cpp.o.d"
  "pulsed_buffer_test"
  "pulsed_buffer_test.pdb"
  "pulsed_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulsed_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
