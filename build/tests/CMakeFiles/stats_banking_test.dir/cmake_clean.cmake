file(REMOVE_RECURSE
  "CMakeFiles/stats_banking_test.dir/stats_banking_test.cpp.o"
  "CMakeFiles/stats_banking_test.dir/stats_banking_test.cpp.o.d"
  "stats_banking_test"
  "stats_banking_test.pdb"
  "stats_banking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_banking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
