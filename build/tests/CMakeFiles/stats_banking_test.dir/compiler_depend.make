# Empty compiler generated dependencies file for stats_banking_test.
# This may be replaced when dependencies are built.
