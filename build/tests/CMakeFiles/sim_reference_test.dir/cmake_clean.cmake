file(REMOVE_RECURSE
  "CMakeFiles/sim_reference_test.dir/sim_reference_test.cpp.o"
  "CMakeFiles/sim_reference_test.dir/sim_reference_test.cpp.o.d"
  "sim_reference_test"
  "sim_reference_test.pdb"
  "sim_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
