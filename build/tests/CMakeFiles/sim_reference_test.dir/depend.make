# Empty dependencies file for sim_reference_test.
# This may be replaced when dependencies are built.
