file(REMOVE_RECURSE
  "CMakeFiles/cell_kind_test.dir/cell_kind_test.cpp.o"
  "CMakeFiles/cell_kind_test.dir/cell_kind_test.cpp.o.d"
  "cell_kind_test"
  "cell_kind_test.pdb"
  "cell_kind_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_kind_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
