# Empty dependencies file for cell_kind_test.
# This may be replaced when dependencies are built.
