file(REMOVE_RECURSE
  "CMakeFiles/icg_duplication_test.dir/icg_duplication_test.cpp.o"
  "CMakeFiles/icg_duplication_test.dir/icg_duplication_test.cpp.o.d"
  "icg_duplication_test"
  "icg_duplication_test.pdb"
  "icg_duplication_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icg_duplication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
