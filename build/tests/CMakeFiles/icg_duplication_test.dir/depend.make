# Empty dependencies file for icg_duplication_test.
# This may be replaced when dependencies are built.
