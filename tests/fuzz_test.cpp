// Breadth/robustness fuzzing across module boundaries: Verilog round-trips
// of converted designs, structural mutation consistency, error paths, and
// cross-checks that are cheap to run over many random seeds.
#include <gtest/gtest.h>

#include "src/circuits/benchmark.hpp"
#include "src/cts/cts.hpp"
#include "src/flow/backend.hpp"
#include "src/flow/serialize.hpp"
#include "src/netlist/verilog.hpp"
#include "src/phase/schedule.hpp"
#include "src/sim/stimulus.hpp"
#include "src/timing/incremental.hpp"
#include "src/timing/sta.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/transform/convert.hpp"
#include "src/retime/retime.hpp"
#include "tests/test_circuits.hpp"

namespace tp {
namespace {

const CellLibrary& lib() { return CellLibrary::nominal_28nm(); }

class RoundTripFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripFuzz, ConvertedDesignsSurviveVerilog) {
  testing::RandomCircuitSpec spec;
  spec.seed = static_cast<std::uint64_t>(GetParam()) * 71 + 3;
  spec.num_ffs = 8 + GetParam() % 16;
  spec.num_gates = 30 + (GetParam() * 11) % 50;
  spec.enable_fraction = (GetParam() % 2) * 0.6;
  Netlist ff = testing::random_ff_circuit(spec);
  infer_clock_gating(ff, {.style = CgStyle::kGated, .min_icg_group = 1});
  ThreePhaseResult converted = to_three_phase(ff);
  retime_inserted_latches(converted.netlist, lib());

  const Netlist parsed =
      read_verilog_string(to_verilog(converted.netlist));
  parsed.validate();
  Rng rng(spec.seed);
  const Stimulus stim =
      random_stimulus(ff.data_inputs().size(), 48, rng, 0.4);
  SimOptions opt;
  opt.snapshot_event = 1;
  Simulator a(converted.netlist, opt), b(parsed, opt);
  EXPECT_TRUE(streams_equal(run_stream(a, stim, 8), run_stream(b, stim, 8)))
      << "seed " << spec.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzz, ::testing::Range(0, 20));

TEST(ErrorPaths, ConversionRejectsMultiClockInput) {
  // A converted (3-phase) design cannot be converted again.
  testing::RandomCircuitSpec spec;
  Netlist ff = testing::random_ff_circuit(spec);
  infer_clock_gating(ff);
  ThreePhaseResult converted = to_three_phase(ff);
  EXPECT_THROW(to_three_phase(converted.netlist), Error);
  EXPECT_THROW(to_master_slave(converted.netlist), Error);
}

TEST(ErrorPaths, SimulatorRejectsClocklessNetlist) {
  Netlist nl("noclk");
  const CellId a = nl.add_input("a");
  nl.add_output("o", nl.cell(a).out);
  EXPECT_THROW(Simulator{nl}, Error);
}

TEST(ErrorPaths, RemoveDrivenNetRejected) {
  Netlist nl("x");
  const CellId a = nl.add_input("a");
  EXPECT_THROW(nl.remove_net(nl.cell(a).out), Error);
}

TEST(MinPeriod, ThreePhaseTracksFfWithinBorrowingBounds) {
  // C3 in min-period form: the 3-phase design's minimum period must stay
  // within a modest factor of the FF design's.
  for (const std::uint64_t seed : {4u, 12u}) {
    testing::RandomCircuitSpec spec;
    spec.seed = seed;
    spec.num_ffs = 16;
    spec.num_gates = 60;
    spec.period_ps = 3000;
    Netlist ff = testing::random_ff_circuit(spec);
    infer_clock_gating(ff);
    ThreePhaseResult converted = to_three_phase(ff);
    retime_inserted_latches(converted.netlist, lib());

    const MinPeriodResult ff_min = find_min_period(ff, lib(), 100, 6000);
    const MinPeriodResult p3_min =
        find_min_period(converted.netlist, lib(), 100, 6000);
    ASSERT_TRUE(ff_min.feasible) << "seed " << seed;
    ASSERT_TRUE(p3_min.feasible) << "seed " << seed;
    EXPECT_LE(p3_min.period_ps, 2 * ff_min.period_ps) << "seed " << seed;
    EXPECT_LE(p3_min.period_ps, 3000)
        << "seed " << seed;  // meets the design period
  }
}

TEST(MinPeriod, SkewedScheduleCanBeatUniform) {
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 20;
  spec.num_gates = 80;
  Netlist ff = testing::random_ff_circuit(spec);
  infer_clock_gating(ff);
  ThreePhaseResult converted = to_three_phase(ff);
  retime_inserted_latches(converted.netlist, lib());
  const ScheduleExploration e =
      explore_phase_schedule(converted.netlist, lib(), 8);
  Netlist best = converted.netlist;
  apply_phase_schedule(best, e.best.e1_ps, e.best.e2_ps);
  const MinPeriodResult skewed = find_min_period(best, lib(), 100, 6000);
  const MinPeriodResult flat =
      find_min_period(converted.netlist, lib(), 100, 6000);
  ASSERT_TRUE(skewed.feasible);
  ASSERT_TRUE(flat.feasible);
  EXPECT_LE(skewed.period_ps, flat.period_ps);
}

TEST(OutputTiming, PoSetupCheckCatchesSlowCones) {
  Netlist nl("po");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(600, nl.cell(clk).out);
  const CellId in = nl.add_input("in");
  const NetId q = nl.add_net("q");
  nl.add_cell(CellKind::kDff, "ff", {nl.cell(in).out, nl.cell(clk).out}, q,
              Phase::kClk);
  NetId d = q;
  for (int i = 0; i < 30; ++i) {
    d = nl.cell(nl.add_gate(CellKind::kInv, "i" + std::to_string(i), {d}))
            .out;
  }
  nl.add_output("slow", d);

  TimingOptions no_po;           // default: PO timing disabled
  EXPECT_TRUE(check_timing(nl, lib(), no_po).setup_ok);
  TimingOptions with_po;
  with_po.output_setup_ps = 50;  // ~720 ps cone into a 600 ps cycle
  EXPECT_FALSE(check_timing(nl, lib(), with_po).setup_ok);
}

class BackendRegistryFuzz
    : public ::testing::TestWithParam<const flow::ConversionBackend*> {};

// The fuzz grid draws its backend list from the registry itself, so a
// newly registered backend is fuzzed without touching this file.
TEST_P(BackendRegistryFuzz, TokenRoundTripsAndConvertsRandomCircuits) {
  const flow::ConversionBackend* backend = GetParam();
  SCOPED_TRACE(std::string(backend->token()));
  // Token <-> style mapping is the registry's contract with every CLI and
  // the serve protocol.
  EXPECT_EQ(flow::find_backend(backend->token()), backend);
  flow::DesignStyle style;
  ASSERT_TRUE(flow::style_from_name(backend->token(), &style));
  EXPECT_EQ(style, backend->id());
  EXPECT_FALSE(backend->rule_set().empty());

  for (int trial = 0; trial < 3; ++trial) {
    testing::RandomCircuitSpec spec;
    spec.seed = 977 + static_cast<std::uint64_t>(backend->id()) * 131 +
                static_cast<std::uint64_t>(trial) * 17;
    spec.num_ffs = 6 + trial * 5;
    spec.num_gates = 24 + trial * 13;
    Netlist nl = testing::random_ff_circuit(spec);
    infer_clock_gating(nl);
    const flow::FlowOptions options = flow::FlowOptions::fast();
    flow::FlowResult scratch;
    flow::FlowContext ctx{
        .netlist = nl,
        .options = options,
        .library = lib(),
        .result = scratch,
        .checkpoint = [](std::string_view) {},
        .activity = [] { return ActivityStats{}; },
    };
    backend->convert(ctx);
    nl.validate();
    // Round-trip through the Verilog writer/parser (the writer renames
    // output ports, so the gate is structural validity plus matching
    // sequential population, not byte-identical text).
    const Netlist parsed = read_verilog_string(to_verilog(nl));
    parsed.validate();
    EXPECT_EQ(parsed.registers().size(), nl.registers().size())
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, BackendRegistryFuzz,
    ::testing::ValuesIn(flow::backend_registry()),
    [](const ::testing::TestParamInfo<const flow::ConversionBackend*>&
           info) { return std::string(info.param->token()); });

TEST(Determinism, GeneratedCircuitsAndFlowsAreStable) {
  // Same benchmark, same stimulus: identical netlist text across calls.
  const Netlist a = circuits::make_iscas("s1238", 1000);
  const Netlist b = circuits::make_iscas("s1238", 1000);
  EXPECT_EQ(to_verilog(a), to_verilog(b));
}

TEST(Determinism, CtsIsDeterministic) {
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 60;
  Netlist nl = testing::random_ff_circuit(spec);
  infer_clock_gating(nl);
  const Placement p1 = place(nl, lib());
  const Placement p2 = place(nl, lib());
  const ClockTreeReport a = synthesize_clock_trees(nl, p1);
  const ClockTreeReport b = synthesize_clock_trees(nl, p2);
  EXPECT_EQ(a.total_buffers, b.total_buffers);
  EXPECT_DOUBLE_EQ(a.total_wire_um, b.total_wire_um);
}

}  // namespace
}  // namespace tp
