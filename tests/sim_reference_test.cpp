// Property suite: the event-driven simulator against an independent
// cycle-accurate reference evaluator.
//
// The reference model is deliberately trivial: explicit state vectors, a
// topological combinational sweep per cycle, registers updated from the
// previous cycle's settled values. If the event-driven machinery (delta
// queues, atomic register batches, clock-network propagation, reset
// parking) disagrees with it on any FF design, something is wrong.
#include <gtest/gtest.h>

#include "src/netlist/traverse.hpp"
#include "src/sim/stimulus.hpp"
#include "tests/test_circuits.hpp"

namespace tp {
namespace {

/// Cycle-accurate reference for FF netlists (kDff/kDffEn + combinational
/// logic; no latches or clock gates).
class ReferenceModel {
 public:
  explicit ReferenceModel(const Netlist& netlist)
      : netlist_(netlist), lev_(levelize(netlist)) {
    values_.assign(netlist.num_nets(), 0);
    for (const CellId id : netlist.live_cells()) {
      if (netlist.cell(id).kind == CellKind::kConst1) {
        values_[netlist.cell(id).out.value()] = 1;
      }
    }
    settle();
  }

  void step(const std::vector<std::uint8_t>& pi) {
    // 1. Registers sample simultaneously from the settled previous state.
    std::vector<std::pair<NetId, std::uint8_t>> next;
    for (const CellId id : netlist_.registers()) {
      const Cell& cell = netlist_.cell(id);
      std::uint8_t q = values_[cell.out.value()];
      if (cell.kind == CellKind::kDff) {
        q = values_[cell.ins[0].value()];
      } else if (cell.kind == CellKind::kDffEn) {
        if (values_[cell.ins[1].value()]) q = values_[cell.ins[0].value()];
      } else {
        throw Error("ReferenceModel: FF netlists only");
      }
      next.push_back({cell.out, q});
    }
    for (const auto& [net, q] : next) values_[net.value()] = q;
    // 2. Inputs change, logic settles.
    const std::vector<CellId> pis = netlist_.data_inputs();
    for (std::size_t i = 0; i < pis.size(); ++i) {
      values_[netlist_.cell(pis[i]).out.value()] = pi[i];
    }
    settle();
  }

  [[nodiscard]] std::vector<std::uint8_t> outputs() const {
    std::vector<std::uint8_t> po;
    for (const CellId id : netlist_.outputs()) {
      po.push_back(values_[netlist_.cell(id).ins[0].value()]);
    }
    return po;
  }

 private:
  void settle() {
    bool ins[3];
    for (const CellId id : lev_.comb_order) {
      const Cell& cell = netlist_.cell(id);
      if (is_clock_cell(cell.kind) || !cell.out.valid()) continue;
      for (std::size_t i = 0; i < cell.ins.size(); ++i) {
        ins[i] = values_[cell.ins[i].value()] != 0;
      }
      values_[cell.out.value()] =
          eval_comb(cell.kind, std::span<const bool>(ins, cell.ins.size()))
              ? 1
              : 0;
    }
  }

  const Netlist& netlist_;
  Levelization lev_;
  std::vector<std::uint8_t> values_;
};

class SimulatorVsReference : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorVsReference, IdenticalOutputStreams) {
  testing::RandomCircuitSpec spec;
  spec.seed = static_cast<std::uint64_t>(GetParam()) * 131 + 7;
  spec.num_ffs = 6 + GetParam() % 24;
  spec.num_gates = 20 + (GetParam() * 13) % 80;
  spec.enable_fraction = (GetParam() % 2) * 0.5;  // kDffEn stays un-lowered
  spec.feedback_fraction = (GetParam() % 5) * 0.1;
  const Netlist nl = testing::random_ff_circuit(spec);

  Rng rng(spec.seed);
  const Stimulus stim = random_stimulus(nl.data_inputs().size(), 64, rng,
                                        0.45);
  Simulator sim(nl);
  ReferenceModel reference(nl);
  for (std::size_t cycle = 0; cycle < stim.size(); ++cycle) {
    sim.step(stim[cycle]);
    reference.step(stim[cycle]);
    ASSERT_EQ(sim.outputs(), reference.outputs())
        << "cycle " << cycle << ", seed " << spec.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorVsReference,
                         ::testing::Range(0, 40));

TEST(SimulatorVsReference, UnitAndZeroDelayAgreeWithReference) {
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 20;
  spec.num_gates = 70;
  const Netlist nl = testing::random_ff_circuit(spec);
  Rng rng(3);
  const Stimulus stim = random_stimulus(nl.data_inputs().size(), 48, rng);
  SimOptions zero;
  zero.unit_delay = false;
  Simulator unit(nl), zerod(nl, zero);
  ReferenceModel reference(nl);
  for (const auto& pi : stim) {
    unit.step(pi);
    zerod.step(pi);
    reference.step(pi);
    ASSERT_EQ(unit.outputs(), reference.outputs());
    ASSERT_EQ(zerod.outputs(), reference.outputs());
  }
}

TEST(SimulatorVsReference, GlitchCountingOnlyAffectsStatistics) {
  // Unit-delay counts more toggles (glitches) but never different values.
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 16;
  spec.num_gates = 120;
  const Netlist nl = testing::random_ff_circuit(spec);
  Rng rng(4);
  const Stimulus stim = random_stimulus(nl.data_inputs().size(), 64, rng);
  SimOptions zero;
  zero.unit_delay = false;
  Simulator unit(nl), zerod(nl, zero);
  run_stream(unit, stim, 4);
  run_stream(zerod, stim, 4);
  std::uint64_t unit_toggles = 0, zero_toggles = 0;
  for (std::uint32_t n = 0; n < nl.num_nets(); ++n) {
    unit_toggles += unit.stats().net_toggles[n];
    zero_toggles += zerod.stats().net_toggles[n];
  }
  EXPECT_GE(unit_toggles, zero_toggles);
}

}  // namespace
}  // namespace tp
