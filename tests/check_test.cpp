// Tests for the static phase-rule checker (src/check/): one seeded
// violation per rule class, waiver/baseline round trips, report formats,
// clean-flow sweeps, and the per-stage blame integration in run_flow().
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/analysis/analysis.hpp"
#include "src/check/checker.hpp"
#include "src/check/rules.hpp"
#include "src/circuits/benchmark.hpp"
#include "src/circuits/workload.hpp"
#include "src/flow/backend.hpp"
#include "src/flow/flow.hpp"
#include "src/netlist/netlist.hpp"
#include "src/netlist/traverse.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/util/json.hpp"
#include "src/util/log.hpp"

namespace tp::check {
namespace {

// A minimal legal 3-phase pipeline:
//
//   din -> [a_p2] -> [b_p1] -> inv1 -> [c_p3] -> [d_p2] -> [e_p1] -> dout
//
// Every latch adjacency is phase-legal (p2->p1, p1->p3, p3->p2, p2->p1)
// and the canonical third-split windows are disjoint, so run_checks() must
// come back clean; each seeded-violation test then breaks exactly one rule.
struct Chain {
  Netlist nl{"chain"};
  NetId p1n, p2n, p3n;
  NetId din_net;
  CellId a_p2, b_p1, c_p3, d_p2, e_p1;
  CellId inv1;
};

Chain three_phase_chain() {
  Chain c;
  Netlist& nl = c.nl;
  const CellId p1 = nl.add_input("p1");
  const CellId p2 = nl.add_input("p2");
  const CellId p3 = nl.add_input("p3");
  nl.set_clock_root(p1, Phase::kP1);
  nl.set_clock_root(p2, Phase::kP2);
  nl.set_clock_root(p3, Phase::kP3);
  c.p1n = nl.cell(p1).out;
  c.p2n = nl.cell(p2).out;
  c.p3n = nl.cell(p3).out;
  nl.clocks() = three_phase_spec(3000, c.p1n, c.p2n, c.p3n);

  c.din_net = nl.cell(nl.add_input("din")).out;
  const NetId qa = nl.add_net("qa");
  c.a_p2 = nl.add_cell(CellKind::kLatchH, "a_p2", {c.din_net, c.p2n}, qa,
                       Phase::kP2);
  const NetId qb = nl.add_net("qb");
  c.b_p1 =
      nl.add_cell(CellKind::kLatchH, "b_p1", {qa, c.p1n}, qb, Phase::kP1);
  c.inv1 = nl.add_gate(CellKind::kInv, "inv1", {qb});
  const NetId qc = nl.add_net("qc");
  c.c_p3 = nl.add_cell(CellKind::kLatchH, "c_p3", {nl.cell(c.inv1).out, c.p3n},
                       qc, Phase::kP3);
  const NetId qd = nl.add_net("qd");
  c.d_p2 =
      nl.add_cell(CellKind::kLatchH, "d_p2", {qc, c.p2n}, qd, Phase::kP2);
  const NetId qe = nl.add_net("qe");
  c.e_p1 =
      nl.add_cell(CellKind::kLatchH, "e_p1", {qd, c.p1n}, qe, Phase::kP1);
  nl.add_output("dout", qe);
  return c;
}

// --- registry ---------------------------------------------------------------

TEST(CheckRegistry, CoversEveryRuleWithUniqueNames) {
  const std::vector<RuleSpec>& registry = rule_registry();
  ASSERT_EQ(registry.size(), static_cast<std::size_t>(kNumRules));
  for (int i = 0; i < kNumRules; ++i) {
    const RuleSpec& spec = registry[static_cast<std::size_t>(i)];
    EXPECT_EQ(static_cast<int>(spec.id), i);
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.summary.empty());
    EXPECT_FALSE(spec.paper_ref.empty());
    for (int j = 0; j < i; ++j) {
      EXPECT_NE(spec.name, registry[static_cast<std::size_t>(j)].name);
    }
    RuleId round_trip = RuleId::kClockReachability;
    EXPECT_TRUE(rule_from_name(spec.name, &round_trip));
    EXPECT_EQ(round_trip, spec.id);
  }
  RuleId unused;
  EXPECT_FALSE(rule_from_name("no-such-rule", &unused));
}

// --- clean baseline ---------------------------------------------------------

TEST(CheckRules, CleanChainHasNoFindings) {
  Chain c = three_phase_chain();
  const CheckReport report = run_checks(c.nl);
  EXPECT_TRUE(report.clean()) << report.to_text();
  EXPECT_EQ(report.errors, 0);
  EXPECT_EQ(report.warnings, 0);
  EXPECT_EQ(report.waived, 0);
  EXPECT_TRUE(report.diags.empty());
  EXPECT_EQ(report.design, "chain");
}

// --- seeded violations, one per rule class ----------------------------------

TEST(CheckRules, ClockPinIntoDataLogicIsReachabilityError) {
  Chain c = three_phase_chain();
  // Gate pin of b_p1 rewired onto the data input: the backward walk ends in
  // data logic instead of a phase root.
  c.nl.replace_input(c.b_p1, 1, c.din_net);
  const CheckReport report = run_checks(c.nl);
  EXPECT_EQ(report.count(RuleId::kClockReachability), 1) << report.to_text();
  EXPECT_FALSE(report.clean());
}

TEST(CheckRules, TagDisagreeingWithTracedRootIsReachabilityError) {
  Chain c = three_phase_chain();
  // The clock pin legally reaches the p1 root but the cell says p3.
  c.nl.set_phase(c.e_p1, Phase::kP3);
  const CheckReport report = run_checks(c.nl);
  EXPECT_EQ(report.count(RuleId::kClockReachability), 1) << report.to_text();
}

TEST(CheckRules, FloatingClockPinIsFlaggedTwice) {
  Chain c = three_phase_chain();
  const NetId undriven = c.nl.add_net("no_driver");
  c.nl.replace_input(c.c_p3, 1, undriven);
  const CheckReport report = run_checks(c.nl);
  // Both the clock-specific rule and the generic floating-net rule fire.
  EXPECT_EQ(report.count(RuleId::kClockReachability), 1) << report.to_text();
  EXPECT_EQ(report.count(RuleId::kFloatingNet), 1);
}

TEST(CheckRules, ConstantClockPin) {
  Chain c = three_phase_chain();
  const NetId one = c.nl.add_net("tie1");
  c.nl.add_cell(CellKind::kConst1, "const1", {}, one);
  c.nl.replace_input(c.d_p2, 1, one);
  const CheckReport report = run_checks(c.nl);
  EXPECT_EQ(report.count(RuleId::kConstantClock), 1) << report.to_text();
  EXPECT_EQ(report.count(RuleId::kClockReachability), 0);
}

TEST(CheckRules, SamePhaseAdjacentLatchesRace) {
  Chain c = three_phase_chain();
  // Re-phase c_p3 onto p1: b_p1 -> inv1 -> c now has both latches
  // transparent in [0, 1000).
  c.nl.set_phase(c.c_p3, Phase::kP1);
  c.nl.replace_input(c.c_p3, 1, c.p1n);
  const CheckReport report = run_checks(c.nl);
  EXPECT_EQ(report.count(RuleId::kTransparencyRace), 1) << report.to_text();
  EXPECT_EQ(report.errors, 1);
}

TEST(CheckRules, DroppedP2LatchBreaksPhaseOrder) {
  Chain c = three_phase_chain();
  // Bypass and delete d_p2: c_p3 then feeds e_p1 directly.
  const NetId qd = c.nl.cell(c.d_p2).out;
  const NetId qc = c.nl.cell(c.c_p3).out;
  c.nl.transfer_fanouts(qd, qc);
  c.nl.remove_cell(c.d_p2);
  const CheckReport report = run_checks(c.nl);
  EXPECT_EQ(report.count(RuleId::kPhaseOrder), 1) << report.to_text();
  // p3's window [2000,3000) and p1's [0,1000) are disjoint, so this is
  // purely the C1 structural audit, not a C2 race.
  EXPECT_EQ(report.count(RuleId::kTransparencyRace), 0);
}

TEST(CheckRules, DataInputDrivingP1LatchBreaksPhaseOrder) {
  Chain c = three_phase_chain();
  // Bypass the p2 interface latch: din then drives b_p1 directly.
  c.nl.transfer_fanouts(c.nl.cell(c.a_p2).out, c.din_net);
  c.nl.remove_cell(c.a_p2);
  const CheckReport report = run_checks(c.nl);
  EXPECT_EQ(report.count(RuleId::kPhaseOrder), 1) << report.to_text();
}

TEST(CheckRules, LatchCombFeedbackIsSelfLoop) {
  Chain c = three_phase_chain();
  const NetId qa = c.nl.cell(c.a_p2).out;
  const NetId qb = c.nl.cell(c.b_p1).out;
  const CellId fb = c.nl.add_gate(CellKind::kAnd2, "fb", {qa, qb});
  c.nl.replace_input(c.b_p1, 0, c.nl.cell(fb).out);
  const CheckReport report = run_checks(c.nl);
  EXPECT_EQ(report.count(RuleId::kLatchSelfLoop), 1) << report.to_text();
  EXPECT_EQ(report.count(RuleId::kCombCycle), 0);
}

TEST(CheckRules, CombinationalCycleDetected) {
  Chain c = three_phase_chain();
  const NetId x = c.nl.add_net("x");
  const NetId y = c.nl.add_net("y");
  c.nl.add_cell(CellKind::kInv, "cyc1", {x}, y);
  c.nl.add_cell(CellKind::kInv, "cyc2", {y}, x);
  const CheckReport report = run_checks(c.nl);
  EXPECT_EQ(report.count(RuleId::kCombCycle), 1) << report.to_text();
  EXPECT_FALSE(report.clean());
}

TEST(CheckRules, DeadDriverLeavesFloatingNet) {
  Chain c = three_phase_chain();
  const NetId qb = c.nl.cell(c.b_p1).out;
  const NetId qinv = c.nl.cell(c.inv1).out;
  c.nl.remove_cell(c.inv1);
  // c_p3's data pin now hangs; reconnecting b_p1's output elsewhere is the
  // fix the hint suggests, so only the net itself is reported.
  const CheckReport report = run_checks(c.nl);
  EXPECT_EQ(report.count(RuleId::kFloatingNet), 1) << report.to_text();
  (void)qb;
  (void)qinv;
}

// Multiply-driven nets cannot be constructed through the Netlist API
// (add_cell throws, see Netlist.DoubleDriverThrows) — the rule is a
// defensive sweep for corrupted imports, covered by the registry test.

TEST(CheckRules, MixedPhaseIcgFanout) {
  Netlist nl("mixed");
  const CellId p1 = nl.add_input("p1");
  const CellId p2 = nl.add_input("p2");
  const CellId p3 = nl.add_input("p3");
  nl.set_clock_root(p1, Phase::kP1);
  nl.set_clock_root(p2, Phase::kP2);
  nl.set_clock_root(p3, Phase::kP3);
  nl.clocks() = three_phase_spec(3000, nl.cell(p1).out, nl.cell(p2).out,
                                 nl.cell(p3).out);
  const NetId en = nl.cell(nl.add_input("en")).out;
  const NetId d = nl.cell(nl.add_input("d")).out;
  const NetId gclk = nl.add_net("gclk");
  nl.add_cell(CellKind::kIcg, "icg", {en, nl.cell(p1).out}, gclk);
  const NetId qa = nl.add_net("qa");
  nl.add_cell(CellKind::kLatchH, "la_p1", {d, gclk}, qa, Phase::kP1);
  const NetId qb = nl.add_net("qb");
  // The conversion should have given this latch its own p2 ICG.
  nl.add_cell(CellKind::kLatchH, "lb_p2", {d, gclk}, qb, Phase::kP2);
  nl.add_output("oa", qa);
  nl.add_output("ob", qb);
  const CheckReport report = run_checks(nl);
  EXPECT_EQ(report.count(RuleId::kMixedPhaseIcg), 1) << report.to_text();
}

// Builds `sinks` p2 latches behind one ICG. When `data_driven`, the enable
// is derived from the first gated latch's own output (the DDCG shape of
// Sec. IV-D); otherwise it is a pure primary-input common enable.
Netlist ddcg_group(int sinks, bool data_driven) {
  Netlist nl("ddcg");
  const CellId p1 = nl.add_input("p1");
  const CellId p2 = nl.add_input("p2");
  const CellId p3 = nl.add_input("p3");
  nl.set_clock_root(p1, Phase::kP1);
  nl.set_clock_root(p2, Phase::kP2);
  nl.set_clock_root(p3, Phase::kP3);
  nl.clocks() = three_phase_spec(3000, nl.cell(p1).out, nl.cell(p2).out,
                                 nl.cell(p3).out);
  const NetId en = nl.cell(nl.add_input("en")).out;
  const NetId d = nl.cell(nl.add_input("d")).out;
  const NetId gclk = nl.add_net("gclk");
  NetId q0;
  for (int i = 0; i < sinks; ++i) {
    const NetId q = nl.add_net("q" + std::to_string(i));
    nl.add_cell(CellKind::kLatchH, "l" + std::to_string(i), {d, gclk}, q,
                Phase::kP2);
    if (i == 0) q0 = q;
  }
  NetId enable = en;
  if (data_driven) {
    enable = nl.cell(nl.add_gate(CellKind::kXor2, "enx", {en, q0})).out;
  }
  nl.add_cell(CellKind::kIcg, "cg", {enable, nl.cell(p2).out}, gclk);
  nl.add_output("o", q0);
  return nl;
}

TEST(CheckRules, DdcgFanoutCapOnlyBindsDataDrivenGroups) {
  // 33 data-driven sinks: one over the paper's cap.
  const CheckReport over = run_checks(ddcg_group(33, true));
  EXPECT_EQ(over.count(RuleId::kDdcgFanout), 1) << over.to_text();

  // At the cap, clean.
  const CheckReport at_cap = run_checks(ddcg_group(32, true));
  EXPECT_EQ(at_cap.count(RuleId::kDdcgFanout), 0) << at_cap.to_text();

  // A wide *common-enable* group is legal at any width.
  const CheckReport common = run_checks(ddcg_group(33, false));
  EXPECT_EQ(common.count(RuleId::kDdcgFanout), 0) << common.to_text();

  // The flow-configurable cap waives the width instead.
  CheckOptions wide;
  wide.ddcg_max_fanout = 33;
  const CheckReport raised = run_checks(ddcg_group(33, true), wide);
  EXPECT_EQ(raised.count(RuleId::kDdcgFanout), 0) << raised.to_text();
}

Netlist m1_netlist(Phase borrow_phase) {
  Netlist nl("m1");
  const CellId p1 = nl.add_input("p1");
  const CellId p2 = nl.add_input("p2");
  const CellId p3 = nl.add_input("p3");
  nl.set_clock_root(p1, Phase::kP1);
  nl.set_clock_root(p2, Phase::kP2);
  nl.set_clock_root(p3, Phase::kP3);
  nl.clocks() = three_phase_spec(3000, nl.cell(p1).out, nl.cell(p2).out,
                                 nl.cell(p3).out);
  const NetId en = nl.cell(nl.add_input("en")).out;
  const NetId d = nl.cell(nl.add_input("d")).out;
  const NetId pb = borrow_phase == Phase::kP1   ? nl.cell(p1).out
                   : borrow_phase == Phase::kP2 ? nl.cell(p2).out
                   : borrow_phase == Phase::kP3 ? nl.cell(p3).out
                                                : en;  // kNone: data net
  const NetId gclk = nl.add_net("gclk");
  nl.add_cell(CellKind::kIcgM1, "m1", {en, nl.cell(p2).out, pb}, gclk);
  const NetId q = nl.add_net("q");
  nl.add_cell(CellKind::kLatchH, "l_p2", {d, gclk}, q, Phase::kP2);
  nl.add_output("o", q);
  return nl;
}

TEST(CheckRules, M1BorrowWindowMustBeDisjoint) {
  // Paper shape: a p2 gate borrowing from p3 — disjoint windows, clean.
  EXPECT_EQ(run_checks(m1_netlist(Phase::kP3)).count(RuleId::kM1BorrowWindow),
            0);
  // Borrowing from the gated phase itself overlaps.
  EXPECT_EQ(run_checks(m1_netlist(Phase::kP2)).count(RuleId::kM1BorrowWindow),
            1);
  // A borrow pin on data logic never proves a window at all.
  EXPECT_EQ(run_checks(m1_netlist(Phase::kNone)).count(RuleId::kM1BorrowWindow),
            1);
}

Netlist m2_netlist(Phase enable_source_phase) {
  Netlist nl("m2");
  const CellId p1 = nl.add_input("p1");
  const CellId p2 = nl.add_input("p2");
  const CellId p3 = nl.add_input("p3");
  nl.set_clock_root(p1, Phase::kP1);
  nl.set_clock_root(p2, Phase::kP2);
  nl.set_clock_root(p3, Phase::kP3);
  nl.clocks() = three_phase_spec(3000, nl.cell(p1).out, nl.cell(p2).out,
                                 nl.cell(p3).out);
  const NetId d = nl.cell(nl.add_input("d")).out;
  const NetId root = enable_source_phase == Phase::kP2 ? nl.cell(p2).out
                                                       : nl.cell(p1).out;
  const NetId qs = nl.add_net("qs");
  nl.add_cell(CellKind::kLatchH, "src", {d, root}, qs, enable_source_phase);
  const NetId en = nl.cell(nl.add_gate(CellKind::kBuf, "enb", {qs})).out;
  const NetId gclk = nl.add_net("gclk");
  nl.add_cell(CellKind::kIcgNoLatch, "m2", {en, nl.cell(p2).out}, gclk);
  const NetId q = nl.add_net("q");
  nl.add_cell(CellKind::kLatchH, "l_p2", {d, gclk}, q, Phase::kP2);
  nl.add_output("o", q);
  return nl;
}

TEST(CheckRules, M2EnableMustComeFromAnotherPhase) {
  // Enable latched by p1, gating p2: the M2 removal is hazard-free.
  EXPECT_EQ(run_checks(m2_netlist(Phase::kP1)).count(RuleId::kM2EnablePhase),
            0);
  // Enable latched by the gated phase itself can glitch mid-pulse.
  EXPECT_EQ(run_checks(m2_netlist(Phase::kP2)).count(RuleId::kM2EnablePhase),
            1);
}

TEST(CheckRules, OverlongStageIsC3Warning) {
  Chain c = three_phase_chain();
  for (PhaseWaveform& wave : c.nl.clocks().phases) {
    if (wave.phase == Phase::kP1) wave.fall_ps = 1800;
    if (wave.phase == Phase::kP2) wave.rise_ps = 1800;
  }
  const CheckReport report = run_checks(c.nl);
  // 1800 > Tc/2 = 1500: legal skew, but worth a warning — and warnings
  // still fail clean().
  EXPECT_EQ(report.count(RuleId::kScheduleSanity), 1) << report.to_text();
  EXPECT_EQ(report.warnings, 1);
  EXPECT_EQ(report.errors, 0);
  EXPECT_FALSE(report.clean());
}

TEST(CheckRules, OutOfOrderClosingEdgesAreAnError) {
  Chain c = three_phase_chain();
  for (PhaseWaveform& wave : c.nl.clocks().phases) {
    if (wave.phase == Phase::kP3) wave.fall_ps = 2900;  // e3 != Tc
  }
  const CheckReport report = run_checks(c.nl);
  EXPECT_GE(report.count(RuleId::kScheduleSanity), 1) << report.to_text();
  EXPECT_GE(report.errors, 1);
}

TEST(CheckRules, DuplicatePhaseWaveformIsAnError) {
  Chain c = three_phase_chain();
  PhaseWaveform dup = *c.nl.clocks().find(Phase::kP1);
  c.nl.clocks().phases.push_back(dup);
  const CheckReport report = run_checks(c.nl);
  EXPECT_GE(report.count(RuleId::kScheduleSanity), 1) << report.to_text();
  EXPECT_GE(report.errors, 1);
}

TEST(CheckRules, DisabledRuleEmitsNothing) {
  Chain c = three_phase_chain();
  c.nl.set_phase(c.c_p3, Phase::kP1);
  c.nl.replace_input(c.c_p3, 1, c.p1n);
  CheckOptions options;
  options.disabled.push_back(RuleId::kTransparencyRace);
  const CheckReport report = run_checks(c.nl, options);
  EXPECT_EQ(report.count(RuleId::kTransparencyRace), 0) << report.to_text();
  EXPECT_TRUE(report.clean());
}

// --- window primitives ------------------------------------------------------

TEST(CheckWindows, WindowSetAddClampsAtCapacityAndDropsEmpties) {
  WindowSet w;
  w.add(100, 50);  // inverted: ignored
  w.add(100, 100);  // empty: ignored
  EXPECT_TRUE(w.empty());
  w.add(0, 1000);
  w.add(2000, 3000);
  ASSERT_EQ(w.n, 2);
  // A third span must be dropped, not written past the array (the original
  // clamp checked `n > size()` and let span[2] corrupt the stack).
  w.add(1200, 1800);
  EXPECT_EQ(w.n, 2);
  EXPECT_EQ(w.span[0][0], 0);
  EXPECT_EQ(w.span[0][1], 1000);
  EXPECT_EQ(w.span[1][0], 2000);
  EXPECT_EQ(w.span[1][1], 3000);

  WindowSet other;
  other.add(1200, 1800);
  EXPECT_FALSE(windows_overlap(w, other));
  other.add(900, 1100);
  EXPECT_TRUE(windows_overlap(w, other));
}

// --- waivers ----------------------------------------------------------------

TEST(CheckWaivers, GlobMatch) {
  EXPECT_TRUE(glob_match("abc", "abc"));
  EXPECT_FALSE(glob_match("abc", "abd"));
  EXPECT_TRUE(glob_match("a*c", "abbbc"));
  EXPECT_TRUE(glob_match("a*c", "ac"));
  EXPECT_TRUE(glob_match("a?c", "abc"));
  EXPECT_FALSE(glob_match("a?c", "ac"));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("*_p2", "rp2_3_0_p2"));
  EXPECT_FALSE(glob_match("*_p2", "rp2_3_0_p1"));
}

TEST(CheckWaivers, WaivedFindingKeepsReportClean) {
  Chain c = three_phase_chain();
  c.nl.set_phase(c.c_p3, Phase::kP1);
  c.nl.replace_input(c.c_p3, 1, c.p1n);

  CheckOptions options;
  Waiver waiver;
  waiver.rule = RuleId::kTransparencyRace;
  waiver.target = "b_p1";
  options.waivers.add(waiver);

  const CheckReport report = run_checks(c.nl, options);
  EXPECT_TRUE(report.clean()) << report.to_text();
  EXPECT_EQ(report.waived, 1);
  EXPECT_EQ(report.count(RuleId::kTransparencyRace), 0);
  // The finding stays visible, marked waived.
  ASSERT_EQ(report.diags.size(), 1u);
  EXPECT_TRUE(report.diags[0].waived);
}

TEST(CheckWaivers, WildcardRuleWaivesEverything) {
  Chain c = three_phase_chain();
  c.nl.set_phase(c.c_p3, Phase::kP1);
  c.nl.replace_input(c.c_p3, 1, c.p1n);
  CheckOptions options;
  Waiver waiver;
  waiver.any_rule = true;
  waiver.target = "*";
  options.waivers.add(waiver);
  const CheckReport report = run_checks(c.nl, options);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.waived, 1);
}

TEST(CheckWaivers, ParseAcceptsCommentsAndRejectsUnknownRules) {
  std::istringstream good(
      "# reviewed 2026-08\n"
      "transparency-race fifo_head_*  known CDC pair\n"
      "\n"
      "* debug_tap?\n");
  const WaiverSet set = WaiverSet::parse(good);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_FALSE(set.waivers()[0].any_rule);
  EXPECT_EQ(set.waivers()[0].rule, RuleId::kTransparencyRace);
  EXPECT_TRUE(set.waivers()[1].any_rule);

  std::istringstream bad("transparency-rase typo_*\n");
  EXPECT_THROW(WaiverSet::parse(bad), Error);
}

TEST(CheckWaivers, WaiverFileRoundTripWaivesEveryFinding) {
  Chain c = three_phase_chain();
  c.nl.set_phase(c.c_p3, Phase::kP1);
  c.nl.replace_input(c.c_p3, 1, c.p1n);
  const NetId undriven = c.nl.add_net("no_driver");
  c.nl.replace_input(c.a_p2, 1, undriven);

  const CheckReport before = run_checks(c.nl);
  ASSERT_FALSE(before.clean());

  // Baseline written to disk and re-read through the file entry point: the
  // path lint_cli --waive takes.
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "check_waiver_file";
  std::filesystem::create_directories(dir);
  const std::filesystem::path file = dir / "baseline.waive";
  {
    std::ofstream out(file);
    out << before.to_baseline();
  }
  CheckOptions options;
  options.waivers = WaiverSet::parse_file(file.string());
  const CheckReport after = run_checks(c.nl, options);
  EXPECT_TRUE(after.clean()) << after.to_text();
  EXPECT_EQ(after.waived, before.errors + before.warnings);

  EXPECT_THROW(WaiverSet::parse_file((dir / "missing.waive").string()),
               Error);
}

// --- report formats ---------------------------------------------------------

TEST(CheckReportFormats, TextAndJsonNameTheRule) {
  Chain c = three_phase_chain();
  c.nl.set_phase(c.c_p3, Phase::kP1);
  c.nl.replace_input(c.c_p3, 1, c.p1n);
  const CheckReport report = run_checks(c.nl);
  const std::string text = report.to_text();
  EXPECT_NE(text.find("transparency-race"), std::string::npos) << text;
  EXPECT_NE(text.find("b_p1"), std::string::npos) << text;
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"design\":\"chain\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"transparency-race\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos) << json;
}

TEST(CheckReportFormats, JsonEmissionParsesAndEscapesSpecials) {
  // Hand-built diagnostics with every character class the writer must
  // escape; finalize_report() is the same path run_checks() takes.
  Netlist nl("json\"design");
  Diagnostic diag;
  diag.rule = RuleId::kFloatingNet;
  diag.severity = Severity::kWarning;
  diag.message = "quote \" backslash \\ newline \n tab \t bell \x07 done";
  diag.cells = {"cell<a>", "cell\"b\""};
  diag.nets = {"n\\1"};
  diag.hint = "hint with \"quotes\"";
  const CheckReport report = finalize_report(nl, {diag}, {});

  util::Json parsed;
  std::string error;
  ASSERT_TRUE(util::Json::parse(report.to_json(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.get_string("design", ""), "json\"design");
  EXPECT_EQ(parsed.get_u64("warnings", 0), 1u);
  EXPECT_FALSE(parsed.get_bool("clean", true));
  const util::Json* counts = parsed.find("counts");
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(counts->get_u64("floating-net", 0), 1u);
  const util::Json* diags = parsed.find("diagnostics");
  ASSERT_NE(diags, nullptr);
  ASSERT_EQ(diags->items().size(), 1u);
  const util::Json& d = diags->items()[0];
  // The escaped string round-trips byte-identically through the parser.
  EXPECT_EQ(d.get_string("message", ""), diag.message);
  EXPECT_EQ(d.get_string("hint", ""), diag.hint);
  EXPECT_EQ(d.get_string("rule", ""), "floating-net");
  const util::Json* cells = d.find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->items().size(), 2u);
  EXPECT_EQ(cells->items()[1].as_string(), "cell\"b\"");
}

TEST(CheckReportFormats, BaselineRoundTripWaivesEveryFinding) {
  Chain c = three_phase_chain();
  c.nl.set_phase(c.c_p3, Phase::kP1);
  c.nl.replace_input(c.c_p3, 1, c.p1n);
  const NetId undriven = c.nl.add_net("no_driver");
  c.nl.replace_input(c.a_p2, 1, undriven);

  const CheckReport before = run_checks(c.nl);
  ASSERT_GE(before.errors, 2) << before.to_text();

  std::istringstream baseline(before.to_baseline());
  CheckOptions options;
  options.waivers = WaiverSet::parse(baseline);
  const CheckReport after = run_checks(c.nl, options);
  EXPECT_TRUE(after.clean()) << after.to_text();
  EXPECT_EQ(after.waived, before.errors + before.warnings);
}

// --- flow integration -------------------------------------------------------

TEST(CheckFlow, AllStylesOfABenchmarkStayClean) {
  const circuits::Benchmark bm = circuits::make_benchmark("s1196");
  const Stimulus stim =
      circuits::make_stimulus(bm, circuits::Workload::kPaperDefault, 32);
  for (const flow::DesignStyle style :
       {flow::DesignStyle::kFlipFlop, flow::DesignStyle::kMasterSlave,
        flow::DesignStyle::kThreePhase}) {
    flow::FlowOptions options;
    options.check_rules = true;
    const flow::FlowResult r = flow::run_flow(bm, style, stim, options);
    EXPECT_FALSE(r.lint.stages.empty());
    EXPECT_TRUE(r.lint.all_clean())
        << flow::style_name(style) << ": "
        << r.lint.first_violation()->report.to_text();
    for (const flow::StageLint& stage : r.lint.stages) {
      EXPECT_TRUE(stage.report.clean()) << stage.stage;
    }
  }
}

// Injects a missed per-phase ICG duplication "inside" the retime stage of a
// real benchmark flow: a latch of another phase is rewired onto an existing
// ICG's gated clock. Every later checkpoint also sees the violation, but
// the report must blame retime itself.
TEST(CheckFlow, InjectedMixedPhaseIcgBlamesItsStage) {
  const circuits::Benchmark bm = circuits::make_benchmark("DES3");
  const Stimulus stim =
      circuits::make_stimulus(bm, circuits::Workload::kPaperDefault, 32);
  flow::FlowOptions options;
  options.check_rules = true;
  options.stage_hook = [](Netlist& nl, std::string_view stage) {
    if (stage != "retime") return;
    for (const CellId icg_id : nl.live_cells()) {
      const Cell& icg = nl.cell(icg_id);
      if (!is_icg(icg.kind)) continue;
      // Which phase does this ICG gate?
      Phase gated = Phase::kNone;
      for (const PinRef& ref : nl.net(icg.out).fanouts) {
        const Cell& sink = nl.cell(ref.cell);
        if (sink.alive && is_register(sink.kind) &&
            static_cast<int>(ref.pin) == clock_pin(sink.kind) &&
            (sink.phase == Phase::kP1 || sink.phase == Phase::kP3)) {
          gated = sink.phase;
          break;
        }
      }
      if (gated == Phase::kNone) continue;
      // Rewire a latch of the opposite outer phase onto the gated clock
      // (avoiding p2 victims keeps the later p2-gating stages out of play).
      const Phase victim_phase =
          gated == Phase::kP1 ? Phase::kP3 : Phase::kP1;
      const NetId gclk = icg.out;
      for (const CellId vid : nl.registers()) {
        const Cell& victim = nl.cell(vid);
        if (victim.kind != CellKind::kLatchH ||
            victim.phase != victim_phase || victim.ins[1] == gclk) {
          continue;
        }
        nl.replace_input(vid, 1, gclk);
        return;
      }
    }
    FAIL() << "no ICG with a p1/p3 sink to corrupt at the retime stage";
  };

  const flow::FlowResult r =
      flow::run_flow(bm, flow::DesignStyle::kThreePhase, stim, options);
  const flow::StageLint* blamed = r.lint.first_violation();
  ASSERT_NE(blamed, nullptr);
  EXPECT_EQ(blamed->stage, "retime");
  EXPECT_GE(blamed->report.count(RuleId::kMixedPhaseIcg), 1)
      << blamed->report.to_text();
  for (const flow::StageLint& stage : r.lint.stages) {
    if (&stage == blamed) break;
    EXPECT_TRUE(stage.report.clean()) << stage.stage;
  }
}

// --- per-backend domain-rule seeds (A4 cdc-unsync, A6 rdc-crossing) ---------

/// s1423 converted by `backend` outside the flow (the backend_test
/// pattern): clock-gating front-end, then the backend's own pipeline.
Netlist domain_seed_netlist(const flow::ConversionBackend& backend) {
  const circuits::Benchmark bm = circuits::make_benchmark("s1423");
  Netlist netlist = bm.netlist;
  infer_clock_gating(netlist);
  const flow::FlowOptions options = flow::FlowOptions::fast();
  flow::FlowResult scratch;
  flow::FlowContext ctx{
      .netlist = netlist,
      .options = options,
      .library = CellLibrary::nominal_28nm(),
      .result = scratch,
      .checkpoint = [](std::string_view) {},
      .activity = [] { return ActivityStats{}; },
  };
  backend.convert(ctx);
  return netlist;
}

class BackendDomainSeeds
    : public ::testing::TestWithParam<const flow::ConversionBackend*> {};

INSTANTIATE_TEST_SUITE_P(
    Registry, BackendDomainSeeds,
    ::testing::ValuesIn(flow::backend_registry()),
    [](const ::testing::TestParamInfo<const flow::ConversionBackend*>&
           info) { return std::string(info.param->token()); });

TEST_P(BackendDomainSeeds, RuleSetAdvertisesDomainRules) {
  const std::vector<RuleId> rules = GetParam()->rule_set();
  for (const RuleId rule : {RuleId::kCdcUnsync, RuleId::kCdcReconverge,
                            RuleId::kRdcCrossing}) {
    EXPECT_NE(std::find(rules.begin(), rules.end(), rule), rules.end())
        << rule_name(rule);
  }
}

TEST_P(BackendDomainSeeds, SeededCdcIsDetectedAndWaivable) {
  const flow::ConversionBackend& backend = *GetParam();
  Netlist netlist = domain_seed_netlist(backend);
  const CheckReport before = analysis::run_analysis(netlist);
  const RuleId rule = backend.seed_cdc_violation(netlist);
  EXPECT_EQ(rule, RuleId::kCdcUnsync);
  ASSERT_EQ(before.count(rule), 0) << before.to_text();
  const CheckReport after = analysis::run_analysis(netlist);
  EXPECT_GE(after.count(rule), 1) << after.to_text();

  // Waiver round-trip: the report's own baseline must silence it.
  std::istringstream baseline(after.to_baseline());
  analysis::AnalysisOptions waived;
  waived.check.waivers = WaiverSet::parse(baseline);
  const CheckReport silenced = analysis::run_analysis(netlist, waived);
  EXPECT_EQ(silenced.count(rule), 0) << silenced.to_text();
  EXPECT_TRUE(silenced.clean()) << silenced.to_text();
  EXPECT_GE(silenced.waived, after.count(rule));
}

TEST_P(BackendDomainSeeds, SeededRdcIsDetectedAndWaivable) {
  const flow::ConversionBackend& backend = *GetParam();
  Netlist netlist = domain_seed_netlist(backend);
  const CheckReport before = analysis::run_analysis(netlist);
  const RuleId rule = backend.seed_rdc_violation(netlist);
  EXPECT_EQ(rule, RuleId::kRdcCrossing);
  ASSERT_EQ(before.count(rule), 0) << before.to_text();
  const CheckReport after = analysis::run_analysis(netlist);
  EXPECT_GE(after.count(rule), 1) << after.to_text();

  std::istringstream baseline(after.to_baseline());
  analysis::AnalysisOptions waived;
  waived.check.waivers = WaiverSet::parse(baseline);
  const CheckReport silenced = analysis::run_analysis(netlist, waived);
  EXPECT_EQ(silenced.count(rule), 0) << silenced.to_text();
  EXPECT_TRUE(silenced.clean()) << silenced.to_text();
  EXPECT_GE(silenced.waived, after.count(rule));
}

// Plants both domain violations "inside" the hold-repair stage of a real
// flow and requires the analysis checkpoints to blame exactly that stage.
// The A6 plant reuses two existing primary inputs as reset roots so the
// final validation simulation keeps its stimulus shape.
TEST_P(BackendDomainSeeds, FlowCheckpointBlamesSeededStage) {
  const flow::ConversionBackend& backend = *GetParam();
  const circuits::Benchmark bm = circuits::make_benchmark("s1423");
  const Stimulus stim =
      circuits::make_stimulus(bm, circuits::Workload::kPaperDefault, 16);
  flow::FlowOptions options;
  options.check_rules = true;
  options.check_analysis = true;
  options.stage_hook = [&backend](Netlist& nl, std::string_view stage) {
    if (stage != "hold-repair") return;
    ASSERT_EQ(backend.seed_cdc_violation(nl), RuleId::kCdcUnsync);
    // A6 via existing PIs: put the two ends of a register-graph edge in
    // reset domains whose release order is inverted.
    const RegisterGraph graph = build_register_graph(nl);
    const std::vector<CellId> data_pis = nl.data_inputs();
    ASSERT_GE(data_pis.size(), 2u);
    for (std::size_t u = 0; u < graph.regs.size(); ++u) {
      for (const int v : graph.fanout[u]) {
        if (static_cast<std::size_t>(v) == u) continue;
        nl.declare_reset_root(data_pis[0], true, /*release_order=*/1);
        nl.declare_reset_root(data_pis[1], true, /*release_order=*/0);
        nl.set_reset(graph.regs[u], nl.cell(data_pis[0]).out);
        nl.set_reset(graph.regs[static_cast<std::size_t>(v)],
                     nl.cell(data_pis[1]).out);
        return;
      }
    }
    FAIL() << "no register-to-register edge to put in a reset domain";
  };

  const flow::FlowResult r = flow::run_flow(bm, backend.id(), stim, options);
  const flow::StageLint* blamed = r.lint.first_violation();
  ASSERT_NE(blamed, nullptr);
  EXPECT_EQ(blamed->stage, "hold-repair");
  EXPECT_GE(blamed->report.count(RuleId::kCdcUnsync), 1)
      << blamed->report.to_text();
  EXPECT_GE(blamed->report.count(RuleId::kRdcCrossing), 1)
      << blamed->report.to_text();
  for (const flow::StageLint& stage : r.lint.stages) {
    if (&stage == blamed) break;
    EXPECT_TRUE(stage.report.clean()) << stage.stage;
  }
}

}  // namespace
}  // namespace tp::check
