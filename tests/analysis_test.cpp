// Tests for the phase-aware dataflow analyzer (src/analysis/): the worklist
// engine and Ternary lattice, the three analyses (A1 X-propagation, A2
// min-delay races, A3 borrowing chains) on seeded violations and clean
// designs, and the run_flow() / report-merge integration.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/analysis.hpp"
#include "src/analysis/dataflow.hpp"
#include "src/analysis/domains.hpp"
#include "src/circuits/benchmark.hpp"
#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"
#include "src/util/log.hpp"

namespace tp::analysis {
namespace {

using check::RuleId;

// --- lattice ---------------------------------------------------------------

TEST(Ternary, JoinIsCommutativeIdempotentAndMonotone) {
  const Ternary all[] = {Ternary::kBottom, Ternary::kZero, Ternary::kOne,
                         Ternary::kVaries, Ternary::kUnknown};
  for (const Ternary a : all) {
    EXPECT_EQ(ternary_join(a, a), a);
    EXPECT_EQ(ternary_join(a, Ternary::kBottom), a);
    for (const Ternary b : all) {
      EXPECT_EQ(ternary_join(a, b), ternary_join(b, a));
      // The join is an upper bound: joining it again with either operand
      // changes nothing.
      const Ternary j = ternary_join(a, b);
      EXPECT_EQ(ternary_join(j, a), j);
      EXPECT_EQ(ternary_join(j, b), j);
    }
  }
  EXPECT_EQ(ternary_join(Ternary::kZero, Ternary::kOne), Ternary::kVaries);
  EXPECT_EQ(ternary_join(Ternary::kVaries, Ternary::kUnknown),
            Ternary::kUnknown);
}

TEST(Ternary, AbstractEvalBlocksXAtControllingConstants) {
  using T = Ternary;
  const auto eval2 = [](CellKind kind, T a, T b) {
    const T ins[] = {a, b};
    return abstract_eval(kind, ins);
  };
  // Controlling values absorb X exactly as in 3-valued simulation.
  EXPECT_EQ(eval2(CellKind::kAnd2, T::kZero, T::kUnknown), T::kZero);
  EXPECT_EQ(eval2(CellKind::kOr2, T::kOne, T::kUnknown), T::kOne);
  EXPECT_EQ(eval2(CellKind::kNand2, T::kZero, T::kUnknown), T::kOne);
  // Non-controlling operands pass X through.
  EXPECT_EQ(eval2(CellKind::kAnd2, T::kOne, T::kUnknown), T::kUnknown);
  EXPECT_EQ(eval2(CellKind::kXor2, T::kZero, T::kUnknown), T::kUnknown);
  // Defined-but-varying operands yield kVaries, not X.
  EXPECT_EQ(eval2(CellKind::kAnd2, T::kVaries, T::kOne), T::kVaries);
  // Any kBottom operand is kBottom.
  EXPECT_EQ(eval2(CellKind::kAnd2, T::kBottom, T::kUnknown), T::kBottom);
  const T inv_in[] = {T::kUnknown};
  EXPECT_EQ(abstract_eval(CellKind::kInv, inv_in), T::kUnknown);
}

TEST(Ternary, AbstractEvalMuxWithXSelectAndEqualData) {
  // MUX(d0=varies-as-pair, d1 same net, sel=X): the X select cannot change
  // the output when both data inputs agree, so per concrete data choice the
  // sweep agrees — but across choices the output varies.
  const Ternary ins[] = {Ternary::kOne, Ternary::kOne, Ternary::kUnknown};
  EXPECT_EQ(abstract_eval(CellKind::kMux2, ins), Ternary::kOne);
  const Ternary ins2[] = {Ternary::kZero, Ternary::kOne, Ternary::kUnknown};
  EXPECT_EQ(abstract_eval(CellKind::kMux2, ins2), Ternary::kUnknown);
}

// --- worklist engine -------------------------------------------------------

TEST(Dataflow, ForwardFixpointIsDeterministicAndTerminates) {
  Netlist nl("chain");
  NetId at = nl.cell(nl.add_input("a")).out;
  for (int i = 0; i < 8; ++i) {
    at = nl.cell(nl.add_gate(CellKind::kInv, "i" + std::to_string(i), {at}))
             .out;
  }
  nl.add_output("y", at);

  std::vector<int> value(nl.num_nets(), 0);
  const auto transfer = [&](CellId id) {
    const Cell& cell = nl.cell(id);
    if (!cell.out.valid()) return false;
    int next = 1;
    for (const NetId in : cell.ins) next = std::max(next, value[in.value()] + 1);
    if (next == value[cell.out.value()]) return false;
    value[cell.out.value()] = next;
    return true;
  };
  const std::size_t steps =
      run_to_fixpoint(nl, Direction::kForward, transfer);
  // Topological seeding: every combinational cell settles in one visit, so
  // the only revisit is the output cell re-queued by the last inverter.
  EXPECT_LE(steps, static_cast<std::size_t>(nl.num_cells()) + 1);
  EXPECT_EQ(value[at.value()], 9);  // depth of the chain behind `at`
  std::vector<int> first = value;
  value.assign(nl.num_nets(), 0);
  EXPECT_EQ(run_to_fixpoint(nl, Direction::kForward, transfer), steps);
  EXPECT_EQ(value, first);
}

TEST(Dataflow, MaxStepsGuardsNonMonotoneTransfers) {
  // A latch feeding its own data pin: a legal netlist cycle (registers are
  // levelization barriers) that a broken always-changed transfer would
  // orbit forever.
  Netlist nl("loop");
  const CellId p1 = nl.add_input("p1");
  nl.set_clock_root(p1, Phase::kP1);
  const NetId q = nl.add_net("q");
  nl.add_cell(CellKind::kLatchH, "l", {q, nl.cell(p1).out}, q, Phase::kP1);
  const auto diverging = [](CellId) { return true; };  // never settles
  EXPECT_THROW(
      run_to_fixpoint(nl, Direction::kForward, diverging, /*max_steps=*/16),
      Error);
}

// --- fixtures --------------------------------------------------------------

/// A minimal legal 3-phase chain: din -> [a_p1] -> inv -> [b_p2] -> dout.
struct Chain {
  Netlist nl{"chain"};
  NetId p1n, p2n, p3n;
};

Chain three_phase_chain(std::int64_t period_ps = 3000) {
  Chain c;
  Netlist& nl = c.nl;
  const CellId p1 = nl.add_input("p1");
  const CellId p2 = nl.add_input("p2");
  const CellId p3 = nl.add_input("p3");
  nl.set_clock_root(p1, Phase::kP1);
  nl.set_clock_root(p2, Phase::kP2);
  nl.set_clock_root(p3, Phase::kP3);
  c.p1n = nl.cell(p1).out;
  c.p2n = nl.cell(p2).out;
  c.p3n = nl.cell(p3).out;
  nl.clocks() = three_phase_spec(period_ps, c.p1n, c.p2n, c.p3n);

  const NetId din = nl.cell(nl.add_input("din")).out;
  const NetId qa = nl.add_net("qa");
  nl.add_cell(CellKind::kLatchH, "a_p1", {din, c.p1n}, qa, Phase::kP1);
  const CellId inv = nl.add_gate(CellKind::kInv, "inv", {qa});
  const NetId qb = nl.add_net("qb");
  nl.add_cell(CellKind::kLatchH, "b_p2", {nl.cell(inv).out, c.p2n}, qb,
              Phase::kP2);
  nl.add_output("dout", qb);
  return c;
}

// --- A1: X-propagation -----------------------------------------------------

TEST(XProp, CleanChainHasNoFindings) {
  Chain c = three_phase_chain();
  const check::CheckReport report = run_analysis(c.nl, {});
  EXPECT_EQ(report.count(RuleId::kXProp), 0);
  EXPECT_TRUE(report.clean());
}

TEST(XProp, XSourceRegisterReachesDownstreamWithWitness) {
  Chain c = three_phase_chain();
  AnalysisOptions options;
  options.x_sources = {"a_p1"};
  const check::CheckReport report = run_analysis(c.nl, options);
  // a_p1 itself, b_p2, and the primary output are all X-reachable.
  EXPECT_EQ(report.count(RuleId::kXProp), 3);
  bool saw_output = false;
  for (const check::Diagnostic& diag : report.diags) {
    if (diag.rule != RuleId::kXProp) continue;
    if (diag.message.find("primary output 'dout'") == std::string::npos) {
      continue;
    }
    saw_output = true;
    // Witness path runs source-to-endpoint through the latch chain.
    const std::vector<std::string> want = {"a_p1", "inv", "b_p2", "dout"};
    EXPECT_EQ(diag.cells, want);
  }
  EXPECT_TRUE(saw_output);
}

TEST(XProp, ControllingConstantBlocksX) {
  Chain c = three_phase_chain();
  Netlist& nl = c.nl;
  // Gate the X input behind AND(x, 0): the constant controls the output,
  // so no X escapes to the new output.
  const NetId xin = nl.cell(nl.add_input("xin")).out;
  const CellId zero = nl.add_cell(CellKind::kConst0, "zero", {},
                                  nl.add_net("zero_n"), Phase::kNone);
  const CellId blocked =
      nl.add_gate(CellKind::kAnd2, "blocked", {xin, nl.cell(zero).out});
  nl.add_output("dout2", nl.cell(blocked).out);

  AnalysisOptions options;
  options.x_sources = {"xin"};
  const check::CheckReport report = run_analysis(c.nl, options);
  EXPECT_EQ(report.count(RuleId::kXProp), 0);
}

TEST(XProp, FloatingNetIsAnXSource) {
  Chain c = three_phase_chain();
  Netlist& nl = c.nl;
  const NetId floating = nl.add_net("floating");
  const CellId buf = nl.add_gate(CellKind::kBuf, "buf", {floating});
  nl.add_output("dout2", nl.cell(buf).out);
  const check::CheckReport report = run_analysis(c.nl, {});
  EXPECT_GE(report.count(RuleId::kXProp), 1);
}

// --- A2: min-delay races ---------------------------------------------------

/// Two latches with hand-written overlapping waveforms and one inverter
/// between them.
Netlist overlapping_pair() {
  Netlist nl("race");
  const CellId p1 = nl.add_input("p1");
  const CellId p2 = nl.add_input("p2");
  nl.set_clock_root(p1, Phase::kP1);
  nl.set_clock_root(p2, Phase::kP2);
  const NetId p1n = nl.cell(p1).out;
  const NetId p2n = nl.cell(p2).out;
  ClockSpec spec;
  spec.period_ps = 3000;
  spec.phases.push_back({Phase::kP1, p1n, 0, 1800});
  spec.phases.push_back({Phase::kP2, p2n, 1500, 3000});
  nl.clocks() = spec;

  const NetId din = nl.cell(nl.add_input("din")).out;
  const NetId qa = nl.add_net("qa");
  nl.add_cell(CellKind::kLatchH, "launch_p1", {din, p1n}, qa, Phase::kP1);
  const CellId inv = nl.add_gate(CellKind::kInv, "inv", {qa});
  const NetId qb = nl.add_net("qb");
  nl.add_cell(CellKind::kLatchH, "capture_p2", {nl.cell(inv).out, p2n}, qb,
              Phase::kP2);
  nl.add_output("dout", qb);
  return nl;
}

TEST(MinDelayRace, OverlappedWindowsWithShortPathAreFlagged) {
  const Netlist nl = overlapping_pair();
  const check::CheckReport report = run_analysis(nl, {});
  ASSERT_GE(report.count(RuleId::kMinDelayRace), 1);
  for (const check::Diagnostic& diag : report.diags) {
    if (diag.rule != RuleId::kMinDelayRace) continue;
    // Witness: launch latch, the path cell, and the capture latch.
    const std::vector<std::string> want = {"launch_p1", "inv", "capture_p2"};
    EXPECT_EQ(diag.cells, want);
  }
}

TEST(MinDelayRace, DisjointThirdSplitWindowsAreClean) {
  Chain c = three_phase_chain();
  const check::CheckReport report = run_analysis(c.nl, {});
  EXPECT_EQ(report.count(RuleId::kMinDelayRace), 0);
}

// --- A3: borrowing chains --------------------------------------------------

/// A 300 ps / 3-phase latch pipeline with six inverters per stage: every
/// stage borrows, and the cumulative borrow passes the 100 ps default
/// budget.
Netlist borrowing_pipeline() {
  Netlist nl("borrow");
  const CellId p1 = nl.add_input("p1");
  const CellId p2 = nl.add_input("p2");
  const CellId p3 = nl.add_input("p3");
  nl.set_clock_root(p1, Phase::kP1);
  nl.set_clock_root(p2, Phase::kP2);
  nl.set_clock_root(p3, Phase::kP3);
  const NetId p1n = nl.cell(p1).out;
  const NetId p2n = nl.cell(p2).out;
  const NetId p3n = nl.cell(p3).out;
  nl.clocks() = three_phase_spec(300, p1n, p2n, p3n);

  int gate = 0;
  const auto comb_stage = [&](NetId from) {
    NetId at = from;
    for (int i = 0; i < 6; ++i) {
      at = nl.cell(nl.add_gate(CellKind::kInv,
                               "inv" + std::to_string(gate++), {at}))
               .out;
    }
    return at;
  };
  const NetId din = nl.cell(nl.add_input("din")).out;
  const NetId qa = nl.add_net("qa");
  nl.add_cell(CellKind::kLatchH, "a_p1", {comb_stage(din), p1n}, qa,
              Phase::kP1);
  const NetId qb = nl.add_net("qb");
  nl.add_cell(CellKind::kLatchH, "b_p2", {comb_stage(qa), p2n}, qb,
              Phase::kP2);
  const NetId qc = nl.add_net("qc");
  nl.add_cell(CellKind::kLatchH, "c_p3", {comb_stage(qb), p3n}, qc,
              Phase::kP3);
  nl.add_output("dout", qc);
  return nl;
}

TEST(BorrowChain, CumulativeOverBudgetChainIsFlaggedOnceAtItsEnd) {
  const Netlist nl = borrowing_pipeline();
  const check::CheckReport report = run_analysis(nl, {});
  // Maximal-end reporting: one finding for the whole chain, not one per
  // suffix.
  ASSERT_EQ(report.count(RuleId::kBorrowChain), 1);
  for (const check::Diagnostic& diag : report.diags) {
    if (diag.rule != RuleId::kBorrowChain) continue;
    const std::vector<std::string> want = {"a_p1", "b_p2", "c_p3"};
    EXPECT_EQ(diag.cells, want);
  }
}

TEST(BorrowChain, RaisedBudgetSilencesTheChain) {
  const Netlist nl = borrowing_pipeline();
  AnalysisOptions options;
  options.borrow_budget_ps = 1e6;
  const check::CheckReport report = run_analysis(nl, options);
  EXPECT_EQ(report.count(RuleId::kBorrowChain), 0);
}

TEST(BorrowChain, RelaxedScheduleIsClean) {
  Chain c = three_phase_chain();
  const check::CheckReport report = run_analysis(c.nl, {});
  EXPECT_EQ(report.count(RuleId::kBorrowChain), 0);
}

// --- run_analysis plumbing -------------------------------------------------

TEST(RunAnalysis, DisabledRulesAreSkipped) {
  const Netlist nl = overlapping_pair();
  AnalysisOptions options;
  options.check.disabled = {RuleId::kMinDelayRace};
  const check::CheckReport report = run_analysis(nl, options);
  EXPECT_EQ(report.count(RuleId::kMinDelayRace), 0);
}

TEST(RunAnalysis, WaiversApplyToAnalysisFindings) {
  const Netlist nl = overlapping_pair();
  AnalysisOptions options;
  check::Waiver waiver;
  waiver.rule = RuleId::kMinDelayRace;
  waiver.target = "capture_*";
  options.check.waivers.add(waiver);
  const check::CheckReport report = run_analysis(nl, options);
  EXPECT_EQ(report.count(RuleId::kMinDelayRace), 0);
  EXPECT_GE(report.waived, 1);
  EXPECT_TRUE(report.clean());
}

TEST(RunAnalysis, MergesWithStructuralChecks) {
  const Netlist nl = overlapping_pair();
  check::CheckReport report = check::run_checks(nl, {});
  const int structural = report.errors;
  report.merge(run_analysis(nl, {}));
  EXPECT_GE(report.count(RuleId::kMinDelayRace), 1);
  EXPECT_GE(report.errors, structural + 1);
}

TEST(RunAnalysis, FindingBudgetCapsAndSummarizes) {
  Chain c = three_phase_chain();
  Netlist& nl = c.nl;
  // Fan an X out to many primary outputs to overflow a budget of 2.
  const NetId xin = nl.cell(nl.add_input("xin")).out;
  for (int i = 0; i < 6; ++i) {
    nl.add_output("xo" + std::to_string(i), xin);
  }
  AnalysisOptions options;
  options.x_sources = {"xin"};
  options.max_findings = 2;
  const check::CheckReport report = run_analysis(nl, options);
  EXPECT_EQ(report.count(RuleId::kXProp), 3);  // 2 findings + 1 summary
  bool saw_summary = false;
  for (const check::Diagnostic& diag : report.diags) {
    saw_summary = saw_summary ||
                  diag.message.find("suppressed") != std::string::npos;
  }
  EXPECT_TRUE(saw_summary);
}

// --- registry / flow integration -------------------------------------------

TEST(Registry, AnalysisRulesAreRegisteredButNotRunByRunChecks) {
  int analysis_rules = 0;
  for (const check::RuleSpec& spec : check::rule_registry()) {
    if (check::rule_is_analysis(spec.id)) ++analysis_rules;
  }
  EXPECT_EQ(analysis_rules, 6);  // A1-A3 dataflow + A4-A6 domain rules
  // run_checks() on a netlist with an analysis violation stays silent on
  // the analysis rules (they need run_analysis()).
  const Netlist nl = overlapping_pair();
  const check::CheckReport report = check::run_checks(nl, {});
  EXPECT_EQ(report.count(RuleId::kMinDelayRace), 0);
}

TEST(FlowIntegration, CheckAnalysisKeepsCleanFlowClean) {
  const circuits::Benchmark bench = circuits::make_benchmark("s1196");
  const Stimulus stim = circuits::make_stimulus(
      bench, circuits::Workload::kPaperDefault, 32);
  flow::FlowOptions options = flow::FlowOptions::fast();
  options.check_rules = true;
  options.check_analysis = true;
  const flow::FlowResult result = flow::run_flow(
      bench, flow::DesignStyle::kThreePhase, stim, options);
  EXPECT_FALSE(result.lint.stages.empty());
  EXPECT_TRUE(result.lint.all_clean());
}

TEST(FlowIntegration, AnalysisAloneStillProducesStageReports) {
  const circuits::Benchmark bench = circuits::make_benchmark("s1196");
  const Stimulus stim = circuits::make_stimulus(
      bench, circuits::Workload::kPaperDefault, 32);
  flow::FlowOptions options = flow::FlowOptions::fast();
  options.check_rules = false;
  options.check_analysis = true;
  const flow::FlowResult result = flow::run_flow(
      bench, flow::DesignStyle::kThreePhase, stim, options);
  EXPECT_FALSE(result.lint.stages.empty());
  EXPECT_TRUE(result.lint.all_clean());
}

// --- incremental session ---------------------------------------------------

// A single-clock DFF shift chain: editing the tail dirties a small cone,
// editing the head dirties (almost) everything downstream.
Netlist session_chain(int length) {
  Netlist nl("session_chain");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(2000, nl.cell(clk).out);
  const CellId din = nl.add_input("din");
  NetId d = nl.cell(din).out;
  for (int i = 0; i < length; ++i) {
    const CellId ff = nl.add_gate(CellKind::kDff, "ff" + std::to_string(i),
                                  {d, nl.cell(clk).out}, Phase::kClk);
    d = nl.cell(ff).out;
  }
  nl.add_output("dout", d);
  return nl;
}

TEST(AnalysisSession, SkipAndIncrementalPathsMatchFullAnalysis) {
  Netlist nl = session_chain(12);
  nl.enable_journal();
  const AnalysisOptions options;
  AnalysisSession session(options);
  EXPECT_EQ(session.analyze(nl).to_json(), run_analysis(nl, options).to_json());
  EXPECT_EQ(session.stats().full_runs, 1);

  // No mutations since the last wave: served from cache, still identical.
  EXPECT_EQ(session.reanalyze(nl, nl.take_touched()).to_json(),
            run_analysis(nl, options).to_json());
  EXPECT_EQ(session.stats().skipped_runs, 1);

  // A tail-of-chain edit dirties only a couple of cells, so the session
  // patches labels instead of re-deriving them — yet the report must stay
  // byte-identical to a from-scratch run_analysis().
  const CellId tail = nl.registers().back();
  const CellId inv =
      nl.add_gate(CellKind::kInv, "tail_inv", {nl.cell(tail).ins[0]});
  nl.replace_input(tail, 0, nl.cell(inv).out);
  EXPECT_EQ(session.reanalyze(nl, nl.take_touched()).to_json(),
            run_analysis(nl, options).to_json());
  EXPECT_EQ(session.stats().incremental_runs, 1);
  EXPECT_GT(session.stats().labels_reused, 0);
}

TEST(AnalysisSession, WideEditsAndPlanChangesFallBackToFull) {
  Netlist nl = session_chain(12);
  nl.enable_journal();
  const AnalysisOptions options;
  AnalysisSession session(options);
  session.analyze(nl);

  // A head-of-chain edit dirties the whole downstream cone; patching
  // would walk nearly every label, so the session re-analyzes in full.
  const CellId head = nl.registers().front();
  const CellId inv =
      nl.add_gate(CellKind::kInv, "head_inv", {nl.cell(head).ins[0]});
  nl.replace_input(head, 0, nl.cell(inv).out);
  EXPECT_EQ(session.reanalyze(nl, nl.take_touched()).to_json(),
            run_analysis(nl, options).to_json());
  EXPECT_EQ(session.stats().full_runs, 2);
  EXPECT_EQ(session.stats().incremental_runs, 0);

  // Declaring a reset root changes the clock/reset plan: even with an
  // empty journal the cached report is stale and must be rebuilt.
  const CellId rst = nl.add_input("rst_n");
  nl.declare_reset_root(rst, /*active_low=*/true, /*release_order=*/0);
  nl.set_reset(nl.registers().front(), nl.cell(rst).out);
  (void)nl.take_touched();
  EXPECT_EQ(session.reanalyze(nl, TouchedSet{}).to_json(),
            run_analysis(nl, options).to_json());
  EXPECT_EQ(session.stats().full_runs, 3);
}

}  // namespace
}  // namespace tp::analysis
