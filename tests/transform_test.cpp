#include <gtest/gtest.h>

#include "src/netlist/traverse.hpp"
#include "src/sim/stimulus.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/transform/convert.hpp"
#include "src/transform/ddcg.hpp"
#include "src/transform/p2_gating.hpp"
#include "tests/test_circuits.hpp"

namespace tp {
namespace {

using testing::RandomCircuitSpec;
using testing::random_ff_circuit;

OutputStream run(const Netlist& nl, const Stimulus& stim,
                 int snapshot_event = 0) {
  SimOptions opt;
  opt.snapshot_event = snapshot_event;
  Simulator sim(nl, opt);
  return run_stream(sim, stim, /*warmup=*/8);
}

Stimulus stimulus_for(const Netlist& nl, std::uint64_t seed,
                      std::size_t cycles = 96) {
  Rng rng(seed);
  return random_stimulus(nl.data_inputs().size(), cycles, rng, 0.4);
}

// --- clock-gating inference (Fig. 2) ----------------------------------------

TEST(ClockGatingInference, GatedStyleInsertsIcgs) {
  RandomCircuitSpec spec;
  spec.enable_fraction = 0.8;
  spec.num_ffs = 16;
  Netlist nl = random_ff_circuit(spec);
  const CgInferenceResult r = infer_clock_gating(nl);
  nl.validate();
  EXPECT_GT(r.icgs_inserted, 0);
  EXPECT_EQ(nl.count_cells([](CellKind k) { return k == CellKind::kDffEn; }),
            0u);
}

TEST(ClockGatingInference, EnabledStyleCreatesSelfLoops) {
  // The paper's motivation for preferring gated clocks: the recirculating
  // mux of the enabled style puts self-loops on the FF graph, which the
  // gated style avoids.
  RandomCircuitSpec spec;
  spec.enable_fraction = 0.8;
  spec.feedback_fraction = 0.0;
  spec.num_ffs = 16;

  Netlist gated = random_ff_circuit(spec);
  infer_clock_gating(gated, {.style = CgStyle::kGated, .min_icg_group = 1});
  Netlist enabled = random_ff_circuit(spec);
  infer_clock_gating(enabled, {.style = CgStyle::kEnabled});

  auto self_loops = [](const Netlist& nl) {
    const RegisterGraph g = build_register_graph(nl);
    int loops = 0;
    for (std::size_t u = 0; u < g.regs.size(); ++u) {
      loops += g.has_self_loop(static_cast<int>(u));
    }
    return loops;
  };
  // Random D-wiring produces some natural self-loops in both styles; the
  // enabled style adds one per muxed register on top.
  EXPECT_GT(self_loops(enabled), self_loops(gated));
}

TEST(ClockGatingInference, BothStylesAreEquivalent) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    RandomCircuitSpec spec;
    spec.seed = seed;
    spec.enable_fraction = 0.6;
    Netlist original = random_ff_circuit(spec);
    const Stimulus stim = stimulus_for(original, seed);

    Netlist gated = original;
    infer_clock_gating(gated, {.style = CgStyle::kGated, .min_icg_group = 1});
    Netlist enabled = original;
    infer_clock_gating(enabled, {.style = CgStyle::kEnabled});

    EXPECT_TRUE(streams_equal(run(original, stim), run(gated, stim)))
        << "gated, seed " << seed;
    EXPECT_TRUE(streams_equal(run(original, stim), run(enabled, stim)))
        << "enabled, seed " << seed;
  }
}

// --- master-slave conversion -------------------------------------------------

TEST(MasterSlave, DoublesRegisterCount) {
  RandomCircuitSpec spec;
  Netlist ff = random_ff_circuit(spec);
  infer_clock_gating(ff);
  const Netlist ms = to_master_slave(ff);
  EXPECT_EQ(ms.registers().size(), 2 * ff.registers().size());
  EXPECT_EQ(ms.count_cells(is_flip_flop), 0u);
}

TEST(MasterSlave, RejectsDffEn) {
  RandomCircuitSpec spec;
  spec.enable_fraction = 1.0;
  const Netlist ff = random_ff_circuit(spec);
  EXPECT_THROW(to_master_slave(ff), Error);
}

// --- 3-phase conversion ------------------------------------------------------

TEST(ThreePhase, PreservesConstraintC1) {
  // C1: every original FF position stays latched.
  RandomCircuitSpec spec;
  Netlist ff = random_ff_circuit(spec);
  infer_clock_gating(ff);
  const std::size_t ffs = ff.registers().size();
  const ThreePhaseResult r = to_three_phase(ff);
  EXPECT_EQ(r.netlist.registers().size(),
            ffs + static_cast<std::size_t>(r.inserted_p2));
  EXPECT_EQ(r.netlist.count_cells(is_flip_flop), 0u);
  // Three phases declared.
  EXPECT_EQ(r.netlist.clocks().phases.size(), 3u);
}

TEST(ThreePhase, NoDirectP3ToP1Path) {
  // By construction every p3 latch is back-to-back, so no combinational path
  // can run from a p3 latch straight into a p1 latch.
  RandomCircuitSpec spec;
  spec.num_ffs = 20;
  spec.num_gates = 60;
  Netlist ff = random_ff_circuit(spec);
  infer_clock_gating(ff);
  const ThreePhaseResult r = to_three_phase(ff);
  const RegisterGraph g = build_register_graph(r.netlist);
  for (std::size_t u = 0; u < g.regs.size(); ++u) {
    const Phase pu = r.netlist.cell(g.regs[u]).phase;
    if (pu != Phase::kP3) continue;
    for (const int v : g.fanout[u]) {
      EXPECT_NE(r.netlist.cell(g.regs[static_cast<std::size_t>(v)]).phase,
                Phase::kP1)
          << "p3 latch " << r.netlist.cell(g.regs[u]).name
          << " feeds a p1 latch directly";
    }
  }
}

TEST(ThreePhase, NoConsecutiveTransparentLatches) {
  // C2 in graph form: any combinational edge between latches of the same
  // phase is forbidden (their windows would overlap).
  RandomCircuitSpec spec;
  spec.num_ffs = 20;
  Netlist ff = random_ff_circuit(spec);
  infer_clock_gating(ff);
  const ThreePhaseResult r = to_three_phase(ff);
  const RegisterGraph g = build_register_graph(r.netlist);
  for (std::size_t u = 0; u < g.regs.size(); ++u) {
    for (const int v : g.fanout[u]) {
      EXPECT_NE(r.netlist.cell(g.regs[u]).phase,
                r.netlist.cell(g.regs[static_cast<std::size_t>(v)]).phase)
          << "same-phase edge " << u << "->" << v;
    }
  }
}

class ThreePhaseEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ThreePhaseEquivalence, MatchesFfStream) {
  RandomCircuitSpec spec;
  spec.seed = static_cast<std::uint64_t>(GetParam()) * 31 + 5;
  spec.num_ffs = 8 + GetParam() % 20;
  spec.num_gates = 30 + (GetParam() * 7) % 60;
  spec.enable_fraction = (GetParam() % 3) * 0.3;
  spec.feedback_fraction = (GetParam() % 4) * 0.15;
  Netlist ff = random_ff_circuit(spec);
  infer_clock_gating(ff);
  const Stimulus stim = stimulus_for(ff, spec.seed);
  const OutputStream reference = run(ff, stim);

  const ThreePhaseResult r = to_three_phase(ff);
  EXPECT_TRUE(streams_equal(reference, run(r.netlist, stim, 1)))
      << "3-phase mismatch, seed " << spec.seed;

  const Netlist ms = to_master_slave(ff);
  EXPECT_TRUE(streams_equal(reference, run(ms, stim)))
      << "master-slave mismatch, seed " << spec.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreePhaseEquivalence,
                         ::testing::Range(0, 30));

// --- p2 clock gating and M2 --------------------------------------------------

Netlist gated_three_phase(std::uint64_t seed, ThreePhaseResult* out = nullptr,
                          double enable_fraction = 0.9) {
  RandomCircuitSpec spec;
  spec.seed = seed;
  spec.enable_fraction = enable_fraction;
  spec.num_ffs = 24;
  spec.num_gates = 60;
  Netlist ff = random_ff_circuit(spec);
  infer_clock_gating(ff, {.style = CgStyle::kGated, .min_icg_group = 1});
  ThreePhaseResult r = to_three_phase(ff);
  if (out) *out = r;
  return std::move(r.netlist);
}

TEST(P2Gating, GatesLatchesBehindCommonEnable) {
  Netlist nl = gated_three_phase(3);
  const P2GatingResult r = gate_p2_latches(nl);
  nl.validate();
  EXPECT_GT(r.p2_latches_gated, 0);
  EXPECT_GT(r.p2_cg_cells, 0);
  EXPECT_GT(nl.count_cells([](CellKind k) { return k == CellKind::kIcgM1; }),
            0u);
}

TEST(P2Gating, GatedDesignStaysEquivalent) {
  for (const std::uint64_t seed : {3u, 17u, 29u}) {
    RandomCircuitSpec spec;
    spec.seed = seed;
    spec.enable_fraction = 0.9;
    spec.num_ffs = 24;
    spec.num_gates = 60;
    Netlist ff = random_ff_circuit(spec);
    infer_clock_gating(ff, {.style = CgStyle::kGated, .min_icg_group = 1});
    const Stimulus stim = stimulus_for(ff, seed);
    const OutputStream reference = run(ff, stim);

    ThreePhaseResult r = to_three_phase(ff);
    gate_p2_latches(r.netlist);
    EXPECT_TRUE(streams_equal(reference, run(r.netlist, stim, 1)))
        << "seed " << seed;
    // Conventional-ICG variant (M1 ablation) must also be equivalent.
    ThreePhaseResult r2 = to_three_phase(ff);
    gate_p2_latches(r2.netlist, {.use_m1 = false});
    EXPECT_TRUE(streams_equal(reference, run(r2.netlist, stim, 1)))
        << "no-M1, seed " << seed;
  }
}

TEST(M2, RemovesLatchesWhereLegalAndStaysEquivalent) {
  for (const std::uint64_t seed : {5u, 19u}) {
    RandomCircuitSpec spec;
    spec.seed = seed;
    spec.enable_fraction = 0.9;
    spec.num_ffs = 24;
    spec.num_gates = 60;
    Netlist ff = random_ff_circuit(spec);
    infer_clock_gating(ff, {.style = CgStyle::kGated, .min_icg_group = 1});
    const Stimulus stim = stimulus_for(ff, seed);
    const OutputStream reference = run(ff, stim);

    ThreePhaseResult r = to_three_phase(ff);
    const M2Result m2 = apply_m2(r.netlist);
    EXPECT_GT(m2.converted + m2.kept, 0);
    EXPECT_TRUE(streams_equal(reference, run(r.netlist, stim, 1)))
        << "seed " << seed;
  }
}

TEST(M2, IllegalRemovalCanBreakTheDesign) {
  // Force-removing the internal latch of *every* ICG (ignoring the legality
  // analysis) must be caught by simulation on at least some seeds: the
  // enable can then glitch the gated phase while it is high.
  int broken = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    RandomCircuitSpec spec;
    spec.seed = seed;
    spec.enable_fraction = 0.9;
    spec.num_ffs = 24;
    spec.num_gates = 60;
    Netlist ff = random_ff_circuit(spec);
    infer_clock_gating(ff, {.style = CgStyle::kGated, .min_icg_group = 1});
    const Stimulus stim = stimulus_for(ff, seed);
    const OutputStream reference = run(ff, stim);

    ThreePhaseResult r = to_three_phase(ff);
    int illegal = 0;
    for (const CellId id : r.netlist.live_cells()) {
      if (r.netlist.cell(id).kind == CellKind::kIcg) {
        // Count how many the legality analysis would have kept.
        bool same_phase = false;
        for (const CellId src : pin_fanin_sources(r.netlist, id, 0)) {
          if (source_phase(r.netlist, src) == r.netlist.cell(id).phase) {
            same_phase = true;
          }
        }
        illegal += same_phase;
        r.netlist.morph_cell(id, CellKind::kIcgNoLatch);
      }
    }
    if (illegal == 0) continue;  // nothing unsafe in this seed
    if (!streams_equal(reference, run(r.netlist, stim, 1))) ++broken;
  }
  EXPECT_GT(broken, 0) << "forced M2 never broke any seed — the legality "
                          "analysis would be vacuous";
}

// --- DDCG ---------------------------------------------------------------------

TEST(Ddcg, GatesLowActivityLatchesAndStaysEquivalent) {
  for (const std::uint64_t seed : {7u, 23u}) {
    RandomCircuitSpec spec;
    spec.seed = seed;
    spec.num_ffs = 30;
    spec.num_gates = 50;
    Netlist ff = random_ff_circuit(spec);
    infer_clock_gating(ff);
    const Stimulus low_activity = [&] {
      Rng rng(seed);
      return random_stimulus(ff.data_inputs().size(), 96, rng, 0.02);
    }();
    const OutputStream reference = run(ff, low_activity);

    ThreePhaseResult r = to_three_phase(ff);
    // Measure activity on the converted design, then gate.
    SimOptions opt;
    opt.snapshot_event = 1;
    Simulator sim(r.netlist, opt);
    run_stream(sim, low_activity, 8);
    const DdcgResult d =
        apply_ddcg(r.netlist, sim.stats(), {.toggle_threshold = 0.2});
    r.netlist.validate();
    EXPECT_GT(d.latches_gated, 0) << "seed " << seed;
    EXPECT_LE(d.latches_gated, d.groups * 32);
    EXPECT_TRUE(streams_equal(reference, run(r.netlist, low_activity, 1)))
        << "seed " << seed;
  }
}

TEST(Ddcg, RespectsMaxFanout) {
  RandomCircuitSpec spec;
  spec.num_ffs = 40;
  spec.num_gates = 40;
  Netlist ff = random_ff_circuit(spec);
  infer_clock_gating(ff);
  ThreePhaseResult r = to_three_phase(ff);
  Rng rng(1);
  SimOptions opt;
  opt.snapshot_event = 1;
  Simulator sim(r.netlist, opt);
  run_stream(sim, random_stimulus(r.netlist.data_inputs().size(), 64, rng,
                                  0.01),
             8);
  const DdcgResult d = apply_ddcg(r.netlist, sim.stats(),
                                  {.toggle_threshold = 1.0, .max_fanout = 4});
  for (const CellId id : r.netlist.live_cells()) {
    const Cell& cell = r.netlist.cell(id);
    if (is_icg(cell.kind) && cell.name.rfind("ddcg", 0) == 0) {
      int regs = 0;
      for (const PinRef& ref : r.netlist.net(cell.out).fanouts) {
        regs += is_register(r.netlist.cell(ref.cell).kind);
      }
      EXPECT_LE(regs, 4);
    }
  }
  EXPECT_GT(d.groups, 1);
}

}  // namespace
}  // namespace tp
