// Shared test helper: random FF-based circuits with tunable structure
// (enable-controlled registers, combinational feedback, depth), used by the
// conversion, timing, retiming, and integration tests.
#pragma once

#include <string>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/util/rng.hpp"

namespace tp::testing {

struct RandomCircuitSpec {
  int num_ffs = 12;
  int num_pis = 4;
  int num_pos = 4;
  int num_gates = 40;
  /// Fraction of FFs that carry an enable (kDffEn before CG inference).
  double enable_fraction = 0.0;
  /// Number of distinct enable signals the enabled FFs share.
  int num_enables = 2;
  /// Probability that an FF's D input mixes in its own output (self-loop).
  double feedback_fraction = 0.2;
  std::int64_t period_ps = 3000;
  std::uint64_t seed = 1;
};

inline Netlist random_ff_circuit(const RandomCircuitSpec& spec) {
  Rng rng(spec.seed);
  Netlist nl("rand" + std::to_string(spec.seed));
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  const NetId clk_net = nl.cell(clk).out;
  nl.clocks() = single_phase_spec(spec.period_ps, clk_net);

  std::vector<NetId> sources;
  for (int i = 0; i < spec.num_pis; ++i) {
    sources.push_back(nl.cell(nl.add_input("pi" + std::to_string(i))).out);
  }
  const NetId zero = nl.add_net("zero");
  nl.add_cell(CellKind::kConst0, "c0", {}, zero);

  // Registers first (D temporarily tied to zero, rewired below).
  std::vector<CellId> ffs;
  std::vector<NetId> enables;
  for (int e = 0; e < spec.num_enables; ++e) {
    enables.push_back(sources[rng.below(sources.size())]);
  }
  for (int i = 0; i < spec.num_ffs; ++i) {
    const NetId q = nl.add_net("q" + std::to_string(i));
    if (rng.chance(spec.enable_fraction) && !enables.empty()) {
      ffs.push_back(nl.add_cell(CellKind::kDffEn, "ff" + std::to_string(i),
                                {zero, enables[rng.below(enables.size())],
                                 clk_net},
                                q, Phase::kClk));
    } else {
      ffs.push_back(nl.add_cell(CellKind::kDff, "ff" + std::to_string(i),
                                {zero, clk_net}, q, Phase::kClk));
    }
    sources.push_back(q);
  }

  // Random acyclic combinational cloud over PIs and register outputs.
  const CellKind kinds[] = {CellKind::kAnd2, CellKind::kOr2,
                            CellKind::kNand2, CellKind::kNor2,
                            CellKind::kXor2, CellKind::kXnor2,
                            CellKind::kInv,  CellKind::kMux2,
                            CellKind::kAoi21};
  std::vector<NetId> all = sources;
  for (int g = 0; g < spec.num_gates; ++g) {
    const CellKind kind = kinds[rng.below(std::size(kinds))];
    std::vector<NetId> ins;
    for (int p = 0; p < num_inputs(kind); ++p) {
      ins.push_back(all[rng.below(all.size())]);
    }
    all.push_back(
        nl.cell(nl.add_gate(kind, "g" + std::to_string(g), ins)).out);
  }

  // Rewire register D pins (and optionally mix in self-feedback).
  for (int i = 0; i < spec.num_ffs; ++i) {
    NetId d = all[rng.below(all.size())];
    if (rng.chance(spec.feedback_fraction)) {
      const CellId mix = nl.add_gate(
          CellKind::kXor2, "fb" + std::to_string(i),
          {d, nl.cell(ffs[static_cast<std::size_t>(i)]).out});
      d = nl.cell(mix).out;
    }
    nl.replace_input(ffs[static_cast<std::size_t>(i)], 0, d);
  }

  for (int i = 0; i < spec.num_pos; ++i) {
    nl.add_output("po" + std::to_string(i), all[rng.below(all.size())]);
  }
  nl.validate();
  return nl;
}

}  // namespace tp::testing
