#include <gtest/gtest.h>

#include "src/netlist/verilog.hpp"
#include "src/sim/stimulus.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/transform/convert.hpp"
#include "tests/test_circuits.hpp"

namespace tp {
namespace {

TEST(Verilog, WritesModuleSkeleton) {
  Netlist nl("top");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(1000, nl.cell(clk).out);
  const CellId a = nl.add_input("a");
  const CellId g = nl.add_gate(CellKind::kInv, "u1", {nl.cell(a).out});
  nl.add_output("y", nl.cell(g).out);

  const std::string text = to_verilog(nl);
  EXPECT_NE(text.find("module top (clk, a, y_po);"), std::string::npos);
  EXPECT_NE(text.find("// tp-clock clk clk 0 500 1000"), std::string::npos);
  // The instance is renamed (its output net already claimed "u1").
  EXPECT_NE(text.find("TP_INV u1_1 (.A(a), .Y(u1));"), std::string::npos);
  EXPECT_NE(text.find("assign y_po = u1;"), std::string::npos);
}

TEST(Verilog, RoundTripPreservesStructure) {
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 20;
  spec.num_gates = 60;
  spec.enable_fraction = 0.5;
  Netlist original = testing::random_ff_circuit(spec);
  infer_clock_gating(original);

  const Netlist parsed = read_verilog_string(to_verilog(original));
  EXPECT_EQ(parsed.registers().size(), original.registers().size());
  EXPECT_EQ(parsed.live_cells().size(), original.live_cells().size());
  EXPECT_EQ(parsed.data_inputs().size(), original.data_inputs().size());
  EXPECT_EQ(parsed.outputs().size(), original.outputs().size());
  EXPECT_EQ(parsed.clocks().period_ps, original.clocks().period_ps);
}

TEST(Verilog, RoundTripPreservesFunction) {
  for (const std::uint64_t seed : {3u, 11u}) {
    testing::RandomCircuitSpec spec;
    spec.seed = seed;
    spec.num_ffs = 16;
    spec.num_gates = 50;
    Netlist original = testing::random_ff_circuit(spec);
    infer_clock_gating(original);
    const Netlist parsed = read_verilog_string(to_verilog(original));

    Rng rng(seed);
    const Stimulus stim =
        random_stimulus(original.data_inputs().size(), 64, rng, 0.4);
    Simulator a(original), b(parsed);
    EXPECT_TRUE(streams_equal(run_stream(a, stim, 4), run_stream(b, stim, 4)))
        << "seed " << seed;
  }
}

TEST(Verilog, RoundTripsConvertedThreePhaseDesign) {
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 14;
  spec.num_gates = 40;
  Netlist ff = testing::random_ff_circuit(spec);
  infer_clock_gating(ff);
  const ThreePhaseResult converted = to_three_phase(ff);
  const Netlist parsed =
      read_verilog_string(to_verilog(converted.netlist));

  EXPECT_EQ(parsed.clocks().phases.size(), 3u);
  // Phases recovered on the latches.
  int p1 = 0, p2 = 0, p3 = 0;
  for (const CellId id : parsed.registers()) {
    switch (parsed.cell(id).phase) {
      case Phase::kP1: ++p1; break;
      case Phase::kP2: ++p2; break;
      case Phase::kP3: ++p3; break;
      default: ADD_FAILURE() << "latch without phase"; break;
    }
  }
  EXPECT_GT(p2, 0);
  EXPECT_EQ(p1 + p2 + p3,
            static_cast<int>(converted.netlist.registers().size()));

  Rng rng(5);
  const Stimulus stim =
      random_stimulus(ff.data_inputs().size(), 64, rng, 0.4);
  SimOptions opt;
  opt.snapshot_event = 1;
  Simulator a(converted.netlist, opt), b(parsed, opt);
  EXPECT_TRUE(streams_equal(run_stream(a, stim, 8), run_stream(b, stim, 8)));
}

TEST(Verilog, PreservesInitValues) {
  Netlist nl("init");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(1000, nl.cell(clk).out);
  const CellId a = nl.add_input("a");
  const NetId q = nl.add_net("q");
  const CellId ff = nl.add_cell(CellKind::kDff, "r1",
                                {nl.cell(a).out, nl.cell(clk).out}, q,
                                Phase::kClk);
  nl.set_init(ff, true);
  nl.add_output("y", q);

  const std::string text = to_verilog(nl);
  EXPECT_NE(text.find("TP_DFF #(.INIT(1'b1)) r1"), std::string::npos);
  const Netlist parsed = read_verilog_string(text);
  EXPECT_EQ(parsed.cell(parsed.registers()[0]).init, 1);
}

TEST(Verilog, SanitizesAwkwardNames) {
  Netlist nl("weird design-name");
  const CellId a = nl.add_input("a[3]");
  const CellId g = nl.add_gate(CellKind::kBuf, "1bad", {nl.cell(a).out});
  nl.add_output("out.q", nl.cell(g).out);
  const std::string text = to_verilog(nl);
  // Must parse back without errors.
  EXPECT_NO_THROW(read_verilog_string(text));
  EXPECT_EQ(text.find("["), std::string::npos);
}

TEST(Verilog, RejectsMalformedInput) {
  EXPECT_THROW(read_verilog_string("module x (a;"), Error);
  EXPECT_THROW(read_verilog_string("module x (); garbage"), Error);
  EXPECT_THROW(read_verilog_string(
                   "module x (a); input a; UNKNOWN_CELL u (.A(a), .Y(a)); "
                   "endmodule"),
               Error);
  EXPECT_THROW(read_verilog_string(
                   "module x (a, y); input a; output y; TP_INV u (.A(a)); "
                   "assign y = a; endmodule"),
               Error);  // missing output pin
  EXPECT_THROW(read_verilog_string("module x (y); output y; endmodule"),
               Error);  // output without assign
}

TEST(Verilog, ConstantsRoundTrip) {
  Netlist nl("c");
  const NetId zero = nl.add_net("zero");
  nl.add_cell(CellKind::kConst0, "c0", {}, zero);
  const NetId one = nl.add_net("one");
  nl.add_cell(CellKind::kConst1, "c1", {}, one);
  const CellId g = nl.add_gate(CellKind::kOr2, "g", {zero, one});
  nl.add_output("y", nl.cell(g).out);
  const Netlist parsed = read_verilog_string(to_verilog(nl));
  EXPECT_EQ(parsed.count_cells(
                [](CellKind k) { return k == CellKind::kConst0; }),
            1u);
  EXPECT_EQ(parsed.count_cells(
                [](CellKind k) { return k == CellKind::kConst1; }),
            1u);
}

}  // namespace
}  // namespace tp
