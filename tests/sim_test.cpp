#include <gtest/gtest.h>

#include "src/sim/simulator.hpp"
#include <sstream>

#include "src/sim/stimulus.hpp"

namespace tp {
namespace {

/// FF shift chain: in -> FF -> FF -> ... -> out, depth stages.
Netlist ff_chain(int depth) {
  Netlist nl("ff_chain");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  const NetId clk_net = nl.cell(clk).out;
  nl.clocks() = single_phase_spec(1000, clk_net);
  const CellId in = nl.add_input("in");
  NetId d = nl.cell(in).out;
  for (int i = 0; i < depth; ++i) {
    const NetId q = nl.add_net("q" + std::to_string(i));
    nl.add_cell(CellKind::kDff, "ff" + std::to_string(i), {d, clk_net}, q,
                Phase::kClk);
    d = q;
  }
  nl.add_output("out", d);
  return nl;
}

/// 3-phase latch pipeline matching ff_chain(depth) per Fig. 1: stages
/// alternate p1 single latches and p3+p2 back-to-back pairs.
Netlist three_phase_chain(int depth) {
  Netlist nl("latch_chain");
  const CellId p1 = nl.add_input("p1");
  const CellId p2 = nl.add_input("p2");
  const CellId p3 = nl.add_input("p3");
  nl.set_clock_root(p1, Phase::kP1);
  nl.set_clock_root(p2, Phase::kP2);
  nl.set_clock_root(p3, Phase::kP3);
  nl.clocks() = three_phase_spec(3000, nl.cell(p1).out, nl.cell(p2).out,
                                 nl.cell(p3).out);
  const CellId in = nl.add_input("in");
  // The PI feeds a p1 latch, so the ILP's interface rule (G(u) >= K(v) for
  // u in PI) inserts a p2 latch at the PI's output.
  const NetId in_p2 = nl.add_net("in_p2");
  nl.add_cell(CellKind::kLatchH, "in_lat_p2",
              {nl.cell(in).out, nl.cell(p2).out}, in_p2, Phase::kP2);
  NetId d = in_p2;
  for (int i = 0; i < depth; ++i) {
    // Even stages: p1 single latches; odd stages: p3 + p2 back-to-back.
    if (i % 2 == 0) {
      const NetId q = nl.add_net("l" + std::to_string(i));
      nl.add_cell(CellKind::kLatchH, "lat" + std::to_string(i),
                  {d, nl.cell(p1).out}, q, Phase::kP1);
      d = q;
    } else {
      const NetId q = nl.add_net("l" + std::to_string(i));
      nl.add_cell(CellKind::kLatchH, "lat" + std::to_string(i),
                  {d, nl.cell(p3).out}, q, Phase::kP3);
      const NetId q2 = nl.add_net("l" + std::to_string(i) + "_p2");
      nl.add_cell(CellKind::kLatchH, "lat" + std::to_string(i) + "_p2",
                  {q, nl.cell(p2).out}, q2, Phase::kP2);
      d = q2;
    }
  }
  nl.add_output("out", d);
  return nl;
}

/// Master-slave chain equivalent to ff_chain(depth): each FF becomes a
/// transparent-low master followed by a transparent-high slave on one clock.
Netlist master_slave_chain(int depth) {
  Netlist nl("ms_chain");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  const NetId clk_net = nl.cell(clk).out;
  nl.clocks() = single_phase_spec(1000, clk_net);
  const CellId in = nl.add_input("in");
  NetId d = nl.cell(in).out;
  for (int i = 0; i < depth; ++i) {
    const NetId m = nl.add_net("m" + std::to_string(i));
    nl.add_cell(CellKind::kLatchL, "mst" + std::to_string(i), {d, clk_net},
                m, Phase::kClk);
    const NetId s = nl.add_net("s" + std::to_string(i));
    nl.add_cell(CellKind::kLatchH, "slv" + std::to_string(i), {m, clk_net},
                s, Phase::kClk);
    d = s;
  }
  nl.add_output("out", d);
  return nl;
}

Stimulus bit_stream(std::initializer_list<int> bits) {
  Stimulus s;
  for (int b : bits) s.push_back({static_cast<std::uint8_t>(b)});
  return s;
}

TEST(Simulator, FfChainDelaysByDepth) {
  Netlist nl = ff_chain(3);
  Simulator sim(nl);
  const Stimulus stim = bit_stream({1, 0, 1, 1, 0, 0, 1, 0});
  const OutputStream out = run_stream(sim, stim, /*warmup=*/0);
  // Output at cycle n is the input applied at cycle n - 3 (sampled at the
  // cycle-start edge; the PO snapshot shows post-edge state).
  for (std::size_t n = 3; n < stim.size(); ++n) {
    EXPECT_EQ(out[n][0], stim[n - 3][0]) << "cycle " << n;
  }
}

TEST(Simulator, DffEnHoldsWhenDisabled) {
  Netlist nl("en");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(1000, nl.cell(clk).out);
  const CellId d = nl.add_input("d");
  const CellId en = nl.add_input("en");
  const NetId q = nl.add_net("q");
  nl.add_cell(CellKind::kDffEn, "ff",
              {nl.cell(d).out, nl.cell(en).out, nl.cell(clk).out}, q,
              Phase::kClk);
  nl.add_output("q", q);

  Simulator sim(nl);
  Stimulus stim = {{1, 1}, {0, 0}, {0, 0}, {1, 0}, {1, 1}, {0, 0}};
  const OutputStream out = run_stream(sim, stim, 0);
  // Samples happen at cycle start with the *previous* cycle's inputs.
  EXPECT_EQ(out[1][0], 1);  // captured d=1 (en=1 applied in cycle 0)
  EXPECT_EQ(out[2][0], 1);  // en=0: hold
  EXPECT_EQ(out[3][0], 1);  // en=0: hold
  EXPECT_EQ(out[4][0], 1);  // en=0: hold
  EXPECT_EQ(out[5][0], 1);  // en=1 in cycle 4 captured d=1
}

TEST(Simulator, GatedClockMatchesEnabledClock) {
  // Fig. 2: DFFEN (enabled clock) and ICG+DFF (gated clock) must be
  // functionally identical.
  Netlist en_nl("en");
  {
    const CellId clk = en_nl.add_input("clk");
    en_nl.set_clock_root(clk, Phase::kClk);
    en_nl.clocks() = single_phase_spec(1000, en_nl.cell(clk).out);
    const CellId d = en_nl.add_input("d");
    const CellId en = en_nl.add_input("en");
    const NetId q = en_nl.add_net("q");
    en_nl.add_cell(
        CellKind::kDffEn, "ff",
        {en_nl.cell(d).out, en_nl.cell(en).out, en_nl.cell(clk).out}, q,
        Phase::kClk);
    en_nl.add_output("q", q);
  }
  Netlist cg_nl("cg");
  {
    const CellId clk = cg_nl.add_input("clk");
    cg_nl.set_clock_root(clk, Phase::kClk);
    cg_nl.clocks() = single_phase_spec(1000, cg_nl.cell(clk).out);
    const CellId d = cg_nl.add_input("d");
    const CellId en = cg_nl.add_input("en");
    const NetId gclk = cg_nl.add_net("gclk");
    cg_nl.add_cell(CellKind::kIcg, "cg",
                   {cg_nl.cell(en).out, cg_nl.cell(clk).out}, gclk,
                   Phase::kClk);
    const NetId q = cg_nl.add_net("q");
    cg_nl.add_cell(CellKind::kDff, "ff", {cg_nl.cell(d).out, gclk}, q,
                   Phase::kClk);
    cg_nl.add_output("q", q);
  }

  Rng rng(123);
  Stimulus stim = random_stimulus(2, 64, rng, 0.4);
  Simulator en_sim(en_nl), cg_sim(cg_nl);
  EXPECT_TRUE(streams_equal(run_stream(en_sim, stim, 2),
                            run_stream(cg_sim, stim, 2)));
}

TEST(Simulator, IcgSuppressesClockToggles) {
  // With EN tied to 0 the gated clock must never toggle.
  Netlist nl("cg0");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(1000, nl.cell(clk).out);
  const CellId d = nl.add_input("d");
  const NetId zero = nl.add_net("zero");
  nl.add_cell(CellKind::kConst0, "c0", {}, zero);
  const NetId gclk = nl.add_net("gclk");
  nl.add_cell(CellKind::kIcg, "cg", {zero, nl.cell(clk).out}, gclk,
              Phase::kClk);
  const NetId q = nl.add_net("q");
  nl.add_cell(CellKind::kDff, "ff", {nl.cell(d).out, gclk}, q, Phase::kClk);
  nl.add_output("q", q);

  Simulator sim(nl);
  Rng rng(5);
  run_stream(sim, random_stimulus(1, 32, rng), 0);
  EXPECT_EQ(sim.stats().net_toggles[gclk.value()], 0u);
  EXPECT_EQ(sim.stats().net_toggles[nl.cell(clk).out.value()],
            2u * sim.stats().cycles);
}

TEST(Simulator, MasterSlaveMatchesFfChain) {
  Netlist ff = ff_chain(4);
  Netlist ms = master_slave_chain(4);
  Rng rng(77);
  const Stimulus stim = random_stimulus(1, 128, rng, 0.5);
  Simulator ff_sim(ff), ms_sim(ms);
  EXPECT_TRUE(streams_equal(run_stream(ff_sim, stim, 4),
                            run_stream(ms_sim, stim, 4)));
}

TEST(Simulator, ThreePhaseChainMatchesFfChain) {
  // Fig. 1: the 3-phase latch pipeline is stream-equivalent to the FF
  // pipeline at the same throughput.
  for (const int depth : {1, 2, 3, 4, 5, 8}) {
    Netlist ff = ff_chain(depth);
    Netlist lp = three_phase_chain(depth);
    Rng rng(1000 + depth);
    const Stimulus stim = random_stimulus(1, 64, rng, 0.5);
    Simulator ff_sim(ff);
    SimOptions lp_opt;
    lp_opt.snapshot_event = 1;  // 3-phase designs snapshot after T/3
    Simulator lp_sim(lp, lp_opt);
    EXPECT_TRUE(streams_equal(run_stream(ff_sim, stim, 8),
                              run_stream(lp_sim, stim, 8)))
        << "depth " << depth;
  }
}

TEST(Simulator, ToggleStatsCountDataActivity) {
  Netlist nl = ff_chain(1);
  Simulator sim(nl);
  // Toggle input every cycle: the FF output toggles once per cycle.
  Stimulus stim;
  for (int i = 0; i < 16; ++i) stim.push_back({static_cast<std::uint8_t>(i % 2)});
  run_stream(sim, stim, 4);
  const NetId q = nl.cell(nl.outputs()[0]).ins[0];
  EXPECT_EQ(sim.stats().cycles, 12u);
  EXPECT_EQ(sim.stats().net_toggles[q.value()], 12u);
}

TEST(Simulator, ZeroDelayModeMatchesUnitDelayFunctionally) {
  Netlist nl = ff_chain(3);
  Rng rng(9);
  const Stimulus stim = random_stimulus(1, 64, rng);
  SimOptions zd;
  zd.unit_delay = false;
  Simulator a(nl), b(nl, zd);
  EXPECT_TRUE(streams_equal(run_stream(a, stim, 2), run_stream(b, stim, 2)));
}

TEST(Simulator, TwoPhaseClkClkbarIntermediate) {
  // The paper's retiming intermediate maps p1/p3 to clk and p2 to clkbar
  // (both high half a cycle). A transparent clk latch followed by a clkbar
  // latch passes each cycle's input within the same cycle (the clk latch
  // flows through the PI applied at t = 0; the clkbar latch relays it in
  // the second half).
  Netlist nl("twophase");
  const CellId clk = nl.add_input("clk");
  const CellId clkbar = nl.add_input("clkbar");
  nl.set_clock_root(clk, Phase::kClk);
  nl.set_clock_root(clkbar, Phase::kClkBar);
  nl.clocks() = two_phase_spec(1000, nl.cell(clk).out,
                               nl.cell(clkbar).out);
  EXPECT_EQ(nl.clocks().find(Phase::kClk)->fall_ps, 500);
  EXPECT_EQ(nl.clocks().find(Phase::kClkBar)->rise_ps, 500);

  const CellId in = nl.add_input("in");
  const NetId q1 = nl.add_net("q1");
  nl.add_cell(CellKind::kLatchH, "la", {nl.cell(in).out, nl.cell(clk).out},
              q1, Phase::kClk);
  const NetId q2 = nl.add_net("q2");
  nl.add_cell(CellKind::kLatchH, "lb", {q1, nl.cell(clkbar).out}, q2,
              Phase::kClkBar);
  nl.add_output("out", q2);

  Rng rng(31);
  const Stimulus stim = random_stimulus(1, 64, rng, 0.5);
  // The clkbar latch carries cycle-n data during [T/2, T); sample after
  // the mid-cycle event like the 3-phase p2 case.
  SimOptions opt;
  opt.snapshot_event = 1;
  Simulator b(nl, opt);
  const OutputStream out = run_stream(b, stim, 4);
  for (std::size_t n = 0; n < out.size(); ++n) {
    EXPECT_EQ(out[n][0], stim[n + 4][0]) << "cycle " << n;
  }
}

TEST(Simulator, VcdDumpIsWellFormed) {
  Netlist nl = ff_chain(2);
  Simulator sim(nl);
  std::ostringstream vcd;
  sim.start_vcd(vcd);
  Stimulus stim = bit_stream({1, 0, 1, 1});
  for (const auto& pi : stim) sim.step(pi);
  sim.stop_vcd();
  const std::string text = vcd.str();
  EXPECT_NE(text.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 "), std::string::npos);
  // One timestep marker per event per cycle (period 1000, events 0 & 500).
  EXPECT_NE(text.find("#0"), std::string::npos);
  EXPECT_NE(text.find("#500"), std::string::npos);
  EXPECT_NE(text.find("#3500"), std::string::npos);
  // Value-change lines reference declared identifiers.
  EXPECT_NE(text.find("\n1"), std::string::npos);
  EXPECT_NE(text.find("\n0"), std::string::npos);
}

TEST(Simulator, WrongPiCountThrows) {
  Netlist nl = ff_chain(1);
  Simulator sim(nl);
  const std::vector<std::uint8_t> too_many{1, 0};
  EXPECT_THROW(sim.step(too_many), Error);
}

}  // namespace
}  // namespace tp
