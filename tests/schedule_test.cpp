#include <gtest/gtest.h>

#include "src/phase/schedule.hpp"
#include "src/timing/report.hpp"
#include "src/sim/stimulus.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/transform/convert.hpp"
#include "tests/test_circuits.hpp"

namespace tp {
namespace {

const CellLibrary& lib() { return CellLibrary::nominal_28nm(); }

ThreePhaseResult converted(std::uint64_t seed = 1) {
  testing::RandomCircuitSpec spec;
  spec.seed = seed;
  spec.num_ffs = 18;
  spec.num_gates = 60;
  Netlist ff = testing::random_ff_circuit(spec);
  infer_clock_gating(ff);
  return to_three_phase(ff);
}

TEST(Schedule, ApplyRewritesWaveforms) {
  ThreePhaseResult r = converted();
  apply_phase_schedule(r.netlist, 500, 2200);
  const ClockSpec& clocks = r.netlist.clocks();
  EXPECT_EQ(clocks.find(Phase::kP1)->fall_ps, 500);
  EXPECT_EQ(clocks.find(Phase::kP2)->rise_ps, 500);
  EXPECT_EQ(clocks.find(Phase::kP2)->fall_ps, 2200);
  EXPECT_EQ(clocks.find(Phase::kP3)->rise_ps, 2200);
  EXPECT_EQ(clocks.find(Phase::kP3)->fall_ps, clocks.period_ps);
}

TEST(Schedule, RejectsUnorderedEdges) {
  ThreePhaseResult r = converted();
  EXPECT_THROW(apply_phase_schedule(r.netlist, 2000, 1000), Error);
  EXPECT_THROW(apply_phase_schedule(r.netlist, 0, 1000), Error);
  EXPECT_THROW(apply_phase_schedule(r.netlist, 1000, 3000), Error);
}

TEST(Schedule, RejectsNonThreePhase) {
  testing::RandomCircuitSpec spec;
  Netlist ff = testing::random_ff_circuit(spec);
  EXPECT_THROW(apply_phase_schedule(ff, 500, 1000), Error);
}

TEST(Schedule, BestIsAtLeastUniform) {
  for (const std::uint64_t seed : {1u, 5u, 9u}) {
    ThreePhaseResult r = converted(seed);
    const ScheduleExploration e =
        explore_phase_schedule(r.netlist, lib(), 8);
    EXPECT_GE(e.best.worst_setup_slack_ps,
              e.uniform.worst_setup_slack_ps)
        << "seed " << seed;
    EXPECT_FALSE(e.samples.empty());
  }
}

TEST(Schedule, SkewedScheduleStaysFunctionallyEquivalent) {
  // Any legal schedule preserves function: windows stay ordered and
  // non-overlapping, so the stream comparison must still hold.
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 16;
  spec.num_gates = 50;
  Netlist ff = testing::random_ff_circuit(spec);
  infer_clock_gating(ff);
  ThreePhaseResult r = to_three_phase(ff);

  Rng rng(7);
  const Stimulus stim = random_stimulus(ff.data_inputs().size(), 96, rng,
                                        0.4);
  Simulator ff_sim(ff);
  const OutputStream reference = run_stream(ff_sim, stim, 8);

  for (const auto& [e1, e2] : {std::pair<std::int64_t, std::int64_t>{400,
                                                                     1700},
                               {1200, 2400},
                               {900, 1400}}) {
    Netlist skewed = r.netlist;
    apply_phase_schedule(skewed, e1, e2);
    SimOptions opt;
    opt.snapshot_event = 1;
    Simulator sim(skewed, opt);
    EXPECT_TRUE(streams_equal(reference, run_stream(sim, stim, 8)))
        << "e1=" << e1 << " e2=" << e2;
  }
}

TEST(TimingProfile, ReportsEndpointsAndHistogram) {
  ThreePhaseResult r = converted();
  const TimingProfile profile = profile_timing(r.netlist, lib());
  EXPECT_EQ(profile.endpoints.size(), r.netlist.registers().size());
  // Sorted ascending by setup slack.
  for (std::size_t i = 1; i < profile.endpoints.size(); ++i) {
    EXPECT_LE(profile.endpoints[i - 1].setup_slack_ps,
              profile.endpoints[i].setup_slack_ps);
  }
  int histogram_total = 0;
  for (const int c : profile.histogram.counts) histogram_total += c;
  EXPECT_EQ(histogram_total,
            static_cast<int>(profile.endpoints.size()));
  const std::string text = format_profile(profile, 5);
  EXPECT_NE(text.find("worst endpoints"), std::string::npos);
  EXPECT_NE(text.find("slack histogram"), std::string::npos);
}

}  // namespace
}  // namespace tp
