// Tests for the conversion-backend registry (src/flow/backend.hpp): token
// and id lookup, serialization-tag stability, cache-key divergence between
// backends, the serve protocol's "backend" field, and the non-vacuity
// contract — every backend's seeded violation is caught by the rule it
// promises.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/check/checker.hpp"
#include "src/flow/backend.hpp"
#include "src/flow/matrix.hpp"
#include "src/flow/serialize.hpp"
#include "src/serve/cache.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/server.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/util/strcat.hpp"

namespace tp {
namespace {

using flow::ConversionBackend;
using flow::DesignStyle;
using flow::FlowContext;
using flow::FlowOptions;
using flow::FlowResult;
using flow::backend_for;
using flow::backend_registry;
using flow::find_backend;

// ---------------------------------------------------------------------------
// Registry lookup.

TEST(BackendRegistry, OneBackendPerDesignStyle) {
  const auto& registry = backend_registry();
  ASSERT_EQ(registry.size(),
            static_cast<std::size_t>(flow::kNumDesignStyles));
  // Registry order is DesignStyle order — plan expansion and the serve
  // status list rely on it being deterministic.
  for (std::size_t i = 0; i < registry.size(); ++i) {
    EXPECT_EQ(static_cast<int>(registry[i]->id()), static_cast<int>(i));
  }
}

TEST(BackendRegistry, LookupByIdAndToken) {
  for (const ConversionBackend* backend : backend_registry()) {
    EXPECT_EQ(&backend_for(backend->id()), backend);
    EXPECT_EQ(find_backend(backend->token()), backend);
  }
  EXPECT_EQ(find_backend("bogus"), nullptr);
  EXPECT_EQ(find_backend(""), nullptr);
}

TEST(BackendRegistry, NamesAreUnique) {
  std::set<std::string> tokens, displays;
  for (const ConversionBackend* backend : backend_registry()) {
    EXPECT_TRUE(tokens.insert(std::string(backend->token())).second)
        << "duplicate token " << backend->token();
    EXPECT_TRUE(displays.insert(std::string(backend->display_name())).second)
        << "duplicate display name " << backend->display_name();
    EXPECT_FALSE(backend->description().empty());
    EXPECT_FALSE(backend->rule_set().empty());
  }
}

// ---------------------------------------------------------------------------
// Serialization-tag stability. These spellings are on the wire (serve
// jobs, cache fingerprints, result JSON) and in every CLI invocation:
// changing one silently orphans cached results and breaks clients, so the
// expected values are written out literally.

TEST(BackendRegistry, TokensAreStable) {
  const std::vector<std::string> expected = {"ff", "ms", "3p",
                                             "pl", "2p", "det"};
  const auto& registry = backend_registry();
  ASSERT_EQ(registry.size(), expected.size());
  for (std::size_t i = 0; i < registry.size(); ++i) {
    EXPECT_EQ(registry[i]->token(), expected[i]);
  }
}

TEST(Serialize, StyleTokenRoundTrip) {
  for (const ConversionBackend* backend : backend_registry()) {
    EXPECT_EQ(flow::style_token(backend->id()), backend->token());
    DesignStyle parsed = DesignStyle::kFlipFlop;
    ASSERT_TRUE(flow::style_from_name(backend->token(), &parsed));
    EXPECT_EQ(parsed, backend->id());
  }
  DesignStyle parsed = DesignStyle::kFlipFlop;
  EXPECT_FALSE(flow::style_from_name("nope", &parsed));
}

// ---------------------------------------------------------------------------
// Cache keys: two requests identical except for the backend must never
// share a cache entry.

TEST(CacheKey, DivergesWhenOnlyBackendDiffers) {
  std::set<std::string> digests;
  for (const ConversionBackend* backend : backend_registry()) {
    serve::CacheKey key;
    key.netlist_hash = 0x1234abcd;
    key.style = backend->id();
    key.options_hash = 99;
    key.workload = "paper";
    key.cycles = 64;
    key.seed = 7;
    key.lanes = 2;
    EXPECT_TRUE(digests.insert(key.digest_hex()).second)
        << "cache-key collision for backend " << backend->token();
  }
}

// ---------------------------------------------------------------------------
// Serve protocol: the "backend" field, its legacy "style" alias, and the
// structured rejection of unknown tokens.

TEST(Protocol, ParsesBackendField) {
  serve::Request request;
  std::string error;
  ASSERT_TRUE(serve::parse_request(
      R"({"id":"a","type":"convert","benchmark":"s1196","backend":"2p"})",
      &request, &error))
      << error;
  EXPECT_EQ(request.style, DesignStyle::kTwoPhase);
}

TEST(Protocol, StyleAliasStillParses) {
  serve::Request request;
  std::string error;
  ASSERT_TRUE(serve::parse_request(
      R"({"id":"a","type":"convert","benchmark":"s1196","style":"ms"})",
      &request, &error))
      << error;
  EXPECT_EQ(request.style, DesignStyle::kMasterSlave);
}

TEST(Protocol, BackendWinsOverStyleAlias) {
  serve::Request request;
  std::string error;
  ASSERT_TRUE(serve::parse_request(
      R"({"id":"a","type":"convert","benchmark":"s1196",)"
      R"("backend":"det","style":"ms"})",
      &request, &error))
      << error;
  EXPECT_EQ(request.style, DesignStyle::kDetFf);
}

TEST(Protocol, RejectsUnknownBackendWithTokenList) {
  serve::Request request;
  std::string error;
  EXPECT_FALSE(serve::parse_request(
      R"({"id":"a","type":"convert","benchmark":"s1196","backend":"x9"})",
      &request, &error));
  EXPECT_NE(error.find("x9"), std::string::npos) << error;
  // The structured error enumerates every registered token.
  for (const ConversionBackend* backend : backend_registry()) {
    EXPECT_NE(error.find(std::string(backend->token())), std::string::npos)
        << "token " << backend->token() << " missing from: " << error;
  }
}

TEST(Protocol, MatrixSweepParsesBackendsArray) {
  serve::Request request;
  std::string error;
  ASSERT_TRUE(serve::parse_request(
      R"({"id":"a","type":"matrix_sweep","benchmarks":["s1196"],)"
      R"("backends":["ff","2p","det"]})",
      &request, &error))
      << error;
  ASSERT_EQ(request.styles.size(), 3u);
  EXPECT_EQ(request.styles[0], DesignStyle::kFlipFlop);
  EXPECT_EQ(request.styles[1], DesignStyle::kTwoPhase);
  EXPECT_EQ(request.styles[2], DesignStyle::kDetFf);
}

TEST(Protocol, RoundTripsCanonicalBackendField) {
  serve::Request request;
  std::string error;
  ASSERT_TRUE(serve::parse_request(
      R"({"id":"a","type":"convert","benchmark":"s1196","backend":"pl"})",
      &request, &error))
      << error;
  const std::string json = serve::request_to_json(request);
  EXPECT_NE(json.find("\"backend\":\"pl\""), std::string::npos) << json;
  serve::Request reparsed;
  ASSERT_TRUE(serve::parse_request(json, &reparsed, &error)) << error;
  EXPECT_EQ(reparsed.style, request.style);
}

TEST(Server, StatusListsEveryBackendToken) {
  serve::ServerOptions options;
  options.threads = 1;
  serve::Server server(std::move(options));
  const std::string status = server.status_json();
  EXPECT_NE(status.find("\"backends\":"), std::string::npos) << status;
  for (const ConversionBackend* backend : backend_registry()) {
    EXPECT_NE(status.find(cat("\"", backend->token(), "\"")),
              std::string::npos)
        << "token " << backend->token() << " missing from: " << status;
  }
}

// ---------------------------------------------------------------------------
// Seeded violations: convert a real benchmark with each backend, plant the
// backend's canonical illegality, and require the promised rule to fire.
// The pre-plant report must be quiet on that rule — otherwise detection
// would be vacuous.

Netlist converted_netlist(const ConversionBackend& backend,
                          const circuits::Benchmark& bench) {
  Netlist netlist = bench.netlist;
  infer_clock_gating(netlist);
  const FlowOptions options = FlowOptions::fast();
  const CellLibrary& library = CellLibrary::nominal_28nm();
  FlowResult scratch;
  FlowContext ctx{
      .netlist = netlist,
      .options = options,
      .library = library,
      .result = scratch,
      .checkpoint = [](std::string_view) {},
      .activity = [] { return ActivityStats{}; },  // fast(): DDCG is off
  };
  backend.convert(ctx);
  return netlist;
}

TEST(SeededViolation, EveryBackendDetectsItsPlant) {
  const circuits::Benchmark bench = circuits::make_benchmark("s1423");
  for (const ConversionBackend* backend : backend_registry()) {
    SCOPED_TRACE(std::string(backend->token()));
    Netlist netlist = converted_netlist(*backend, bench);
    const check::CheckReport before = check::run_checks(netlist);
    const check::RuleId rule = backend->seed_violation(netlist);
    EXPECT_EQ(before.count(rule), 0)
        << "rule " << check::rule_name(rule)
        << " already fired before the plant";
    const check::CheckReport after = check::run_checks(netlist);
    EXPECT_GT(after.count(rule), 0)
        << "planted " << check::rule_name(rule) << " went undetected";
  }
}

// ---------------------------------------------------------------------------
// Stream equivalence: the new backends must behave identically to the FF
// baseline under the shared stimulus (the paper's validation protocol).

TEST(BackendStreams, TwoPhaseAndDetMatchFlipFlop) {
  flow::RunPlan plan;
  plan.benchmarks = {"s1196"};
  plan.styles = {DesignStyle::kFlipFlop, DesignStyle::kTwoPhase,
                 DesignStyle::kDetFf};
  plan.cycles = 48;
  plan.options = FlowOptions::fast();
  const std::vector<flow::MatrixResult> results = run_matrix(plan);
  ASSERT_EQ(results.size(), 3u);
  for (const flow::MatrixResult& r : results) {
    ASSERT_TRUE(r.ok()) << r.error;
  }
  EXPECT_TRUE(streams_equal(results[0].result.outputs,
                            results[1].result.outputs))
      << "2p stream diverges from the FF baseline";
  EXPECT_TRUE(streams_equal(results[0].result.outputs,
                            results[2].result.outputs))
      << "det stream diverges from the FF baseline";
}

}  // namespace
}  // namespace tp
