#include <gtest/gtest.h>

#include "src/place/fm.hpp"
#include "src/place/placer.hpp"
#include "src/transform/clock_gating.hpp"
#include "tests/test_circuits.hpp"

namespace tp {
namespace {

const CellLibrary& lib() { return CellLibrary::nominal_28nm(); }

TEST(Fm, CutsCliquePairCleanly) {
  // Two 4-cliques joined by one edge: the optimal cut is 1.
  std::vector<std::int64_t> weights(8, 1);
  std::vector<std::vector<int>> edges;
  for (int base : {0, 4}) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        edges.push_back({base + i, base + j});
      }
    }
  }
  edges.push_back({0, 4});
  const FmResult r = fm_bipartition(weights, edges);
  EXPECT_EQ(r.cut, 1);
  // Each clique stays on one side.
  for (int i = 1; i < 4; ++i) EXPECT_EQ(r.side[0], r.side[i]);
  for (int i = 5; i < 8; ++i) EXPECT_EQ(r.side[4], r.side[i]);
}

TEST(Fm, RespectsBalance) {
  std::vector<std::int64_t> weights(20, 1);
  std::vector<std::vector<int>> edges;
  for (int i = 0; i + 1 < 20; ++i) edges.push_back({i, i + 1});
  const FmResult r = fm_bipartition(weights, edges);
  int side0 = 0;
  for (const auto s : r.side) side0 += (s == 0);
  EXPECT_GE(side0, 8);
  EXPECT_LE(side0, 12);
  EXPECT_LE(r.cut, 3);  // a chain has a 1-cut; FM should get close
}

TEST(Fm, SingleVertex) {
  const FmResult r = fm_bipartition({1}, {});
  EXPECT_EQ(r.cut, 0);
}

TEST(Placer, AllCellsInsideDie) {
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 30;
  spec.num_gates = 120;
  Netlist nl = testing::random_ff_circuit(spec);
  infer_clock_gating(nl);
  const Placement p = place(nl, lib());
  EXPECT_GT(p.width_um, 0);
  for (const CellId id : nl.live_cells()) {
    const CellKind kind = nl.cell(id).kind;
    if (kind == CellKind::kInput || kind == CellKind::kOutput ||
        kind == CellKind::kConst0 || kind == CellKind::kConst1) {
      continue;
    }
    const auto& [x, y] = p.pos[id.value()];
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, p.width_um);
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, p.height_um);
  }
}

TEST(Placer, DieAreaMatchesUtilization) {
  testing::RandomCircuitSpec spec;
  Netlist nl = testing::random_ff_circuit(spec);
  infer_clock_gating(nl);
  PlaceOptions options;
  options.utilization = 0.5;
  const Placement p = place(nl, lib(), options);
  const double cell_area = lib().total_area_um2(nl);
  EXPECT_NEAR(p.width_um * p.height_um, cell_area / 0.5,
              cell_area * 0.05);
}

TEST(Placer, MinCutBeatsRandomScatterOnWirelength) {
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 40;
  spec.num_gates = 240;
  Netlist nl = testing::random_ff_circuit(spec);
  infer_clock_gating(nl);
  const Placement p = place(nl, lib());
  const double hpwl = p.total_hpwl_um(nl);

  // Reference: same die, random positions.
  Placement scatter = p;
  Rng rng(3);
  for (auto& [x, y] : scatter.pos) {
    x = rng.uniform() * p.width_um;
    y = rng.uniform() * p.height_um;
  }
  EXPECT_LT(hpwl, scatter.total_hpwl_um(nl) * 0.85);
}

TEST(Placer, NetCapIncludesWireAndPins) {
  Netlist nl("t");
  const CellId a = nl.add_input("a");
  const CellId g = nl.add_gate(CellKind::kInv, "g", {nl.cell(a).out});
  nl.add_output("o", nl.cell(g).out);
  const Placement p = place(nl, lib());
  const double cap = p.net_cap_ff(nl, lib(), nl.cell(a).out);
  EXPECT_GE(cap, lib().params(CellKind::kInv).input_cap_ff);
}

}  // namespace
}  // namespace tp
