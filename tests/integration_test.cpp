// Cross-feature integration matrix: every combination of the flow's
// optional steps must keep the converted design stream-equivalent to the
// FF reference, structurally valid, and timing-clean. This is the safety
// net for feature interactions (e.g. retiming after greedy assignment,
// DDCG over gated p2 latches).
#include <gtest/gtest.h>

#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"

namespace tp::flow {
namespace {

struct FeatureCombo {
  bool retime;
  bool common_enable;
  bool m1;
  bool m2;
  bool ddcg;
  bool greedy;
};

class FeatureMatrix : public ::testing::TestWithParam<int> {};

TEST_P(FeatureMatrix, EquivalentValidAndTimed) {
  const int bits = GetParam();
  const FeatureCombo combo{
      .retime = (bits & 1) != 0,
      .common_enable = (bits & 2) != 0,
      .m1 = (bits & 4) != 0,
      .m2 = (bits & 8) != 0,
      .ddcg = (bits & 16) != 0,
      .greedy = (bits & 32) != 0,
  };
  const circuits::Benchmark bench = circuits::make_benchmark("s9234");
  const Stimulus stim = circuits::make_stimulus(
      bench, circuits::Workload::kPaperDefault, 96, 11);
  const FlowResult reference =
      run_flow(bench, DesignStyle::kFlipFlop, stim);

  FlowOptions options;
  options.retime = combo.retime;
  options.p2_common_enable_cg = combo.common_enable;
  options.use_m1 = combo.m1;
  options.use_m2 = combo.m2;
  options.ddcg = combo.ddcg;
  if (combo.greedy) options.assign.method = AssignMethod::kGreedy;

  const FlowResult r =
      run_flow(bench, DesignStyle::kThreePhase, stim, options);
  const StreamDiff diff = equivalent(reference, r);
  EXPECT_TRUE(diff) << "combo bits " << bits << ": " << diff.to_string();
  EXPECT_NO_THROW(r.netlist.validate());
  EXPECT_TRUE(r.timing.setup_ok)
      << "combo bits " << bits << " slack "
      << r.timing.worst_setup_slack_ps;
  EXPECT_TRUE(r.timing.hold_ok) << "combo bits " << bits;
  EXPECT_GT(r.power.total_mw(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllCombos, FeatureMatrix, ::testing::Range(0, 64));

TEST(Integration, EnabledStyleSurvivesWholeFlow) {
  const circuits::Benchmark bench = circuits::make_benchmark("DES3");
  const Stimulus stim = circuits::make_stimulus(
      bench, circuits::Workload::kPaperDefault, 96, 3);
  FlowOptions enabled;
  enabled.synthesis_cg.style = CgStyle::kEnabled;
  const FlowResult ff = run_flow(bench, DesignStyle::kFlipFlop, stim,
                                 enabled);
  const FlowResult p3 =
      run_flow(bench, DesignStyle::kThreePhase, stim, enabled);
  const StreamDiff diff = equivalent(ff, p3);
  EXPECT_TRUE(diff) << diff.to_string();
  // The mux style creates self-loops, so nearly all FFs go back-to-back.
  EXPECT_GT(p3.inserted_p2, ff.registers / 2);
}

TEST(Integration, PulsedLatchFlowIsEquivalent) {
  const circuits::Benchmark bench = circuits::make_benchmark("s9234");
  const Stimulus stim = circuits::make_stimulus(
      bench, circuits::Workload::kPaperDefault, 96, 5);
  const FlowResult ff = run_flow(bench, DesignStyle::kFlipFlop, stim);
  const FlowResult pl = run_flow(bench, DesignStyle::kPulsedLatch, stim);
  const StreamDiff diff = equivalent(ff, pl);
  EXPECT_TRUE(diff) << diff.to_string();
  EXPECT_EQ(pl.registers, ff.registers);
  EXPECT_GT(pl.pulse_generators, 0);
  EXPECT_LT(pl.area_um2, ff.area_um2);  // latches + pgens < FFs
}

TEST(Integration, ResultsAreDeterministic) {
  const circuits::Benchmark bench = circuits::make_benchmark("s5378");
  const Stimulus stim = circuits::make_stimulus(
      bench, circuits::Workload::kPaperDefault, 64, 9);
  const FlowResult a = run_flow(bench, DesignStyle::kThreePhase, stim);
  const FlowResult b = run_flow(bench, DesignStyle::kThreePhase, stim);
  EXPECT_EQ(a.registers, b.registers);
  EXPECT_EQ(a.inserted_p2, b.inserted_p2);
  EXPECT_DOUBLE_EQ(a.power.total_mw(), b.power.total_mw());
  EXPECT_DOUBLE_EQ(a.area_um2, b.area_um2);
  EXPECT_EQ(a.outputs, b.outputs);
}

}  // namespace
}  // namespace tp::flow
