#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/circuits/benchmark.hpp"
#include "src/equiv/aig.hpp"
#include "src/equiv/cex.hpp"
#include "src/equiv/sat.hpp"
#include "src/equiv/sec.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/transform/convert.hpp"
#include "src/transform/p2_gating.hpp"
#include "src/transform/pulsed_latch.hpp"
#include "src/util/rng.hpp"

namespace tp::equiv {
namespace {

// --- AIG ------------------------------------------------------------------

TEST(Aig, ConstantFolding) {
  Aig g;
  const Lit a = g.add_input();
  EXPECT_EQ(g.land(a, kLitTrue), a);
  EXPECT_EQ(g.land(kLitTrue, a), a);
  EXPECT_EQ(g.land(a, kLitFalse), kLitFalse);
  EXPECT_EQ(g.land(a, a), a);
  EXPECT_EQ(g.land(a, lit_not(a)), kLitFalse);
  EXPECT_EQ(g.num_nodes(), 2u);  // constant + input, no AND created
}

TEST(Aig, StructuralHashing) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit ab = g.land(a, b);
  EXPECT_EQ(g.land(a, b), ab);
  EXPECT_EQ(g.land(b, a), ab) << "commuted operands must hash identically";
  const std::size_t nodes = g.num_nodes();
  EXPECT_EQ(g.lor(lit_not(a), lit_not(b)), lit_not(ab))
      << "De Morgan duals share the same AND node";
  EXPECT_EQ(g.num_nodes(), nodes);
}

TEST(Aig, OperatorTruthTables) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit s = g.add_input();
  const Lit lxor = g.lxor(a, b);
  const Lit lmux = g.lmux(s, a, b);
  // Drive each input with its truth-table pattern; each of the 8 low bits of
  // a word is one assignment (s, a, b).
  const std::uint64_t wa = 0b11001100, wb = 0b10101010, ws = 0b11110000;
  std::vector<std::uint64_t> words;
  g.simulate(std::vector<std::uint64_t>{wa, wb, ws}, words);
  EXPECT_EQ(Aig::word_of(words, lxor) & 0xFF, (wa ^ wb) & 0xFF);
  EXPECT_EQ(Aig::word_of(words, lmux) & 0xFF,
            ((ws & wa) | (~ws & wb)) & 0xFF);
  EXPECT_EQ(Aig::word_of(words, kLitTrue), ~0ull);
}

TEST(Aig, ComposeSubstitutesInputs) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit f = g.lor(g.land(a, b), g.lxor(a, b));  // = a | b
  const std::size_t frozen = g.num_nodes();

  // Substituting constants folds the whole cone away.
  const std::vector<Lit> to_const{kLitTrue, kLitFalse};
  auto map = g.compose(frozen, to_const);
  EXPECT_EQ(lit_xor(map[lit_node(f)], lit_neg(f)), kLitTrue);

  // Substituting the same inputs reproduces the same literals (strash).
  const std::vector<Lit> identity{a, b};
  map = g.compose(frozen, identity);
  EXPECT_EQ(lit_xor(map[lit_node(f)], lit_neg(f)), f);
}

// --- SAT ------------------------------------------------------------------

TEST(Sat, UnitPropagationChain) {
  SatSolver s;
  const int a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_clause({SatSolver::pos_lit(a)});
  s.add_clause({SatSolver::neg_lit(a), SatSolver::pos_lit(b)});
  s.add_clause({SatSolver::neg_lit(b), SatSolver::pos_lit(c)});
  EXPECT_EQ(s.solve(), SatResult::kSat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  EXPECT_TRUE(s.model_value(c));
  const std::vector<int> assume{SatSolver::neg_lit(c)};
  EXPECT_EQ(s.solve(assume), SatResult::kUnsat);
}

TEST(Sat, SmallUnsatCore) {
  SatSolver s;
  const int a = s.new_var(), b = s.new_var();
  s.add_clause({SatSolver::pos_lit(a), SatSolver::pos_lit(b)});
  s.add_clause({SatSolver::pos_lit(a), SatSolver::neg_lit(b)});
  s.add_clause({SatSolver::neg_lit(a), SatSolver::pos_lit(b)});
  s.add_clause({SatSolver::neg_lit(a), SatSolver::neg_lit(b)});
  EXPECT_EQ(s.solve(), SatResult::kUnsat);
}

TEST(Sat, RandomThreeSatAgreesWithBruteForce) {
  Rng rng(42);
  for (int instance = 0; instance < 60; ++instance) {
    const int num_vars = 6 + static_cast<int>(rng.below(4));  // 6..9
    const int num_clauses = 5 + static_cast<int>(rng.below(36));
    std::vector<std::vector<int>> clauses;
    for (int c = 0; c < num_clauses; ++c) {
      std::vector<int> clause;
      for (int k = 0; k < 3; ++k) {
        const int v = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(num_vars)));
        clause.push_back(rng.chance(0.5) ? SatSolver::pos_lit(v)
                                         : SatSolver::neg_lit(v));
      }
      clauses.push_back(clause);
    }

    bool satisfiable = false;
    for (std::uint32_t bits = 0; bits < (1u << num_vars) && !satisfiable;
         ++bits) {
      satisfiable = std::all_of(
          clauses.begin(), clauses.end(), [&](const std::vector<int>& cl) {
            return std::any_of(cl.begin(), cl.end(), [&](int lit) {
              const bool value = (bits >> (lit >> 1)) & 1;
              return (lit & 1) ? !value : value;
            });
          });
    }

    SatSolver s;
    for (int v = 0; v < num_vars; ++v) s.new_var();
    for (const auto& clause : clauses) s.add_clause(clause);
    const SatResult result = s.solve();
    ASSERT_EQ(result, satisfiable ? SatResult::kSat : SatResult::kUnsat)
        << "instance " << instance;
    if (result == SatResult::kSat) {
      // The model must actually satisfy every clause.
      for (const auto& clause : clauses) {
        EXPECT_TRUE(std::any_of(
            clause.begin(), clause.end(), [&](int lit) {
              return s.model_value(lit >> 1) != ((lit & 1) != 0);
            }));
      }
    }
  }
}

// --- counterexample plumbing ----------------------------------------------

TEST(Cex, MapDataInputsMatchesByName) {
  Netlist a("a"), b("b");
  a.add_input("x");
  a.add_input("y");
  a.add_input("z");
  b.add_input("z");
  b.add_input("x");
  b.add_input("y");
  const std::vector<std::size_t> map = map_data_inputs(a, b);
  // map[j] = index in `a` of b's j-th input.
  ASSERT_EQ(map.size(), 3u);
  EXPECT_EQ(map[0], 2u);
  EXPECT_EQ(map[1], 0u);
  EXPECT_EQ(map[2], 1u);
}

// --- one-cycle machine vs. the event-driven simulator ---------------------

/// Evaluates `machine` concretely for `cycles` random cycles, starting from
/// the simulator's reset state, and compares every primary output against
/// simulate_outputs() — the bridge that justifies trusting SEC proofs.
void expect_machine_matches_simulator(const Netlist& netlist, int cycles,
                                      std::uint64_t seed) {
  Aig aig;
  const std::size_t num_pi = netlist.data_inputs().size();
  std::vector<Lit> pi_prev, pi_now;
  for (std::size_t i = 0; i < num_pi; ++i) pi_prev.push_back(aig.add_input());
  for (std::size_t i = 0; i < num_pi; ++i) pi_now.push_back(aig.add_input());
  const Machine machine = build_machine(aig, netlist, pi_prev, pi_now);

  Rng rng(seed);
  const Stimulus stim = random_stimulus(num_pi, cycles, rng);
  const OutputStream reference = simulate_outputs(netlist, stim);
  ASSERT_EQ(reference.size(), static_cast<std::size_t>(cycles));

  std::vector<std::uint8_t> state = reset_state(netlist, machine);
  std::vector<std::uint64_t> inputs(aig.num_inputs(), 0);
  std::vector<std::uint64_t> words;
  std::vector<std::uint8_t> prev(num_pi, 0);  // PIs are 0 until first drive
  for (int c = 0; c < cycles; ++c) {
    for (std::size_t i = 0; i < num_pi; ++i) {
      inputs[aig.input_index(lit_node(pi_prev[i]))] = prev[i] ? ~0ull : 0;
      inputs[aig.input_index(lit_node(pi_now[i]))] = stim[c][i] ? ~0ull : 0;
    }
    for (std::size_t s = 0; s < machine.state_in.size(); ++s) {
      inputs[aig.input_index(lit_node(machine.state_in[s]))] =
          state[s] ? ~0ull : 0;
    }
    aig.simulate(inputs, words);
    for (std::size_t j = 0; j < machine.po.size(); ++j) {
      ASSERT_EQ(Aig::word_of(words, machine.po[j]) & 1,
                static_cast<std::uint64_t>(reference[c][j]))
          << netlist.name() << " cycle " << c << " output " << j;
    }
    for (std::size_t s = 0; s < machine.state_in.size(); ++s) {
      state[s] =
          static_cast<std::uint8_t>(Aig::word_of(words, machine.next_state[s]) & 1);
    }
    for (std::size_t i = 0; i < num_pi; ++i) prev[i] = stim[c][i];
  }
}

TEST(Machine, TracksSimulatorAcrossStyles) {
  const circuits::Benchmark bm = circuits::make_benchmark("s1196");
  Netlist ff = bm.netlist;
  infer_clock_gating(ff);
  expect_machine_matches_simulator(bm.netlist, 30, 7);
  expect_machine_matches_simulator(ff, 30, 7);
  expect_machine_matches_simulator(to_master_slave(ff), 30, 7);
  ThreePhaseResult p3 = to_three_phase(ff);
  expect_machine_matches_simulator(p3.netlist, 30, 7);
  gate_p2_latches(p3.netlist);
  apply_m2(p3.netlist);
  expect_machine_matches_simulator(p3.netlist, 30, 7);
  expect_machine_matches_simulator(to_pulsed_latch(ff).netlist, 30, 7);
}

TEST(Machine, StateCoversRegistersAndIcgs) {
  // DES3's enable-gated key banks are what clock-gating inference turns
  // into latch-based ICGs (the ISCAS circuits carry no enables).
  const circuits::Benchmark bm = circuits::make_benchmark("DES3");
  Netlist nl = bm.netlist;
  infer_clock_gating(nl);  // introduces stateful ICGs
  Aig aig;
  const std::size_t num_pi = nl.data_inputs().size();
  std::vector<Lit> pi_prev, pi_now;
  for (std::size_t i = 0; i < num_pi; ++i) pi_prev.push_back(aig.add_input());
  for (std::size_t i = 0; i < num_pi; ++i) pi_now.push_back(aig.add_input());
  const Machine m = build_machine(aig, nl, pi_prev, pi_now);
  EXPECT_EQ(m.regs.size(), nl.registers().size());
  EXPECT_GT(m.icgs.size(), 0u);
  EXPECT_EQ(m.state_in.size(), m.regs.size() + m.icgs.size());
  EXPECT_EQ(m.next_state.size(), m.state_in.size());
  EXPECT_EQ(m.po.size(), nl.outputs().size());
  EXPECT_EQ(reset_state(nl, m).size(), m.state_in.size());
}

}  // namespace
}  // namespace tp::equiv
