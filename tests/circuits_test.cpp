#include <gtest/gtest.h>

#include "src/circuits/benchmark.hpp"
#include "src/circuits/workload.hpp"
#include "src/netlist/traverse.hpp"
#include "src/sim/stimulus.hpp"
#include "src/timing/sta.hpp"
#include "src/transform/buffering.hpp"
#include "src/transform/clock_gating.hpp"

namespace tp::circuits {
namespace {

/// Paper register counts (Table I, FF column).
int paper_ffs(const std::string& name) {
  if (name == "s1196" || name == "s1238") return 18;
  if (name == "s1423") return 81;
  if (name == "s1488") return 6;
  if (name == "s5378") return 163;
  if (name == "s9234") return 140;
  if (name == "s13207") return 457;
  if (name == "s15850") return 454;
  if (name == "s35932") return 1728;
  if (name == "s38417") return 1489;
  if (name == "s38584") return 1319;
  if (name == "AES") return 9715;
  if (name == "DES3") return 436;
  if (name == "SHA256") return 1574;
  if (name == "MD5") return 804;
  if (name == "Plasma") return 1606;
  if (name == "RISCV") return 2795;
  if (name == "ArmM0") return 1397;
  return -1;
}

TEST(Benchmarks, RegistryHasAll18) {
  EXPECT_EQ(benchmark_names().size(), 18u);
  EXPECT_THROW(make_benchmark("nonexistent"), Error);
}

class BenchmarkTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkTest, MatchesPaperRegisterCount) {
  const Benchmark b = make_benchmark(GetParam());
  b.netlist.validate();
  EXPECT_EQ(static_cast<int>(b.netlist.registers().size()),
            paper_ffs(GetParam()))
      << GetParam();
}

TEST_P(BenchmarkTest, IsDeterministic) {
  const Benchmark a = make_benchmark(GetParam());
  const Benchmark b = make_benchmark(GetParam());
  EXPECT_EQ(a.netlist.num_cells(), b.netlist.num_cells());
  EXPECT_EQ(a.netlist.num_nets(), b.netlist.num_nets());
}

TEST_P(BenchmarkTest, SimulatesUnderPaperWorkload) {
  const Benchmark b = make_benchmark(GetParam());
  // Skip the largest circuit here for test-suite latency; the benches
  // exercise it.
  if (b.netlist.num_cells() > 30000) GTEST_SKIP();
  const Stimulus stim = make_stimulus(b, Workload::kPaperDefault, 32, 3);
  Simulator sim(b.netlist);
  const OutputStream out = run_stream(sim, stim, 4);
  EXPECT_EQ(out.size(), 28u);
  // Some activity must be visible on the circuit's nets.
  std::uint64_t toggles = 0;
  for (const auto t : sim.stats().net_toggles) toggles += t;
  EXPECT_GT(toggles, 0u);
}

INSTANTIATE_TEST_SUITE_P(All, BenchmarkTest,
                         ::testing::ValuesIn(benchmark_names()));

TEST(Benchmarks, S1488IsControlDominated) {
  // The paper singles out s1488 as a re-synthesized controller whose FFs
  // all carry combinational feedback, limiting the conversion's benefit.
  const Benchmark b = make_benchmark("s1488");
  const RegisterGraph g = build_register_graph(b.netlist);
  int with_feedback = 0;
  for (std::size_t u = 0; u < g.regs.size(); ++u) {
    // Self-loop or membership in a 2-cycle counts as feedback.
    if (g.has_self_loop(static_cast<int>(u))) {
      ++with_feedback;
      continue;
    }
    for (const int v : g.fanout[u]) {
      const auto& back = g.fanout[static_cast<std::size_t>(v)];
      if (std::find(back.begin(), back.end(), static_cast<int>(u)) !=
          back.end()) {
        ++with_feedback;
        break;
      }
    }
  }
  EXPECT_GE(with_feedback, static_cast<int>(g.regs.size()) - 1);
}

TEST(Benchmarks, CpuRegfileHasNoInternalEdges) {
  // The register-file words must not feed each other combinationally —
  // that independence is what the conversion exploits on CPUs.
  const Benchmark b = make_benchmark("Plasma");
  const RegisterGraph g = build_register_graph(b.netlist);
  for (std::size_t u = 0; u < g.regs.size(); ++u) {
    const std::string& name = b.netlist.cell(g.regs[u]).name;
    if (name.rfind("rf", 0) != 0) continue;
    for (const int v : g.fanout[u]) {
      const std::string& vn =
          b.netlist.cell(g.regs[static_cast<std::size_t>(v)]).name;
      EXPECT_NE(vn.rfind("rf", 0), 0u)
          << name << " feeds " << vn << " combinationally";
    }
  }
}

TEST(Benchmarks, CepKeyBankIsIndependentStorage) {
  // The crypto cores' enable-gated key banks must have no combinational
  // FF-to-FF edges among themselves — the structure behind the suite's
  // above-average conversion gains.
  const Benchmark b = make_benchmark("DES3");
  const RegisterGraph g = build_register_graph(b.netlist);
  for (std::size_t u = 0; u < g.regs.size(); ++u) {
    const std::string& name = b.netlist.cell(g.regs[u]).name;
    if (name.rfind("key", 0) != 0) continue;
    for (const int v : g.fanout[u]) {
      EXPECT_NE(b.netlist.cell(g.regs[static_cast<std::size_t>(v)])
                    .name.rfind("key", 0),
                0u)
          << name << " feeds another key bit combinationally";
    }
  }
}

TEST(Benchmarks, SuitesMeetTheirPaperFrequencies) {
  for (const auto& name : benchmark_names()) {
    const Benchmark b = make_benchmark(name);
    if (b.netlist.num_cells() > 30000) continue;  // AES: covered in benches
    Netlist nl = b.netlist;
    infer_clock_gating(nl);
    buffer_high_fanout(nl);
    const TimingReport t =
        check_timing(nl, CellLibrary::nominal_28nm());
    EXPECT_TRUE(t.setup_ok)
        << name << " FF design misses its paper frequency by "
        << -t.worst_setup_slack_ps << " ps at " << t.worst_setup_point;
  }
}

TEST(Workloads, ProfilesDifferInActivity) {
  const Benchmark b = make_benchmark("ArmM0");
  auto activity = [&](Workload w) {
    const Stimulus stim = make_stimulus(b, w, 256, 11);
    double toggles = 0;
    for (std::size_t c = 1; c < stim.size(); ++c) {
      for (std::size_t i = 0; i < stim[c].size(); ++i) {
        toggles += stim[c][i] != stim[c - 1][i];
      }
    }
    return toggles / static_cast<double>(stim.size());
  };
  const double dhrystone = activity(Workload::kDhrystone);
  const double coremark = activity(Workload::kCoremark);
  const double paper = activity(Workload::kPaperDefault);
  // Dhrystone is the hottest steady loop; Coremark mixes phases.
  EXPECT_GT(dhrystone, coremark);
  EXPECT_GT(dhrystone, paper);
  EXPECT_GT(coremark, 0.0);
}

TEST(Workloads, DeterministicPerSeed) {
  const Benchmark b = make_benchmark("s5378");
  EXPECT_EQ(make_stimulus(b, Workload::kPaperDefault, 64, 5),
            make_stimulus(b, Workload::kPaperDefault, 64, 5));
  EXPECT_NE(make_stimulus(b, Workload::kPaperDefault, 64, 5),
            make_stimulus(b, Workload::kPaperDefault, 64, 6));
}

}  // namespace
}  // namespace tp::circuits
