#include <gtest/gtest.h>

#include <unordered_set>

#include "src/util/ids.hpp"
#include "src/util/log.hpp"
#include "src/util/rng.hpp"

namespace tp {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  CellId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), kInvalidIndex);
}

TEST(StrongId, ComparesByValue) {
  EXPECT_EQ(CellId{3}, CellId{3});
  EXPECT_NE(CellId{3}, CellId{4});
  EXPECT_LT(CellId{3}, CellId{4});
}

TEST(StrongId, Hashable) {
  std::unordered_set<NetId> set{NetId{1}, NetId{2}, NetId{1}};
  EXPECT_EQ(set.size(), 2u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Require, ThrowsWithMessage) {
  EXPECT_NO_THROW(require(true, "fine"));
  try {
    require(false, "broken invariant");
    FAIL() << "require(false) did not throw";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "broken invariant");
  }
}

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_GE(sw.seconds(), 0.0);
}

}  // namespace
}  // namespace tp
