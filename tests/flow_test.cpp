// Integration tests: the full flow on real benchmarks, checking the
// system-level invariants the paper's evaluation relies on.
#include <gtest/gtest.h>

#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"

namespace tp::flow {
namespace {

using circuits::Benchmark;
using circuits::Workload;

struct Trio {
  FlowResult ff, ms, p3;
};

Trio run_all(const std::string& name, std::size_t cycles = 128,
             const FlowOptions& options = {}) {
  const Benchmark bench = circuits::make_benchmark(name);
  const Stimulus stim =
      circuits::make_stimulus(bench, Workload::kPaperDefault, cycles, 7);
  return {run_flow(bench, DesignStyle::kFlipFlop, stim, options),
          run_flow(bench, DesignStyle::kMasterSlave, stim, options),
          run_flow(bench, DesignStyle::kThreePhase, stim, options)};
}

class FlowBenchmark : public ::testing::TestWithParam<std::string> {};

TEST_P(FlowBenchmark, AllStylesEquivalentAndTimed) {
  const Trio t = run_all(GetParam());
  EXPECT_TRUE(equivalent(t.ff, t.ms)) << GetParam();
  EXPECT_TRUE(equivalent(t.ff, t.p3)) << GetParam();
  for (const FlowResult* r : {&t.ff, &t.ms, &t.p3}) {
    EXPECT_TRUE(r->timing.converged) << GetParam();
    EXPECT_TRUE(r->timing.setup_ok)
        << GetParam() << " " << style_name(r->style) << " slack "
        << r->timing.worst_setup_slack_ps << " at "
        << r->timing.worst_setup_point;
    EXPECT_TRUE(r->timing.hold_ok) << GetParam();
  }
  // C1 and the register-count relations of Table I.
  EXPECT_EQ(t.ms.registers, 2 * t.ff.registers - (2 * t.ff.registers -
                                                  t.ms.registers));
  EXPECT_LE(t.ms.registers, 2 * t.ff.registers);
  EXPECT_LT(t.p3.registers, 2 * t.ff.registers);
  EXPECT_LT(t.p3.registers, t.ms.registers);
  EXPECT_GE(t.p3.registers, t.ff.registers);  // C1: every position latched
}

INSTANTIATE_TEST_SUITE_P(Suite, FlowBenchmark,
                         ::testing::Values("s1196", "s5378", "s13207",
                                           "DES3", "MD5", "Plasma",
                                           "ArmM0"));

TEST(Flow, ThreePhaseBeatsMasterSlaveOnPower) {
  // The paper's strongest claim (18.5% average vs M-S) must at least hold
  // in direction on a pipeline-rich circuit.
  const Trio t = run_all("s13207");
  EXPECT_LT(t.p3.power.total_mw(), t.ms.power.total_mw());
}

TEST(Flow, StepTimesAccountedAndIlpSmall) {
  const Trio t = run_all("s5378");
  EXPECT_GT(t.p3.times.total_s(), 0);
  // Sec. V: the ILP is a tiny fraction of the 3-phase flow run time.
  EXPECT_LT(t.p3.times.ilp_s, 0.5 * t.p3.times.total_s());
  EXPECT_EQ(t.ff.times.ilp_s, 0);
}

TEST(Flow, GreedyAssignmentInsertsAtLeastAsManyLatches) {
  const Benchmark bench = circuits::make_benchmark("s9234");
  const Stimulus stim =
      circuits::make_stimulus(bench, Workload::kPaperDefault, 96, 7);
  FlowOptions greedy;
  greedy.assign.method = AssignMethod::kGreedy;
  greedy.retime = false;
  FlowOptions exact;
  exact.retime = false;
  const FlowResult g =
      run_flow(bench, DesignStyle::kThreePhase, stim, greedy);
  const FlowResult e =
      run_flow(bench, DesignStyle::kThreePhase, stim, exact);
  EXPECT_GE(g.inserted_p2, e.inserted_p2);
  EXPECT_TRUE(streams_equal(g.outputs, e.outputs));
}

TEST(Flow, M2AblationKeepsEquivalenceAndChangesIcgMix) {
  const Benchmark bench = circuits::make_benchmark("Plasma");
  const Stimulus stim =
      circuits::make_stimulus(bench, Workload::kPaperDefault, 96, 7);
  FlowOptions no_m2;
  no_m2.use_m2 = false;
  const FlowResult with_m2 =
      run_flow(bench, DesignStyle::kThreePhase, stim);
  const FlowResult without_m2 =
      run_flow(bench, DesignStyle::kThreePhase, stim, no_m2);
  EXPECT_TRUE(streams_equal(with_m2.outputs, without_m2.outputs));
  EXPECT_GT(with_m2.m2.converted, 0);
  EXPECT_EQ(without_m2.m2.converted, 0);
  EXPECT_GT(with_m2.netlist.count_cells(
                [](CellKind k) { return k == CellKind::kIcgNoLatch; }),
            without_m2.netlist.count_cells(
                [](CellKind k) { return k == CellKind::kIcgNoLatch; }));
}

TEST(Flow, WorkloadsChangeCpuPowerNotFunction) {
  // Fig. 4's premise: the same netlist under different workloads shows
  // different power. Function is workload-independent by construction.
  const Benchmark bench = circuits::make_benchmark("ArmM0");
  const Stimulus dhry =
      circuits::make_stimulus(bench, Workload::kDhrystone, 128, 7);
  const Stimulus core =
      circuits::make_stimulus(bench, Workload::kCoremark, 128, 7);
  const FlowResult a = run_flow(bench, DesignStyle::kThreePhase, dhry);
  const FlowResult b = run_flow(bench, DesignStyle::kThreePhase, core);
  EXPECT_NE(a.power.total_mw(), b.power.total_mw());
  EXPECT_GT(a.power.total_mw(), b.power.total_mw());  // dhrystone hotter
}

TEST(Flow, AreaTracksTableOneDirection) {
  // 3-phase designs have fewer/smaller registers; total area must not
  // exceed the master-slave design's by construction-relevant margins.
  const Trio t = run_all("s15850");
  EXPECT_LT(t.p3.area_um2, t.ms.area_um2 * 1.05);
}

}  // namespace
}  // namespace tp::flow
