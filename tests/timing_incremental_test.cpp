// IncrementalTimer session contract: byte-identical reports vs fresh STA
// under randomized edit sequences on every conversion backend's output,
// journal-disabled fallback, session statistics, and the structured
// min-period search (oracle fast path included).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/circuits/benchmark.hpp"
#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"
#include "src/phase/schedule.hpp"
#include "src/timing/incremental.hpp"
#include "src/timing/sta.hpp"
#include "src/util/rng.hpp"
#include "src/util/strcat.hpp"

namespace tp {
namespace {

const CellLibrary& lib() { return CellLibrary::nominal_28nm(); }

/// Output netlist of one conversion backend on a small ISCAS benchmark —
/// the edit-identity tests run on real post-flow structures (latch banks,
/// ICGs, hold buffers), not toy chains.
Netlist converted(flow::DesignStyle style) {
  const circuits::Benchmark bench = circuits::make_benchmark("s1196");
  const Stimulus stim = circuits::make_stimulus(
      bench, circuits::Workload::kPaperDefault, 16, 11);
  return run_flow(bench, style, stim, {}).netlist;
}

/// Gate retype pairs that keep pin count (morph_cell requirement) while
/// changing the cell's delay, so every retype moves real arrivals.
CellKind retype_of(CellKind kind) {
  switch (kind) {
    case CellKind::kBuf: return CellKind::kInv;
    case CellKind::kInv: return CellKind::kBuf;
    case CellKind::kAnd2: return CellKind::kNand2;
    case CellKind::kNand2: return CellKind::kAnd2;
    case CellKind::kOr2: return CellKind::kNor2;
    case CellKind::kNor2: return CellKind::kOr2;
    case CellKind::kXor2: return CellKind::kXnor2;
    case CellKind::kXnor2: return CellKind::kXor2;
    default: return kind;
  }
}

/// One randomized structural edit; returns a description for failure
/// messages. Edits mirror the hot callers: buffer insertion (repair_hold),
/// gate retype (logic restructuring), and clock-plan rescale (the
/// journal-bypassing fallback path).
std::string random_edit(Netlist& nl, Rng& rng, int step) {
  const int kind = static_cast<int>(rng.range(0, 2));
  if (kind == 2) {
    // Clock-plan change: clocks() hands out a mutable reference, so this
    // bypasses the journal and must hit the session's full-pass fallback.
    ClockSpec spec = nl.clocks();
    const std::int64_t p = spec.period_ps + 20;
    for (PhaseWaveform& w : spec.phases) {
      w.rise_ps = w.rise_ps * p / spec.period_ps;
      w.fall_ps = w.fall_ps * p / spec.period_ps;
    }
    spec.period_ps = p;
    nl.clocks() = spec;
    return "clock rescale";
  }
  // Pick a live cell with a data input to edit.
  const std::uint32_t n = nl.num_cells();
  for (std::uint32_t tries = 0; tries < n; ++tries) {
    const CellId id{static_cast<std::uint32_t>(rng.range(0, n - 1))};
    const Cell& cell = nl.cell(id);
    if (!cell.alive || cell.ins.empty()) continue;
    if (kind == 1 && retype_of(cell.kind) != cell.kind) {
      nl.morph_cell(id, retype_of(cell.kind));
      return cat("retype ", cell.name);
    }
    if (kind == 0 && !is_clock_cell(cell.kind)) {
      std::uint32_t pin = 0;
      if (static_cast<int>(pin) == clock_pin(cell.kind)) pin = 1;
      if (pin >= cell.ins.size()) continue;
      if (nl.net(cell.ins[pin]).is_clock) continue;
      const std::string name = cell.name;
      const NetId d = cell.ins[pin];
      const CellId buf =
          nl.add_gate(CellKind::kBuf, cat(name, "_e", step), {d});
      nl.replace_input(id, pin, nl.cell(buf).out);
      return cat("buffer before ", name);
    }
  }
  return "no-op";
}

class IncrementalBackend
    : public ::testing::TestWithParam<flow::DesignStyle> {};

TEST_P(IncrementalBackend, RandomizedEditsMatchFreshSta) {
  Netlist nl = converted(GetParam());
  nl.enable_journal();
  TimingOptions topt;
  topt.hold_uncertainty_ps = 60;
  IncrementalTimer timer(lib(), topt);
  EXPECT_EQ(timing_identity(timer.analyze(nl)),
            timing_identity(check_timing(nl, lib(), topt)));

  Rng rng(0x5EED + static_cast<std::uint64_t>(GetParam()));
  for (int step = 0; step < 12; ++step) {
    const std::string what = random_edit(nl, rng, step);
    ASSERT_EQ(timing_identity(timer.sync(nl)),
              timing_identity(check_timing(nl, lib(), topt)))
        << style_name(GetParam()) << " step " << step << ": " << what;
  }
  const SmoEngine::Stats& stats = timer.stats();
  EXPECT_GT(stats.incremental_runs, 0) << "no edit took the patch path";
  EXPECT_GT(stats.full_runs, 1) << "clock rescales must fall back";
}

TEST_P(IncrementalBackend, BorrowRecordsMatchFreshProfile) {
  Netlist nl = converted(GetParam());
  nl.enable_journal();
  TimingOptions topt;
  IncrementalTimer timer(lib(), topt, /*track_borrow=*/true);
  timer.analyze(nl);
  Rng rng(0xB0B + static_cast<std::uint64_t>(GetParam()));
  for (int step = 0; step < 6; ++step) random_edit(nl, rng, step);
  timer.sync(nl);
  EXPECT_EQ(borrow_identity(timer.borrow_records(nl)),
            borrow_identity(borrow_profile(nl, lib(), topt)))
      << style_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, IncrementalBackend,
    ::testing::Values(flow::DesignStyle::kFlipFlop,
                      flow::DesignStyle::kMasterSlave,
                      flow::DesignStyle::kThreePhase,
                      flow::DesignStyle::kPulsedLatch,
                      flow::DesignStyle::kTwoPhase,
                      flow::DesignStyle::kDetFf),
    [](const ::testing::TestParamInfo<flow::DesignStyle>& info) {
      std::string name(flow::style_name(info.param));
      // gtest parameter names must be alphanumeric ("M-S" is not).
      std::erase_if(name, [](char c) { return !std::isalnum(c); });
      return name;
    });

TEST(IncrementalTimer, JournalDisabledFallsBackToFullRuns) {
  // Raw benchmark netlist — run_flow outputs come back journal-enabled,
  // so the journal-off path needs a netlist that never saw the flow.
  // Every sync() must degrade to a fresh analysis and still produce the
  // identical report.
  Netlist nl = circuits::make_benchmark("s1196").netlist;
  ASSERT_FALSE(nl.journal_enabled());
  TimingOptions topt;
  IncrementalTimer timer(lib(), topt);
  timer.analyze(nl);
  Rng rng(3);
  for (int step = 0; step < 4; ++step) {
    random_edit(nl, rng, step);
    ASSERT_EQ(timing_identity(timer.sync(nl)),
              timing_identity(check_timing(nl, lib(), topt)))
        << "step " << step;
  }
  EXPECT_EQ(timer.stats().incremental_runs, 0);
  EXPECT_GE(timer.stats().full_runs, 5);  // analyze + one per sync
}

TEST(IncrementalTimer, PhaseScheduleMoveFallsBack) {
  Netlist nl = converted(flow::DesignStyle::kThreePhase);
  nl.enable_journal();
  TimingOptions topt;
  IncrementalTimer timer(lib(), topt);
  timer.analyze(nl);
  // Moving the closing edges rewrites every transparency window — the
  // session must detect the clock-plan change and run full, not patch.
  const std::int64_t tc = nl.clocks().period_ps;
  apply_phase_schedule(nl, tc / 4, 5 * tc / 8);
  EXPECT_EQ(timing_identity(timer.sync(nl)),
            timing_identity(check_timing(nl, lib(), topt)));
  EXPECT_EQ(timer.stats().incremental_runs, 0);
}

/// Brute-force reference: smallest period in [lo, hi] (step granularity,
/// same proportional waveform scaling) whose fresh report passes setup.
MinPeriodResult brute_force_min_period(const Netlist& netlist,
                                       std::int64_t lo, std::int64_t hi,
                                       std::int64_t step,
                                       const TimingOptions& topt) {
  Netlist scaled = netlist;
  const ClockSpec original = netlist.clocks();
  MinPeriodResult r;
  r.period_ps = hi;
  for (std::int64_t p = lo; p <= hi; p += step) {
    ClockSpec spec = original;
    spec.period_ps = p;
    for (PhaseWaveform& w : spec.phases) {
      w.rise_ps = w.rise_ps * p / original.period_ps;
      w.fall_ps = w.fall_ps * p / original.period_ps;
    }
    scaled.clocks() = spec;
    const TimingReport rep = check_timing(scaled, lib(), topt);
    if (rep.converged && rep.setup_ok) {
      r.feasible = true;
      r.period_ps = p;
      return r;
    }
  }
  return r;
}

TEST(MinPeriod, InfeasibleBracketIsFlaggedNotSentinel) {
  // A deep FF-to-FF path cannot pass anywhere in a tiny bracket; the old
  // convention returned hi + 1, indistinguishable from a legal period one
  // ps above hi. The structured result must say infeasible explicitly.
  const Netlist nl = converted(flow::DesignStyle::kFlipFlop);
  TimingOptions topt;
  const MinPeriodResult r = find_min_period(nl, lib(), 10, 60, 5, topt);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.period_ps, 60);  // the probed bound, not a sentinel
  EXPECT_GT(r.probes, 0);
}

TEST(MinPeriod, MatchesBruteForceOnLatchDesign) {
  // 3-phase output: transparent windows, borrowing chains, the oracle's
  // engine-fallback zone. The binary search may settle one step away from
  // the linear scan (probe grids differ), never more.
  const Netlist nl = converted(flow::DesignStyle::kThreePhase);
  TimingOptions topt;
  const std::int64_t tc = nl.clocks().period_ps;
  const MinPeriodResult fast =
      find_min_period(nl, lib(), tc / 4, 2 * tc, 5, topt);
  const MinPeriodResult ref =
      brute_force_min_period(nl, tc / 4, 2 * tc, 5, topt);
  ASSERT_EQ(fast.feasible, ref.feasible);
  ASSERT_TRUE(fast.feasible);
  EXPECT_LE(std::abs(fast.period_ps - ref.period_ps), 5)
      << "binary " << fast.period_ps << " vs scan " << ref.period_ps;
}

TEST(MinPeriod, OracleAgreesWithEngineOnFfDesign) {
  // On an FF design every probe should be oracle-decided (no borrowing),
  // and the result must match the brute-force scan exactly to the step.
  const Netlist nl = converted(flow::DesignStyle::kFlipFlop);
  TimingOptions topt;
  const std::int64_t tc = nl.clocks().period_ps;
  const MinPeriodResult fast =
      find_min_period(nl, lib(), tc / 4, 2 * tc, 5, topt);
  const MinPeriodResult ref =
      brute_force_min_period(nl, tc / 4, 2 * tc, 5, topt);
  ASSERT_EQ(fast.feasible, ref.feasible);
  EXPECT_LE(std::abs(fast.period_ps - ref.period_ps), 5);
  EXPECT_GT(fast.fast_probes, 0);
}

}  // namespace
}  // namespace tp
