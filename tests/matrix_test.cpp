// Tests for the parallel flow engine: the work-stealing Executor
// (src/util/executor.hpp) and the RunPlan / run_matrix API
// (src/flow/matrix.hpp), including the determinism contract — parallel
// results must be bit-identical to serial run_flow() loops.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "src/circuits/workload.hpp"
#include "src/flow/matrix.hpp"
#include "src/util/executor.hpp"

namespace tp {
namespace {

using flow::DesignStyle;
using flow::FlowOptions;
using flow::FlowResult;
using flow::MatrixResult;
using flow::MatrixTask;
using flow::RunPlan;
using util::Executor;

// ---------------------------------------------------------------------------
// Executor unit tests.

TEST(Executor, RunsSubmittedTasks) {
  Executor executor(4);
  std::atomic<int> count{0};
  std::vector<std::future<int>> futures;
  futures.reserve(64);
  for (int i = 0; i < 64; ++i) {
    futures.push_back(executor.submit([i, &count]() {
      count.fetch_add(1);
      return i * i;
    }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(executor.wait(std::move(futures[i])), i * i);
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(Executor, PropagatesExceptions) {
  Executor executor(2);
  auto future = executor.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(executor.wait(std::move(future)), std::runtime_error);
}

TEST(Executor, ExceptionDoesNotPoisonPool) {
  Executor executor(2);
  auto bad = executor.submit([]() -> int { throw Error("boom"); });
  EXPECT_THROW(executor.wait(std::move(bad)), Error);
  auto good = executor.submit([]() { return 7; });
  EXPECT_EQ(executor.wait(std::move(good)), 7);
}

TEST(Executor, NestedSubmissionDoesNotDeadlock) {
  // Every outer task submits inner tasks and joins them from inside the
  // pool; with help-first wait() this completes even when all workers are
  // occupied by outer tasks.
  Executor executor(2);
  std::vector<std::future<int>> outers;
  outers.reserve(8);
  for (int i = 0; i < 8; ++i) {
    outers.push_back(executor.submit([&executor, i]() {
      std::vector<std::future<int>> inners;
      inners.reserve(4);
      for (int j = 0; j < 4; ++j) {
        inners.push_back(executor.submit([i, j]() { return i * 10 + j; }));
      }
      int sum = 0;
      for (auto& inner : inners) sum += executor.wait(std::move(inner));
      return sum;
    }));
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(executor.wait(std::move(outers[i])), i * 40 + 6);
  }
}

TEST(Executor, SingleThreadDegenerateCase) {
  Executor executor(1);
  EXPECT_EQ(executor.thread_count(), 1u);
  std::vector<std::future<int>> futures;
  futures.reserve(32);
  for (int i = 0; i < 32; ++i) {
    futures.push_back(executor.submit([i]() { return i + 1; }));
  }
  int sum = 0;
  for (auto& future : futures) sum += executor.wait(std::move(future));
  EXPECT_EQ(sum, 32 * 33 / 2);
}

TEST(Executor, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    Executor executor(2);
    for (int i = 0; i < 16; ++i) {
      executor.submit([&count]() { count.fetch_add(1); });
    }
  }  // destructor joins; every submitted task must have run
  EXPECT_EQ(count.load(), 16);
}

TEST(Executor, DefaultThreadCountHonoursEnvOverride) {
  ::setenv("TP_THREADS", "3", 1);
  EXPECT_EQ(Executor::default_thread_count(), 3u);
  ::setenv("TP_THREADS", "0", 1);  // invalid: falls back to hardware
  EXPECT_GE(Executor::default_thread_count(), 1u);
  ::unsetenv("TP_THREADS");
  EXPECT_GE(Executor::default_thread_count(), 1u);
}

TEST(Executor, RunOneFromNonWorkerThread) {
  Executor executor(1);
  // Saturate the single worker with a slow task, then help from here.
  std::atomic<bool> ran{0};
  auto slow = executor.submit([]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return 1;
  });
  auto quick = executor.submit([&ran]() {
    ran.store(true);
    return 2;
  });
  while (!ran.load()) {
    if (!executor.run_one()) std::this_thread::yield();
  }
  EXPECT_EQ(executor.wait(std::move(slow)), 1);
  EXPECT_EQ(executor.wait(std::move(quick)), 2);
}

// ---------------------------------------------------------------------------
// RunPlan / task seeding.

TEST(RunPlan, ExpandsBenchmarkMajorOrder) {
  RunPlan plan;
  plan.benchmarks = {"s1196", "s1238"};
  plan.styles = {DesignStyle::kFlipFlop, DesignStyle::kThreePhase};
  const std::vector<MatrixTask> tasks = plan.tasks();
  ASSERT_EQ(tasks.size(), 4u);
  EXPECT_EQ(tasks[0].benchmark, "s1196");
  EXPECT_EQ(tasks[0].style, DesignStyle::kFlipFlop);
  EXPECT_EQ(tasks[1].benchmark, "s1196");
  EXPECT_EQ(tasks[1].style, DesignStyle::kThreePhase);
  EXPECT_EQ(tasks[3].benchmark, "s1238");
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].index, i);
  }
}

TEST(RunPlan, EmptyBenchmarksMeansAllBuiltIns) {
  RunPlan plan;
  const std::vector<MatrixTask> tasks = plan.tasks();
  EXPECT_EQ(tasks.size(), circuits::benchmark_names().size() * 3);
}

TEST(TaskSeed, DeterministicAndBenchmarkDependent) {
  const std::uint64_t a = flow::task_seed(7, "s1196");
  EXPECT_EQ(a, flow::task_seed(7, "s1196"));
  EXPECT_NE(a, flow::task_seed(7, "s1238"));
  EXPECT_NE(a, flow::task_seed(8, "s1196"));
  // Style-independent on purpose: all styles of one benchmark share the
  // stimulus so their output streams stay cross-comparable.
  RunPlan plan;
  plan.benchmarks = {"s1196"};
  plan.styles = {DesignStyle::kFlipFlop, DesignStyle::kMasterSlave,
                 DesignStyle::kThreePhase, DesignStyle::kPulsedLatch};
  for (const MatrixTask& task : plan.tasks()) {
    EXPECT_EQ(task.seed, a);
  }
}

TEST(StreamHash, SensitiveToBitsAndShape) {
  const OutputStream empty;
  const OutputStream one_row{{1, 0, 1}};
  const OutputStream flipped{{1, 1, 1}};
  const OutputStream reshaped{{1, 0}, {1}};
  EXPECT_NE(flow::stream_hash(empty), flow::stream_hash(one_row));
  EXPECT_NE(flow::stream_hash(one_row), flow::stream_hash(flipped));
  EXPECT_NE(flow::stream_hash(one_row), flow::stream_hash(reshaped));
  EXPECT_EQ(flow::stream_hash(one_row), flow::stream_hash({{1, 0, 1}}));
}

// ---------------------------------------------------------------------------
// Parallel vs serial bit-identity.

void expect_identical(const FlowResult& a, const FlowResult& b,
                      const MatrixTask& task) {
  const std::string label =
      task.benchmark + "/" + std::string(flow::style_name(task.style));
  EXPECT_EQ(a.registers, b.registers) << label;
  EXPECT_EQ(a.area_um2, b.area_um2) << label;
  EXPECT_EQ(a.power.clock_mw, b.power.clock_mw) << label;
  EXPECT_EQ(a.power.seq_mw, b.power.seq_mw) << label;
  EXPECT_EQ(a.power.comb_mw, b.power.comb_mw) << label;
  EXPECT_TRUE(streams_equal(a.outputs, b.outputs)) << label;
  EXPECT_EQ(flow::stream_hash(a.outputs), flow::stream_hash(b.outputs))
      << label;
}

TEST(RunMatrix, ParallelBitIdenticalToSerialRunFlowLoop) {
  RunPlan plan;
  plan.benchmarks = {"s1196", "s1423", "s1488"};
  plan.styles = {DesignStyle::kFlipFlop, DesignStyle::kMasterSlave,
                 DesignStyle::kThreePhase, DesignStyle::kPulsedLatch};
  plan.cycles = 48;

  // Hand-rolled serial reference: plain run_flow() calls, no executor
  // anywhere, seeded exactly as the contract documents.
  std::vector<FlowResult> reference;
  for (const std::string& name : plan.benchmarks) {
    const circuits::Benchmark bench = circuits::make_benchmark(name);
    const Stimulus stim = circuits::make_stimulus(
        bench, plan.workload, plan.cycles,
        flow::task_seed(plan.stimulus_seed, name));
    for (const DesignStyle style : plan.styles) {
      reference.push_back(run_flow(bench, style, stim, plan.options));
    }
  }

  util::Executor executor(4);
  const std::vector<MatrixResult> parallel = run_matrix(plan, executor);
  ASSERT_EQ(parallel.size(), reference.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    expect_identical(reference[i], parallel[i].result, parallel[i].task);
  }

  // And the serial engine overload agrees with both.
  const std::vector<MatrixResult> serial = run_matrix(plan);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i].result, parallel[i].result,
                     parallel[i].task);
  }
}

TEST(RunMatrix, WideLanesBitIdenticalAcrossEnginesAndSchedules) {
  // A multi-lane plan must produce the same results from (a) the serial
  // engine with the wide simulator, (b) the serial engine with the scalar
  // lane-by-lane fallback, and (c) the parallel engine — the wide engine's
  // bit-identity contract surfaced at the matrix level. Also runs under
  // TSan in CI, covering the wide engine on the executor.
  RunPlan plan;
  plan.benchmarks = {"s1196", "s1488"};
  plan.styles = {DesignStyle::kFlipFlop, DesignStyle::kThreePhase};
  plan.cycles = 48;
  plan.lanes = 4;
  // Warmup applies per lane; ceil(48 / 4) = 12 cycles per lane must leave
  // post-warmup cycles to compare.
  plan.options.warmup_cycles = 4;

  const std::vector<MatrixResult> wide_serial = run_matrix(plan);

  RunPlan scalar_plan = plan;
  scalar_plan.options.wide_sim = false;
  const std::vector<MatrixResult> scalar_serial = run_matrix(scalar_plan);

  util::Executor executor(4);
  const std::vector<MatrixResult> wide_parallel = run_matrix(plan, executor);

  ASSERT_EQ(wide_serial.size(), scalar_serial.size());
  ASSERT_EQ(wide_serial.size(), wide_parallel.size());
  for (std::size_t i = 0; i < wide_serial.size(); ++i) {
    expect_identical(wide_serial[i].result, scalar_serial[i].result,
                     wide_serial[i].task);
    expect_identical(wide_serial[i].result, wide_parallel[i].result,
                     wide_serial[i].task);
    // 4 lanes x (12 - 4) post-warmup cycles.
    EXPECT_EQ(wide_serial[i].result.outputs.size(), 32u)
        << wide_serial[i].task.benchmark;
  }
}

TEST(RunMatrix, OneLanePlanMatchesPreLaneEngine) {
  // lanes == 1 must reproduce the original engine bit-for-bit: lane 0's
  // seed is the task seed and the full cycle budget lands in that lane.
  RunPlan plan;
  plan.benchmarks = {"s1196"};
  plan.styles = {DesignStyle::kThreePhase};
  plan.cycles = 48;
  const circuits::Benchmark bench = circuits::make_benchmark("s1196");
  const Stimulus stim = circuits::make_stimulus(
      bench, plan.workload, plan.cycles,
      flow::task_seed(plan.stimulus_seed, "s1196"));
  const FlowResult reference =
      run_flow(bench, DesignStyle::kThreePhase, stim, plan.options);
  const std::vector<MatrixResult> serial = run_matrix(plan);
  ASSERT_EQ(serial.size(), 1u);
  expect_identical(reference, serial[0].result, serial[0].task);
}

TEST(RunMatrices, InterleavedPlansMatchIndividualRuns) {
  // run_matrices submits every plan's tasks in one wave; each plan's
  // results must still equal a standalone run_matrix of that plan.
  RunPlan base;
  base.benchmarks = {"s1196"};
  base.styles = {DesignStyle::kThreePhase};
  base.cycles = 48;
  base.lanes = 4;
  base.options.warmup_cycles = 4;
  std::vector<RunPlan> plans(2, base);
  plans[1].options.retime = false;

  util::Executor executor(4);
  const std::vector<std::vector<MatrixResult>> interleaved =
      run_matrices(plans, executor);
  ASSERT_EQ(interleaved.size(), 2u);
  for (std::size_t p = 0; p < plans.size(); ++p) {
    const std::vector<MatrixResult> alone = run_matrix(plans[p]);
    ASSERT_EQ(interleaved[p].size(), alone.size());
    for (std::size_t i = 0; i < alone.size(); ++i) {
      expect_identical(alone[i].result, interleaved[p][i].result,
                       alone[i].task);
    }
  }
}

TEST(LaneSeed, LaneZeroIsTaskSeed) {
  EXPECT_EQ(flow::lane_seed(1234, 0), 1234u);
  EXPECT_NE(flow::lane_seed(1234, 1), 1234u);
  EXPECT_NE(flow::lane_seed(1234, 1), flow::lane_seed(1234, 2));
  EXPECT_EQ(flow::lane_seed(1234, 3), flow::lane_seed(1234, 3));
}

TEST(RunMatrix, RepeatedParallelRunsAreIdentical) {
  RunPlan plan;
  plan.benchmarks = {"s1238"};
  plan.cycles = 48;
  util::Executor executor(4);
  const std::vector<MatrixResult> first = run_matrix(plan, executor);
  const std::vector<MatrixResult> second = run_matrix(plan, executor);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    expect_identical(first[i].result, second[i].result, first[i].task);
  }
}

TEST(RunMatrix, UnknownBenchmarkIsCapturedPerTask) {
  // A failing task must not poison the wave: its error lands in
  // MatrixResult::error while every other cell completes normally.
  RunPlan plan;
  plan.benchmarks = {"no-such-circuit", "s1238"};
  plan.styles = {DesignStyle::kThreePhase};
  plan.cycles = 48;
  util::Executor executor(2);
  const std::vector<MatrixResult> results = run_matrix(plan, executor);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].ok());
  EXPECT_NE(results[0].error.find("no-such-circuit"), std::string::npos);
  EXPECT_TRUE(results[1].ok());
  EXPECT_GT(results[1].result.registers, 0);
}

TEST(RunMatrix, CancelFlagFailsQueuedTasksFast) {
  std::atomic<bool> stop{true};  // pre-set: every task sees it before start
  RunPlan plan;
  plan.benchmarks = {"s1238"};
  plan.styles = {DesignStyle::kThreePhase};
  plan.cancel = &stop;
  util::Executor executor(2);
  const std::vector<MatrixResult> results = run_matrix(plan, executor);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok());
  EXPECT_NE(results[0].error.find("canceled"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Checkpoint fan-out inside run_flow().

TEST(RunMatrix, FannedOutCheckpointsMatchInlineCheckpoints) {
  const circuits::Benchmark bench = circuits::make_benchmark("s1423");
  const Stimulus stim = circuits::make_stimulus(
      bench, circuits::Workload::kPaperDefault, 48, 7);

  FlowOptions inline_options;
  inline_options.check_rules = true;
  const FlowResult inline_run =
      run_flow(bench, DesignStyle::kThreePhase, stim, inline_options);

  util::Executor executor(4);
  FlowOptions fanned_options;
  fanned_options.check_rules = true;
  fanned_options.executor = &executor;
  const FlowResult fanned =
      run_flow(bench, DesignStyle::kThreePhase, stim, fanned_options);

  ASSERT_EQ(inline_run.lint.stages.size(), fanned.lint.stages.size());
  for (std::size_t i = 0; i < fanned.lint.stages.size(); ++i) {
    EXPECT_EQ(inline_run.lint.stages[i].stage, fanned.lint.stages[i].stage);
    EXPECT_EQ(inline_run.lint.stages[i].report.errors,
              fanned.lint.stages[i].report.errors);
    EXPECT_EQ(inline_run.lint.stages[i].report.warnings,
              fanned.lint.stages[i].report.warnings);
  }
  EXPECT_TRUE(fanned.lint.all_clean());
  EXPECT_TRUE(streams_equal(inline_run.outputs, fanned.outputs));
}

// Deterministic-report regression (runs under TSan in CI): the per-stage
// lint+analysis reports of one flow must be byte-identical JSON whether
// the checkpoints run inline (incremental AnalysisSession), fanned out on
// 1 worker, or fanned out on 8 workers — finalize_report's canonical
// diagnostic ordering is what makes the parallel merge converge.
TEST(RunMatrix, LintWaveJsonByteIdenticalAcrossThreadCounts) {
  const circuits::Benchmark bench = circuits::make_benchmark("s1423");
  const Stimulus stim = circuits::make_stimulus(
      bench, circuits::Workload::kPaperDefault, 32, 7);

  const auto wave_bytes = [&](util::Executor* executor) {
    FlowOptions options;
    options.check_rules = true;
    options.check_analysis = true;
    options.executor = executor;
    const FlowResult r =
        run_flow(bench, DesignStyle::kThreePhase, stim, options);
    std::string bytes;
    for (const flow::StageLint& stage : r.lint.stages) {
      bytes += stage.stage;
      bytes += '\n';
      bytes += stage.report.to_json();
      bytes += '\n';
    }
    return bytes;
  };

  const std::string inline_bytes = wave_bytes(nullptr);
  util::Executor one(1);
  const std::string one_bytes = wave_bytes(&one);
  util::Executor eight(8);
  const std::string eight_bytes = wave_bytes(&eight);
  EXPECT_EQ(one_bytes, eight_bytes);
  EXPECT_EQ(inline_bytes, one_bytes);
  EXPECT_FALSE(inline_bytes.empty());
}

TEST(RunMatrix, FannedOutSecCheckpointsStillBlameInjectedStage) {
  // The stage_hook fault-injection protocol must survive the fan-out: the
  // hook mutates the live netlist synchronously, the snapshot is taken
  // afterwards, and the checkpoint report blames the right stage.
  const circuits::Benchmark bench = circuits::make_benchmark("s1196");
  const Stimulus stim = circuits::make_stimulus(
      bench, circuits::Workload::kPaperDefault, 32, 7);
  util::Executor executor(2);
  FlowOptions options;
  options.check_rules = true;
  options.executor = &executor;
  const FlowResult result =
      run_flow(bench, DesignStyle::kThreePhase, stim, options);
  EXPECT_TRUE(result.lint.all_clean());
  EXPECT_GE(result.lint.stages.size(), 3u);
  EXPECT_EQ(result.lint.stages.front().stage, "synthesis");
}

// StepTimes::hold_s regression: hold-repair time must be accounted in its
// own bucket (and in total_s), not folded into the STA signoff time.
TEST(StepTimes, HoldRepairAccountedSeparately) {
  flow::StepTimes times;
  times.timing_s = 1.0;
  const double before = times.total_s();
  times.hold_s = 2.0;
  EXPECT_DOUBLE_EQ(times.total_s(), before + 2.0);

  const circuits::Benchmark bench = circuits::make_benchmark("s1196");
  const Stimulus stim = circuits::make_stimulus(
      bench, circuits::Workload::kPaperDefault, 32, 7);
  FlowOptions options;
  const FlowResult with_repair =
      run_flow(bench, DesignStyle::kFlipFlop, stim, options);
  EXPECT_GE(with_repair.times.hold_s, 0.0);
  options.hold_repair = false;
  const FlowResult without_repair =
      run_flow(bench, DesignStyle::kFlipFlop, stim, options);
  EXPECT_EQ(without_repair.times.hold_s, 0.0);
}

TEST(FlowOptions, NamedConstructorPresets) {
  const FlowOptions paper = FlowOptions::paper_defaults();
  EXPECT_TRUE(paper.retime);
  EXPECT_TRUE(paper.ddcg);
  EXPECT_TRUE(paper.hold_repair);

  const FlowOptions fast = FlowOptions::fast();
  EXPECT_FALSE(fast.retime);
  EXPECT_FALSE(fast.ddcg);
  EXPECT_FALSE(fast.hold_repair);

  const FlowOptions bare = FlowOptions::no_gating();
  EXPECT_FALSE(bare.p2_common_enable_cg);
  EXPECT_FALSE(bare.use_m1);
  EXPECT_FALSE(bare.use_m2);
  EXPECT_FALSE(bare.ddcg);
  EXPECT_TRUE(bare.retime);  // conversion itself stays at paper settings
}

}  // namespace
}  // namespace tp
