#include <gtest/gtest.h>

#include "src/retime/maxflow.hpp"
#include "src/retime/retime.hpp"
#include "src/sim/stimulus.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/transform/convert.hpp"
#include "src/timing/sta.hpp"
#include "tests/test_circuits.hpp"

namespace tp {
namespace {

const CellLibrary& lib() { return CellLibrary::nominal_28nm(); }

// --- max-flow ---------------------------------------------------------------

TEST(MaxFlow, SimplePath) {
  MaxFlow f(4);
  f.add_edge(0, 1, 3);
  f.add_edge(1, 2, 2);
  f.add_edge(2, 3, 5);
  EXPECT_EQ(f.solve(0, 3), 2);
  const auto side = f.min_cut_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[3]);
}

TEST(MaxFlow, ParallelPathsSumCapacity) {
  MaxFlow f(4);
  f.add_edge(0, 1, 1);
  f.add_edge(1, 3, 1);
  f.add_edge(0, 2, 1);
  f.add_edge(2, 3, 1);
  EXPECT_EQ(f.solve(0, 3), 2);
}

TEST(MaxFlow, ClassicDiamond) {
  MaxFlow f(6);
  f.add_edge(0, 1, 16);
  f.add_edge(0, 2, 13);
  f.add_edge(1, 3, 12);
  f.add_edge(2, 1, 4);
  f.add_edge(3, 2, 9);
  f.add_edge(2, 4, 14);
  f.add_edge(4, 3, 7);
  f.add_edge(3, 5, 20);
  f.add_edge(4, 5, 4);
  EXPECT_EQ(f.solve(0, 5), 23);  // CLRS reference network
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow f(3);
  f.add_edge(0, 1, 5);
  EXPECT_EQ(f.solve(0, 2), 0);
}

// --- retiming ----------------------------------------------------------------

/// Converted 3-phase netlist from a random FF circuit.
ThreePhaseResult converted(std::uint64_t seed, int num_ffs = 20,
                           int num_gates = 80) {
  testing::RandomCircuitSpec spec;
  spec.seed = seed;
  spec.num_ffs = num_ffs;
  spec.num_gates = num_gates;
  Netlist ff = testing::random_ff_circuit(spec);
  infer_clock_gating(ff);
  return to_three_phase(ff);
}

TEST(Retime, NeverIncreasesLatchCount) {
  for (const std::uint64_t seed : {1u, 5u, 9u, 13u}) {
    ThreePhaseResult r = converted(seed);
    const auto before = r.netlist.registers().size();
    const RetimeResult rr = retime_inserted_latches(r.netlist, lib());
    EXPECT_LE(rr.latches_after, rr.latches_before) << "seed " << seed;
    EXPECT_EQ(r.netlist.registers().size(),
              before - static_cast<std::size_t>(rr.latches_before -
                                                rr.latches_after));
    r.netlist.validate();
  }
}

TEST(Retime, PreservesFunctionality) {
  for (const std::uint64_t seed : {2u, 4u, 6u, 8u, 10u}) {
    testing::RandomCircuitSpec spec;
    spec.seed = seed;
    spec.num_ffs = 18;
    spec.num_gates = 70;
    spec.enable_fraction = 0.4;
    Netlist ff = testing::random_ff_circuit(spec);
    infer_clock_gating(ff, {.style = CgStyle::kGated, .min_icg_group = 1});
    Rng rng(seed);
    const Stimulus stim =
        random_stimulus(ff.data_inputs().size(), 96, rng, 0.4);
    Simulator ff_sim(ff);
    const OutputStream reference = run_stream(ff_sim, stim, 8);

    ThreePhaseResult r = to_three_phase(ff);
    retime_inserted_latches(r.netlist, lib());
    SimOptions opt;
    opt.snapshot_event = 1;
    Simulator sim(r.netlist, opt);
    EXPECT_TRUE(streams_equal(reference, run_stream(sim, stim, 8)))
        << "3-phase retime, seed " << seed;

    Netlist ms = to_master_slave(ff);
    retime_inserted_latches(ms, lib(), {.movable_phase = Phase::kClk});
    Simulator ms_sim(ms);
    EXPECT_TRUE(streams_equal(reference, run_stream(ms_sim, stim, 8)))
        << "master-slave retime, seed " << seed;
  }
}

TEST(Retime, MovesLatchesIntoDeepStages) {
  // A single back-to-back stage followed by a long inverter chain: the p2
  // latch must move into the chain to satisfy the Tc/2 halves.
  Netlist nl("deep");
  const CellId p1 = nl.add_input("p1");
  const CellId p2 = nl.add_input("p2");
  const CellId p3 = nl.add_input("p3");
  nl.set_clock_root(p1, Phase::kP1);
  nl.set_clock_root(p2, Phase::kP2);
  nl.set_clock_root(p3, Phase::kP3);
  // At 800 ps the 24-inverter chain (~510 ps) cannot be relaunched from the
  // p2 opening edge (267 ps) and still reach the capture by the cycle end,
  // so the latch must move into the chain.
  nl.clocks() = three_phase_spec(800, nl.cell(p1).out, nl.cell(p2).out,
                                 nl.cell(p3).out);
  const CellId in = nl.add_input("in");
  const NetId q = nl.add_net("q");
  nl.add_cell(CellKind::kLatchH, "lat3", {nl.cell(in).out, nl.cell(p3).out},
              q, Phase::kP3);
  const CellId l2 = insert_latch_after(nl, q, nl.cell(p2).out, Phase::kP2,
                                       "lat3_p2");
  NetId d = nl.cell(l2).out;
  for (int i = 0; i < 24; ++i) {
    d = nl.cell(nl.add_gate(CellKind::kInv, "i" + std::to_string(i), {d}))
            .out;
  }
  const NetId q2 = nl.add_net("q2");
  nl.add_cell(CellKind::kLatchH, "cap", {d, nl.cell(p1).out}, q2,
              Phase::kP1);
  nl.add_output("o", q2);

  const RetimeResult rr =
      retime_inserted_latches(nl, lib(), {.margin_ps = 50});
  EXPECT_EQ(rr.latches_after, 1);
  EXPECT_EQ(rr.moved, 1);  // pushed into the inverter chain
  // Both halves now satisfy Tc/2 per the STA.
  EXPECT_TRUE(check_timing(nl, lib()).setup_ok);
}

TEST(Retime, MergesReconvergentLatches) {
  // Two back-to-back latches whose cones reconverge into one net: the
  // min-cut merges their p2 latches when delays allow.
  Netlist nl("merge");
  const CellId p1 = nl.add_input("p1");
  const CellId p2 = nl.add_input("p2");
  const CellId p3 = nl.add_input("p3");
  nl.set_clock_root(p1, Phase::kP1);
  nl.set_clock_root(p2, Phase::kP2);
  nl.set_clock_root(p3, Phase::kP3);
  nl.clocks() = three_phase_spec(3000, nl.cell(p1).out, nl.cell(p2).out,
                                 nl.cell(p3).out);
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const NetId qa = nl.add_net("qa");
  nl.add_cell(CellKind::kLatchH, "la", {nl.cell(a).out, nl.cell(p3).out},
              qa, Phase::kP3);
  const NetId qb = nl.add_net("qb");
  nl.add_cell(CellKind::kLatchH, "lb", {nl.cell(b).out, nl.cell(p3).out},
              qb, Phase::kP3);
  insert_latch_after(nl, qa, nl.cell(p2).out, Phase::kP2, "la_p2");
  insert_latch_after(nl, qb, nl.cell(p2).out, Phase::kP2, "lb_p2");
  const NetId qa2 = nl.net(qa).fanouts[0].cell.valid()
                        ? nl.cell(nl.net(qa).fanouts[0].cell).out
                        : NetId{};
  const NetId qb2 = nl.cell(nl.net(qb).fanouts[0].cell).out;
  const CellId g =
      nl.add_gate(CellKind::kAnd2, "g", {qa2, qb2});
  const NetId qc = nl.add_net("qc");
  nl.add_cell(CellKind::kLatchH, "cap", {nl.cell(g).out, nl.cell(p1).out},
              qc, Phase::kP1);
  nl.add_output("o", qc);

  const RetimeResult rr = retime_inserted_latches(nl, lib());
  EXPECT_EQ(rr.latches_before, 2);
  EXPECT_EQ(rr.latches_after, 1);  // merged at the AND output
}

TEST(Retime, DisabledIsNoOp) {
  ThreePhaseResult r = converted(3);
  const auto before = r.netlist.registers().size();
  const RetimeResult rr =
      retime_inserted_latches(r.netlist, lib(), {.enabled = false});
  EXPECT_EQ(rr.latches_before, 0);
  EXPECT_EQ(r.netlist.registers().size(), before);
}

}  // namespace
}  // namespace tp
