#include <gtest/gtest.h>

#include "src/phase/assignment.hpp"
#include "src/phase/ilp_formulation.hpp"
#include "src/util/log.hpp"
#include "src/util/rng.hpp"

namespace tp {
namespace {

/// Builds a RegisterGraph directly (no netlist) for solver testing.
RegisterGraph make_graph(int num_regs,
                         std::vector<std::pair<int, int>> edges,
                         std::vector<std::vector<int>> pi_fanout = {}) {
  RegisterGraph g;
  for (int i = 0; i < num_regs; ++i) {
    g.regs.push_back(CellId{static_cast<std::uint32_t>(i)});
    g.node_of.emplace(static_cast<std::uint32_t>(i), i);
  }
  g.fanout.resize(static_cast<std::size_t>(num_regs));
  for (const auto& [u, v] : edges) {
    g.fanout[static_cast<std::size_t>(u)].push_back(v);
  }
  for (std::size_t p = 0; p < pi_fanout.size(); ++p) {
    g.data_pis.push_back(CellId{static_cast<std::uint32_t>(1000 + p)});
  }
  g.pi_fanout = std::move(pi_fanout);
  return g;
}

/// Brute force over all K assignments; returns the minimum objective.
int brute_force_objective(const RegisterGraph& g) {
  const std::size_t n = g.regs.size();
  int best = 1 << 30;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<std::uint8_t> k(n);
    for (std::size_t i = 0; i < n; ++i) k[i] = (mask >> i) & 1;
    best = std::min(best, assignment_from_k(g, std::move(k)).num_inserted());
  }
  return best;
}

TEST(PhaseAssignment, LinearPipelineUsesOneExtraPerTwoStages) {
  // Fig. 1: a depth-d linear pipeline (PI -> ff0 -> ... -> ff_{d-1}) needs
  // exactly ceil(d / 2) inserted latches, counting the PI rule.
  for (int depth = 1; depth <= 12; ++depth) {
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i + 1 < depth; ++i) edges.push_back({i, i + 1});
    const RegisterGraph g = make_graph(depth, edges, {{0}});
    const PhaseAssignment a = assign_phases(g);
    EXPECT_TRUE(a.optimal);
    validate_assignment(g, a);
    // d + 1 boundaries (PI + d FFs) alternate; every other one needs a p2.
    EXPECT_EQ(a.num_inserted(), (depth + 1) / 2) << "depth " << depth;
  }
}

TEST(PhaseAssignment, SelfLoopForcesBackToBack) {
  const RegisterGraph g = make_graph(1, {{0, 0}});
  const PhaseAssignment a = assign_phases(g);
  EXPECT_EQ(a.g[0], 1);
  EXPECT_EQ(a.num_inserted(), 1);
  validate_assignment(g, a);
}

TEST(PhaseAssignment, TwoNodeCycleNeedsOneInsertion) {
  // ff0 <-> ff1: one of them can be a single p1 latch.
  const RegisterGraph g = make_graph(2, {{0, 1}, {1, 0}});
  const PhaseAssignment a = assign_phases(g);
  EXPECT_TRUE(a.optimal);
  EXPECT_EQ(a.num_inserted(), 1);
  validate_assignment(g, a);
}

TEST(PhaseAssignment, PiPenaltyCanChangeOptimum) {
  // Single FF fed by a PI: making it p1 costs an inserted PI latch, making
  // it p3 costs its own p2 latch — either way the optimum is 1.
  const RegisterGraph g = make_graph(1, {}, {{0}});
  const PhaseAssignment a = assign_phases(g);
  EXPECT_TRUE(a.optimal);
  EXPECT_EQ(a.num_inserted(), 1);
  validate_assignment(g, a);
}

TEST(PhaseAssignment, IndependentFfsWithoutPisAreFree) {
  const RegisterGraph g = make_graph(4, {});
  const PhaseAssignment a = assign_phases(g);
  EXPECT_TRUE(a.optimal);
  EXPECT_EQ(a.num_inserted(), 0);  // all single p1 latches
  validate_assignment(g, a);
}

TEST(PhaseAssignment, ValidateRejectsConsecutiveP1) {
  const RegisterGraph g = make_graph(2, {{0, 1}});
  PhaseAssignment bad;
  bad.k = {1, 1};
  bad.g = {0, 1};  // node 0 claims single latch while feeding a p1 node
  bad.pi_g = {};
  EXPECT_THROW(validate_assignment(g, bad), Error);
}

TEST(PhaseAssignment, ValidateRejectsSingleP3) {
  const RegisterGraph g = make_graph(1, {});
  PhaseAssignment bad;
  bad.k = {0};
  bad.g = {0};
  bad.pi_g = {};
  EXPECT_THROW(validate_assignment(g, bad), Error);
}

TEST(PhaseAssignment, GreedyIsValidButMaybeSuboptimal) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.range(3, 14));
    std::vector<std::pair<int, int>> edges;
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (rng.chance(0.15)) edges.push_back({u, v});
      }
    }
    const RegisterGraph g = make_graph(n, edges);
    const PhaseAssignment greedy = assign_phases_greedy(g);
    validate_assignment(g, greedy);
    EXPECT_GE(greedy.num_inserted(), brute_force_objective(g));
  }
}

class RandomPhaseTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomPhaseTest, AllSolversMatchBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  const int n = static_cast<int>(rng.range(2, 14));
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < n; ++u) {
    if (rng.chance(0.15)) edges.push_back({u, u});  // self-loops
    for (int v = 0; v < n; ++v) {
      if (rng.chance(0.18)) edges.push_back({u, v});
    }
  }
  const int num_pis = static_cast<int>(rng.range(0, 3));
  std::vector<std::vector<int>> pi_fanout;
  for (int p = 0; p < num_pis; ++p) {
    std::vector<int> f;
    for (int v = 0; v < n; ++v) {
      if (rng.chance(0.3)) f.push_back(v);
    }
    pi_fanout.push_back(std::move(f));
  }
  const RegisterGraph g = make_graph(n, edges, pi_fanout);

  const int reference = brute_force_objective(g);

  const PhaseAssignment ilp = assign_phases_ilp(g, 30.0);
  EXPECT_TRUE(ilp.optimal);
  validate_assignment(g, ilp);
  EXPECT_EQ(ilp.num_inserted(), reference) << "ILP, n=" << n;

  const PhaseAssignment spec = assign_phases_specialized(g, 30.0);
  EXPECT_TRUE(spec.optimal);
  validate_assignment(g, spec);
  EXPECT_EQ(spec.num_inserted(), reference) << "specialized, n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPhaseTest, ::testing::Range(0, 80));

TEST(PhaseAssignment, LargeLayeredGraphSolvesQuickly) {
  // AES-like layered pipeline: 12 layers of 64 FFs, dense layer-to-layer
  // edges. The specialized solver must handle it within the time budget and
  // pick alternate layers.
  Rng rng(99);
  const int layers = 12, width = 64;
  std::vector<std::pair<int, int>> edges;
  for (int l = 0; l + 1 < layers; ++l) {
    for (int i = 0; i < width; ++i) {
      for (int j = 0; j < 4; ++j) {
        edges.push_back({l * width + i,
                         (l + 1) * width +
                             static_cast<int>(rng.below(width))});
      }
    }
  }
  const RegisterGraph g = make_graph(layers * width, edges);
  Stopwatch timer;
  const PhaseAssignment a = assign_phases(g, {.time_limit_s = 10.0});
  EXPECT_LT(timer.seconds(), 10.0);
  validate_assignment(g, a);
  // Alternate layers single-latch: about half the FFs need insertion; the
  // local search must land within 2% of that.
  EXPECT_LE(a.num_inserted(), layers * width / 2 + width / 8);
}

}  // namespace
}  // namespace tp
