#include <gtest/gtest.h>

#include "src/ilp/model.hpp"
#include "src/ilp/solver.hpp"
#include "src/util/rng.hpp"

namespace tp::ilp {
namespace {

TEST(IlpModel, MergesDuplicateTerms) {
  Model m;
  const VarId x = m.add_binary("x", 1.0);
  m.add_constraint("c", {{x, 1.0}, {x, 2.0}}, Sense::kGe, 2.0);
  ASSERT_EQ(m.constraint(ConsId{0}).terms.size(), 1u);
  EXPECT_DOUBLE_EQ(m.constraint(ConsId{0}).terms[0].coeff, 3.0);
}

TEST(IlpModel, FeasibilityAndObjective) {
  Model m;
  const VarId x = m.add_binary("x", 2.0);
  const VarId y = m.add_binary("y", 3.0);
  m.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Sense::kGe, 1.0);
  EXPECT_TRUE(m.feasible({1, 0}));
  EXPECT_FALSE(m.feasible({0, 0}));
  EXPECT_DOUBLE_EQ(m.objective_value({1, 1}), 5.0);
}

TEST(IlpSolver, EmptyModelIsOptimal) {
  Model m;
  EXPECT_EQ(solve(m).status, SolveStatus::kOptimal);
}

TEST(IlpSolver, SimpleCover) {
  // min x + y + z  s.t.  x + y >= 1, y + z >= 1  -> optimum 1 (y).
  Model m;
  const VarId x = m.add_binary("x", 1.0);
  const VarId y = m.add_binary("y", 1.0);
  const VarId z = m.add_binary("z", 1.0);
  m.add_constraint("c1", {{x, 1.0}, {y, 1.0}}, Sense::kGe, 1.0);
  m.add_constraint("c2", {{y, 1.0}, {z, 1.0}}, Sense::kGe, 1.0);
  const Solution s = solve(m);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.objective, 1.0);
  EXPECT_EQ(s.values[y.value()], 1);
}

TEST(IlpSolver, DetectsInfeasible) {
  Model m;
  const VarId x = m.add_binary("x", 1.0);
  m.add_constraint("c1", {{x, 1.0}}, Sense::kGe, 1.0);
  m.add_constraint("c2", {{x, 1.0}}, Sense::kLe, 0.0);
  EXPECT_EQ(solve(m).status, SolveStatus::kInfeasible);
}

TEST(IlpSolver, HonorsEquality) {
  Model m;
  const VarId x = m.add_binary("x", -1.0);
  const VarId y = m.add_binary("y", -1.0);
  m.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Sense::kEq, 1.0);
  const Solution s = solve(m);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.objective, -1.0);
  EXPECT_EQ(s.values[x.value()] + s.values[y.value()], 1);
}

TEST(IlpSolver, FixPinsVariable) {
  Model m;
  const VarId x = m.add_binary("x", -5.0);
  m.fix(x, false);
  const Solution s = solve(m);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(s.values[x.value()], 0);
}

TEST(IlpSolver, NegativeCoefficients) {
  // min -x - 2y  s.t.  x + y <= 1  -> pick y, objective -2.
  Model m;
  const VarId x = m.add_binary("x", -1.0);
  const VarId y = m.add_binary("y", -2.0);
  m.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Sense::kLe, 1.0);
  const Solution s = solve(m);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.objective, -2.0);
}

/// Brute-force reference: enumerate all assignments.
double brute_force(const Model& m, bool* feasible_out = nullptr) {
  const std::size_t n = m.num_vars();
  double best = 0;
  bool found = false;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<std::uint8_t> a(n);
    for (std::size_t i = 0; i < n; ++i) a[i] = (mask >> i) & 1;
    if (!m.feasible(a)) continue;
    const double obj = m.objective_value(a);
    if (!found || obj < best) {
      best = obj;
      found = true;
    }
  }
  if (feasible_out) *feasible_out = found;
  return best;
}

class RandomIlpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomIlpTest, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = static_cast<int>(rng.range(2, 12));
  Model m;
  std::vector<VarId> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(
        m.add_binary("v" + std::to_string(i),
                     static_cast<double>(rng.range(-4, 4))));
  }
  const int num_cons = static_cast<int>(rng.range(1, 2 * n));
  for (int c = 0; c < num_cons; ++c) {
    std::vector<Term> terms;
    for (const VarId v : vars) {
      if (rng.chance(0.4)) {
        terms.push_back({v, static_cast<double>(rng.range(-3, 3))});
      }
    }
    if (terms.empty()) continue;
    const auto sense = static_cast<Sense>(rng.below(3));
    m.add_constraint("c" + std::to_string(c), std::move(terms), sense,
                     static_cast<double>(rng.range(-3, 3)));
  }
  bool feasible = false;
  const double reference = brute_force(m, &feasible);
  const Solution s = solve(m);
  if (!feasible) {
    EXPECT_EQ(s.status, SolveStatus::kInfeasible);
  } else {
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    EXPECT_NEAR(s.objective, reference, 1e-9);
    EXPECT_TRUE(m.feasible(s.values));
    EXPECT_NEAR(m.objective_value(s.values), s.objective, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomIlpTest, ::testing::Range(0, 60));

// --- closed-form structures ---------------------------------------------------

/// Minimum vertex cover of a path with n vertices is floor(n / 2).
TEST(IlpSolver, PathVertexCover) {
  for (const int n : {2, 3, 4, 5, 8, 13, 16}) {
    Model m;
    std::vector<VarId> x;
    for (int i = 0; i < n; ++i) {
      x.push_back(m.add_binary("x" + std::to_string(i), 1.0));
    }
    for (int i = 0; i + 1 < n; ++i) {
      m.add_constraint("e" + std::to_string(i),
                       {{x[static_cast<std::size_t>(i)], 1.0},
                        {x[static_cast<std::size_t>(i + 1)], 1.0}},
                       Sense::kGe, 1.0);
    }
    const Solution s = solve(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal) << n;
    EXPECT_DOUBLE_EQ(s.objective, n / 2) << n;
  }
}

/// Minimum vertex cover of a cycle with n vertices is ceil(n / 2).
TEST(IlpSolver, CycleVertexCover) {
  for (const int n : {3, 4, 5, 6, 9, 12, 15}) {
    Model m;
    std::vector<VarId> x;
    for (int i = 0; i < n; ++i) {
      x.push_back(m.add_binary("x" + std::to_string(i), 1.0));
    }
    for (int i = 0; i < n; ++i) {
      m.add_constraint("e" + std::to_string(i),
                       {{x[static_cast<std::size_t>(i)], 1.0},
                        {x[static_cast<std::size_t>((i + 1) % n)], 1.0}},
                       Sense::kGe, 1.0);
    }
    const Solution s = solve(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal) << n;
    EXPECT_DOUBLE_EQ(s.objective, (n + 1) / 2) << n;
  }
}

/// Exact set-cover instance with a known optimum of 2 (two big sets cover
/// everything; singleton decoys are cheaper per set but never sufficient).
TEST(IlpSolver, SetCoverPicksBigSets) {
  Model m;
  const VarId big_a = m.add_binary("bigA", 3.0);
  const VarId big_b = m.add_binary("bigB", 3.0);
  std::vector<VarId> singles;
  for (int i = 0; i < 8; ++i) {
    singles.push_back(m.add_binary("s" + std::to_string(i), 1.0));
  }
  for (int e = 0; e < 8; ++e) {
    std::vector<Term> terms{{e < 4 ? big_a : big_b, 1.0},
                            {singles[static_cast<std::size_t>(e)], 1.0}};
    m.add_constraint("cover" + std::to_string(e), std::move(terms),
                     Sense::kGe, 1.0);
  }
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.objective, 6.0);  // both big sets
  EXPECT_EQ(s.values[big_a.value()], 1);
  EXPECT_EQ(s.values[big_b.value()], 1);
}

/// Node and solution statistics behave sanely on an exponential-ish model.
TEST(IlpSolver, ReportsSearchStatistics) {
  Model m;
  std::vector<VarId> x;
  for (int i = 0; i < 14; ++i) {
    x.push_back(m.add_binary("x" + std::to_string(i),
                             (i % 3 == 0) ? -1.0 : 1.0));
  }
  for (int i = 0; i + 2 < 14; i += 2) {
    m.add_constraint("c" + std::to_string(i),
                     {{x[static_cast<std::size_t>(i)], 1.0},
                      {x[static_cast<std::size_t>(i + 1)], -1.0},
                      {x[static_cast<std::size_t>(i + 2)], 1.0}},
                     Sense::kGe, 0.0);
  }
  const Solution s = solve(m);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_GT(s.nodes, 0u);
  EXPECT_GE(s.seconds, 0.0);
}

/// A node limit of 1 still returns the greedy dive's incumbent.
TEST(IlpSolver, NodeLimitReturnsFeasible) {
  Model m;
  std::vector<VarId> x;
  for (int i = 0; i < 30; ++i) {
    x.push_back(m.add_binary("x" + std::to_string(i), 1.0));
  }
  for (int i = 0; i + 1 < 30; ++i) {
    m.add_constraint("e" + std::to_string(i),
                     {{x[static_cast<std::size_t>(i)], 1.0},
                      {x[static_cast<std::size_t>(i + 1)], 1.0}},
                     Sense::kGe, 1.0);
  }
  SolveOptions options;
  options.node_limit = 40;  // enough for one dive, not for the proof
  const Solution s = solve(m, options);
  EXPECT_TRUE(s.status == SolveStatus::kFeasible ||
              s.status == SolveStatus::kOptimal);
  if (s.status == SolveStatus::kFeasible) {
    EXPECT_TRUE(m.feasible(s.values));
  }
}

}  // namespace
}  // namespace tp::ilp
