#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "src/circuits/benchmark.hpp"
#include "src/circuits/workload.hpp"
#include "src/equiv/sec.hpp"
#include "src/flow/flow.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/transform/convert.hpp"
#include "src/transform/p2_gating.hpp"
#include "src/transform/pulsed_latch.hpp"

namespace tp::equiv {
namespace {

using circuits::Benchmark;
using circuits::make_benchmark;

/// Benchmarks above this cell count are skipped by default (an SEC run on
/// s38584 takes minutes; the suite skips large circuits the same way
/// circuits_test skips AES simulation) and exercised by
/// bench/equiv_vs_stream instead. Set TP_SEC_FULL=1 to run the complete
/// matrix — every registered benchmark proves with the default budgets.
constexpr std::size_t kMaxCellsInSuite = 3000;

bool skip_large(const Netlist& netlist) {
  return netlist.num_cells() > kMaxCellsInSuite &&
         std::getenv("TP_SEC_FULL") == nullptr;
}

/// Flips the first p1/p3 latch to the opposite phase, re-wiring its gate pin
/// to the new phase's clock root. Breaks behavior on most circuits (the latch
/// now opens in the wrong third of the cycle) — but NOT always: callers must
/// only assert falsification on circuits where the reference simulator
/// confirms a stream divergence (e.g. s1196/s1488/s9234). p2 latches are
/// excluded because re-phasing a transparency window that only bridges p1 to
/// p3 preserves behavior by construction.
bool flip_first_data_latch(Netlist& netlist) {
  for (const CellId id : netlist.live_cells()) {
    const Cell& cell = netlist.cell(id);
    if (is_latch(cell.kind) &&
        (cell.phase == Phase::kP1 || cell.phase == Phase::kP3)) {
      netlist.set_phase(id, cell.phase == Phase::kP1 ? Phase::kP3
                                                     : Phase::kP1);
      netlist.replace_input(id, 1,
                            netlist.clocks().root(netlist.cell(id).phase));
      return true;
    }
  }
  return false;
}

/// Inserts an inverter in front of the first primary output: the cheapest
/// mutation that is guaranteed observable on every circuit.
void invert_first_output(Netlist& netlist) {
  ASSERT_FALSE(netlist.outputs().empty());
  const CellId po = netlist.outputs().front();
  const NetId src = netlist.cell(po).ins.front();
  const CellId inv =
      netlist.add_gate(CellKind::kInv, "sec_test_fault", {src});
  netlist.replace_input(po, 0, netlist.cell(inv).out);
}

/// Builds the "full 3-phase" conversion used throughout: clock gating
/// inference, phase assignment + latch insertion, p2 common-enable gating,
/// and M2.
Netlist three_phase_full(const Netlist& ff_netlist) {
  Netlist nl = ff_netlist;
  infer_clock_gating(nl);
  ThreePhaseResult p3 = to_three_phase(nl);
  gate_p2_latches(p3.netlist);
  apply_m2(p3.netlist);
  return std::move(p3.netlist);
}

// --- positive proofs over the benchmark registry ---------------------------

class SecBenchmarkTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SecBenchmarkTest, ProvesAllStylesAgainstFlipFlopGolden) {
  const Benchmark bm = make_benchmark(GetParam());
  if (skip_large(bm.netlist)) GTEST_SKIP();
  const Netlist& golden = bm.netlist;

  Netlist ff = bm.netlist;
  infer_clock_gating(ff);

  const SecResult cg = check_sequential_equivalence(golden, ff);
  EXPECT_TRUE(cg) << "post-CG: " << cg.detail;

  const SecResult ms =
      check_sequential_equivalence(golden, to_master_slave(ff));
  EXPECT_TRUE(ms) << "master-slave: " << ms.detail;

  const SecResult p3 =
      check_sequential_equivalence(golden, three_phase_full(bm.netlist));
  EXPECT_TRUE(p3) << "3-phase: " << p3.detail;

  const SecResult pl =
      check_sequential_equivalence(golden, to_pulsed_latch(ff).netlist);
  EXPECT_TRUE(pl) << "pulsed-latch: " << pl.detail;
}

INSTANTIATE_TEST_SUITE_P(All, SecBenchmarkTest,
                         ::testing::ValuesIn(circuits::benchmark_names()));

// --- falsification ---------------------------------------------------------

class SecMutationTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SecMutationTest, LatchPhaseFlipIsDetectedWithConfirmedCex) {
  // Only circuits where the reference simulator confirms the flip breaks the
  // output stream (verified over 5000 random cycles; on s1423/s5378 the same
  // flip happens to be behavior-preserving and SEC correctly proves it).
  const Benchmark bm = make_benchmark(GetParam());
  Netlist mutant = three_phase_full(bm.netlist);
  ASSERT_TRUE(flip_first_data_latch(mutant));

  const SecResult r = check_sequential_equivalence(bm.netlist, mutant);
  ASSERT_EQ(r.status, SecStatus::kFalsified) << r.detail;
  EXPECT_TRUE(r.cex.confirmed);
  EXPECT_GE(r.cex.cycle, 0);
  EXPECT_FALSE(r.cex.output_name.empty());
  EXPECT_NE(r.cex.expected, r.cex.got);
  // Minimization truncates to the first mismatching cycle.
  EXPECT_EQ(r.cex.cycle + 1,
            static_cast<std::ptrdiff_t>(r.cex.inputs.size()));

  // The counterexample must replay: an independent simulator run on the
  // reported stimulus reproduces the exact mismatch.
  Counterexample again;
  again.inputs = r.cex.inputs;
  EXPECT_TRUE(replay(bm.netlist, mutant, again));
  EXPECT_EQ(again.cycle, r.cex.cycle);
  EXPECT_EQ(again.output, r.cex.output);
}

INSTANTIATE_TEST_SUITE_P(GroundTruthBreaking, SecMutationTest,
                         ::testing::Values("s1196", "s1488", "s9234"));

TEST(SecMutation, BehaviorPreservingFlipStaysProven) {
  // On s1423 the first p1/p3 latch flip is stream-equivalent (5000-cycle
  // random simulation finds no divergence), so SEC must keep proving it —
  // guarding against a checker that flags any structural clock change.
  const Benchmark bm = make_benchmark("s1423");
  Netlist mutant = three_phase_full(bm.netlist);
  ASSERT_TRUE(flip_first_data_latch(mutant));
  const SecResult r = check_sequential_equivalence(bm.netlist, mutant);
  EXPECT_TRUE(r) << r.detail;
}

TEST(SecMutation, DroppedIcgGatingIsDetected) {
  // Removing an ICG (clock free-running) breaks a gated bank: the gated
  // style has no recirculation mux, so the bank samples its D cone on
  // cycles where the enable is low. Verified stream-breaking on DES3
  // (mismatch at cycle 3 of a 2000-cycle random stream).
  const Benchmark bm = make_benchmark("DES3");
  Netlist nl = bm.netlist;
  infer_clock_gating(nl);
  Netlist mutant = std::move(to_three_phase(nl).netlist);
  bool ungated = false;
  for (const CellId id : mutant.live_cells()) {
    const Cell& cell = mutant.cell(id);
    if (cell.kind == CellKind::kIcg || cell.kind == CellKind::kIcgM1) {
      mutant.morph_cell(id, CellKind::kClkBuf, {cell.ins[1]});
      ungated = true;
      break;
    }
  }
  ASSERT_TRUE(ungated);
  const SecResult r = check_sequential_equivalence(bm.netlist, mutant);
  ASSERT_EQ(r.status, SecStatus::kFalsified) << r.detail;
  EXPECT_TRUE(r.cex.confirmed);
  EXPECT_LE(r.cex.ones(), 4u) << "ddmin should leave only a few set bits";
}

TEST(SecMutation, InvertedOutputMinimizesToEmptyStimulus) {
  const Benchmark bm = make_benchmark("s1238");
  Netlist mutant = three_phase_full(bm.netlist);
  invert_first_output(mutant);
  const SecResult r = check_sequential_equivalence(bm.netlist, mutant);
  ASSERT_EQ(r.status, SecStatus::kFalsified) << r.detail;
  EXPECT_TRUE(r.cex.confirmed);
  // An always-wrong output mismatches under the all-zero stimulus, so ddmin
  // clears every input bit.
  EXPECT_EQ(r.cex.cycle, 0);
  EXPECT_EQ(r.cex.ones(), 0u);
  EXPECT_EQ(r.cex.output_name,
            bm.netlist.cell(bm.netlist.outputs().front()).name);
}

// --- robustness ------------------------------------------------------------

TEST(Sec, IdenticalNetlistsProve) {
  // Even self-equivalence runs the full pipeline (each side gets its own
  // state variables), but strash collapses the combinational cones so the
  // AIG stays barely larger than one copy of the design.
  const Benchmark bm = make_benchmark("s5378");
  const SecResult r = check_sequential_equivalence(bm.netlist, bm.netlist);
  EXPECT_TRUE(r) << r.detail;
  EXPECT_EQ(r.stats.golden_state_bits, r.stats.revised_state_bits);
}

TEST(Sec, MismatchedOutputCountIsUnknownNotCrash) {
  const Benchmark bm = make_benchmark("s1196");
  Netlist extra = bm.netlist;
  const NetId src = extra.cell(extra.outputs().front()).ins.front();
  extra.add_output("sec_test_extra", src);
  const SecResult r = check_sequential_equivalence(bm.netlist, extra);
  EXPECT_EQ(r.status, SecStatus::kUnknown);
  EXPECT_FALSE(r.detail.empty());
}

TEST(Sec, ExhaustedBudgetsReportUnknownWithReason) {
  const Benchmark bm = make_benchmark("s1196");
  SecOptions opt;
  opt.sim_frames = 1;
  opt.max_rounds = 0;
  opt.bmc_frames = 0;
  opt.sat_conflict_limit = 1;
  const SecResult r =
      check_sequential_equivalence(bm.netlist, three_phase_full(bm.netlist),
                                   opt);
  EXPECT_EQ(r.status, SecStatus::kUnknown) << r.detail;
  EXPECT_FALSE(r.detail.empty());
}

// --- flow checkpoints ------------------------------------------------------

flow::FlowOptions checked_options() {
  flow::FlowOptions options;
  options.check_equivalence = true;
  return options;
}

TEST(FlowCheckpoints, EveryStageProvesOnCleanConversion) {
  const Benchmark bm = make_benchmark("s1196");
  const Stimulus stim =
      circuits::make_stimulus(bm, circuits::Workload::kPaperDefault, 32, 3);
  const flow::FlowResult r = flow::run_flow(
      bm, flow::DesignStyle::kThreePhase, stim, checked_options());
  ASSERT_FALSE(r.equiv.stages.empty());
  EXPECT_TRUE(r.equiv.all_proven())
      << r.equiv.first_failure()->stage << ": "
      << r.equiv.first_failure()->result.detail;
  EXPECT_EQ(r.equiv.first_failure(), nullptr);
  EXPECT_GT(r.times.equiv_s, 0.0);
  // The 3-phase flow must at least pass the synthesis and conversion gates.
  EXPECT_EQ(r.equiv.stages.front().stage, "synthesis");
  bool has_convert = false;
  for (const flow::StageCheck& s : r.equiv.stages) {
    has_convert |= s.stage == "convert";
  }
  EXPECT_TRUE(has_convert);
}

TEST(FlowCheckpoints, FirstFailureBlamesTheFaultyStage) {
  const Benchmark bm = make_benchmark("s1196");
  const Stimulus stim =
      circuits::make_stimulus(bm, circuits::Workload::kPaperDefault, 32, 3);
  flow::FlowOptions options = checked_options();
  // Corrupt the netlist "inside" the m2 stage; every later checkpoint also
  // fails, but the report must pin the first divergence on m2 itself.
  options.stage_hook = [](Netlist& netlist, std::string_view stage) {
    if (stage == "m2") invert_first_output(netlist);
  };
  const flow::FlowResult r = flow::run_flow(
      bm, flow::DesignStyle::kThreePhase, stim, options);
  const flow::StageCheck* failed = r.equiv.first_failure();
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(failed->stage, "m2");
  EXPECT_EQ(failed->result.status, SecStatus::kFalsified);
  EXPECT_TRUE(failed->result.cex.confirmed);
  // Stages before the fault must all have proven.
  for (const flow::StageCheck& s : r.equiv.stages) {
    if (&s == failed) break;
    EXPECT_EQ(s.result.status, SecStatus::kProven) << s.stage;
  }
}

}  // namespace
}  // namespace tp::equiv
