#include <gtest/gtest.h>

#include "src/sim/stimulus.hpp"
#include "src/timing/sta.hpp"
#include "src/transform/buffering.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/transform/pulsed_latch.hpp"
#include "tests/test_circuits.hpp"

namespace tp {
namespace {

const CellLibrary& lib() { return CellLibrary::nominal_28nm(); }

// --- high-fanout buffering ----------------------------------------------------

TEST(Buffering, SplitsWideNets) {
  Netlist nl("wide");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(1000, nl.cell(clk).out);
  const CellId a = nl.add_input("a");
  for (int i = 0; i < 100; ++i) {
    nl.add_output("o" + std::to_string(i),
                  nl.cell(nl.add_gate(CellKind::kInv,
                                      "g" + std::to_string(i),
                                      {nl.cell(a).out}))
                      .out);
  }
  ASSERT_EQ(nl.net(nl.cell(a).out).fanouts.size(), 100u);
  const BufferingResult r = buffer_high_fanout(nl, {.max_fanout = 12});
  nl.validate();
  EXPECT_EQ(r.nets_buffered, 1);
  EXPECT_GT(r.buffers_inserted, 100 / 12 - 1);
  EXPECT_LE(nl.net(nl.cell(a).out).fanouts.size(), 12u);
}

TEST(Buffering, LeavesClockNetsAlone) {
  Netlist nl("clmembers");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(1000, nl.cell(clk).out);
  const CellId a = nl.add_input("a");
  for (int i = 0; i < 40; ++i) {
    const NetId q = nl.add_net("q" + std::to_string(i));
    nl.add_cell(CellKind::kDff, "ff" + std::to_string(i),
                {nl.cell(a).out, nl.cell(clk).out}, q, Phase::kClk);
    nl.add_output("o" + std::to_string(i), q);
  }
  const BufferingResult r = buffer_high_fanout(nl, {.max_fanout = 8});
  nl.validate();
  // The clock net keeps its 40 sinks (CTS owns it); the data net is split.
  EXPECT_EQ(nl.net(nl.cell(clk).out).fanouts.size(), 40u);
  EXPECT_LE(nl.net(nl.cell(a).out).fanouts.size(), 8u);
  EXPECT_EQ(r.nets_buffered, 1);
}

TEST(Buffering, PreservesFunction) {
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 24;
  spec.num_gates = 60;
  spec.enable_fraction = 0.5;
  Netlist original = testing::random_ff_circuit(spec);
  infer_clock_gating(original);
  Netlist buffered = original;
  buffer_high_fanout(buffered, {.max_fanout = 4});
  Rng rng(9);
  const Stimulus stim =
      random_stimulus(original.data_inputs().size(), 64, rng, 0.4);
  Simulator a(original), b(buffered);
  EXPECT_TRUE(streams_equal(run_stream(a, stim, 4), run_stream(b, stim, 4)));
}

// --- pulsed latches -------------------------------------------------------------

Netlist pulsed(const Netlist& ff, std::int64_t width = 120) {
  PulsedLatchOptions options;
  options.pulse_width_ps = width;
  return to_pulsed_latch(ff, options).netlist;
}

TEST(PulsedLatch, ConvertsEveryRegister) {
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 20;
  Netlist ff = testing::random_ff_circuit(spec);
  infer_clock_gating(ff);
  const PulsedLatchResult r = to_pulsed_latch(ff);
  EXPECT_EQ(r.netlist.count_cells(is_flip_flop), 0u);
  EXPECT_EQ(r.netlist.count_cells(
                [](CellKind k) { return k == CellKind::kLatchP; }),
            ff.registers().size());
  EXPECT_GT(r.pulse_generators, 0);
  // Grouped: at most group_size latches per generator.
  EXPECT_GE(r.pulse_generators,
            static_cast<int>(ff.registers().size()) / 16);
}

TEST(PulsedLatch, StreamEquivalentToFf) {
  for (const std::uint64_t seed : {2u, 8u, 21u}) {
    testing::RandomCircuitSpec spec;
    spec.seed = seed;
    spec.num_ffs = 18;
    spec.num_gates = 60;
    spec.enable_fraction = 0.4;
    Netlist ff = testing::random_ff_circuit(spec);
    infer_clock_gating(ff);
    const Netlist pl = pulsed(ff);
    Rng rng(seed);
    const Stimulus stim =
        random_stimulus(ff.data_inputs().size(), 96, rng, 0.4);
    Simulator a(ff), b(pl);
    EXPECT_TRUE(
        streams_equal(run_stream(a, stim, 8), run_stream(b, stim, 8)))
        << "seed " << seed;
  }
}

TEST(PulsedLatch, HoldGetsHarderWithWiderPulses) {
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 20;
  spec.num_gates = 50;
  Netlist ff = testing::random_ff_circuit(spec);
  infer_clock_gating(ff);
  const TimingReport narrow = check_timing(pulsed(ff, 80), lib());
  const TimingReport wide = check_timing(pulsed(ff, 250), lib());
  EXPECT_GT(narrow.worst_hold_slack_ps, wide.worst_hold_slack_ps);
}

TEST(PulsedLatch, BorrowsThroughThePulseWindow) {
  // A chain that misses the period by less than the pulse width passes with
  // pulsed latches but fails with plain FFs: borrowing through the window.
  auto chain = [](bool pulsed_style, int depth) {
    Netlist nl("chain");
    const CellId clk = nl.add_input("clk");
    nl.set_clock_root(clk, Phase::kClk);
    nl.clocks() = single_phase_spec(700, nl.cell(clk).out);
    const CellId in = nl.add_input("in");
    NetId d = nl.cell(in).out;
    const NetId q0 = nl.add_net("q0");
    nl.add_cell(CellKind::kDff, "r0", {d, nl.cell(clk).out}, q0,
                Phase::kClk);
    d = q0;
    for (int i = 0; i < depth; ++i) {
      d = nl.cell(nl.add_gate(CellKind::kInv, "i" + std::to_string(i), {d}))
              .out;
    }
    const NetId q1 = nl.add_net("q1");
    nl.add_cell(CellKind::kDff, "r1", {d, nl.cell(clk).out}, q1,
                Phase::kClk);
    nl.add_output("o", q1);
    if (!pulsed_style) return nl;
    PulsedLatchOptions options;
    options.pulse_width_ps = 200;
    return to_pulsed_latch(nl, options).netlist;
  };
  // Depth 30 inverters ~ 635 ps + clk->q + setup ~ 760 ps > 700 ps.
  EXPECT_FALSE(check_timing(chain(false, 30), lib()).setup_ok);
  EXPECT_TRUE(check_timing(chain(true, 30), lib()).setup_ok);
}

TEST(PulsedLatch, RejectsUnloweredEnables) {
  testing::RandomCircuitSpec spec;
  spec.enable_fraction = 1.0;
  const Netlist ff = testing::random_ff_circuit(spec);
  EXPECT_THROW(to_pulsed_latch(ff), Error);
}

}  // namespace
}  // namespace tp
