#include <gtest/gtest.h>

#include "src/netlist/netlist.hpp"
#include "src/netlist/traverse.hpp"

namespace tp {
namespace {

/// a, b -> AND -> INV -> out
Netlist small_comb() {
  Netlist nl("small");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g1 = nl.add_gate(CellKind::kAnd2, "g1",
                                {nl.cell(a).out, nl.cell(b).out});
  const CellId g2 = nl.add_gate(CellKind::kInv, "g2", {nl.cell(g1).out});
  nl.add_output("out", nl.cell(g2).out);
  return nl;
}

TEST(Netlist, BuildAndValidate) {
  Netlist nl = small_comb();
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.live_cells().size(), 5u);
}

TEST(Netlist, WrongPinCountThrows) {
  Netlist nl("bad");
  const NetId a = nl.add_net("a");
  const NetId out = nl.add_net("out");
  EXPECT_THROW(nl.add_cell(CellKind::kAnd2, "g", {a}, out), Error);
}

TEST(Netlist, DoubleDriverThrows) {
  Netlist nl("bad");
  const CellId a = nl.add_input("a");
  const NetId n = nl.cell(a).out;
  EXPECT_THROW(nl.add_cell(CellKind::kInv, "g", {n}, n), Error);
}

TEST(Netlist, ReplaceInputRewires) {
  Netlist nl = small_comb();
  const CellId g2 = nl.live_cells()[3];
  ASSERT_EQ(nl.cell(g2).kind, CellKind::kInv);
  const NetId a_net = nl.cell(nl.inputs()[0]).out;
  nl.replace_input(g2, 0, a_net);
  nl.validate();
  EXPECT_EQ(nl.cell(g2).ins[0], a_net);
}

TEST(Netlist, TransferFanoutsMovesAllSinks) {
  Netlist nl = small_comb();
  const NetId a_net = nl.cell(nl.inputs()[0]).out;
  const NetId b_net = nl.cell(nl.inputs()[1]).out;
  nl.transfer_fanouts(a_net, b_net);
  nl.validate();
  EXPECT_TRUE(nl.net(a_net).fanouts.empty());
  EXPECT_EQ(nl.net(b_net).fanouts.size(), 2u);
}

TEST(Netlist, RemoveCellDetaches) {
  Netlist nl = small_comb();
  const CellId g2 = nl.live_cells()[3];
  const CellId po = nl.outputs()[0];
  nl.remove_cell(po);  // detach the consumer first
  nl.remove_cell(g2);
  nl.validate();
  EXPECT_EQ(nl.live_cells().size(), 3u);
}

TEST(Netlist, MorphCellChangesKind) {
  Netlist nl = small_comb();
  const CellId g1 = nl.live_cells()[2];
  nl.morph_cell(g1, CellKind::kOr2);
  nl.validate();
  EXPECT_EQ(nl.cell(g1).kind, CellKind::kOr2);
}

TEST(Netlist, ThreePhaseSpecWaveforms) {
  Netlist nl("clk");
  const CellId p1 = nl.add_input("p1");
  const CellId p2 = nl.add_input("p2");
  const CellId p3 = nl.add_input("p3");
  nl.clocks() = three_phase_spec(3000, nl.cell(p1).out, nl.cell(p2).out,
                                 nl.cell(p3).out);
  EXPECT_EQ(nl.clocks().period_ps, 3000);
  EXPECT_EQ(nl.clocks().find(Phase::kP2)->rise_ps, 1000);
  EXPECT_EQ(nl.clocks().find(Phase::kP3)->fall_ps, 3000);
  EXPECT_EQ(nl.clocks().root(Phase::kP1), nl.cell(p1).out);
}

TEST(Netlist, DataInputsExcludesClockRoots) {
  Netlist nl("d");
  const CellId clk = nl.add_input("clk");
  nl.add_input("a");
  nl.set_clock_root(clk, Phase::kClk);
  EXPECT_EQ(nl.data_inputs().size(), 1u);
}

// --- traversal -------------------------------------------------------------

/// Builds: in -> FF0 -> inv -> FF1 -> and(loop with FF2) -> FF2 -> out,
/// with FF2 feeding back into the AND (combinational feedback onto itself).
Netlist reg_chain() {
  Netlist nl("chain");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  const NetId clk_net = nl.cell(clk).out;
  nl.clocks() = single_phase_spec(1000, clk_net);
  const CellId in = nl.add_input("in");

  const NetId q0 = nl.add_net("q0");
  nl.add_cell(CellKind::kDff, "ff0", {nl.cell(in).out, clk_net}, q0,
              Phase::kClk);
  const CellId inv = nl.add_gate(CellKind::kInv, "n1", {q0});
  const NetId q1 = nl.add_net("q1");
  nl.add_cell(CellKind::kDff, "ff1", {nl.cell(inv).out, clk_net}, q1,
              Phase::kClk);
  const NetId q2 = nl.add_net("q2");
  const CellId a = nl.add_gate(CellKind::kAnd2, "a1", {q1, q2});
  nl.add_cell(CellKind::kDff, "ff2", {nl.cell(a).out, clk_net}, q2,
              Phase::kClk);
  nl.add_output("out", q2);
  return nl;
}

TEST(Netlist, JournalDrainsSortedDedupedAndClears) {
  Netlist nl("j");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  const CellId a = nl.add_input("a");
  nl.enable_journal();
  EXPECT_TRUE(nl.take_touched().empty());

  const CellId ff = nl.add_gate(CellKind::kDff, "ff",
                                {nl.cell(a).out, nl.cell(clk).out},
                                Phase::kClk);
  nl.replace_input(ff, 0, nl.cell(a).out);  // re-touches the same ids
  const TouchedSet touched = nl.take_touched();
  EXPECT_FALSE(touched.empty());
  for (std::size_t i = 1; i < touched.cells.size(); ++i) {
    EXPECT_LT(touched.cells[i - 1].value(), touched.cells[i].value());
  }
  for (std::size_t i = 1; i < touched.nets.size(); ++i) {
    EXPECT_LT(touched.nets[i - 1].value(), touched.nets[i].value());
  }
  // Draining clears the recording; journaling stays enabled.
  EXPECT_TRUE(nl.take_touched().empty());
  EXPECT_TRUE(nl.journal_enabled());
}

TEST(Netlist, ResetMetadataValidatesAndRoundTrips) {
  Netlist nl("r");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  const CellId d = nl.add_input("d");
  const CellId rst = nl.add_input("rst_n");
  const CellId ff = nl.add_gate(CellKind::kDff, "ff",
                                {nl.cell(d).out, nl.cell(clk).out},
                                Phase::kClk);
  const CellId inv = nl.add_gate(CellKind::kInv, "i", {nl.cell(d).out});

  EXPECT_THROW(nl.declare_reset_root(ff, true, 0), Error);  // not a kInput
  nl.declare_reset_root(rst, /*active_low=*/true, /*release_order=*/0);
  EXPECT_THROW(nl.declare_reset_root(rst, true, 1), Error);  // duplicate
  EXPECT_THROW(nl.set_reset(inv, nl.cell(rst).out), Error);  // not a reg

  EXPECT_FALSE(nl.reset_of(ff).valid());
  nl.set_reset(ff, nl.cell(rst).out);
  EXPECT_EQ(nl.reset_of(ff).value(), nl.cell(rst).out.value());
  ASSERT_EQ(nl.reset_roots().size(), 1u);
  EXPECT_TRUE(nl.reset_roots()[0].active_low);
  EXPECT_EQ(nl.reset_roots()[0].release_order, 0);
}

TEST(Traverse, LevelizeOrdersCombCells) {
  Netlist nl = small_comb();
  const Levelization lev = levelize(nl);
  ASSERT_EQ(lev.comb_order.size(), 2u);
  // AND (level 1) before INV (level 2).
  EXPECT_EQ(nl.cell(lev.comb_order[0]).kind, CellKind::kAnd2);
  EXPECT_EQ(nl.cell(lev.comb_order[1]).kind, CellKind::kInv);
  EXPECT_EQ(lev.max_level, 2);
}

TEST(Traverse, LevelizeDetectsCombCycle) {
  Netlist nl("cyc");
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  nl.add_cell(CellKind::kInv, "i1", {x}, y);
  nl.add_cell(CellKind::kInv, "i2", {y}, x);
  EXPECT_THROW(levelize(nl), Error);
}

TEST(Traverse, LevelizeTreatsRegistersAsBarriers) {
  Netlist nl = reg_chain();
  EXPECT_NO_THROW(levelize(nl));  // FF2 feedback loop is not a comb cycle
}

TEST(Traverse, RegisterGraphEdges) {
  Netlist nl = reg_chain();
  const RegisterGraph g = build_register_graph(nl);
  ASSERT_EQ(g.regs.size(), 3u);
  // ff0 -> ff1, ff1 -> ff2, ff2 -> ff2 (self-loop through the AND).
  EXPECT_EQ(g.fanout[0], (std::vector<int>{1}));
  EXPECT_EQ(g.fanout[1], (std::vector<int>{2}));
  EXPECT_EQ(g.fanout[2], (std::vector<int>{2}));
  EXPECT_TRUE(g.has_self_loop(2));
  EXPECT_FALSE(g.has_self_loop(0));
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Traverse, RegisterGraphPiFanout) {
  Netlist nl = reg_chain();
  const RegisterGraph g = build_register_graph(nl);
  ASSERT_EQ(g.data_pis.size(), 1u);  // "in" only; clk excluded
  EXPECT_EQ(g.pi_fanout[0], (std::vector<int>{0}));
}

TEST(Traverse, PinFaninSources) {
  Netlist nl = reg_chain();
  const RegisterGraph g = build_register_graph(nl);
  // ff2's D pin is fed by ff1 and ff2 through the AND gate.
  const std::vector<CellId> sources =
      pin_fanin_sources(nl, g.regs[2], 0);
  EXPECT_EQ(sources.size(), 2u);
}

TEST(Traverse, IcgEnableSources) {
  Netlist nl("icg");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  const NetId clk_net = nl.cell(clk).out;
  nl.clocks() = single_phase_spec(1000, clk_net);
  const CellId en = nl.add_input("en");
  const NetId q = nl.add_net("q");
  const NetId gclk = nl.add_net("gclk");
  nl.add_cell(CellKind::kIcg, "cg", {nl.cell(en).out, clk_net}, gclk,
              Phase::kClk);
  nl.add_cell(CellKind::kDff, "ff", {nl.cell(en).out, gclk}, q, Phase::kClk);
  nl.add_output("out", q);

  const auto sources = icg_enable_sources(nl);
  ASSERT_EQ(sources.size(), 1u);
  const auto& src = sources.begin()->second;
  ASSERT_EQ(src.size(), 1u);
  EXPECT_EQ(nl.cell(src[0]).kind, CellKind::kInput);
}

}  // namespace
}  // namespace tp
