// Exhaustive checks of the cell-kind metadata and boolean semantics that
// everything else (simulation, timing, Verilog I/O) relies on.
#include <gtest/gtest.h>

#include "src/netlist/cell_kind.hpp"
#include "src/util/log.hpp"

namespace tp {
namespace {

TEST(CellKind, TruthTablesMatchDefinitions) {
  for (int mask = 0; mask < 8; ++mask) {
    const bool a = mask & 1, b = mask & 2, c = mask & 4;
    const bool in2[] = {a, b};
    const bool in3[] = {a, b, c};
    EXPECT_EQ(eval_comb(CellKind::kBuf, {in2, 1}), a);
    EXPECT_EQ(eval_comb(CellKind::kInv, {in2, 1}), !a);
    EXPECT_EQ(eval_comb(CellKind::kAnd2, {in2, 2}), a && b);
    EXPECT_EQ(eval_comb(CellKind::kOr2, {in2, 2}), a || b);
    EXPECT_EQ(eval_comb(CellKind::kNand2, {in2, 2}), !(a && b));
    EXPECT_EQ(eval_comb(CellKind::kNor2, {in2, 2}), !(a || b));
    EXPECT_EQ(eval_comb(CellKind::kXor2, {in2, 2}), a != b);
    EXPECT_EQ(eval_comb(CellKind::kXnor2, {in2, 2}), a == b);
    EXPECT_EQ(eval_comb(CellKind::kAnd3, {in3, 3}), a && b && c);
    EXPECT_EQ(eval_comb(CellKind::kOr3, {in3, 3}), a || b || c);
    EXPECT_EQ(eval_comb(CellKind::kNand3, {in3, 3}), !(a && b && c));
    EXPECT_EQ(eval_comb(CellKind::kNor3, {in3, 3}), !(a || b || c));
    EXPECT_EQ(eval_comb(CellKind::kMux2, {in3, 3}), c ? b : a);
    EXPECT_EQ(eval_comb(CellKind::kAoi21, {in3, 3}), !((a && b) || c));
    EXPECT_EQ(eval_comb(CellKind::kOai21, {in3, 3}), !((a || b) && c));
    EXPECT_EQ(eval_comb(CellKind::kMaj3, {in3, 3}),
              (a && b) || (a && c) || (b && c));
    EXPECT_EQ(eval_comb(CellKind::kIcgNoLatch, {in2, 2}), a && b);
    EXPECT_EQ(eval_comb(CellKind::kClkBuf, {in2, 1}), a);
    EXPECT_EQ(eval_comb(CellKind::kClkInv, {in2, 1}), !a);
  }
}

TEST(CellKind, MetadataIsConsistent) {
  for (int k = 0; k < kNumCellKinds; ++k) {
    const auto kind = static_cast<CellKind>(k);
    // Kind names are unique and non-empty.
    EXPECT_FALSE(cell_kind_name(kind).empty());
    for (int j = 0; j < k; ++j) {
      EXPECT_NE(cell_kind_name(kind),
                cell_kind_name(static_cast<CellKind>(j)));
    }
    // Clock pins are valid input positions.
    const int ck = clock_pin(kind);
    if (ck >= 0) {
      EXPECT_LT(ck, num_inputs(kind)) << cell_kind_name(kind);
    }
    // Registers and clock cells all have a clock pin.
    if (is_register(kind) || is_clock_cell(kind)) {
      EXPECT_GE(ck, 0) << cell_kind_name(kind);
    }
    // No kind is both a register and combinational.
    EXPECT_FALSE(is_register(kind) && is_combinational(kind))
        << cell_kind_name(kind);
    // Flip-flops and latches are registers.
    if (is_flip_flop(kind) || is_latch(kind)) {
      EXPECT_TRUE(is_register(kind)) << cell_kind_name(kind);
    }
    // ICGs are clock cells.
    if (is_icg(kind)) {
      EXPECT_TRUE(is_clock_cell(kind));
    }
    // Everything except kOutput drives a net.
    EXPECT_EQ(has_output(kind), kind != CellKind::kOutput);
  }
}

TEST(CellKind, EvalRejectsSequentialKinds) {
  const bool ins[3] = {false, false, false};
  EXPECT_THROW(eval_comb(CellKind::kDff, {ins, 2}), Error);
  EXPECT_THROW(eval_comb(CellKind::kLatchH, {ins, 2}), Error);
  EXPECT_THROW(eval_comb(CellKind::kIcg, {ins, 2}), Error);
}

}  // namespace
}  // namespace tp
