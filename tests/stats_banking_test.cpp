#include <gtest/gtest.h>

#include <sstream>

#include "src/netlist/stats.hpp"
#include "src/place/placer.hpp"
#include "src/power/banking.hpp"
#include "src/sim/stimulus.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/transform/convert.hpp"
#include "tests/test_circuits.hpp"

namespace tp {
namespace {

const CellLibrary& lib() { return CellLibrary::nominal_28nm(); }

TEST(Stats, CountsMatchNetlist) {
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 20;
  spec.num_gates = 60;
  spec.enable_fraction = 0.5;
  Netlist nl = testing::random_ff_circuit(spec);
  infer_clock_gating(nl, {.style = CgStyle::kGated, .min_icg_group = 1});
  const NetlistStats stats = compute_stats(nl);
  EXPECT_EQ(stats.registers, 20);
  EXPECT_EQ(stats.live_cells, static_cast<int>(nl.live_cells().size()));
  EXPECT_EQ(stats.count(CellKind::kDffEn), 0);
  EXPECT_GT(stats.count(CellKind::kIcg), 0);
  EXPECT_GT(stats.max_logic_depth, 0);
  EXPECT_GT(stats.avg_fanout, 0);
  EXPECT_GE(stats.max_fanout, 1);
  EXPECT_GT(stats.ff_graph_edges, 0);
}

TEST(Stats, PhaseMixAfterConversion) {
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 20;
  Netlist ff = testing::random_ff_circuit(spec);
  infer_clock_gating(ff);
  const ThreePhaseResult r = to_three_phase(ff);
  const NetlistStats stats = compute_stats(r.netlist);
  const int p1 =
      stats.registers_by_phase[static_cast<std::size_t>(Phase::kP1)];
  const int p2 =
      stats.registers_by_phase[static_cast<std::size_t>(Phase::kP2)];
  const int p3 =
      stats.registers_by_phase[static_cast<std::size_t>(Phase::kP3)];
  EXPECT_EQ(p1 + p2 + p3, stats.registers);
  EXPECT_EQ(p2, r.inserted_p2);
  const std::string text = format_stats(stats);
  EXPECT_NE(text.find("p2="), std::string::npos);
}

TEST(Stats, DotOutputsAreWellFormed) {
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 6;
  spec.num_gates = 12;
  Netlist nl = testing::random_ff_circuit(spec);
  infer_clock_gating(nl);
  std::ostringstream full, regs;
  write_dot(nl, full);
  write_register_graph_dot(nl, regs);
  for (const std::string& text : {full.str(), regs.str()}) {
    EXPECT_EQ(text.find("digraph"), 0u);
    EXPECT_EQ(text.back(), '\n');
    EXPECT_NE(text.find("}"), std::string::npos);
  }
  // One register node per register in the register-graph view.
  std::size_t boxes = 0, from = 0;
  while ((from = regs.str().find("shape=box", from)) != std::string::npos) {
    ++boxes;
    from += 9;
  }
  EXPECT_EQ(boxes, nl.registers().size());
}

TEST(Banking, FindsBanksOnConvertedDesign) {
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 40;
  spec.num_gates = 80;
  Netlist ff = testing::random_ff_circuit(spec);
  infer_clock_gating(ff);
  ThreePhaseResult r = to_three_phase(ff);
  const Placement placement = place(r.netlist, lib());
  Rng rng(3);
  SimOptions opt;
  opt.snapshot_event = 1;
  Simulator sim(r.netlist, opt);
  run_stream(sim, random_stimulus(r.netlist.data_inputs().size(), 48, rng),
             8);
  const BankingReport report =
      analyze_banking(r.netlist, lib(), placement, sim.stats());
  EXPECT_GT(report.candidate_latches, 0);
  EXPECT_GE(report.banked_latches, 0);
  EXPECT_LE(report.clock_power_after_mw, report.clock_power_before_mw);
  EXPECT_GE(report.saving_pct(), 0.0);
  int by_size = 0;
  for (std::size_t bits = 2; bits < report.banks_by_size.size(); ++bits) {
    by_size += report.banks_by_size[bits];
  }
  EXPECT_EQ(by_size, report.banks);
}

TEST(Banking, TightRadiusBanksLess) {
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 40;
  spec.num_gates = 80;
  Netlist ff = testing::random_ff_circuit(spec);
  infer_clock_gating(ff);
  ThreePhaseResult r = to_three_phase(ff);
  const Placement placement = place(r.netlist, lib());
  Rng rng(3);
  SimOptions opt;
  opt.snapshot_event = 1;
  Simulator sim(r.netlist, opt);
  run_stream(sim, random_stimulus(r.netlist.data_inputs().size(), 48, rng),
             8);
  BankingOptions wide;
  wide.cluster_radius_um = 50.0;
  BankingOptions tight;
  tight.cluster_radius_um = 0.5;
  const BankingReport a =
      analyze_banking(r.netlist, lib(), placement, sim.stats(), wide);
  const BankingReport b =
      analyze_banking(r.netlist, lib(), placement, sim.stats(), tight);
  EXPECT_GE(a.banked_latches, b.banked_latches);
  EXPECT_GE(a.saving_pct(), b.saving_pct());
}

TEST(Banking, GatedClocksWeightByActivity) {
  // A bank on a never-enabled gated clock contributes nothing to either
  // side of the comparison.
  Netlist nl("gated");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(1000, nl.cell(clk).out);
  const CellId d = nl.add_input("d");
  const NetId zero = nl.add_net("zero");
  nl.add_cell(CellKind::kConst0, "c0", {}, zero);
  const NetId gclk = nl.add_net("gclk");
  nl.add_cell(CellKind::kIcg, "cg", {zero, nl.cell(clk).out}, gclk,
              Phase::kClk);
  for (int i = 0; i < 4; ++i) {
    const NetId q = nl.add_net("q" + std::to_string(i));
    nl.add_cell(CellKind::kDff, "ff" + std::to_string(i),
                {nl.cell(d).out, gclk}, q, Phase::kClk);
    nl.add_output("o" + std::to_string(i), q);
  }
  const Placement placement = place(nl, lib());
  Simulator sim(nl);
  Rng rng(1);
  run_stream(sim, random_stimulus(1, 32, rng), 4);
  const BankingReport report =
      analyze_banking(nl, lib(), placement, sim.stats());
  EXPECT_DOUBLE_EQ(report.clock_power_before_mw, 0.0);
  EXPECT_DOUBLE_EQ(report.clock_power_after_mw, 0.0);
}

}  // namespace
}  // namespace tp
