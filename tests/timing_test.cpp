#include <gtest/gtest.h>

#include "src/timing/incremental.hpp"
#include "src/timing/sta.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/transform/convert.hpp"
#include "tests/test_circuits.hpp"

namespace tp {
namespace {

const CellLibrary& lib() { return CellLibrary::nominal_28nm(); }

/// PI -> chain of `depth` INV -> FF -> PO at the given period.
Netlist inv_chain_ff(int depth, std::int64_t period_ps) {
  Netlist nl("chain");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(period_ps, nl.cell(clk).out);
  const CellId in = nl.add_input("in");
  NetId d = nl.cell(in).out;
  for (int i = 0; i < depth; ++i) {
    d = nl.cell(nl.add_gate(CellKind::kInv, "i" + std::to_string(i), {d}))
            .out;
  }
  const NetId q = nl.add_net("q");
  nl.add_cell(CellKind::kDff, "ff", {d, nl.cell(clk).out}, q, Phase::kClk);
  // Feedback stage: q through more inverters back to a second FF.
  NetId d2 = q;
  for (int i = 0; i < depth; ++i) {
    d2 = nl.cell(nl.add_gate(CellKind::kInv, "j" + std::to_string(i), {d2}))
             .out;
  }
  const NetId q2 = nl.add_net("q2");
  nl.add_cell(CellKind::kDff, "ff2", {d2, nl.cell(clk).out}, q2,
              Phase::kClk);
  nl.add_output("out", q2);
  return nl;
}

TEST(Sta, ShortChainMeetsLongPeriod) {
  const Netlist nl = inv_chain_ff(4, 2000);
  const TimingReport r = check_timing(nl, lib());
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.setup_ok);
  EXPECT_TRUE(r.hold_ok);
  EXPECT_GT(r.worst_setup_slack_ps, 0);
}

TEST(Sta, LongChainFailsShortPeriod) {
  // 40 inverters at ~20 ps each cannot fit a 300 ps cycle.
  const Netlist nl = inv_chain_ff(40, 300);
  const TimingReport r = check_timing(nl, lib());
  EXPECT_FALSE(r.setup_ok);
  EXPECT_LT(r.worst_setup_slack_ps, 0);
  EXPECT_EQ(r.worst_setup_point, "ff2");
}

TEST(Sta, MinPeriodBracketsChainDelay) {
  const Netlist nl = inv_chain_ff(20, 4000);
  const MinPeriodResult r = find_min_period(nl, lib(), 50, 4000);
  ASSERT_TRUE(r.feasible);
  const std::int64_t p = r.period_ps;
  EXPECT_GT(p, 300);    // 20 inverters + clk->q + setup is well over 300
  EXPECT_LT(p, 2500);   // but comfortably under 2.5 ns
  // The returned period passes; slightly less must fail.
  {
    Netlist faster = nl;
    faster.clocks() = single_phase_spec(p, faster.clocks().phases[0].root);
    EXPECT_TRUE(check_timing(faster, lib()).setup_ok);
    faster.clocks() =
        single_phase_spec(p * 9 / 10, faster.clocks().phases[0].root);
    EXPECT_FALSE(check_timing(faster, lib()).setup_ok);
  }
}

TEST(Sta, HoldViolationDetectedAndRepaired) {
  // FF -> FF direct with huge uncertainty: must fail, then repair.
  Netlist nl("hold");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(1000, nl.cell(clk).out);
  const CellId in = nl.add_input("in");
  const NetId q1 = nl.add_net("q1");
  nl.add_cell(CellKind::kDff, "ffa", {nl.cell(in).out, nl.cell(clk).out},
              q1, Phase::kClk);
  const NetId q2 = nl.add_net("q2");
  nl.add_cell(CellKind::kDff, "ffb", {q1, nl.cell(clk).out}, q2,
              Phase::kClk);
  nl.add_output("o", q2);

  TimingOptions options;
  options.hold_uncertainty_ps = 150;  // > DFF clk->q intrinsic (84)
  EXPECT_FALSE(check_timing(nl, lib(), options).hold_ok);
  const HoldRepairResult repair = repair_hold(nl, lib(), options);
  EXPECT_GT(repair.buffers_inserted, 0);
  EXPECT_TRUE(check_timing(nl, lib(), options).hold_ok);
  nl.validate();
}

TEST(Sta, ThreePhaseTimeBorrowingBeatsHardEdges) {
  // A latch pipeline can pass a stage that exceeds Tc/k budgets as long as
  // the borrowed time is repaid; the equivalent FF design at the same
  // period must fail when one stage exceeds Tc.
  const std::int64_t period = 700;
  // FF version: one stage with 24 inverters (~480 ps + clk2q + setup ~ 600)
  // passes; 40 inverters (~800 ps) fails.
  EXPECT_TRUE(check_timing(inv_chain_ff(24, period), lib()).setup_ok);
  EXPECT_FALSE(check_timing(inv_chain_ff(40, period), lib()).setup_ok);
}

TEST(Sta, ConvertedDesignMeetsC3) {
  // C3: the 3-phase conversion keeps the original cycle time.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    testing::RandomCircuitSpec spec;
    spec.seed = seed;
    spec.num_ffs = 24;
    spec.num_gates = 80;
    spec.period_ps = 3000;
    Netlist ff = testing::random_ff_circuit(spec);
    infer_clock_gating(ff);
    ASSERT_TRUE(check_timing(ff, lib()).setup_ok) << "seed " << seed;
    ThreePhaseResult r = to_three_phase(ff);
    const TimingReport t = check_timing(r.netlist, lib());
    EXPECT_TRUE(t.converged) << "seed " << seed;
    EXPECT_TRUE(t.setup_ok)
        << "seed " << seed << " slack " << t.worst_setup_slack_ps << " at "
        << t.worst_setup_point;
    EXPECT_TRUE(t.hold_ok) << "seed " << seed;
  }
}

TEST(Sta, MasterSlaveMeetsTiming) {
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 24;
  spec.num_gates = 80;
  spec.period_ps = 3000;
  Netlist ff = testing::random_ff_circuit(spec);
  infer_clock_gating(ff);
  const Netlist ms = to_master_slave(ff);
  const TimingReport t = check_timing(ms, lib());
  EXPECT_TRUE(t.setup_ok) << t.worst_setup_point;
  EXPECT_TRUE(t.hold_ok) << t.worst_hold_point;
}

}  // namespace
}  // namespace tp
