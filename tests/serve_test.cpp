// Tests for the conversion-as-a-service stack: shared hashing, the JSON
// reader/writer, the canonical netlist hash, the content-addressed result
// cache (LRU + persistence + corruption rejection), the line protocol,
// and the server wave engine's byte-identity and job-file contracts.
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "src/circuits/benchmark.hpp"
#include "src/flow/serialize.hpp"
#include "src/netlist/hash.hpp"
#include "src/serve/cache.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/server.hpp"
#include "src/util/hash.hpp"
#include "src/util/json.hpp"

namespace fs = std::filesystem;
using namespace tp;
using namespace tp::serve;

namespace {

/// Fresh per-test scratch directory under the gtest temp root.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

}  // namespace

// ---------------------------------------------------------------------------
// util/hash: the shared primitives everything keys on.

TEST(Hash, Fnv1aChainsAcrossCalls) {
  EXPECT_EQ(util::fnv1a("netlist"),
            util::fnv1a("list", util::fnv1a("net")));
  EXPECT_NE(util::fnv1a("ab"), util::fnv1a("ba"));
  EXPECT_EQ(util::fnv1a(""), util::kFnvOffset);
}

TEST(Hash, CombineIsOrderDependent) {
  const std::uint64_t a = 0x1234, b = 0x5678;
  EXPECT_NE(util::hash_combine(util::hash_combine(1, a), b),
            util::hash_combine(util::hash_combine(1, b), a));
  EXPECT_NE(util::splitmix64(0), 0u);
}

TEST(Hash, StreamHashSeesRowShape) {
  EXPECT_NE(util::stream_hash({{1, 2}, {3}}),
            util::stream_hash({{1}, {2, 3}}));
  EXPECT_EQ(util::stream_hash({{1, 2}, {3}}),
            util::stream_hash({{1, 2}, {3}}));
}

// ---------------------------------------------------------------------------
// netlist_hash: canonical content addressing of a design.

TEST(NetlistHash, InsertionOrderInvariant) {
  // The same two-gate design built in two different cell orders.
  const auto build = [](bool flipped) {
    Netlist n(flipped ? "other-name" : "design");  // name is not content
    const NetId a = n.cell(n.add_input("a")).out;
    const NetId b = n.cell(n.add_input("b")).out;
    NetId x = n.add_net("x");
    NetId y = n.add_net("y");
    if (flipped) {
      n.add_cell(CellKind::kOr2, "g2", {a, b}, y);
      n.add_cell(CellKind::kAnd2, "g1", {a, b}, x);
    } else {
      n.add_cell(CellKind::kAnd2, "g1", {a, b}, x);
      n.add_cell(CellKind::kOr2, "g2", {a, b}, y);
    }
    n.add_output("o1", x);
    n.add_output("o2", y);
    return n;
  };
  Netlist first = build(false);
  Netlist second = build(true);
  EXPECT_EQ(netlist_hash(first), netlist_hash(second));
}

TEST(NetlistHash, StructureChangesTheHash) {
  const circuits::Benchmark bench = circuits::make_benchmark("s1196");
  const std::uint64_t base = netlist_hash(bench.netlist);
  EXPECT_EQ(base, netlist_hash(bench.netlist));  // stable
  EXPECT_NE(base,
            netlist_hash(circuits::make_benchmark("s1238").netlist));

  Netlist copy = bench.netlist;
  const std::vector<CellId> regs = copy.registers();
  ASSERT_FALSE(regs.empty());
  copy.set_init(regs.front(), !copy.cell(regs.front()).init);
  EXPECT_NE(base, netlist_hash(copy));
}

// ---------------------------------------------------------------------------
// util/json: reader robustness + writer determinism.

TEST(Json, ParsesNestedDocument) {
  util::Json doc;
  std::string error;
  ASSERT_TRUE(util::Json::parse(
      R"({"a":[1,2.5,-3],"s":"q\"A\n","b":true,"n":null,"o":{"k":7}})",
      &doc, &error))
      << error;
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("a")->items().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.find("a")->items()[1].as_number(), 2.5);
  EXPECT_EQ(doc.find("s")->as_string(), "q\"A\n");
  EXPECT_TRUE(doc.find("b")->as_bool());
  EXPECT_TRUE(doc.find("n")->is_null());
  EXPECT_EQ(doc.find("o")->get_u64("k", 0), 7u);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInputCleanly) {
  const char* bad[] = {
      "",        "{",        "{\"a\":}",   "[1,]", "tru",
      "\"open",  "{}extra",  "{\"a\" 1}",  "nan",  "{\"a\":1,}",
  };
  for (const char* text : bad) {
    util::Json doc;
    std::string error;
    EXPECT_FALSE(util::Json::parse(text, &doc, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(Json, RejectsAbsurdNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  util::Json doc;
  std::string error;
  EXPECT_FALSE(util::Json::parse(deep, &doc, &error));
}

TEST(Json, WriterRoundTripsExactly) {
  util::JsonWriter w;
  w.begin_object();
  w.key("d").value(0.1);
  w.key("u").value(std::uint64_t{18446744073709551615ULL});
  w.key("s").value("a\"b\\c\n");
  w.key("arr").begin_array().value(1).value(false).null().end_array();
  w.end_object();
  const std::string text = w.take();

  util::Json doc;
  std::string error;
  ASSERT_TRUE(util::Json::parse(text, &doc, &error)) << error;
  EXPECT_DOUBLE_EQ(doc.find("d")->as_number(), 0.1);
  EXPECT_EQ(doc.find("s")->as_string(), "a\"b\\c\n");

  util::JsonWriter again;
  again.begin_object();
  again.key("d").value(0.1);
  again.key("u").value(std::uint64_t{18446744073709551615ULL});
  again.key("s").value("a\"b\\c\n");
  again.key("arr").begin_array().value(1).value(false).null().end_array();
  again.end_object();
  EXPECT_EQ(text, again.take());  // same values, same bytes
}

// ---------------------------------------------------------------------------
// ResultCache: keying, LRU, persistence, corruption.

namespace {

CacheKey test_key(std::uint64_t seed) {
  CacheKey key;
  key.netlist_hash = 0xfeedULL;
  key.style = flow::DesignStyle::kThreePhase;
  key.options_hash = 0xbeefULL;
  key.workload = "paper-default";
  key.cycles = 96;
  key.seed = seed;
  key.lanes = 1;
  return key;
}

}  // namespace

TEST(Cache, KeyDigestCoversEveryField) {
  const CacheKey base = test_key(7);
  EXPECT_EQ(base.digest_hex(), test_key(7).digest_hex());
  EXPECT_EQ(base.digest_hex().size(), 32u);

  CacheKey k = base;
  k.netlist_hash ^= 1;
  EXPECT_NE(base.digest(), k.digest());
  k = base;
  k.style = flow::DesignStyle::kFlipFlop;
  EXPECT_NE(base.digest(), k.digest());
  k = base;
  k.options_hash ^= 1;
  EXPECT_NE(base.digest(), k.digest());
  k = base;
  k.workload = "coremark";
  EXPECT_NE(base.digest(), k.digest());
  k = base;
  k.cycles ^= 1;
  EXPECT_NE(base.digest(), k.digest());
  k = base;
  k.seed ^= 1;
  EXPECT_NE(base.digest(), k.digest());
  k = base;
  k.lanes ^= 1;
  EXPECT_NE(base.digest(), k.digest());
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  CacheOptions options;
  options.memory_entries = 2;
  ResultCache cache(options);
  cache.put(test_key(1), "one");
  cache.put(test_key(2), "two");
  ASSERT_TRUE(cache.get(test_key(1)).has_value());  // 1 now most recent
  cache.put(test_key(3), "three");                  // evicts 2
  EXPECT_EQ(cache.memory_size(), 2u);
  EXPECT_EQ(cache.get(test_key(1)).value_or(""), "one");
  EXPECT_EQ(cache.get(test_key(3)).value_or(""), "three");
  EXPECT_FALSE(cache.get(test_key(2)).has_value());  // no disk tier: gone
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Cache, DiskTierSurvivesRestartAndEviction) {
  const fs::path dir = scratch_dir("cache_persist");
  CacheOptions options;
  options.dir = dir.string();
  options.memory_entries = 1;
  {
    ResultCache cache(options);
    cache.put(test_key(1), "payload-one");
    cache.put(test_key(2), "payload-two");  // evicts 1, flushing it first
    EXPECT_EQ(cache.get(test_key(1)).value_or(""), "payload-one");
    EXPECT_GE(cache.stats().disk_hits, 1u);
  }  // destructor flushes the rest
  ResultCache reborn(options);
  EXPECT_EQ(reborn.get(test_key(1)).value_or(""), "payload-one");
  EXPECT_EQ(reborn.get(test_key(2)).value_or(""), "payload-two");
  EXPECT_EQ(reborn.stats().disk_hits, 2u);
  EXPECT_EQ(reborn.stats().misses, 0u);
  // Promoted once: a repeat is a memory hit, not a second disk read.
  EXPECT_EQ(reborn.get(test_key(2)).value_or(""), "payload-two");
  EXPECT_GE(reborn.stats().memory_hits, 1u);
}

TEST(Cache, RejectsCorruptAndTruncatedEntries) {
  const fs::path dir = scratch_dir("cache_corrupt");
  CacheOptions options;
  options.dir = dir.string();
  const std::string hex = test_key(5).digest_hex();
  {
    ResultCache cache(options);
    cache.put(test_key(5), "precious");
    cache.flush();
  }
  const fs::path file = dir / (hex + ".tpc");
  ASSERT_TRUE(fs::exists(file));

  {  // Truncate mid-payload.
    const std::string full = slurp(file);
    std::ofstream(file, std::ios::binary)
        << full.substr(0, full.size() - 3);
    ResultCache cache(options);
    EXPECT_FALSE(cache.get(test_key(5)).has_value());
    EXPECT_EQ(cache.stats().rejected, 1u);
    EXPECT_FALSE(fs::exists(file));  // deleted, will be recomputed
  }
  {  // Wrong magic.
    std::ofstream(file, std::ios::binary) << "NOTACACHE v9 garbage";
    ResultCache cache(options);
    EXPECT_FALSE(cache.get(test_key(5)).has_value());
    EXPECT_EQ(cache.stats().rejected, 1u);
    EXPECT_FALSE(fs::exists(file));
  }
}

// ---------------------------------------------------------------------------
// Protocol: round-trips and hostile input.

TEST(Protocol, RoundTripsEveryJobType) {
  const char* lines[] = {
      R"({"id":"c1","type":"convert","benchmark":"s5378","style":"ms",)"
      R"("preset":"fast","workload":"coremark","cycles":48,"seed":11,)"
      R"("lanes":4,"check_rules":true})",
      R"({"id":"p1","type":"power_eval","benchmark":"s1238"})",
      R"({"id":"l1","type":"lint","benchmark":"s1196","style":"3p",)"
      R"("preset":"fast","cycles":16,"check_analysis":true})",
      R"({"id":"m1","type":"matrix_sweep","benchmarks":["s1196","s1238"],)"
      R"("styles":["ff","3p"],"preset":"no-gating"})",
      R"({"id":"s1","type":"status"})",
      R"({"id":"d1","type":"shutdown"})",
  };
  for (const char* line : lines) {
    Request first, second;
    std::string error;
    ASSERT_TRUE(parse_request(line, &first, &error)) << line << ": " << error;
    const std::string wire = request_to_json(first);
    ASSERT_TRUE(parse_request(wire, &second, &error)) << wire << ": " << error;
    EXPECT_EQ(wire, request_to_json(second)) << line;  // fixed point
    EXPECT_EQ(first.id, second.id);
    EXPECT_EQ(first.type, second.type);
    EXPECT_EQ(first.benchmark, second.benchmark);
    EXPECT_EQ(first.style, second.style);
    EXPECT_EQ(first.benchmarks, second.benchmarks);
    EXPECT_EQ(first.styles, second.styles);
    EXPECT_EQ(first.spec.preset, second.spec.preset);
    EXPECT_EQ(first.spec.workload, second.spec.workload);
    EXPECT_EQ(first.spec.cycles, second.spec.cycles);
    EXPECT_EQ(first.spec.seed, second.spec.seed);
    EXPECT_EQ(first.spec.lanes, second.spec.lanes);
    EXPECT_EQ(first.spec.check_rules, second.spec.check_rules);
    EXPECT_EQ(first.spec.check_analysis, second.spec.check_analysis);
  }
}

TEST(Protocol, DefaultsApplyWhenFieldsOmitted) {
  Request req;
  std::string error;
  ASSERT_TRUE(parse_request(R"({"type":"convert","benchmark":"s1238"})",
                            &req, &error))
      << error;
  EXPECT_EQ(req.style, flow::DesignStyle::kThreePhase);
  EXPECT_EQ(req.spec.preset, "paper");
  EXPECT_EQ(req.spec.cycles, 96u);
  EXPECT_EQ(req.spec.seed, 7u);
  EXPECT_EQ(req.spec.lanes, 1u);

  ASSERT_TRUE(parse_request(R"({"type":"matrix_sweep"})", &req, &error));
  EXPECT_TRUE(req.benchmarks.empty());  // empty = every built-in
  ASSERT_EQ(req.styles.size(), 3u);     // ff/ms/3p default grid
}

TEST(Protocol, RejectsHostileRequestsWithRecoverableId) {
  const char* bad[] = {
      "not json at all",
      R"([1,2,3])",
      R"({"id":"x","type":"frobnicate"})",
      R"({"id":"x","type":"convert"})",                       // no benchmark
      R"({"id":"x","type":"convert","benchmark":"a","style":"zz"})",
      R"({"id":"x","type":"convert","benchmark":"a","lanes":65})",
      R"({"id":"x","type":"convert","benchmark":"a","cycles":0})",
      R"({"id":"x","type":"convert","benchmark":"a","preset":"??"})",
  };
  for (const char* line : bad) {
    Request req;
    std::string error;
    EXPECT_FALSE(parse_request(line, &req, &error)) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
  // The id survives a post-parse validation failure for correlation.
  Request req;
  std::string error;
  ASSERT_FALSE(parse_request(R"({"id":"x","type":"frobnicate"})", &req,
                             &error));
  EXPECT_EQ(req.id, "x");
}

// ---------------------------------------------------------------------------
// Server wave engine: cache keying across thread counts, byte identity,
// failure containment.

namespace {

constexpr const char* kConvertLine =
    R"({"id":"c","type":"convert","benchmark":"s1238","style":"3p",)"
    R"("preset":"fast","cycles":16})";

ServerOptions quick_options(std::size_t threads) {
  ServerOptions options;
  options.threads = threads;
  return options;
}

/// The response with its "cached" flag normalized away, so a hit and a
/// fresh computation can be compared byte-for-byte.
std::string normalize_cached(std::string line) {
  const std::string warm = "\"cached\":true";
  const std::size_t at = line.find(warm);
  if (at != std::string::npos) {
    line.replace(at, warm.size(), "\"cached\":false");
  }
  return line;
}

}  // namespace

TEST(Server, CacheHitIsByteIdenticalAcrossThreadCounts) {
  Server one(quick_options(1));
  Server four(quick_options(4));

  const Outcome cold_one = one.handle_line(kConvertLine);
  const Outcome cold_four = four.handle_line(kConvertLine);
  ASSERT_TRUE(cold_one.ok);
  EXPECT_FALSE(cold_one.cached);
  // Same computation on 1 and 4 threads: identical response bytes.
  EXPECT_EQ(cold_one.line, cold_four.line);

  const Outcome warm = four.handle_line(kConvertLine);
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cached);
  // The hit serves the same bytes the fresh run produced.
  EXPECT_EQ(normalize_cached(warm.line), normalize_cached(cold_four.line));
  EXPECT_EQ(four.counters().cache.memory_hits, 1u);
}

TEST(Server, PowerEvalSharesTheConvertCacheEntry) {
  Server server(quick_options(2));
  ASSERT_TRUE(server.handle_line(kConvertLine).ok);
  const Outcome power = server.handle_line(
      R"({"id":"p","type":"power_eval","benchmark":"s1238","style":"3p",)"
      R"("preset":"fast","cycles":16})");
  ASSERT_TRUE(power.ok);
  EXPECT_TRUE(power.cached);  // same computation, reduced payload
  EXPECT_NE(power.line.find("\"power_mw\""), std::string::npos);
  EXPECT_EQ(power.line.find("\"stream_hash\""), std::string::npos);
}

TEST(Server, LintJobSharesTheFullCheckConvertCacheEntry) {
  Server server(quick_options(2));
  // A convert with both check passes enabled computes the same wave a lint
  // job forces, so the lint answer must come straight from its cache entry.
  const Outcome convert = server.handle_line(
      R"({"id":"c","type":"convert","benchmark":"s1238","style":"3p",)"
      R"("preset":"fast","cycles":16,"check_rules":true,)"
      R"("check_analysis":true})");
  ASSERT_TRUE(convert.ok);
  const Outcome lint = server.handle_line(
      R"({"id":"l","type":"lint","benchmark":"s1238","style":"3p",)"
      R"("preset":"fast","cycles":16})");
  ASSERT_TRUE(lint.ok);
  EXPECT_TRUE(lint.cached);  // same computation, reduced payload
  EXPECT_NE(lint.line.find("\"lint_clean\":true"), std::string::npos)
      << lint.line;
  EXPECT_NE(lint.line.find("\"lint_stages\""), std::string::npos);
  // Identity fields survive the reduction; heavyweight ones do not.
  EXPECT_NE(lint.line.find("\"benchmark\":\"s1238\""), std::string::npos);
  EXPECT_EQ(lint.line.find("\"stream_hash\""), std::string::npos);
  EXPECT_EQ(lint.line.find("\"power_mw\""), std::string::npos);
}

TEST(Server, SweepDedupesAndFailsPerCell) {
  Server server(quick_options(2));
  const Outcome out = server.handle_line(
      R"({"id":"m","type":"matrix_sweep",)"
      R"("benchmarks":["s1238","s1238","no-such-circuit"],)"
      R"("styles":["3p"],"preset":"fast","cycles":16})");
  EXPECT_TRUE(out.ok);  // the sweep answers even with a failing cell
  util::Json doc;
  std::string error;
  ASSERT_TRUE(util::Json::parse(out.line, &doc, &error)) << error;
  const util::Json* payload = doc.find("payload");
  ASSERT_NE(payload, nullptr);
  ASSERT_EQ(payload->items().size(), 3u);
  EXPECT_TRUE(payload->items()[0].get_bool("ok", false));
  EXPECT_TRUE(payload->items()[1].get_bool("ok", false));
  // Duplicate cells serve identical payload objects.
  EXPECT_EQ(payload->items()[0].get_u64("registers", 0),
            payload->items()[1].get_u64("registers", 1));
  EXPECT_FALSE(payload->items()[2].get_bool("ok", true));
  EXPECT_NE(payload->items()[2].get_string("error", "").find(
                "no-such-circuit"),
            std::string::npos);
  EXPECT_EQ(server.counters().cells_deduped, 1u);
  EXPECT_EQ(server.counters().cells_failed, 1u);
}

TEST(Server, MalformedLineYieldsErrorResponse) {
  Server server(quick_options(1));
  const Outcome out = server.handle_line("{{{ definitely not json");
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.line.find("\"ok\":false"), std::string::npos);
  EXPECT_EQ(server.counters().malformed, 1u);
}

TEST(Server, StatusReportsCounters) {
  Server server(quick_options(1));
  ASSERT_TRUE(server.handle_line(kConvertLine).ok);
  const Outcome status = server.handle_line(R"({"id":"s","type":"status"})");
  ASSERT_TRUE(status.ok);
  util::Json doc;
  std::string error;
  ASSERT_TRUE(util::Json::parse(status.line, &doc, &error)) << error;
  const util::Json* body = doc.find("status");
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->get_u64("completed", 0), 1u);
  ASSERT_NE(body->find("cells"), nullptr);
  EXPECT_EQ(body->find("cells")->get_u64("computed", 0), 1u);
}

// ---------------------------------------------------------------------------
// Transport loop: job files in, results out, shutdown and signal exits.

TEST(Server, JobFileIntakeEndToEnd) {
  const fs::path jobs = scratch_dir("serve_jobs");
  const fs::path cache = scratch_dir("serve_jobs_cache");
  ServerOptions options;
  options.threads = 2;
  options.drop_dir = jobs.string();
  options.cache.dir = cache.string();
  options.poll_ms = 10;
  Server server(options);
  std::thread daemon([&server] { EXPECT_EQ(server.serve(), 0); });

  // Atomic drop: write elsewhere, rename into place.
  const auto drop = [&](const std::string& stem, const std::string& text) {
    const fs::path tmp = jobs / (stem + ".tmp");
    std::ofstream(tmp, std::ios::binary) << text << "\n";
    fs::rename(tmp, jobs / (stem + ".job"));
  };
  drop("a", kConvertLine);
  drop("bad", "not json");
  for (int i = 0; i < 500 && !fs::exists(jobs / "a.result"); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  drop("quit", R"({"id":"q","type":"shutdown"})");
  daemon.join();

  ASSERT_TRUE(fs::exists(jobs / "a.result"));
  const std::string answer = slurp(jobs / "a.result");
  EXPECT_NE(answer.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(answer.find("\"registers\""), std::string::npos);
  ASSERT_TRUE(fs::exists(jobs / "bad.result"));
  EXPECT_NE(slurp(jobs / "bad.result").find("\"ok\":false"),
            std::string::npos);
  EXPECT_FALSE(fs::exists(jobs / "a.job"));  // consumed
  EXPECT_TRUE(server.shutdown_requested());
  // The computed result was flushed to the persistent tier.
  EXPECT_FALSE(fs::is_empty(cache));
}

TEST(Server, StopFlagAbortsServeWith130) {
  const fs::path jobs = scratch_dir("serve_stop");
  std::atomic<bool> stop{false};
  ServerOptions options;
  options.threads = 1;
  options.drop_dir = jobs.string();
  options.poll_ms = 10;
  options.stop = &stop;
  Server server(options);
  std::thread daemon([&server] { EXPECT_EQ(server.serve(), 130); });
  stop.store(true);
  daemon.join();
  EXPECT_FALSE(server.shutdown_requested());
}
