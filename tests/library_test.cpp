#include <gtest/gtest.h>

#include "src/library/cell_library.hpp"

namespace tp {
namespace {

const CellLibrary& lib() { return CellLibrary::nominal_28nm(); }

TEST(CellLibrary, LatchIsSmallerThanFlipFlop) {
  // The premise of the paper: latches are smaller, with lower clock-pin
  // capacitance and lower internal clock energy than flip-flops.
  const CellParams& ff = lib().params(CellKind::kDff);
  const CellParams& lat = lib().params(CellKind::kLatchH);
  EXPECT_LT(lat.area_um2, 0.7 * ff.area_um2);
  EXPECT_LT(lat.clock_cap_ff, ff.clock_cap_ff);
  EXPECT_LT(lat.clock_energy_fj, ff.clock_energy_fj);
  EXPECT_LT(lat.leakage_nw, ff.leakage_nw);
}

TEST(CellLibrary, LatchPairTracksFlipFlopCost) {
  // A flip-flop is internally a master-slave pair plus local clock
  // inverters: two latches must cost more area than one FF, and the pair's
  // clock cost must land within ~25% of the FF's (the FF carries the
  // inverter overhead).
  const CellParams& ff = lib().params(CellKind::kDff);
  const CellParams& lat = lib().params(CellKind::kLatchH);
  EXPECT_GT(2 * lat.area_um2, ff.area_um2);
  EXPECT_GT(2 * lat.clock_energy_fj, 0.75 * ff.clock_energy_fj);
  EXPECT_LT(2 * lat.clock_energy_fj, 1.25 * ff.clock_energy_fj);
  EXPECT_GT(2 * lat.clock_cap_ff, 0.75 * ff.clock_cap_ff);
}

TEST(CellLibrary, ModifiedClockGatesAreCheaper) {
  // Fig. 3: M1 removes the inverter, M2 removes the latch.
  const CellParams& icg = lib().params(CellKind::kIcg);
  const CellParams& m1 = lib().params(CellKind::kIcgM1);
  const CellParams& m2 = lib().params(CellKind::kIcgNoLatch);
  EXPECT_LT(m1.area_um2, icg.area_um2);
  EXPECT_LT(m2.area_um2, m1.area_um2);
  EXPECT_LT(m1.clock_energy_fj, icg.clock_energy_fj);
  EXPECT_LT(m2.clock_energy_fj, m1.clock_energy_fj);
}

TEST(CellLibrary, DelayGrowsWithLoad) {
  EXPECT_LT(lib().delay_ps(CellKind::kNand2, 1.0),
            lib().delay_ps(CellKind::kNand2, 10.0));
  EXPECT_GT(lib().delay_ps(CellKind::kXor2, 0.0), 0.0);
}

TEST(CellLibrary, PinCapDistinguishesClockPin) {
  const double d_cap = lib().pin_cap_ff(CellKind::kDff, 0);
  const double ck_cap = lib().pin_cap_ff(CellKind::kDff, 1);
  EXPECT_EQ(d_cap, lib().params(CellKind::kDff).input_cap_ff);
  EXPECT_EQ(ck_cap, lib().params(CellKind::kDff).clock_cap_ff);
}

TEST(CellLibrary, SwitchEnergyQuadraticInVoltage) {
  EXPECT_NEAR(lib().net_switch_energy_fj(10.0), 0.5 * 10.0 * 0.9 * 0.9,
              1e-12);
}

TEST(CellLibrary, AreaAndLoadOfSmallNetlist) {
  Netlist nl("t");
  const CellId a = nl.add_input("a");
  const CellId g = nl.add_gate(CellKind::kInv, "g", {nl.cell(a).out});
  nl.add_output("o", nl.cell(g).out);
  EXPECT_NEAR(lib().total_area_um2(nl),
              lib().params(CellKind::kInv).area_um2, 1e-9);
  // Input net drives one INV pin plus a wire segment.
  const double load = lib().net_load_ff(nl, nl.cell(a).out);
  EXPECT_NEAR(load, lib().params(CellKind::kInv).input_cap_ff +
                        lib().default_wire_cap_per_fanout_ff(),
              1e-9);
}

TEST(CellLibrary, AllRealCellsHaveAreaAndCap) {
  for (int k = 0; k < kNumCellKinds; ++k) {
    const auto kind = static_cast<CellKind>(k);
    if (kind == CellKind::kInput || kind == CellKind::kOutput ||
        kind == CellKind::kConst0 || kind == CellKind::kConst1) {
      continue;
    }
    const CellParams& p = lib().params(kind);
    EXPECT_GT(p.area_um2, 0.0) << cell_kind_name(kind);
    EXPECT_GT(p.input_cap_ff, 0.0) << cell_kind_name(kind);
    EXPECT_GT(p.leakage_nw, 0.0) << cell_kind_name(kind);
  }
}

TEST(CellLibrary, RegistersHaveSetupHold) {
  for (const CellKind kind : {CellKind::kDff, CellKind::kDffEn,
                              CellKind::kLatchH, CellKind::kLatchL}) {
    EXPECT_GT(lib().params(kind).setup_ps, 0.0) << cell_kind_name(kind);
    EXPECT_GT(lib().params(kind).hold_ps, 0.0) << cell_kind_name(kind);
  }
}

}  // namespace
}  // namespace tp
