// Targeted tests for the gated-clock trace-back of Sec. IV-B: when a clock
// gating group's registers land on both p1 and p3, the ICG is duplicated
// and each copy is driven by its phase root; clock buffers in the chain are
// traversed transparently.
#include <gtest/gtest.h>

#include "src/sim/stimulus.hpp"
#include "src/transform/convert.hpp"

namespace tp {
namespace {

/// clk -> CLKBUF -> ICG(en) -> {ffa, ffb}, wired so that the ILP must put
/// ffa and ffb on different phases: ffa -> comb -> ffb gives one of them
/// p1-single and the other p3 (plus PI pressure to pin the choice).
Netlist split_gated_group() {
  Netlist nl("split");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(3000, nl.cell(clk).out);
  const CellId en = nl.add_input("en");
  const CellId d = nl.add_input("d");

  const CellId buf = nl.add_gate(CellKind::kClkBuf, "cb",
                                 {nl.cell(clk).out}, Phase::kClk);
  const NetId gclk = nl.add_net("gclk");
  nl.add_cell(CellKind::kIcg, "cg", {nl.cell(en).out, nl.cell(buf).out},
              gclk, Phase::kClk);

  const NetId qa = nl.add_net("qa");
  nl.add_cell(CellKind::kDff, "ffa", {nl.cell(d).out, gclk}, qa,
              Phase::kClk);
  const CellId mix = nl.add_gate(CellKind::kXor2, "mix",
                                 {qa, nl.cell(d).out});
  const NetId qb = nl.add_net("qb");
  nl.add_cell(CellKind::kDff, "ffb", {nl.cell(mix).out, gclk}, qb,
              Phase::kClk);
  nl.add_output("oa", qa);
  nl.add_output("ob", qb);
  return nl;
}

TEST(IcgDuplication, SplitsGroupsAcrossPhases) {
  const Netlist ff = split_gated_group();
  const ThreePhaseResult r = to_three_phase(ff);

  // The two registers must not share a phase (there is a comb edge
  // ffa -> ffb), and each keeps a gated clock on its own phase.
  std::vector<Phase> reg_phases;
  for (const CellId id : r.netlist.registers()) {
    if (r.netlist.cell(id).phase != Phase::kP2) {
      reg_phases.push_back(r.netlist.cell(id).phase);
    }
  }
  ASSERT_EQ(reg_phases.size(), 2u);
  EXPECT_NE(reg_phases[0], reg_phases[1]);

  // One ICG copy per used phase; the original (now unused) is swept.
  int icgs = 0;
  bool p1_copy = false, p3_copy = false;
  for (const CellId id : r.netlist.live_cells()) {
    const Cell& cell = r.netlist.cell(id);
    if (is_icg(cell.kind)) {
      ++icgs;
      p1_copy |= cell.phase == Phase::kP1;
      p3_copy |= cell.phase == Phase::kP3;
    }
  }
  EXPECT_EQ(icgs, 2);
  EXPECT_TRUE(p1_copy);
  EXPECT_TRUE(p3_copy);
  EXPECT_EQ(r.duplicated_icgs, 1);

  // And of course: still the same machine.
  Rng rng(17);
  const Stimulus stim = random_stimulus(2, 96, rng, 0.4);
  Simulator a(ff);
  SimOptions opt;
  opt.snapshot_event = 1;
  Simulator b(r.netlist, opt);
  EXPECT_TRUE(streams_equal(run_stream(a, stim, 8), run_stream(b, stim, 8)));
}

TEST(IcgDuplication, SinglePhaseGroupsAreNotDuplicated) {
  // Two independent gated registers (no comb edge): both can be p1 singles
  // sharing one duplicated ICG copy.
  Netlist nl("mono");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(3000, nl.cell(clk).out);
  const CellId en = nl.add_input("en");
  const CellId d = nl.add_input("d");
  const NetId gclk = nl.add_net("gclk");
  nl.add_cell(CellKind::kIcg, "cg", {nl.cell(en).out, nl.cell(clk).out},
              gclk, Phase::kClk);
  for (int i = 0; i < 2; ++i) {
    const NetId q = nl.add_net("q" + std::to_string(i));
    nl.add_cell(CellKind::kDff, "ff" + std::to_string(i),
                {nl.cell(d).out, gclk}, q, Phase::kClk);
    nl.add_output("o" + std::to_string(i), q);
  }
  const ThreePhaseResult r = to_three_phase(nl);
  EXPECT_EQ(r.duplicated_icgs, 0);
  int icgs = 0;
  for (const CellId id : r.netlist.live_cells()) {
    icgs += is_icg(r.netlist.cell(id).kind);
  }
  EXPECT_EQ(icgs, 1);
}

TEST(IcgDuplication, EnableLogicIsShared) {
  // Both phase copies of a duplicated ICG read the same enable net — the
  // paper duplicates the gating cell, not the enable cone.
  const Netlist ff = split_gated_group();
  const ThreePhaseResult r = to_three_phase(ff);
  NetId enable;
  int users = 0;
  for (const CellId id : r.netlist.live_cells()) {
    const Cell& cell = r.netlist.cell(id);
    if (is_icg(cell.kind)) {
      if (!enable.valid()) enable = cell.ins[0];
      EXPECT_EQ(cell.ins[0], enable);
      ++users;
    }
  }
  EXPECT_EQ(users, 2);
}

}  // namespace
}  // namespace tp
