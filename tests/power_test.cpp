#include <gtest/gtest.h>

#include "src/cts/cts.hpp"
#include "src/power/power.hpp"
#include "src/sim/stimulus.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/transform/convert.hpp"
#include "tests/test_circuits.hpp"

namespace tp {
namespace {

const CellLibrary& lib() { return CellLibrary::nominal_28nm(); }

struct Prepared {
  Netlist netlist{"x"};
  ActivityStats activity;
  Placement placement;
  ClockTreeReport cts;
};

Prepared prepare(Netlist nl, double toggle = 0.3, int snapshot = 0) {
  Prepared p{.netlist = std::move(nl), .activity = {}, .placement = {},
             .cts = {}};
  Rng rng(5);
  SimOptions opt;
  opt.snapshot_event = snapshot;
  Simulator sim(p.netlist, opt);
  run_stream(sim,
             random_stimulus(p.netlist.data_inputs().size(), 128, rng,
                             toggle),
             8);
  p.activity = sim.stats();
  p.placement = place(p.netlist, lib());
  p.cts = synthesize_clock_trees(p.netlist, p.placement);
  return p;
}

Netlist base_circuit(std::uint64_t seed = 1, double enable = 0.0) {
  testing::RandomCircuitSpec spec;
  spec.seed = seed;
  spec.num_ffs = 24;
  spec.num_gates = 90;
  spec.enable_fraction = enable;
  Netlist nl = testing::random_ff_circuit(spec);
  infer_clock_gating(nl, {.style = CgStyle::kGated, .min_icg_group = 1});
  return nl;
}

TEST(Cts, BuildsOneTreePerClockNet) {
  Prepared p = prepare(base_circuit(1, 0.8));
  // At least the root clk plus the gated clock nets.
  EXPECT_GE(p.cts.nets.size(), 2u);
  for (const ClockNetTree& t : p.cts.nets) {
    EXPECT_GT(t.sinks, 0);
    EXPECT_GE(t.wire_um, 0.0);
  }
}

TEST(Cts, BuffersRespectMaxFanout) {
  // 600 sinks with max fanout 20 need at least 30 leaf buffers and at
  // least two levels.
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 600;
  spec.num_gates = 200;
  Netlist nl = testing::random_ff_circuit(spec);
  infer_clock_gating(nl);
  const Placement placement = place(nl, lib());
  const ClockTreeReport r = synthesize_clock_trees(nl, placement);
  const auto it = std::find_if(r.nets.begin(), r.nets.end(),
                               [&](const ClockNetTree& t) {
                                 return t.sinks >= 600;
                               });
  ASSERT_NE(it, r.nets.end());
  EXPECT_GE(it->buffers, 30);
  EXPECT_GE(it->levels, 2);
}

TEST(Power, RequiresCyclesAndPeriod) {
  Netlist nl = base_circuit();
  ActivityStats empty;
  empty.net_toggles.assign(nl.num_nets(), 0);
  EXPECT_THROW(compute_power(nl, lib(), empty), Error);
}

TEST(Power, GroupsArePositiveAndSumToTotal) {
  Prepared p = prepare(base_circuit());
  const PowerBreakdown b =
      compute_power(p.netlist, lib(), p.activity, &p.placement, &p.cts);
  EXPECT_GT(b.clock_mw, 0);
  EXPECT_GT(b.seq_mw, 0);
  EXPECT_GT(b.comb_mw, 0);
  EXPECT_NEAR(b.total_mw(), b.clock_mw + b.seq_mw + b.comb_mw, 1e-12);
  EXPECT_GT(b.leakage_mw, 0);
  EXPECT_LT(b.leakage_mw, b.total_mw());
}

TEST(Power, ScalesWithActivity) {
  Netlist nl = base_circuit();
  Prepared hot = prepare(nl, 0.5);
  Prepared cold = prepare(nl, 0.02);
  const double p_hot =
      compute_power(hot.netlist, lib(), hot.activity, &hot.placement,
                    &hot.cts)
          .total_mw();
  const double p_cold =
      compute_power(cold.netlist, lib(), cold.activity, &cold.placement,
                    &cold.cts)
          .total_mw();
  EXPECT_GT(p_hot, p_cold);
}

TEST(Power, ClockGatingReducesClockPower) {
  // Same circuit with enables: gated style must burn less clock power than
  // the enabled (mux) style when enables are mostly off.
  testing::RandomCircuitSpec spec;
  spec.num_ffs = 32;
  spec.num_gates = 60;
  spec.enable_fraction = 0.9;
  Netlist gated = testing::random_ff_circuit(spec);
  infer_clock_gating(gated, {.style = CgStyle::kGated, .min_icg_group = 1});
  Netlist muxed = testing::random_ff_circuit(spec);
  infer_clock_gating(muxed, {.style = CgStyle::kEnabled});

  // Enables come from PIs; a 0.02 toggle keeps them mostly constant-0 or
  // constant-1 per run — use several seeds and compare the average.
  double gated_clock = 0, muxed_clock = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Prepared g = prepare(gated, 0.05);
    Prepared m = prepare(muxed, 0.05);
    gated_clock += compute_power(g.netlist, lib(), g.activity, &g.placement,
                                 &g.cts)
                       .clock_mw;
    muxed_clock += compute_power(m.netlist, lib(), m.activity, &m.placement,
                                 &m.cts)
                       .clock_mw;
  }
  EXPECT_LT(gated_clock, muxed_clock);
}

TEST(Power, ThreePhaseSavesClockPowerOnPipelines) {
  // A deep shift pipeline is the best case for the conversion: half the
  // stages become single latches and latch clock pins are much cheaper.
  Netlist nl("pipe");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(3000, nl.cell(clk).out);
  const CellId in = nl.add_input("in");
  NetId d = nl.cell(in).out;
  for (int i = 0; i < 64; ++i) {
    const NetId q = nl.add_net("q" + std::to_string(i));
    nl.add_cell(CellKind::kDff, "ff" + std::to_string(i),
                {d, nl.cell(clk).out}, q, Phase::kClk);
    d = q;
  }
  nl.add_output("o", d);

  Prepared ff = prepare(nl, 0.4);
  ThreePhaseResult conv = to_three_phase(nl);
  Prepared tp3 = prepare(conv.netlist, 0.4, 1);

  const double ff_clock =
      compute_power(ff.netlist, lib(), ff.activity, &ff.placement, &ff.cts)
          .clock_mw;
  const double tp_clock =
      compute_power(tp3.netlist, lib(), tp3.activity, &tp3.placement,
                    &tp3.cts)
          .clock_mw;
  EXPECT_LT(tp_clock, ff_clock);
}

}  // namespace
}  // namespace tp
