// Bit-identity contract of the 64-lane bit-parallel simulator
// (src/sim/wide_sim.hpp): lane i of a wide run must be bit-identical to a
// scalar run driven with stimulus stream i, and the wide ActivityStats
// must equal the per-lane scalar stats summed — across benchmarks, all
// four design styles (including ICG / M1 / M2 cells), transparent-latch
// init divergence, and nested clock events from illegal gating.
#include <gtest/gtest.h>

#include "src/circuits/benchmark.hpp"
#include "src/sim/stimulus.hpp"
#include "src/sim/wide_sim.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/transform/convert.hpp"
#include "src/transform/ddcg.hpp"
#include "src/transform/p2_gating.hpp"
#include "src/transform/pulsed_latch.hpp"

namespace tp {
namespace {

struct StyleNetlist {
  std::string label;
  Netlist netlist{"style"};
  int snapshot_event = 0;
};

/// The four design styles of one benchmark, built through the same
/// transforms the flow uses. The 3-phase variant carries kIcg, kIcgM1
/// (common-enable p2 gating with M1) and kIcgNoLatch (M2) cells.
std::vector<StyleNetlist> style_netlists(const circuits::Benchmark& bench) {
  std::vector<StyleNetlist> styles;
  {
    Netlist ff = bench.netlist;
    infer_clock_gating(ff);
    styles.push_back({"FF", std::move(ff), 0});
  }
  {
    Netlist ms = bench.netlist;
    infer_clock_gating(ms);
    styles.push_back({"M-S", to_master_slave(ms), 0});
  }
  {
    Netlist p3 = bench.netlist;
    infer_clock_gating(p3);
    ThreePhaseResult converted = to_three_phase(p3);
    p3 = std::move(converted.netlist);
    gate_p2_latches(p3);
    apply_m2(p3);
    styles.push_back({"3-P", std::move(p3), 1});
  }
  {
    Netlist pl = bench.netlist;
    infer_clock_gating(pl);
    PulsedLatchResult converted = to_pulsed_latch(pl);
    styles.push_back({"P-L", std::move(converted.netlist), 0});
  }
  return styles;
}

/// Independent per-lane stimuli (different seeds per lane).
std::vector<Stimulus> make_lanes(std::size_t lanes, std::size_t inputs,
                                 std::size_t cycles, std::uint64_t seed) {
  std::vector<Stimulus> result;
  result.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    Rng rng(seed + l);
    result.push_back(random_stimulus(inputs, cycles, rng));
  }
  return result;
}

/// Scalar reference: run every lane through a scalar Simulator,
/// concatenating streams lane-major and summing ActivityStats.
OutputStream scalar_reference(const Netlist& netlist, SimOptions options,
                              const std::vector<Stimulus>& lanes,
                              std::size_t warmup, ActivityStats* stats) {
  Simulator sim(netlist, options);
  OutputStream stream;
  stats->net_toggles.assign(netlist.num_nets(), 0);
  stats->cycles = 0;
  for (const Stimulus& lane : lanes) {
    OutputStream s = run_stream(sim, lane, warmup);
    for (auto& row : s) stream.push_back(std::move(row));
    for (std::size_t n = 0; n < netlist.num_nets(); ++n) {
      stats->net_toggles[n] += sim.stats().net_toggles[n];
    }
    stats->cycles += sim.stats().cycles;
  }
  return stream;
}

/// The contract itself: streams equal, toggle counts equal net-by-net.
void expect_bit_identity(const Netlist& netlist, int snapshot_event,
                         std::size_t lane_count, std::size_t cycles,
                         std::uint64_t seed, std::size_t warmup = 2) {
  SimOptions options;
  options.snapshot_event = snapshot_event;
  const std::vector<Stimulus> lanes =
      make_lanes(lane_count, netlist.data_inputs().size(), cycles, seed);

  ActivityStats scalar_stats;
  const OutputStream scalar_stream =
      scalar_reference(netlist, options, lanes, warmup, &scalar_stats);

  WideSimulator wide(netlist, lane_count, options);
  const OutputStream wide_stream =
      run_wide_stream(wide, pack_stimulus(lanes), warmup);

  EXPECT_EQ(first_mismatch(scalar_stream, wide_stream), -1);
  EXPECT_EQ(wide.stats().cycles, scalar_stats.cycles);
  std::size_t mismatched_nets = 0;
  for (std::size_t n = 0; n < netlist.num_nets(); ++n) {
    if (wide.stats().net_toggles[n] != scalar_stats.net_toggles[n]) {
      ++mismatched_nets;
      if (mismatched_nets == 1) {
        ADD_FAILURE() << "net " << n << " toggles: scalar "
                      << scalar_stats.net_toggles[n] << ", wide "
                      << wide.stats().net_toggles[n];
      }
    }
  }
  EXPECT_EQ(mismatched_nets, 0u);
}

TEST(WideSimulator, BitIdenticalAcrossBenchmarksAndStyles) {
  for (const char* name : {"s1196", "s1488"}) {
    const circuits::Benchmark bench = circuits::make_benchmark(name);
    for (const StyleNetlist& style : style_netlists(bench)) {
      SCOPED_TRACE(std::string(name) + "/" + style.label);
      expect_bit_identity(style.netlist, style.snapshot_event, /*lanes=*/5,
                          /*cycles=*/24, /*seed=*/1000);
    }
  }
}

TEST(WideSimulator, FullSixtyFourLaneWord) {
  const circuits::Benchmark bench = circuits::make_benchmark("s1196");
  std::vector<StyleNetlist> styles = style_netlists(bench);
  // FF and 3-P at the full word width (lane_mask == ~0).
  expect_bit_identity(styles[0].netlist, styles[0].snapshot_event,
                      kMaxSimLanes, /*cycles=*/12, /*seed=*/4);
  expect_bit_identity(styles[2].netlist, styles[2].snapshot_event,
                      kMaxSimLanes, /*cycles=*/12, /*seed=*/4);
}

TEST(WideSimulator, TransparentLatchInitDivergence) {
  // A transparent-high latch whose init value disagrees with its settled D
  // exercises the reset-time reconciliation path (latches are enqueued at
  // reset so D != Q is resolved before the first cycle) in every lane.
  Netlist nl("latch_init");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  const NetId clk_net = nl.cell(clk).out;
  nl.clocks() = single_phase_spec(1000, clk_net);
  const CellId in = nl.add_input("in");
  const NetId q = nl.add_net("q");
  const CellId lat = nl.add_cell(CellKind::kLatchH, "lat",
                                 {nl.cell(in).out, clk_net}, q, Phase::kClk);
  nl.set_init(lat, true);
  const NetId qn = nl.add_net("qn");
  nl.add_cell(CellKind::kInv, "inv", {q}, qn, Phase::kNone);
  nl.add_output("out", qn);
  expect_bit_identity(nl, /*snapshot_event=*/0, /*lanes=*/3, /*cycles=*/10,
                      /*seed=*/9, /*warmup=*/0);
}

TEST(WideSimulator, NestedClockEventsFromIllegalGating) {
  // A latch-free ICG (M2 cell) whose enable is derived combinationally
  // from a register that toggles at the clock edge: the enable changes
  // while CK is high, so the gated clock rises in the middle of data
  // propagation — a nested clock event. Lanes diverge (the enable is data
  // dependent), so some lanes take the nested event and others do not.
  Netlist nl("nested");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  const NetId clk_net = nl.cell(clk).out;
  nl.clocks() = single_phase_spec(1000, clk_net);
  const CellId in = nl.add_input("in");
  const NetId qa = nl.add_net("qa");
  nl.add_cell(CellKind::kDff, "a", {nl.cell(in).out, clk_net}, qa,
              Phase::kClk);
  const NetId en = nl.add_net("en");
  nl.add_cell(CellKind::kInv, "en_inv", {qa}, en, Phase::kNone);
  const NetId gclk = nl.add_net("gclk");
  nl.add_cell(CellKind::kIcgNoLatch, "icg", {en, clk_net}, gclk,
              Phase::kClk);
  const NetId qb = nl.add_net("qb");
  nl.add_cell(CellKind::kDff, "b", {qa, gclk}, qb, Phase::kClk);
  nl.add_output("out", qb);
  expect_bit_identity(nl, /*snapshot_event=*/0, /*lanes=*/4, /*cycles=*/16,
                      /*seed=*/21, /*warmup=*/0);
}

TEST(WideSimulator, DdcgGroupsIdenticalFromScalarAndWideActivity) {
  // The flow feeds simulation activity into multi-bit DDCG grouping; the
  // summed-over-lanes contract must make wide activity a drop-in
  // replacement — same groups, same gated latches, same resulting netlist
  // size.
  const circuits::Benchmark bench = circuits::make_benchmark("s5378");
  Netlist p3 = bench.netlist;
  infer_clock_gating(p3);
  ThreePhaseResult converted = to_three_phase(p3);
  p3 = std::move(converted.netlist);
  gate_p2_latches(p3);
  apply_m2(p3);

  SimOptions options;
  options.snapshot_event = 1;
  const std::vector<Stimulus> lanes =
      make_lanes(4, p3.data_inputs().size(), 48, 77);

  ActivityStats scalar_stats;
  scalar_reference(p3, options, lanes, /*warmup=*/4, &scalar_stats);

  WideSimulator wide(p3, lanes.size(), options);
  run_wide_stream(wide, pack_stimulus(lanes), /*warmup=*/4);

  Netlist from_scalar = p3;
  Netlist from_wide = p3;
  const DdcgResult a = apply_ddcg(from_scalar, scalar_stats);
  const DdcgResult b = apply_ddcg(from_wide, wide.stats());
  EXPECT_EQ(a.groups, b.groups);
  EXPECT_EQ(a.latches_gated, b.latches_gated);
  EXPECT_EQ(a.xor_cells, b.xor_cells);
  EXPECT_EQ(from_scalar.num_cells(), from_wide.num_cells());
  EXPECT_EQ(from_scalar.num_nets(), from_wide.num_nets());
}

TEST(WideSimulator, PackStimulusValidatesShape) {
  std::vector<Stimulus> lanes(2);
  lanes[0] = {{1, 0}, {0, 1}};
  lanes[1] = {{0, 0}};  // wrong cycle count
  EXPECT_THROW(pack_stimulus(lanes), Error);
  lanes[1] = {{0, 0, 1}, {1, 1, 1}};  // wrong input count
  EXPECT_THROW(pack_stimulus(lanes), Error);
  EXPECT_THROW(WideSimulator(circuits::make_benchmark("s1196").netlist, 65),
               Error);
}

}  // namespace
}  // namespace tp
