// Content-addressed result cache: the heart of conversion-as-a-service.
//
// The flow is deterministic for any thread count, lane count, and seed
// (docs/parallelism.md), so a conversion/power-eval result is a pure
// function of its request tuple. CacheKey captures that tuple — canonical
// netlist hash (src/netlist/hash.hpp), design style, options hash
// (flow::options_hash), workload, cycle budget, base seed, lane count —
// and digests it into a 128-bit content address. The cached value is the
// serialized result payload (flow::result_payload_json), so a hit serves
// bytes identical to recomputing the request fresh.
//
// Two tiers:
//  - memory: an LRU map capped at CacheOptions::memory_entries;
//  - disk (optional): one file per entry under CacheOptions::dir, written
//    with a versioned header via write-to-temp + atomic rename, so a
//    killed daemon never leaves a torn entry behind. Writes are
//    write-behind — put() marks the entry dirty and flush() persists it —
//    with an automatic flush when enough dirty entries accumulate and a
//    forced flush before a dirty entry is evicted from memory.
//
// Stale or damaged disk entries (wrong magic, old format version, digest
// mismatch, truncation) are rejected, counted, and deleted on read.
// Thread-safe; every operation takes one internal mutex (the payloads are
// small next to the seconds-long flow runs the cache is fronting).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/flow/flow.hpp"

namespace tp::serve {

/// Bump when the payload schema or digest recipe changes: old cache files
/// are then rejected (and deleted) instead of served.
inline constexpr std::uint32_t kCacheFormatVersion = 2;

struct CacheKey {
  std::uint64_t netlist_hash = 0;  // canonical content hash of the design
  flow::DesignStyle style = flow::DesignStyle::kFlipFlop;
  std::uint64_t options_hash = 0;  // flow::options_hash of the FlowOptions
  std::string workload;            // canonical workload name
  std::uint64_t cycles = 0;
  std::uint64_t seed = 0;          // base stimulus seed
  std::uint64_t lanes = 1;

  /// 128-bit content address (two independently-mixed 64-bit words) over
  /// every field plus kCacheFormatVersion.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> digest() const;
  /// 32 lowercase hex chars of digest(); the disk file stem.
  [[nodiscard]] std::string digest_hex() const;
};

struct CacheStats {
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;   // found on disk, promoted to memory
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;   // memory-tier LRU evictions
  std::uint64_t rejected = 0;    // corrupt/stale disk entries deleted
  std::uint64_t files_written = 0;
  std::uint64_t bytes_served = 0;
  std::uint64_t bytes_stored = 0;

  [[nodiscard]] std::uint64_t hits() const {
    return memory_hits + disk_hits;
  }
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits() + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits()) / total;
  }
};

struct CacheOptions {
  /// Disk tier directory; empty disables the disk tier. Created on
  /// demand (one level).
  std::string dir;
  /// Memory-tier capacity in entries (min 1).
  std::size_t memory_entries = 1024;
  /// Auto-flush the write-behind queue when this many entries are dirty.
  std::size_t flush_threshold = 64;
};

class ResultCache {
 public:
  explicit ResultCache(CacheOptions options);
  ~ResultCache();  // flushes dirty entries

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Memory tier first, then disk; a disk hit is promoted to memory.
  /// std::nullopt on miss.
  std::optional<std::string> get(const CacheKey& key);

  /// Inserts (or refreshes) an entry. Dirty until the next flush().
  void put(const CacheKey& key, std::string payload);

  /// Persists every dirty entry to the disk tier (no-op without one).
  void flush();

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t memory_size() const;
  [[nodiscard]] const CacheOptions& options() const { return options_; }

 private:
  struct Entry {
    std::pair<std::uint64_t, std::uint64_t> digest;
    std::string hex;
    std::string payload;
    bool dirty = false;
  };
  using LruList = std::list<Entry>;

  struct DigestHash {
    std::size_t operator()(
        const std::pair<std::uint64_t, std::uint64_t>& d) const {
      return static_cast<std::size_t>(d.first ^ (d.second * 0x9e3779b97f4a7c15ULL));
    }
  };

  // All private helpers expect mutex_ held.
  void evict_excess();
  void write_entry(const Entry& entry);
  std::optional<std::string> read_disk(const std::string& hex);
  [[nodiscard]] std::string file_path(const std::string& hex) const;
  void flush_locked();

  CacheOptions options_;
  mutable std::mutex mutex_;
  LruList lru_;  // front = most recent
  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>,
                     LruList::iterator, DigestHash>
      index_;
  std::size_t dirty_count_ = 0;
  CacheStats stats_;
};

}  // namespace tp::serve
