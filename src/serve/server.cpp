#include "src/serve/server.hpp"

#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "src/flow/serialize.hpp"
#include "src/netlist/hash.hpp"
#include "src/util/json.hpp"
#include "src/util/strcat.hpp"

namespace tp::serve {

using flow::MatrixResult;
using flow::MatrixTask;
using flow::RunPlan;

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache),
      executor_(options_.threads) {}

Server::~Server() { cache_.flush(); }

std::uint64_t Server::benchmark_content_hash(const std::string& name,
                                             std::string* error) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = benchmark_hashes_.find(name);
    if (it != benchmark_hashes_.end()) return it->second;
  }
  std::uint64_t hash = 0;
  try {
    hash = netlist_hash(circuits::make_benchmark(name).netlist);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return 0;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  benchmark_hashes_.emplace(name, hash);
  return hash;
}

CacheKey Server::make_key(const Request& request, flow::DesignStyle style,
                          std::uint64_t content_hash,
                          const flow::FlowOptions& options) const {
  CacheKey key;
  key.netlist_hash = content_hash;
  key.style = style;
  key.options_hash = flow::options_hash(options);
  key.workload = request.spec.workload;
  key.cycles = request.spec.cycles;
  key.seed = request.spec.seed;
  key.lanes = request.spec.lanes;
  return key;
}

// One content-addressed conversion unit inside a wave.
struct Server::Cell {
  CacheKey key;
  bool addressable = false;  // false: unknown benchmark, no cache traffic
  std::shared_ptr<RunPlan> plan;  // single-cell plan (shared with lambda)
  MatrixTask task;
  std::size_t primary = SIZE_MAX;  // dedupe target, SIZE_MAX = primary
  std::future<MatrixResult> future;
  std::string payload;
  std::string error;  // nonempty when the flow failed
  bool cached = false;
  double done_at = 0;  // seconds from wave start when payload was ready
};

std::vector<Outcome> Server::run_wave(const std::vector<std::string>& lines) {
  Stopwatch wave;
  struct Pending {
    Request request;
    bool parsed = false;
    std::string parse_error;
    std::vector<std::size_t> cells;  // indices into `cells`
    double parsed_at = 0;
  };
  std::vector<Pending> pending(lines.size());
  std::vector<Cell> cells;
  std::unordered_map<std::string, std::size_t> dedupe;  // digest hex -> cell

  // Parse every line and expand conversion requests into cells.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    Pending& p = pending[i];
    p.parsed = parse_request(lines[i], &p.request, &p.parse_error);
    p.parsed_at = wave.seconds();
    if (!p.parsed) continue;
    const Request& req = p.request;
    if (req.type == JobType::kStatus || req.type == JobType::kShutdown) {
      continue;
    }
    flow::FlowOptions options;
    flow::options_from_preset(req.spec.preset, &options);  // parse validated
    options.check_rules = req.spec.check_rules;
    options.check_analysis = req.spec.check_analysis;
    if (req.type == JobType::kLint) {
      // A lint job IS a request for the checks; forcing them here keeps the
      // cache key shared with an explicit convert+checks request.
      options.check_rules = true;
      options.check_analysis = true;
    }
    circuits::Workload workload = circuits::Workload::kPaperDefault;
    flow::workload_from_name(req.spec.workload, &workload);

    std::vector<std::pair<std::string, flow::DesignStyle>> grid;
    if (req.type == JobType::kMatrixSweep) {
      const std::vector<std::string>& names =
          req.benchmarks.empty() ? circuits::benchmark_names()
                                 : req.benchmarks;
      for (const std::string& name : names) {
        for (const flow::DesignStyle style : req.styles) {
          grid.emplace_back(name, style);
        }
      }
    } else {
      grid.emplace_back(req.benchmark, req.style);
    }

    for (const auto& [benchmark, style] : grid) {
      std::string hash_error;
      const std::uint64_t content =
          benchmark_content_hash(benchmark, &hash_error);
      Cell cell;
      cell.addressable = hash_error.empty();
      if (cell.addressable) {
        cell.key = make_key(req, style, content, options);
        const std::string hex = cell.key.digest_hex();
        auto [it, inserted] = dedupe.emplace(hex, cells.size());
        if (!inserted) {
          cell.primary = it->second;  // same computation already in wave
          p.cells.push_back(cells.size());
          cells.push_back(std::move(cell));
          continue;
        }
      }
      // Primary cell: consult the cache, otherwise plan a computation.
      if (cell.addressable) {
        if (std::optional<std::string> hit = cache_.get(cell.key)) {
          cell.payload = std::move(*hit);
          cell.cached = true;
          cell.done_at = wave.seconds();
          p.cells.push_back(cells.size());
          cells.push_back(std::move(cell));
          continue;
        }
      }
      auto plan = std::make_shared<RunPlan>();
      plan->benchmarks = {benchmark};
      plan->styles = {style};
      plan->options = options;
      plan->workload = workload;
      plan->cycles = req.spec.cycles;
      plan->stimulus_seed = req.spec.seed;
      plan->lanes = req.spec.lanes;
      plan->options.executor = &executor_;
      plan->cancel = options_.stop;
      cell.plan = plan;
      cell.task = plan->tasks().front();
      p.cells.push_back(cells.size());
      cells.push_back(std::move(cell));
    }
  }

  // Submit every primary miss as one executor wave.
  for (Cell& cell : cells) {
    if (cell.plan == nullptr) continue;
    std::shared_ptr<RunPlan> plan = cell.plan;
    MatrixTask task = cell.task;
    cell.future = executor_.submit(
        [plan, task]() { return flow::run_task(*plan, task); });
  }

  // Join in submission order, serializing and caching as results land.
  std::size_t computed = 0;
  std::size_t failed_cells = 0;
  for (Cell& cell : cells) {
    if (!cell.future.valid()) continue;
    MatrixResult result = executor_.wait(std::move(cell.future));
    cell.payload = flow::result_payload_json(*cell.plan, result);
    cell.error = result.error;
    cell.done_at = wave.seconds();
    ++computed;
    if (!result.ok()) {
      ++failed_cells;
    } else if (cell.addressable) {
      cache_.put(cell.key, cell.payload);
    }
  }
  // Resolve dedupe references after every primary has settled.
  std::size_t deduped = 0;
  for (Cell& cell : cells) {
    if (cell.primary == SIZE_MAX) continue;
    const Cell& primary = cells[cell.primary];
    cell.payload = primary.payload;
    cell.error = primary.error;
    cell.cached = true;  // served without a flow run of its own
    cell.done_at = primary.done_at;
    ++deduped;
  }
  std::size_t cached_cells = 0;  // true cache hits (dedupe counted apart)
  for (const Cell& cell : cells) {
    if (cell.primary == SIZE_MAX && cell.cached) ++cached_cells;
  }

  // Assemble one outcome per request, in input order.
  std::vector<Outcome> outcomes(lines.size());
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t malformed = 0;
  bool saw_shutdown = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const Pending& p = pending[i];
    Outcome& out = outcomes[i];
    out.latency_s = p.parsed_at;
    if (!p.parsed) {
      out.line = error_response(p.request.id, p.parse_error);
      out.ok = false;
      ++failed;
      ++malformed;
      continue;
    }
    const Request& req = p.request;
    switch (req.type) {
      case JobType::kStatus:
        out.line = status_response(req.id, status_json());
        out.ok = true;
        ++completed;
        break;
      case JobType::kShutdown: {
        util::JsonWriter w;
        w.begin_object();
        w.key("id").value(req.id);
        w.key("ok").value(true);
        w.key("shutdown").value(true);
        w.end_object();
        out.line = w.take();
        out.ok = true;
        out.shutdown = true;
        saw_shutdown = true;
        ++completed;
        break;
      }
      case JobType::kConvert:
      case JobType::kPowerEval:
      case JobType::kLint: {
        const Cell& cell = cells[p.cells.front()];
        out.latency_s = cell.done_at;
        out.cached = cell.cached;
        if (!cell.error.empty()) {
          out.line = error_response(req.id, cell.error);
          out.ok = false;
          ++failed;
          break;
        }
        const std::string payload = req.type == JobType::kPowerEval
                                        ? power_payload(cell.payload)
                                    : req.type == JobType::kLint
                                        ? lint_payload(cell.payload)
                                        : cell.payload;
        out.line = ok_response(req.id, cell.cached, payload);
        out.ok = true;
        ++completed;
        break;
      }
      case JobType::kMatrixSweep: {
        util::JsonWriter array;
        array.begin_array();
        std::size_t sweep_cached = 0;
        double last = 0;
        for (const std::size_t c : p.cells) {
          const Cell& cell = cells[c];
          array.raw(cell.payload);
          if (cell.cached) ++sweep_cached;
          if (cell.done_at > last) last = cell.done_at;
        }
        array.end_array();
        out.latency_s = last;
        out.cached = !p.cells.empty() && sweep_cached == p.cells.size();
        out.line = sweep_response(req.id, p.cells.size(), sweep_cached,
                                  array.str());
        out.ok = true;
        ++completed;
        break;
      }
    }
  }

  // Fold this wave into the service counters.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.requests += lines.size();
    counters_.completed += completed;
    counters_.failed += failed;
    counters_.malformed += malformed;
    counters_.cells += cells.size();
    counters_.cells_cached += cached_cells;
    counters_.cells_deduped += deduped;
    counters_.cells_computed += computed;
    counters_.cells_failed += failed_cells;
    counters_.waves += 1;
    counters_.busy_s += wave.seconds();
    for (const Outcome& out : outcomes) {
      counters_.bytes_out += out.line.size() + 1;
    }
  }
  if (saw_shutdown) shutdown_requested_ = true;
  cache_.flush();
  return outcomes;
}

Outcome Server::handle_line(const std::string& line) {
  return run_wave({line}).front();
}

ServerCounters Server::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerCounters out = counters_;
  out.cache = cache_.stats();
  return out;
}

std::string Server::status_json() const {
  const ServerCounters c = counters();
  util::JsonWriter w;
  w.begin_object();
  w.key("uptime_s").value(uptime_.seconds());
  w.key("threads").value(executor_.thread_count());
  // Valid "backend" tokens, so clients can discover the conversion grid
  // without hardcoding the registry.
  w.key("backends").begin_array();
  for (const flow::ConversionBackend* backend : flow::backend_registry()) {
    w.value(backend->token());
  }
  w.end_array();
  w.key("requests").value(c.requests);
  w.key("completed").value(c.completed);
  w.key("failed").value(c.failed);
  w.key("malformed").value(c.malformed);
  w.key("waves").value(c.waves);
  w.key("busy_s").value(c.busy_s);
  w.key("bytes_out").value(c.bytes_out);
  w.key("cells").begin_object();
  w.key("total").value(c.cells);
  w.key("cached").value(c.cells_cached);
  w.key("deduped").value(c.cells_deduped);
  w.key("computed").value(c.cells_computed);
  w.key("failed").value(c.cells_failed);
  w.end_object();
  w.key("cache").begin_object();
  w.key("memory_hits").value(c.cache.memory_hits);
  w.key("disk_hits").value(c.cache.disk_hits);
  w.key("misses").value(c.cache.misses);
  w.key("hit_rate").value(c.cache.hit_rate());
  w.key("insertions").value(c.cache.insertions);
  w.key("evictions").value(c.cache.evictions);
  w.key("rejected").value(c.cache.rejected);
  w.key("files_written").value(c.cache.files_written);
  w.key("bytes_served").value(c.cache.bytes_served);
  w.key("memory_entries").value(cache_.memory_size());
  w.end_object();
  w.end_object();
  return w.take();
}

// --- transport loop -------------------------------------------------------

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int listen_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  ::unlink(path.c_str());  // stale socket from a killed daemon
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return -1;
  }
  set_nonblocking(fd);
  return fd;
}

int listen_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local clients only
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return -1;
  }
  set_nonblocking(fd);
  return fd;
}

bool write_all(int fd, std::string_view data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      ::poll(&p, 1, 1000);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Publishes `content` as `path` via temp file + atomic rename.
bool write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = cat(path, ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) return false;
    out << content;
    if (!out.good()) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

}  // namespace

int Server::serve() {
  struct Client {
    int fd = -1;
    std::string inbuf;
  };
  std::vector<int> listeners;
  if (!options_.socket_path.empty()) {
    const int fd = listen_unix(options_.socket_path);
    require(fd >= 0, cat("serve: cannot listen on unix socket ",
                         options_.socket_path));
    listeners.push_back(fd);
  }
  if (options_.tcp_port != 0) {
    const int fd = listen_tcp(options_.tcp_port);
    require(fd >= 0, cat("serve: cannot listen on 127.0.0.1:",
                         options_.tcp_port));
    listeners.push_back(fd);
  }
  if (!options_.drop_dir.empty()) {
    ::mkdir(options_.drop_dir.c_str(), 0755);  // EEXIST is fine
  }
  require(!listeners.empty() || !options_.drop_dir.empty(),
          "serve: no transport configured (socket, port, or drop dir)");

  std::vector<Client> clients;
  bool aborted = false;
  while (true) {
    if (stop_requested()) {
      aborted = true;
      break;
    }
    if (shutdown_requested_) break;

    // Wait for socket activity (or just sleep when file-only).
    std::vector<pollfd> fds;
    fds.reserve(listeners.size() + clients.size());
    for (const int fd : listeners) fds.push_back({fd, POLLIN, 0});
    for (const Client& c : clients) fds.push_back({c.fd, POLLIN, 0});
    if (!fds.empty()) {
      ::poll(fds.data(), fds.size(), options_.poll_ms);
    } else {
      ::usleep(static_cast<useconds_t>(options_.poll_ms) * 1000);
    }

    // Accept new connections.
    for (std::size_t i = 0; i < listeners.size(); ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      while (true) {
        const int fd = ::accept(listeners[i], nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        clients.push_back({fd, {}});
      }
    }

    // (origin, line): origin < 0 is a socket client index offset by -1,
    // origin >= 0 indexes job_files.
    std::vector<std::pair<int, std::string>> batch;
    std::vector<std::string> job_stems;

    // Drain readable clients into complete lines.
    for (std::size_t c = 0; c < clients.size(); ++c) {
      Client& client = clients[c];
      bool closed = false;
      char buf[4096];
      while (true) {
        const ssize_t n = ::read(client.fd, buf, sizeof(buf));
        if (n > 0) {
          client.inbuf.append(buf, static_cast<std::size_t>(n));
          continue;
        }
        closed = n == 0;  // 0 = peer closed; <0 = EAGAIN or error
        break;
      }
      std::size_t start = 0;
      while (true) {
        const std::size_t nl = client.inbuf.find('\n', start);
        if (nl == std::string::npos) break;
        if (nl > start) {
          batch.emplace_back(-static_cast<int>(c) - 1,
                             client.inbuf.substr(start, nl - start));
        }
        start = nl + 1;
      }
      client.inbuf.erase(0, start);
      if (closed) {
        // Treat an unterminated final line as complete on EOF.
        if (!client.inbuf.empty()) {
          batch.emplace_back(-static_cast<int>(c) - 1, client.inbuf);
          client.inbuf.clear();
        }
        ::close(client.fd);
        client.fd = -1;
      }
    }

    // Collect dropped job files (writers must publish via rename, so a
    // visible *.job file is complete).
    if (!options_.drop_dir.empty()) {
      if (DIR* dir = ::opendir(options_.drop_dir.c_str())) {
        std::vector<std::string> names;
        while (dirent* entry = ::readdir(dir)) {
          if (ends_with(entry->d_name, ".job")) {
            names.emplace_back(entry->d_name);
          }
        }
        ::closedir(dir);
        std::sort(names.begin(), names.end());  // deterministic intake order
        for (const std::string& name : names) {
          const std::string path = cat(options_.drop_dir, "/", name);
          std::ifstream in(path, std::ios::binary);
          if (!in.good()) continue;
          std::stringstream content;
          content << in.rdbuf();
          in.close();
          ::unlink(path.c_str());
          const std::string stem =
              name.substr(0, name.size() - 4);  // strip ".job"
          job_stems.push_back(stem);
          std::string line;
          std::istringstream lines(content.str());
          while (std::getline(lines, line)) {
            if (!line.empty()) {
              batch.emplace_back(
                  static_cast<int>(job_stems.size()) - 1, line);
            }
          }
        }
      }
    }

    if (batch.empty()) {
      // Reap closed clients while idle.
      std::erase_if(clients, [](const Client& c) { return c.fd < 0; });
      continue;
    }

    std::vector<std::string> lines;
    lines.reserve(batch.size());
    for (const auto& [origin, line] : batch) lines.push_back(line);
    const std::vector<Outcome> outcomes = run_wave(lines);

    // Route responses back: sockets stream per line, job files get one
    // atomically-published "<stem>.result".
    std::vector<std::string> file_out(job_stems.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const int origin = batch[i].first;
      if (origin < 0) {
        const std::size_t c = static_cast<std::size_t>(-origin - 1);
        if (clients[c].fd >= 0) {
          write_all(clients[c].fd, cat(outcomes[i].line, "\n"));
        }
      } else {
        file_out[static_cast<std::size_t>(origin)] +=
            cat(outcomes[i].line, "\n");
      }
    }
    for (std::size_t f = 0; f < job_stems.size(); ++f) {
      const std::string path =
          cat(options_.drop_dir, "/", job_stems[f], ".result");
      if (!write_file_atomic(path, file_out[f])) {
        log_warn(cat("serve: cannot publish ", path));
      }
    }
    std::erase_if(clients, [](const Client& c) { return c.fd < 0; });
  }

  for (const Client& c : clients) {
    if (c.fd >= 0) ::close(c.fd);
  }
  for (const int fd : listeners) ::close(fd);
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
  cache_.flush();
  return aborted ? 130 : 0;
}

}  // namespace tp::serve
