#include "src/serve/protocol.hpp"

#include "src/flow/serialize.hpp"
#include "src/util/json.hpp"
#include "src/util/strcat.hpp"

namespace tp::serve {

using util::Json;
using util::JsonWriter;

std::string_view job_type_name(JobType type) {
  switch (type) {
    case JobType::kConvert: return "convert";
    case JobType::kPowerEval: return "power_eval";
    case JobType::kLint: return "lint";
    case JobType::kMatrixSweep: return "matrix_sweep";
    case JobType::kStatus: return "status";
    case JobType::kShutdown: return "shutdown";
  }
  return "status";
}

namespace {

bool job_type_from_name(std::string_view name, JobType* out) {
  if (name == "convert") *out = JobType::kConvert;
  else if (name == "power_eval") *out = JobType::kPowerEval;
  else if (name == "lint") *out = JobType::kLint;
  else if (name == "matrix_sweep") *out = JobType::kMatrixSweep;
  else if (name == "status") *out = JobType::kStatus;
  else if (name == "shutdown") *out = JobType::kShutdown;
  else return false;
  return true;
}

bool parse_spec(const Json& doc, JobSpec* spec, std::string* error) {
  spec->preset = doc.get_string("preset", spec->preset);
  spec->workload = doc.get_string("workload", spec->workload);
  spec->cycles = doc.get_u64("cycles", spec->cycles);
  spec->seed = doc.get_u64("seed", spec->seed);
  spec->lanes = doc.get_u64("lanes", spec->lanes);
  spec->check_rules = doc.get_bool("check_rules", spec->check_rules);
  spec->check_analysis =
      doc.get_bool("check_analysis", spec->check_analysis);

  flow::FlowOptions options;
  if (!flow::options_from_preset(spec->preset, &options)) {
    *error = cat("unknown preset '", spec->preset, "'");
    return false;
  }
  circuits::Workload workload;
  if (!flow::workload_from_name(spec->workload, &workload)) {
    *error = cat("unknown workload '", spec->workload, "'");
    return false;
  }
  if (spec->lanes < 1 || spec->lanes > kMaxSimLanes) {
    *error = cat("lanes must be in [1, ", kMaxSimLanes, "]");
    return false;
  }
  if (spec->cycles < 1 || spec->cycles > 1u << 20) {
    *error = "cycles must be in [1, 1048576]";
    return false;
  }
  return true;
}

}  // namespace

bool parse_request(std::string_view line, Request* out, std::string* error) {
  *out = Request();
  Json doc;
  if (!Json::parse(line, &doc, error)) return false;
  if (!doc.is_object()) {
    *error = "request must be a JSON object";
    return false;
  }
  out->id = doc.get_string("id", "");
  const std::string type_name = doc.get_string("type", "");
  if (!job_type_from_name(type_name, &out->type)) {
    *error = cat("unknown job type '", type_name, "'");
    return false;
  }
  if (out->type == JobType::kStatus || out->type == JobType::kShutdown) {
    return true;
  }
  if (!parse_spec(doc, &out->spec, error)) return false;

  if (out->type == JobType::kMatrixSweep) {
    if (const Json* names = doc.find("benchmarks");
        names != nullptr && names->is_array()) {
      for (const Json& name : names->items()) {
        if (!name.is_string()) {
          *error = "benchmarks must be an array of strings";
          return false;
        }
        out->benchmarks.push_back(name.as_string());
      }
    }
    // "backends" is the canonical grid axis; "styles" stays as a legacy
    // alias (ignored when "backends" is present).
    const Json* tokens = doc.find("backends");
    if (tokens == nullptr) tokens = doc.find("styles");
    if (tokens != nullptr && tokens->is_array()) {
      for (const Json& token : tokens->items()) {
        flow::DesignStyle style;
        if (!token.is_string() ||
            !flow::style_from_name(token.as_string(), &style)) {
          *error = cat("backends must be an array of backend tokens (",
                       flow::backend_token_list(), ")");
          return false;
        }
        out->styles.push_back(style);
      }
    }
    if (out->styles.empty()) {
      out->styles = {flow::DesignStyle::kFlipFlop,
                     flow::DesignStyle::kMasterSlave,
                     flow::DesignStyle::kThreePhase};
    }
    return true;
  }

  // convert / power_eval / lint: one benchmark, one backend. "backend" is
  // the canonical field; "style" stays as a legacy alias and loses when
  // both are present.
  out->benchmark = doc.get_string("benchmark", "");
  if (out->benchmark.empty()) {
    *error = "missing benchmark";
    return false;
  }
  const std::string token =
      doc.get_string("backend", doc.get_string("style", "3p"));
  if (!flow::style_from_name(token, &out->style)) {
    *error = cat("unknown backend '", token, "' (valid backends: ",
                 flow::backend_token_list(), ")");
    return false;
  }
  return true;
}

std::string request_to_json(const Request& request) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(request.id);
  w.key("type").value(job_type_name(request.type));
  if (request.type == JobType::kStatus ||
      request.type == JobType::kShutdown) {
    w.end_object();
    return w.take();
  }
  if (request.type == JobType::kMatrixSweep) {
    w.key("benchmarks").begin_array();
    for (const std::string& name : request.benchmarks) w.value(name);
    w.end_array();
    w.key("backends").begin_array();
    for (const flow::DesignStyle style : request.styles) {
      w.value(flow::style_token(style));
    }
    w.end_array();
  } else {
    w.key("benchmark").value(request.benchmark);
    w.key("backend").value(flow::style_token(request.style));
  }
  w.key("preset").value(request.spec.preset);
  w.key("workload").value(request.spec.workload);
  w.key("cycles").value(request.spec.cycles);
  w.key("seed").value(request.spec.seed);
  w.key("lanes").value(request.spec.lanes);
  if (request.spec.check_rules) w.key("check_rules").value(true);
  if (request.spec.check_analysis) w.key("check_analysis").value(true);
  w.end_object();
  return w.take();
}

std::string ok_response(std::string_view id, bool cached,
                        std::string_view payload_json) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("ok").value(true);
  w.key("cached").value(cached);
  w.key("payload").raw(payload_json);
  w.end_object();
  return w.take();
}

std::string sweep_response(std::string_view id, std::size_t cells,
                           std::size_t cached_cells,
                           std::string_view payload_array_json) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("ok").value(true);
  w.key("cached").value(cells > 0 && cached_cells == cells);
  w.key("cells").value(cells);
  w.key("cached_cells").value(cached_cells);
  w.key("payload").raw(payload_array_json);
  w.end_object();
  return w.take();
}

std::string status_response(std::string_view id,
                            std::string_view status_object_json) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("ok").value(true);
  w.key("status").raw(status_object_json);
  w.end_object();
  return w.take();
}

std::string error_response(std::string_view id, std::string_view message) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("ok").value(false);
  w.key("error").value(message);
  w.end_object();
  return w.take();
}

std::string power_payload(std::string_view full_payload_json) {
  Json full;
  std::string error;
  if (!Json::parse(full_payload_json, &full, &error) || !full.is_object()) {
    return std::string(full_payload_json);  // pass through, caller guards
  }
  JsonWriter w;
  w.begin_object();
  for (const char* key : {"benchmark", "style", "workload", "seed"}) {
    if (const Json* member = full.find(key);
        member != nullptr && member->is_string()) {
      w.key(key).value(member->as_string());
    }
  }
  for (const char* key : {"cycles", "lanes"}) {
    if (const Json* member = full.find(key);
        member != nullptr && member->is_number()) {
      w.key(key).value(
          static_cast<std::uint64_t>(member->as_number()));
    }
  }
  if (const Json* ok = full.find("ok"); ok != nullptr && ok->is_bool()) {
    w.key("ok").value(ok->as_bool());
  }
  if (const Json* err = full.find("error");
      err != nullptr && err->is_string()) {
    w.key("error").value(err->as_string());
  }
  if (const Json* power = full.find("power_mw");
      power != nullptr && power->is_object()) {
    w.key("power_mw").begin_object();
    for (const auto& [name, value] : power->members()) {
      if (value.is_number()) w.key(name).value(value.as_number());
    }
    w.end_object();
  }
  w.end_object();
  return w.take();
}

namespace {

/// Re-serializes a parsed Json value; member order is preserved by the
/// parser, so copying a cached payload's subtree stays byte-deterministic.
void write_json(JsonWriter& w, const Json& value) {
  switch (value.type()) {
    case Json::Type::kNull: w.null(); break;
    case Json::Type::kBool: w.value(value.as_bool()); break;
    case Json::Type::kNumber: w.value(value.as_number()); break;
    case Json::Type::kString: w.value(value.as_string()); break;
    case Json::Type::kArray:
      w.begin_array();
      for (const Json& item : value.items()) write_json(w, item);
      w.end_array();
      break;
    case Json::Type::kObject:
      w.begin_object();
      for (const auto& [name, member] : value.members()) {
        w.key(name);
        write_json(w, member);
      }
      w.end_object();
      break;
  }
}

}  // namespace

std::string lint_payload(std::string_view full_payload_json) {
  Json full;
  std::string error;
  if (!Json::parse(full_payload_json, &full, &error) || !full.is_object()) {
    return std::string(full_payload_json);  // pass through, caller guards
  }
  JsonWriter w;
  w.begin_object();
  for (const char* key : {"benchmark", "style", "workload", "seed"}) {
    if (const Json* member = full.find(key);
        member != nullptr && member->is_string()) {
      w.key(key).value(member->as_string());
    }
  }
  if (const Json* ok = full.find("ok"); ok != nullptr && ok->is_bool()) {
    w.key("ok").value(ok->as_bool());
  }
  if (const Json* err = full.find("error");
      err != nullptr && err->is_string()) {
    w.key("error").value(err->as_string());
  }
  for (const char* key :
       {"lint_clean", "lint_stages", "lint_first_violation", "domains"}) {
    if (const Json* member = full.find(key); member != nullptr) {
      w.key(key);
      write_json(w, *member);
    }
  }
  w.end_object();
  return w.take();
}

}  // namespace tp::serve
