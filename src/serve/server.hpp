// Conversion-as-a-service server loop.
//
// The Server turns the batch run_matrices engine into a long-lived
// service. Layering:
//
//  - run_wave(): the transport-free core. Takes a batch of request lines,
//    parses them, answers status/shutdown inline, content-addresses every
//    conversion cell (CacheKey over netlist hash, style, options hash,
//    workload, cycles, seed, lanes), serves hits from the ResultCache,
//    deduplicates identical misses within the wave, runs the remaining
//    cells as one wave of single-cell RunPlans on the shared
//    util::Executor (flow::run_task — the exact code path of the batch
//    engine, so a served result is bit-identical to a matrix run), stores
//    fresh payloads back, and returns one Outcome per request with
//    per-request latency. The throughput bench drives this directly.
//
//  - serve(): the transport loop. poll()s a Unix socket, a loopback TCP
//    socket, and/or a job-file drop directory; complete lines from any
//    transport are coalesced into the next wave; responses stream back to
//    the socket that sent them or into "<job>.result" files (written via
//    temp + atomic rename). Returns 0 after a shutdown job, 130 when the
//    external stop flag aborted the loop — after draining the in-flight
//    wave and flushing the cache either way, so completed results are
//    never lost.
//
// Failure containment: a malformed line costs one error response; a
// failing flow costs one failed cell (MatrixResult::error); a corrupt
// cache entry is evicted and recomputed. Nothing short of plan-level API
// misuse throws out of the server.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/serve/cache.hpp"
#include "src/serve/protocol.hpp"
#include "src/util/executor.hpp"
#include "src/util/log.hpp"

namespace tp::serve {

struct ServerOptions {
  CacheOptions cache;
  /// Worker threads for the shared executor; 0 = TP_THREADS/hardware.
  std::size_t threads = 0;
  /// Job-file drop directory ("" disables). Files named *.job holding one
  /// request line each (or several); answered in "<stem>.result".
  std::string drop_dir;
  /// Unix-domain socket path ("" disables).
  std::string socket_path;
  /// Loopback TCP port (0 disables). Binds 127.0.0.1 only.
  int tcp_port = 0;
  /// serve() poll granularity.
  int poll_ms = 50;
  /// External abort flag (e.g. set from a SIGTERM handler; not owned).
  /// Checked between waves and wired into RunPlan::cancel so queued tasks
  /// of an in-flight wave fail fast while running ones drain.
  const std::atomic<bool>* stop = nullptr;
};

struct ServerCounters {
  std::uint64_t requests = 0;    // lines received
  std::uint64_t completed = 0;   // ok responses
  std::uint64_t failed = 0;      // error responses (incl. malformed)
  std::uint64_t malformed = 0;   // unparseable lines
  std::uint64_t cells = 0;       // conversion cells executed or served
  std::uint64_t cells_cached = 0;    // served from cache
  std::uint64_t cells_deduped = 0;   // served from an in-wave duplicate
  std::uint64_t cells_computed = 0;  // actually ran the flow
  std::uint64_t cells_failed = 0;    // flow errors (per-cell)
  std::uint64_t waves = 0;
  std::uint64_t bytes_out = 0;
  double busy_s = 0;  // wall time spent inside run_wave
  CacheStats cache;
};

/// One answered request line.
struct Outcome {
  std::string line;   // the response, newline excluded
  bool ok = false;
  bool cached = false;     // served without running a flow (cache or dedupe)
  bool shutdown = false;   // this was an accepted shutdown request
  double latency_s = 0;    // intake-to-response within the wave
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Executes one batch of request lines; returns one Outcome per line in
  /// input order.
  std::vector<Outcome> run_wave(const std::vector<std::string>& lines);

  /// Convenience single-request wave.
  Outcome handle_line(const std::string& line);

  /// Transport loop (sockets + drop dir) until shutdown/stop; see file
  /// comment for the exit protocol.
  int serve();

  [[nodiscard]] ServerCounters counters() const;
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_requested_;
  }
  ResultCache& cache() { return cache_; }
  util::Executor& executor() { return executor_; }

  /// The status-response JSON object (exposed for tests).
  [[nodiscard]] std::string status_json() const;

 private:
  struct Cell;  // one content-addressed conversion unit of work

  [[nodiscard]] bool stop_requested() const {
    return options_.stop != nullptr &&
           options_.stop->load(std::memory_order_relaxed);
  }
  std::uint64_t benchmark_content_hash(const std::string& name,
                                       std::string* error);
  CacheKey make_key(const Request& request, flow::DesignStyle style,
                    std::uint64_t netlist_hash,
                    const flow::FlowOptions& options) const;

  ServerOptions options_;
  ResultCache cache_;
  util::Executor executor_;
  bool shutdown_requested_ = false;
  Stopwatch uptime_;

  mutable std::mutex mutex_;  // counters + benchmark-hash memo
  ServerCounters counters_;
  std::unordered_map<std::string, std::uint64_t> benchmark_hashes_;
};

}  // namespace tp::serve
