// Line-delimited JSON request/response protocol for the conversion
// service.
//
// One request per line, one response line per request, over any byte
// transport (Unix/TCP socket or job files in a drop directory — see
// server.hpp). Six job types:
//
//   {"id":"j1","type":"convert","benchmark":"s5378","backend":"3p",
//    "preset":"fast","workload":"paper","cycles":48,"seed":7,"lanes":4}
//   {"id":"j2","type":"power_eval", ...same fields...}
//   {"id":"j3","type":"lint", ...same fields...}
//   {"id":"j4","type":"matrix_sweep","benchmarks":["s5378","s9234"],
//    "backends":["ff","3p"],"preset":"paper", ...}
//   {"id":"j5","type":"status"}
//   {"id":"j6","type":"shutdown"}
//
// "backend" names a registered conversion backend by its token (the
// backend registry of src/flow/backend.hpp is the source of truth; status
// lists the valid tokens). "style"/"styles" remain accepted as legacy
// aliases; "backend"/"backends" win when both are present. An unknown
// token is rejected with an ok:false response whose error message lists
// every valid token.
//
// Responses echo the id:
//   {"id":"j1","ok":true,"cached":false,"payload":{...}}        convert
//   {"id":"j2","ok":true,"cached":true,"payload":{...power...}} power_eval
//   {"id":"j3","ok":true,"cached":false,"payload":{...lint...}} lint
//   {"id":"j4","ok":true,"cached":false,"cells":N,"cached_cells":M,
//    "payload":[{...}, ...]}                                    sweep
//   {"id":"j5","ok":true,"status":{...counters...}}             status
//   {"id":"jX","ok":false,"error":"..."}                        any failure
//
// A lint job forces the per-stage rule checks and dataflow analyses on
// (check_rules + check_analysis) and reduces the cached full payload to
// the lint verdict, so it rides the same cache-first wave path as
// power_eval: a convert with checks on fills the cache entry a later lint
// answers from, and vice versa.
//
// Field defaults: preset "paper", workload "paper", cycles 96, seed 7,
// lanes 1, check_rules and check_analysis false. Unknown fields are
// ignored; a malformed
// line or an unknown type/enum value produces an ok:false response, never
// a dropped connection or a crash. Every field that affects results is
// part of the cache key, so two requests share a cache entry iff they
// request the same computation.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/flow/matrix.hpp"

namespace tp::serve {

enum class JobType {
  kConvert,
  kPowerEval,
  kLint,
  kMatrixSweep,
  kStatus,
  kShutdown,
};

std::string_view job_type_name(JobType type);

/// Shared knobs of one conversion computation; the unit the cache keys on.
struct JobSpec {
  std::string preset = "paper";    // FlowOptions preset name
  std::string workload = "paper";  // stimulus workload name
  std::uint64_t cycles = 96;
  std::uint64_t seed = 7;
  std::uint64_t lanes = 1;
  bool check_rules = false;     // lint checkpoints (part of the cache key)
  bool check_analysis = false;  // dataflow-analysis checkpoints (cache key)
};

struct Request {
  std::string id;  // client-chosen correlation id, echoed back
  JobType type = JobType::kStatus;
  JobSpec spec;
  // convert / power_eval: exactly one benchmark and style.
  std::string benchmark;
  flow::DesignStyle style = flow::DesignStyle::kThreePhase;
  // matrix_sweep: the grid (empty benchmarks = every built-in).
  std::vector<std::string> benchmarks;
  std::vector<flow::DesignStyle> styles;
};

/// Parses one request line. On failure returns false and sets *error to a
/// client-facing message; *out keeps whatever id could be recovered so the
/// error response can still be correlated.
bool parse_request(std::string_view line, Request* out, std::string* error);

/// Serializes a request back to its wire form (load generator, job-file
/// writers, tests).
std::string request_to_json(const Request& request);

/// Response builders. `payload` must already be JSON (it is spliced raw).
std::string ok_response(std::string_view id, bool cached,
                        std::string_view payload_json);
std::string sweep_response(std::string_view id, std::size_t cells,
                           std::size_t cached_cells,
                           std::string_view payload_array_json);
std::string status_response(std::string_view id,
                            std::string_view status_object_json);
std::string error_response(std::string_view id, std::string_view message);

/// Reduces a full convert payload to the power_eval payload: identity
/// fields plus the power breakdown. Deterministic bytes-to-bytes, so the
/// cache can store only full payloads and still serve byte-identical
/// power_eval responses.
std::string power_payload(std::string_view full_payload_json);

/// Reduces a full convert payload to the lint payload: identity fields
/// plus the per-stage lint verdict (lint_clean, lint_stages,
/// lint_first_violation) and the clock/reset-domain summary ("domains").
/// Deterministic bytes-to-bytes like power_payload().
std::string lint_payload(std::string_view full_payload_json);

}  // namespace tp::serve
