#include "src/serve/cache.hpp"

#include <sys/stat.h>

#include <cstdio>
#include <utility>

#include "src/flow/serialize.hpp"
#include "src/util/hash.hpp"
#include "src/util/log.hpp"
#include "src/util/strcat.hpp"

namespace tp::serve {
namespace {

using util::fnv1a;
using util::hash_combine;

// Disk entry layout (text header, then raw payload bytes):
//   TPCACHE <version>\n
//   <digest-hex> <payload-bytes>\n
//   <payload>
constexpr std::string_view kMagic = "TPCACHE";

std::uint64_t key_fold(const CacheKey& key, std::uint64_t seed) {
  std::uint64_t h = hash_combine(seed, kCacheFormatVersion);
  h = hash_combine(h, key.netlist_hash);
  h = hash_combine(h, static_cast<std::uint64_t>(key.style));
  h = hash_combine(h, key.options_hash);
  h = hash_combine(h, fnv1a(key.workload));
  h = hash_combine(h, key.cycles);
  h = hash_combine(h, key.seed);
  h = hash_combine(h, key.lanes);
  return h;
}

}  // namespace

std::pair<std::uint64_t, std::uint64_t> CacheKey::digest() const {
  // Two passes with independent seeds: 128 bits make accidental digest
  // collisions across a persistent, shared cache directory negligible.
  return {key_fold(*this, 0x74706361636865ULL),
          key_fold(*this, 0x32707633706877ULL)};
}

std::string CacheKey::digest_hex() const {
  const auto [hi, lo] = digest();
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

ResultCache::ResultCache(CacheOptions options)
    : options_(std::move(options)) {
  if (options_.memory_entries == 0) options_.memory_entries = 1;
  if (!options_.dir.empty()) {
    ::mkdir(options_.dir.c_str(), 0755);  // EEXIST is fine
  }
}

ResultCache::~ResultCache() {
  std::lock_guard<std::mutex> lock(mutex_);
  flush_locked();
}

std::string ResultCache::file_path(const std::string& hex) const {
  return cat(options_.dir, "/", hex, ".tpc");
}

std::optional<std::string> ResultCache::get(const CacheKey& key) {
  const auto digest = key.digest();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(digest);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
    ++stats_.memory_hits;
    stats_.bytes_served += it->second->payload.size();
    return it->second->payload;
  }
  if (!options_.dir.empty()) {
    const std::string hex = key.digest_hex();
    std::optional<std::string> payload = read_disk(hex);
    if (payload.has_value()) {
      ++stats_.disk_hits;
      stats_.bytes_served += payload->size();
      // Promote to memory, already clean (it came from disk).
      lru_.push_front(Entry{digest, hex, *payload, /*dirty=*/false});
      index_[digest] = lru_.begin();
      evict_excess();
      return payload;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::put(const CacheKey& key, std::string payload) {
  const auto digest = key.digest();
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.insertions;
  stats_.bytes_stored += payload.size();
  auto it = index_.find(digest);
  if (it != index_.end()) {
    if (!it->second->dirty) ++dirty_count_;
    it->second->payload = std::move(payload);
    it->second->dirty = true;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(
        Entry{digest, key.digest_hex(), std::move(payload), /*dirty=*/true});
    index_[digest] = lru_.begin();
    ++dirty_count_;
    evict_excess();
  }
  if (dirty_count_ >= options_.flush_threshold) flush_locked();
}

void ResultCache::evict_excess() {
  while (lru_.size() > options_.memory_entries) {
    Entry& victim = lru_.back();
    if (victim.dirty) {
      write_entry(victim);  // never drop an unpersisted result
      --dirty_count_;
    }
    index_.erase(victim.digest);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void ResultCache::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  flush_locked();
}

void ResultCache::flush_locked() {
  if (dirty_count_ == 0) return;
  for (Entry& entry : lru_) {
    if (!entry.dirty) continue;
    write_entry(entry);
    entry.dirty = false;
  }
  dirty_count_ = 0;
}

void ResultCache::write_entry(const Entry& entry) {
  if (options_.dir.empty()) return;
  const std::string path = file_path(entry.hex);
  const std::string tmp = cat(path, ".tmp");
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    log_warn(cat("cache: cannot write ", tmp));
    return;
  }
  std::fprintf(f, "%s %u\n%s %zu\n", std::string(kMagic).c_str(),
               kCacheFormatVersion, entry.hex.c_str(),
               entry.payload.size());
  std::fwrite(entry.payload.data(), 1, entry.payload.size(), f);
  const bool ok = std::fflush(f) == 0;
  std::fclose(f);
  // Atomic publish: readers only ever see a complete file or none.
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    log_warn(cat("cache: failed to publish ", path));
    return;
  }
  ++stats_.files_written;
}

std::optional<std::string> ResultCache::read_disk(const std::string& hex) {
  const std::string path = file_path(hex);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;  // plain miss, not corruption

  const auto reject = [&]() -> std::optional<std::string> {
    std::fclose(f);
    std::remove(path.c_str());
    ++stats_.rejected;
    return std::nullopt;
  };

  char magic[16];
  unsigned version = 0;
  if (std::fscanf(f, "%15s %u\n", magic, &version) != 2 ||
      kMagic != magic || version != kCacheFormatVersion) {
    return reject();
  }
  char stored_hex[40];
  std::size_t size = 0;
  if (std::fscanf(f, "%39s %zu", stored_hex, &size) != 2 ||
      hex != stored_hex || std::fgetc(f) != '\n') {
    return reject();
  }
  // Arbitrary sanity bound: a matrix-sweep payload is tens of KB; anything
  // in the hundreds of MB is a damaged length field.
  if (size > (128u << 20)) return reject();
  std::string payload(size, '\0');
  if (std::fread(payload.data(), 1, size, f) != size ||
      std::fgetc(f) != EOF) {
    return reject();  // truncated or trailing garbage
  }
  std::fclose(f);
  return payload;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ResultCache::memory_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace tp::serve
