// Shared non-cryptographic hashing: FNV-1a, splitmix64 mixing, and the
// stream fingerprint the determinism gates compare.
//
// Every digest in the project routes through these helpers so that task
// seeding (src/flow/matrix.cpp), the canonical netlist hash
// (src/netlist/hash.hpp), and the content-addressed result cache
// (src/serve/cache.hpp) agree on one stable, platform-independent hash
// family — no std::hash anywhere, its values are implementation-defined.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace tp::util {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// FNV-1a over text, continuing from `seed` so hashes can be chained:
/// fnv1a("ab") == fnv1a("b", fnv1a("a")).
[[nodiscard]] constexpr std::uint64_t fnv1a(
    std::string_view text, std::uint64_t seed = kFnvOffset) {
  std::uint64_t hash = seed;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

/// FNV-1a over raw bytes, same chaining rule.
[[nodiscard]] std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                                  std::uint64_t seed = kFnvOffset);

/// splitmix64 finalizer (Steele et al.): bijective avalanche mix.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent combine: folds `value` into `seed` with full avalanche,
/// so hash_combine(hash_combine(s, a), b) != hash_combine(hash_combine(s,
/// b), a) in general.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t value) {
  return splitmix64(seed ^ splitmix64(value));
}

/// FNV-1a fingerprint of a rows-of-bytes stream; both the row shape and
/// every byte are significant. flow::stream_hash delegates here, and the
/// serve cache uses it for payload checksums.
[[nodiscard]] std::uint64_t stream_hash(
    const std::vector<std::vector<std::uint8_t>>& rows);

}  // namespace tp::util
