// Deterministic pseudo-random number generation (xoshiro256**).
//
// All stochastic steps in the project (benchmark circuit generation, random
// stimulus, property-test sweeps) draw from this generator so that every
// build reproduces the same circuits and the same measurements.
#pragma once

#include <cstdint>
#include <vector>

namespace tp {

/// xoshiro256** by Blackman & Vigna; seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit word.
  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli draw with probability p of true.
  bool chance(double p);

  /// In-place Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[below(i)]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace tp
