#include "src/util/hash.hpp"

namespace tp::util {

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                    std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const std::uint8_t b : bytes) {
    hash ^= b;
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t stream_hash(
    const std::vector<std::vector<std::uint8_t>>& rows) {
  std::uint64_t hash = kFnvOffset;
  for (const auto& row : rows) {
    hash ^= row.size();
    hash *= kFnvPrime;
    for (const std::uint8_t bit : row) {
      hash ^= bit;
      hash *= kFnvPrime;
    }
  }
  return hash;
}

}  // namespace tp::util
