// Strong index types used across the netlist and derived graphs.
//
// Every container in the project is indexed by a dedicated id type so that a
// CellId can never be accidentally used to subscript a net table. Ids are
// 32-bit, trivially copyable, hashable, and have a distinguished invalid
// value (kInvalidIndex) used as "no id".
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace tp {

inline constexpr std::uint32_t kInvalidIndex =
    std::numeric_limits<std::uint32_t>::max();

/// CRTP-free strong id: Tag differentiates unrelated id spaces.
template <class Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalidIndex; }

  friend constexpr bool operator==(StrongId, StrongId) = default;
  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  std::uint32_t value_ = kInvalidIndex;
};

struct CellTag {};
struct NetTag {};
struct NodeTag {};   // generic graph node (FF graph, flow graph, ...)
struct VarTag {};    // ILP variable
struct ConsTag {};   // ILP constraint

using CellId = StrongId<CellTag>;
using NetId = StrongId<NetTag>;
using NodeId = StrongId<NodeTag>;
using VarId = StrongId<VarTag>;
using ConsId = StrongId<ConsTag>;

}  // namespace tp

template <class Tag>
struct std::hash<tp::StrongId<Tag>> {
  std::size_t operator()(tp::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
