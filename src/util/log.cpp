#include "src/util/log.hpp"

#include <atomic>
#include <cstdio>

namespace tp {
namespace {

// Atomic so flow tasks on executor workers may log (or flip the level)
// without a data race.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() {
  return g_level.load(std::memory_order_relaxed);
}

void log(LogLevel level, std::string_view message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

void require(bool condition, std::string_view message) {
  if (!condition) throw Error(std::string(message));
}

}  // namespace tp
