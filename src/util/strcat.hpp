// String building for diagnostics (GCC 12 lacks <format>).
#pragma once

#include <sstream>
#include <string>

namespace tp {

/// Concatenates the stream representations of all arguments.
template <class... Args>
std::string cat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace tp
