// Minimal leveled logging to stderr plus wall-clock step timing.
#pragma once

#include <chrono>
#include <string>
#include <string_view>

namespace tp {

enum class LogLevel { kDebug, kInfo, kWarn, kError };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, std::string_view message);

inline void log_debug(std::string_view m) { log(LogLevel::kDebug, m); }
inline void log_info(std::string_view m) { log(LogLevel::kInfo, m); }
inline void log_warn(std::string_view m) { log(LogLevel::kWarn, m); }
inline void log_error(std::string_view m) { log(LogLevel::kError, m); }

/// Wall-clock stopwatch used for the flow run-time accounting (Sec. V of the
/// paper reports per-step run-time ratios).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Thrown on violated invariants in library code; carries a human-readable
/// diagnostic. Used instead of assert() so that misuse of the public API is
/// reported in release builds too.
class Error : public std::exception {
 public:
  explicit Error(std::string message) : message_(std::move(message)) {}
  [[nodiscard]] const char* what() const noexcept override {
    return message_.c_str();
  }

 private:
  std::string message_;
};

/// Throws tp::Error with `message` when `condition` is false.
void require(bool condition, std::string_view message);

}  // namespace tp
