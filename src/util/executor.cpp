#include "src/util/executor.hpp"

#include <cstdlib>

namespace tp::util {
namespace {

// Which executor (if any) owns the current thread, and which deque is its
// home. Lets submit() from a worker push to that worker's own deque front
// and lets run_one() start its scan locally.
thread_local const Executor* tl_owner = nullptr;
thread_local std::size_t tl_home = 0;

}  // namespace

std::size_t Executor::default_thread_count() {
  if (const char* env = std::getenv("TP_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return parsed > 256 ? 256 : static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

Executor::Executor(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  deques_.reserve(threads + 1);
  for (std::size_t i = 0; i < threads + 1; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Executor::~Executor() {
  // Drain: anything still queued must run so outstanding futures resolve.
  std::function<void()> task;
  while (try_pop(deques_.size() - 1, task)) task();
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void Executor::enqueue(std::function<void()> task) {
  const std::size_t home =
      tl_owner == this ? tl_home : deques_.size() - 1;
  {
    std::lock_guard<std::mutex> lock(deques_[home]->mutex);
    // Workers push to their own front (LIFO: the subtask reuses the data
    // the parent just touched); external submissions append.
    if (tl_owner == this) {
      deques_[home]->tasks.push_front(std::move(task));
    } else {
      deques_[home]->tasks.push_back(std::move(task));
    }
  }
  {
    // Bump under the sleep mutex so a worker between its empty-deque scan
    // and its wait() cannot miss this submission (lost-wakeup race).
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  wake_.notify_one();
}

bool Executor::try_pop(std::size_t home, std::function<void()>& out) {
  const std::size_t n = deques_.size();
  for (std::size_t round = 0; round < n; ++round) {
    const std::size_t i = (home + round) % n;
    Deque& dq = *deques_[i];
    std::lock_guard<std::mutex> lock(dq.mutex);
    if (dq.tasks.empty()) continue;
    if (i == home) {
      out = std::move(dq.tasks.front());  // own deque: newest first
      dq.tasks.pop_front();
    } else {
      out = std::move(dq.tasks.back());  // steal the oldest (FIFO end)
      dq.tasks.pop_back();
    }
    pending_.fetch_sub(1, std::memory_order_acquire);
    return true;
  }
  return false;
}

bool Executor::run_one() {
  const std::size_t home =
      tl_owner == this ? tl_home : deques_.size() - 1;
  std::function<void()> task;
  if (!try_pop(home, task)) return false;
  task();
  return true;
}

void Executor::worker_loop(std::size_t index) {
  tl_owner = this;
  tl_home = index;
  std::function<void()> task;
  while (true) {
    if (try_pop(index, task)) {
      task();
      task = nullptr;  // release captures before sleeping
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    wake_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        pending_.load(std::memory_order_acquire) == 0) {
      break;
    }
  }
  tl_owner = nullptr;
}

}  // namespace tp::util
