// Minimal hand-rolled JSON: a recursive-descent reader and a streaming
// writer, shared by the serving protocol (src/serve/protocol.hpp) and the
// bench emitters. No external dependency, no DOM mutation — parse into an
// immutable Json value, or build output through JsonWriter.
//
// Reader guarantees the daemon's robustness contract: any malformed input
// (bad syntax, unterminated strings, absurd nesting) is a clean parse
// error, never a crash or an uncaught exception. Numbers are doubles;
// object member order is preserved; duplicate keys keep the first.
//
// Writer guarantees the cache's byte-identity contract: the same values
// written in the same order produce the same bytes, with doubles printed
// via "%.17g" (shortest round-trip-exact form on this toolchain).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tp::util {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document (surrounding whitespace allowed, trailing
  /// garbage rejected). Returns false and sets *error on malformed input.
  static bool parse(std::string_view text, Json* out, std::string* error);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const std::vector<Json>& items() const { return items_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;

  // Typed member accessors with defaults — the protocol's fields are all
  // optional-with-default, so misuse degrades to the default, not a throw.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback) const;
  [[nodiscard]] std::uint64_t get_u64(std::string_view key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Append-only JSON builder. Keys and values must alternate correctly
/// inside objects; the writer inserts commas itself. No validation beyond
/// that — it is a formatting tool, not a schema checker.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key (quoted + escaped).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);  // quoted + escaped
  JsonWriter& value(const char* text);
  JsonWriter& value(bool b);
  JsonWriter& value(std::int64_t n);
  JsonWriter& value(std::uint64_t n);
  JsonWriter& value(int n) { return value(static_cast<std::int64_t>(n)); }
  JsonWriter& value(double d);  // "%.17g", round-trip exact
  JsonWriter& null();

  /// Splices pre-serialized JSON verbatim (e.g. a cached payload).
  JsonWriter& raw(std::string_view json);

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void comma();
  std::string out_;
  std::vector<bool> first_;     // per open scope: no element emitted yet
  bool pending_key_ = false;    // a key was just written; next is its value
};

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view text);

}  // namespace tp::util
