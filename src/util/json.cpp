#include "src/util/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "src/util/strcat.hpp"

namespace tp::util {
namespace {

/// Nesting bound: a drop-directory daemon must shrug off "[[[[[..." without
/// exhausting the stack.
constexpr int kMaxDepth = 64;

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_utf8(std::string& out, unsigned codepoint) {
  if (codepoint < 0x80) {
    out += static_cast<char>(codepoint);
  } else if (codepoint < 0x800) {
    out += static_cast<char>(0xc0 | (codepoint >> 6));
    out += static_cast<char>(0x80 | (codepoint & 0x3f));
  } else {
    out += static_cast<char>(0xe0 | (codepoint >> 12));
    out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (codepoint & 0x3f));
  }
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool run(Json* out, std::string* error) {
    skip_space();
    if (!parse_value(out, 0)) {
      if (error) *error = cat("json: ", error_, " at offset ", pos_);
      return false;
    }
    skip_space();
    if (pos_ != text_.size()) {
      if (error) *error = cat("json: trailing garbage at offset ", pos_);
      return false;
    }
    return true;
  }

 private:
  bool fail(std::string_view what) {
    if (error_.empty()) error_ = what;
    return false;
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool parse_value(Json* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out->type_ = Json::Type::kString;
        return parse_string(&out->string_);
      case 't':
        out->type_ = Json::Type::kBool;
        out->bool_ = true;
        return literal("true");
      case 'f':
        out->type_ = Json::Type::kBool;
        out->bool_ = false;
        return literal("false");
      case 'n':
        out->type_ = Json::Type::kNull;
        return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(Json* out, int depth) {
    out->type_ = Json::Type::kObject;
    ++pos_;  // '{'
    skip_space();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_space();
      if (at_end() || peek() != '"') return fail("expected member key");
      std::string key;
      if (!parse_string(&key)) return false;
      skip_space();
      if (at_end() || peek() != ':') return fail("expected ':'");
      ++pos_;
      skip_space();
      Json value;
      if (!parse_value(&value, depth + 1)) return false;
      if (out->find(key) == nullptr) {
        out->members_.emplace_back(std::move(key), std::move(value));
      }
      skip_space();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Json* out, int depth) {
    out->type_ = Json::Type::kArray;
    ++pos_;  // '['
    skip_space();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_space();
      Json value;
      if (!parse_value(&value, depth + 1)) return false;
      out->items_.push_back(std::move(value));
      skip_space();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (at_end()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned codepoint = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            codepoint <<= 4;
            if (h >= '0' && h <= '9') codepoint |= h - '0';
            else if (h >= 'a' && h <= 'f') codepoint |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') codepoint |= h - 'A' + 10;
            else return fail("bad \\u escape");
          }
          append_utf8(*out, codepoint);
          break;
        }
        default: return fail("unknown escape");
      }
    }
  }

  bool parse_number(Json* out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                         peek() == '.' || peek() == 'e' || peek() == 'E' ||
                         peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    out->type_ = Json::Type::kNumber;
    out->number_ = value;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool Json::parse(std::string_view text, Json* out, std::string* error) {
  *out = Json();
  return JsonParser(text).run(out, error);
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string Json::get_string(std::string_view key,
                             std::string_view fallback) const {
  const Json* member = find(key);
  if (member == nullptr || !member->is_string()) {
    return std::string(fallback);
  }
  return member->as_string();
}

std::uint64_t Json::get_u64(std::string_view key,
                            std::uint64_t fallback) const {
  const Json* member = find(key);
  if (member == nullptr || !member->is_number()) return fallback;
  const double n = member->as_number();
  if (n < 0) return fallback;
  return static_cast<std::uint64_t>(n);
}

bool Json::get_bool(std::string_view key, bool fallback) const {
  const Json* member = find(key);
  if (member == nullptr || !member->is_bool()) return fallback;
  return member->as_bool();
}

// --- JsonWriter -----------------------------------------------------------

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes the "key": pair, no comma
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  out_ += '"';
  append_escaped(out_, name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma();
  out_ += '"';
  append_escaped(out_, text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t n) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t n) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(n));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma();
  out_ += json;
  return *this;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  append_escaped(out, text);
  return out;
}

}  // namespace tp::util
