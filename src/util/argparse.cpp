#include "src/util/argparse.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace tp::util {

ArgParser::ArgParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void ArgParser::add_flag(std::string name, bool* target, std::string help) {
  options_.push_back(Option{std::move(name), "", std::move(help),
                            Kind::kFlag, target});
}

void ArgParser::add_value(std::string name, std::string* target,
                          std::string help, std::string metavar) {
  options_.push_back(Option{std::move(name), std::move(metavar),
                            std::move(help), Kind::kString, target});
}

void ArgParser::add_value(std::string name, std::size_t* target,
                          std::string help, std::string metavar) {
  options_.push_back(Option{std::move(name), std::move(metavar),
                            std::move(help), Kind::kSize, target});
}

void ArgParser::add_value(std::string name, int* target, std::string help,
                          std::string metavar) {
  options_.push_back(Option{std::move(name), std::move(metavar),
                            std::move(help), Kind::kInt, target});
}

void ArgParser::add_value(std::string name, double* target,
                          std::string help, std::string metavar) {
  options_.push_back(Option{std::move(name), std::move(metavar),
                            std::move(help), Kind::kDouble, target});
}

void ArgParser::add_list(std::string name,
                         std::vector<std::string>* target, std::string help,
                         std::string metavar) {
  options_.push_back(Option{std::move(name), std::move(metavar),
                            std::move(help), Kind::kList, target});
}

void ArgParser::add_positionals(std::vector<std::string>* target,
                                std::string metavar, std::string help) {
  positionals_ = target;
  positional_metavar_ = std::move(metavar);
  positional_help_ = std::move(help);
}

bool ArgParser::apply(const Option& option, const std::string& value,
                      std::string* error) {
  try {
    switch (option.kind) {
      case Kind::kFlag:
        *static_cast<bool*>(option.target) = true;
        break;
      case Kind::kString:
        *static_cast<std::string*>(option.target) = value;
        break;
      case Kind::kSize:
        *static_cast<std::size_t*>(option.target) =
            static_cast<std::size_t>(std::stoul(value));
        break;
      case Kind::kInt:
        *static_cast<int*>(option.target) = std::stoi(value);
        break;
      case Kind::kDouble:
        *static_cast<double*>(option.target) = std::stod(value);
        break;
      case Kind::kList:
        static_cast<std::vector<std::string>*>(option.target)
            ->push_back(value);
        break;
    }
  } catch (const std::exception&) {
    *error = "invalid value '" + value + "' for " + option.name;
    return false;
  }
  return true;
}

bool ArgParser::parse(int argc, char** argv, std::string* error,
                      bool* help_requested) {
  *help_requested = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      *help_requested = true;
      return true;
    }
    const auto it =
        std::find_if(options_.begin(), options_.end(),
                     [&](const Option& o) { return o.name == arg; });
    if (it == options_.end()) {
      if (!arg.empty() && arg[0] != '-' && positionals_ != nullptr) {
        positionals_->push_back(arg);
        continue;
      }
      *error = "unknown argument '" + arg + "'";
      return false;
    }
    std::string value;
    if (it->kind != Kind::kFlag) {
      if (i + 1 >= argc) {
        *error = it->name + " requires a " + it->metavar + " argument";
        return false;
      }
      value = argv[++i];
    }
    if (!apply(*it, value, error)) return false;
  }
  return true;
}

void ArgParser::parse_or_exit(int argc, char** argv) {
  std::string error;
  bool help = false;
  if (!parse(argc, argv, &error, &help)) {
    std::fprintf(stderr, "%s: %s\n%s", program_.c_str(), error.c_str(),
                 usage().c_str());
    std::exit(2);
  }
  if (help) {
    std::fputs(usage().c_str(), stdout);
    std::exit(0);
  }
}

std::string ArgParser::usage() const {
  std::string text = "usage: " + program_ + " [options]";
  if (positionals_ != nullptr) {
    text += " [" + positional_metavar_ + "...]";
  }
  text += "\n  " + summary_ + "\n\noptions:\n";
  std::size_t width = 0;
  std::vector<std::string> lefts;
  lefts.reserve(options_.size());
  for (const Option& option : options_) {
    std::string left = option.name;
    if (option.kind != Kind::kFlag) left += " " + option.metavar;
    width = std::max(width, left.size());
    lefts.push_back(std::move(left));
  }
  for (std::size_t i = 0; i < options_.size(); ++i) {
    text += "  " + lefts[i];
    text.append(width - lefts[i].size() + 2, ' ');
    text += options_[i].help + "\n";
  }
  text += "  --help";
  text.append(width > 6 ? width - 6 + 2 : 2, ' ');
  text += "print this help and exit\n";
  if (positionals_ != nullptr && !positional_help_.empty()) {
    text += "\n" + positional_metavar_ + ": " + positional_help_ + "\n";
  }
  return text;
}

}  // namespace tp::util
