// Tiny declarative command-line parser shared by the example CLIs
// (flow_cli, lint_cli, matrix_cli) and the benchmark drivers — replaces
// their previously hand-rolled, subtly inconsistent argc/argv loops.
//
//   tp::util::ArgParser parser("flow_cli", "convert a benchmark ...");
//   parser.add_value("--circuit", &circuit, "built-in benchmark name",
//                    "NAME");
//   parser.add_flag("--stats", &show_stats, "print structural statistics");
//   parser.parse_or_exit(argc, argv);
//
// Supported syntax: `--name VALUE` for values (repeatable for list
// targets), bare `--name` for flags, and positional operands collected
// into an optional std::vector<std::string>. `--help` prints a uniform
// usage block (flag column, metavar, help text) and exits 0; unknown or
// malformed arguments print the same block to stderr and exit 2.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tp::util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string summary);

  /// Bare boolean switch: present sets *target to true.
  void add_flag(std::string name, bool* target, std::string help);

  /// `--name VALUE` options for the common target types. std::size_t and
  /// int values are parsed with std::stoul/std::stoi; a malformed number
  /// is a usage error.
  void add_value(std::string name, std::string* target, std::string help,
                 std::string metavar = "VALUE");
  void add_value(std::string name, std::size_t* target, std::string help,
                 std::string metavar = "N");
  void add_value(std::string name, int* target, std::string help,
                 std::string metavar = "N");
  void add_value(std::string name, double* target, std::string help,
                 std::string metavar = "X");
  /// Repeatable `--name VALUE`; each occurrence appends.
  void add_list(std::string name, std::vector<std::string>* target,
                std::string help, std::string metavar = "VALUE");

  /// Collects non-flag operands (default: operands are a usage error).
  void add_positionals(std::vector<std::string>* target, std::string metavar,
                       std::string help);

  /// Parses argv. Returns true on success; false with *error set on an
  /// unknown flag, missing value, or malformed number. `--help` is
  /// reported via *help_requested without touching any target.
  bool parse(int argc, char** argv, std::string* error,
             bool* help_requested);

  /// parse() + the uniform exit protocol: --help prints usage to stdout
  /// and exits 0; errors print the message and usage to stderr and exit
  /// 2.
  void parse_or_exit(int argc, char** argv);

  /// The uniform usage/help block.
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kFlag, kString, kSize, kInt, kDouble, kList };
  struct Option {
    std::string name;
    std::string metavar;
    std::string help;
    Kind kind;
    void* target;
  };

  bool apply(const Option& option, const std::string& value,
             std::string* error);

  std::string program_;
  std::string summary_;
  std::vector<Option> options_;
  std::vector<std::string>* positionals_ = nullptr;
  std::string positional_metavar_;
  std::string positional_help_;
};

}  // namespace tp::util
