// Work-stealing thread pool for the parallel flow engine.
//
// The conversion flow is embarrassingly parallel across benchmark x style
// tasks (src/flow/matrix.hpp) and across the opt-in per-stage SEC / lint
// checkpoints inside one flow — every task is a pure function of its
// inputs. The Executor runs such tasks on a fixed set of worker threads
// with per-worker deques and LIFO-local / FIFO-steal scheduling:
// submissions from a worker go to its own deque front (keeping the hot
// netlist snapshot in cache), idle workers steal from the back of their
// peers' deques.
//
// Deadlock-free nesting: a task may submit further tasks and join them
// with Executor::wait(), which *helps* — it runs pending tasks on the
// calling thread while the future is not ready — so a worker blocked on a
// subtask's future makes progress instead of starving the pool. The same
// helping loop lets the main thread participate, so an Executor with one
// worker still overlaps with its caller.
//
// Exceptions thrown by a task are captured in its future (via
// std::packaged_task) and rethrown at the join point.
//
// Worker count: `Executor(n)`; `Executor()` uses default_thread_count(),
// which honours the TP_THREADS environment variable and otherwise falls
// back to std::thread::hardware_concurrency().
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace tp::util {

class Executor {
 public:
  /// Starts `threads` workers; 0 means default_thread_count().
  explicit Executor(std::size_t threads = 0);

  /// Joins all workers. Pending tasks are drained first so futures
  /// obtained from submit() never dangle.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// TP_THREADS environment override (clamped to [1, 256]), otherwise
  /// std::thread::hardware_concurrency(), never 0.
  static std::size_t default_thread_count();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Schedules `fn` and returns a future for its result. Thread-safe;
  /// callable from worker threads (nested submission).
  template <class F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs one pending task on the calling thread if any is available.
  /// Returns false when every deque was empty at the time of the scan.
  bool run_one();

  /// Joins `future`, running pending tasks on the calling thread while it
  /// is not ready (help-first join: safe to call from inside a task).
  /// Rethrows the task's exception, if any.
  template <class T>
  T wait(std::future<T> future) {
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!run_one()) {
        // Nothing to help with: block on the future itself (bounded, so
        // a task enqueued meanwhile gets picked up on the next lap).
        future.wait_for(std::chrono::milliseconds(1));
      }
    }
    return future.get();
  }

  /// Runs `fn(begin, end)` over [0, n) in `grain`-sized chunks as pool
  /// tasks, joining them before returning (help-first, so it is safe from
  /// inside a task). Inline fallback: a null `this`-less call cannot exist,
  /// so callers with an optional pool use the free parallel_chunks() below.
  /// Determinism contract: chunk boundaries depend only on (n, grain) and
  /// every index is processed exactly once, so per-index disjoint writes —
  /// or per-chunk partial results the caller folds in chunk order — are
  /// bit-identical to the serial `fn(0, n)` at any thread count.
  template <class F>
  void for_chunks(std::size_t n, std::size_t grain, const F& fn) {
    std::vector<std::future<void>> futures;
    futures.reserve(n / std::max<std::size_t>(grain, 1) + 1);
    for (std::size_t begin = 0; begin < n; begin += grain) {
      const std::size_t end = std::min(n, begin + grain);
      futures.push_back(submit([&fn, begin, end] { fn(begin, end); }));
    }
    for (auto& future : futures) wait(std::move(future));
  }

 private:
  // One deque per worker plus one (index workers_.size()) for external
  // submitters; each guarded by its own mutex. Simple and TSan-clean —
  // the flow tasks are milliseconds to seconds, so queue contention is
  // noise.
  struct Deque {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void enqueue(std::function<void()> task);
  bool try_pop(std::size_t home, std::function<void()>& out);
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable wake_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> stop_{false};
};

/// parallel_chunks(executor, n, grain, fn): Executor::for_chunks with an
/// optional pool — a null executor (or fewer than two chunks of work) runs
/// `fn(0, n)` inline. The transform stages call this so a serial build and
/// a parallel build share one code path and one result.
template <class F>
void parallel_chunks(Executor* executor, std::size_t n, std::size_t grain,
                     const F& fn) {
  if (executor == nullptr || n <= grain) {
    fn(std::size_t{0}, n);
    return;
  }
  executor->for_chunks(n, grain, fn);
}

}  // namespace tp::util
