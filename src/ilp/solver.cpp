#include "src/ilp/solver.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/log.hpp"

namespace tp::ilp {
namespace {

constexpr double kEps = 1e-9;

struct Occurrence {
  std::uint32_t cons;
  double coeff;
};

class BranchAndBound {
 public:
  BranchAndBound(const Model& model, const SolveOptions& options)
      : model_(model), options_(options) {
    const std::size_t n = model.num_vars();
    value_.assign(n, -1);
    occurrences_.resize(n);
    min_act_.resize(model.num_constraints());
    max_act_.resize(model.num_constraints());
    free_negative_obj_ = 0;
    for (std::size_t v = 0; v < n; ++v) {
      free_negative_obj_ += std::min(0.0, model.objective_coeff(VarId{
                                              static_cast<std::uint32_t>(v)}));
    }
    for (std::uint32_t c = 0; c < model.num_constraints(); ++c) {
      const Constraint& cons = model.constraint(ConsId{c});
      double lo = 0, hi = 0;
      for (const Term& t : cons.terms) {
        lo += std::min(0.0, t.coeff);
        hi += std::max(0.0, t.coeff);
        occurrences_[t.var.value()].push_back({c, t.coeff});
      }
      min_act_[c] = lo;
      max_act_[c] = hi;
    }
  }

  Solution run() {
    Solution solution;
    timer_.reset();
    // Root propagation over all constraints.
    for (std::uint32_t c = 0; c < model_.num_constraints(); ++c) {
      dirty_.push_back(c);
    }
    bool ok = propagate();
    if (ok) ok = search();
    solution.nodes = nodes_;
    solution.seconds = timer_.seconds();
    if (has_incumbent_) {
      solution.values = incumbent_;
      solution.objective = incumbent_obj_;
      solution.status = limits_hit_ ? SolveStatus::kFeasible
                                    : SolveStatus::kOptimal;
    } else {
      solution.status =
          limits_hit_ ? SolveStatus::kUnknown : SolveStatus::kInfeasible;
    }
    return solution;
  }

 private:
  /// Fixes a variable, updates activities, and records the trail entry.
  /// Returns false on an immediate conflict in a touched constraint.
  bool assign(std::uint32_t var, std::int8_t val) {
    value_[var] = val;
    trail_.push_back(var);
    const double obj =
        model_.objective_coeff(VarId{var});
    if (val == 1) fixed_obj_ += obj;
    free_negative_obj_ -= std::min(0.0, obj);
    for (const Occurrence& occ : occurrences_[var]) {
      const double contribution = val ? occ.coeff : 0.0;
      min_act_[occ.cons] += contribution - std::min(0.0, occ.coeff);
      max_act_[occ.cons] += contribution - std::max(0.0, occ.coeff);
      dirty_.push_back(occ.cons);
    }
    return true;
  }

  void undo_to(std::size_t mark) {
    while (trail_.size() > mark) {
      const std::uint32_t var = trail_.back();
      trail_.pop_back();
      const std::int8_t val = value_[var];
      value_[var] = -1;
      const double obj = model_.objective_coeff(VarId{var});
      if (val == 1) fixed_obj_ -= obj;
      free_negative_obj_ += std::min(0.0, obj);
      for (const Occurrence& occ : occurrences_[var]) {
        const double contribution = val ? occ.coeff : 0.0;
        min_act_[occ.cons] -= contribution - std::min(0.0, occ.coeff);
        max_act_[occ.cons] -= contribution - std::max(0.0, occ.coeff);
      }
    }
    dirty_.clear();
  }

  [[nodiscard]] bool violated(std::uint32_t c) const {
    const Constraint& cons = model_.constraint(ConsId{c});
    switch (cons.sense) {
      case Sense::kLe:
        return min_act_[c] > cons.rhs + kEps;
      case Sense::kGe:
        return max_act_[c] < cons.rhs - kEps;
      case Sense::kEq:
        return min_act_[c] > cons.rhs + kEps ||
               max_act_[c] < cons.rhs - kEps;
    }
    return false;
  }

  /// Bound-consistency propagation over the dirty queue. Returns false on
  /// conflict.
  bool propagate() {
    while (!dirty_.empty()) {
      const std::uint32_t c = dirty_.back();
      dirty_.pop_back();
      if (violated(c)) return false;
      const Constraint& cons = model_.constraint(ConsId{c});
      const bool need_ge =
          cons.sense != Sense::kLe;  // activity must reach rhs from above
      const bool need_le = cons.sense != Sense::kGe;
      for (const Term& t : cons.terms) {
        const std::uint32_t var = t.var.value();
        if (value_[var] != -1) continue;
        if (need_ge) {
          // Forcing: value v would drop max below rhs -> take the other.
          if (t.coeff > 0 && max_act_[c] - t.coeff < cons.rhs - kEps) {
            if (!assign(var, 1)) return false;
            continue;
          }
          if (t.coeff < 0 && max_act_[c] + t.coeff < cons.rhs - kEps) {
            if (!assign(var, 0)) return false;
            continue;
          }
        }
        if (need_le) {
          if (t.coeff > 0 && min_act_[c] + t.coeff > cons.rhs + kEps) {
            if (!assign(var, 0)) return false;
            continue;
          }
          if (t.coeff < 0 && min_act_[c] - t.coeff > cons.rhs + kEps) {
            if (!assign(var, 1)) return false;
            continue;
          }
        }
      }
    }
    return true;
  }

  /// Picks the free variable with the largest influence, or -1 when all are
  /// fixed.
  [[nodiscard]] std::int64_t pick_branch_var() const {
    std::int64_t best = -1;
    double best_score = -1;
    for (std::size_t v = 0; v < value_.size(); ++v) {
      if (value_[v] != -1) continue;
      const double score =
          std::abs(model_.objective_coeff(VarId{
              static_cast<std::uint32_t>(v)})) +
          0.1 * static_cast<double>(occurrences_[v].size());
      if (score > best_score) {
        best_score = score;
        best = static_cast<std::int64_t>(v);
      }
    }
    return best;
  }

  [[nodiscard]] bool limits_exceeded() {
    if ((nodes_ & 1023) == 0 && timer_.seconds() > options_.time_limit_s) {
      limits_hit_ = true;
    }
    if (nodes_ > options_.node_limit) limits_hit_ = true;
    return limits_hit_;
  }

  /// DFS returning true when the subtree was fully explored (not truncated).
  bool search() {
    ++nodes_;
    if (limits_exceeded()) return false;
    // Objective bound.
    if (has_incumbent_ &&
        fixed_obj_ + free_negative_obj_ >= incumbent_obj_ - kEps) {
      return true;
    }
    const std::int64_t var = pick_branch_var();
    if (var < 0) {
      // All fixed and propagation-consistent: feasible leaf.
      std::vector<std::uint8_t> values(value_.size());
      for (std::size_t v = 0; v < value_.size(); ++v) {
        values[v] = static_cast<std::uint8_t>(value_[v] == 1);
      }
      incumbent_ = std::move(values);
      incumbent_obj_ = fixed_obj_;
      has_incumbent_ = true;
      return true;
    }
    const double obj = model_.objective_coeff(VarId{
        static_cast<std::uint32_t>(var)});
    const std::int8_t first = obj >= 0 ? 0 : 1;
    bool complete = true;
    for (const std::int8_t val : {first, static_cast<std::int8_t>(1 - first)}) {
      const std::size_t mark = trail_.size();
      dirty_.clear();
      if (assign(static_cast<std::uint32_t>(var), val) && propagate()) {
        complete &= search();
      }
      undo_to(mark);
      if (limits_hit_) return false;
    }
    return complete;
  }

  const Model& model_;
  const SolveOptions& options_;
  Stopwatch timer_;

  std::vector<std::int8_t> value_;
  std::vector<std::vector<Occurrence>> occurrences_;
  std::vector<double> min_act_;
  std::vector<double> max_act_;
  std::vector<std::uint32_t> trail_;
  std::vector<std::uint32_t> dirty_;

  double fixed_obj_ = 0;
  double free_negative_obj_ = 0;

  std::vector<std::uint8_t> incumbent_;
  double incumbent_obj_ = 0;
  bool has_incumbent_ = false;
  bool limits_hit_ = false;
  std::uint64_t nodes_ = 0;
};

}  // namespace

Solution solve(const Model& model, const SolveOptions& options) {
  if (model.num_vars() == 0) {
    Solution s;
    s.status = SolveStatus::kOptimal;
    return s;
  }
  return BranchAndBound(model, options).run();
}

}  // namespace tp::ilp
