// 0-1 integer linear program model.
//
// The paper formulates phase assignment as an ILP solved with Gurobi
// (Sec. IV-A). This module is the stand-in: a minimization model over binary
// variables with linear <=, >=, = constraints, solved exactly by the
// branch-and-bound solver in solver.hpp.
#pragma once

#include <string>
#include <vector>

#include "src/util/ids.hpp"
#include "src/util/log.hpp"

namespace tp::ilp {

struct Term {
  VarId var;
  double coeff = 0;
};

enum class Sense { kLe, kGe, kEq };

struct Constraint {
  std::string name;
  std::vector<Term> terms;
  Sense sense = Sense::kGe;
  double rhs = 0;
};

/// Minimization model over binary variables.
class Model {
 public:
  VarId add_binary(std::string name, double objective_coeff = 0);

  /// Adds `sum(terms) sense rhs`. Terms with duplicate variables are merged.
  ConsId add_constraint(std::string name, std::vector<Term> terms,
                        Sense sense, double rhs);

  /// Pins a variable to a value (encoded as an equality constraint that the
  /// solver turns into a root fixing).
  void fix(VarId var, bool value);

  [[nodiscard]] std::size_t num_vars() const { return obj_.size(); }
  [[nodiscard]] std::size_t num_constraints() const {
    return constraints_.size();
  }
  [[nodiscard]] double objective_coeff(VarId v) const {
    return obj_[v.value()];
  }
  [[nodiscard]] const std::string& var_name(VarId v) const {
    return var_names_[v.value()];
  }
  [[nodiscard]] const Constraint& constraint(ConsId c) const {
    return constraints_[c.value()];
  }
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }

  /// Objective value of a full assignment.
  [[nodiscard]] double objective_value(
      const std::vector<std::uint8_t>& assignment) const;

  /// True when the assignment satisfies every constraint (within eps).
  [[nodiscard]] bool feasible(const std::vector<std::uint8_t>& assignment,
                              double eps = 1e-9) const;

 private:
  std::vector<double> obj_;
  std::vector<std::string> var_names_;
  std::vector<Constraint> constraints_;
};

}  // namespace tp::ilp
