// Exact 0-1 ILP solver: depth-first branch and bound with bound-consistency
// propagation.
//
// The solver maintains, per constraint, the minimum and maximum achievable
// activity given the current partial assignment. Propagation repeatedly
// detects forced variables (a constraint that can only be satisfied by one
// value of an unfixed variable) until fixpoint, then branches on the free
// variable with the largest influence (|objective| + constraint occupancy),
// exploring the objective-cheaper value first. The first dive doubles as a
// greedy incumbent. Nodes are pruned against
//   fixed objective + sum of negative free coefficients >= incumbent.
#pragma once

#include <cstdint>

#include "src/ilp/model.hpp"

namespace tp::ilp {

enum class SolveStatus {
  kOptimal,     // proven optimal solution
  kFeasible,    // feasible solution found, search truncated by limits
  kInfeasible,  // proven infeasible
  kUnknown,     // limits hit before any feasible solution
};

struct SolveOptions {
  double time_limit_s = 120.0;
  std::uint64_t node_limit = 200'000'000;
};

struct Solution {
  SolveStatus status = SolveStatus::kUnknown;
  double objective = 0;
  std::vector<std::uint8_t> values;  // per variable, valid unless kUnknown/kInfeasible
  std::uint64_t nodes = 0;
  double seconds = 0;
};

Solution solve(const Model& model, const SolveOptions& options = {});

}  // namespace tp::ilp
