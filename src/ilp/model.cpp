#include "src/ilp/model.hpp"

#include <algorithm>
#include <cmath>

namespace tp::ilp {

VarId Model::add_binary(std::string name, double objective_coeff) {
  const VarId id{static_cast<std::uint32_t>(obj_.size())};
  obj_.push_back(objective_coeff);
  var_names_.push_back(std::move(name));
  return id;
}

ConsId Model::add_constraint(std::string name, std::vector<Term> terms,
                             Sense sense, double rhs) {
  // Merge duplicate variables so activity bookkeeping stays simple.
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::vector<Term> merged;
  for (const Term& t : terms) {
    require(t.var.valid() && t.var.value() < obj_.size(),
            "add_constraint: unknown variable");
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coeff += t.coeff;
    } else {
      merged.push_back(t);
    }
  }
  std::erase_if(merged, [](const Term& t) { return t.coeff == 0; });
  const ConsId id{static_cast<std::uint32_t>(constraints_.size())};
  constraints_.push_back({std::move(name), std::move(merged), sense, rhs});
  return id;
}

void Model::fix(VarId var, bool value) {
  add_constraint("fix_" + var_name(var), {{var, 1.0}}, Sense::kEq,
                 value ? 1.0 : 0.0);
}

double Model::objective_value(
    const std::vector<std::uint8_t>& assignment) const {
  require(assignment.size() == obj_.size(),
          "objective_value: wrong assignment size");
  double total = 0;
  for (std::size_t i = 0; i < obj_.size(); ++i) {
    if (assignment[i]) total += obj_[i];
  }
  return total;
}

bool Model::feasible(const std::vector<std::uint8_t>& assignment,
                     double eps) const {
  require(assignment.size() == obj_.size(), "feasible: wrong size");
  for (const Constraint& c : constraints_) {
    double activity = 0;
    for (const Term& t : c.terms) {
      if (assignment[t.var.value()]) activity += t.coeff;
    }
    switch (c.sense) {
      case Sense::kLe:
        if (activity > c.rhs + eps) return false;
        break;
      case Sense::kGe:
        if (activity < c.rhs - eps) return false;
        break;
      case Sense::kEq:
        if (std::abs(activity - c.rhs) > eps) return false;
        break;
    }
  }
  return true;
}

}  // namespace tp::ilp
