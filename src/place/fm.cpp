#include "src/place/fm.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "src/util/executor.hpp"
#include "src/util/log.hpp"
#include "src/util/rng.hpp"

namespace tp {
namespace {

/// Items per chunk when the init scans run on a pool; below this the
/// submit overhead outweighs the scan.
constexpr std::size_t kChunkGrain = 4096;

/// Classic FM pass machinery: per-vertex gains in a bucket structure,
/// tentative moves with locking, best-prefix rollback.
class FmPass {
 public:
  FmPass(const std::vector<std::int64_t>& weights,
         const std::vector<std::vector<int>>& hyperedges,
         std::vector<std::uint8_t>& side, double balance_tolerance,
         util::Executor* executor)
      : weights_(weights),
        hyperedges_(hyperedges),
        side_(side),
        executor_(executor),
        num_vertices_(weights.size()) {
    pins_.resize(num_vertices_);
    for (int e = 0; e < static_cast<int>(hyperedges_.size()); ++e) {
      for (const int v : hyperedges_[static_cast<std::size_t>(e)]) {
        pins_[static_cast<std::size_t>(v)].push_back(e);
      }
    }
    const std::int64_t total =
        std::accumulate(weights.begin(), weights.end(), std::int64_t{0});
    lo_ = static_cast<std::int64_t>(
        (0.5 - balance_tolerance) * static_cast<double>(total));
    hi_ = static_cast<std::int64_t>(
        (0.5 + balance_tolerance) * static_cast<double>(total));
  }

  /// One pass; returns the cut improvement (>= 0 kept, 0 means converged).
  std::int64_t run() {
    // Side-0 weight and per-edge side counts.
    std::int64_t w0 = 0;
    for (std::size_t v = 0; v < num_vertices_; ++v) {
      if (!side_[v]) w0 += weights_[v];
    }
    std::vector<std::array<int, 2>> edge_count(hyperedges_.size(), {0, 0});
    util::parallel_chunks(
        executor_, hyperedges_.size(), kChunkGrain,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t e = begin; e < end; ++e) {
            for (const int v : hyperedges_[e]) {
              ++edge_count[e][side_[static_cast<std::size_t>(v)]];
            }
          }
        });
    // Initial gains: an edge contributes +1 when the vertex is its only pin
    // on its side (moving uncuts it), -1 when the other side is empty
    // (moving cuts it).
    std::vector<std::int64_t> gain(num_vertices_, 0);
    util::parallel_chunks(
        executor_, num_vertices_, kChunkGrain,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t v = begin; v < end; ++v) {
            const int from = side_[v];
            for (const int e : pins_[v]) {
              const auto& c = edge_count[static_cast<std::size_t>(e)];
              if (c[from] == 1) ++gain[v];
              if (c[1 - from] == 0) --gain[v];
            }
          }
        });

    std::vector<std::uint8_t> locked(num_vertices_, 0);
    std::vector<int> moves;
    std::vector<std::int64_t> prefix_gain;
    std::int64_t running = 0;

    for (std::size_t step = 0; step < num_vertices_; ++step) {
      // Pick the best movable unlocked vertex that keeps balance.
      int best = -1;
      std::int64_t best_gain = 0;
      for (std::size_t v = 0; v < num_vertices_; ++v) {
        if (locked[v]) continue;
        const std::int64_t new_w0 =
            side_[v] ? w0 + weights_[v] : w0 - weights_[v];
        if (new_w0 < lo_ || new_w0 > hi_) continue;
        if (best < 0 || gain[v] > best_gain) {
          best = static_cast<int>(v);
          best_gain = gain[v];
        }
      }
      if (best < 0) break;
      // Apply the tentative move and update neighbor gains.
      const auto bv = static_cast<std::size_t>(best);
      const int from = side_[bv];
      const int to = 1 - from;
      locked[bv] = 1;
      w0 += side_[bv] ? weights_[bv] : -weights_[bv];
      for (const int e : pins_[bv]) {
        auto& c = edge_count[static_cast<std::size_t>(e)];
        // Gain updates follow the standard FM case analysis.
        if (c[to] == 0) {
          for (const int u : hyperedges_[static_cast<std::size_t>(e)]) {
            if (!locked[static_cast<std::size_t>(u)]) {
              ++gain[static_cast<std::size_t>(u)];
            }
          }
        } else if (c[to] == 1) {
          for (const int u : hyperedges_[static_cast<std::size_t>(e)]) {
            if (!locked[static_cast<std::size_t>(u)] &&
                side_[static_cast<std::size_t>(u)] == to) {
              --gain[static_cast<std::size_t>(u)];
            }
          }
        }
        --c[from];
        ++c[to];
        if (c[from] == 0) {
          for (const int u : hyperedges_[static_cast<std::size_t>(e)]) {
            if (!locked[static_cast<std::size_t>(u)]) {
              --gain[static_cast<std::size_t>(u)];
            }
          }
        } else if (c[from] == 1) {
          for (const int u : hyperedges_[static_cast<std::size_t>(e)]) {
            if (!locked[static_cast<std::size_t>(u)] &&
                side_[static_cast<std::size_t>(u)] == from) {
              ++gain[static_cast<std::size_t>(u)];
            }
          }
        }
      }
      side_[bv] = static_cast<std::uint8_t>(to);
      running += best_gain;
      moves.push_back(best);
      prefix_gain.push_back(running);
    }

    // Keep the best prefix, undo the rest.
    std::int64_t best_running = 0;
    std::size_t best_prefix = 0;
    for (std::size_t i = 0; i < prefix_gain.size(); ++i) {
      if (prefix_gain[i] > best_running) {
        best_running = prefix_gain[i];
        best_prefix = i + 1;
      }
    }
    for (std::size_t i = moves.size(); i > best_prefix; --i) {
      const auto v = static_cast<std::size_t>(moves[i - 1]);
      side_[v] ^= 1;
    }
    return best_running;
  }

 private:
  const std::vector<std::int64_t>& weights_;
  const std::vector<std::vector<int>>& hyperedges_;
  std::vector<std::uint8_t>& side_;
  util::Executor* executor_;
  std::size_t num_vertices_;
  std::vector<std::vector<int>> pins_;
  std::int64_t lo_ = 0, hi_ = 0;
};

std::int64_t cut_size(const std::vector<std::vector<int>>& hyperedges,
                      const std::vector<std::uint8_t>& side,
                      util::Executor* executor) {
  // Per-chunk partial counts folded in chunk order (integer sums, so the
  // order is immaterial — kept fixed anyway per the determinism contract).
  const std::size_t chunks =
      hyperedges.size() / kChunkGrain + (hyperedges.size() % kChunkGrain != 0);
  std::vector<std::int64_t> partial(std::max<std::size_t>(chunks, 1), 0);
  util::parallel_chunks(
      executor, hyperedges.size(), kChunkGrain,
      [&](std::size_t begin, std::size_t end) {
        std::int64_t local = 0;
        for (std::size_t e = begin; e < end; ++e) {
          bool s0 = false, s1 = false;
          for (const int v : hyperedges[e]) {
            (side[static_cast<std::size_t>(v)] ? s1 : s0) = true;
          }
          local += (s0 && s1);
        }
        partial[begin / kChunkGrain] = local;
      });
  std::int64_t cut = 0;
  for (const std::int64_t p : partial) cut += p;
  return cut;
}

}  // namespace

FmResult fm_bipartition(const std::vector<std::int64_t>& weights,
                        const std::vector<std::vector<int>>& hyperedges,
                        const FmOptions& options) {
  FmResult result;
  const std::size_t n = weights.size();
  result.side.assign(n, 0);
  if (n <= 1) {
    result.cut = 0;
    return result;
  }
  // Random area-balanced initial split.
  Rng rng(options.seed);
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const std::int64_t total =
      std::accumulate(weights.begin(), weights.end(), std::int64_t{0});
  std::int64_t w0 = 0;
  for (const int v : order) {
    const auto sv = static_cast<std::size_t>(v);
    if (w0 < total / 2) {
      result.side[sv] = 0;
      w0 += weights[sv];
    } else {
      result.side[sv] = 1;
    }
  }
  for (int pass = 0; pass < options.max_passes; ++pass) {
    FmPass fm(weights, hyperedges, result.side, options.balance_tolerance,
              options.executor);
    if (fm.run() <= 0) break;
  }
  result.cut = cut_size(hyperedges, result.side, options.executor);
  return result;
}

}  // namespace tp
