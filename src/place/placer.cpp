#include "src/place/placer.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <future>
#include <numeric>

#include "src/place/fm.hpp"
#include "src/util/executor.hpp"

namespace tp {
namespace {

struct Region {
  double x0, y0, x1, y1;
  std::vector<CellId> cells;
};

/// splitmix64 finalizer: the FM seed of a region is a pure function of the
/// placer seed and the region's root-to-here path (root 1, children 2p and
/// 2p+1), NOT of visit order — the property that lets the two halves of a
/// split recurse in parallel while producing the serial placement bit for
/// bit.
std::uint64_t region_seed(std::uint64_t seed, std::uint64_t path) {
  std::uint64_t z = seed + path * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Both halves must clear this size before the recursion forks; smaller
/// subtrees finish faster inline than a task round-trip.
constexpr std::size_t kParallelRegionMin = 2048;

/// Splits `cells` into two area-balanced halves ordered by a BFS over the
/// connectivity (cheap locality above the FM threshold).
std::pair<std::vector<CellId>, std::vector<CellId>> connectivity_split(
    const Netlist& netlist, const std::vector<std::int64_t>& weights,
    const std::vector<CellId>& cells) {
  std::vector<std::uint8_t> in_set(netlist.num_cells(), 0);
  std::vector<int> index_of(netlist.num_cells(), -1);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    in_set[cells[i].value()] = 1;
    index_of[cells[i].value()] = static_cast<int>(i);
  }
  std::vector<std::uint8_t> visited(cells.size(), 0);
  std::vector<CellId> order;
  order.reserve(cells.size());
  for (const CellId seed : cells) {
    if (visited[static_cast<std::size_t>(index_of[seed.value()])]) continue;
    std::vector<CellId> queue{seed};
    visited[static_cast<std::size_t>(index_of[seed.value()])] = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const CellId u = queue[head];
      order.push_back(u);
      auto visit_net = [&](NetId net) {
        const Net& n = netlist.net(net);
        if (n.fanouts.size() > 16) return;  // skip high-fanout nets
        auto visit_cell = [&](CellId c) {
          if (!c.valid() || !in_set[c.value()]) return;
          auto& v = visited[static_cast<std::size_t>(index_of[c.value()])];
          if (!v) {
            v = 1;
            queue.push_back(c);
          }
        };
        visit_cell(n.driver);
        for (const PinRef& ref : n.fanouts) visit_cell(ref.cell);
      };
      const Cell& cell = netlist.cell(u);
      for (const NetId in : cell.ins) visit_net(in);
      if (cell.out.valid()) visit_net(cell.out);
    }
  }
  const std::int64_t total = std::accumulate(
      cells.begin(), cells.end(), std::int64_t{0},
      [&](std::int64_t acc, CellId c) { return acc + weights[c.value()]; });
  std::pair<std::vector<CellId>, std::vector<CellId>> halves;
  std::int64_t w0 = 0;
  for (const CellId c : order) {
    if (w0 < total / 2) {
      halves.first.push_back(c);
      w0 += weights[c.value()];
    } else {
      halves.second.push_back(c);
    }
  }
  return halves;
}

std::pair<std::vector<CellId>, std::vector<CellId>> fm_split(
    const Netlist& netlist, const std::vector<std::int64_t>& weights,
    const std::vector<CellId>& cells, std::uint64_t seed) {
  std::vector<int> index_of(netlist.num_cells(), -1);
  std::vector<std::int64_t> local_weights(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    index_of[cells[i].value()] = static_cast<int>(i);
    local_weights[i] = weights[cells[i].value()];
  }
  // Hyperedges: nets with >= 2 pins inside the partition.
  std::vector<std::vector<int>> hyperedges;
  for (std::uint32_t n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(NetId{n});
    if (!net.alive) continue;
    std::vector<int> members;
    auto add = [&](CellId c) {
      if (c.valid() && index_of[c.value()] >= 0) {
        members.push_back(index_of[c.value()]);
      }
    };
    add(net.driver);
    for (const PinRef& ref : net.fanouts) add(ref.cell);
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());
    if (members.size() >= 2) hyperedges.push_back(std::move(members));
  }
  FmOptions options;
  options.seed = seed;
  const FmResult result =
      fm_bipartition(local_weights, hyperedges, options);
  std::pair<std::vector<CellId>, std::vector<CellId>> halves;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    (result.side[i] ? halves.second : halves.first).push_back(cells[i]);
  }
  // Degenerate FM outcome: fall back to an arbitrary balanced split.
  if (halves.first.empty() || halves.second.empty()) {
    halves.first.clear();
    halves.second.clear();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      (i % 2 ? halves.second : halves.first).push_back(cells[i]);
    }
  }
  return halves;
}

}  // namespace

double Placement::net_hpwl_um(const Netlist& netlist, NetId net_id) const {
  const Net& net = netlist.net(net_id);
  double x0 = 1e30, y0 = 1e30, x1 = -1e30, y1 = -1e30;
  int pins = 0;
  auto add = [&](CellId c) {
    if (!c.valid()) return;
    const auto& [x, y] = pos[c.value()];
    x0 = std::min(x0, x);
    y0 = std::min(y0, y);
    x1 = std::max(x1, x);
    y1 = std::max(y1, y);
    ++pins;
  };
  add(net.driver);
  for (const PinRef& ref : net.fanouts) add(ref.cell);
  if (pins < 2) return 0;
  return (x1 - x0) + (y1 - y0);
}

double Placement::total_hpwl_um(const Netlist& netlist) const {
  double total = 0;
  for (std::uint32_t n = 0; n < netlist.num_nets(); ++n) {
    if (netlist.net(NetId{n}).alive) {
      total += net_hpwl_um(netlist, NetId{n});
    }
  }
  return total;
}

double Placement::net_cap_ff(const Netlist& netlist,
                             const CellLibrary& library, NetId net) const {
  double cap = net_hpwl_um(netlist, net) * library.wire_cap_per_um_ff();
  for (const PinRef& ref : netlist.net(net).fanouts) {
    cap += library.pin_cap_ff(netlist.cell(ref.cell).kind,
                              static_cast<int>(ref.pin));
  }
  return cap;
}

Placement place(const Netlist& netlist, const CellLibrary& library,
                const PlaceOptions& options) {
  Placement placement;
  placement.pos.assign(netlist.num_cells(), {0.0, 0.0});

  std::vector<CellId> cells;
  std::vector<std::int64_t> weights(netlist.num_cells(), 0);
  double total_area = 0;
  for (const CellId id : netlist.live_cells()) {
    const CellKind kind = netlist.cell(id).kind;
    if (kind == CellKind::kInput || kind == CellKind::kOutput ||
        kind == CellKind::kConst0 || kind == CellKind::kConst1) {
      continue;
    }
    const double area = library.params(kind).area_um2;
    weights[id.value()] =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(area * 100));
    total_area += area;
    cells.push_back(id);
  }
  const double die =
      std::sqrt(std::max(total_area, 1.0) / options.utilization);
  placement.width_um = die;
  placement.height_um = die;
  if (cells.empty()) return placement;

  // Recursive bisection. The two halves of every split touch disjoint
  // cells (they partition region.cells), so with a pool they recurse as
  // parallel tasks; seeds are path-derived (see region_seed), making the
  // result independent of execution order and thread count.
  const std::function<void(Region, std::uint64_t)> bisect =
      [&](Region region, std::uint64_t path) {
        if (static_cast<int>(region.cells.size()) <= options.leaf_size) {
          // Grid the leaf cells inside the region.
          const int cols = static_cast<int>(std::ceil(
              std::sqrt(static_cast<double>(region.cells.size()))));
          for (std::size_t i = 0; i < region.cells.size(); ++i) {
            const int r = static_cast<int>(i) / cols;
            const int c = static_cast<int>(i) % cols;
            placement.pos[region.cells[i].value()] = {
                region.x0 + (region.x1 - region.x0) * (c + 0.5) / cols,
                region.y0 + (region.y1 - region.y0) * (r + 0.5) / cols};
          }
          return;
        }
        const auto halves =
            static_cast<int>(region.cells.size()) <= options.fm_threshold
                ? fm_split(netlist, weights, region.cells,
                           region_seed(options.seed, path))
                : connectivity_split(netlist, weights, region.cells);
        const bool split_x =
            (region.x1 - region.x0) >= (region.y1 - region.y0);
        Region a = region, b = region;
        if (split_x) {
          const double mid = (region.x0 + region.x1) / 2;
          a.x1 = mid;
          b.x0 = mid;
        } else {
          const double mid = (region.y0 + region.y1) / 2;
          a.y1 = mid;
          b.y0 = mid;
        }
        a.cells = std::move(halves.first);
        b.cells = std::move(halves.second);
        if (options.executor != nullptr &&
            a.cells.size() >= kParallelRegionMin &&
            b.cells.size() >= kParallelRegionMin) {
          auto future = options.executor->submit(
              [&bisect, half = std::move(a), path]() mutable {
                bisect(std::move(half), 2 * path);
              });
          bisect(std::move(b), 2 * path + 1);
          options.executor->wait(std::move(future));
        } else {
          bisect(std::move(a), 2 * path);
          bisect(std::move(b), 2 * path + 1);
        }
      };
  bisect(Region{0, 0, die, die, std::move(cells)}, 1);
  return placement;
}

}  // namespace tp
