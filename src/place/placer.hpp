// Recursive min-cut placement.
//
// Stands in for the commercial place step of the paper's flow: it assigns
// every live cell a position in a square die sized by total area over a
// target utilization, by recursively bipartitioning the netlist (FM below a
// size threshold, connectivity-ordered splitting above it) and halving the
// region along its longer side. The result feeds the wireload model (net
// capacitance from half-perimeter wirelength) and clock-tree synthesis.
#pragma once

#include <vector>

#include "src/library/cell_library.hpp"
#include "src/netlist/netlist.hpp"

namespace tp::util {
class Executor;
}  // namespace tp::util

namespace tp {

struct PlaceOptions {
  double utilization = 0.7;
  /// Partitions at or below this size are refined with FM; larger ones are
  /// split by connectivity order (keeps the placer near-linear).
  int fm_threshold = 1500;
  int leaf_size = 8;
  std::uint64_t seed = 1;
  /// Recurse into the two halves of each bipartition as parallel pool
  /// tasks (position writes are disjoint — the halves partition the
  /// cells). Each region's FM seed is derived from `seed` and the
  /// region's root-to-here path in both the serial and parallel code
  /// paths, so the placement is bit-identical at any thread count. Not
  /// owned.
  util::Executor* executor = nullptr;
};

struct Placement {
  /// Position per cell id (dead cells keep {0, 0}); microns.
  std::vector<std::pair<double, double>> pos;
  double width_um = 0;
  double height_um = 0;

  /// Half-perimeter wirelength of one net (um); 0 for degenerate nets.
  [[nodiscard]] double net_hpwl_um(const Netlist& netlist, NetId net) const;

  /// Total HPWL over live nets (um).
  [[nodiscard]] double total_hpwl_um(const Netlist& netlist) const;

  /// Net capacitance under the placement-based wireload model: pin caps
  /// plus wire cap per HPWL micron.
  [[nodiscard]] double net_cap_ff(const Netlist& netlist,
                                  const CellLibrary& library,
                                  NetId net) const;
};

Placement place(const Netlist& netlist, const CellLibrary& library,
                const PlaceOptions& options = {});

}  // namespace tp
