// Fiduccia-Mattheyses bipartitioning on a cell hypergraph.
//
// Used by the recursive min-cut placer. The interface is a plain hypergraph
// (vertices with weights, hyperedges as vertex lists) so it is testable
// independently of the netlist.
#pragma once

#include <cstdint>
#include <vector>

namespace tp {

struct FmOptions {
  /// Allowed deviation of side-0 weight from half the total (fraction).
  double balance_tolerance = 0.1;
  int max_passes = 6;
  std::uint64_t seed = 1;
};

struct FmResult {
  std::vector<std::uint8_t> side;  // per vertex: 0 or 1
  std::int64_t cut = 0;            // hyperedges spanning both sides
};

/// Partitions the hypergraph into two balanced sides minimizing the number
/// of cut hyperedges. `weights` are vertex areas (scaled to integers).
FmResult fm_bipartition(const std::vector<std::int64_t>& weights,
                        const std::vector<std::vector<int>>& hyperedges,
                        const FmOptions& options = {});

}  // namespace tp
