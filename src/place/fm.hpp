// Fiduccia-Mattheyses bipartitioning on a cell hypergraph.
//
// Used by the recursive min-cut placer. The interface is a plain hypergraph
// (vertices with weights, hyperedges as vertex lists) so it is testable
// independently of the netlist.
#pragma once

#include <cstdint>
#include <vector>

namespace tp::util {
class Executor;
}  // namespace tp::util

namespace tp {

struct FmOptions {
  /// Allowed deviation of side-0 weight from half the total (fraction).
  double balance_tolerance = 0.1;
  int max_passes = 6;
  std::uint64_t seed = 1;
  /// Chunk the pure init scans of each pass (per-edge side counts,
  /// per-vertex initial gains, the final cut count) across this pool.
  /// Disjoint per-index writes and chunk-ordered integer sums keep the
  /// result bit-identical to the serial scan at any thread count; the
  /// move loop itself is inherently sequential and stays serial. Not
  /// owned.
  util::Executor* executor = nullptr;
};

struct FmResult {
  std::vector<std::uint8_t> side;  // per vertex: 0 or 1
  std::int64_t cut = 0;            // hyperedges spanning both sides
};

/// Partitions the hypergraph into two balanced sides minimizing the number
/// of cut hyperedges. `weights` are vertex areas (scaled to integers).
FmResult fm_bipartition(const std::vector<std::int64_t>& weights,
                        const std::vector<std::vector<int>>& hyperedges,
                        const FmOptions& options = {});

}  // namespace tp
