#include "src/timing/sta.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>

#include "src/netlist/traverse.hpp"
#include "src/timing/incremental.hpp"
#include "src/timing/report.hpp"
#include "src/util/strcat.hpp"

// The SMO arrival fixpoint itself lives in src/timing/incremental.cpp
// (SmoEngine): one engine backs the fresh entry points here, the
// IncrementalTimer session, and find_min_period()'s probe reuse.

namespace tp {

TimingReport check_timing(const Netlist& netlist, const CellLibrary& library,
                          const TimingOptions& options) {
  SmoEngine engine(library, options, /*track_borrow=*/false);
  engine.run_full(netlist);
  return engine.report();
}

MinDelayProfile min_delay_profile(const Netlist& netlist,
                                  const CellLibrary& library,
                                  const TimingOptions& options) {
  MinDelayProfile prof;
  const Levelization lev = levelize(netlist);
  const std::vector<CellId> registers = netlist.registers();

  std::vector<TransparencyWindow> windows(netlist.num_cells());
  std::vector<std::pair<double, double>> classes{{0.0, 0.0}};
  for (const CellId id : registers) {
    windows[id.value()] = register_window(netlist, netlist.cell(id));
    classes.push_back({windows[id.value()].r, windows[id.value()].f});
  }
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  const std::size_t num_classes = classes.size();
  auto class_of = [&](const TransparencyWindow& w) {
    return static_cast<std::size_t>(
        std::lower_bound(classes.begin(), classes.end(),
                         std::make_pair(w.r, w.f)) -
        classes.begin());
  };

  prof.classes.reserve(num_classes);
  for (const auto& [open, close] : classes) {
    prof.classes.push_back({open, close});
  }
  prof.pi_class = class_of(TransparencyWindow{0.0, 0.0});
  const std::size_t num_nets = netlist.num_nets();
  prof.arrival_ps.assign(
      num_classes,
      std::vector<double>(num_nets, MinDelayProfile::kUnreachable));
  prof.pred.assign(num_classes, std::vector<NetId>(num_nets));
  prof.launch.assign(num_classes, std::vector<CellId>(num_nets));

  for (const CellId pi : netlist.data_inputs()) {
    const NetId net = netlist.cell(pi).out;
    prof.arrival_ps[prof.pi_class][net.value()] = options.input_delay_ps;
  }
  for (const CellId id : registers) {
    const Cell& cell = netlist.cell(id);
    const TransparencyWindow& w = windows[id.value()];
    const std::size_t c = class_of(w);
    const double depart = w.r + library.params(cell.kind).intrinsic_ps;
    if (depart < prof.arrival_ps[c][cell.out.value()]) {
      prof.arrival_ps[c][cell.out.value()] = depart;
      prof.launch[c][cell.out.value()] = id;
    }
  }
  // One topological pass: min seeds are fixed (data cannot leave a register
  // before its window opens), so no fixpoint is needed.
  for (const CellId id : lev.comb_order) {
    const Cell& cell = netlist.cell(id);
    if (is_clock_cell(cell.kind) || !cell.out.valid()) continue;
    const double delay = library.params(cell.kind).intrinsic_ps;
    for (std::size_t c = 0; c < num_classes; ++c) {
      double best = MinDelayProfile::kUnreachable;
      NetId best_in;
      for (const NetId in : cell.ins) {
        const double a = prof.arrival_ps[c][in.value()];
        if (a < best) {
          best = a;
          best_in = in;
        }
      }
      if (best >= MinDelayProfile::kUnreachable) continue;
      const std::uint32_t out = cell.out.value();
      if (best + delay < prof.arrival_ps[c][out]) {
        prof.arrival_ps[c][out] = best + delay;
        prof.pred[c][out] = best_in;
        prof.launch[c][out] = prof.launch[c][best_in.value()];
      }
    }
  }
  return prof;
}

std::vector<BorrowRecord> borrow_profile(const Netlist& netlist,
                                         const CellLibrary& library,
                                         const TimingOptions& options) {
  SmoEngine engine(library, options, /*track_borrow=*/true);
  engine.run_full(netlist);
  return engine.borrow_records(netlist);
}

TimingProfile profile_timing(const Netlist& netlist,
                             const CellLibrary& library,
                             const TimingOptions& options,
                             double bin_width_ps) {
  SmoEngine engine(library, options, /*track_borrow=*/false);
  engine.run_full(netlist);
  TimingProfile profile;
  std::unordered_map<std::uint32_t, double> hold_of;
  for (const auto& [cell, slack] : engine.hold_rows()) {
    const auto it = hold_of.find(cell.value());
    if (it == hold_of.end() || slack < it->second) {
      hold_of[cell.value()] = slack;
    }
  }
  for (const auto& [cell, slack] : engine.setup_rows()) {
    EndpointSlack e;
    e.cell = cell;
    e.name = netlist.cell(cell).name;
    e.phase = netlist.cell(cell).phase;
    e.setup_slack_ps = slack;
    const auto it = hold_of.find(cell.value());
    e.hold_slack_ps = it == hold_of.end() ? 0 : it->second;
    profile.endpoints.push_back(std::move(e));
    if (slack < 0) {
      ++profile.failing_endpoints;
      profile.total_negative_slack_ps += -slack;
    }
  }
  std::sort(profile.endpoints.begin(), profile.endpoints.end(),
            [](const EndpointSlack& a, const EndpointSlack& b) {
              return a.setup_slack_ps < b.setup_slack_ps;
            });
  // Histogram over setup slack.
  profile.histogram.bin_width_ps = bin_width_ps;
  if (!profile.endpoints.empty()) {
    const double lo = profile.endpoints.front().setup_slack_ps;
    const double hi = profile.endpoints.back().setup_slack_ps;
    profile.histogram.min_slack_ps =
        std::floor(lo / bin_width_ps) * bin_width_ps;
    const int bins = std::max(
        1, static_cast<int>((hi - profile.histogram.min_slack_ps) /
                            bin_width_ps) +
               1);
    profile.histogram.counts.assign(static_cast<std::size_t>(bins), 0);
    for (const EndpointSlack& e : profile.endpoints) {
      const int bin = static_cast<int>(
          (e.setup_slack_ps - profile.histogram.min_slack_ps) /
          bin_width_ps);
      ++profile.histogram.counts[static_cast<std::size_t>(
          std::clamp(bin, 0, bins - 1))];
    }
  }
  return profile;
}

HoldRepairResult repair_hold(Netlist& netlist, const CellLibrary& library,
                             const TimingOptions& options, int max_passes,
                             IncrementalTimer* timer) {
  HoldRepairResult result;
  const double buf_delay =
      library.delay_ps(CellKind::kBuf,
                       library.params(CellKind::kDff).input_cap_ff +
                           library.default_wire_cap_per_fanout_ff());
  // Without a session, one local engine still runs cold full passes (the
  // historical behavior); with one, each pass after the first re-times
  // only the cones of the buffers just inserted.
  std::optional<SmoEngine> local;
  if (timer == nullptr) {
    local.emplace(library, options, /*track_borrow=*/false);
  }
  const double full_before = timer != nullptr ? timer->stats().full_seconds : 0;
  const double incr_before =
      timer != nullptr ? timer->stats().incremental_seconds : 0;
  for (int pass = 0; pass < max_passes; ++pass) {
    const std::vector<std::pair<CellId, double>>* rows = nullptr;
    if (timer != nullptr) {
      timer->sync(netlist);
      rows = &timer->hold_rows();
    } else {
      local->run_full(netlist);
      rows = &local->hold_rows();
    }
    ++result.passes;
    bool any = false;
    for (const auto& [reg, slack] : *rows) {
      if (slack >= 0) continue;
      any = true;
      const int needed = static_cast<int>(std::ceil(-slack / buf_delay));
      // Copy before mutating: add_gate may reallocate the cell table.
      const std::string reg_name = netlist.cell(reg).name;
      NetId d = netlist.cell(reg).ins[0];
      for (int b = 0; b < needed; ++b) {
        const CellId buf = netlist.add_gate(
            CellKind::kBuf,
            cat(reg_name, "_holdbuf", pass, "_", b), {d});
        d = netlist.cell(buf).out;
        ++result.buffers_inserted;
      }
      netlist.replace_input(reg, 0, d);
    }
    if (!any) break;
  }
  if (timer != nullptr) {
    result.sta_full_s = timer->stats().full_seconds - full_before;
    result.sta_incremental_s =
        timer->stats().incremental_seconds - incr_before;
  } else {
    result.sta_full_s = local->stats().full_seconds;
  }
  return result;
}

}  // namespace tp
