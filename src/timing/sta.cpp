#include "src/timing/sta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include <unordered_map>

#include "src/netlist/traverse.hpp"
#include "src/timing/report.hpp"
#include "src/util/strcat.hpp"

namespace tp {
namespace {

constexpr double kNegInf = -1e18;
constexpr double kPosInf = 1e18;

/// Transparency window [r, f] of a register inside the cycle. Flip-flops are
/// zero-width windows at their sampling edge. Transparent-low latches open
/// at the fall and close at the next rise (f = rise + Tc for rise == 0).
struct Window {
  double r = 0;
  double f = 0;
};

Window register_window(const Netlist& netlist, const Cell& cell) {
  const PhaseWaveform* w = netlist.clocks().find(cell.phase);
  require(w != nullptr, cat("sta: register ", cell.name,
                            " has no phase waveform (phase ",
                            phase_name(cell.phase), ")"));
  const auto period = static_cast<double>(netlist.clocks().period_ps);
  switch (cell.kind) {
    case CellKind::kDff:
    case CellKind::kDffEn:
    case CellKind::kDffDet:
      // A DET FF samples on both edges, but behind a kClkDiv2 the clock
      // toggles once per cycle at the phase rise, so the zero-width window
      // at the rise models the single per-cycle sampling instant.
      return {static_cast<double>(w->rise_ps),
              static_cast<double>(w->rise_ps)};
    case CellKind::kLatchH:
    case CellKind::kLatchP:
      return {static_cast<double>(w->rise_ps),
              static_cast<double>(w->fall_ps)};
    case CellKind::kLatchL:
      return {static_cast<double>(w->fall_ps),
              static_cast<double>(w->rise_ps) + period};
    default:
      throw Error("sta: not a register");
  }
}

/// Cycle shift of a launch class relative to a capture close: the intended
/// capture is the first closing edge strictly after the launcher's own
/// closing edge (data departing as late as the launch close must still make
/// the same logical transfer). Same-window pairs (FF-to-FF, pulsed-latch
/// pairs) therefore shift a full cycle.
int cycle_shift(double launch_close, double capture_close) {
  return capture_close > launch_close ? 0 : 1;
}

struct Analysis {
  TimingReport report;
  /// Worst slack per register cell (setup and hold).
  std::vector<std::pair<CellId, double>> hold_slacks;
  std::vector<std::pair<CellId, double>> setup_slacks;
};

/// Per-(class, net) critical fan-in recorded during the max propagate plus
/// the per-register arrival records — enough to walk launch chains after
/// the fixpoint (borrow_profile()). Opt-in: tracking costs memory and time
/// the hot callers (min_period_ps, repair_hold) do not want.
struct BorrowTrace {
  std::vector<std::vector<NetId>> pred;  // argmax fan-in net per class
  std::vector<BorrowRecord> records;
};

Analysis analyze(const Netlist& netlist, const CellLibrary& library,
                 const TimingOptions& options,
                 BorrowTrace* trace = nullptr) {
  Analysis analysis;
  TimingReport& report = analysis.report;
  const auto period = static_cast<double>(netlist.clocks().period_ps);
  const Levelization lev = levelize(netlist);
  const std::vector<CellId> registers = netlist.registers();

  // Launch classes: distinct (open, close) register windows plus the
  // primary-input class (PIs change at cycle start and are FF-like: a
  // zero-width window at t = 0).
  std::vector<std::pair<double, double>> classes{{0.0, 0.0}};
  std::vector<Window> windows(netlist.num_cells());
  for (const CellId id : registers) {
    windows[id.value()] = register_window(netlist, netlist.cell(id));
    classes.push_back({windows[id.value()].r, windows[id.value()].f});
  }
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()),
                classes.end());
  const std::size_t num_classes = classes.size();
  auto class_of = [&](const Window& w) {
    return static_cast<std::size_t>(
        std::lower_bound(classes.begin(), classes.end(),
                         std::make_pair(w.r, w.f)) -
        classes.begin());
  };

  // Per-class arrival fields over nets.
  std::vector<std::vector<double>> arr_max(
      num_classes, std::vector<double>(netlist.num_nets(), kNegInf));
  std::vector<std::vector<double>> arr_min(
      num_classes, std::vector<double>(netlist.num_nets(), kPosInf));
  if (trace != nullptr) {
    trace->pred.assign(num_classes, std::vector<NetId>(netlist.num_nets()));
  }

  // Primary-input seeds.
  const std::size_t pi_class = class_of(Window{0.0, 0.0});
  for (const CellId pi : netlist.data_inputs()) {
    const NetId net = netlist.cell(pi).out;
    arr_max[pi_class][net.value()] = options.input_delay_ps;
    arr_min[pi_class][net.value()] = options.input_delay_ps;
  }
  // Earliest-departure seeds (independent of arrivals: data cannot leave a
  // register before its window opens).
  for (const CellId id : registers) {
    const Cell& cell = netlist.cell(id);
    const Window& w = windows[id.value()];
    const double d2q_min = library.params(cell.kind).intrinsic_ps;
    arr_min[class_of(w)][cell.out.value()] =
        std::min(arr_min[class_of(w)][cell.out.value()], w.r + d2q_min);
  }

  auto propagate = [&](std::vector<std::vector<double>>& arr, bool maximize) {
    for (const CellId id : lev.comb_order) {
      const Cell& cell = netlist.cell(id);
      if (is_clock_cell(cell.kind) || !cell.out.valid()) continue;
      const double delay =
          maximize ? library.delay_ps(cell.kind,
                                      library.net_load_ff(netlist, cell.out))
                   : library.params(cell.kind).intrinsic_ps;
      for (std::size_t c = 0; c < num_classes; ++c) {
        double best = maximize ? kNegInf : kPosInf;
        NetId best_in;
        for (const NetId in : cell.ins) {
          const double a = arr[c][in.value()];
          if (maximize ? a > best : a < best) {
            best = a;
            best_in = in;
          }
        }
        if (best <= kNegInf || best >= kPosInf) {
          arr[c][cell.out.value()] = best;
        } else {
          arr[c][cell.out.value()] = best + delay;
        }
        if (maximize && trace != nullptr) {
          trace->pred[c][cell.out.value()] = best_in;
        }
      }
    }
  };

  // Earliest arrivals: one pass (seeds are fixed).
  propagate(arr_min, false);

  // Latest arrivals: fixpoint over register departures (time borrowing).
  std::vector<double> valid(netlist.num_cells(), kNegInf);
  bool changed = true;
  int iterations = 0;
  while (changed && iterations < options.max_iterations) {
    ++iterations;
    changed = false;
    propagate(arr_max, true);
    for (const CellId id : registers) {
      const Cell& cell = netlist.cell(id);
      const Window& w = windows[id.value()];
      // Pulsed latches are edge-sampled: data launched in the same cycle
      // cannot flow through, so their cycle alignment keys on the sampling
      // edge; the setup check still grants the [r, f] borrowing window.
      const double shift_ref = cell.kind == CellKind::kLatchP ? w.r : w.f;
      double arrival = kNegInf;
      for (std::size_t pin = 0; pin < cell.ins.size(); ++pin) {
        if (static_cast<int>(pin) == clock_pin(cell.kind)) continue;
        for (std::size_t c = 0; c < num_classes; ++c) {
          const double a = arr_max[c][cell.ins[pin].value()];
          if (a <= kNegInf) continue;
          arrival = std::max(
              arrival, a - period * cycle_shift(classes[c].second,
                                                shift_ref));
        }
      }
      const double d2q =
          library.delay_ps(cell.kind,
                           library.net_load_ff(netlist, cell.out));
      // Borrowing is clamped at the window close: data arriving later does
      // not pass (the setup check below reports the violation); without the
      // clamp, failing feedback loops would diverge instead of converging.
      const double v = std::max(w.r, std::min(arrival, w.f)) + d2q;
      if (v > valid[id.value()] + 1e-9) {
        valid[id.value()] = v;
        const std::size_t c = class_of(w);
        if (v > arr_max[c][cell.out.value()]) {
          arr_max[c][cell.out.value()] = v;
          changed = true;
        }
      }
    }
  }
  report.iterations = iterations;
  report.converged = !changed;

  // Borrow records: per register, the worst capture-frame arrival and the
  // launching register on the path that produced it. The final propagate
  // pass of the fixpoint left `trace->pred` consistent with arr_max.
  if (trace != nullptr) {
    trace->records.reserve(registers.size());
    for (const CellId id : registers) {
      const Cell& cell = netlist.cell(id);
      const Window& w = windows[id.value()];
      const double shift_ref = cell.kind == CellKind::kLatchP ? w.r : w.f;
      BorrowRecord rec;
      rec.cell = id;
      rec.open_ps = w.r;
      rec.close_ps = w.f;
      double best = kNegInf;
      std::size_t best_class = 0;
      NetId best_net;
      for (std::size_t pin = 0; pin < cell.ins.size(); ++pin) {
        if (static_cast<int>(pin) == clock_pin(cell.kind)) continue;
        for (std::size_t c = 0; c < num_classes; ++c) {
          const double a = arr_max[c][cell.ins[pin].value()];
          if (a <= kNegInf) continue;
          const double shifted =
              a - period * cycle_shift(classes[c].second, shift_ref);
          if (shifted > best + 1e-9) {
            best = shifted;
            best_class = c;
            best_net = cell.ins[pin];
          }
        }
      }
      if (best > kNegInf) {
        rec.has_arrival = true;
        rec.arrival_ps = best;
        rec.borrow_ps = std::max(0.0, std::min(best, w.f) - w.r);
        // Walk the critical fan-in chain back to the launching register.
        NetId net = best_net;
        for (std::size_t step = 0; step <= netlist.num_cells(); ++step) {
          const CellId drv = netlist.net(net).driver;
          if (!drv.valid()) break;
          const Cell& dc = netlist.cell(drv);
          if (is_register(dc.kind)) {
            rec.upstream = drv;
            break;
          }
          if (!is_combinational(dc.kind) || is_clock_cell(dc.kind)) break;
          net = trace->pred[best_class][net.value()];
          if (!net.valid()) break;
        }
      }
      trace->records.push_back(rec);
    }
  }

  // Setup / hold checks at every register.
  report.setup_ok = true;
  report.hold_ok = true;
  report.worst_setup_slack_ps = kPosInf;
  report.worst_hold_slack_ps = kPosInf;
  for (const CellId id : registers) {
    const Cell& cell = netlist.cell(id);
    const Window& w = windows[id.value()];
    const CellParams& p = library.params(cell.kind);
    const double shift_ref =
        cell.kind == CellKind::kLatchP ? w.r : w.f;
    double setup_slack_cell = kPosInf;
    for (std::size_t pin = 0; pin < cell.ins.size(); ++pin) {
      if (static_cast<int>(pin) == clock_pin(cell.kind)) continue;
      const NetId d = cell.ins[pin];
      double hold_slack = kPosInf;
      for (std::size_t c = 0; c < num_classes; ++c) {
        // A launcher with the identical non-zero window is a same-phase
        // transparent chain (e.g. two p2 latches in series after a merged
        // retiming cut): data flows through both within the shared window
        // by design, so there is no previous capture to corrupt. Zero-width
        // windows (flip-flops) still race and are checked.
        if (classes[c].first == w.r && classes[c].second == w.f &&
            w.f > w.r && cell.kind != CellKind::kLatchP) {
          continue;
        }
        const int k = cycle_shift(classes[c].second, shift_ref);
        const double a_max = arr_max[c][d.value()];
        if (a_max > kNegInf) {
          const double slack = (w.f - p.setup_ps) - (a_max - period * k);
          setup_slack_cell = std::min(setup_slack_cell, slack);
          if (slack < report.worst_setup_slack_ps) {
            report.worst_setup_slack_ps = slack;
            report.worst_setup_point = cell.name;
          }
          if (slack < 0) report.setup_ok = false;
        }
        const double a_min = arr_min[c][d.value()];
        if (a_min < kPosInf) {
          const double slack = (a_min + period * (1 - k)) - w.f -
                               p.hold_ps - options.hold_uncertainty_ps;
          hold_slack = std::min(hold_slack, slack);
        }
      }
      if (hold_slack < kPosInf) {
        analysis.hold_slacks.push_back({id, hold_slack});
        if (hold_slack < report.worst_hold_slack_ps) {
          report.worst_hold_slack_ps = hold_slack;
          report.worst_hold_point = cell.name;
        }
        if (hold_slack < 0) report.hold_ok = false;
      }
    }
    if (setup_slack_cell < kPosInf) {
      analysis.setup_slacks.push_back({id, setup_slack_cell});
    }
  }

  // Primary outputs as zero-width capture windows at the cycle boundary.
  if (options.output_setup_ps >= 0) {
    for (const CellId po : netlist.outputs()) {
      if (!netlist.cell(po).alive) continue;
      const NetId net = netlist.cell(po).ins[0];
      for (std::size_t c = 0; c < num_classes; ++c) {
        const double a = arr_max[c][net.value()];
        if (a <= kNegInf) continue;
        const double slack = (period - options.output_setup_ps) - a;
        if (slack < report.worst_setup_slack_ps) {
          report.worst_setup_slack_ps = slack;
          report.worst_setup_point = netlist.cell(po).name;
        }
        if (slack < 0) report.setup_ok = false;
      }
    }
  }
  if (report.worst_setup_slack_ps >= kPosInf) report.worst_setup_slack_ps = 0;
  if (report.worst_hold_slack_ps >= kPosInf) report.worst_hold_slack_ps = 0;
  return analysis;
}

}  // namespace

TimingReport check_timing(const Netlist& netlist, const CellLibrary& library,
                          const TimingOptions& options) {
  return analyze(netlist, library, options).report;
}

MinDelayProfile min_delay_profile(const Netlist& netlist,
                                  const CellLibrary& library,
                                  const TimingOptions& options) {
  MinDelayProfile prof;
  const Levelization lev = levelize(netlist);
  const std::vector<CellId> registers = netlist.registers();

  std::vector<Window> windows(netlist.num_cells());
  std::vector<std::pair<double, double>> classes{{0.0, 0.0}};
  for (const CellId id : registers) {
    windows[id.value()] = register_window(netlist, netlist.cell(id));
    classes.push_back({windows[id.value()].r, windows[id.value()].f});
  }
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  const std::size_t num_classes = classes.size();
  auto class_of = [&](const Window& w) {
    return static_cast<std::size_t>(
        std::lower_bound(classes.begin(), classes.end(),
                         std::make_pair(w.r, w.f)) -
        classes.begin());
  };

  prof.classes.reserve(num_classes);
  for (const auto& [open, close] : classes) {
    prof.classes.push_back({open, close});
  }
  prof.pi_class = class_of(Window{0.0, 0.0});
  const std::size_t num_nets = netlist.num_nets();
  prof.arrival_ps.assign(
      num_classes,
      std::vector<double>(num_nets, MinDelayProfile::kUnreachable));
  prof.pred.assign(num_classes, std::vector<NetId>(num_nets));
  prof.launch.assign(num_classes, std::vector<CellId>(num_nets));

  for (const CellId pi : netlist.data_inputs()) {
    const NetId net = netlist.cell(pi).out;
    prof.arrival_ps[prof.pi_class][net.value()] = options.input_delay_ps;
  }
  for (const CellId id : registers) {
    const Cell& cell = netlist.cell(id);
    const Window& w = windows[id.value()];
    const std::size_t c = class_of(w);
    const double depart = w.r + library.params(cell.kind).intrinsic_ps;
    if (depart < prof.arrival_ps[c][cell.out.value()]) {
      prof.arrival_ps[c][cell.out.value()] = depart;
      prof.launch[c][cell.out.value()] = id;
    }
  }
  // One topological pass: min seeds are fixed (data cannot leave a register
  // before its window opens), so no fixpoint is needed.
  for (const CellId id : lev.comb_order) {
    const Cell& cell = netlist.cell(id);
    if (is_clock_cell(cell.kind) || !cell.out.valid()) continue;
    const double delay = library.params(cell.kind).intrinsic_ps;
    for (std::size_t c = 0; c < num_classes; ++c) {
      double best = MinDelayProfile::kUnreachable;
      NetId best_in;
      for (const NetId in : cell.ins) {
        const double a = prof.arrival_ps[c][in.value()];
        if (a < best) {
          best = a;
          best_in = in;
        }
      }
      if (best >= MinDelayProfile::kUnreachable) continue;
      const std::uint32_t out = cell.out.value();
      if (best + delay < prof.arrival_ps[c][out]) {
        prof.arrival_ps[c][out] = best + delay;
        prof.pred[c][out] = best_in;
        prof.launch[c][out] = prof.launch[c][best_in.value()];
      }
    }
  }
  return prof;
}

std::vector<BorrowRecord> borrow_profile(const Netlist& netlist,
                                         const CellLibrary& library,
                                         const TimingOptions& options) {
  BorrowTrace trace;
  analyze(netlist, library, options, &trace);
  return std::move(trace.records);
}

std::int64_t min_period_ps(const Netlist& netlist,
                           const CellLibrary& library, std::int64_t lo_ps,
                           std::int64_t hi_ps, std::int64_t step_ps,
                           const TimingOptions& options) {
  // Scale all waveforms proportionally to a candidate period. The netlist is
  // copied once; only its clock spec is rewritten per probe.
  Netlist scaled = netlist;
  const ClockSpec original = netlist.clocks();
  require(original.period_ps > 0, "min_period_ps: no clock spec");
  auto passes = [&](std::int64_t period) {
    ClockSpec spec = original;
    spec.period_ps = period;
    for (PhaseWaveform& w : spec.phases) {
      w.rise_ps = w.rise_ps * period / original.period_ps;
      w.fall_ps = w.fall_ps * period / original.period_ps;
    }
    scaled.clocks() = spec;
    const TimingReport r = check_timing(scaled, library, options);
    return r.converged && r.setup_ok;
  };
  if (!passes(hi_ps)) return hi_ps + 1;
  while (hi_ps - lo_ps > step_ps) {
    const std::int64_t mid = (lo_ps + hi_ps) / 2;
    if (passes(mid)) {
      hi_ps = mid;
    } else {
      lo_ps = mid;
    }
  }
  return hi_ps;
}

TimingProfile profile_timing(const Netlist& netlist,
                             const CellLibrary& library,
                             const TimingOptions& options,
                             double bin_width_ps) {
  const Analysis analysis = analyze(netlist, library, options);
  TimingProfile profile;
  std::unordered_map<std::uint32_t, double> hold_of;
  for (const auto& [cell, slack] : analysis.hold_slacks) {
    const auto it = hold_of.find(cell.value());
    if (it == hold_of.end() || slack < it->second) {
      hold_of[cell.value()] = slack;
    }
  }
  for (const auto& [cell, slack] : analysis.setup_slacks) {
    EndpointSlack e;
    e.cell = cell;
    e.name = netlist.cell(cell).name;
    e.phase = netlist.cell(cell).phase;
    e.setup_slack_ps = slack;
    const auto it = hold_of.find(cell.value());
    e.hold_slack_ps = it == hold_of.end() ? 0 : it->second;
    profile.endpoints.push_back(std::move(e));
    if (slack < 0) {
      ++profile.failing_endpoints;
      profile.total_negative_slack_ps += -slack;
    }
  }
  std::sort(profile.endpoints.begin(), profile.endpoints.end(),
            [](const EndpointSlack& a, const EndpointSlack& b) {
              return a.setup_slack_ps < b.setup_slack_ps;
            });
  // Histogram over setup slack.
  profile.histogram.bin_width_ps = bin_width_ps;
  if (!profile.endpoints.empty()) {
    const double lo = profile.endpoints.front().setup_slack_ps;
    const double hi = profile.endpoints.back().setup_slack_ps;
    profile.histogram.min_slack_ps =
        std::floor(lo / bin_width_ps) * bin_width_ps;
    const int bins = std::max(
        1, static_cast<int>((hi - profile.histogram.min_slack_ps) /
                            bin_width_ps) +
               1);
    profile.histogram.counts.assign(static_cast<std::size_t>(bins), 0);
    for (const EndpointSlack& e : profile.endpoints) {
      const int bin = static_cast<int>(
          (e.setup_slack_ps - profile.histogram.min_slack_ps) /
          bin_width_ps);
      ++profile.histogram.counts[static_cast<std::size_t>(
          std::clamp(bin, 0, bins - 1))];
    }
  }
  return profile;
}

HoldRepairResult repair_hold(Netlist& netlist, const CellLibrary& library,
                             const TimingOptions& options, int max_passes) {
  HoldRepairResult result;
  const double buf_delay =
      library.delay_ps(CellKind::kBuf,
                       library.params(CellKind::kDff).input_cap_ff +
                           library.default_wire_cap_per_fanout_ff());
  for (int pass = 0; pass < max_passes; ++pass) {
    const Analysis analysis = analyze(netlist, library, options);
    ++result.passes;
    bool any = false;
    for (const auto& [reg, slack] : analysis.hold_slacks) {
      if (slack >= 0) continue;
      any = true;
      const int needed = static_cast<int>(std::ceil(-slack / buf_delay));
      const Cell& cell = netlist.cell(reg);
      NetId d = cell.ins[0];
      for (int b = 0; b < needed; ++b) {
        const CellId buf = netlist.add_gate(
            CellKind::kBuf,
            cat(cell.name, "_holdbuf", pass, "_", b), {d});
        d = netlist.cell(buf).out;
        ++result.buffers_inserted;
      }
      netlist.replace_input(reg, 0, d);
    }
    if (!any) break;
  }
  return result;
}

}  // namespace tp
