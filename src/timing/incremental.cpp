#include "src/timing/incremental.hpp"

#include <algorithm>
#include <cstdio>

#include "src/util/log.hpp"
#include "src/util/strcat.hpp"

namespace tp {
namespace {

constexpr double kNegInf = -1e18;
constexpr double kPosInf = 1e18;

/// Cycle shift of a launch class relative to a capture close: the intended
/// capture is the first closing edge strictly after the launcher's own
/// closing edge (data departing as late as the launch close must still make
/// the same logical transfer). Same-window pairs (FF-to-FF, pulsed-latch
/// pairs) therefore shift a full cycle.
int cycle_shift(double launch_close, double capture_close) {
  return capture_close > launch_close ? 0 : 1;
}

bool same_clocks(const ClockSpec& a, const ClockSpec& b) {
  if (a.period_ps != b.period_ps || a.phases.size() != b.phases.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    const PhaseWaveform& pa = a.phases[i];
    const PhaseWaveform& pb = b.phases[i];
    if (pa.phase != pb.phase || pa.root != pb.root ||
        pa.rise_ps != pb.rise_ps || pa.fall_ps != pb.fall_ps) {
      return false;
    }
  }
  return true;
}

/// True for cells the arrival propagation evaluates: live combinational
/// logic with an output, excluding the clock network (ideal clocks carry
/// no data arrivals).
bool propagated(const Cell& cell) {
  return cell.alive && is_combinational(cell.kind) &&
         !is_clock_cell(cell.kind) && cell.out.valid();
}

void append_hex(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  out += buf;
}

}  // namespace

TransparencyWindow register_window(const Netlist& netlist, const Cell& cell) {
  const PhaseWaveform* w = netlist.clocks().find(cell.phase);
  require(w != nullptr, cat("sta: register ", cell.name,
                            " has no phase waveform (phase ",
                            phase_name(cell.phase), ")"));
  const auto period = static_cast<double>(netlist.clocks().period_ps);
  switch (cell.kind) {
    case CellKind::kDff:
    case CellKind::kDffEn:
    case CellKind::kDffDet:
      // A DET FF samples on both edges, but behind a kClkDiv2 the clock
      // toggles once per cycle at the phase rise, so the zero-width window
      // at the rise models the single per-cycle sampling instant.
      return {static_cast<double>(w->rise_ps),
              static_cast<double>(w->rise_ps)};
    case CellKind::kLatchH:
    case CellKind::kLatchP:
      return {static_cast<double>(w->rise_ps),
              static_cast<double>(w->fall_ps)};
    case CellKind::kLatchL:
      return {static_cast<double>(w->fall_ps),
              static_cast<double>(w->rise_ps) + period};
    default:
      throw Error("sta: not a register");
  }
}

SmoEngine::SmoEngine(const CellLibrary& library, const TimingOptions& options,
                     bool track_borrow)
    : library_(library), options_(options), track_borrow_(track_borrow) {}

std::size_t SmoEngine::class_of(const TransparencyWindow& w) const {
  return static_cast<std::size_t>(
      std::lower_bound(classes_.begin(), classes_.end(),
                       std::make_pair(w.r, w.f)) -
      classes_.begin());
}

void SmoEngine::build_structure(const Netlist& netlist) {
  num_cells_ = netlist.num_cells();
  num_nets_ = netlist.num_nets();
  lev_ = levelize(netlist);
  registers_ = netlist.registers();
  is_reg_.assign(num_cells_, 0);
  for (const CellId id : registers_) is_reg_[id.value()] = 1;
  data_inputs_ = netlist.data_inputs();
  // Net loads and per-cell max delays are pure functions of the structure;
  // memoizing them here removes the per-pass pointer-chasing net_load_ff
  // walk the historical analyze() repeated every fixpoint iteration.
  load_.assign(num_nets_, 0.0);
  for (std::uint32_t n = 0; n < num_nets_; ++n) {
    if (netlist.net(NetId{n}).alive) {
      load_[n] = library_.net_load_ff(netlist, NetId{n});
    }
  }
  delay_max_.assign(num_cells_, 0.0);
  for (std::uint32_t i = 0; i < num_cells_; ++i) {
    const Cell& cell = netlist.cell(CellId{i});
    if (cell.alive && cell.out.valid()) {
      delay_max_[i] = library_.delay_ps(cell.kind, load_[cell.out.value()]);
    }
  }
  // Dirty-cone scratch sized to the netlist once; updates only clear the
  // entries they set.
  in_cone_net_.assign(num_nets_, 0);
  in_cone_cell_.assign(num_cells_, 0);
  reg_active_.assign(num_cells_, 0);
  reg_frontier_.assign(num_cells_, 0);
  po_dirty_.assign(num_cells_, 0);
  indeg_.assign(num_cells_, 0);
  structure_ready_ = true;
}

void SmoEngine::build_windows(const Netlist& netlist) {
  // Launch classes: distinct (open, close) register windows plus the
  // primary-input class (PIs change at cycle start and are FF-like: a
  // zero-width window at t = 0).
  windows_.assign(num_cells_, TransparencyWindow{});
  classes_.clear();
  classes_.push_back({0.0, 0.0});
  for (const CellId id : registers_) {
    windows_[id.value()] = register_window(netlist, netlist.cell(id));
    classes_.push_back({windows_[id.value()].r, windows_[id.value()].f});
  }
  std::sort(classes_.begin(), classes_.end());
  classes_.erase(std::unique(classes_.begin(), classes_.end()),
                 classes_.end());
  pi_class_ = class_of(TransparencyWindow{0.0, 0.0});
  cached_clocks_ = netlist.clocks();
}

void SmoEngine::recompute_max_row(const Netlist& netlist, CellId id) {
  const Cell& cell = netlist.cell(id);
  const double delay = delay_max_[id.value()];
  const std::uint32_t out = cell.out.value();
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    double best = kNegInf;
    NetId best_in;
    for (const NetId in : cell.ins) {
      const double a = arr_max_[c][in.value()];
      if (a > best) {
        best = a;
        best_in = in;
      }
    }
    if (best <= kNegInf || best >= kPosInf) {
      arr_max_[c][out] = best;
    } else {
      arr_max_[c][out] = best + delay;
    }
    if (track_borrow_) pred_[c][out] = best_in;
  }
}

void SmoEngine::recompute_min_row(const Netlist& netlist, CellId id) {
  const Cell& cell = netlist.cell(id);
  const double delay = library_.params(cell.kind).intrinsic_ps;
  const std::uint32_t out = cell.out.value();
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    double best = kPosInf;
    for (const NetId in : cell.ins) {
      const double a = arr_min_[c][in.value()];
      if (a < best) best = a;
    }
    if (best <= kNegInf || best >= kPosInf) {
      arr_min_[c][out] = best;
    } else {
      arr_min_[c][out] = best + delay;
    }
  }
}

double SmoEngine::register_departure(const Netlist& netlist,
                                     CellId id) const {
  const Cell& cell = netlist.cell(id);
  const TransparencyWindow& w = windows_[id.value()];
  // Pulsed latches are edge-sampled: data launched in the same cycle
  // cannot flow through, so their cycle alignment keys on the sampling
  // edge; the setup check still grants the [r, f] borrowing window.
  const double shift_ref = cell.kind == CellKind::kLatchP ? w.r : w.f;
  double arrival = kNegInf;
  for (std::size_t pin = 0; pin < cell.ins.size(); ++pin) {
    if (static_cast<int>(pin) == clock_pin(cell.kind)) continue;
    for (std::size_t c = 0; c < classes_.size(); ++c) {
      const double a = arr_max_[c][cell.ins[pin].value()];
      if (a <= kNegInf) continue;
      arrival = std::max(
          arrival,
          a - period_ * cycle_shift(classes_[c].second, shift_ref));
    }
  }
  // Borrowing is clamped at the window close: data arriving later does
  // not pass (the setup check reports the violation); without the clamp,
  // failing feedback loops would diverge instead of converging.
  return std::max(w.r, std::min(arrival, w.f)) + delay_max_[id.value()];
}

bool SmoEngine::update_register(const Netlist& netlist, CellId id) {
  const double v = register_departure(netlist, id);
  if (v > valid_[id.value()] + 1e-9) {
    valid_[id.value()] = v;
    const std::size_t c = class_of(windows_[id.value()]);
    const std::uint32_t out = netlist.cell(id).out.value();
    if (v > arr_max_[c][out]) {
      arr_max_[c][out] = v;
      return true;
    }
  }
  return false;
}

void SmoEngine::compute_register_checks(const Netlist& netlist, CellId id) {
  const Cell& cell = netlist.cell(id);
  const TransparencyWindow& w = windows_[id.value()];
  const CellParams& p = library_.params(cell.kind);
  const double shift_ref = cell.kind == CellKind::kLatchP ? w.r : w.f;
  double setup_slack_cell = kPosInf;
  std::vector<double>& holds = hold_pins_[id.value()];
  holds.assign(cell.ins.size(), kPosInf);
  for (std::size_t pin = 0; pin < cell.ins.size(); ++pin) {
    if (static_cast<int>(pin) == clock_pin(cell.kind)) continue;
    const NetId d = cell.ins[pin];
    double hold_slack = kPosInf;
    for (std::size_t c = 0; c < classes_.size(); ++c) {
      // A launcher with the identical non-zero window is a same-phase
      // transparent chain (e.g. two p2 latches in series after a merged
      // retiming cut): data flows through both within the shared window
      // by design, so there is no previous capture to corrupt. Zero-width
      // windows (flip-flops) still race and are checked.
      if (classes_[c].first == w.r && classes_[c].second == w.f &&
          w.f > w.r && cell.kind != CellKind::kLatchP) {
        continue;
      }
      const int k = cycle_shift(classes_[c].second, shift_ref);
      const double a_max = arr_max_[c][d.value()];
      if (a_max > kNegInf) {
        const double slack = (w.f - p.setup_ps) - (a_max - period_ * k);
        setup_slack_cell = std::min(setup_slack_cell, slack);
      }
      if (!setup_only_) {
        const double a_min = arr_min_[c][d.value()];
        if (a_min < kPosInf) {
          const double slack = (a_min + period_ * (1 - k)) - w.f -
                               p.hold_ps - options_.hold_uncertainty_ps;
          hold_slack = std::min(hold_slack, slack);
        }
      }
    }
    holds[pin] = hold_slack;
  }
  setup_cell_[id.value()] = setup_slack_cell;
}

double SmoEngine::compute_po_slack(const Netlist& netlist, CellId po) const {
  const NetId net = netlist.cell(po).ins[0];
  double worst = kPosInf;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const double a = arr_max_[c][net.value()];
    if (a <= kNegInf) continue;
    worst = std::min(worst, (period_ - options_.output_setup_ps) - a);
  }
  return worst;
}

void SmoEngine::build_report(const Netlist& netlist) {
  // Rebuilding the worst-point scan from the per-cell caches reproduces
  // the historical inline tracking exactly: the old code updated its
  // running worst on strict '<' in (register id, pin, class) order, so the
  // recorded point is the first cell attaining the global minimum — which
  // is what a strict '<' scan over per-cell minima yields as well.
  report_.setup_ok = true;
  report_.hold_ok = true;
  report_.worst_setup_slack_ps = kPosInf;
  report_.worst_hold_slack_ps = kPosInf;
  report_.worst_setup_point.clear();
  report_.worst_hold_point.clear();
  for (const CellId id : registers_) {
    const double s = setup_cell_[id.value()];
    if (s < kPosInf) {
      if (s < report_.worst_setup_slack_ps) {
        report_.worst_setup_slack_ps = s;
        report_.worst_setup_point = netlist.cell(id).name;
      }
      if (s < 0) report_.setup_ok = false;
    }
    for (const double h : hold_pins_[id.value()]) {
      if (h < kPosInf) {
        if (h < report_.worst_hold_slack_ps) {
          report_.worst_hold_slack_ps = h;
          report_.worst_hold_point = netlist.cell(id).name;
        }
        if (h < 0) report_.hold_ok = false;
      }
    }
  }
  // Primary outputs as zero-width capture windows at the cycle boundary.
  if (options_.output_setup_ps >= 0) {
    for (const CellId po : netlist.outputs()) {
      if (!netlist.cell(po).alive) continue;
      const double s = po_slack_[po.value()];
      if (s < kPosInf) {
        if (s < report_.worst_setup_slack_ps) {
          report_.worst_setup_slack_ps = s;
          report_.worst_setup_point = netlist.cell(po).name;
        }
        if (s < 0) report_.setup_ok = false;
      }
    }
  }
  if (report_.worst_setup_slack_ps >= kPosInf) {
    report_.worst_setup_slack_ps = 0;
  }
  if (report_.worst_hold_slack_ps >= kPosInf) report_.worst_hold_slack_ps = 0;
}

void SmoEngine::run_full(const Netlist& netlist, bool setup_only,
                         bool reuse_structure) {
  const Stopwatch watch;
  period_ = static_cast<double>(netlist.clocks().period_ps);
  if (!reuse_structure || !structure_ready_) build_structure(netlist);
  build_windows(netlist);
  setup_only_ = setup_only;
  const std::size_t num_classes = classes_.size();
  arr_max_.assign(num_classes, std::vector<double>(num_nets_, kNegInf));
  arr_min_.assign(num_classes, std::vector<double>(num_nets_, kPosInf));
  if (track_borrow_) {
    pred_.assign(num_classes, std::vector<NetId>(num_nets_));
  }

  // Primary-input seeds.
  for (const CellId pi : data_inputs_) {
    const NetId net = netlist.cell(pi).out;
    arr_max_[pi_class_][net.value()] = options_.input_delay_ps;
    arr_min_[pi_class_][net.value()] = options_.input_delay_ps;
  }
  // Earliest-departure seeds (independent of arrivals: data cannot leave a
  // register before its window opens).
  for (const CellId id : registers_) {
    const Cell& cell = netlist.cell(id);
    const TransparencyWindow& w = windows_[id.value()];
    const double d2q_min = library_.params(cell.kind).intrinsic_ps;
    double& slot = arr_min_[class_of(w)][cell.out.value()];
    slot = std::min(slot, w.r + d2q_min);
  }

  // Earliest arrivals: one pass (seeds are fixed).
  if (!setup_only) {
    for (const CellId id : lev_.comb_order) {
      const Cell& cell = netlist.cell(id);
      if (is_clock_cell(cell.kind) || !cell.out.valid()) continue;
      recompute_min_row(netlist, id);
    }
  }

  // Latest arrivals: fixpoint over register departures (time borrowing).
  valid_.assign(num_cells_, kNegInf);
  bool changed = true;
  int iterations = 0;
  while (changed && iterations < options_.max_iterations) {
    ++iterations;
    changed = false;
    for (const CellId id : lev_.comb_order) {
      const Cell& cell = netlist.cell(id);
      if (is_clock_cell(cell.kind) || !cell.out.valid()) continue;
      recompute_max_row(netlist, id);
    }
    for (const CellId id : registers_) {
      changed = update_register(netlist, id) || changed;
    }
  }
  report_.iterations = iterations;
  report_.converged = !changed;

  // Setup / hold checks at every register, then primary outputs.
  setup_cell_.assign(num_cells_, kPosInf);
  hold_pins_.assign(num_cells_, std::vector<double>());
  po_slack_.assign(num_cells_, kPosInf);
  for (const CellId id : registers_) compute_register_checks(netlist, id);
  if (options_.output_setup_ps >= 0) {
    for (const CellId po : netlist.outputs()) {
      if (!netlist.cell(po).alive) continue;
      po_slack_[po.value()] = compute_po_slack(netlist, po);
    }
  }
  build_report(netlist);

  primed_ = !setup_only;
  rows_dirty_ = true;
  ++stats_.full_runs;
  stats_.full_seconds += watch.seconds();
}

bool SmoEngine::guards_allow_patch(const Netlist& netlist,
                                   const TouchedSet& touched) const {
  // A cached state that is not a converged least fixpoint cannot be
  // patched soundly; and clock-plan edits (which bypass the journal —
  // clocks() hands out a mutable reference) move every window.
  if (!report_.converged) return false;
  if (!same_clocks(cached_clocks_, netlist.clocks())) return false;
  if (netlist.num_cells() < num_cells_ || netlist.num_nets() < num_nets_) {
    return false;
  }
  // Register-set membership or transparency-window changes alter the
  // launch-class structure every cached arrival row is indexed by; fall
  // back rather than remap (KISS — the hot paths insert buffers and morph
  // combinational cells, they do not move windows).
  for (const CellId id : touched.cells) {
    const Cell& cell = netlist.cell(id);
    const bool now_reg = cell.alive && is_register(cell.kind);
    if (id.value() < num_cells_) {
      if (static_cast<bool>(is_reg_[id.value()]) != now_reg) return false;
      if (now_reg) {
        const TransparencyWindow w = register_window(netlist, cell);
        if (w.r != windows_[id.value()].r || w.f != windows_[id.value()].f) {
          return false;
        }
      }
    } else {
      // New sequential cells, PIs, or POs change the register list /
      // seed set / report scan order; new combinational cells patch fine.
      if (now_reg || cell.kind == CellKind::kInput ||
          cell.kind == CellKind::kOutput) {
        return false;
      }
    }
  }
  return true;
}

void SmoEngine::run_update(const Netlist& netlist, const TouchedSet& touched) {
  if (!primed_) {
    run_full(netlist);
    return;
  }
  if (touched.empty() && netlist.num_cells() == num_cells_ &&
      netlist.num_nets() == num_nets_ &&
      same_clocks(cached_clocks_, netlist.clocks())) {
    ++stats_.skipped_runs;
    return;
  }
  const Stopwatch watch;
  if (guards_allow_patch(netlist, touched) && run_cone(netlist, touched)) {
    ++stats_.incremental_runs;
    stats_.incremental_seconds += watch.seconds();
    return;
  }
  run_full(netlist);
}

bool SmoEngine::run_cone(const Netlist& netlist, const TouchedSet& touched) {
  constexpr int kMaxRounds = 32;
  const std::size_t comb_limit = lev_.comb_order.size() / 2 + 8;

  // Grow every per-cell / per-net cache to the new shape (ids are never
  // reused, so existing rows keep their meaning).
  const std::size_t new_cells = netlist.num_cells();
  const std::size_t new_nets = netlist.num_nets();
  num_cells_ = new_cells;
  num_nets_ = new_nets;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    arr_max_[c].resize(new_nets, kNegInf);
    arr_min_[c].resize(new_nets, kPosInf);
    if (track_borrow_) pred_[c].resize(new_nets);
  }
  load_.resize(new_nets, 0.0);
  delay_max_.resize(new_cells, 0.0);
  valid_.resize(new_cells, kNegInf);
  is_reg_.resize(new_cells, 0);
  windows_.resize(new_cells);
  setup_cell_.resize(new_cells, kPosInf);
  hold_pins_.resize(new_cells);
  po_slack_.resize(new_cells, kPosInf);
  in_cone_net_.resize(new_nets, 0);
  in_cone_cell_.resize(new_cells, 0);
  reg_active_.resize(new_cells, 0);
  reg_frontier_.resize(new_cells, 0);
  po_dirty_.resize(new_cells, 0);
  indeg_.resize(new_cells, 0);

  cone_nets_.clear();
  cone_cells_.clear();
  frontier_regs_.clear();
  active_regs_.clear();
  dirty_pos_.clear();
  work_.clear();

  const auto cleanup = [&] {
    for (const NetId net : cone_nets_) in_cone_net_[net.value()] = 0;
    for (const CellId id : cone_cells_) {
      in_cone_cell_[id.value()] = 0;
      indeg_[id.value()] = 0;
    }
    for (const CellId id : frontier_regs_) reg_frontier_[id.value()] = 0;
    for (const CellId id : active_regs_) reg_active_[id.value()] = 0;
    for (const CellId id : dirty_pos_) po_dirty_[id.value()] = 0;
  };

  const auto add_net = [&](NetId net) {
    if (in_cone_net_[net.value()] != 0) return;
    in_cone_net_[net.value()] = 1;
    cone_nets_.push_back(net);
    work_.push_back(net);
  };
  const auto add_comb = [&](CellId id) {
    if (in_cone_cell_[id.value()] != 0) return;
    in_cone_cell_[id.value()] = 1;
    cone_cells_.push_back(id);
    add_net(netlist.cell(id).out);
  };
  const auto mark_frontier = [&](CellId id) {
    if (reg_active_[id.value()] != 0 || reg_frontier_[id.value()] != 0) {
      return;
    }
    reg_frontier_[id.value()] = 1;
    frontier_regs_.push_back(id);
  };
  const auto activate_reg = [&](CellId id) {
    if (reg_active_[id.value()] != 0) return;
    reg_active_[id.value()] = 1;
    active_regs_.push_back(id);
    add_net(netlist.cell(id).out);
  };

  // Seeds: touched nets get fresh loads (and their drivers fresh delays —
  // a load change shifts the driver's entire output row), touched cells
  // get recomputed outright.
  for (const NetId net : touched.nets) {
    const Net& n = netlist.net(net);
    load_[net.value()] = n.alive ? library_.net_load_ff(netlist, net) : 0.0;
    add_net(net);
    if (n.alive && n.driver.valid()) {
      const Cell& d = netlist.cell(n.driver);
      delay_max_[n.driver.value()] =
          library_.delay_ps(d.kind, load_[net.value()]);
      if (is_register(d.kind)) {
        activate_reg(n.driver);
      } else if (propagated(d)) {
        add_comb(n.driver);
      }
    }
  }
  for (const CellId id : touched.cells) {
    const Cell& cell = netlist.cell(id);
    if (!cell.alive) continue;  // its detached nets were journaled too
    if (is_register(cell.kind)) {
      mark_frontier(id);
    } else if (cell.kind == CellKind::kInput) {
      if (cell.out.valid()) add_net(cell.out);
    } else if (propagated(cell)) {
      add_comb(id);
    }
  }

  std::size_t work_head = 0;
  std::vector<CellId> order;
  std::vector<CellId> ready;
  for (int round = 0; round < kMaxRounds; ++round) {
    // Forward closure: the combinational fanout cone, stopping at register
    // data pins (frontier) and primary outputs. Clock cells are opaque:
    // propagation never evaluates them.
    while (work_head < work_.size()) {
      const NetId net = work_[work_head++];
      for (const PinRef& ref : netlist.net(net).fanouts) {
        const Cell& sink = netlist.cell(ref.cell);
        if (is_register(sink.kind)) {
          if (static_cast<int>(ref.pin) != clock_pin(sink.kind)) {
            mark_frontier(ref.cell);
          }
        } else if (sink.kind == CellKind::kOutput) {
          if (po_dirty_[ref.cell.value()] == 0) {
            po_dirty_[ref.cell.value()] = 1;
            dirty_pos_.push_back(ref.cell);
          }
        } else if (propagated(sink)) {
          add_comb(ref.cell);
        }
      }
      if (cone_cells_.size() > comb_limit) {
        cleanup();
        return false;
      }
    }

    // Cone-local topological order (Kahn over cone-internal edges). Any
    // valid order yields identical values: one pass in topological order
    // assigns every cell a pure function of fully-updated fan-ins. A
    // cycle inside the cone means a combinational loop was created; fall
    // back so the full pass throws exactly like a fresh analysis.
    order.clear();
    ready.clear();
    std::sort(cone_cells_.begin(), cone_cells_.end(),
              [](CellId a, CellId b) { return a.value() < b.value(); });
    for (const CellId id : cone_cells_) {
      int deg = 0;
      for (const NetId in : netlist.cell(id).ins) {
        const CellId drv = netlist.net(in).driver;
        if (drv.valid() && in_cone_cell_[drv.value()] != 0) ++deg;
      }
      indeg_[id.value()] = deg;
      if (deg == 0) ready.push_back(id);
    }
    std::size_t ready_head = 0;
    while (ready_head < ready.size()) {
      const CellId id = ready[ready_head++];
      order.push_back(id);
      for (const PinRef& ref : netlist.net(netlist.cell(id).out).fanouts) {
        if (in_cone_cell_[ref.cell.value()] != 0 &&
            --indeg_[ref.cell.value()] == 0) {
          ready.push_back(ref.cell);
        }
      }
    }
    if (order.size() != cone_cells_.size()) {
      cleanup();
      return false;
    }

    // Reset every cone row to its seed value, then re-run the restricted
    // fixpoint from below against the frozen (final) boundary.
    for (const NetId net : cone_nets_) {
      const Net& n = netlist.net(net);
      const std::uint32_t v = net.value();
      for (std::size_t c = 0; c < classes_.size(); ++c) {
        arr_max_[c][v] = kNegInf;
        if (track_borrow_) pred_[c][v] = NetId{};
      }
      const CellId drv = n.alive ? n.driver : CellId{};
      const Cell* dc = drv.valid() ? &netlist.cell(drv) : nullptr;
      if (dc != nullptr && dc->kind == CellKind::kInput && !n.is_clock) {
        for (std::size_t c = 0; c < classes_.size(); ++c) {
          arr_min_[c][v] = c == pi_class_ ? options_.input_delay_ps : kPosInf;
        }
        arr_max_[pi_class_][v] = options_.input_delay_ps;
      } else if (dc != nullptr && is_register(dc->kind)) {
        // Earliest-departure seed (w.r + clk2q_min) is arrival-independent
        // and the window is unchanged (guard): the cached arr_min row
        // stands. arr_max is re-established by update_register below.
      } else if (dc != nullptr && propagated(*dc)) {
        // Recomputed by the min/max passes below.
      } else {
        // Driverless, dead, clock-cell-driven, or clock-root nets carry no
        // data arrivals — exactly the fresh-run initial values.
        for (std::size_t c = 0; c < classes_.size(); ++c) {
          arr_min_[c][v] = kPosInf;
        }
      }
    }
    for (const CellId id : active_regs_) valid_[id.value()] = kNegInf;

    if (!setup_only_) {
      for (const CellId id : order) recompute_min_row(netlist, id);
    }

    std::sort(active_regs_.begin(), active_regs_.end(),
              [](CellId a, CellId b) { return a.value() < b.value(); });
    bool changed = true;
    int iterations = 0;
    while (changed && iterations < options_.max_iterations) {
      ++iterations;
      changed = false;
      for (const CellId id : order) recompute_max_row(netlist, id);
      for (const CellId id : active_regs_) {
        changed = update_register(netlist, id) || changed;
      }
    }
    ++stats_.cone_rounds;
    stats_.cone_cells += static_cast<long>(order.size());
    if (changed) {
      // The restricted fixpoint did not settle within the iteration
      // budget; a full pass decides convergence.
      cleanup();
      return false;
    }

    // Frontier pruning: a register whose would-be departure is bitwise
    // equal to its cached output row is transparent to the edit (its own
    // slack is still recomputed below). Flip-flop departures are
    // arrival-independent, so FF frontiers always prune. Anything else
    // extends the cone and reruns.
    bool extended = false;
    for (const CellId reg : frontier_regs_) {
      if (reg_active_[reg.value()] != 0) continue;
      const double v = register_departure(netlist, reg);
      const std::size_t c = class_of(windows_[reg.value()]);
      if (v != arr_max_[c][netlist.cell(reg).out.value()]) {
        activate_reg(reg);
        extended = true;
      }
    }
    if (!extended) {
      // Settled. Refresh the slack caches of every register that saw a
      // cone net (a superset of those whose arrivals changed), the dirty
      // POs, and the report scan. `iterations` is the cone's pass count —
      // a diagnostic, deliberately outside the identity contract.
      report_.iterations = iterations;
      for (const CellId id : frontier_regs_) {
        compute_register_checks(netlist, id);
      }
      for (const CellId id : active_regs_) {
        compute_register_checks(netlist, id);
      }
      for (const CellId id : touched.cells) {
        if (id.value() < is_reg_.size() && is_reg_[id.value()] != 0 &&
            reg_frontier_[id.value()] == 0 && reg_active_[id.value()] == 0) {
          compute_register_checks(netlist, id);
        }
      }
      if (options_.output_setup_ps >= 0) {
        for (const CellId po : dirty_pos_) {
          po_slack_[po.value()] = compute_po_slack(netlist, po);
        }
      }
      build_report(netlist);
      rows_dirty_ = true;
      cleanup();
      return true;
    }
  }
  cleanup();
  return false;
}

const std::vector<std::pair<CellId, double>>& SmoEngine::setup_rows() const {
  if (rows_dirty_) {
    setup_rows_.clear();
    hold_rows_.clear();
    for (const CellId id : registers_) {
      for (const double h : hold_pins_[id.value()]) {
        if (h < kPosInf) hold_rows_.push_back({id, h});
      }
      const double s = setup_cell_[id.value()];
      if (s < kPosInf) setup_rows_.push_back({id, s});
    }
    rows_dirty_ = false;
  }
  return setup_rows_;
}

const std::vector<std::pair<CellId, double>>& SmoEngine::hold_rows() const {
  static_cast<void>(setup_rows());  // one rebuild refreshes both
  return hold_rows_;
}

std::vector<BorrowRecord> SmoEngine::borrow_records(
    const Netlist& netlist) const {
  require(track_borrow_,
          "SmoEngine::borrow_records: engine built without track_borrow");
  // Per register: the worst capture-frame arrival and the launching
  // register on the path that produced it. The final propagate pass of the
  // fixpoint left pred_ consistent with arr_max_.
  std::vector<BorrowRecord> records;
  records.reserve(registers_.size());
  for (const CellId id : registers_) {
    const Cell& cell = netlist.cell(id);
    const TransparencyWindow& w = windows_[id.value()];
    const double shift_ref = cell.kind == CellKind::kLatchP ? w.r : w.f;
    BorrowRecord rec;
    rec.cell = id;
    rec.open_ps = w.r;
    rec.close_ps = w.f;
    double best = kNegInf;
    std::size_t best_class = 0;
    NetId best_net;
    for (std::size_t pin = 0; pin < cell.ins.size(); ++pin) {
      if (static_cast<int>(pin) == clock_pin(cell.kind)) continue;
      for (std::size_t c = 0; c < classes_.size(); ++c) {
        const double a = arr_max_[c][cell.ins[pin].value()];
        if (a <= kNegInf) continue;
        const double shifted =
            a - period_ * cycle_shift(classes_[c].second, shift_ref);
        if (shifted > best + 1e-9) {
          best = shifted;
          best_class = c;
          best_net = cell.ins[pin];
        }
      }
    }
    if (best > kNegInf) {
      rec.has_arrival = true;
      rec.arrival_ps = best;
      rec.borrow_ps = std::max(0.0, std::min(best, w.f) - w.r);
      // Walk the critical fan-in chain back to the launching register.
      NetId net = best_net;
      for (std::size_t step = 0; step <= netlist.num_cells(); ++step) {
        const CellId drv = netlist.net(net).driver;
        if (!drv.valid()) break;
        const Cell& dc = netlist.cell(drv);
        if (is_register(dc.kind)) {
          rec.upstream = drv;
          break;
        }
        if (!is_combinational(dc.kind) || is_clock_cell(dc.kind)) break;
        net = pred_[best_class][net.value()];
        if (!net.valid()) break;
      }
    }
    records.push_back(rec);
  }
  return records;
}

IncrementalTimer::IncrementalTimer(const CellLibrary& library,
                                   const TimingOptions& options,
                                   bool track_borrow)
    : engine_(library, options, track_borrow) {}

const TimingReport& IncrementalTimer::analyze(const Netlist& netlist) {
  cursor_ = netlist.journal_cursor();
  engine_.run_full(netlist);
  return engine_.report();
}

const TimingReport& IncrementalTimer::update(const Netlist& netlist,
                                             const TouchedSet& touched) {
  engine_.run_update(netlist, touched);
  return engine_.report();
}

const TimingReport& IncrementalTimer::sync(const Netlist& netlist) {
  if (!netlist.journal_enabled() || !engine_.primed()) {
    return analyze(netlist);
  }
  const TouchedSet touched = netlist.take_touched(cursor_);
  engine_.run_update(netlist, touched);
  return engine_.report();
}

namespace {

/// Decision slop for the min-period fast probe. The oracle and the engine
/// evaluate mathematically identical max-plus sums with different add
/// orderings (the oracle pre-folds combinational path delays into edge
/// weights), so their values agree only to ulps. Any check landing within
/// this margin of a decision boundary is "too close to call" and the probe
/// falls back to the engine.
constexpr double kOracleMargin = 1e-6;

/// The engine accepts a register-departure update when it exceeds the
/// cached value by more than 1e-9. An oracle delta inside this band around
/// that threshold could round to the other side of the engine's compare,
/// silently changing the fixpoint trajectory — such probes are punted to
/// the engine. The band is ~100x wider than the worst accumulated ulp
/// noise of a deep path sum, and real update deltas are combinations of
/// cell delays and window offsets (picosecond scale), so it essentially
/// never triggers.
constexpr double kAmbiguousLo = 1e-10;
constexpr double kAmbiguousHi = 1e-8;

/// Fast probe path for find_min_period(). Combinational path delays are
/// period-independent — rescaling the clock plan only moves the register
/// windows — so the SMO arrival fixpoint can be condensed onto the
/// register graph once and replayed per probe in O(edges) per iteration
/// instead of O(launch classes x nets).
///
/// Construction walks each register data pin's (and, with output checks
/// enabled, each PO pin's) combinational fan-in cone backward to the
/// launching registers / primary inputs, recording one max-delay edge per
/// (source, pin). decide() then runs the engine's own iteration scheme on
/// those edges: per round, each register's arrival is the max over edges
/// of source departure plus edge weight minus the class cycle shift, and
/// its departure max(w.r, min(arrival, w.f)) + clk->q is accepted exactly
/// when it beats the cached value by the engine's 1e-9 tolerance.
/// Direct register-to-register edges (no combinational cell between) read
/// the current round's departures for earlier-ordered registers — the
/// engine's update loop writes arrival rows in place, so a direct
/// consumer later in netlist.registers() order sees the fresh value
/// within the same iteration — while combinational-cone edges read the
/// previous round's (the engine's comb pass runs before the register
/// updates). This reproduces the engine's iteration trajectory, its
/// convergence flag, and its setup verdict decision-for-decision; the only
/// divergence channel is floating-point add ordering, which is fenced by
/// kOracleMargin on check slacks and kAmbiguousLo/Hi on update deltas —
/// any probe near a boundary returns "unknown" and runs the engine.
///
/// Designs whose register fan-in cones are too entangled (total walked
/// cone cells beyond a multiple of the combinational cell count) disable
/// the oracle at construction; every probe then takes the engine path,
/// which is the status quo.
class MinPeriodOracle {
 public:
  MinPeriodOracle(const Netlist& netlist, const CellLibrary& library,
                  const TimingOptions& options)
      : library_(library), options_(options) {
    const Levelization lev = levelize(netlist);
    registers_ = netlist.registers();
    const std::uint32_t num_cells = netlist.num_cells();
    const std::uint32_t num_nets = netlist.num_nets();
    std::vector<double> delay_max(num_cells, 0.0);
    for (std::uint32_t i = 0; i < num_cells; ++i) {
      const Cell& cell = netlist.cell(CellId{i});
      if (cell.alive && cell.out.valid()) {
        delay_max[i] =
            library.delay_ps(cell.kind, library.net_load_ff(netlist, cell.out));
      }
    }
    delay_reg_.resize(registers_.size());
    reg_group_.assign(num_cells, 0);
    std::vector<std::int32_t> reg_index(num_nets, -1);  // by output net
    for (std::size_t i = 0; i < registers_.size(); ++i) {
      const Cell& cell = netlist.cell(registers_[i]);
      delay_reg_[i] = delay_max[registers_[i].value()];
      reg_index[cell.out.value()] = static_cast<std::int32_t>(i);
      std::size_t g = 0;
      for (; g < reps_.size(); ++g) {
        const Cell& rep = netlist.cell(reps_[g]);
        if (rep.phase == cell.phase && rep.kind == cell.kind) break;
      }
      if (g == reps_.size()) reps_.push_back(registers_[i]);
      reg_group_[registers_[i].value()] = g;
    }
    std::vector<char> pi_net(num_nets, 0);
    for (const CellId pi : netlist.data_inputs()) {
      pi_net[netlist.cell(pi).out.value()] = 1;
    }

    // Backward longest-path walk from one pin to every launching source.
    // Cone cells are relaxed in descending level order (reverse topological
    // for the fan-in direction), so each distance is final when read.
    std::vector<double> dist(num_nets, kNegInf);
    std::vector<std::uint32_t> cone_nets;
    std::vector<CellId> cone_cells;
    std::size_t budget = 64 * lev.comb_order.size() + 1024;
    const auto walk_pin = [&](NetId pin, std::vector<Edge>& out) {
      cone_nets.clear();
      cone_cells.clear();
      cone_nets.push_back(pin.value());
      dist[pin.value()] = 0;
      for (std::size_t head = 0; head < cone_nets.size(); ++head) {
        const NetId x{cone_nets[head]};
        if (pi_net[x.value()] || reg_index[x.value()] >= 0) continue;
        const CellId drv = netlist.net(x).driver;
        if (!drv.valid()) continue;
        const Cell& cell = netlist.cell(drv);
        if (!propagated(cell)) continue;  // clock network / dead ends
        cone_cells.push_back(drv);
        for (const NetId in : cell.ins) {
          if (dist[in.value()] <= kNegInf) {
            dist[in.value()] = kNegInf / 2;  // discovered, not yet relaxed
            cone_nets.push_back(in.value());
          }
        }
      }
      if (cone_cells.size() > budget) {
        budget = 0;
        return false;
      }
      budget -= cone_cells.size();
      std::sort(cone_cells.begin(), cone_cells.end(),
                [&](CellId a, CellId b) {
                  return lev.level[a.value()] > lev.level[b.value()];
                });
      for (const CellId id : cone_cells) {
        const Cell& cell = netlist.cell(id);
        const double d = dist[cell.out.value()];
        if (d <= kNegInf / 2) continue;  // unreachable corner of the cone
        for (const NetId in : cell.ins) {
          dist[in.value()] =
              std::max(dist[in.value()], d + delay_max[id.value()]);
        }
      }
      for (const std::uint32_t x : cone_nets) {
        const double d = dist[x];
        if (d > kNegInf / 2) {
          if (pi_net[x]) {
            out.push_back(Edge{-1, d, x == pin.value()});
          } else if (reg_index[x] >= 0) {
            out.push_back(Edge{reg_index[x], d, x == pin.value()});
          }
        }
        dist[x] = kNegInf;
      }
      return true;
    };

    edges_.resize(registers_.size());
    for (std::size_t i = 0; i < registers_.size() && enabled_; ++i) {
      const Cell& cell = netlist.cell(registers_[i]);
      for (std::size_t pin = 0; pin < cell.ins.size(); ++pin) {
        if (static_cast<int>(pin) == clock_pin(cell.kind)) continue;
        if (!walk_pin(cell.ins[pin], edges_[i])) {
          enabled_ = false;
          break;
        }
      }
    }
    if (options.output_setup_ps >= 0 && enabled_) {
      for (const CellId po : netlist.outputs()) {
        if (!netlist.cell(po).alive) continue;
        po_edges_.emplace_back();
        if (!walk_pin(netlist.cell(po).ins[0], po_edges_.back())) {
          enabled_ = false;
          break;
        }
      }
    }
  }

  /// Decide the probe for `scaled` (same structure, rescaled clocks):
  /// +1 provably feasible, -1 provably infeasible, 0 run the engine.
  [[nodiscard]] int decide(const Netlist& scaled) const {
    if (!enabled_) return 0;
    const double period = static_cast<double>(scaled.clocks().period_ps);
    const std::size_t num_regs = registers_.size();
    std::vector<TransparencyWindow> win(reps_.size());
    for (std::size_t g = 0; g < reps_.size(); ++g) {
      win[g] = register_window(scaled, scaled.cell(reps_[g]));
    }
    const auto launch_close = [&](const Edge& e) {
      return e.src < 0
                 ? 0.0
                 : win[reg_group_[registers_[static_cast<std::size_t>(e.src)]
                                      .value()]]
                       .f;
    };

    // The engine's departure fixpoint, condensed onto the register graph.
    std::vector<double> row(num_regs, kNegInf);
    std::vector<double> row_prev(num_regs, kNegInf);
    std::vector<double> valid(num_regs, kNegInf);
    bool changed = true;
    int iterations = 0;
    while (changed && iterations < options_.max_iterations) {
      ++iterations;
      changed = false;
      row_prev = row;
      for (std::size_t i = 0; i < num_regs; ++i) {
        const Cell& cell = scaled.cell(registers_[i]);
        const TransparencyWindow& w =
            win[reg_group_[registers_[i].value()]];
        const double shift_ref =
            cell.kind == CellKind::kLatchP ? w.r : w.f;
        double arrival = kNegInf;
        for (const Edge& e : edges_[i]) {
          const double base =
              e.src < 0 ? options_.input_delay_ps
                        : (e.direct ? row[static_cast<std::size_t>(e.src)]
                                    : row_prev[static_cast<std::size_t>(
                                          e.src)]);
          if (base <= kNegInf) continue;
          arrival = std::max(
              arrival, (base + e.weight) -
                           period * cycle_shift(launch_close(e), shift_ref));
        }
        const double v =
            std::max(w.r, std::min(arrival, w.f)) + delay_reg_[i];
        const double delta = v - valid[i];
        if (delta > kAmbiguousLo && delta < kAmbiguousHi) {
          return 0;  // engine's 1e-9 compare could round the other way
        }
        if (delta > 1e-9) {
          valid[i] = v;
          if (v > row[i]) {
            row[i] = v;
            changed = true;
          }
        }
      }
    }
    if (changed) return -1;  // engine would time out unconverged: fails

    bool decisive = true;  // every slack so far clears the margin
    for (std::size_t i = 0; i < num_regs; ++i) {
      const Cell& cell = scaled.cell(registers_[i]);
      const TransparencyWindow& w = win[reg_group_[registers_[i].value()]];
      const CellParams& p = library_.params(cell.kind);
      const double shift_ref = cell.kind == CellKind::kLatchP ? w.r : w.f;
      for (const Edge& e : edges_[i]) {
        const double base =
            e.src < 0 ? options_.input_delay_ps
                      : row[static_cast<std::size_t>(e.src)];
        if (base <= kNegInf) continue;
        const double lf = launch_close(e);
        const double lr =
            e.src < 0
                ? 0.0
                : win[reg_group_[registers_[static_cast<std::size_t>(e.src)]
                                     .value()]]
                      .r;
        // Same transparent-chain skip rule the engine applies per class.
        if (lr == w.r && lf == w.f && w.f > w.r &&
            cell.kind != CellKind::kLatchP) {
          continue;
        }
        const int k = cycle_shift(lf, shift_ref);
        const double slack =
            (w.f - p.setup_ps) - ((base + e.weight) - period * k);
        if (slack < -kOracleMargin) return -1;
        if (slack < kOracleMargin) decisive = false;
      }
    }
    if (options_.output_setup_ps >= 0) {
      for (const std::vector<Edge>& edges : po_edges_) {
        for (const Edge& e : edges) {
          const double base =
              e.src < 0 ? options_.input_delay_ps
                        : row[static_cast<std::size_t>(e.src)];
          if (base <= kNegInf) continue;
          const double slack =
              (period - options_.output_setup_ps) - (base + e.weight);
          if (slack < -kOracleMargin) return -1;
          if (slack < kOracleMargin) decisive = false;
        }
      }
    }
    return decisive ? 1 : 0;
  }

 private:
  struct Edge {
    std::int32_t src;  // registers_ index, or -1 for primary inputs
    double weight;     // max combinational path delay source -> pin
    bool direct;       // source output IS the pin net (no comb between)
  };

  const CellLibrary& library_;
  const TimingOptions& options_;
  bool enabled_ = true;
  std::vector<CellId> registers_;
  std::vector<double> delay_reg_;       // clk->q max, by registers_ index
  std::vector<CellId> reps_;            // one representative per group
  std::vector<std::size_t> reg_group_;  // cell id -> group index
  std::vector<std::vector<Edge>> edges_;     // by capturing registers_ index
  std::vector<std::vector<Edge>> po_edges_;  // by live primary output
};

}  // namespace

MinPeriodResult find_min_period(const Netlist& netlist,
                                const CellLibrary& library,
                                std::int64_t lo_ps, std::int64_t hi_ps,
                                std::int64_t step_ps,
                                const TimingOptions& options) {
  // Scale all waveforms proportionally to a candidate period. The netlist
  // is copied once; only its clock spec is rewritten per probe, so one
  // engine reuses the levelization / register list / net loads across the
  // whole binary search (launch classes rebuild per probe: scaling can
  // merge distinct windows).
  Netlist scaled = netlist;
  const ClockSpec original = netlist.clocks();
  require(original.period_ps > 0, "find_min_period: no clock spec");
  MinPeriodResult result;
  const MinPeriodOracle oracle(netlist, library, options);
  SmoEngine engine(library, options, /*track_borrow=*/false);
  bool engine_ran = false;
  const auto passes = [&](std::int64_t period) {
    ClockSpec spec = original;
    spec.period_ps = period;
    for (PhaseWaveform& w : spec.phases) {
      w.rise_ps = w.rise_ps * period / original.period_ps;
      w.fall_ps = w.fall_ps * period / original.period_ps;
    }
    scaled.clocks() = spec;
    ++result.probes;
    // Most probes resolve on the precomputed distance rows; the engine
    // only runs when borrowing (or an ulp-tight slack) makes the lower
    // bound inconclusive.
    const int fast = oracle.decide(scaled);
    if (fast != 0) {
      ++result.fast_probes;
      return fast > 0;
    }
    engine.run_full(scaled, /*setup_only=*/true,
                    /*reuse_structure=*/engine_ran);
    engine_ran = true;
    return engine.report().converged && engine.report().setup_ok;
  };
  if (!passes(hi_ps)) {
    result.feasible = false;
    result.period_ps = hi_ps;
    return result;
  }
  while (hi_ps - lo_ps > step_ps) {
    const std::int64_t mid = (lo_ps + hi_ps) / 2;
    if (passes(mid)) {
      hi_ps = mid;
    } else {
      lo_ps = mid;
    }
  }
  result.feasible = true;
  result.period_ps = hi_ps;
  return result;
}

std::string timing_identity(const TimingReport& report) {
  std::string out;
  out += report.converged ? "c1|" : "c0|";
  out += report.setup_ok ? "s1|" : "s0|";
  out += report.hold_ok ? "h1|" : "h0|";
  append_hex(out, report.worst_setup_slack_ps);
  out += '|';
  append_hex(out, report.worst_hold_slack_ps);
  out += '|';
  out += report.worst_setup_point;
  out += '|';
  out += report.worst_hold_point;
  return out;
}

std::string borrow_identity(const std::vector<BorrowRecord>& records) {
  std::string out;
  for (const BorrowRecord& rec : records) {
    out += cat(rec.cell.value());
    out += ',';
    append_hex(out, rec.open_ps);
    out += ',';
    append_hex(out, rec.close_ps);
    out += ',';
    append_hex(out, rec.arrival_ps);
    out += ',';
    append_hex(out, rec.borrow_ps);
    out += ',';
    if (rec.upstream.valid()) {
      out += cat(rec.upstream.value());
    } else {
      out += '-';
    }
    out += rec.has_arrival ? ",1\n" : ",0\n";
  }
  return out;
}

}  // namespace tp
