// Timing reporting: slack histograms and worst-path summaries on top of the
// SMO analysis in sta.hpp. Used by the benches and the CLI to show where a
// design's margin lives (e.g. how time borrowing redistributes slack in a
// converted design compared with the hard FF edges).
#pragma once

#include <string>
#include <vector>

#include "src/timing/sta.hpp"

namespace tp {

struct EndpointSlack {
  CellId cell;
  std::string name;
  Phase phase = Phase::kNone;
  double setup_slack_ps = 0;
  double hold_slack_ps = 0;
};

struct SlackHistogram {
  double bin_width_ps = 100;
  double min_slack_ps = 0;
  /// counts[i] covers [min + i*bin, min + (i+1)*bin).
  std::vector<int> counts;
};

struct TimingProfile {
  std::vector<EndpointSlack> endpoints;  // sorted by setup slack, ascending
  SlackHistogram histogram;
  double total_negative_slack_ps = 0;    // setup TNS
  int failing_endpoints = 0;
};

/// Per-endpoint slacks for every register in the design.
TimingProfile profile_timing(const Netlist& netlist,
                             const CellLibrary& library,
                             const TimingOptions& options = {},
                             double bin_width_ps = 100);

/// Renders "name  phase  setup  hold" rows for the n worst endpoints plus
/// the histogram, suitable for printing.
std::string format_profile(const TimingProfile& profile,
                           int worst_endpoints = 10);

}  // namespace tp
