// Static timing analysis for multi-phase latch designs (the SMO model of
// Sec. II, in operational form).
//
// Every latch i has a transparency window [r_i, f_i] inside the common cycle
// (flip-flops are zero-width windows at their sampling edge, r = f). Data
// launched by latch j is captured by the first closing edge of latch i that
// lies strictly after j's opening edge:
//     k_ji = 0 when f_i > r_j (same cycle), 1 otherwise (next cycle).
//
// Latest-arrival fixpoint (time borrowing): the output of latch i becomes
// valid at  v_i = max(r_i, A_i) + clk2q_i, and the capture-frame arrival is
//     A_i = max_j ( v_j + Delta_ji - k_ji * Tc ).
// Because k depends only on the launch window's opening time, arrivals are
// propagated through the combinational network once per distinct opening
// time ("launch class"), which keeps the analysis linear in netlist size.
//
// Checks (Eq. 2 of the paper, rearranged):
//     setup:  A_i <= f_i - S_i
//     hold:   a_i >= f_i + (k_ji - 1) * Tc + H_i + uncertainty, where a_i is
//             the earliest next-data arrival  r_j + clk2q_min + delta_ji.
//
// Clock networks are ideal (zero insertion delay and skew); `uncertainty`
// models skew/jitter margins.
#pragma once

#include <string>
#include <vector>

#include "src/library/cell_library.hpp"
#include "src/netlist/netlist.hpp"

namespace tp {

class IncrementalTimer;  // src/timing/incremental.hpp

struct TimingOptions {
  double hold_uncertainty_ps = 25.0;
  /// External arrival of primary inputs after the cycle start; also gives
  /// PI-to-register paths realistic hold margin.
  double input_delay_ps = 60.0;
  /// Required margin at primary outputs before the cycle boundary; POs are
  /// checked like zero-width capture windows at Tc. Negative disables.
  double output_setup_ps = -1.0;
  int max_iterations = 128;
};

struct TimingReport {
  bool converged = false;   // arrival fixpoint reached (no structural
                            // impossibility such as a borrowing loop)
  bool setup_ok = false;
  bool hold_ok = false;
  double worst_setup_slack_ps = 0;
  double worst_hold_slack_ps = 0;
  std::string worst_setup_point;  // cell name of the worst capture latch
  std::string worst_hold_point;
  int iterations = 0;

  [[nodiscard]] bool ok() const { return converged && setup_ok && hold_ok; }
};

TimingReport check_timing(const Netlist& netlist, const CellLibrary& library,
                          const TimingOptions& options = {});

/// Earliest-arrival (min-delay) bounds per launch class, with witness
/// back-pointers. Arrivals are measured from the launching cycle's start:
/// a register in class c launches no earlier than open_ps + clk2q_min, a
/// primary input no earlier than input_delay_ps. The min-delay race
/// analysis (src/analysis/race.cpp) compares these bounds against
/// overlapping transparency windows.
struct MinDelayProfile {
  /// arrival_ps value meaning "no combinational path from this class".
  static constexpr double kUnreachable = 1e18;

  struct LaunchClass {
    double open_ps = 0;
    double close_ps = 0;
  };
  std::vector<LaunchClass> classes;  // sorted by (open, close), unique
  std::size_t pi_class = 0;          // index of the zero-width PI class

  // All indexed [class][net.value()].
  std::vector<std::vector<double>> arrival_ps;
  /// Fan-in net realizing the min arrival (invalid at seeds).
  std::vector<std::vector<NetId>> pred;
  /// Launching register of the min path (invalid for PI-launched paths).
  std::vector<std::vector<CellId>> launch;

  [[nodiscard]] bool reachable(std::size_t cls, NetId net) const {
    return arrival_ps[cls][net.value()] < kUnreachable;
  }
};

MinDelayProfile min_delay_profile(const Netlist& netlist,
                                  const CellLibrary& library,
                                  const TimingOptions& options = {});

/// One record per register out of the latest-arrival (time-borrowing)
/// fixpoint: the capture-frame arrival A_i, the borrow it implies beyond
/// the window open, and the launching register on the critical path — the
/// back-pointers the borrowing-chain analysis (src/analysis/borrow.cpp)
/// walks to accumulate per-chain borrow.
struct BorrowRecord {
  CellId cell;
  double open_ps = 0;     // window open r_i
  double close_ps = 0;    // window close f_i
  double arrival_ps = 0;  // capture-frame latest arrival A_i
  double borrow_ps = 0;   // max(0, min(A_i, f_i) - r_i); 0 for flip-flops
  CellId upstream;        // critical-path launcher (invalid: PI or none)
  bool has_arrival = false;
};

std::vector<BorrowRecord> borrow_profile(const Netlist& netlist,
                                         const CellLibrary& library,
                                         const TimingOptions& options = {});

// The min-period search lives in src/timing/incremental.hpp
// (find_min_period): it returns a structured MinPeriodResult instead of
// the old "hi + 1 means infeasible" sentinel and reuses one arrival
// engine across the binary-search probes.

struct HoldRepairResult {
  int buffers_inserted = 0;
  int passes = 0;
  /// Wall-clock split of the STA passes spent inside the repair loop
  /// (feeds StepTimes::sta_full_s / sta_incremental_s).
  double sta_full_s = 0;
  double sta_incremental_s = 0;
};

/// Inserts delay buffers in front of capture-register D pins until hold
/// passes (or `max_passes` is exhausted). The paper's FF baselines need this
/// padding more than the latch designs — one source of their combinational
/// power gap. With `timer` given (an IncrementalTimer session following
/// this netlist), each pass re-times only the cones of the buffers the
/// previous pass inserted instead of running a cold STA; the timer's own
/// options govern those passes.
HoldRepairResult repair_hold(Netlist& netlist, const CellLibrary& library,
                             const TimingOptions& options = {},
                             int max_passes = 10,
                             IncrementalTimer* timer = nullptr);

}  // namespace tp
