// Incremental SMO static timing.
//
// One arrival engine (SmoEngine) backs both the fresh entry points in
// sta.hpp (check_timing / borrow_profile / profile_timing) and the
// IncrementalTimer session below. The engine caches everything the full
// analysis derives — launch classes, per-register transparency windows,
// per-(class, net) latest/earliest arrivals, per-register departure times,
// per-register setup and per-(register, pin) hold slacks, PO slacks — and
// can re-establish the global fixpoint after a netlist edit by resetting
// and re-running only the dirty fanout cone:
//
//   1. Seeds: every journaled net, the drivers of journaled nets (their
//      output load changed, so their delay changed), and every journaled
//      combinational cell.
//   2. Closure: the combinational fanout cone of the seeds, stopping at
//      register data pins (frontier registers) and primary outputs.
//   3. Restricted fixpoint: cone rows are reset to their seeds and the
//      latest-arrival fixpoint reruns over the cone only, reading cached
//      (final) values at the cone boundary. Because arrivals form a
//      monotone least fixpoint and the cone is forward-closed, this
//      converges to exactly the values a full rerun would compute.
//   4. Frontier pruning: a frontier register whose recomputed departure is
//      bitwise equal to its cached departure cannot influence anything
//      downstream (flip-flops always prune: their departure is
//      arrival-independent). A frontier register whose departure changed
//      is activated, the cone is extended through its output, and the
//      restricted fixpoint reruns from scratch on the larger cone.
//
// Fallback to a full pass happens whenever patching cannot be proven
// byte-identical: clock-plan (ClockSpec) changes — which bypass the
// journal — any register-set or transparency-window change, journal
// disabled, a cone covering most of the design, or a non-converged cached
// fixpoint.
//
// Identity contract: after any sequence of update()/sync() calls the
// session's TimingReport, slack rows, and BorrowRecords are byte-identical
// to a fresh check_timing()/borrow_profile() on the current netlist —
// except TimingReport::iterations, which counts engine passes and is a
// path-dependent diagnostic (a cone rerun legitimately needs fewer
// iterations than a cold start). timing_identity() below canonicalizes a
// report for exact comparison under that contract. docs/timing.md has the
// full derivation.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/library/cell_library.hpp"
#include "src/netlist/netlist.hpp"
#include "src/netlist/traverse.hpp"
#include "src/timing/sta.hpp"

namespace tp {

/// Transparency window [r, f] of a register inside the cycle. Flip-flops
/// are zero-width windows at their sampling edge. Transparent-low latches
/// open at the fall and close at the next rise (f = rise + Tc).
struct TransparencyWindow {
  double r = 0;
  double f = 0;
};

/// The window of one register under the netlist's current clock spec.
/// Throws tp::Error when the register's phase has no waveform.
TransparencyWindow register_window(const Netlist& netlist, const Cell& cell);

/// The shared SMO arrival engine. A full run reproduces the historical
/// analyze() pass expression-for-expression (same floating-point operations
/// on the same operands, so results are bitwise identical); an update run
/// patches the cached state through the dirty cone as described above.
/// Most callers want IncrementalTimer; the engine is exposed for the
/// sta.hpp wrappers and find_min_period()'s probe reuse.
class SmoEngine {
 public:
  SmoEngine(const CellLibrary& library, const TimingOptions& options,
            bool track_borrow);
  SmoEngine(const SmoEngine&) = delete;
  SmoEngine& operator=(const SmoEngine&) = delete;

  /// Full analysis; replaces every cache. `setup_only` skips the
  /// earliest-arrival pass and hold checks (min-period probes only read
  /// converged/setup_ok). `reuse_structure` keeps the cached levelization,
  /// register list, and net loads — legal only when the netlist structure
  /// is unchanged since the previous run on the same netlist (the
  /// min-period search rewrites just the clock spec between probes).
  void run_full(const Netlist& netlist, bool setup_only = false,
                bool reuse_structure = false);

  /// Incremental re-analysis after a mutation wave; `touched` is the
  /// drained journal covering every edit since the previous run. Serves
  /// the no-op case from cache, patches the dirty cone when the guards
  /// allow, and falls back to run_full() otherwise.
  void run_update(const Netlist& netlist, const TouchedSet& touched);

  [[nodiscard]] const TimingReport& report() const { return report_; }

  /// Worst setup slack per register / worst hold slack per (register, data
  /// pin), in the deterministic order the full analysis emits them
  /// (register id ascending, pins ascending). Rebuilt lazily from the
  /// per-cell caches.
  [[nodiscard]] const std::vector<std::pair<CellId, double>>& setup_rows()
      const;
  [[nodiscard]] const std::vector<std::pair<CellId, double>>& hold_rows()
      const;

  /// Borrow records over the current fixpoint (requires track_borrow).
  [[nodiscard]] std::vector<BorrowRecord> borrow_records(
      const Netlist& netlist) const;

  /// True once a full (non-setup-only) run primed the caches.
  [[nodiscard]] bool primed() const { return primed_; }

  /// Cache behavior counters for StepTimes, tests, and bench/macro_flow.
  struct Stats {
    int full_runs = 0;         // run_full() calls (incl. fallbacks)
    int incremental_runs = 0;  // dirty-cone patches
    int skipped_runs = 0;      // no-edit passes served from cache
    double full_seconds = 0;
    double incremental_seconds = 0;
    long cone_cells = 0;   // comb cells recomputed across all patches
    long cone_rounds = 0;  // fixpoint rounds across all patches
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  [[nodiscard]] std::size_t class_of(const TransparencyWindow& w) const;
  void build_structure(const Netlist& netlist);
  void build_windows(const Netlist& netlist);
  void recompute_max_row(const Netlist& netlist, CellId id);
  void recompute_min_row(const Netlist& netlist, CellId id);
  [[nodiscard]] double register_departure(const Netlist& netlist,
                                          CellId id) const;
  bool update_register(const Netlist& netlist, CellId id);
  void compute_register_checks(const Netlist& netlist, CellId id);
  [[nodiscard]] double compute_po_slack(const Netlist& netlist,
                                        CellId po) const;
  void build_report(const Netlist& netlist);
  [[nodiscard]] bool guards_allow_patch(const Netlist& netlist,
                                        const TouchedSet& touched) const;
  bool run_cone(const Netlist& netlist, const TouchedSet& touched);

  const CellLibrary& library_;
  TimingOptions options_;
  bool track_borrow_ = false;
  bool primed_ = false;
  bool structure_ready_ = false;
  bool setup_only_ = false;

  // Cached netlist shape.
  std::size_t num_cells_ = 0;
  std::size_t num_nets_ = 0;
  double period_ = 0;
  ClockSpec cached_clocks_;
  Levelization lev_;
  std::vector<CellId> registers_;
  std::vector<CellId> data_inputs_;
  std::vector<std::uint8_t> is_reg_;  // per cell
  std::vector<double> load_;          // per net: net_load_ff
  std::vector<double> delay_max_;     // per cell: max delay at current load

  // Launch classes and windows.
  std::vector<std::pair<double, double>> classes_;
  std::vector<TransparencyWindow> windows_;  // per cell
  std::size_t pi_class_ = 0;

  // Arrival state, all indexed [class][net.value()].
  std::vector<std::vector<double>> arr_max_;
  std::vector<std::vector<double>> arr_min_;
  std::vector<std::vector<NetId>> pred_;  // track_borrow only
  std::vector<double> valid_;             // per cell: register departure

  // Check caches (kPosInf sentinel = "no row").
  std::vector<double> setup_cell_;              // per cell
  std::vector<std::vector<double>> hold_pins_;  // per cell, per input pin
  std::vector<double> po_slack_;                // per cell (kOutput)
  TimingReport report_;

  // Persistent dirty-cone scratch (zeroed between updates by walking the
  // collected lists, so updates stay O(cone), not O(netlist)).
  std::vector<std::uint8_t> in_cone_net_;
  std::vector<std::uint8_t> in_cone_cell_;
  std::vector<std::uint8_t> reg_active_;
  std::vector<std::uint8_t> reg_frontier_;
  std::vector<std::uint8_t> po_dirty_;
  std::vector<int> indeg_;
  std::vector<NetId> cone_nets_;
  std::vector<CellId> cone_cells_;
  std::vector<CellId> frontier_regs_;
  std::vector<CellId> active_regs_;
  std::vector<CellId> dirty_pos_;
  std::vector<NetId> work_;

  mutable bool rows_dirty_ = true;
  mutable std::vector<std::pair<CellId, double>> setup_rows_;
  mutable std::vector<std::pair<CellId, double>> hold_rows_;

  Stats stats_;
};

/// An incremental timing session following one netlist through a sequence
/// of transform stages, in the mold of analysis::AnalysisSession:
///
///   netlist.enable_journal();
///   IncrementalTimer timer(library, options);
///   report0 = timer.analyze(netlist);     // full, primes the cache
///   ... stage mutates netlist ...
///   report1 = timer.sync(netlist);        // drains the timer's own
///                                         // journal cursor, patches cone
///
/// The timer owns a JournalCursor, so it coexists with other journal
/// consumers (the flow's AnalysisSession) without starving them. With the
/// journal disabled, sync() degrades to a full pass per call — identical
/// results, none of the speedup.
class IncrementalTimer {
 public:
  explicit IncrementalTimer(const CellLibrary& library,
                            const TimingOptions& options = {},
                            bool track_borrow = false);

  /// Full analysis; re-primes the cache and fast-forwards the cursor.
  const TimingReport& analyze(const Netlist& netlist);

  /// Incremental re-analysis with an explicitly drained journal (callers
  /// that manage their own Netlist::take_touched calls).
  const TimingReport& update(const Netlist& netlist,
                             const TouchedSet& touched);

  /// Drains this session's journal cursor and patches. The usual entry
  /// point: every caller that mutated the netlist since the last
  /// analyze()/sync() gets a report identical to a fresh check_timing().
  const TimingReport& sync(const Netlist& netlist);

  [[nodiscard]] const TimingReport& report() const {
    return engine_.report();
  }
  [[nodiscard]] const std::vector<std::pair<CellId, double>>& setup_rows()
      const {
    return engine_.setup_rows();
  }
  [[nodiscard]] const std::vector<std::pair<CellId, double>>& hold_rows()
      const {
    return engine_.hold_rows();
  }
  /// Requires construction with track_borrow = true.
  [[nodiscard]] std::vector<BorrowRecord> borrow_records(
      const Netlist& netlist) const {
    return engine_.borrow_records(netlist);
  }
  [[nodiscard]] const SmoEngine::Stats& stats() const {
    return engine_.stats();
  }

 private:
  SmoEngine engine_;
  JournalCursor cursor_;
};

/// Structured min-period search result (replaces the old "hi + 1 means
/// infeasible" convention, which was indistinguishable from a legal period
/// one ps above the bound).
struct MinPeriodResult {
  bool feasible = false;      // setup passes somewhere in [lo, hi]
  std::int64_t period_ps = 0; // smallest passing period when feasible;
                              // the probed hi bound otherwise
  int probes = 0;             // probes spent by the search
  int fast_probes = 0;        // probes decided by the distance-row oracle
                              // without running the arrival fixpoint

  [[nodiscard]] bool ok() const { return feasible; }
};

/// Smallest period (binary search, ps resolution `step_ps`) at which setup
/// passes, scaling all phase windows proportionally. Probes are first
/// decided by a period-independent distance-row oracle (exact for
/// infeasible probes and for feasible probes with no time borrowing); only
/// inconclusive probes run the shared SmoEngine, which reuses the
/// levelization / register list / net loads across the whole search.
/// The oracle and the engine round identical sums differently (ulps), so
/// two searches through the two paths may settle on periods differing by
/// up to `step_ps` when a probe's worst slack sits within ~1e-6 ps of
/// zero; compare results with that tolerance, never exact equality.
MinPeriodResult find_min_period(const Netlist& netlist,
                                const CellLibrary& library,
                                std::int64_t lo_ps, std::int64_t hi_ps,
                                std::int64_t step_ps = 5,
                                const TimingOptions& options = {});

/// Canonical byte-exact serialization (hex floats) of a report / borrow
/// records, excluding TimingReport::iterations — the identity contract for
/// incremental-vs-full comparisons in tests and bench/macro_flow.
std::string timing_identity(const TimingReport& report);
std::string borrow_identity(const std::vector<BorrowRecord>& records);

}  // namespace tp
