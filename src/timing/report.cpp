#include "src/timing/report.hpp"

#include <sstream>

namespace tp {

std::string format_profile(const TimingProfile& profile,
                           int worst_endpoints) {
  std::ostringstream os;
  os << "worst endpoints (setup / hold, ps):\n";
  const int n = std::min<int>(worst_endpoints,
                              static_cast<int>(profile.endpoints.size()));
  for (int i = 0; i < n; ++i) {
    const EndpointSlack& e = profile.endpoints[static_cast<std::size_t>(i)];
    os << "  " << e.name << " [" << phase_name(e.phase) << "]  "
       << static_cast<long long>(e.setup_slack_ps) << " / "
       << static_cast<long long>(e.hold_slack_ps) << "\n";
  }
  os << "setup TNS " << static_cast<long long>(
      profile.total_negative_slack_ps)
     << " ps over " << profile.failing_endpoints << " endpoints\n";
  os << "slack histogram (bin " << profile.histogram.bin_width_ps
     << " ps, from " << profile.histogram.min_slack_ps << "):\n";
  for (std::size_t i = 0; i < profile.histogram.counts.size(); ++i) {
    const int count = profile.histogram.counts[i];
    os << "  "
       << static_cast<long long>(profile.histogram.min_slack_ps +
                                 static_cast<double>(i) *
                                     profile.histogram.bin_width_ps)
       << ": ";
    for (int j = 0; j < std::min(count, 60); ++j) os << '#';
    os << ' ' << count << "\n";
  }
  return os.str();
}

}  // namespace tp
