// A2: min-delay race detection.
//
// The structural C2 rule (rules_phase.cpp) flags any combinational path
// between latches whose transparency windows overlap; this analysis is its
// timing-aware refinement: a pair races only when the earliest possible
// data launched at the launch window's open can reach the capture latch
// before the overlapping capture window occurrence has closed (plus hold
// margin). The earliest arrivals come from timing::min_delay_profile() —
// one per launch class — and the capture windows from the rule context's
// traced check::WindowSet, unrolled onto [0, 2*Tc) so wrapping
// transparent-low windows compare directly against the STA's (open, close)
// launch classes. Identical-window pairs are the same-phase transparent
// chains the retimer creates by design and are exempt, matching the STA
// hold exemption.
#include <algorithm>
#include <cmath>

#include "src/analysis/analysis.hpp"
#include "src/util/strcat.hpp"

namespace tp::analysis {
namespace {

/// Converts a WindowSet into one [start, end) interval with end possibly
/// past the period (wrapped windows). False when empty or not contiguous
/// on the circle.
bool unroll_window(const check::WindowSet& w, std::int64_t period,
                   double* start, double* end) {
  if (w.n == 1) {
    *start = static_cast<double>(w.span[0][0]);
    *end = static_cast<double>(w.span[0][1]);
    return true;
  }
  if (w.n == 2) {
    // phase_high_window() emits wrapped windows as [0, a) + [b, Tc).
    for (int head = 0; head < 2; ++head) {
      const auto& lo_span = w.span[head];
      const auto& hi_span = w.span[1 - head];
      if (lo_span[0] == 0 && hi_span[1] == period) {
        *start = static_cast<double>(hi_span[0]);
        *end = static_cast<double>(lo_span[1] + period);
        return true;
      }
    }
  }
  return false;
}

}  // namespace

void rule_min_delay_race(check::RuleContext& ctx,
                         const AnalysisOptions& options) {
  const Netlist& nl = ctx.netlist();
  const std::int64_t period = nl.clocks().period_ps;
  if (period <= 0) return;
  const std::vector<CellId> registers = nl.registers();
  if (registers.empty()) return;
  // Untimeable registers (no waveform for their phase tag) are a
  // clock-legality problem the structural rules report; skip the analysis.
  for (const CellId id : registers) {
    if (nl.clocks().find(nl.cell(id).phase) == nullptr) return;
  }

  // Trace every register's transparency window up front and bail before
  // the min-delay STA pass unless some pair of *distinct* windows
  // overlaps at a cyclic alignment — the clean 3-phase and master-slave
  // schedules tile the period disjointly, so they never reach the
  // profile. (Launch classes are these same latch windows: the STA and
  // the rule context build both from the same waveforms.)
  struct RegWindow {
    CellId id;
    double open = 0;
    double close = 0;
    bool usable = false;
  };
  std::vector<RegWindow> windows;
  windows.reserve(registers.size());
  std::vector<std::pair<double, double>> distinct;
  for (const CellId id : registers) {
    RegWindow rw;
    rw.id = id;
    const check::WindowSet window = ctx.latch_window(id);
    rw.usable = !window.empty() &&
                unroll_window(window, period, &rw.open, &rw.close);
    if (rw.usable &&
        std::find(distinct.begin(), distinct.end(),
                  std::pair{rw.open, rw.close}) == distinct.end()) {
      distinct.emplace_back(rw.open, rw.close);
    }
    windows.push_back(rw);
  }
  bool any_overlap = false;
  for (const auto& [lo, lc] : distinct) {
    if (lc <= lo) continue;  // zero-width launch cannot race
    for (const auto& [co, cc] : distinct) {
      if (lo == co && lc == cc) continue;  // identical windows are exempt
      for (const double shift :
           {-static_cast<double>(period), 0.0,
            static_cast<double>(period)}) {
        if (std::max(lo, co + shift) < std::min(lc, cc + shift)) {
          any_overlap = true;
        }
      }
    }
  }
  if (!any_overlap) return;

  const CellLibrary& library = analysis_library(options);
  const MinDelayProfile prof =
      min_delay_profile(nl, library, options.timing);

  FindingBudget budget(ctx, check::RuleId::kMinDelayRace,
                       options.max_findings);
  for (const RegWindow& rw : windows) {
    if (!rw.usable) {
      continue;  // edge samplers and untraced latches cannot race-capture
    }
    const CellId id = rw.id;
    const Cell& cell = nl.cell(id);
    const double open = rw.open;
    const double close = rw.close;
    const double margin = library.params(cell.kind).hold_ps +
                          options.timing.hold_uncertainty_ps;
    for (std::size_t pin = 0; pin < cell.ins.size(); ++pin) {
      if (static_cast<int>(pin) == clock_pin(cell.kind)) continue;
      const NetId d = cell.ins[pin];
      for (std::size_t c = 0; c < prof.classes.size(); ++c) {
        const auto& launch = prof.classes[c];
        if (launch.close_ps <= launch.open_ps) {
          continue;  // zero-width launch (FF / PI): the STA hold check owns it
        }
        if (launch.open_ps == open && launch.close_ps == close) {
          continue;  // same-phase transparent chain, overlapping by design
        }
        if (!prof.reachable(c, d)) continue;
        const double arrival = prof.arrival_ps[c][d.value()];
        // Try the three cyclic alignments of the capture window against the
        // launch window; both live in [0, 2*Tc).
        double worst_close = 0;
        bool racing = false;
        for (const double shift :
             {-static_cast<double>(period), 0.0,
              static_cast<double>(period)}) {
          const double lo = std::max(launch.open_ps, open + shift);
          const double hi = std::min(launch.close_ps, close + shift);
          if (lo >= hi) continue;  // windows do not overlap here
          const double capture_close = close + shift;
          if (arrival + 1e-9 < capture_close + margin &&
              (!racing || capture_close > worst_close)) {
            racing = true;
            worst_close = capture_close;
          }
        }
        if (!racing) continue;

        // Witness: walk the min-delay back-pointers to the launch latch.
        const CellId launcher = prof.launch[c][d.value()];
        std::vector<std::string> path;
        NetId net = d;
        for (std::size_t step = 0; step <= nl.num_cells(); ++step) {
          const CellId driver = nl.net(net).driver;
          if (!driver.valid()) break;
          const Cell& dc = nl.cell(driver);
          if (is_register(dc.kind) || dc.kind == CellKind::kInput) break;
          path.push_back(dc.name);
          net = prof.pred[c][net.value()];
          if (!net.valid()) break;
        }
        std::reverse(path.begin(), path.end());
        std::vector<std::string> cells;
        if (launcher.valid()) cells.push_back(nl.cell(launcher).name);
        cells.insert(cells.end(), path.begin(), path.end());
        cells.push_back(cell.name);

        budget.emit(
            cat("min-delay race: data launched in window [",
                std::llround(launch.open_ps), ", ",
                std::llround(launch.close_ps), ") ps can reach '", cell.name,
                "' at t=", std::llround(arrival),
                " ps, before its overlapping transparency window closes at ",
                std::llround(worst_close), " ps (+",
                std::llround(margin), " ps hold margin)"),
            std::move(cells), {nl.net(d).name},
            "pad the path with min-delay buffers or separate the phase "
            "windows");
      }
    }
  }
  budget.finish();
}

}  // namespace tp::analysis
