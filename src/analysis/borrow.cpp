// A3: borrowing-chain analysis.
//
// timing::borrow_profile() walks the STA latest-arrival fixpoint and
// reports, per register, the capture-frame arrival, the borrow it implies
// beyond the window open, and the critical-path launching register. This
// analysis follows those upstream pointers while the launcher itself
// borrows, accumulating the chain's total borrow; a chain whose cumulative
// borrow exceeds the budget (default: one full phase segment) has silently
// spent a whole stage of the schedule and is one retiming slip away from a
// setup wall. Only the maximal chain end is reported — every suffix of an
// over-budget chain is over budget too. Chains of a single register are
// exempt: a lone latch's borrow is capped at its own window width, and
// exhausting it is a plain setup failure the STA signoff already reports,
// not the cross-stage accumulation this analysis exists to catch.
#include <algorithm>
#include <cmath>

#include "src/analysis/analysis.hpp"
#include "src/util/strcat.hpp"

namespace tp::analysis {

void rule_borrow_chain(check::RuleContext& ctx,
                       const AnalysisOptions& options) {
  const Netlist& nl = ctx.netlist();
  const std::int64_t period = nl.clocks().period_ps;
  if (period <= 0) return;
  const std::vector<CellId> registers = nl.registers();
  if (registers.empty()) return;
  bool any_latch = false;
  for (const CellId id : registers) {
    if (nl.clocks().find(nl.cell(id).phase) == nullptr) return;
    const CellKind kind = nl.cell(id).kind;
    any_latch = any_latch || kind == CellKind::kLatchH ||
                kind == CellKind::kLatchL || kind == CellKind::kLatchP;
  }
  // Flip-flops sample on an edge and cannot borrow; an all-FF netlist
  // (the FF baseline flow, or any pre-conversion checkpoint) never has a
  // chain, so skip the arrival fixpoint.
  if (!any_latch) return;

  const CellLibrary& library = analysis_library(options);
  const std::vector<BorrowRecord> records =
      borrow_profile(nl, library, options.timing);

  double budget_ps = options.borrow_budget_ps;
  if (budget_ps < 0) {
    const auto phases =
        std::max<std::size_t>(1, nl.clocks().phases.size());
    budget_ps = static_cast<double>(period) / static_cast<double>(phases);
  }

  std::vector<int> record_of(nl.num_cells(), -1);
  for (std::size_t i = 0; i < records.size(); ++i) {
    record_of[records[i].cell.value()] = static_cast<int>(i);
  }

  // Walk each borrowing register's upstream chain; collect cumulative
  // borrow. Chains can revisit a register through latch feedback loops —
  // the epoch mark stops the walk at the first repeat.
  struct Chain {
    double total_ps = 0;
    std::vector<std::string> cells;  // launch-to-capture order
    std::vector<double> borrows_ps;
  };
  std::vector<std::uint32_t> mark(nl.num_cells(), 0);
  std::uint32_t epoch = 0;
  const auto chain_of = [&](int start) {
    Chain chain;
    ++epoch;
    int at = start;
    while (at >= 0) {
      const BorrowRecord& rec = records[static_cast<std::size_t>(at)];
      if (mark[rec.cell.value()] == epoch) break;
      mark[rec.cell.value()] = epoch;
      chain.total_ps += rec.borrow_ps;
      chain.cells.push_back(nl.cell(rec.cell).name);
      chain.borrows_ps.push_back(rec.borrow_ps);
      if (!rec.upstream.valid()) break;
      const int up = record_of[rec.upstream.value()];
      if (up < 0 || records[static_cast<std::size_t>(up)].borrow_ps <= 0) {
        break;
      }
      at = up;
    }
    std::reverse(chain.cells.begin(), chain.cells.end());
    std::reverse(chain.borrows_ps.begin(), chain.borrows_ps.end());
    return chain;
  };

  // A register is a chain end unless an over-budget borrower continues the
  // chain downstream of it.
  std::vector<bool> continued(records.size(), false);
  std::vector<bool> over(records.size(), false);
  std::vector<Chain> chains(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].borrow_ps <= 0) continue;
    chains[i] = chain_of(static_cast<int>(i));
    over[i] = chains[i].cells.size() >= 2 &&
              chains[i].total_ps > budget_ps + 1e-6;
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!over[i] || !records[i].upstream.valid()) continue;
    const int up = record_of[records[i].upstream.value()];
    if (up >= 0) continued[static_cast<std::size_t>(up)] = true;
  }

  FindingBudget budget(ctx, check::RuleId::kBorrowChain,
                       options.max_findings);
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!over[i] || continued[i]) continue;
    const Chain& chain = chains[i];
    std::string per_latch;
    for (std::size_t j = 0; j < chain.borrows_ps.size(); ++j) {
      if (j != 0) per_latch += "+";
      per_latch += cat(std::llround(chain.borrows_ps[j]));
    }
    budget.emit(
        cat("time-borrowing chain through ", chain.cells.size(),
            " register(s) accumulates ", std::llround(chain.total_ps),
            " ps (", per_latch, "), over the ", std::llround(budget_ps),
            " ps budget"),
        chain.cells, {},
        "retime the chain, widen its phases, or raise borrow_budget_ps");
  }
  budget.finish();
}

}  // namespace tp::analysis
