// Clock/reset-domain inference and the domain-level lint rules (A4-A6).
//
// infer_domains() walks every sequential cell's clock pin backward through
// the clock network — buffers, inverters, ICG/DDCG gates, and kClkDiv2
// dividers — to a declared phase root, and its associated reset net (see
// Netlist::set_reset) backward through buffers/inverters to a declared
// ResetRoot. The result is one DomainLabel per register:
//
//   (clock_root, divide_ratio, phase_token, reset_root, reset_sense)
//
// All phases of one ClockSpec belong to a single clock family (p1/p2/p3
// are tokens of the same domain, not domains themselves); what separates
// clock domains is the *effective sampling period*: divide_ratio halves
// the rate per divider on the path, and a dual-edge FF doubles it back.
// Three rules consume the labels:
//
//   A4  cdc-unsync     — a register-graph data edge between different
//                        clock domains with no two-register synchronizer
//                        chain in the destination domain.
//   A5  cdc-reconverge — two synchronized crossings from one source
//                        register reconverge within a bounded
//                        combinational cone (the synchronizers can settle
//                        on different cycles).
//   A6  rdc-crossing   — a data edge from a register reset by one async
//                        root into a register reset by a different root
//                        that is released no later than the source's.
//
// AnalysisSession adds dirty-cone invalidation on top: transform stages
// drain the netlist mutation journal (Netlist::take_touched) into
// reanalyze(), which re-derives domain labels only inside the dirty
// fanout cone and skips the whole A1-A6 wave when nothing changed —
// byte-identical to a full run_analysis() by construction (and gated by
// tests). docs/analysis.md has the full contract.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/analysis.hpp"
#include "src/netlist/netlist.hpp"

namespace tp::analysis {

/// The inferred clock/reset provenance of one sequential cell.
struct DomainLabel {
  /// Clock side. `clocked` is false when the clock pin does not trace to
  /// a phase root (constant/data/floating clocks are owned by the
  /// structural rules, not by A4).
  bool clocked = false;
  NetId clock_root;            // phase root net
  Phase phase = Phase::kNone;  // phase token at the root
  bool inverted = false;       // odd number of kClkInv on the path
  int divide_ratio = 1;        // 2^(number of kClkDiv2 on the path)
  /// Effective sampling period in half-cycles of the root:
  /// divide_ratio * (dual-edge sampler ? 1 : 2). Two clocked registers
  /// are in the same clock domain iff this matches.
  int sample_period_x2 = 2;

  /// Reset side (invalid clock_root-style sentinel when the register has
  /// no declared reset association).
  NetId reset_root;
  bool reset_active_low = true;
  int reset_release = 0;

  [[nodiscard]] bool same_clock_domain(const DomainLabel& other) const {
    return clocked && other.clocked &&
           sample_period_x2 == other.sample_period_x2;
  }
  [[nodiscard]] bool has_reset() const { return reset_root.valid(); }
};

/// Domain labels for every live register, in cell-id order, plus the
/// support nets each label was derived from (the nets on the traced clock
/// and reset paths) — the invalidation key for AnalysisSession.
struct DomainTable {
  std::vector<CellId> regs;
  std::vector<DomainLabel> labels;             // parallel to regs
  std::vector<std::vector<NetId>> support;     // parallel to regs
  std::unordered_map<std::uint32_t, int> index;  // cell id -> row

  [[nodiscard]] const DomainLabel* label_of(CellId reg) const {
    const auto it = index.find(reg.value());
    return it == index.end() ? nullptr : &labels[it->second];
  }
};

/// Derives the label of every live register. Deterministic: rows are in
/// register id order and every walk is a fixed-order backward traversal.
DomainTable infer_domains(const Netlist& netlist);

/// Human-readable and JSON renderings of the domain table (lint_cli
/// --domains, the serve lint payload).
std::string domain_table_text(const Netlist& netlist,
                              const DomainTable& table);
std::string domain_table_json(const Netlist& netlist,
                              const DomainTable& table);

/// Compact {"registers":N,"clock_domains":N,"reset_domains":N} object —
/// the domain summary embedded in serve convert/lint payloads, where the
/// full per-register table would dominate the payload bytes.
std::string domain_summary_json(const DomainTable& table);

/// A4/A5/A6 entry points, mirroring rule_xprop & co. The overloads taking
/// a DomainTable let run_analysis() and AnalysisSession share one
/// inference pass; the two-argument forms infer a fresh table.
void rule_cdc_unsync(check::RuleContext& ctx, const AnalysisOptions& options);
void rule_cdc_unsync(check::RuleContext& ctx, const AnalysisOptions& options,
                     const DomainTable& table);
void rule_cdc_reconverge(check::RuleContext& ctx,
                         const AnalysisOptions& options);
void rule_cdc_reconverge(check::RuleContext& ctx,
                         const AnalysisOptions& options,
                         const DomainTable& table);
void rule_rdc_crossing(check::RuleContext& ctx,
                       const AnalysisOptions& options);
void rule_rdc_crossing(check::RuleContext& ctx,
                       const AnalysisOptions& options,
                       const DomainTable& table);

/// Incremental analysis driver. One session follows one netlist through a
/// sequence of transform stages:
///
///   netlist.enable_journal();
///   AnalysisSession session(options);
///   report0 = session.analyze(netlist);              // full, primes cache
///   ... stage mutates netlist ...
///   report1 = session.reanalyze(netlist, netlist.take_touched());
///
/// reanalyze() is byte-identical to run_analysis(netlist, options): when
/// the journal is empty and the clock/reset plan is unchanged the cached
/// report is returned outright; otherwise domain labels are re-derived
/// only for registers whose support intersects the dirty fanout cone of
/// the touched ids, and the A1-A6 wave reruns on top of the patched
/// table. A dirty cone covering most of the design falls back to a full
/// analyze() — incremental never costs more than full plus the cone walk.
class AnalysisSession {
 public:
  explicit AnalysisSession(AnalysisOptions options = {});

  /// Full analysis; replaces the cache.
  check::CheckReport analyze(const Netlist& netlist);

  /// Incremental re-analysis after a mutation wave. `touched` is the
  /// drained journal (Netlist::take_touched) covering every mutation
  /// since the previous analyze()/reanalyze() call.
  check::CheckReport reanalyze(const Netlist& netlist,
                               const TouchedSet& touched);

  /// Cache behavior counters for tests and the bench harness.
  struct Stats {
    int full_runs = 0;         // analyze() or fallback-to-full
    int incremental_runs = 0;  // label-patching reanalyze() passes
    int skipped_runs = 0;      // no-edit passes served from cache
    long labels_reused = 0;
    long labels_recomputed = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// The current (cached) domain table; valid after the first analyze().
  [[nodiscard]] const DomainTable& domains() const { return table_; }

  [[nodiscard]] const AnalysisOptions& options() const { return options_; }

 private:
  [[nodiscard]] bool plan_changed(const Netlist& netlist) const;
  check::CheckReport run_wave(const Netlist& netlist);

  AnalysisOptions options_;
  bool primed_ = false;
  DomainTable table_;
  check::CheckReport cached_report_;
  ClockSpec cached_clocks_;
  std::vector<ResetRoot> cached_resets_;
  std::size_t cached_reset_assignments_ = 0;
  std::string cached_name_;
  Stats stats_;
};

}  // namespace tp::analysis
