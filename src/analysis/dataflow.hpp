// Generic worklist dataflow over the netlist graph.
//
// The engine fixes the iteration discipline — a deterministic FIFO worklist
// seeded sources-first then in combinational topological order (reversed
// for backward runs), re-queueing dependents on change — while
// the client owns the value storage and the transfer functions. Forward
// transfers read a cell's input nets and write its output net; backward
// transfers read the output net and write toward the inputs. Any monotone
// transfer over a finite lattice reaches a fixpoint; the result is
// independent of iteration order, and the fixed discipline makes the
// intermediate trajectory (and thus any recorded witnesses) reproducible.
//
// The {0,1,X} lattice and the abstract gate evaluator used by the A1
// X-propagation analysis live here too, so tests can exercise them without
// the full analysis.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>

#include "src/netlist/netlist.hpp"

namespace tp::analysis {

enum class Direction { kForward, kBackward };

/// Runs `transfer` over every live cell to a fixpoint. transfer(cell) must
/// be monotone over a finite lattice and return true when it changed any
/// value it writes; the engine then re-queues the dependent cells (fanout
/// cells for kForward, fan-in drivers for kBackward). Returns the number
/// of transfer invocations. `max_steps` (0 = uncapped) guards against
/// non-monotone transfers; exceeding it throws tp::Error.
std::size_t run_to_fixpoint(const Netlist& netlist, Direction direction,
                            const std::function<bool(CellId)>& transfer,
                            std::size_t max_steps = 0);

/// Abstract value lattice for {0,1,X} simulation, ordered
///
///   kBottom  <  { kZero, kOne }  <  kVaries  <  kUnknown
///
/// kBottom: no value computed yet. kZero/kOne: constant across all
/// reachable states. kVaries: defined, 0 or 1 depending on cycle/state.
/// kUnknown: may be undefined (X).
enum class Ternary : std::uint8_t {
  kBottom = 0,
  kZero,
  kOne,
  kVaries,
  kUnknown,
};

/// Least upper bound in the lattice above.
Ternary ternary_join(Ternary a, Ternary b);

[[nodiscard]] constexpr bool ternary_may_be_x(Ternary v) {
  return v == Ternary::kUnknown;
}

std::string_view ternary_name(Ternary v);

/// Abstract evaluation of a combinational kind over abstract operands:
/// enumerates the concrete {0,1} choices each operand admits, expanding X
/// operands to both values; when some X choice changes the output the
/// result is kUnknown, otherwise the constant every expansion agrees on,
/// or kVaries. Controlling constants therefore block X exactly as in
/// 3-valued simulation: AND(0, X) = 0, MUX(a, a, X) = a. Any kBottom
/// operand yields kBottom.
Ternary abstract_eval(CellKind kind, std::span<const Ternary> ins);

}  // namespace tp::analysis
