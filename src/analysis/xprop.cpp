// A1: X-propagation / reset reachability.
//
// Abstract {0,1,X} simulation of the post-reset machine on the forward
// worklist engine. Registers start at their reset value (or X when named in
// AnalysisOptions::x_sources), primary inputs carry defined-but-varying
// values (or X when so named), floating nets are X. Latch transparency and
// edge sampling both fold the data value into the register state; an X on a
// traced clock or gate pin makes the sampled state X (unknown whether the
// element captured). The fixpoint is monotone over the Ternary lattice, so
// one pass per lattice climb bounds the work.
//
// Witnesses: a BFS over the X support graph (edges from X-valued fan-in
// nets into X-valued outputs) gives a shortest cell path from some X source
// to each flagged register / primary output.
#include <algorithm>
#include <queue>
#include <unordered_set>

#include "src/analysis/analysis.hpp"
#include "src/analysis/dataflow.hpp"
#include "src/util/strcat.hpp"

namespace tp::analysis {
namespace {

struct XpropState {
  std::vector<Ternary> net;    // per-net abstract value
  std::vector<Ternary> state;  // per-cell register / ICG-latch state
};

/// Abstract register update: what the element's state becomes given the
/// data value `d`, the clock/gate value `g`, and the current state.
Ternary sequential_join(CellKind kind, Ternary current, Ternary d,
                        Ternary g) {
  if (g == Ternary::kBottom) return current;  // clock value not known yet
  if (g == Ternary::kUnknown) return Ternary::kUnknown;
  const bool gate_can_open = [&] {
    switch (kind) {
      case CellKind::kLatchL:  // transparent while the gate is low
        return g != Ternary::kOne;
      default:  // rising-edge samplers and transparent-high latches
        return g != Ternary::kZero;
    }
  }();
  if (!gate_can_open) return current;  // parked clock: state holds
  if (d == Ternary::kBottom) return current;
  return ternary_join(current, d);
}

}  // namespace

void rule_xprop(check::RuleContext& ctx, const AnalysisOptions& options) {
  const Netlist& nl = ctx.netlist();
  const std::unordered_set<std::string_view> x_sources(
      options.x_sources.begin(), options.x_sources.end());

  // X values enter the abstract machine only through the seeds below —
  // every register has a reset value and every input is defined-but-
  // varying. No seed, no X, no findings: skip the fixpoint entirely.
  if (x_sources.empty()) {
    bool floating = false;
    for (std::uint32_t n = 0; n < nl.num_nets() && !floating; ++n) {
      const Net& net = nl.net(NetId{n});
      floating = !net.driver.valid() && !net.fanouts.empty();
    }
    if (!floating) return;
  }

  XpropState s;
  s.net.assign(nl.num_nets(), Ternary::kBottom);
  s.state.assign(nl.num_cells(), Ternary::kBottom);

  // Post-reset register state seeds.
  for (const CellId id : nl.registers()) {
    const Cell& cell = nl.cell(id);
    s.state[id.value()] = x_sources.contains(cell.name) ? Ternary::kUnknown
                          : cell.init                   ? Ternary::kOne
                                                        : Ternary::kZero;
  }
  // Floating nets (live fanout, no driver) carry X.
  for (std::uint32_t n = 0; n < nl.num_nets(); ++n) {
    const Net& net = nl.net(NetId{n});
    if (net.driver.valid() || net.fanouts.empty()) continue;
    s.net[n] = Ternary::kUnknown;
  }

  const auto transfer = [&](CellId id) -> bool {
    const Cell& cell = nl.cell(id);
    Ternary out = Ternary::kBottom;
    switch (cell.kind) {
      case CellKind::kOutput:
        return false;  // no output net to write
      case CellKind::kInput:
        out = x_sources.contains(cell.name) ? Ternary::kUnknown
                                            : Ternary::kVaries;
        break;
      case CellKind::kConst0:
        out = Ternary::kZero;
        break;
      case CellKind::kConst1:
        out = Ternary::kOne;
        break;
      case CellKind::kDff:
      case CellKind::kDffDet:
      case CellKind::kLatchH:
      case CellKind::kLatchL:
      case CellKind::kLatchP: {
        const Ternary d = s.net[cell.ins[0].value()];
        const Ternary g = s.net[cell.ins[1].value()];
        s.state[id.value()] =
            sequential_join(cell.kind, s.state[id.value()], d, g);
        out = s.state[id.value()];
        break;
      }
      case CellKind::kDffEn: {
        const Ternary d = s.net[cell.ins[0].value()];
        const Ternary en = s.net[cell.ins[1].value()];
        const Ternary ck = s.net[cell.ins[2].value()];
        // EN == 0 holds; EN == X cannot inject values outside {state, D},
        // so the sampling join already covers it.
        const Ternary gate =
            en == Ternary::kZero ? Ternary::kZero : ck;
        s.state[id.value()] =
            sequential_join(cell.kind, s.state[id.value()], d, gate);
        out = s.state[id.value()];
        break;
      }
      case CellKind::kIcg:
      case CellKind::kIcgM1: {
        // The internal latch re-captures EN every cycle; its state set is
        // the EN value set, so GCLK = EN & CK abstractly.
        const Ternary en = s.net[cell.ins[0].value()];
        const Ternary ck = s.net[cell.ins[1].value()];
        if (en == Ternary::kBottom || ck == Ternary::kBottom) {
          out = Ternary::kBottom;
        } else {
          const Ternary ins2[] = {en, ck};
          out = abstract_eval(CellKind::kAnd2, ins2);
        }
        break;
      }
      case CellKind::kClkDiv2: {
        // Toggle state alternates 0/1 whenever the input clock is defined;
        // an X on the clock poisons the state permanently.
        const Ternary ck = s.net[cell.ins[0].value()];
        out = ck == Ternary::kBottom    ? Ternary::kBottom
              : ck == Ternary::kUnknown ? Ternary::kUnknown
                                        : Ternary::kVaries;
        break;
      }
      default: {  // stateless gates incl. kIcgNoLatch / clock buffers
        Ternary ins[3] = {};
        for (std::size_t i = 0; i < cell.ins.size(); ++i) {
          ins[i] = s.net[cell.ins[i].value()];
        }
        out = abstract_eval(
            cell.kind, std::span<const Ternary>(ins, cell.ins.size()));
        break;
      }
    }
    if (!cell.out.valid()) return false;
    const Ternary joined = ternary_join(s.net[cell.out.value()], out);
    if (joined == s.net[cell.out.value()]) return false;
    s.net[cell.out.value()] = joined;
    return true;
  };
  // Each net climbs the lattice at most 3 times and re-queues its fanout,
  // so total pops stay well under cells * (3 * max_pins + 1).
  run_to_fixpoint(nl, Direction::kForward, transfer,
                  /*max_steps=*/(nl.num_cells() + 1) * 16);

  // Collect endpoints: registers whose state is X, POs whose input is X.
  std::vector<CellId> x_regs;
  std::vector<CellId> x_outs;
  for (const CellId id : nl.registers()) {
    if (s.state[id.value()] == Ternary::kUnknown) x_regs.push_back(id);
  }
  for (const CellId id : nl.outputs()) {
    const Cell& cell = nl.cell(id);
    if (!cell.alive) continue;
    if (s.net[cell.ins[0].value()] == Ternary::kUnknown) {
      x_outs.push_back(id);
    }
  }
  if (x_regs.empty() && x_outs.empty()) return;

  // Shortest witness paths: BFS over nets whose value is X, edges through
  // cells whose X output is fed by an X input. The sources are exactly the
  // seeds that introduced X: named inputs, X-reset registers, and floating
  // nets (explicit, so X feedback loops still have a source).
  constexpr std::uint32_t kUnvisited = 0xffffffffU;
  std::vector<std::uint32_t> parent(nl.num_nets(), kUnvisited);
  std::vector<std::uint32_t> dist(nl.num_nets(), kUnvisited);
  std::queue<std::uint32_t> bfs;
  const auto is_x_net = [&](NetId n) {
    return n.valid() && s.net[n.value()] == Ternary::kUnknown;
  };
  const auto seed_bfs = [&](NetId n) {
    if (!is_x_net(n) || dist[n.value()] != kUnvisited) return;
    dist[n.value()] = 0;
    parent[n.value()] = n.value();  // self-parent marks a source
    bfs.push(n.value());
  };
  for (std::uint32_t n = 0; n < nl.num_nets(); ++n) {
    const Net& net = nl.net(NetId{n});
    if (!net.driver.valid() && !net.fanouts.empty()) seed_bfs(NetId{n});
  }
  for (std::uint32_t c = 0; c < nl.num_cells(); ++c) {
    const Cell& cell = nl.cell(CellId{c});
    if (!cell.alive || !cell.out.valid()) continue;
    if ((cell.kind == CellKind::kInput || is_register(cell.kind)) &&
        x_sources.contains(cell.name)) {
      seed_bfs(cell.out);
    }
  }
  while (!bfs.empty()) {
    const std::uint32_t at = bfs.front();
    bfs.pop();
    for (const PinRef& ref : nl.net(NetId{at}).fanouts) {
      const Cell& cell = nl.cell(ref.cell);
      if (!cell.alive || !cell.out.valid()) continue;
      const std::uint32_t out = cell.out.value();
      if (s.net[out] != Ternary::kUnknown || dist[out] != kUnvisited) {
        continue;
      }
      dist[out] = dist[at] + 1;
      parent[out] = at;
      bfs.push(out);
    }
  }

  // Path of cell names from the X source driving `net` to `net`'s driver.
  const auto witness = [&](NetId net) {
    std::vector<std::string> path;
    std::uint32_t at = net.value();
    while (at != kUnvisited) {
      const CellId driver = nl.net(NetId{at}).driver;
      if (driver.valid()) path.push_back(nl.cell(driver).name);
      if (parent[at] == at) break;
      at = parent[at];
    }
    std::reverse(path.begin(), path.end());
    return path;
  };
  const auto nearest_x_in = [&](const Cell& cell) {
    NetId best;
    for (const NetId in : cell.ins) {
      if (!is_x_net(in) || dist[in.value()] == kUnvisited) continue;
      if (!best.valid() || dist[in.value()] < dist[best.value()]) best = in;
    }
    return best;
  };

  FindingBudget budget(ctx, check::RuleId::kXProp, options.max_findings);
  for (const CellId id : x_regs) {
    const Cell& cell = nl.cell(id);
    const NetId via = nearest_x_in(cell);
    std::vector<std::string> path;
    if (via.valid()) path = witness(via);
    path.push_back(cell.name);
    budget.emit(
        cat("post-reset X reaches register '", cell.name, "'",
            via.valid() ? cat(" through ", dist[via.value()] + 1,
                              " cell(s) (shortest witness)")
                        : std::string(" at reset")),
        std::move(path), via.valid() ? std::vector<std::string>{nl.net(via).name}
                                     : std::vector<std::string>{},
        "reset the source register or name it in x_sources/waivers");
  }
  for (const CellId id : x_outs) {
    const Cell& cell = nl.cell(id);
    const NetId via = nearest_x_in(cell);
    std::vector<std::string> path;
    if (via.valid()) path = witness(via);
    path.push_back(cell.name);
    budget.emit(
        cat("post-reset X reaches primary output '", cell.name, "'",
            via.valid() ? cat(" through ", dist[via.value()] + 1,
                              " cell(s) (shortest witness)")
                        : std::string()),
        std::move(path), via.valid() ? std::vector<std::string>{nl.net(via).name}
                                     : std::vector<std::string>{},
        "drive the output cone from reset state or waive the endpoint");
  }
  budget.finish();
}

}  // namespace tp::analysis
