// Phase-aware dataflow analyses (the A1/A2/A3 rules of the lint registry).
//
// Three analyses built on the worklist framework (dataflow.hpp) and the
// timing profiles (src/timing/sta.hpp):
//
//   A1  x-propagation   — abstract {0,1,X} simulation from the post-reset
//                         state through latch transparency windows; flags
//                         every register and primary output an X can reach,
//                         with a shortest witness path (BFS over the X
//                         support graph).
//   A2  min-delay-race  — launch/capture latch pairs whose transparency
//                         windows overlap and whose min path delay cannot
//                         guarantee the capture window has closed: the
//                         race-through paths a cycle-accurate simulator can
//                         never exhibit.
//   A3  borrow-chain    — walks the STA latest-arrival fixpoint upstream to
//                         accumulate per-chain time borrowing and flags
//                         chains borrowing past a budget (default one full
//                         phase segment).
//
// Three more rules — A4 cdc-unsync, A5 cdc-reconverge, A6 rdc-crossing —
// consume the clock/reset-domain labels of src/analysis/domains.hpp and
// dispatch from the same run_analysis() entry point; domains.hpp also
// hosts the incremental AnalysisSession.
//
// The rules live in the src/check/ registry (diagnostics, waivers, JSON
// reports, per-stage blame all apply), but run_checks() cannot evaluate
// them — run_analysis() here is their entry point. run_flow() merges both
// passes when FlowOptions::check_analysis is set; docs/analysis.md has the
// lattice and witness-path details.
#pragma once

#include <string>
#include <vector>

#include "src/check/checker.hpp"
#include "src/check/rules.hpp"
#include "src/library/cell_library.hpp"
#include "src/timing/sta.hpp"

namespace tp::analysis {

struct AnalysisOptions {
  /// Shared lint knobs: disabled rules and waivers apply to A1/A2/A3 the
  /// same way run_checks() applies them to the structural rules.
  check::CheckOptions check;
  /// Timing model for A2/A3; nullptr uses CellLibrary::nominal_28nm().
  const CellLibrary* library = nullptr;
  TimingOptions timing;
  /// A3 budget on cumulative chain borrow; negative = one full phase
  /// segment (clock period / number of phases).
  double borrow_budget_ps = -1.0;
  /// Extra X sources for A1: names of primary inputs carrying X or of
  /// registers whose post-reset state is unknown. Floating nets are X
  /// sources regardless.
  std::vector<std::string> x_sources;
  /// Per-rule cap on emitted diagnostics; excess findings are summarized
  /// in one closing diagnostic rather than dropped silently.
  int max_findings = 64;
};

/// Runs the three dataflow analyses on `netlist` (never mutated) and
/// returns their findings with waivers and severity counts applied — the
/// analysis twin of check::run_checks(); merge the two reports via
/// CheckReport::merge().
check::CheckReport run_analysis(const Netlist& netlist,
                                const AnalysisOptions& options = {});

/// Library used by A2/A3: options.library or the shared nominal-28nm one.
const CellLibrary& analysis_library(const AnalysisOptions& options);

/// Emission guard enforcing AnalysisOptions::max_findings for one rule:
/// forwards the first N diagnostics to the context, then counts the rest
/// and reports the suppressed total from finish() — truncation is never
/// silent.
class FindingBudget {
 public:
  FindingBudget(check::RuleContext& ctx, check::RuleId rule, int cap)
      : ctx_(ctx), rule_(rule), cap_(cap) {}

  void emit(std::string message, std::vector<std::string> cells = {},
            std::vector<std::string> nets = {}, std::string hint = {});
  /// Emits the "N finding(s) suppressed" summary when the cap was hit.
  void finish();

 private:
  check::RuleContext& ctx_;
  check::RuleId rule_;
  int cap_ = 0;
  int emitted_ = 0;
  int suppressed_ = 0;
};

// Individual analysis entry points (xprop.cpp, race.cpp, borrow.cpp);
// run_analysis() dispatches them minus options.check.disabled. Each emits
// into `ctx` under the registry severity of its rule.
void rule_xprop(check::RuleContext& ctx, const AnalysisOptions& options);
void rule_min_delay_race(check::RuleContext& ctx,
                         const AnalysisOptions& options);
void rule_borrow_chain(check::RuleContext& ctx,
                       const AnalysisOptions& options);

}  // namespace tp::analysis
