#include "src/analysis/dataflow.hpp"

#include <algorithm>
#include <array>
#include <deque>

#include "src/netlist/traverse.hpp"
#include "src/util/log.hpp"

namespace tp::analysis {

std::size_t run_to_fixpoint(const Netlist& netlist, Direction direction,
                            const std::function<bool(CellId)>& transfer,
                            std::size_t max_steps) {
  const std::size_t n = netlist.num_cells();
  std::vector<std::uint8_t> queued(n, 0);
  std::deque<std::uint32_t> worklist;
  const auto push = [&](CellId id) {
    if (queued[id.value()] != 0) return;
    queued[id.value()] = 1;
    worklist.push_back(id.value());
  };
  // Seed sources first (ascending), then the combinational cells in
  // topological order: acyclic value flow then converges in one pass per
  // lattice climb, and the order is a pure function of the netlist, so
  // runs stay reproducible. Backward runs seed the exact reverse.
  std::vector<std::uint32_t> seeds;
  seeds.reserve(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    const Cell& cell = netlist.cell(CellId{id});
    if (cell.alive && !is_combinational(cell.kind)) seeds.push_back(id);
  }
  for (const CellId id : levelize(netlist).comb_order) {
    seeds.push_back(id.value());
  }
  if (direction == Direction::kBackward) {
    std::reverse(seeds.begin(), seeds.end());
  }
  for (const std::uint32_t id : seeds) push(CellId{id});

  std::size_t steps = 0;
  while (!worklist.empty()) {
    const CellId id{worklist.front()};
    worklist.pop_front();
    queued[id.value()] = 0;
    ++steps;
    require(max_steps == 0 || steps <= max_steps,
            "dataflow: fixpoint exceeded max_steps (non-monotone transfer?)");
    if (!transfer(id)) continue;
    const Cell& cell = netlist.cell(id);
    if (direction == Direction::kForward) {
      if (!cell.out.valid()) continue;
      for (const PinRef& ref : netlist.net(cell.out).fanouts) {
        if (netlist.cell(ref.cell).alive) push(ref.cell);
      }
    } else {
      for (const NetId in : cell.ins) {
        const CellId driver = netlist.net(in).driver;
        if (driver.valid() && netlist.cell(driver).alive) push(driver);
      }
    }
  }
  return steps;
}

Ternary ternary_join(Ternary a, Ternary b) {
  if (a == b) return a;
  if (a == Ternary::kBottom) return b;
  if (b == Ternary::kBottom) return a;
  if (a == Ternary::kUnknown || b == Ternary::kUnknown) {
    return Ternary::kUnknown;
  }
  return Ternary::kVaries;  // {0} join {1}, or anything join kVaries
}

std::string_view ternary_name(Ternary v) {
  switch (v) {
    case Ternary::kBottom: return "bottom";
    case Ternary::kZero: return "0";
    case Ternary::kOne: return "1";
    case Ternary::kVaries: return "varies";
    case Ternary::kUnknown: return "X";
  }
  return "?";
}

Ternary abstract_eval(CellKind kind, std::span<const Ternary> ins) {
  constexpr std::size_t kMaxIns = 3;
  require(is_combinational(kind) && ins.size() <= kMaxIns,
          "abstract_eval: not a combinational kind");
  // Concrete candidate values per operand; X operands expand to both.
  std::array<std::array<bool, 2>, kMaxIns> candidates{};
  std::array<std::size_t, kMaxIns> counts{};
  std::array<bool, kMaxIns> is_x{};
  for (std::size_t i = 0; i < ins.size(); ++i) {
    switch (ins[i]) {
      case Ternary::kBottom: return Ternary::kBottom;
      case Ternary::kZero: candidates[i] = {false}; counts[i] = 1; break;
      case Ternary::kOne: candidates[i] = {true}; counts[i] = 1; break;
      case Ternary::kVaries:
        candidates[i] = {false, true};
        counts[i] = 2;
        break;
      case Ternary::kUnknown:
        candidates[i] = {false, true};
        counts[i] = 2;
        is_x[i] = true;
        break;
    }
  }
  bool saw0 = false;
  bool saw1 = false;
  bool x_influences = false;
  std::array<bool, kMaxIns> value{};
  // Outer loop: choices for the non-X operands. Inner sweep: both values of
  // every X operand — if the output is not constant over the sweep for some
  // outer choice, the X reaches the output.
  const auto outer = [&](auto&& self, std::size_t i) -> void {
    if (i == ins.size()) {
      bool first = true;
      bool ref = false;
      const auto sweep = [&](auto&& sweep_self, std::size_t j) -> void {
        if (j == ins.size()) {
          const bool out = eval_comb(
              kind, std::span<const bool>(value.data(), ins.size()));
          if (out) {
            saw1 = true;
          } else {
            saw0 = true;
          }
          if (first) {
            first = false;
            ref = out;
          } else if (out != ref) {
            x_influences = true;
          }
          return;
        }
        if (!is_x[j]) {
          sweep_self(sweep_self, j + 1);
          return;
        }
        for (std::size_t k = 0; k < 2; ++k) {
          value[j] = k == 1;
          sweep_self(sweep_self, j + 1);
        }
      };
      sweep(sweep, 0);
      return;
    }
    if (is_x[i]) {
      self(self, i + 1);
      return;
    }
    for (std::size_t k = 0; k < counts[i]; ++k) {
      value[i] = candidates[i][k];
      self(self, i + 1);
    }
  };
  outer(outer, 0);
  if (x_influences) return Ternary::kUnknown;
  if (saw0 && saw1) return Ternary::kVaries;
  return saw0 ? Ternary::kZero : Ternary::kOne;
}

}  // namespace tp::analysis
