#include "src/analysis/domains.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "src/netlist/traverse.hpp"
#include "src/util/json.hpp"
#include "src/util/strcat.hpp"

namespace tp::analysis {
namespace {

// Clock paths are shallow trees (root -> ICGs -> buffers); the cap only
// guards against malformed clock-network loops.
constexpr int kMaxWalkSteps = 1024;
constexpr int kMaxDivideRatio = 1 << 20;
// A5: how many combinational levels downstream of a synchronizer the
// reconvergence search follows.
constexpr int kReconvergeDepth = 8;

struct ClockWalk {
  bool found = false;
  NetId root;
  Phase phase = Phase::kNone;
  bool inverted = false;
  int divide_ratio = 1;
};

/// Backward walk from a clock pin to a phase root. Mirrors the kind
/// dispatch of check::RuleContext::clock_trace (clock buffers pass,
/// inverters flip, ICGs follow their clock input, dividers halve the rate
/// without inverting); anything else ends the walk unresolved. Every net
/// stepped through lands in `support`.
ClockWalk trace_clock(const Netlist& netlist, NetId start,
                      std::vector<NetId>* support) {
  ClockWalk walk;
  NetId at = start;
  bool inverted = false;
  int ratio = 1;
  for (int step = 0; step < kMaxWalkSteps; ++step) {
    support->push_back(at);
    for (const PhaseWaveform& wave : netlist.clocks().phases) {
      if (wave.root == at) {
        walk.found = true;
        walk.root = at;
        walk.phase = wave.phase;
        walk.inverted = inverted;
        walk.divide_ratio = ratio;
        return walk;
      }
    }
    const CellId driver = netlist.net(at).driver;
    if (!driver.valid()) return walk;
    const Cell& cell = netlist.cell(driver);
    switch (cell.kind) {
      case CellKind::kClkBuf:
        at = cell.ins[0];
        break;
      case CellKind::kClkInv:
        inverted = !inverted;
        at = cell.ins[0];
        break;
      case CellKind::kIcg:
      case CellKind::kIcgM1:
      case CellKind::kIcgNoLatch:
        at = cell.ins[1];
        break;
      case CellKind::kClkDiv2:
        if (ratio < kMaxDivideRatio) ratio *= 2;
        at = cell.ins[0];
        break;
      default:
        return walk;  // constant- or data-driven clock: not A4's business
    }
  }
  return walk;
}

/// Backward walk from a register's associated reset net to a declared
/// ResetRoot, through plain/clock buffers and inverters (inverters flip
/// the effective sense).
void trace_reset(const Netlist& netlist, NetId start, DomainLabel* label,
                 std::vector<NetId>* support) {
  NetId at = start;
  bool flipped = false;
  for (int step = 0; step < kMaxWalkSteps; ++step) {
    support->push_back(at);
    for (const ResetRoot& root : netlist.reset_roots()) {
      if (root.net == at) {
        label->reset_root = at;
        label->reset_active_low = root.active_low != flipped;
        label->reset_release = root.release_order;
        return;
      }
    }
    const CellId driver = netlist.net(at).driver;
    if (!driver.valid()) return;
    const Cell& cell = netlist.cell(driver);
    switch (cell.kind) {
      case CellKind::kBuf:
      case CellKind::kClkBuf:
        at = cell.ins[0];
        break;
      case CellKind::kInv:
      case CellKind::kClkInv:
        flipped = !flipped;
        at = cell.ins[0];
        break;
      default:
        return;
    }
  }
}

DomainLabel infer_label(const Netlist& netlist, CellId reg,
                        std::vector<NetId>* support) {
  const Cell& cell = netlist.cell(reg);
  DomainLabel label;
  const ClockWalk walk =
      trace_clock(netlist, cell.ins[clock_pin(cell.kind)], support);
  if (walk.found) {
    label.clocked = true;
    label.clock_root = walk.root;
    label.phase = walk.phase;
    label.inverted = walk.inverted;
    label.divide_ratio = walk.divide_ratio;
    label.sample_period_x2 =
        walk.divide_ratio * (cell.kind == CellKind::kDffDet ? 1 : 2);
  }
  const NetId reset = netlist.reset_of(reg);
  if (reset.valid()) trace_reset(netlist, reset, &label, support);
  return label;
}

std::string describe_clock(const Netlist& netlist, const DomainLabel& label) {
  if (!label.clocked) return "unclocked";
  std::string out = cat("root '", netlist.net(label.clock_root).name,
                        "' phase ", phase_name(label.phase));
  if (label.divide_ratio != 1) out += cat(" /", label.divide_ratio);
  if (label.inverted) out += " inverted";
  if (label.sample_period_x2 == label.divide_ratio) out += " dual-edge";
  return out;
}

/// True when edge s -> d is an A4-sanctioned synchronized crossing: d's
/// data pin is wired straight to s's output (no combinational logic that
/// could glitch mid-metastability) and a second register in d's domain is
/// wired straight to d — the canonical two-register synchronizer chain.
bool synchronized_crossing(const Netlist& netlist, const DomainTable& table,
                           CellId src, CellId dst) {
  const Cell& dst_cell = netlist.cell(dst);
  if (netlist.net(dst_cell.ins[0]).driver != src) return false;
  const DomainLabel* dst_label = table.label_of(dst);
  if (dst_label == nullptr) return false;
  for (const PinRef& ref : netlist.net(dst_cell.out).fanouts) {
    if (ref.pin != 0) continue;
    const Cell& next = netlist.cell(ref.cell);
    if (!next.alive || !is_register(next.kind)) continue;
    const DomainLabel* next_label = table.label_of(ref.cell);
    if (next_label != nullptr && next_label->same_clock_domain(*dst_label)) {
      return true;
    }
  }
  return false;
}

/// Combinational cells reachable from `net` within `depth` levels.
std::set<std::uint32_t> comb_cone(const Netlist& netlist, NetId net,
                                  int depth) {
  std::set<std::uint32_t> cone;
  std::vector<std::pair<NetId, int>> frontier{{net, 0}};
  while (!frontier.empty()) {
    const auto [at, level] = frontier.back();
    frontier.pop_back();
    if (level >= depth) continue;
    for (const PinRef& ref : netlist.net(at).fanouts) {
      const Cell& cell = netlist.cell(ref.cell);
      if (!cell.alive || !is_combinational(cell.kind)) continue;
      if (!cone.insert(ref.cell.value()).second) continue;
      if (cell.out.valid()) frontier.push_back({cell.out, level + 1});
    }
  }
  return cone;
}

}  // namespace

DomainTable infer_domains(const Netlist& netlist) {
  DomainTable table;
  for (const CellId reg : netlist.registers()) {
    std::vector<NetId> support;
    DomainLabel label = infer_label(netlist, reg, &support);
    table.index.emplace(reg.value(),
                        static_cast<int>(table.regs.size()));
    table.regs.push_back(reg);
    table.labels.push_back(label);
    table.support.push_back(std::move(support));
  }
  return table;
}

std::string domain_table_text(const Netlist& netlist,
                              const DomainTable& table) {
  std::string out = cat("domain table for ", netlist.name(), ": ",
                        table.regs.size(), " register(s)\n");
  for (std::size_t i = 0; i < table.regs.size(); ++i) {
    const DomainLabel& label = table.labels[i];
    out += cat("  ", netlist.cell(table.regs[i]).name, "  clock=",
               describe_clock(netlist, label));
    if (label.has_reset()) {
      out += cat("  reset='", netlist.net(label.reset_root).name,
                 "' release=", label.reset_release, " active-",
                 label.reset_active_low ? "low" : "high");
    }
    out += "\n";
  }
  return out;
}

std::string domain_summary_json(const DomainTable& table) {
  std::set<int> clock_domains;
  std::set<std::uint32_t> reset_domains;
  for (const DomainLabel& label : table.labels) {
    if (label.clocked) clock_domains.insert(label.sample_period_x2);
    if (label.has_reset()) reset_domains.insert(label.reset_root.value());
  }
  util::JsonWriter w;
  w.begin_object();
  w.key("registers").value(static_cast<std::int64_t>(table.regs.size()));
  w.key("clock_domains")
      .value(static_cast<std::int64_t>(clock_domains.size()));
  w.key("reset_domains")
      .value(static_cast<std::int64_t>(reset_domains.size()));
  w.end_object();
  return w.take();
}

std::string domain_table_json(const Netlist& netlist,
                              const DomainTable& table) {
  std::set<int> clock_domains;
  std::set<std::uint32_t> reset_domains;
  for (const DomainLabel& label : table.labels) {
    if (label.clocked) clock_domains.insert(label.sample_period_x2);
    if (label.has_reset()) reset_domains.insert(label.reset_root.value());
  }
  util::JsonWriter w;
  w.begin_object();
  w.key("design").value(netlist.name());
  w.key("num_registers").value(static_cast<std::int64_t>(table.regs.size()));
  w.key("num_clock_domains")
      .value(static_cast<std::int64_t>(clock_domains.size()));
  w.key("num_reset_domains")
      .value(static_cast<std::int64_t>(reset_domains.size()));
  w.key("registers").begin_array();
  for (std::size_t i = 0; i < table.regs.size(); ++i) {
    const DomainLabel& label = table.labels[i];
    w.begin_object();
    w.key("cell").value(netlist.cell(table.regs[i]).name);
    w.key("clocked").value(label.clocked);
    if (label.clocked) {
      w.key("clock_root").value(netlist.net(label.clock_root).name);
      w.key("phase").value(phase_name(label.phase));
      w.key("inverted").value(label.inverted);
      w.key("divide_ratio").value(label.divide_ratio);
      w.key("sample_period_x2").value(label.sample_period_x2);
    }
    if (label.has_reset()) {
      w.key("reset_root").value(netlist.net(label.reset_root).name);
      w.key("reset_release").value(label.reset_release);
      w.key("reset_active_low").value(label.reset_active_low);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

// --- A4: cdc-unsync ---------------------------------------------------------

void rule_cdc_unsync(check::RuleContext& ctx, const AnalysisOptions& options,
                     const DomainTable& table) {
  const Netlist& netlist = ctx.netlist();
  const RegisterGraph* graph = ctx.register_graph();
  if (graph == nullptr) return;  // comb-cycle rule owns that pathology
  FindingBudget budget(ctx, check::RuleId::kCdcUnsync,
                       options.max_findings);
  for (std::size_t u = 0; u < graph->regs.size(); ++u) {
    const CellId src = graph->regs[u];
    const DomainLabel* src_label = table.label_of(src);
    if (src_label == nullptr || !src_label->clocked) continue;
    for (const int v : graph->fanout[u]) {
      const CellId dst = graph->regs[v];
      if (dst == src) continue;
      const DomainLabel* dst_label = table.label_of(dst);
      if (dst_label == nullptr || !dst_label->clocked) continue;
      if (src_label->same_clock_domain(*dst_label)) continue;
      if (synchronized_crossing(netlist, table, src, dst)) continue;
      budget.emit(
          cat("data path from register '", netlist.cell(src).name, "' (",
              describe_clock(netlist, *src_label), ") to '",
              netlist.cell(dst).name, "' (",
              describe_clock(netlist, *dst_label),
              ") crosses clock domains without a synchronizer chain"),
          {netlist.cell(dst).name, netlist.cell(src).name}, {},
          "insert a two-register synchronizer clocked by the destination "
          "domain directly at the crossing");
    }
  }
  budget.finish();
}

void rule_cdc_unsync(check::RuleContext& ctx,
                     const AnalysisOptions& options) {
  rule_cdc_unsync(ctx, options, infer_domains(ctx.netlist()));
}

// --- A5: cdc-reconverge -----------------------------------------------------

void rule_cdc_reconverge(check::RuleContext& ctx,
                         const AnalysisOptions& options,
                         const DomainTable& table) {
  const Netlist& netlist = ctx.netlist();
  const RegisterGraph* graph = ctx.register_graph();
  if (graph == nullptr) return;
  FindingBudget budget(ctx, check::RuleId::kCdcReconverge,
                       options.max_findings);
  for (std::size_t u = 0; u < graph->regs.size(); ++u) {
    const CellId src = graph->regs[u];
    const DomainLabel* src_label = table.label_of(src);
    if (src_label == nullptr || !src_label->clocked) continue;
    // Synchronized crossings leaving this source, in fanout order.
    std::vector<CellId> syncs;
    for (const int v : graph->fanout[u]) {
      const CellId dst = graph->regs[v];
      if (dst == src) continue;
      const DomainLabel* dst_label = table.label_of(dst);
      if (dst_label == nullptr || !dst_label->clocked) continue;
      if (src_label->same_clock_domain(*dst_label)) continue;
      if (synchronized_crossing(netlist, table, src, dst)) {
        syncs.push_back(dst);
      }
    }
    if (syncs.size() < 2) continue;
    // Two synchronizers resolve independently; their outputs agreeing is
    // only guaranteed outside the cones where they remix.
    bool reported = false;
    for (std::size_t i = 0; i < syncs.size() && !reported; ++i) {
      const std::set<std::uint32_t> cone_i =
          comb_cone(netlist, netlist.cell(syncs[i]).out, kReconvergeDepth);
      for (std::size_t j = i + 1; j < syncs.size() && !reported; ++j) {
        const std::set<std::uint32_t> cone_j =
            comb_cone(netlist, netlist.cell(syncs[j]).out,
                      kReconvergeDepth);
        for (const std::uint32_t meet : cone_i) {
          if (cone_j.count(meet) == 0) continue;
          budget.emit(
              cat("register '", netlist.cell(src).name,
                  "' crosses domains through two synchronizers ('",
                  netlist.cell(syncs[i]).name, "', '",
                  netlist.cell(syncs[j]).name,
                  "') whose outputs reconverge at '",
                  netlist.cell(CellId{meet}).name, "' within ",
                  kReconvergeDepth, " levels"),
              {netlist.cell(src).name, netlist.cell(syncs[i]).name,
               netlist.cell(syncs[j]).name,
               netlist.cell(CellId{meet}).name},
              {},
              "cross the value once and fan it out in the destination "
              "domain, or gray-code the crossing bits");
          reported = true;
          break;
        }
      }
    }
  }
  budget.finish();
}

void rule_cdc_reconverge(check::RuleContext& ctx,
                         const AnalysisOptions& options) {
  rule_cdc_reconverge(ctx, options, infer_domains(ctx.netlist()));
}

// --- A6: rdc-crossing -------------------------------------------------------

void rule_rdc_crossing(check::RuleContext& ctx,
                       const AnalysisOptions& options,
                       const DomainTable& table) {
  const Netlist& netlist = ctx.netlist();
  if (netlist.reset_roots().size() < 2) return;  // one root: one domain
  const RegisterGraph* graph = ctx.register_graph();
  if (graph == nullptr) return;
  FindingBudget budget(ctx, check::RuleId::kRdcCrossing,
                       options.max_findings);
  for (std::size_t u = 0; u < graph->regs.size(); ++u) {
    const CellId src = graph->regs[u];
    const DomainLabel* src_label = table.label_of(src);
    if (src_label == nullptr || !src_label->has_reset()) continue;
    for (const int v : graph->fanout[u]) {
      const CellId dst = graph->regs[v];
      if (dst == src) continue;
      const DomainLabel* dst_label = table.label_of(dst);
      if (dst_label == nullptr || !dst_label->has_reset()) continue;
      if (src_label->reset_root == dst_label->reset_root) continue;
      // Safe only when the source's reset is released strictly before the
      // destination's: then the source is stable by the time the
      // destination starts sampling.
      if (src_label->reset_release < dst_label->reset_release) continue;
      budget.emit(
          cat("register '", netlist.cell(src).name, "' (reset root '",
              netlist.net(src_label->reset_root).name, "', release ",
              src_label->reset_release, ") feeds '",
              netlist.cell(dst).name, "' (reset root '",
              netlist.net(dst_label->reset_root).name, "', release ",
              dst_label->reset_release,
              ") — the destination can capture mid-reset data"),
          {netlist.cell(dst).name, netlist.cell(src).name}, {},
          "release the destination's reset root after the source's, or "
          "isolate the crossing with reset-hold gating");
    }
  }
  budget.finish();
}

void rule_rdc_crossing(check::RuleContext& ctx,
                       const AnalysisOptions& options) {
  rule_rdc_crossing(ctx, options, infer_domains(ctx.netlist()));
}

// --- AnalysisSession --------------------------------------------------------

AnalysisSession::AnalysisSession(AnalysisOptions options)
    : options_(std::move(options)) {}

bool AnalysisSession::plan_changed(const Netlist& netlist) const {
  if (netlist.name() != cached_name_) return true;
  const ClockSpec& clocks = netlist.clocks();
  if (clocks.period_ps != cached_clocks_.period_ps ||
      clocks.phases.size() != cached_clocks_.phases.size()) {
    return true;
  }
  for (std::size_t i = 0; i < clocks.phases.size(); ++i) {
    const PhaseWaveform& a = clocks.phases[i];
    const PhaseWaveform& b = cached_clocks_.phases[i];
    if (a.phase != b.phase || a.root != b.root || a.rise_ps != b.rise_ps ||
        a.fall_ps != b.fall_ps) {
      return true;
    }
  }
  if (netlist.reset_roots().size() != cached_resets_.size()) return true;
  for (std::size_t i = 0; i < cached_resets_.size(); ++i) {
    const ResetRoot& a = netlist.reset_roots()[i];
    const ResetRoot& b = cached_resets_[i];
    if (a.net != b.net || a.active_low != b.active_low ||
        a.release_order != b.release_order) {
      return true;
    }
  }
  return netlist.reset_assignments().size() != cached_reset_assignments_;
}

check::CheckReport AnalysisSession::run_wave(const Netlist& netlist) {
  check::RuleContext ctx(netlist, options_.check);
  const auto enabled = [&](check::RuleId id) {
    return std::find(options_.check.disabled.begin(),
                     options_.check.disabled.end(),
                     id) == options_.check.disabled.end();
  };
  if (enabled(check::RuleId::kXProp)) rule_xprop(ctx, options_);
  if (enabled(check::RuleId::kMinDelayRace)) {
    rule_min_delay_race(ctx, options_);
  }
  if (enabled(check::RuleId::kBorrowChain)) rule_borrow_chain(ctx, options_);
  if (enabled(check::RuleId::kCdcUnsync)) {
    rule_cdc_unsync(ctx, options_, table_);
  }
  if (enabled(check::RuleId::kCdcReconverge)) {
    rule_cdc_reconverge(ctx, options_, table_);
  }
  if (enabled(check::RuleId::kRdcCrossing)) {
    rule_rdc_crossing(ctx, options_, table_);
  }
  return check::finalize_report(netlist, ctx.take(), options_.check);
}

check::CheckReport AnalysisSession::analyze(const Netlist& netlist) {
  table_ = infer_domains(netlist);
  stats_.labels_recomputed += static_cast<std::int64_t>(table_.regs.size());
  ++stats_.full_runs;
  cached_report_ = run_wave(netlist);
  cached_clocks_ = netlist.clocks();
  cached_resets_ = netlist.reset_roots();
  cached_reset_assignments_ = netlist.reset_assignments().size();
  cached_name_ = netlist.name();
  primed_ = true;
  return cached_report_;
}

check::CheckReport AnalysisSession::reanalyze(const Netlist& netlist,
                                              const TouchedSet& touched) {
  if (!primed_) return analyze(netlist);
  const bool replan = plan_changed(netlist);
  if (touched.empty() && !replan) {
    // Nothing mutated since the last wave: the cached report is the
    // full-re-analysis result by definition.
    ++stats_.skipped_runs;
    return cached_report_;
  }
  if (replan) return analyze(netlist);

  // Dirty fanout cone: forward closure of the touched ids over the net ->
  // fanout-cell -> output-net relation (registers and clock cells are
  // crossed — downstream labels and analyses may see the change).
  std::vector<char> net_dirty(netlist.num_nets(), 0);
  std::vector<char> cell_dirty(netlist.num_cells(), 0);
  std::vector<NetId> frontier;
  const auto seed_net = [&](NetId net) {
    if (net.valid() && !net_dirty[net.value()]) {
      net_dirty[net.value()] = 1;
      frontier.push_back(net);
    }
  };
  for (const CellId id : touched.cells) {
    cell_dirty[id.value()] = 1;
    seed_net(netlist.cell(id).out);
  }
  for (const NetId id : touched.nets) seed_net(id);
  while (!frontier.empty()) {
    const NetId at = frontier.back();
    frontier.pop_back();
    for (const PinRef& ref : netlist.net(at).fanouts) {
      if (cell_dirty[ref.cell.value()]) continue;
      cell_dirty[ref.cell.value()] = 1;
      seed_net(netlist.cell(ref.cell).out);
    }
  }
  // A register whose reset association routes through a dirty net is
  // dirty even without a data-path connection.
  for (const auto& [reg, net] : netlist.reset_assignments()) {
    if (net.valid() && net_dirty[net.value()]) cell_dirty[reg] = 1;
  }

  std::size_t dirty_cells = 0;
  std::size_t live_cells = 0;
  for (std::uint32_t i = 0; i < netlist.num_cells(); ++i) {
    if (!netlist.cell(CellId{i}).alive) continue;
    ++live_cells;
    if (cell_dirty[i]) ++dirty_cells;
  }
  if (dirty_cells * 2 > live_cells) {
    // The edit rewrote most of the design (latch substitution, retiming):
    // patching labels would walk nearly everything anyway.
    return analyze(netlist);
  }

  // Patch the domain table: a cached label stays valid iff neither the
  // register nor any net its clock/reset walk stepped through is dirty.
  DomainTable fresh;
  for (const CellId reg : netlist.registers()) {
    const auto row = table_.index.find(reg.value());
    bool reuse = row != table_.index.end() && !cell_dirty[reg.value()];
    if (reuse) {
      for (const NetId net : table_.support[row->second]) {
        if (net_dirty[net.value()]) {
          reuse = false;
          break;
        }
      }
    }
    fresh.index.emplace(reg.value(), static_cast<int>(fresh.regs.size()));
    fresh.regs.push_back(reg);
    if (reuse) {
      fresh.labels.push_back(table_.labels[row->second]);
      fresh.support.push_back(table_.support[row->second]);
      ++stats_.labels_reused;
    } else {
      std::vector<NetId> support;
      fresh.labels.push_back(infer_label(netlist, reg, &support));
      fresh.support.push_back(std::move(support));
      ++stats_.labels_recomputed;
    }
  }
  table_ = std::move(fresh);
  ++stats_.incremental_runs;
  cached_report_ = run_wave(netlist);
  cached_clocks_ = netlist.clocks();
  cached_resets_ = netlist.reset_roots();
  cached_reset_assignments_ = netlist.reset_assignments().size();
  cached_name_ = netlist.name();
  return cached_report_;
}

}  // namespace tp::analysis
