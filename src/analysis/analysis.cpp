#include "src/analysis/analysis.hpp"

#include <algorithm>

#include "src/analysis/domains.hpp"
#include "src/util/strcat.hpp"

namespace tp::analysis {

const CellLibrary& analysis_library(const AnalysisOptions& options) {
  static const CellLibrary nominal = CellLibrary::nominal_28nm();
  return options.library != nullptr ? *options.library : nominal;
}

void FindingBudget::emit(std::string message, std::vector<std::string> cells,
                         std::vector<std::string> nets, std::string hint) {
  if (cap_ > 0 && emitted_ >= cap_) {
    ++suppressed_;
    return;
  }
  ++emitted_;
  ctx_.emit(rule_, std::move(message), std::move(cells), std::move(nets),
            std::move(hint));
}

void FindingBudget::finish() {
  if (suppressed_ == 0) return;
  ctx_.emit(rule_,
            cat(suppressed_, " additional ", check::rule_name(rule_),
                " finding(s) suppressed by max_findings=", cap_),
            {}, {}, "raise AnalysisOptions::max_findings to see them all");
  suppressed_ = 0;
}

check::CheckReport run_analysis(const Netlist& netlist,
                                const AnalysisOptions& options) {
  check::RuleContext ctx(netlist, options.check);
  const auto enabled = [&](check::RuleId id) {
    return std::find(options.check.disabled.begin(),
                     options.check.disabled.end(),
                     id) == options.check.disabled.end();
  };
  if (enabled(check::RuleId::kXProp)) rule_xprop(ctx, options);
  if (enabled(check::RuleId::kMinDelayRace)) {
    rule_min_delay_race(ctx, options);
  }
  if (enabled(check::RuleId::kBorrowChain)) rule_borrow_chain(ctx, options);
  // The domain rules share one inference pass; dispatch order must match
  // AnalysisSession::run_wave so incremental reports are byte-identical.
  const bool any_domain_rule = enabled(check::RuleId::kCdcUnsync) ||
                               enabled(check::RuleId::kCdcReconverge) ||
                               enabled(check::RuleId::kRdcCrossing);
  if (any_domain_rule) {
    const DomainTable table = infer_domains(netlist);
    if (enabled(check::RuleId::kCdcUnsync)) {
      rule_cdc_unsync(ctx, options, table);
    }
    if (enabled(check::RuleId::kCdcReconverge)) {
      rule_cdc_reconverge(ctx, options, table);
    }
    if (enabled(check::RuleId::kRdcCrossing)) {
      rule_rdc_crossing(ctx, options, table);
    }
  }
  return check::finalize_report(netlist, ctx.take(), options.check);
}

}  // namespace tp::analysis
