// Bit-parallel (64-lane) gate-level simulator.
//
// WideSimulator packs up to 64 independent stimulus lanes into one
// std::uint64_t per net and evaluates the whole netlist word-wise:
// combinational gates become word AND/OR/XOR (eval_comb_word), latches
// per-lane muxes Q = (open & D) | (~open & Q), ICG/kIcgM1 internal-latch
// state a word, and edge-sampled DFFs per-lane rise masks. Toggle counts
// accumulate popcount(old ^ new), so ActivityStats stays exact — it is the
// sum over lanes, and ActivityStats::cycles advances by the lane count per
// step so toggle_rate() remains an average per simulated cycle.
//
// Bit-identity contract (tests/wide_sim_test.cpp): for any netlist and any
// stimulus lanes, lane i of a wide run is bit-identical to a scalar
// Simulator run driven with stimulus stream i — same per-cycle output
// stream, same per-net toggle trajectory — and the wide ActivityStats
// equals the per-lane scalar stats summed. This holds because both engines
// share the same event schedule (one event per distinct phase edge time,
// PIs change at t = 0, nested clock events from illegal gating) and the
// same canonical ascending cell-id order within each propagation wave, and
// because every evaluation is gated by a per-cell *trigger mask* — the
// union of lanes whose fanin actually changed since the cell last ran.
// Only triggered lanes take the new value; a lane enqueued into a later
// wave by its own fanin change keeps its scalar wave membership even when
// another lane pulls the cell into an earlier union wave, so per-lane
// glitch/toggle trajectories decompose exactly. See docs/simulation.md.
//
// The output-stream snapshot protocol is the scalar one
// (SimOptions::snapshot_event); outputs() returns one packed word per
// primary output. VCD dumping is not supported — waveforms are a per-lane
// concept, so callers that want a VCD use the scalar engine (the flow
// layer falls back automatically, see FlowOptions).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/sim/simulator.hpp"

namespace tp {

/// Lanes per word — the hard upper bound on WideSimulator lanes.
inline constexpr std::size_t kMaxSimLanes = 64;

class WideSimulator {
 public:
  /// `lanes` must be in [1, kMaxSimLanes]. SimOptions::unit_delay and
  /// snapshot_event mean exactly what they mean for the scalar engine.
  WideSimulator(const Netlist& netlist, std::size_t lanes,
                SimOptions options = {});

  /// Resets all lanes: nets to 0, register/ICG state to the init values,
  /// statistics cleared, combinational network settled, schedule parked at
  /// the end of the previous cycle — the scalar reset() word-wide.
  void reset();

  /// Simulates one full clock cycle in every lane. `pi_words` holds one
  /// lane-packed word per data primary input (Netlist::data_inputs()
  /// order): bit i is the value lane i applies at t = 0.
  void step(std::span<const std::uint64_t> pi_words);

  /// Lane-packed primary-output snapshot of the last step(), taken after
  /// the SimOptions::snapshot_event event, in Netlist::outputs() order.
  [[nodiscard]] const std::vector<std::uint64_t>& outputs() const {
    return po_snapshot_;
  }

  /// Current lane-packed value word of a net.
  [[nodiscard]] std::uint64_t value_word(NetId net) const {
    return values_[net.value()];
  }

  /// Value of a net in one lane.
  [[nodiscard]] bool value(NetId net, std::size_t lane) const {
    return (values_[net.value()] >> lane) & 1u;
  }

  /// Lane-packed internal enable-latch state of a kIcg/kIcgM1 cell.
  [[nodiscard]] std::uint64_t icg_state_word(CellId cell) const {
    return icg_state_[cell.value()];
  }

  /// Summed-over-lanes activity. cycles advances by lanes() per step.
  [[nodiscard]] const ActivityStats& stats() const { return stats_; }
  void clear_stats();

  [[nodiscard]] std::size_t lanes() const { return lanes_; }
  /// Mask with bit i set for every active lane i.
  [[nodiscard]] std::uint64_t lane_mask() const { return lane_mask_; }

 private:
  void propagate_clock_network(std::vector<NetId>& changed_clock_nets);
  void update_registers(const std::vector<NetId>& changed_clock_nets);
  void propagate_data();
  void evaluate_cell(CellId cell, std::uint64_t trigger);
  void set_net(NetId net, std::uint64_t word);
  void enqueue_fanouts(NetId net, std::uint64_t changed_lanes);

  /// Lane mask of lanes whose ICG internal latch is transparent.
  [[nodiscard]] std::uint64_t icg_transparent(const Cell& cell) const;

  const Netlist& netlist_;
  SimOptions options_;
  std::size_t lanes_ = 1;
  std::uint64_t lane_mask_ = 1;

  std::vector<std::uint64_t> values_;     // per net, lane-packed
  std::vector<std::uint64_t> icg_state_;  // per cell: ICG enable latch
  std::vector<std::uint64_t> last_clock_;  // per cell: last clock-pin word
  std::vector<std::int64_t> event_times_;  // distinct edge times in a cycle
  std::vector<CellId> data_pis_;           // cached Netlist::data_inputs()

  // Data-propagation worklists (current / next tick), union over lanes.
  std::vector<CellId> tick_now_;
  std::vector<CellId> tick_next_;
  std::vector<char> queued_;  // per cell: already in tick_next_
  // Per cell: lanes whose fanin changed since the cell last evaluated.
  // Consumed (snapshotted into wave_trigger_, then zeroed) at the start of
  // each wave so same-wave fanin changes re-trigger for the *next* wave,
  // exactly like each lane's scalar schedule.
  std::vector<std::uint64_t> trigger_;
  std::vector<std::uint64_t> wave_trigger_;  // aligned with tick_now_

  // Clock-network worklist reused across events.
  std::vector<CellId> clock_worklist_;
  // Clock nets changed during *data* propagation in some lane (illegal
  // gating); drained as nested clock events.
  std::vector<NetId> nested_clock_changes_;

  // Reused scratch (mirrors the scalar engine's allocation-free hot path).
  std::vector<NetId> event_clock_changes_;
  struct Write {
    CellId cell;
    std::uint64_t mask;  // lanes that sample this event
    std::uint64_t data;  // lane-packed value to sample
  };
  std::vector<Write> writes_;
  std::vector<NetId> nested_scratch_;

  ActivityStats stats_;
  std::vector<std::uint64_t> po_snapshot_;
  std::uint64_t evals_this_event_ = 0;
};

}  // namespace tp
