// Event-driven gate-level simulator with multi-phase clocking.
//
// The simulator plays the role the paper assigns to gate-level simulation:
// (1) validating that the FF-based, master-slave, and 3-phase variants of a
// design produce identical output streams, and (2) extracting per-net
// switching activity that drives data-driven clock gating and the power
// model.
//
// Model:
//  - The clock network (phase roots, clock buffers, ICGs) propagates with
//    zero delay — the ideal post-CTS clock assumption. Registers on nets
//    that rise in the same instant sample atomically (read-all-then-write),
//    so shift chains behave correctly.
//  - Data propagates with unit gate delay (configurable to zero-delay
//    delta cycles), so combinational glitches are visible in the toggle
//    statistics — glitch power is one of the effects the paper discusses.
//  - Within one clock cycle the simulator processes one event per distinct
//    phase edge time; primary inputs change at t = 0 (the paper treats PIs
//    as if clocked by p1).
//
// Output-stream protocol: primary outputs are snapshotted after the event
// selected by SimOptions::snapshot_event settles. For FF and master-slave
// designs the t = 0 event (index 0) is the instant at which every register
// output carries the logical cycle-n state. For 3-phase designs that instant
// is after the T/3 event (index 1): p1 latches have closed on x_n, p3
// latches still hold x_n, and the inserted p2 latches are transparent and
// pass x_n — so all register-side signals agree with the FF design's
// cycle-n state and the styles are directly comparable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "src/netlist/netlist.hpp"

namespace tp {

struct SimOptions {
  /// Unit gate delay (glitch-accurate) vs. zero-delay delta cycles. The
  /// wave structure is the same in both modes, and every wave is evaluated
  /// in canonical ascending cell-id order — the order the bit-parallel
  /// WideSimulator uses, so lane-decomposed runs stay bit-identical to
  /// scalar runs (see docs/simulation.md) — which makes the two modes
  /// produce identical streams and toggle statistics.
  bool unit_delay = true;
  /// Abort threshold for non-settling (oscillating) propagation.
  std::uint64_t max_evals_per_event = 50'000'000;
  /// Index of the intra-cycle event after which primary outputs are
  /// snapshotted (see the output-stream protocol above). 0 for FF and
  /// master-slave designs, 1 for 3-phase designs.
  int snapshot_event = 0;
};

/// Per-net toggle counts accumulated over simulated cycles.
struct ActivityStats {
  std::vector<std::uint64_t> net_toggles;
  std::uint64_t cycles = 0;

  /// Average toggles per cycle for a net (0 when no cycles were run).
  [[nodiscard]] double toggle_rate(NetId net) const {
    return cycles == 0
               ? 0.0
               : static_cast<double>(net_toggles[net.value()]) /
                     static_cast<double>(cycles);
  }
};

class Simulator {
 public:
  explicit Simulator(const Netlist& netlist, SimOptions options = {});

  /// Resets all state: nets to 0, register/ICG internal state to 0,
  /// statistics cleared, and the combinational network settled.
  void reset();

  /// Simulates one full clock cycle. `pi_values` are the values of the data
  /// primary inputs (in Netlist::data_inputs() order, 0/1), applied at t = 0
  /// and held for the cycle.
  void step(std::span<const std::uint8_t> pi_values);

  /// Primary-output snapshot taken after the t = 0 event of the last step()
  /// (see the output-stream protocol above), in Netlist::outputs() order.
  [[nodiscard]] const std::vector<std::uint8_t>& outputs() const {
    return po_snapshot_;
  }

  [[nodiscard]] bool value(NetId net) const {
    return values_[net.value()] != 0;
  }

  /// Internal enable-latch state of a kIcg/kIcgM1 cell as of the last
  /// processed event. The equivalence checker reads this to extract the
  /// reset state of the clock-gating network.
  [[nodiscard]] bool icg_state(CellId cell) const {
    return icg_state_[cell.value()] != 0;
  }

  [[nodiscard]] const ActivityStats& stats() const { return stats_; }
  void clear_stats();

  /// Starts dumping a VCD waveform of every live net to `out` (header
  /// emitted immediately, one timestep per intra-cycle event). The stream
  /// must outlive the simulator or be detached with stop_vcd().
  void start_vcd(std::ostream& out);
  void stop_vcd();

 private:
  void propagate_clock_network(std::vector<NetId>& changed_clock_nets);
  void update_registers(const std::vector<NetId>& changed_clock_nets);
  void propagate_data();
  void evaluate_cell(CellId cell);
  void set_net(NetId net, bool value);
  void enqueue_fanouts(NetId net);
  void vcd_timestamp(std::int64_t time_ps);

  [[nodiscard]] bool icg_transparent(const Cell& cell) const;

  const Netlist& netlist_;
  SimOptions options_;

  std::vector<char> values_;      // per net
  std::vector<char> icg_state_;   // per cell: ICG internal enable latch
  std::vector<char> last_clock_;  // per cell: last seen clock-pin value
  std::vector<std::int64_t> event_times_;  // distinct edge times in a cycle
  std::vector<CellId> data_pis_;  // cached Netlist::data_inputs()

  // Data-propagation worklists (current / next tick).
  std::vector<CellId> tick_now_;
  std::vector<CellId> tick_next_;
  std::vector<char> queued_;  // per cell: already in tick_next_

  // Clock-network worklist reused across events.
  std::vector<CellId> clock_worklist_;
  // Clock nets whose value changed during *data* propagation (illegal clock
  // gating makes this possible); processed as nested clock events.
  std::vector<NetId> nested_clock_changes_;

  // Scratch buffers reused across events so the per-cycle hot path does not
  // allocate: clock nets changed by the current event, deferred register
  // writes, and the nested-clock-changes snapshot drained per round.
  std::vector<NetId> event_clock_changes_;
  struct Write {
    CellId cell;
    bool q;
  };
  std::vector<Write> writes_;
  std::vector<NetId> nested_scratch_;

  ActivityStats stats_;
  std::vector<std::uint8_t> po_snapshot_;
  std::uint64_t evals_this_event_ = 0;

  // VCD dumping (null when disabled).
  std::ostream* vcd_ = nullptr;
  std::int64_t vcd_time_ = 0;       // absolute ps of the current timestep
  bool vcd_header_done_ = false;
};

}  // namespace tp
