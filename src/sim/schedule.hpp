// Intra-cycle event schedule shared by the scalar Simulator and the
// bit-parallel WideSimulator. Keeping these in one place is what makes the
// two engines' event schedules identical by construction — a precondition
// of the wide engine's bit-identity contract (docs/simulation.md).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/netlist/netlist.hpp"

namespace tp::sim_detail {

/// Distinct phase-edge times inside one cycle, ascending, always including
/// 0 (the cycle-boundary event at which primary inputs change).
inline std::vector<std::int64_t> edge_times(const ClockSpec& clocks) {
  std::vector<std::int64_t> times{0};
  for (const PhaseWaveform& w : clocks.phases) {
    times.push_back(w.rise_ps % clocks.period_ps);
    times.push_back(w.fall_ps % clocks.period_ps);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

/// Waveform level of a phase at time `t` within the cycle (rise <= t <
/// fall, with wrap-around for waveforms that straddle the boundary).
inline bool phase_level(const PhaseWaveform& w, std::int64_t period,
                        std::int64_t t) {
  const std::int64_t rise = w.rise_ps % period;
  const std::int64_t fall = w.fall_ps % period;
  if (rise <= fall) return rise <= t && t < fall;
  return t >= rise || t < fall;  // wrapping waveform
}

}  // namespace tp::sim_detail
