#include "src/sim/simulator.hpp"

#include <algorithm>
#include <ostream>

#include "src/sim/schedule.hpp"

namespace tp {

using sim_detail::edge_times;
using sim_detail::phase_level;

Simulator::Simulator(const Netlist& netlist, SimOptions options)
    : netlist_(netlist), options_(options) {
  require(netlist_.clocks().period_ps > 0,
          "Simulator: netlist has no clock spec");
  event_times_ = edge_times(netlist_.clocks());
  data_pis_ = netlist_.data_inputs();  // rebuilt per call; cache once
  reset();
}

void Simulator::reset() {
  values_.assign(netlist_.num_nets(), 0);
  icg_state_.assign(netlist_.num_cells(), 0);
  last_clock_.assign(netlist_.num_cells(), 0);
  queued_.assign(netlist_.num_cells(), 0);
  stats_.net_toggles.assign(netlist_.num_nets(), 0);
  stats_.cycles = 0;
  po_snapshot_.assign(netlist_.outputs().size(), 0);
  tick_now_.clear();
  tick_next_.clear();
  clock_worklist_.clear();
  nested_clock_changes_.clear();

  // Constants, then settle the whole combinational network once.
  evals_this_event_ = 0;
  std::vector<CellId> clock_cells;
  for (CellId id : netlist_.live_cells()) {
    const Cell& cell = netlist_.cell(id);
    if (cell.kind == CellKind::kConst1) values_[cell.out.value()] = 1;
    if (is_register(cell.kind)) values_[cell.out.value()] = cell.init;
    if (is_clock_cell(cell.kind)) {
      clock_cells.push_back(id);
    } else if (is_combinational(cell.kind) || is_latch(cell.kind)) {
      // Latches are enqueued too: init values can leave a transparent latch
      // with D != Q, which no event would otherwise reconcile.
      tick_next_.push_back(id);
      queued_[id.value()] = 1;
    }
  }
  propagate_data();

  // Let ICG enable latches observe the settled enables while every clock is
  // still low (kIcg latches are transparent then), mirroring how hardware
  // leaves reset with the gating decision already latched.
  clock_worklist_ = clock_cells;
  std::vector<NetId> changed;
  propagate_clock_network(changed);
  update_registers(changed);
  propagate_data();

  // Park the schedule at the end of the previous cycle (t = Tc - 1): phases
  // that are high going into the cycle boundary (e.g. p3 of a 3-phase
  // design, clkbar of a master-slave clock) open their latches now. Without
  // this, latches whose capture window ends exactly at the cycle boundary
  // would miss the update corresponding to the FF design's edge 0, and
  // state with combinational feedback would never re-synchronize.
  const ClockSpec& clocks = netlist_.clocks();
  changed.clear();
  for (const PhaseWaveform& w : clocks.phases) {
    const bool target = phase_level(w, clocks.period_ps,
                                    clocks.period_ps - 1);
    if (value(w.root) != target) {
      set_net(w.root, target);
      changed.push_back(w.root);
      for (const PinRef& ref : netlist_.net(w.root).fanouts) {
        if (is_clock_cell(netlist_.cell(ref.cell).kind)) {
          clock_worklist_.push_back(ref.cell);
        }
      }
    }
  }
  propagate_clock_network(changed);
  update_registers(changed);
  propagate_data();

  // Settling is bookkeeping, not activity.
  stats_.net_toggles.assign(netlist_.num_nets(), 0);
}

void Simulator::clear_stats() {
  stats_.net_toggles.assign(netlist_.num_nets(), 0);
  stats_.cycles = 0;
}

void Simulator::step(std::span<const std::uint8_t> pi_values) {
  require(pi_values.size() == data_pis_.size(),
          "Simulator::step: wrong number of PI values");
  ++stats_.cycles;

  const int snapshot_event = std::min(
      options_.snapshot_event, static_cast<int>(event_times_.size()) - 1);
  int event_index = 0;
  const std::int64_t cycle_base =
      static_cast<std::int64_t>(stats_.cycles - 1) *
      netlist_.clocks().period_ps;
  for (const std::int64_t t : event_times_) {
    evals_this_event_ = 0;
    vcd_timestamp(cycle_base + t);

    // 1. Root clock transitions, then zero-delay clock-network propagation.
    event_clock_changes_.clear();
    for (const PhaseWaveform& w : netlist_.clocks().phases) {
      const bool target = phase_level(w, netlist_.clocks().period_ps, t);
      if (value(w.root) != target) {
        set_net(w.root, target);
        event_clock_changes_.push_back(w.root);
        for (const PinRef& ref : netlist_.net(w.root).fanouts) {
          if (is_clock_cell(netlist_.cell(ref.cell).kind)) {
            clock_worklist_.push_back(ref.cell);
          }
        }
      }
    }
    propagate_clock_network(event_clock_changes_);

    // 2. Atomic register update on the settled clock state.
    update_registers(event_clock_changes_);

    // 3. Primary-input changes (PIs behave as if clocked by p1: they change
    //    at t = 0, after registers sampled the old values).
    if (t == 0) {
      for (std::size_t i = 0; i < data_pis_.size(); ++i) {
        const NetId net = netlist_.cell(data_pis_[i]).out;
        if (value(net) != (pi_values[i] != 0)) {
          set_net(net, pi_values[i] != 0);
          enqueue_fanouts(net);
        }
      }
    }

    // 4. Data propagation (handles nested clock events from illegal gating).
    propagate_data();

    if (event_index == snapshot_event) {
      const auto& outs = netlist_.outputs();
      for (std::size_t i = 0; i < outs.size(); ++i) {
        po_snapshot_[i] = value(netlist_.cell(outs[i]).ins[0]) ? 1 : 0;
      }
    }
    ++event_index;
  }
}

bool Simulator::icg_transparent(const Cell& cell) const {
  if (cell.kind == CellKind::kIcg) {
    return !value(cell.ins[1]);  // internal latch open while CK low
  }
  // kIcgM1: internal latch open while the borrowed phase pin PB is high.
  return value(cell.ins[2]);
}

void Simulator::propagate_clock_network(
    std::vector<NetId>& changed_clock_nets) {
  while (!clock_worklist_.empty()) {
    const CellId id = clock_worklist_.back();
    clock_worklist_.pop_back();
    const Cell& cell = netlist_.cell(id);
    if (!cell.alive) continue;
    bool out = false;
    switch (cell.kind) {
      case CellKind::kClkBuf:
        out = value(cell.ins[0]);
        break;
      case CellKind::kClkInv:
        out = !value(cell.ins[0]);
        break;
      case CellKind::kIcgNoLatch:
        out = value(cell.ins[0]) && value(cell.ins[1]);
        break;
      case CellKind::kIcg:
      case CellKind::kIcgM1:
        if (icg_transparent(cell)) {
          icg_state_[id.value()] = value(cell.ins[0]);
        }
        out = icg_state_[id.value()] && value(cell.ins[1]);
        break;
      case CellKind::kClkDiv2: {
        // Toggle state on the rising input edge. Re-evaluation without an
        // input change (the worklist can revisit a cell within one event)
        // is a no-op because last_clock_ already matches.
        const bool ck = value(cell.ins[0]);
        if (ck && !last_clock_[id.value()]) {
          icg_state_[id.value()] = !icg_state_[id.value()];
        }
        last_clock_[id.value()] = ck;
        out = icg_state_[id.value()] != 0;
        break;
      }
      default:
        continue;  // non-clock cells never enter this worklist
    }
    if (out != value(cell.out)) {
      set_net(cell.out, out);
      changed_clock_nets.push_back(cell.out);
      for (const PinRef& ref : netlist_.net(cell.out).fanouts) {
        if (is_clock_cell(netlist_.cell(ref.cell).kind)) {
          clock_worklist_.push_back(ref.cell);
        }
      }
    }
  }
}

void Simulator::update_registers(
    const std::vector<NetId>& changed_clock_nets) {
  // Read phase: decide every register's new output from pre-update values.
  writes_.clear();
  for (const NetId net : changed_clock_nets) {
    const bool level = value(net);
    for (const PinRef& ref : netlist_.net(net).fanouts) {
      const Cell& cell = netlist_.cell(ref.cell);
      if (!is_register(cell.kind) ||
          static_cast<int>(ref.pin) != clock_pin(cell.kind)) {
        continue;
      }
      switch (cell.kind) {
        case CellKind::kDff:
        case CellKind::kLatchP:  // hold-clean pulsed latch: edge sample
          if (level && !last_clock_[ref.cell.value()]) {
            writes_.push_back({ref.cell, value(cell.ins[0])});
          }
          break;
        case CellKind::kDffEn:
          if (level && !last_clock_[ref.cell.value()]) {
            writes_.push_back({ref.cell, value(cell.ins[1])
                                             ? value(cell.ins[0])
                                             : value(cell.out)});
          }
          break;
        case CellKind::kLatchH:
          if (level) writes_.push_back({ref.cell, value(cell.ins[0])});
          break;
        case CellKind::kLatchL:
          if (!level) writes_.push_back({ref.cell, value(cell.ins[0])});
          break;
        case CellKind::kDffDet:  // dual-edge: sample on any clock toggle
          if (level != (last_clock_[ref.cell.value()] != 0)) {
            writes_.push_back({ref.cell, value(cell.ins[0])});
          }
          break;
        default:
          break;
      }
      last_clock_[ref.cell.value()] = level;
    }
  }
  // Write phase: apply simultaneously and seed data propagation.
  for (const Write& w : writes_) {
    const NetId out = netlist_.cell(w.cell).out;
    if (value(out) != w.q) {
      set_net(out, w.q);
      enqueue_fanouts(out);
    }
  }
}

namespace {

/// VCD identifier for a net id (printable characters '!'..'~').
std::string vcd_id(std::uint32_t n) {
  std::string id;
  do {
    id += static_cast<char>('!' + n % 94);
    n /= 94;
  } while (n);
  return id;
}

}  // namespace

void Simulator::start_vcd(std::ostream& out) {
  vcd_ = &out;
  vcd_header_done_ = false;
  vcd_time_ = 0;
  out << "$timescale 1ps $end\n$scope module "
      << (netlist_.name().empty() ? "top" : netlist_.name()) << " $end\n";
  for (std::uint32_t n = 0; n < netlist_.num_nets(); ++n) {
    const Net& net = netlist_.net(NetId{n});
    if (!net.alive) continue;
    // VCD identifiers must not contain whitespace; net names are sanitized
    // by replacing anything suspicious.
    std::string name = net.name;
    for (char& c : name) {
      if (c == ' ' || c == '$') c = '_';
    }
    out << "$var wire 1 " << vcd_id(n) << ' ' << name << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n$dumpvars\n";
  for (std::uint32_t n = 0; n < netlist_.num_nets(); ++n) {
    if (netlist_.net(NetId{n}).alive) {
      out << (values_[n] ? '1' : '0') << vcd_id(n) << "\n";
    }
  }
  out << "$end\n";
  vcd_header_done_ = true;
}

void Simulator::stop_vcd() { vcd_ = nullptr; }

void Simulator::vcd_timestamp(std::int64_t time_ps) {
  if (vcd_ && vcd_header_done_) {
    vcd_time_ = time_ps;
    *vcd_ << '#' << time_ps << "\n";
  }
}

void Simulator::set_net(NetId net, bool v) {
  values_[net.value()] = v;
  ++stats_.net_toggles[net.value()];
  if (vcd_ && vcd_header_done_) {
    *vcd_ << (v ? '1' : '0') << vcd_id(net.value()) << "\n";
  }
}

void Simulator::enqueue_fanouts(NetId net) {
  for (const PinRef& ref : netlist_.net(net).fanouts) {
    const Cell& cell = netlist_.cell(ref.cell);
    if (is_clock_cell(cell.kind)) {
      // Enable or clock input of a clock cell changed from the data side:
      // processed as a nested clock event after the current tick.
      clock_worklist_.push_back(ref.cell);
      continue;
    }
    if (is_register(cell.kind)) {
      if (static_cast<int>(ref.pin) == clock_pin(cell.kind)) {
        // Data driving a register clock pin — only possible in illegal
        // designs; handled as a nested clock event.
        nested_clock_changes_.push_back(net);
      } else if (is_latch(cell.kind) && !queued_[ref.cell.value()]) {
        // A transparent latch reacts to D; FFs only react to edges.
        queued_[ref.cell.value()] = 1;
        tick_next_.push_back(ref.cell);
      }
      continue;
    }
    if (cell.kind == CellKind::kOutput || !cell.alive) continue;
    if (!queued_[ref.cell.value()]) {
      queued_[ref.cell.value()] = 1;
      tick_next_.push_back(ref.cell);
    }
  }
}

void Simulator::evaluate_cell(CellId id) {
  const Cell& cell = netlist_.cell(id);
  if (!cell.alive) return;
  if (++evals_this_event_ > options_.max_evals_per_event) {
    throw Error("Simulator: propagation did not settle (oscillation?)");
  }
  if (is_latch(cell.kind)) {
    const bool gate = value(cell.ins[1]);
    const bool transparent =
        cell.kind == CellKind::kLatchH ? gate : !gate;
    if (transparent && value(cell.out) != value(cell.ins[0])) {
      set_net(cell.out, value(cell.ins[0]));
      enqueue_fanouts(cell.out);
    }
    return;
  }
  if (samples_on_edge(cell.kind)) {
    return;  // edge-sampled in update_registers
  }
  // Plain combinational gate.
  bool ins[3] = {};
  for (std::size_t i = 0; i < cell.ins.size(); ++i) {
    ins[i] = value(cell.ins[i]);
  }
  const bool out =
      eval_comb(cell.kind, std::span<const bool>(ins, cell.ins.size()));
  if (out != value(cell.out)) {
    set_net(cell.out, out);
    enqueue_fanouts(cell.out);
  }
}

void Simulator::propagate_data() {
  for (;;) {
    while (!tick_next_.empty()) {
      tick_now_.swap(tick_next_);
      tick_next_.clear();
      // Canonical wave order: evaluate in ascending cell-id order. This is
      // the order the bit-parallel WideSimulator evaluates the union wave
      // of all lanes, so per-lane toggle counts decompose exactly (the
      // bit-identity contract); for the generator-produced netlists it also
      // matches topological creation order and suppresses most spurious
      // glitch counting.
      std::sort(tick_now_.begin(), tick_now_.end());
      for (const CellId id : tick_now_) queued_[id.value()] = 0;
      for (const CellId id : tick_now_) evaluate_cell(id);
      tick_now_.clear();
    }
    if (clock_worklist_.empty() && nested_clock_changes_.empty()) break;
    // Nested clock event (enable changed while its clock is high, or data
    // driving a clock pin): settle the clock network, update registers,
    // continue propagating.
    nested_scratch_.swap(nested_clock_changes_);
    nested_clock_changes_.clear();
    propagate_clock_network(nested_scratch_);
    update_registers(nested_scratch_);
  }
}

}  // namespace tp
