#include "src/sim/stimulus.hpp"

namespace tp {

Stimulus random_stimulus(std::size_t num_inputs, std::size_t cycles, Rng& rng,
                         double toggle_probability) {
  Stimulus stimulus(cycles);
  std::vector<std::uint8_t> current(num_inputs, 0);
  for (auto& v : current) v = rng.chance(0.5) ? 1 : 0;
  for (std::size_t c = 0; c < cycles; ++c) {
    for (auto& v : current) {
      if (rng.chance(toggle_probability)) v ^= 1;
    }
    stimulus[c] = current;
  }
  return stimulus;
}

OutputStream run_stream(Simulator& sim, const Stimulus& stimulus,
                        std::size_t warmup_cycles) {
  sim.reset();
  OutputStream stream;
  stream.reserve(stimulus.size());
  std::size_t cycle = 0;
  for (const auto& pi : stimulus) {
    if (cycle == warmup_cycles) sim.clear_stats();
    sim.step(pi);
    if (cycle >= warmup_cycles) stream.push_back(sim.outputs());
    ++cycle;
  }
  return stream;
}

bool streams_equal(const OutputStream& a, const OutputStream& b) {
  return first_mismatch(a, b) < 0;
}

std::ptrdiff_t first_mismatch(const OutputStream& a, const OutputStream& b) {
  if (a.size() != b.size()) {
    return static_cast<std::ptrdiff_t>(std::min(a.size(), b.size()));
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

}  // namespace tp
