#include "src/sim/stimulus.hpp"

namespace tp {

Stimulus random_stimulus(std::size_t num_inputs, std::size_t cycles, Rng& rng,
                         double toggle_probability) {
  Stimulus stimulus(cycles);
  std::vector<std::uint8_t> current(num_inputs, 0);
  for (auto& v : current) v = rng.chance(0.5) ? 1 : 0;
  for (std::size_t c = 0; c < cycles; ++c) {
    for (auto& v : current) {
      if (rng.chance(toggle_probability)) v ^= 1;
    }
    stimulus[c] = current;
  }
  return stimulus;
}

WideStimulus pack_stimulus(std::span<const Stimulus> lanes) {
  require(!lanes.empty() && lanes.size() <= kMaxSimLanes,
          "pack_stimulus: lane count must be in [1, 64]");
  const std::size_t cycles = lanes[0].size();
  const std::size_t inputs = cycles == 0 ? 0 : lanes[0][0].size();
  WideStimulus packed;
  packed.lanes = lanes.size();
  packed.words.assign(cycles, std::vector<std::uint64_t>(inputs, 0));
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    require(lanes[l].size() == cycles,
            "pack_stimulus: lanes must have equal cycle counts");
    for (std::size_t c = 0; c < cycles; ++c) {
      require(lanes[l][c].size() == inputs,
              "pack_stimulus: lanes must have equal input counts");
      for (std::size_t i = 0; i < inputs; ++i) {
        if (lanes[l][c][i] != 0) {
          packed.words[c][i] |= std::uint64_t{1} << l;
        }
      }
    }
  }
  return packed;
}

OutputStream run_wide_stream(WideSimulator& sim, const WideStimulus& stimulus,
                             std::size_t warmup_cycles) {
  require(stimulus.lanes == sim.lanes(),
          "run_wide_stream: stimulus/simulator lane counts differ");
  sim.reset();
  // Collect lane-packed snapshot rows, then unpack lane-major so the
  // result is the concatenation of the per-lane scalar streams.
  std::vector<std::vector<std::uint64_t>> rows;
  const std::size_t cycles = stimulus.words.size();
  const std::size_t kept = cycles > warmup_cycles ? cycles - warmup_cycles : 0;
  rows.reserve(kept);
  std::size_t cycle = 0;
  for (const auto& pi_words : stimulus.words) {
    if (cycle == warmup_cycles) sim.clear_stats();
    sim.step(pi_words);
    if (cycle >= warmup_cycles) rows.push_back(sim.outputs());
    ++cycle;
  }
  OutputStream stream;
  stream.reserve(stimulus.lanes * rows.size());
  const std::size_t outs = rows.empty() ? 0 : rows[0].size();
  for (std::size_t l = 0; l < stimulus.lanes; ++l) {
    for (const auto& row : rows) {
      std::vector<std::uint8_t> bits(outs);
      for (std::size_t j = 0; j < outs; ++j) {
        bits[j] = static_cast<std::uint8_t>((row[j] >> l) & 1u);
      }
      stream.push_back(std::move(bits));
    }
  }
  return stream;
}

OutputStream run_stream(Simulator& sim, const Stimulus& stimulus,
                        std::size_t warmup_cycles) {
  sim.reset();
  OutputStream stream;
  stream.reserve(stimulus.size());
  std::size_t cycle = 0;
  for (const auto& pi : stimulus) {
    if (cycle == warmup_cycles) sim.clear_stats();
    sim.step(pi);
    if (cycle >= warmup_cycles) stream.push_back(sim.outputs());
    ++cycle;
  }
  return stream;
}

bool streams_equal(const OutputStream& a, const OutputStream& b) {
  return first_mismatch(a, b) < 0;
}

std::ptrdiff_t first_mismatch(const OutputStream& a, const OutputStream& b) {
  if (a.size() != b.size()) {
    return static_cast<std::ptrdiff_t>(std::min(a.size(), b.size()));
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

}  // namespace tp
