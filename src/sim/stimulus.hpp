// Stimulus generation and output-stream capture.
//
// The paper validates conversions by "streaming inputs to the FF-based and
// latch-based designs and comparing output streams" (Sec. V). These helpers
// implement that protocol: generate a stimulus, run it through a Simulator,
// capture the per-cycle primary-output vectors, and compare.
#pragma once

#include <span>
#include <vector>

#include "src/sim/simulator.hpp"
#include "src/sim/wide_sim.hpp"
#include "src/util/rng.hpp"

namespace tp {

/// One 0/1 vector per cycle; inner size = number of data primary inputs.
using Stimulus = std::vector<std::vector<std::uint8_t>>;

/// One 0/1 vector per cycle; inner size = number of primary outputs.
using OutputStream = std::vector<std::vector<std::uint8_t>>;

/// Pseudo-random stimulus: each input independently toggles with probability
/// `toggle_probability` per cycle (holding its previous value otherwise), so
/// activity can be tuned per workload.
Stimulus random_stimulus(std::size_t num_inputs, std::size_t cycles, Rng& rng,
                         double toggle_probability = 0.5);

/// Resets the simulator, plays `stimulus`, and returns the output stream.
/// The first `warmup_cycles` responses are discarded (and excluded from the
/// activity statistics) so that reset transients do not pollute comparisons.
OutputStream run_stream(Simulator& sim, const Stimulus& stimulus,
                        std::size_t warmup_cycles = 4);

/// Lane-packed stimulus for the WideSimulator: one word per data primary
/// input per cycle; bit i of every word belongs to independent stimulus
/// lane i. All lanes share one cycle count and input count.
struct WideStimulus {
  std::size_t lanes = 0;
  std::vector<std::vector<std::uint64_t>> words;  // [cycle][input]
};

/// Packs up to kMaxSimLanes scalar stimuli (all with the same shape) into
/// lane-packed words: lane i carries `lanes[i]`.
WideStimulus pack_stimulus(std::span<const Stimulus> lanes);

/// Resets the wide simulator, plays `stimulus` in every lane, and returns
/// the lane-major concatenation of the per-lane output streams: rows
/// [lane * kept .. (lane + 1) * kept) are lane `lane`'s post-warmup
/// responses, where kept = cycles - warmup_cycles. By the bit-identity
/// contract this equals concatenating run_stream() over the scalar lanes
/// in order, and the simulator's ActivityStats equal the per-lane scalar
/// stats summed.
OutputStream run_wide_stream(WideSimulator& sim, const WideStimulus& stimulus,
                             std::size_t warmup_cycles = 4);

/// True when both streams have equal length and identical vectors.
bool streams_equal(const OutputStream& a, const OutputStream& b);

/// Index of the first differing cycle, or -1 when equal.
std::ptrdiff_t first_mismatch(const OutputStream& a, const OutputStream& b);

}  // namespace tp
