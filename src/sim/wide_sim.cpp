#include "src/sim/wide_sim.hpp"

#include <algorithm>
#include <bit>

#include "src/sim/schedule.hpp"

namespace tp {

WideSimulator::WideSimulator(const Netlist& netlist, std::size_t lanes,
                             SimOptions options)
    : netlist_(netlist), options_(options), lanes_(lanes) {
  require(netlist_.clocks().period_ps > 0,
          "WideSimulator: netlist has no clock spec");
  require(lanes >= 1 && lanes <= kMaxSimLanes,
          "WideSimulator: lanes must be in [1, 64]");
  lane_mask_ = lanes == kMaxSimLanes ? ~std::uint64_t{0}
                                     : (std::uint64_t{1} << lanes) - 1;
  event_times_ = sim_detail::edge_times(netlist_.clocks());
  data_pis_ = netlist_.data_inputs();
  reset();
}

void WideSimulator::reset() {
  values_.assign(netlist_.num_nets(), 0);
  icg_state_.assign(netlist_.num_cells(), 0);
  last_clock_.assign(netlist_.num_cells(), 0);
  queued_.assign(netlist_.num_cells(), 0);
  trigger_.assign(netlist_.num_cells(), 0);
  stats_.net_toggles.assign(netlist_.num_nets(), 0);
  stats_.cycles = 0;
  po_snapshot_.assign(netlist_.outputs().size(), 0);
  tick_now_.clear();
  tick_next_.clear();
  clock_worklist_.clear();
  nested_clock_changes_.clear();

  // Constants, then settle the whole combinational network once. Every
  // lane starts from the same state, so the settle is lane-uniform.
  evals_this_event_ = 0;
  std::vector<CellId> clock_cells;
  for (CellId id : netlist_.live_cells()) {
    const Cell& cell = netlist_.cell(id);
    if (cell.kind == CellKind::kConst1) {
      values_[cell.out.value()] = lane_mask_;
    }
    if (is_register(cell.kind)) {
      values_[cell.out.value()] = cell.init ? lane_mask_ : 0;
    }
    if (is_clock_cell(cell.kind)) {
      clock_cells.push_back(id);
    } else if (is_combinational(cell.kind) || is_latch(cell.kind)) {
      // Latches are enqueued too: init values can leave a transparent latch
      // with D != Q, which no event would otherwise reconcile.
      tick_next_.push_back(id);
      queued_[id.value()] = 1;
      trigger_[id.value()] = lane_mask_;  // initial settle runs every lane
    }
  }
  propagate_data();

  // Let ICG enable latches observe the settled enables while every clock is
  // still low (kIcg latches are transparent then), in every lane.
  clock_worklist_ = clock_cells;
  event_clock_changes_.clear();
  propagate_clock_network(event_clock_changes_);
  update_registers(event_clock_changes_);
  propagate_data();

  // Park the schedule at the end of the previous cycle (t = Tc - 1), same
  // as the scalar reset(): phases that are high going into the cycle
  // boundary open their latches now. Roots are lane-uniform words.
  const ClockSpec& clocks = netlist_.clocks();
  event_clock_changes_.clear();
  for (const PhaseWaveform& w : clocks.phases) {
    const bool target = sim_detail::phase_level(w, clocks.period_ps,
                                                clocks.period_ps - 1);
    const std::uint64_t word = target ? lane_mask_ : 0;
    if (values_[w.root.value()] != word) {
      set_net(w.root, word);
      event_clock_changes_.push_back(w.root);
      for (const PinRef& ref : netlist_.net(w.root).fanouts) {
        if (is_clock_cell(netlist_.cell(ref.cell).kind)) {
          clock_worklist_.push_back(ref.cell);
        }
      }
    }
  }
  propagate_clock_network(event_clock_changes_);
  update_registers(event_clock_changes_);
  propagate_data();

  // Settling is bookkeeping, not activity.
  stats_.net_toggles.assign(netlist_.num_nets(), 0);
}

void WideSimulator::clear_stats() {
  stats_.net_toggles.assign(netlist_.num_nets(), 0);
  stats_.cycles = 0;
}

void WideSimulator::step(std::span<const std::uint64_t> pi_words) {
  require(pi_words.size() == data_pis_.size(),
          "WideSimulator::step: wrong number of PI words");
  stats_.cycles += lanes_;  // one simulated cycle per lane

  const int snapshot_event = std::min(
      options_.snapshot_event, static_cast<int>(event_times_.size()) - 1);
  int event_index = 0;
  for (const std::int64_t t : event_times_) {
    evals_this_event_ = 0;

    // 1. Root clock transitions, then zero-delay clock-network propagation.
    event_clock_changes_.clear();
    for (const PhaseWaveform& w : netlist_.clocks().phases) {
      const bool target =
          sim_detail::phase_level(w, netlist_.clocks().period_ps, t);
      const std::uint64_t word = target ? lane_mask_ : 0;
      if (values_[w.root.value()] != word) {
        set_net(w.root, word);
        event_clock_changes_.push_back(w.root);
        for (const PinRef& ref : netlist_.net(w.root).fanouts) {
          if (is_clock_cell(netlist_.cell(ref.cell).kind)) {
            clock_worklist_.push_back(ref.cell);
          }
        }
      }
    }
    propagate_clock_network(event_clock_changes_);

    // 2. Atomic register update on the settled clock state.
    update_registers(event_clock_changes_);

    // 3. Primary-input changes at t = 0 (after registers sampled the old
    //    values), lane-packed.
    if (t == 0) {
      for (std::size_t i = 0; i < data_pis_.size(); ++i) {
        const NetId net = netlist_.cell(data_pis_[i]).out;
        const std::uint64_t word = pi_words[i] & lane_mask_;
        const std::uint64_t diff = values_[net.value()] ^ word;
        if (diff != 0) {
          set_net(net, word);
          enqueue_fanouts(net, diff);
        }
      }
    }

    // 4. Data propagation (handles nested clock events from illegal gating).
    propagate_data();

    if (event_index == snapshot_event) {
      const auto& outs = netlist_.outputs();
      for (std::size_t i = 0; i < outs.size(); ++i) {
        po_snapshot_[i] = values_[netlist_.cell(outs[i]).ins[0].value()];
      }
    }
    ++event_index;
  }
}

std::uint64_t WideSimulator::icg_transparent(const Cell& cell) const {
  if (cell.kind == CellKind::kIcg) {
    // Internal latch open while CK low.
    return ~values_[cell.ins[1].value()] & lane_mask_;
  }
  // kIcgM1: internal latch open while the borrowed phase pin PB is high.
  return values_[cell.ins[2].value()];
}

void WideSimulator::propagate_clock_network(
    std::vector<NetId>& changed_clock_nets) {
  while (!clock_worklist_.empty()) {
    const CellId id = clock_worklist_.back();
    clock_worklist_.pop_back();
    const Cell& cell = netlist_.cell(id);
    if (!cell.alive) continue;
    std::uint64_t out = 0;
    switch (cell.kind) {
      case CellKind::kClkBuf:
        out = values_[cell.ins[0].value()];
        break;
      case CellKind::kClkInv:
        out = ~values_[cell.ins[0].value()] & lane_mask_;
        break;
      case CellKind::kIcgNoLatch:
        out = values_[cell.ins[0].value()] & values_[cell.ins[1].value()];
        break;
      case CellKind::kIcg:
      case CellKind::kIcgM1: {
        // Per-lane mux of the internal enable latch: transparent lanes
        // track EN, opaque lanes hold. Lanes whose inputs did not change
        // reproduce their current state, so evaluating the cell on another
        // lane's behalf is a per-lane no-op (bit-identity contract).
        const std::uint64_t transp = icg_transparent(cell);
        std::uint64_t& state = icg_state_[id.value()];
        state = (transp & values_[cell.ins[0].value()]) | (~transp & state);
        out = state & values_[cell.ins[1].value()];
        break;
      }
      case CellKind::kClkDiv2: {
        // Lanes whose input just rose toggle the divider state; repeat
        // evaluation without an input change flips nothing (rising == 0).
        const std::uint64_t ck = values_[cell.ins[0].value()];
        const std::uint64_t rising = ck & ~last_clock_[id.value()];
        last_clock_[id.value()] = ck;
        std::uint64_t& state = icg_state_[id.value()];
        state ^= rising;
        out = state & lane_mask_;
        break;
      }
      default:
        continue;  // non-clock cells never enter this worklist
    }
    if (out != values_[cell.out.value()]) {
      set_net(cell.out, out);
      changed_clock_nets.push_back(cell.out);
      for (const PinRef& ref : netlist_.net(cell.out).fanouts) {
        if (is_clock_cell(netlist_.cell(ref.cell).kind)) {
          clock_worklist_.push_back(ref.cell);
        }
      }
    }
  }
}

void WideSimulator::update_registers(
    const std::vector<NetId>& changed_clock_nets) {
  // Read phase: decide every register's new output from pre-update values.
  // `changed` restricts each write to the lanes whose clock net actually
  // transitioned this event — the other lanes were not processed by the
  // scalar engine either (their clock did not move), so touching them
  // would break the per-lane decomposition.
  writes_.clear();
  for (const NetId net : changed_clock_nets) {
    const std::uint64_t level = values_[net.value()];
    for (const PinRef& ref : netlist_.net(net).fanouts) {
      const Cell& cell = netlist_.cell(ref.cell);
      if (!is_register(cell.kind) ||
          static_cast<int>(ref.pin) != clock_pin(cell.kind)) {
        continue;
      }
      const std::uint64_t changed = level ^ last_clock_[ref.cell.value()];
      std::uint64_t mask = 0;
      std::uint64_t data = 0;
      switch (cell.kind) {
        case CellKind::kDff:
        case CellKind::kLatchP:  // hold-clean pulsed latch: edge sample
        case CellKind::kLatchH:
          // Rising lanes sample D. For kLatchH this is exactly the scalar
          // behavior too: open-and-unchanged lanes already track D through
          // evaluate_cell, only the lanes whose gate just rose are written
          // here.
          mask = changed & level;
          data = values_[cell.ins[0].value()];
          break;
        case CellKind::kDffEn: {
          mask = changed & level;
          const std::uint64_t en = values_[cell.ins[1].value()];
          data = (en & values_[cell.ins[0].value()]) |
                 (~en & values_[cell.out.value()]);
          break;
        }
        case CellKind::kLatchL:
          mask = changed & ~level;  // lanes whose gate just fell (opened)
          data = values_[cell.ins[0].value()];
          break;
        case CellKind::kDffDet:  // dual-edge: any toggling lane samples
          mask = changed;
          data = values_[cell.ins[0].value()];
          break;
        default:
          break;
      }
      last_clock_[ref.cell.value()] = level;
      if (mask != 0) writes_.push_back({ref.cell, mask, data});
    }
  }
  // Write phase: apply simultaneously and seed data propagation.
  for (const Write& w : writes_) {
    const NetId out = netlist_.cell(w.cell).out;
    const std::uint64_t q = values_[out.value()];
    const std::uint64_t next = (w.mask & w.data) | (~w.mask & q);
    if (next != q) {
      set_net(out, next);
      enqueue_fanouts(out, q ^ next);
    }
  }
}

void WideSimulator::set_net(NetId net, std::uint64_t word) {
  std::uint64_t& slot = values_[net.value()];
  stats_.net_toggles[net.value()] +=
      static_cast<std::uint64_t>(std::popcount(slot ^ word));
  slot = word;
}

void WideSimulator::enqueue_fanouts(NetId net, std::uint64_t changed_lanes) {
  for (const PinRef& ref : netlist_.net(net).fanouts) {
    const Cell& cell = netlist_.cell(ref.cell);
    if (is_clock_cell(cell.kind)) {
      // Enable or clock input of a clock cell changed from the data side:
      // processed as a nested clock event after the current tick.
      clock_worklist_.push_back(ref.cell);
      continue;
    }
    if (is_register(cell.kind)) {
      if (static_cast<int>(ref.pin) == clock_pin(cell.kind)) {
        // Data driving a register clock pin — only possible in illegal
        // designs; handled as a nested clock event.
        nested_clock_changes_.push_back(net);
      } else if (is_latch(cell.kind)) {
        // A transparent latch reacts to D; FFs only react to edges.
        trigger_[ref.cell.value()] |= changed_lanes;
        if (!queued_[ref.cell.value()]) {
          queued_[ref.cell.value()] = 1;
          tick_next_.push_back(ref.cell);
        }
      }
      continue;
    }
    if (cell.kind == CellKind::kOutput || !cell.alive) continue;
    trigger_[ref.cell.value()] |= changed_lanes;
    if (!queued_[ref.cell.value()]) {
      queued_[ref.cell.value()] = 1;
      tick_next_.push_back(ref.cell);
    }
  }
}

void WideSimulator::evaluate_cell(CellId id, std::uint64_t trigger) {
  const Cell& cell = netlist_.cell(id);
  if (!cell.alive) return;
  if (++evals_this_event_ > options_.max_evals_per_event) {
    throw Error("WideSimulator: propagation did not settle (oscillation?)");
  }
  // Only lanes whose fanin changed (the trigger mask) may take the new
  // value: a lane pulled into this union wave by another lane's change
  // keeps its old output here and re-runs in the wave its own scalar
  // schedule would have used (its fanin change re-enqueued this cell).
  if (is_latch(cell.kind)) {
    const std::uint64_t gate = values_[cell.ins[1].value()];
    const std::uint64_t open =
        (cell.kind == CellKind::kLatchH ? gate : ~gate) & lane_mask_;
    const std::uint64_t q = values_[cell.out.value()];
    const std::uint64_t tracked =
        (open & values_[cell.ins[0].value()]) | (~open & q);
    const std::uint64_t next = (trigger & tracked) | (~trigger & q);
    if (next != q) {
      set_net(cell.out, next);
      enqueue_fanouts(cell.out, q ^ next);
    }
    return;
  }
  if (samples_on_edge(cell.kind)) {
    return;  // edge-sampled in update_registers
  }
  // Plain combinational gate, word-wide.
  std::uint64_t ins[3] = {};
  for (std::size_t i = 0; i < cell.ins.size(); ++i) {
    ins[i] = values_[cell.ins[i].value()];
  }
  const std::uint64_t eval =
      eval_comb_word(cell.kind, std::span<const std::uint64_t>(
                                    ins, cell.ins.size())) &
      lane_mask_;
  const std::uint64_t old = values_[cell.out.value()];
  const std::uint64_t out = (trigger & eval) | (~trigger & old);
  if (out != old) {
    set_net(cell.out, out);
    enqueue_fanouts(cell.out, old ^ out);
  }
}

void WideSimulator::propagate_data() {
  for (;;) {
    while (!tick_next_.empty()) {
      tick_now_.swap(tick_next_);
      tick_next_.clear();
      // Canonical wave order (ascending cell id), shared with the scalar
      // engine: the union wave evaluates cells in the same order every
      // lane's scalar wave would, so per-lane toggle counts decompose.
      std::sort(tick_now_.begin(), tick_now_.end());
      // Snapshot the trigger masks before any evaluation: a fanin change
      // produced *during* this wave must trigger the cell in the next wave
      // (its scalar wave membership), not retroactively in this one.
      wave_trigger_.resize(tick_now_.size());
      for (std::size_t i = 0; i < tick_now_.size(); ++i) {
        const std::size_t c = tick_now_[i].value();
        wave_trigger_[i] = trigger_[c];
        trigger_[c] = 0;
        queued_[c] = 0;
      }
      for (std::size_t i = 0; i < tick_now_.size(); ++i) {
        evaluate_cell(tick_now_[i], wave_trigger_[i]);
      }
      tick_now_.clear();
    }
    if (clock_worklist_.empty() && nested_clock_changes_.empty()) break;
    // Nested clock event (enable changed while its clock is high, or data
    // driving a clock pin): settle the clock network, update registers,
    // continue propagating.
    nested_scratch_.swap(nested_clock_changes_);
    nested_clock_changes_.clear();
    propagate_clock_network(nested_scratch_);
    update_registers(nested_scratch_);
  }
}

}  // namespace tp
