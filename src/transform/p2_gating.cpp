#include "src/transform/p2_gating.hpp"

#include <map>

#include "src/netlist/traverse.hpp"
#include "src/util/strcat.hpp"

namespace tp {
namespace {

/// The enable net gating a latch, or an invalid NetId when the latch's gate
/// chain reaches the phase root without an ICG.
NetId gating_enable(const Netlist& netlist, CellId latch) {
  NetId gate = netlist.cell(latch).ins[1];
  for (;;) {
    const CellId driver = netlist.net(gate).driver;
    if (!driver.valid()) return NetId{};
    const Cell& cell = netlist.cell(driver);
    if (is_icg(cell.kind)) return cell.ins[0];
    if (cell.kind == CellKind::kClkBuf) {
      gate = cell.ins[0];
      continue;
    }
    return NetId{};  // phase root (kInput) or anything else: ungated
  }
}

}  // namespace

Phase source_phase(const Netlist& netlist, CellId source) {
  const Cell& cell = netlist.cell(source);
  if (cell.kind == CellKind::kInput) return Phase::kP1;
  return cell.phase;
}

P2GatingResult gate_p2_latches(Netlist& netlist,
                               const P2GatingOptions& options) {
  P2GatingResult result;
  const ClockSpec& clocks = netlist.clocks();
  const NetId p2_root = clocks.root(Phase::kP2);
  const NetId p3_root = clocks.root(Phase::kP3);

  // One CG cell per distinct enable net, shared by all p2 latches it gates.
  std::map<std::uint32_t, NetId> cg_for_enable;

  for (const CellId id : netlist.registers()) {
    const Cell& latch = netlist.cell(id);
    if (latch.phase != Phase::kP2) continue;
    if (latch.ins[1] != p2_root) continue;  // already gated
    // All register fan-in sources must be gated by one common enable; a
    // primary-input source is ungated and disqualifies the latch.
    const std::vector<CellId> sources = pin_fanin_sources(netlist, id, 0);
    NetId common_enable;
    bool ok = !sources.empty();
    for (const CellId src : sources) {
      if (netlist.cell(src).kind == CellKind::kInput) {
        ok = false;
        break;
      }
      const NetId enable = gating_enable(netlist, src);
      if (!enable.valid() ||
          (common_enable.valid() && enable != common_enable)) {
        ok = false;
        break;
      }
      common_enable = enable;
    }
    if (!ok || !common_enable.valid()) continue;
    // A conventional ICG on p2 freezes its enable at the p2 rising edge
    // (T/3), after p1 latches have already updated. It is therefore only
    // safe when no p1 latch or primary input feeds the enable; the M1 cell
    // samples on p3 (closing at the p1 rising edge) and has no such
    // restriction — the correctness argument of Fig. 3(b).
    if (!options.use_m1) {
      bool p1_source = false;
      NetId en = common_enable;
      for (const CellId src :
           pin_fanin_sources_of_net(netlist, en)) {
        if (source_phase(netlist, src) == Phase::kP1) {
          p1_source = true;
          break;
        }
      }
      if (p1_source) continue;
    }

    auto it = cg_for_enable.find(common_enable.value());
    if (it == cg_for_enable.end()) {
      const std::string name =
          cat("p2cg_", netlist.net(common_enable).name);
      const NetId gclk = netlist.add_net(name);
      if (options.use_m1) {
        netlist.add_cell(CellKind::kIcgM1, name,
                         {common_enable, p2_root, p3_root}, gclk,
                         Phase::kP2);
      } else {
        netlist.add_cell(CellKind::kIcg, name, {common_enable, p2_root},
                         gclk, Phase::kP2);
      }
      it = cg_for_enable.emplace(common_enable.value(), gclk).first;
      ++result.p2_cg_cells;
    }
    netlist.replace_input(id, 1, it->second);
    ++result.p2_latches_gated;
  }
  return result;
}

M2Result apply_m2(Netlist& netlist) {
  M2Result result;
  for (const CellId id : netlist.live_cells()) {
    const Cell& cell = netlist.cell(id);
    if (cell.kind != CellKind::kIcg) continue;
    if (cell.phase != Phase::kP1 && cell.phase != Phase::kP3) continue;
    bool same_phase_source = false;
    for (const CellId src : pin_fanin_sources(netlist, id, 0)) {
      if (source_phase(netlist, src) == cell.phase) {
        same_phase_source = true;
        break;
      }
    }
    if (same_phase_source) {
      ++result.kept;
    } else {
      netlist.morph_cell(id, CellKind::kIcgNoLatch);
      ++result.converted;
    }
  }
  return result;
}

}  // namespace tp
