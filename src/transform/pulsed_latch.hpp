// Pulsed-latch conversion (the Sec. I alternative the paper argues
// against).
//
// Every flip-flop becomes a transparent-high latch driven by a short clock
// pulse: nearly edge-triggered behavior at latch cost. Pulse generators are
// shared among groups of latches (multi-bit pulsed latches, after [9]);
// gated clocks keep their ICGs, with the pulse generator placed after the
// gate.
//
// The style's known weakness appears mechanically in this flow: every
// register-to-register path must now exceed the pulse width in minimum
// delay or receive hold padding (see timing/sta.hpp) — the hold-buffer
// bill the paper cites as the reason to prefer non-overlapping 3-phase
// clocks.
#pragma once

#include "src/netlist/netlist.hpp"

namespace tp {

struct PulsedLatchOptions {
  /// High time of the pulse clock (ps). Wider pulses borrow more time but
  /// deepen the hold problem.
  std::int64_t pulse_width_ps = 120;
  /// Latches sharing one pulse generator.
  int group_size = 16;
};

struct PulsedLatchResult {
  Netlist netlist;
  int pulse_generators = 0;
};

/// Converts a copy of `ff_netlist` (pure DFFs; run clock-gating inference
/// first) to a pulsed-latch design.
PulsedLatchResult to_pulsed_latch(const Netlist& ff_netlist,
                                  const PulsedLatchOptions& options = {});

}  // namespace tp
