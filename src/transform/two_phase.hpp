// Two-phase non-overlapping latch conversion (the classic textbook
// discipline; see also arXiv 2605.05374).
//
// Every flip-flop becomes a master transparent-high latch on clkbar plus a
// slave transparent-high latch on clk, with a guard gap between the fall of
// each phase and the rise of the other. Unlike the retiming-oriented
// master-slave baseline (both latches on one net, the master open-low),
// the two phases are distributed as separate clock trees, so skew between
// them cannot create a transparency race: no instant exists where both
// latches are open.
//
// Gated clocks keep their gating: each ICG chain is duplicated per phase,
// exactly like the 3-phase conversion does.
#pragma once

#include "src/netlist/netlist.hpp"

namespace tp {

struct TwoPhaseOptions {
  /// Guard gap (ps) between one phase's fall and the other's rise. Both
  /// gaps are equal; each phase is high for T/2 - gap.
  std::int64_t nonoverlap_ps = 40;
};

struct TwoPhaseResult {
  Netlist netlist;
  /// Extra ICG copies created for the clkbar (master) clock tree.
  int duplicated_icgs = 0;
};

/// Converts a copy of `ff_netlist` (pure DFFs; run clock-gating inference
/// first) to a two-phase non-overlapping latch design.
TwoPhaseResult to_two_phase(const Netlist& ff_netlist,
                            const TwoPhaseOptions& options = {});

}  // namespace tp
