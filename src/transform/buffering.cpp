#include "src/transform/buffering.hpp"

#include "src/util/strcat.hpp"

namespace tp {

BufferingResult buffer_high_fanout(Netlist& netlist,
                                   const BufferingOptions& options) {
  BufferingResult result;
  require(options.max_fanout >= 2, "buffer_high_fanout: max_fanout < 2");
  // Snapshot net ids first: inserting buffers adds nets that are already
  // within limits.
  const std::size_t original_nets = netlist.num_nets();
  for (std::uint32_t n = 0; n < original_nets; ++n) {
    const Net& net = netlist.net(NetId{n});
    if (!net.alive || net.is_clock) continue;
    if (static_cast<int>(net.fanouts.size()) <= options.max_fanout) continue;

    ++result.nets_buffered;
    int stage = 0;
    // Repeatedly split the sink list into buffer-fed groups until the root
    // drives at most max_fanout pins (buffers included).
    while (static_cast<int>(netlist.net(NetId{n}).fanouts.size()) >
           options.max_fanout) {
      // Copy: rewiring mutates the list.
      const std::vector<PinRef> sinks = netlist.net(NetId{n}).fanouts;
      std::size_t index = 0;
      for (std::size_t start = 0; start < sinks.size();
           start += static_cast<std::size_t>(options.max_fanout)) {
        const std::size_t end =
            std::min(sinks.size(),
                     start + static_cast<std::size_t>(options.max_fanout));
        if (end - start < 2 && end == sinks.size()) break;
        const CellId buf = netlist.add_gate(
            CellKind::kBuf,
            cat(netlist.net(NetId{n}).name, "_hfb", stage, "_", index++),
            {NetId{n}});
        ++result.buffers_inserted;
        for (std::size_t i = start; i < end; ++i) {
          netlist.replace_input(sinks[i].cell, sinks[i].pin,
                                netlist.cell(buf).out);
        }
      }
      ++stage;
    }
  }
  return result;
}

}  // namespace tp
