// High-fanout net buffering (synthesis-style).
//
// The delay model is linear in load, so an unbuffered net driving hundreds
// of pins (stall/enable broadcasts, PI fanout) would dominate every path —
// just as it would in silicon. This pass rebuilds every high-fanout data
// net as a balanced buffer tree with bounded fanout per stage, mirroring
// what logic synthesis does before placement. Clock nets are excluded
// (clock-tree synthesis owns them).
#pragma once

#include "src/netlist/netlist.hpp"

namespace tp {

struct BufferingOptions {
  int max_fanout = 12;
};

struct BufferingResult {
  int buffers_inserted = 0;
  int nets_buffered = 0;
};

BufferingResult buffer_high_fanout(Netlist& netlist,
                                   const BufferingOptions& options = {});

}  // namespace tp
