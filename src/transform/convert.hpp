// FF-to-latch design conversions (Sec. IV-B).
//
// to_master_slave: the conventional baseline — every DFF becomes a
// transparent-low master plus a transparent-high slave on the same (possibly
// gated) clock net.
//
// to_three_phase: the paper's conversion — solve the phase-assignment
// problem, replace every DFF with a p1 or p3 transparent-high latch, insert
// a p2 latch at the output of every back-to-back group member and of every
// flagged primary input, and rebuild the clock network by tracing each
// gated clock back through its ICG chain, duplicating ICGs whose registers
// span two phases.
//
// Both conversions require clock-gating inference to have run first (no
// kDffEn cells remain; see clock_gating.hpp).
#pragma once

#include "src/netlist/netlist.hpp"
#include "src/phase/assignment.hpp"

namespace tp {

/// Converts a copy of `ff_netlist` to master-slave form.
Netlist to_master_slave(const Netlist& ff_netlist);

struct ThreePhaseOptions {
  AssignOptions assign;
  /// When set, skip solving and use this assignment (indices must match the
  /// register graph of the input netlist). Lets callers time the ILP apart
  /// from the netlist rebuild.
  const PhaseAssignment* precomputed = nullptr;
};

struct ThreePhaseResult {
  Netlist netlist;
  PhaseAssignment assignment;
  /// p2 latches inserted (register outputs + primary inputs).
  int inserted_p2 = 0;
  /// Extra ICG copies created because a gating group spanned p1 and p3.
  int duplicated_icgs = 0;
};

ThreePhaseResult to_three_phase(const Netlist& ff_netlist,
                                const ThreePhaseOptions& options = {});

}  // namespace tp
