// Clock-gating style inference (Fig. 2 of the paper).
//
// Benchmark generators emit enable-controlled registers as kDffEn cells (the
// RTL view). Synthesis lowers each enable group to one of two styles:
//
//   kEnabled (Fig. 2(a)): the enable becomes a recirculating mux in front of
//       a plain DFF — cheap for small groups but creates a combinational
//       self-loop on the FF, which blocks the single-latch optimization.
//   kGated (Fig. 2(b)): one integrated clock gate per enable net drives the
//       group's clock pins — the paper's preferred style, because it leaves
//       the FF graph free of enable self-loops.
//
// As in commercial synthesis, the gated style is only applied to groups of
// at least `min_icg_group` registers; smaller groups fall back to the mux.
#pragma once

#include "src/netlist/netlist.hpp"

namespace tp {

enum class CgStyle { kEnabled, kGated };

struct CgInferenceOptions {
  CgStyle style = CgStyle::kGated;
  int min_icg_group = 3;
};

struct CgInferenceResult {
  int icgs_inserted = 0;
  int muxes_inserted = 0;
  int registers_gated = 0;
};

/// Lowers every kDffEn in place; afterwards the netlist contains only kDff
/// registers (plus ICGs and muxes).
CgInferenceResult infer_clock_gating(Netlist& netlist,
                                     const CgInferenceOptions& options = {});

}  // namespace tp
