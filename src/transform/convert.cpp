#include "src/transform/convert.hpp"

#include <map>

#include "src/util/strcat.hpp"

namespace tp {
namespace {

void require_no_dffen(const Netlist& netlist, const char* what) {
  for (const CellId id : netlist.live_cells()) {
    require(netlist.cell(id).kind != CellKind::kDffEn,
            cat(what, ": run infer_clock_gating first (kDffEn present)"));
  }
}

/// Removes clock cells whose gated/buffered clock no longer drives anything,
/// then the original clock root if it became unused.
void sweep_dead_clock_cells(Netlist& netlist, NetId old_root) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const CellId id : netlist.live_cells()) {
      const Cell& cell = netlist.cell(id);
      if (is_clock_cell(cell.kind) && cell.out.valid() &&
          netlist.net(cell.out).fanouts.empty()) {
        netlist.remove_cell(id);
        changed = true;
      }
    }
  }
  const Net& root = netlist.net(old_root);
  if (root.fanouts.empty() && root.driver.valid()) {
    netlist.remove_cell(root.driver);
  }
}

}  // namespace

Netlist to_master_slave(const Netlist& ff_netlist) {
  require_no_dffen(ff_netlist, "to_master_slave");
  Netlist nl = ff_netlist;
  nl.set_name(ff_netlist.name() + "_ms");
  for (const CellId id : nl.registers()) {
    const Cell& cell = nl.cell(id);
    require(cell.kind == CellKind::kDff,
            "to_master_slave: expected a pure DFF netlist");
    const NetId d = cell.ins[0];
    const NetId ck = cell.ins[1];
    // Master: transparent while the clock is low, capturing the next state
    // at the rising edge; the original FF becomes the slave.
    const CellId master = nl.add_gate(CellKind::kLatchL, cell.name + "_m",
                                      {d, ck}, Phase::kClk);
    nl.morph_cell(id, CellKind::kLatchH, {nl.cell(master).out, ck});
  }
  return nl;
}

ThreePhaseResult to_three_phase(const Netlist& ff_netlist,
                                const ThreePhaseOptions& options) {
  require_no_dffen(ff_netlist, "to_three_phase");
  ThreePhaseResult result{.netlist = ff_netlist, .assignment = {}};
  Netlist& nl = result.netlist;
  nl.set_name(ff_netlist.name() + "_3p");

  const RegisterGraph graph = build_register_graph(nl);
  result.assignment = options.precomputed ? *options.precomputed
                                          : assign_phases(graph,
                                                          options.assign);
  validate_assignment(graph, result.assignment);

  require(nl.clocks().phases.size() == 1,
          "to_three_phase: expected a single-clock design");
  const NetId old_root = nl.clocks().phases.front().root;
  const std::int64_t period = nl.clocks().period_ps;

  // New phase roots.
  const CellId p1 = nl.add_input("p1");
  const CellId p2 = nl.add_input("p2");
  const CellId p3 = nl.add_input("p3");
  nl.set_clock_root(p1, Phase::kP1);
  nl.set_clock_root(p2, Phase::kP2);
  nl.set_clock_root(p3, Phase::kP3);
  const NetId p1_net = nl.cell(p1).out;
  const NetId p2_net = nl.cell(p2).out;
  const NetId p3_net = nl.cell(p3).out;
  nl.clocks() = three_phase_spec(period, p1_net, p2_net, p3_net);

  // Phase-specific clock source for an original clock net: the root maps to
  // the phase root; an ICG chain is duplicated per phase (Sec. IV-B). Clock
  // buffers are transparent here — CTS rebuilds buffering later.
  std::map<std::pair<std::uint32_t, std::uint32_t>, NetId> duplicated;
  std::map<std::uint32_t, int> icg_phase_uses;
  auto clock_for = [&](auto&& self, NetId original, Phase phase) -> NetId {
    if (original == old_root) {
      return phase == Phase::kP1 ? p1_net : p3_net;
    }
    const CellId driver_id = nl.net(original).driver;
    require(driver_id.valid(), "to_three_phase: undriven clock net");
    const Cell& driver = nl.cell(driver_id);
    if (driver.kind == CellKind::kClkBuf) {
      return self(self, driver.ins[0], phase);
    }
    require(is_icg(driver.kind), "to_three_phase: unexpected clock driver");
    const auto key = std::make_pair(driver_id.value(),
                                    static_cast<std::uint32_t>(phase));
    if (const auto it = duplicated.find(key); it != duplicated.end()) {
      return it->second;
    }
    const NetId parent = self(self, driver.ins[1], phase);
    const NetId out =
        nl.add_net(cat(driver.name, "_", phase_name(phase)));
    nl.add_cell(CellKind::kIcg, cat(driver.name, "_", phase_name(phase)),
                {driver.ins[0], parent}, out, phase);
    duplicated.emplace(key, out);
    ++icg_phase_uses[driver_id.value()];
    return out;
  };

  // Replace every DFF with its assigned latch.
  for (std::size_t u = 0; u < graph.regs.size(); ++u) {
    const CellId reg = graph.regs[u];
    const Cell& cell = nl.cell(reg);
    require(cell.kind == CellKind::kDff,
            "to_three_phase: expected a pure DFF netlist");
    const Phase phase = result.assignment.position_phase(static_cast<int>(u));
    const NetId gate = clock_for(clock_for, cell.ins[1], phase);
    const NetId d = cell.ins[0];
    nl.morph_cell(reg, CellKind::kLatchH, {d, gate});
    nl.set_phase(reg, phase);
  }
  // Insert p2 latches at back-to-back outputs (after all morphs so that
  // transfer_fanouts sees final pin wiring).
  for (std::size_t u = 0; u < graph.regs.size(); ++u) {
    if (!result.assignment.g[u]) continue;
    const CellId reg = graph.regs[u];
    insert_latch_after(nl, nl.cell(reg).out, p2_net, Phase::kP2,
                       nl.cell(reg).name + "_p2");
    ++result.inserted_p2;
  }
  // Interface rule: p2 latches after flagged primary inputs.
  for (std::size_t p = 0; p < graph.data_pis.size(); ++p) {
    if (!result.assignment.pi_g[p]) continue;
    const CellId pi = graph.data_pis[p];
    insert_latch_after(nl, nl.cell(pi).out, p2_net, Phase::kP2,
                       nl.cell(pi).name + "_p2");
    ++result.inserted_p2;
  }

  for (const auto& [icg, uses] : icg_phase_uses) {
    (void)icg;
    if (uses > 1) result.duplicated_icgs += uses - 1;
  }
  sweep_dead_clock_cells(nl, old_root);
  nl.validate();
  return result;
}

}  // namespace tp
