#include "src/transform/clock_gating.hpp"

#include <map>
#include <vector>

namespace tp {

CgInferenceResult infer_clock_gating(Netlist& netlist,
                                     const CgInferenceOptions& options) {
  CgInferenceResult result;

  // Group kDffEn registers by (enable net, clock net): one ICG can serve
  // exactly the registers that share both.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<CellId>>
      groups;
  for (const CellId id : netlist.live_cells()) {
    const Cell& cell = netlist.cell(id);
    if (cell.kind == CellKind::kDffEn) {
      groups[{cell.ins[1].value(), cell.ins[2].value()}].push_back(id);
    }
  }

  for (const auto& [key, members] : groups) {
    const NetId enable{key.first};
    const NetId clock{key.second};
    const bool gate = options.style == CgStyle::kGated &&
                      static_cast<int>(members.size()) >=
                          options.min_icg_group;
    if (gate) {
      const NetId gclk = netlist.add_net("gclk_" + netlist.net(enable).name);
      netlist.add_cell(CellKind::kIcg, "icg_" + netlist.net(enable).name,
                       {enable, clock}, gclk,
                       netlist.cell(members.front()).phase);
      ++result.icgs_inserted;
      for (const CellId id : members) {
        // {D, EN, CK} -> DFF {D, GCLK}.
        const NetId d = netlist.cell(id).ins[0];
        netlist.morph_cell(id, CellKind::kDff, {d, gclk});
        ++result.registers_gated;
      }
    } else {
      for (const CellId id : members) {
        // {D, EN, CK} -> DFF {mux(Q, D, EN), CK}: the recirculating mux of
        // Fig. 2(a), which puts a combinational self-loop on the FF.
        const Cell& cell = netlist.cell(id);
        const NetId d = cell.ins[0];
        const NetId q = cell.out;
        const CellId mux = netlist.add_gate(
            CellKind::kMux2, netlist.cell(id).name + "_enmux",
            {q, d, enable});
        netlist.morph_cell(id, CellKind::kDff,
                           {netlist.cell(mux).out, clock});
        ++result.muxes_inserted;
      }
    }
  }
  return result;
}

}  // namespace tp
