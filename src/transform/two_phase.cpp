#include "src/transform/two_phase.hpp"

#include <map>

#include "src/util/strcat.hpp"

namespace tp {

TwoPhaseResult to_two_phase(const Netlist& ff_netlist,
                            const TwoPhaseOptions& options) {
  TwoPhaseResult result{.netlist = ff_netlist};
  Netlist& nl = result.netlist;
  nl.set_name(ff_netlist.name() + "_2p");
  require(nl.clocks().phases.size() == 1,
          "to_two_phase: expected a single-clock design");
  const std::int64_t period = nl.clocks().period_ps;
  require(options.nonoverlap_ps >= 0 &&
              options.nonoverlap_ps < period / 2,
          "to_two_phase: non-overlap gap must fit inside a half period");

  // The original root keeps clocking the slaves (phase clk); a new root
  // clocks the masters (phase clkbar). Each phase is high for half the
  // period minus the guard gap, so neither latch is ever open while the
  // other's clock is high. The gap is carved out of each phase's LEADING
  // edge (clk high [g, T/2), clkbar high [T/2+g, T)): clkbar then stays
  // high through the cycle boundary, so the masters are open at the
  // simulator's reset park (t = T-1) and capture the settled reset state —
  // the same boundary behavior as the master-slave baseline's low-phase
  // masters. Shrinking the fall edges instead would leave the masters
  // closed at the park and start cycle 1 from latch init values.
  const NetId clk_root = nl.clocks().phases.front().root;
  const CellId clkbar = nl.add_input("clkbar");
  nl.set_clock_root(clkbar, Phase::kClkBar);
  const NetId clkbar_root = nl.cell(clkbar).out;
  nl.clocks() = two_phase_spec(period, clk_root, clkbar_root);
  for (PhaseWaveform& w : nl.clocks().phases) {
    w.rise_ps += options.nonoverlap_ps;
  }

  // clkbar-side clock source for an original (possibly gated) clock net:
  // the root maps to the new root, ICG chains are duplicated onto it. The
  // slave side reuses the original chain untouched.
  std::map<std::uint32_t, NetId> duplicated;
  auto clkbar_for = [&](auto&& self, NetId original) -> NetId {
    if (original == clk_root) return clkbar_root;
    const CellId driver_id = nl.net(original).driver;
    require(driver_id.valid(), "to_two_phase: undriven clock net");
    const Cell& driver = nl.cell(driver_id);
    if (driver.kind == CellKind::kClkBuf) {
      return self(self, driver.ins[0]);
    }
    require(is_icg(driver.kind), "to_two_phase: unexpected clock driver");
    if (const auto it = duplicated.find(driver_id.value());
        it != duplicated.end()) {
      return it->second;
    }
    const NetId parent = self(self, driver.ins[1]);
    const NetId out = nl.add_net(cat(driver.name, "_bar"));
    nl.add_cell(CellKind::kIcg, cat(driver.name, "_bar"),
                {driver.ins[0], parent}, out, Phase::kClkBar);
    duplicated.emplace(driver_id.value(), out);
    ++result.duplicated_icgs;
    return out;
  };

  for (const CellId id : nl.registers()) {
    const Cell& cell = nl.cell(id);
    require(cell.kind == CellKind::kDff,
            "to_two_phase: expected a pure DFF netlist (run "
            "infer_clock_gating first)");
    const NetId d = cell.ins[0];
    const NetId ck = cell.ins[1];
    const NetId ckb = clkbar_for(clkbar_for, ck);
    // Master: open during clkbar's high window, capturing the next state at
    // clkbar's fall; the original FF becomes the slave, presenting it when
    // clk rises at cycle start.
    const CellId master = nl.add_gate(CellKind::kLatchH, cell.name + "_m",
                                      {d, ckb}, Phase::kClkBar);
    nl.morph_cell(id, CellKind::kLatchH, {nl.cell(master).out, ck});
    nl.set_phase(id, Phase::kClk);
  }
  nl.validate();
  return result;
}

}  // namespace tp
