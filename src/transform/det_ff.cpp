#include "src/transform/det_ff.hpp"

#include <map>

#include "src/util/strcat.hpp"

namespace tp {

DetFfResult to_det_ff(const Netlist& ff_netlist) {
  DetFfResult result{.netlist = ff_netlist};
  Netlist& nl = result.netlist;
  nl.set_name(ff_netlist.name() + "_det");
  require(nl.clocks().phases.size() == 1,
          "to_det_ff: expected a single-clock design");

  // Group registers by their (possibly gated) clock net; each group shares
  // one divider at the leaf of the clock network.
  std::map<std::uint32_t, std::vector<CellId>> by_clock;
  for (const CellId id : nl.registers()) {
    const Cell& cell = nl.cell(id);
    require(cell.kind == CellKind::kDff,
            "to_det_ff: expected a pure DFF netlist (run "
            "infer_clock_gating first)");
    by_clock[cell.ins[1].value()].push_back(id);
  }
  for (const auto& [clock_net, registers] : by_clock) {
    const std::string base = nl.net(NetId{clock_net}).name;
    const NetId divided = nl.add_net(cat(base, "_div2"));
    nl.add_cell(CellKind::kClkDiv2, cat(base, "_div2"), {NetId{clock_net}},
                divided, Phase::kClk);
    ++result.dividers;
    for (const CellId id : registers) {
      nl.morph_cell(id, CellKind::kDffDet, {nl.cell(id).ins[0], divided});
      nl.set_phase(id, Phase::kClk);
    }
  }
  nl.validate();
  return result;
}

}  // namespace tp
