// Clock gating of the inserted p2 latches (Sec. IV-D, Fig. 3).
//
// Common-enable gating: a p2 latch whose fan-in latches are all gated by
// ICGs sharing one enable net EN can itself be gated by EN. The dedicated
// p2 CG cell applies modification M1: its internal latch borrows the p3
// phase instead of an inverter (kIcgM1 with CK = p2, PB = p3). EN is stable
// when the upstream latches open, so latching it on p3 is safe (Fig. 3(b)).
//
// Modification M2: a conventional ICG driving p1 or p3 latches can drop its
// internal latch (kIcgNoLatch) when no enable path starts from a latch of
// the same phase — then EN is guaranteed stable while the gated phase is
// high and clock hazards cannot occur. Primary inputs change at the p1
// opening edge and therefore count as p1-phase sources.
#pragma once

#include "src/netlist/netlist.hpp"

namespace tp {

struct P2GatingOptions {
  /// Use the M1 cell (no inverter) for p2 CGs; false = conventional ICG
  /// (ablation knob).
  bool use_m1 = true;
};

struct P2GatingResult {
  int p2_cg_cells = 0;   // CG cells added for p2 latches
  int p2_latches_gated = 0;
};

/// Applies common-enable gating to p2 latches of a converted 3-phase design.
P2GatingResult gate_p2_latches(Netlist& netlist,
                               const P2GatingOptions& options = {});

struct M2Result {
  int converted = 0;  // ICGs whose internal latch was removed
  int kept = 0;       // ICGs that must keep the latch (same-phase source)
};

/// Applies modification M2 to the p1/p3 ICGs of a 3-phase design.
M2Result apply_m2(Netlist& netlist);

/// Phase of a register/PI source as seen by the M2 analysis (PIs are p1).
Phase source_phase(const Netlist& netlist, CellId source);

}  // namespace tp
