// Dual-edge-triggered flip-flop retarget (arXiv 1307.3075).
//
// Registers keep edge-triggered semantics, but the clock distributed to
// them runs at half frequency: a divide-by-two cell is inserted on every
// distinct (possibly gated) clock net feeding register clock pins, and the
// flip-flops are swapped for dual-edge-triggered cells that sample on both
// edges of the divided clock. One toggle per cycle reaches each register
// clock pin instead of two, roughly halving clock-network switching power,
// at the cost of a larger sequencing cell.
//
// Dividers sit at the leaves of the clock network — after all ICGs — so
// clock gating is untouched: a gated-off net produces no rising edge, the
// divider holds, and the DET FF sees no toggle. The divided clock carries
// the same phase tag as its source, and a DET FF still samples exactly
// once per cycle (at the source's rise), so converted designs stay
// stream-identical to the flip-flop baseline.
#pragma once

#include "src/netlist/netlist.hpp"

namespace tp {

struct DetFfResult {
  Netlist netlist;
  /// Divide-by-two cells inserted (one per distinct register clock net).
  int dividers = 0;
};

/// Converts a copy of `ff_netlist` (pure DFFs; run clock-gating inference
/// first) to a dual-edge-triggered design on a divided clock.
DetFfResult to_det_ff(const Netlist& ff_netlist);

}  // namespace tp
