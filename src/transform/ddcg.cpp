#include "src/transform/ddcg.hpp"

#include <algorithm>

#include "src/util/strcat.hpp"

namespace tp {
namespace {

/// Balanced OR-tree over `signals` (kOr2/kOr3).
NetId or_tree(Netlist& netlist, std::vector<NetId> signals,
              const std::string& name) {
  require(!signals.empty(), "or_tree: no inputs");
  int stage = 0;
  while (signals.size() > 1) {
    std::vector<NetId> next;
    std::size_t i = 0;
    while (i < signals.size()) {
      const std::size_t left = signals.size() - i;
      if (left == 1) {
        next.push_back(signals[i]);
        i += 1;
      } else if (left == 3 || left % 3 == 0) {
        next.push_back(netlist.cell(netlist.add_gate(
                                        CellKind::kOr3,
                                        cat(name, "_or", stage, "_", i),
                                        {signals[i], signals[i + 1],
                                         signals[i + 2]}))
                           .out);
        i += 3;
      } else {
        next.push_back(netlist.cell(netlist.add_gate(
                                        CellKind::kOr2,
                                        cat(name, "_or", stage, "_", i),
                                        {signals[i], signals[i + 1]}))
                           .out);
        i += 2;
      }
    }
    signals = std::move(next);
    ++stage;
  }
  return signals.front();
}

}  // namespace

DdcgResult apply_ddcg(Netlist& netlist, const ActivityStats& activity,
                      const DdcgOptions& options) {
  DdcgResult result;
  const ClockSpec& clocks = netlist.clocks();
  const NetId p1_root = clocks.root(Phase::kP1);
  const NetId p2_root = clocks.root(Phase::kP2);

  struct Candidate {
    CellId latch;
    double rate;
  };
  std::vector<Candidate> candidates;
  for (const CellId id : netlist.registers()) {
    const Cell& latch = netlist.cell(id);
    if (latch.phase != Phase::kP2 || latch.ins[1] != p2_root) continue;
    const double rate = activity.toggle_rate(latch.ins[0]);
    if (rate < options.toggle_threshold) candidates.push_back({id, rate});
  }
  // Group latches with similar (low, correlated) toggle rates.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.rate != b.rate ? a.rate < b.rate
                                      : a.latch < b.latch;
            });

  for (std::size_t start = 0; start < candidates.size();
       start += static_cast<std::size_t>(options.max_fanout)) {
    const std::size_t end =
        std::min(candidates.size(),
                 start + static_cast<std::size_t>(options.max_fanout));
    const std::string group_name = cat("ddcg", result.groups);
    std::vector<NetId> diffs;
    for (std::size_t i = start; i < end; ++i) {
      const Cell& latch = netlist.cell(candidates[i].latch);
      const CellId x =
          netlist.add_gate(CellKind::kXor2,
                           cat(group_name, "_x", i - start),
                           {latch.ins[0], latch.out});
      diffs.push_back(netlist.cell(x).out);
      ++result.xor_cells;
    }
    const NetId enable = or_tree(netlist, std::move(diffs), group_name);
    const NetId gclk = netlist.add_net(group_name + "_gclk");
    if (options.use_m1) {
      // Unlike the common-enable CG (which samples on p3), the data-driven
      // enable XORs p1-latch outputs that settle during [0, T/3); the M1
      // cell therefore borrows p1, freezing the decision exactly when p2
      // opens.
      netlist.add_cell(CellKind::kIcgM1, group_name + "_cg",
                       {enable, p2_root, p1_root}, gclk, Phase::kP2);
    } else {
      netlist.add_cell(CellKind::kIcg, group_name + "_cg",
                       {enable, p2_root}, gclk, Phase::kP2);
    }
    for (std::size_t i = start; i < end; ++i) {
      netlist.replace_input(candidates[i].latch, 1, gclk);
      ++result.latches_gated;
    }
    ++result.groups;
  }
  return result;
}

}  // namespace tp
