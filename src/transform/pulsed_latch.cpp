#include "src/transform/pulsed_latch.hpp"

#include <map>

#include "src/util/strcat.hpp"

namespace tp {

PulsedLatchResult to_pulsed_latch(const Netlist& ff_netlist,
                                  const PulsedLatchOptions& options) {
  PulsedLatchResult result{.netlist = ff_netlist};
  Netlist& nl = result.netlist;
  nl.set_name(ff_netlist.name() + "_pl");
  require(nl.clocks().phases.size() == 1,
          "to_pulsed_latch: expected a single-clock design");

  // The clock root becomes a pulse: high [0, W). Registers keep their
  // logical sampling edge at t = 0.
  const PhaseWaveform root_wave = nl.clocks().phases.front();
  nl.clocks() =
      single_phase_spec(nl.clocks().period_ps, root_wave.root);
  nl.clocks().phases.front().fall_ps = options.pulse_width_ps;

  // Group registers by their (possibly gated) clock net; each group of at
  // most group_size latches shares one pulse generator, modeled as a clock
  // buffer whose output is the locally generated pulse.
  std::map<std::uint32_t, std::vector<CellId>> by_clock;
  for (const CellId id : nl.registers()) {
    const Cell& cell = nl.cell(id);
    require(cell.kind == CellKind::kDff,
            "to_pulsed_latch: expected a pure DFF netlist (run "
            "infer_clock_gating first)");
    by_clock[cell.ins[1].value()].push_back(id);
  }
  for (const auto& [clock_net, registers] : by_clock) {
    for (std::size_t start = 0; start < registers.size();
         start += static_cast<std::size_t>(options.group_size)) {
      const std::size_t end =
          std::min(registers.size(),
                   start + static_cast<std::size_t>(options.group_size));
      const NetId pulse = nl.add_net(cat(nl.net(NetId{clock_net}).name,
                                         "_pgen", result.pulse_generators));
      nl.add_cell(CellKind::kClkBuf,
                  cat(nl.net(NetId{clock_net}).name, "_pgen",
                      result.pulse_generators),
                  {NetId{clock_net}}, pulse, Phase::kClk);
      ++result.pulse_generators;
      for (std::size_t i = start; i < end; ++i) {
        const Cell& cell = nl.cell(registers[i]);
        nl.morph_cell(registers[i], CellKind::kLatchP,
                      {cell.ins[0], pulse});
        nl.set_phase(registers[i], Phase::kClk);
      }
    }
  }
  nl.validate();
  return result;
}

}  // namespace tp
