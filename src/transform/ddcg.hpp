// Multi-bit data-driven clock gating for the remaining ungated p2 latches
// (Sec. IV-D, after [24]).
//
// For each candidate latch an XOR compares D and Q; the per-latch comparison
// signals of a group are OR-ed into one enable that drives a shared p2 CG
// cell (M1 style, borrowing the p1 phase so that the decision freezes when
// p2 opens). The clock only pulses when at least one latch in the
// group would change. Grouping follows the paper: candidates are latches
// whose data toggles in less than `toggle_threshold` of cycles; they are
// sorted by toggle rate (grouping correlated low-activity latches) and split
// into groups of at most `max_fanout` (32 in the paper).
#pragma once

#include "src/netlist/netlist.hpp"
#include "src/sim/simulator.hpp"

namespace tp {

struct DdcgOptions {
  double toggle_threshold = 0.01;  // toggles per cycle
  int max_fanout = 32;
  bool use_m1 = true;
};

struct DdcgResult {
  int groups = 0;
  int latches_gated = 0;
  int xor_cells = 0;
};

/// Applies multi-bit DDCG to the p2 latches of a converted 3-phase design
/// that are still clocked straight from the p2 root. `activity` must come
/// from a simulation of this same netlist.
DdcgResult apply_ddcg(Netlist& netlist, const ActivityStats& activity,
                      const DdcgOptions& options = {});

}  // namespace tp
