// Dinic max-flow on integer capacities; used by the retiming min-cut.
#pragma once

#include <cstdint>
#include <vector>

namespace tp {

class MaxFlow {
 public:
  static constexpr std::int64_t kInf = 1'000'000'000;

  explicit MaxFlow(int num_nodes);

  /// Adds a directed edge u -> v with the given capacity; returns the edge
  /// index (its residual twin is index ^ 1).
  int add_edge(int u, int v, std::int64_t capacity);

  /// Runs Dinic from s to t; returns the max-flow value.
  std::int64_t solve(int s, int t);

  /// After solve(): nodes reachable from s in the residual graph (the
  /// source side of a minimum cut).
  [[nodiscard]] std::vector<std::uint8_t> min_cut_side(int s) const;

  struct Edge {
    int to;
    std::int64_t cap;
  };
  [[nodiscard]] const Edge& edge(int index) const { return edges_[index]; }

 private:
  bool bfs(int s, int t);
  std::int64_t dfs(int u, int t, std::int64_t pushed);

  std::vector<Edge> edges_;
  std::vector<std::vector<int>> adj_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace tp
