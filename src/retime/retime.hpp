// Modified retiming of the inserted latches (Sec. IV-C).
//
// The paper maps p1/p3 latches to FFs on clk, the inserted p2 latches to
// FFs on clkbar, and retimes only the clkbar FFs so that both halves of
// every split stage meet Tc/2. This module realizes the same objective
// directly on the latch netlist as a delay-legal minimum net cut:
//
//  1. Bypass every movable latch (p2 latches of a 3-phase design, or slave
//     latches of a master-slave design), remembering its gate net.
//  2. The retiming region is the combinational cone from the bypassed latch
//     inputs ("sources") to register data pins, primary outputs, and ICG
//     enable pins ("sinks"). A net is a legal latch position when
//       - its source-side arrival plus the latch setup fits in Tc/2, and
//       - the latch clk-to-q plus its sink-side tail fits in Tc/2, and
//       - no non-movable register feeds it (that path must stay latch-free),
//       - all movable sources feeding it share one gate net (only relevant
//         for gated slaves; p2 latches are gated after retiming).
//     Source nets are always legal, guaranteeing feasibility.
//  3. Minimum s-t cut over legal nets (node-split, infinite structural arcs
//     with infinite reverse arcs so the cut is predecessor-closed and every
//     source-to-sink path is cut exactly once). Reconvergent cones can merge
//     latches, so retiming can reduce the latch count.
//  4. Latches are re-inserted on the cut nets.
#pragma once

#include "src/library/cell_library.hpp"
#include "src/netlist/netlist.hpp"

namespace tp::util {
class Executor;
}  // namespace tp::util

namespace tp {

struct RetimeOptions {
  /// Which latches move: phase kP2 (3-phase designs) or the slave side of a
  /// master-slave design (phase kClk transparent-high latches).
  Phase movable_phase = Phase::kP2;
  /// Safety margin subtracted from each Tc/2 half-budget (ps); absorbs
  /// time borrowed by the launching latch, which the cut labels do not
  /// track.
  double margin_ps = 120.0;
  /// Seed launch arrivals at the launcher's closing edge instead of its
  /// opening edge — the worst case when upstream stages borrow heavily.
  /// More conservative cuts, used as a timing-closure fallback.
  bool assume_full_borrowing = false;
  bool enabled = true;
  /// Parallelize the independent pieces of candidate evaluation: the two
  /// reachability sweeps (retiming region, PI taint) run as a concurrent
  /// pair, and the per-net legality of every candidate latch position is
  /// evaluated in chunked pool tasks (each candidate is a pure function of
  /// the settled labels, written to its own slot). The cut itself and the
  /// label fixpoints stay serial, so the result is bit-identical to the
  /// serial run at any thread count. Not owned.
  util::Executor* executor = nullptr;
};

struct RetimeResult {
  int latches_before = 0;
  int latches_after = 0;
  int moved = 0;  // cut nets that are not original positions
};

/// Retimes the movable latches of `netlist` in place.
RetimeResult retime_inserted_latches(Netlist& netlist,
                                     const CellLibrary& library,
                                     const RetimeOptions& options = {});

}  // namespace tp
