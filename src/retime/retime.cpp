#include "src/retime/retime.hpp"

#include <algorithm>
#include <future>
#include <unordered_map>

#include "src/netlist/traverse.hpp"
#include "src/retime/maxflow.hpp"
#include "src/util/executor.hpp"
#include "src/util/strcat.hpp"

namespace tp {
namespace {

constexpr std::uint32_t kNoGate = kInvalidIndex;
constexpr std::uint32_t kMixedGate = kInvalidIndex - 1;

std::uint32_t combine_gates(std::uint32_t a, std::uint32_t b) {
  if (a == kNoGate) return b;
  if (b == kNoGate) return a;
  return a == b ? a : kMixedGate;
}

}  // namespace

RetimeResult retime_inserted_latches(Netlist& netlist,
                                     const CellLibrary& library,
                                     const RetimeOptions& options) {
  RetimeResult result;
  if (!options.enabled) return result;

  // Movable latches: transparent-high latches on the movable phase. In a
  // master-slave design (phase kClk) these are exactly the slaves.
  std::vector<CellId> movable;
  for (const CellId id : netlist.registers()) {
    const Cell& cell = netlist.cell(id);
    if (cell.kind == CellKind::kLatchH &&
        cell.phase == options.movable_phase) {
      movable.push_back(id);
    }
  }
  result.latches_before = static_cast<int>(movable.size());
  if (movable.empty()) return result;

  // 1. Bypass: downstream logic reconnects to the latch input.
  std::unordered_map<std::uint32_t, std::uint32_t> source_gate;  // net -> gate
  std::unordered_map<std::uint32_t, std::string> source_name;
  std::unordered_map<std::uint32_t, std::uint8_t> source_init;
  for (const CellId id : movable) {
    const Cell& cell = netlist.cell(id);
    const NetId q = cell.ins[0];
    const NetId q2 = cell.out;
    const NetId gate = cell.ins[1];
    const std::string name = cell.name;
    const std::uint8_t init = cell.init;
    netlist.remove_cell(id);
    netlist.transfer_fanouts(q2, q);
    netlist.remove_net(q2);
    source_gate.emplace(q.value(), gate.value());
    source_name.emplace(q.value(), name);
    source_init.emplace(q.value(), init);
  }

  // 2. Region discovery: nets reachable forward from the sources through
  //    data combinational cells. Sinks are consumer pins on registers,
  //    primary outputs, and clock cells (ICG enables).
  std::vector<std::uint8_t> in_region(netlist.num_nets(), 0);
  const auto sweep_region = [&] {
    std::vector<NetId> stack;
    for (const auto& [net, gate] : source_gate) {
      (void)gate;
      in_region[net] = 1;
      stack.push_back(NetId{net});
    }
    while (!stack.empty()) {
      const NetId net = stack.back();
      stack.pop_back();
      for (const PinRef& ref : netlist.net(net).fanouts) {
        const Cell& sink = netlist.cell(ref.cell);
        if (is_combinational(sink.kind) && !is_clock_cell(sink.kind) &&
            sink.out.valid() && !in_region[sink.out.value()]) {
          in_region[sink.out.value()] = 1;
          stack.push_back(sink.out);
        }
      }
    }
  };

  // PI taint: a gated latch holds its output while disabled, so moving it
  // past a merge with a primary-input signal would freeze a value the
  // original design recomputes every cycle. Nets with PI contributions are
  // only legal for latches clocked straight from a phase root.
  std::vector<std::uint8_t> pi_taint(netlist.num_nets(), 0);
  const auto sweep_taint = [&] {
    std::vector<NetId> stack;
    for (const CellId pi : netlist.data_inputs()) {
      const NetId q = netlist.cell(pi).out;
      pi_taint[q.value()] = 1;
      stack.push_back(q);
    }
    while (!stack.empty()) {
      const NetId net = stack.back();
      stack.pop_back();
      for (const PinRef& ref : netlist.net(net).fanouts) {
        const Cell& sink = netlist.cell(ref.cell);
        if (is_combinational(sink.kind) && !is_clock_cell(sink.kind) &&
            sink.out.valid() && !pi_taint[sink.out.value()]) {
          pi_taint[sink.out.value()] = 1;
          stack.push_back(sink.out);
        }
      }
    }
  };
  // The two sweeps read the same frozen netlist and write disjoint arrays,
  // so they run as a concurrent pair when a pool is available.
  if (options.executor != nullptr) {
    auto future = options.executor->submit(sweep_region);
    sweep_taint();
    options.executor->wait(std::move(future));
  } else {
    sweep_region();
    sweep_taint();
  }
  std::vector<std::uint8_t> always_on(netlist.num_nets(), 0);
  for (const PhaseWaveform& w : netlist.clocks().phases) {
    always_on[w.root.value()] = 1;
  }

  // Inserting a movable-phase latch on a path launched by a non-movable
  // latch is functionally transparent in this scheme (the inserted window
  // nests between the launcher's closing edge and the capture edge, passing
  // the same cycle's value), so unlike classic retiming no "taint" rule is
  // needed — only delay legality, evaluated in absolute time across every
  // launch class below.

  // 3. Delay labels and gate-consistency over the region.
  //
  // Absolute-time arrivals over the whole netlist (registers depart when
  // their window opens, or at its close under assume_full_borrowing), plus
  // region-restricted tails to the stage sinks. A net is a legal latch
  // position when data settles before the movable window closes and the
  // relaunched data reaches every capture by the end of the cycle:
  //     arr(n) + setup  <= close_m - margin
  //     open_m + d2q + tail(n) <= Tc - margin
  const Levelization lev = levelize(netlist);
  const auto period = static_cast<double>(netlist.clocks().period_ps);
  const PhaseWaveform* movable_wave =
      netlist.clocks().find(options.movable_phase);
  require(movable_wave != nullptr, "retime: movable phase has no waveform");
  // Transparent-high latches open at the rise; the full transparency window
  // is [rise, fall].
  const double open_m = static_cast<double>(movable_wave->rise_ps);
  const double close_m = static_cast<double>(movable_wave->fall_ps);
  const CellParams& latch_params = library.params(CellKind::kLatchH);

  // Launch seeds are normalized to the capture frame of the movable
  // window: a launcher whose window opens at or after close_m launched in
  // the previous cycle (e.g. p3 latches are valid T/3 before cycle start
  // relative to the p2 capture; masters half a cycle before the slave
  // close).
  std::vector<double> launch_seed(netlist.num_nets(), 0);
  for (const CellId id : netlist.registers()) {
    const Cell& cell = netlist.cell(id);
    const PhaseWaveform* w = netlist.clocks().find(cell.phase);
    if (!w) continue;
    const double open = cell.kind == CellKind::kLatchL
                            ? static_cast<double>(w->fall_ps)
                            : static_cast<double>(w->rise_ps);
    const double close = cell.kind == CellKind::kLatchL
                             ? static_cast<double>(w->rise_ps) + period
                             : static_cast<double>(w->fall_ps);
    double normalized;
    if (options.assume_full_borrowing) {
      // Worst case: the launcher holds data until its window closes.
      normalized = close_m > close ? close : close - period;
    } else {
      normalized = close_m > open ? open : open - period;
    }
    launch_seed[cell.out.value()] =
        normalized + library.delay_ps(cell.kind,
                                      library.net_load_ff(netlist, cell.out));
  }
  for (const CellId pi : netlist.data_inputs()) {
    launch_seed[netlist.cell(pi).out.value()] = 60.0;  // external inputs
  }

  std::vector<std::uint32_t> gate_label(netlist.num_nets(), kNoGate);
  for (const auto& [net, gate] : source_gate) gate_label[net] = gate;
  for (const CellId id : lev.comb_order) {
    const Cell& cell = netlist.cell(id);
    if (!cell.out.valid() || !in_region[cell.out.value()]) continue;
    std::uint32_t g = kNoGate;
    for (const NetId in : cell.ins) {
      if (in_region[in.value()]) g = combine_gates(g, gate_label[in.value()]);
    }
    gate_label[cell.out.value()] = g;
  }

  // Arrival labels, relaunch-aware: any net that is a legal latch position
  // may hold data until the movable window opens and relaunch it, so its
  // consumers must absorb max(arrival, open + d2q). Legality depends on the
  // arrivals, so iterate to a fixpoint (arrivals only grow, the legal set
  // only shrinks).
  std::vector<double> arrival(netlist.num_nets(), 0);
  std::vector<std::uint8_t> delay_legal(netlist.num_nets(), 1);
  for (int iteration = 0; iteration < 8; ++iteration) {
    auto relaunched = [&](NetId net) {
      double a = in_region[net.value()] ? arrival[net.value()]
                                        : launch_seed[net.value()];
      if (in_region[net.value()] && delay_legal[net.value()]) {
        a = std::max(a, open_m + library.delay_ps(
                                     CellKind::kLatchH,
                                     library.net_load_ff(netlist, net)));
      }
      return a;
    };
    for (const auto& [net, gate] : source_gate) {
      (void)gate;
      arrival[net] = launch_seed[net];
    }
    for (const CellId id : lev.comb_order) {
      const Cell& cell = netlist.cell(id);
      if (!cell.out.valid() || !in_region[cell.out.value()]) continue;
      const double delay = library.delay_ps(
          cell.kind, library.net_load_ff(netlist, cell.out));
      double a = 0;
      for (const NetId in : cell.ins) a = std::max(a, relaunched(in));
      arrival[cell.out.value()] = a + delay;
    }
    bool changed = false;
    for (std::uint32_t n = 0; n < netlist.num_nets(); ++n) {
      if (!in_region[n]) continue;
      const bool ok =
          arrival[n] + latch_params.setup_ps <= close_m - options.margin_ps;
      if (delay_legal[n] && !ok) {
        delay_legal[n] = 0;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Tails, reverse topological over the region. Sinks contribute their
  // setup (registers) or zero (POs, ICG enables).
  std::vector<double> tail(netlist.num_nets(), 0);
  auto seed_tail = [&](NetId net) {
    double t = tail[net.value()];
    for (const PinRef& ref : netlist.net(net).fanouts) {
      const Cell& sink = netlist.cell(ref.cell);
      if (is_register(sink.kind) &&
          static_cast<int>(ref.pin) != clock_pin(sink.kind)) {
        t = std::max(t, library.params(sink.kind).setup_ps);
      }
    }
    tail[net.value()] = t;
  };
  for (auto it = lev.comb_order.rbegin(); it != lev.comb_order.rend(); ++it) {
    const Cell& cell = netlist.cell(*it);
    if (!cell.out.valid() || !in_region[cell.out.value()]) continue;
    seed_tail(cell.out);
    const double delay = library.delay_ps(
        cell.kind, library.net_load_ff(netlist, cell.out));
    for (const NetId in : cell.ins) {
      if (!in_region[in.value()]) continue;
      tail[in.value()] =
          std::max(tail[in.value()], delay + tail[cell.out.value()]);
    }
  }
  for (const auto& [net, gate] : source_gate) {
    (void)gate;
    seed_tail(NetId{net});
  }

  // Candidate evaluation: each region net is an independent latch-position
  // "move", a pure function of the settled labels above — so the legality
  // checks run as chunked pool tasks into disjoint slots (identical to the
  // serial loop at any thread count).
  std::vector<NetId> region_nets;
  for (std::uint32_t n = 0; n < netlist.num_nets(); ++n) {
    if (in_region[n]) region_nets.push_back(NetId{n});
  }
  std::vector<std::uint8_t> position_legal(netlist.num_nets(), 0);
  util::parallel_chunks(
      options.executor, region_nets.size(), 2048,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const NetId net = region_nets[i];
          const std::uint32_t gate = gate_label[net.value()];
          if (gate == kMixedGate) continue;
          if (pi_taint[net.value()] &&
              !(gate != kNoGate && always_on[gate])) {
            continue;
          }
          const double d2q =
              library.delay_ps(CellKind::kLatchH,
                               library.net_load_ff(netlist, net));
          position_legal[net.value()] = static_cast<std::uint8_t>(
              delay_legal[net.value()] &&
              open_m + d2q + tail[net.value()] <=
                  period - options.margin_ps);
        }
      });
  auto legal = [&](NetId net) { return position_legal[net.value()] != 0; };

  // 4. Flow network: node-split region nets (split arc = latch position),
  //    infinite structural arcs between nets. A plain min-cut suffices: see
  //    the capacity comments below and docs/theory.md §4.
  std::unordered_map<std::uint32_t, int> node_of;  // net -> in-node
  int next_node = 2;                               // 0 = S, 1 = T
  for (std::uint32_t n = 0; n < netlist.num_nets(); ++n) {
    if (in_region[n]) {
      node_of.emplace(n, next_node);
      next_node += 2;
    }
  }
  MaxFlow flow(next_node);
  const int source_node = 0, sink_node = 1;
  std::vector<std::pair<std::uint32_t, int>> split_edges;  // net, edge index
  // Original latch positions are always *feasible* (the conversion placed
  // latches there), but when they violate the Tc/2 halves they carry a high
  // finite cost so the min-cut prefers a legal interior cut even at the
  // price of extra latches — the timing-first behavior of the paper's
  // FF-based retiming, and the mechanism behind its observation that
  // retiming can increase area.
  constexpr std::int64_t kIllegalSourceCost = 1000;
  for (const auto& [n, in_node] : node_of) {
    const int out_node = in_node + 1;
    const bool is_source = source_gate.count(n) != 0;
    const std::int64_t cap =
        legal(NetId{n}) ? 1
                        : (is_source ? kIllegalSourceCost : MaxFlow::kInf);
    const int e = flow.add_edge(in_node, out_node, cap);
    split_edges.push_back({n, e});
    if (source_gate.count(n)) flow.add_edge(source_node, in_node, MaxFlow::kInf);
    for (const PinRef& ref : netlist.net(NetId{n}).fanouts) {
      const Cell& sink = netlist.cell(ref.cell);
      const bool is_sink_pin =
          sink.kind == CellKind::kOutput || is_clock_cell(sink.kind) ||
          (is_register(sink.kind) &&
           static_cast<int>(ref.pin) != clock_pin(sink.kind));
      if (is_sink_pin) {
        flow.add_edge(out_node, sink_node, MaxFlow::kInf);
      } else if (is_combinational(sink.kind) && sink.out.valid() &&
                 in_region[sink.out.value()]) {
        // Plain min-cut: the cut guarantees every source-to-sink path
        // crosses at least one inserted latch. Crossing more than one is
        // harmless — same-phase transparent latches in series pass the same
        // value in the same window, so a chain behaves like a single latch
        // (mixed-gate positions are excluded by the legality rule).
        flow.add_edge(out_node, node_of.at(sink.out.value()),
                      MaxFlow::kInf);
      }
    }
  }
  const std::int64_t cut = flow.solve(source_node, sink_node);
  require(cut < MaxFlow::kInf, "retime: no finite latch cut found");
  const std::vector<std::uint8_t> side = flow.min_cut_side(source_node);
  // Collect the cut.
  std::vector<NetId> cut_nets;
  for (const auto& [n, e] : split_edges) {
    (void)e;
    const int in_node = node_of.at(n);
    if (side[static_cast<std::size_t>(in_node)] &&
        !side[static_cast<std::size_t>(in_node + 1)]) {
      cut_nets.push_back(NetId{n});
    }
  }

  // 5. Re-insert latches on the cut nets. Forward retiming changes the
  // state encoding: a moved latch's reset value is the combinational
  // function of the bypassed latches' original init values evaluated at its
  // cut net (source nets pinned to those inits); an unmoved latch keeps its
  // own init.
  const std::vector<std::uint8_t> reset_values =
      reset_net_values(netlist, &source_init);
  int inserted = 0;
  for (const auto& [n, e] : split_edges) {
    const int in_node = node_of.at(n);
    if (!side[static_cast<std::size_t>(in_node)] ||
        side[static_cast<std::size_t>(in_node + 1)]) {
      continue;
    }
    const NetId net{n};
    const auto src_it = source_gate.find(n);
    const NetId gate = src_it != source_gate.end()
                           ? NetId{src_it->second}
                           : NetId{gate_label[n] != kNoGate &&
                                           gate_label[n] != kMixedGate
                                       ? gate_label[n]
                                       : source_gate.begin()->second};
    const std::string name =
        src_it != source_gate.end()
            ? source_name.at(n)
            : cat(netlist.net(net).name, "_", phase_name(options.movable_phase),
                  "r");
    const CellId latch =
        insert_latch_after(netlist, net, gate, options.movable_phase, name);
    netlist.set_init(latch, src_it != source_gate.end()
                                ? source_init.at(n) != 0
                                : reset_values[net.value()] != 0);
    ++inserted;
    if (src_it == source_gate.end()) ++result.moved;
  }
  result.latches_after = inserted;
  require(inserted == static_cast<int>(cut_nets.size()),
          "retime: cut extraction mismatch");
  netlist.validate();
  return result;
}

}  // namespace tp
