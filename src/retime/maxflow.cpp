#include "src/retime/maxflow.hpp"

#include <algorithm>

#include "src/util/log.hpp"

namespace tp {

MaxFlow::MaxFlow(int num_nodes)
    : adj_(static_cast<std::size_t>(num_nodes)),
      level_(static_cast<std::size_t>(num_nodes)),
      iter_(static_cast<std::size_t>(num_nodes)) {}

int MaxFlow::add_edge(int u, int v, std::int64_t capacity) {
  const int index = static_cast<int>(edges_.size());
  edges_.push_back({v, capacity});
  edges_.push_back({u, 0});
  adj_[static_cast<std::size_t>(u)].push_back(index);
  adj_[static_cast<std::size_t>(v)].push_back(index + 1);
  return index;
}

bool MaxFlow::bfs(int s, int t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::vector<int> queue{s};
  level_[static_cast<std::size_t>(s)] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int u = queue[head];
    for (const int e : adj_[static_cast<std::size_t>(u)]) {
      const Edge& edge = edges_[static_cast<std::size_t>(e)];
      if (edge.cap > 0 && level_[static_cast<std::size_t>(edge.to)] < 0) {
        level_[static_cast<std::size_t>(edge.to)] =
            level_[static_cast<std::size_t>(u)] + 1;
        queue.push_back(edge.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(t)] >= 0;
}

std::int64_t MaxFlow::dfs(int u, int t, std::int64_t pushed) {
  if (u == t) return pushed;
  auto& it = iter_[static_cast<std::size_t>(u)];
  for (; it < adj_[static_cast<std::size_t>(u)].size(); ++it) {
    const int e = adj_[static_cast<std::size_t>(u)][it];
    Edge& edge = edges_[static_cast<std::size_t>(e)];
    if (edge.cap <= 0 ||
        level_[static_cast<std::size_t>(edge.to)] !=
            level_[static_cast<std::size_t>(u)] + 1) {
      continue;
    }
    const std::int64_t got =
        dfs(edge.to, t, std::min(pushed, edge.cap));
    if (got > 0) {
      edge.cap -= got;
      edges_[static_cast<std::size_t>(e ^ 1)].cap += got;
      return got;
    }
  }
  return 0;
}

std::int64_t MaxFlow::solve(int s, int t) {
  require(s != t, "MaxFlow: s == t");
  std::int64_t flow = 0;
  while (bfs(s, t)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    while (const std::int64_t pushed = dfs(s, t, kInf)) {
      flow += pushed;
      if (flow >= kInf) return flow;  // effectively infinite
    }
  }
  return flow;
}

std::vector<std::uint8_t> MaxFlow::min_cut_side(int s) const {
  std::vector<std::uint8_t> side(adj_.size(), 0);
  std::vector<int> queue{s};
  side[static_cast<std::size_t>(s)] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int u = queue[head];
    for (const int e : adj_[static_cast<std::size_t>(u)]) {
      const Edge& edge = edges_[static_cast<std::size_t>(e)];
      if (edge.cap > 0 && !side[static_cast<std::size_t>(edge.to)]) {
        side[static_cast<std::size_t>(edge.to)] = 1;
        queue.push_back(edge.to);
      }
    }
  }
  return side;
}

}  // namespace tp
