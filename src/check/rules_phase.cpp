// Phase-discipline rules over the register adjacency graph: the C2
// transparency race, the C1/phase-order audit (dropped p2 latches, direct
// PI-to-p1 paths), latch self-loops, and clock-schedule sanity (C3).
#include "src/check/rules.hpp"
#include "src/util/strcat.hpp"

namespace tp::check {
namespace {

Phase traced_phase(RuleContext& ctx, const Cell& cell) {
  const ClockTrace& trace = ctx.clock_trace(cell.ins[clock_pin(cell.kind)]);
  if (trace.kind != ClockTraceKind::kPhaseRoot || trace.inverted) {
    return Phase::kNone;
  }
  return trace.phase;
}

std::string window_text(const WindowSet& window) {
  std::string out;
  for (int i = 0; i < window.n; ++i) {
    if (!out.empty()) out += "+";
    out += cat("[", window.span[i][0], ",", window.span[i][1], ")");
  }
  return out;
}

}  // namespace

void rule_transparency_race(RuleContext& ctx) {
  const Netlist& netlist = ctx.netlist();
  const ClockSpec& clocks = netlist.clocks();
  // C2 is a property of the 3-phase schedule. The clk/clkbar master-slave
  // intermediate deliberately nests same-phase transparent latches during
  // slave retiming (delay-verified time borrowing, see retime.cpp), so
  // window overlap is only statically illegal under a 3-phase plan.
  if (clocks.find(Phase::kP1) == nullptr ||
      clocks.find(Phase::kP2) == nullptr ||
      clocks.find(Phase::kP3) == nullptr) {
    return;
  }
  const RegisterGraph* graph = ctx.register_graph();
  if (graph == nullptr) return;
  for (std::size_t u = 0; u < graph->regs.size(); ++u) {
    const WindowSet wu = ctx.latch_window(graph->regs[u]);
    if (wu.empty()) continue;
    for (const int v : graph->fanout[u]) {
      if (v == static_cast<int>(u)) continue;  // latch-self-loop's job
      const WindowSet wv = ctx.latch_window(graph->regs[v]);
      if (wv.empty() || !windows_overlap(wu, wv)) continue;
      const Cell& cu = netlist.cell(graph->regs[u]);
      const Cell& cv = netlist.cell(graph->regs[v]);
      // A p2 latch feeding a p2 latch is the retimer's transparent nesting
      // (the downstream latch passes the same cycle's value, delay-checked
      // at insertion time) — legal. Same-phase p1/p1 or p3/p3 adjacency can
      // only come from a dropped p2 latch and stays a violation.
      if (traced_phase(ctx, cu) == Phase::kP2 &&
          traced_phase(ctx, cv) == Phase::kP2) {
        continue;
      }
      ctx.emit(RuleId::kTransparencyRace,
               cat("latch '", cu.name, "' (transparent ", window_text(wu),
                   " ps) feeds latch '", cv.name, "' (transparent ",
                   window_text(wv),
                   " ps): both are open at once, data races through"),
               {cu.name, cv.name}, {},
               "re-phase one latch so adjacent transparency windows are "
               "disjoint (C2)");
    }
  }
}

void rule_phase_order(RuleContext& ctx) {
  const Netlist& netlist = ctx.netlist();
  const ClockSpec& clocks = netlist.clocks();
  if (clocks.find(Phase::kP1) == nullptr ||
      clocks.find(Phase::kP2) == nullptr ||
      clocks.find(Phase::kP3) == nullptr) {
    return;  // the adjacency discipline below is specific to 3-phase plans
  }
  const RegisterGraph* graph = ctx.register_graph();
  if (graph == nullptr) return;

  for (std::size_t u = 0; u < graph->regs.size(); ++u) {
    const Cell& cu = netlist.cell(graph->regs[u]);
    if (!is_latch(cu.kind) || traced_phase(ctx, cu) != Phase::kP3) continue;
    for (const int v : graph->fanout[u]) {
      const Cell& cv = netlist.cell(graph->regs[v]);
      if (!is_latch(cv.kind) || traced_phase(ctx, cv) != Phase::kP1) {
        continue;
      }
      ctx.emit(RuleId::kPhaseOrder,
               cat("p3 latch '", cu.name, "' feeds p1 latch '", cv.name,
                   "' with no intervening p2 latch"),
               {cu.name, cv.name}, {},
               "re-insert the p2 latch the conversion places between "
               "back-to-back stages (K(u)=K(v)=1 => G(u)=1, Sec. IV-A)");
    }
  }

  // Interface rule: a data PI driving a p1 latch needs a p2 latch at the
  // input boundary (K(v)=1 for v in FO(pi) => G(pi)=1).
  for (std::size_t i = 0; i < graph->data_pis.size(); ++i) {
    const Cell& pi = netlist.cell(graph->data_pis[i]);
    for (const int v : graph->pi_fanout[i]) {
      const Cell& cv = netlist.cell(graph->regs[v]);
      if (!is_latch(cv.kind) || traced_phase(ctx, cv) != Phase::kP1) {
        continue;
      }
      ctx.emit(RuleId::kPhaseOrder,
               cat("data input '", pi.name, "' feeds p1 latch '", cv.name,
                   "' directly"),
               {pi.name, cv.name}, {},
               "insert a p2 interface latch after the input (Sec. IV-A)");
    }
  }
}

void rule_latch_self_loop(RuleContext& ctx) {
  const RegisterGraph* graph = ctx.register_graph();
  if (graph == nullptr) return;
  const Netlist& netlist = ctx.netlist();
  for (std::size_t u = 0; u < graph->regs.size(); ++u) {
    const Cell& cell = netlist.cell(graph->regs[u]);
    // Combinational feedback around an edge-sampling register is ordinary
    // state-machine structure; around a transparent latch it races.
    if (!is_latch(cell.kind)) continue;
    if (!graph->has_self_loop(static_cast<int>(u))) continue;
    ctx.emit(RuleId::kLatchSelfLoop,
             cat("level-sensitive latch '", cell.name,
                 "' has combinational feedback onto its own input"),
             {cell.name}, {},
             "break the loop with the opposite-phase latch the conversion "
             "inserts (G(u)=1 when u is in FO(u))");
  }
}

void rule_schedule_sanity(RuleContext& ctx) {
  const Netlist& netlist = ctx.netlist();
  const ClockSpec& clocks = netlist.clocks();
  if (clocks.phases.empty()) return;
  if (clocks.period_ps <= 0) {
    ctx.emit(RuleId::kScheduleSanity,
             cat("clock period is ", clocks.period_ps, " ps"), {}, {},
             "set a positive common period");
    return;
  }
  bool seen[6] = {};
  for (const PhaseWaveform& wave : clocks.phases) {
    const int slot = static_cast<int>(wave.phase);
    if (seen[slot]) {
      ctx.emit(RuleId::kScheduleSanity,
               cat("phase ", phase_name(wave.phase),
                   " appears twice in the clock plan"),
               {}, {}, "keep one waveform per phase");
    }
    seen[slot] = true;
    if (!wave.root.valid()) {
      ctx.emit(RuleId::kScheduleSanity,
               cat("phase ", phase_name(wave.phase), " has no root net"), {},
               {}, "declare the root with set_clock_root");
    } else if (!netlist.net(wave.root).is_clock) {
      ctx.emit(RuleId::kScheduleSanity,
               cat("root net of phase ", phase_name(wave.phase),
                   " is not marked as a clock net"),
               {}, {netlist.net(wave.root).name},
               "mark the root with mark_clock_net");
    }
    if (wave.rise_ps < 0 || wave.fall_ps > clocks.period_ps ||
        wave.rise_ps == wave.fall_ps) {
      ctx.emit(RuleId::kScheduleSanity,
               cat("phase ", phase_name(wave.phase),
                   " has a degenerate waveform rise=", wave.rise_ps,
                   " fall=", wave.fall_ps, " (period ", clocks.period_ps,
                   ")"),
               {}, {}, "keep 0 <= rise < fall <= period");
    }
  }
  // Phase high windows must be pairwise disjoint.
  for (std::size_t a = 0; a < clocks.phases.size(); ++a) {
    for (std::size_t b = a + 1; b < clocks.phases.size(); ++b) {
      const WindowSet wa =
          phase_high_window(clocks, clocks.phases[a].phase, false);
      const WindowSet wb =
          phase_high_window(clocks, clocks.phases[b].phase, false);
      if (windows_overlap(wa, wb)) {
        ctx.emit(RuleId::kScheduleSanity,
                 cat("phases ", phase_name(clocks.phases[a].phase), " and ",
                     phase_name(clocks.phases[b].phase),
                     " have overlapping high windows"),
                 {}, {}, "phases of one cycle must not overlap (Sec. II)");
      }
    }
  }
  // 3-phase closing-edge order e1 <= e2 <= e3 = Tc and the C3 half-cycle
  // bound on each stage duration. Exceeding C3 is legal for a deliberately
  // skewed schedule, hence a warning.
  const PhaseWaveform* p1 = clocks.find(Phase::kP1);
  const PhaseWaveform* p2 = clocks.find(Phase::kP2);
  const PhaseWaveform* p3 = clocks.find(Phase::kP3);
  if (p1 != nullptr && p2 != nullptr && p3 != nullptr) {
    const std::int64_t edges[3] = {p1->fall_ps, p2->fall_ps, p3->fall_ps};
    if (!(edges[0] <= edges[1] && edges[1] <= edges[2] &&
          edges[2] == clocks.period_ps)) {
      ctx.emit(RuleId::kScheduleSanity,
               cat("3-phase closing edges e1=", edges[0], " e2=", edges[1],
                   " e3=", edges[2], " violate e1 <= e2 <= e3 = Tc (",
                   clocks.period_ps, ")"),
               {}, {}, "reorder the schedule (SMO model, Sec. II)");
    } else {
      std::int64_t prev = 0;
      const Phase names[3] = {Phase::kP1, Phase::kP2, Phase::kP3};
      for (int i = 0; i < 3; ++i) {
        const std::int64_t segment = edges[i] - prev;
        if (2 * segment > clocks.period_ps) {
          ctx.emit(RuleId::kScheduleSanity, Severity::kWarning,
                   cat("stage ending at ", phase_name(names[i]), " spans ",
                       segment, " ps, more than half the ", clocks.period_ps,
                       " ps cycle"),
                   {}, {},
                   "C3 bounds each stage to Tc/2; longer stages shrink the "
                   "other phases' slack (Sec. II)");
        }
        prev = edges[i];
      }
    }
  }
}

}  // namespace tp::check
