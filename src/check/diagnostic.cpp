#include "src/check/diagnostic.hpp"

#include "src/util/strcat.hpp"

namespace tp::check {
namespace {

struct RuleInfo {
  std::string_view name;
  std::string_view ref;
  std::string_view summary;
  Severity severity;
};

const RuleInfo& info(RuleId rule) {
  static const RuleInfo kTable[kNumRules] = {
      {"clock-reachability", "Sec. IV-B (clock network rebuild)",
       "every register/ICG clock pin traces through the clock tree to "
       "exactly one phase root, without inversion, matching its phase tag",
       Severity::kError},
      {"mixed-phase-icg", "Sec. IV-B (ICG duplication)",
       "an ICG's gated clock reaches registers of two different phases — "
       "the conversion missed a per-phase duplication",
       Severity::kError},
      {"constant-clock", "Sec. IV-B (clock network rebuild)",
       "a register or ICG clock pin is tied to a constant", Severity::kError},
      {"transparency-race", "C2 (Sec. II)",
       "combinational path between two latches whose transparency windows "
       "overlap in the clock schedule — data can race through both",
       Severity::kError},
      {"phase-order", "C1 (Sec. IV-A)",
       "single-latch / back-to-back audit: no un-latched FF position, no "
       "same-phase latch adjacency, no p3-to-p1 or PI-to-p1 path without an "
       "inserted p2 latch",
       Severity::kError},
      {"latch-self-loop", "C1 (Sec. IV-A, self-loop => G = 1)",
       "a level-sensitive latch feeds its own data pin through "
       "combinational logic only, bypassing the inserted p2 latch",
       Severity::kError},
      {"comb-cycle", "Sec. IV-A (register graph)",
       "combinational cycle (no register on the loop)", Severity::kError},
      {"floating-net", "structural",
       "a net with live consumers has no driver", Severity::kError},
      {"multiple-drivers", "structural",
       "a net is driven by more than one live cell", Severity::kError},
      {"ddcg-fanout", "Sec. IV-D (multi-bit DDCG, <= 32 per group)",
       "a data-driven clock-gating group gates more registers than the "
       "fanout cap",
       Severity::kError},
      {"m1-borrow-window", "Fig. 3(c1) (modification M1)",
       "an M1 cell's borrow phase (PB) must be a phase root whose high "
       "window does not overlap the gated phase's window",
       Severity::kError},
      {"m2-enable-phase", "Fig. 3(c2) (modification M2)",
       "a latch-free ICG (M2) has an enable source latched by the phase it "
       "gates — the enable can glitch while the clock is high",
       Severity::kError},
      {"schedule-sanity", "C3 / SMO model (Sec. II)",
       "clock plan sanity: ordered closing edges, non-overlapping phase "
       "windows, valid roots; phase segments above Tc/2 break the "
       "half-stage throughput bound",
       Severity::kError},
      {"two-phase-nonoverlap", "2-phase discipline (arXiv 2605.05374)",
       "the clk and clkbar high windows must be separated by a positive "
       "guard gap on both sides — abutting edges leave no skew margin and "
       "re-open the master/slave race the discipline exists to close",
       Severity::kError},
      {"pulse-width", "pulsed-latch discipline",
       "a pulse clock driving pulsed latches must stay narrower than half "
       "the cycle; wider pulses degenerate into level-sensitive operation "
       "and unbounded hold padding",
       Severity::kError},
      {"det-clocking", "DET discipline (arXiv 1307.3075)",
       "every dual-edge FF must be clocked through a leaf divide-by-two "
       "(else it samples twice per cycle), dividers must not cascade, and "
       "no single-edge register may share a divided clock",
       Severity::kError},
      {"x-propagation", "A1 (reset reachability)",
       "an unknown (X) value in the post-reset state can propagate through "
       "transparency windows to a register or primary output",
       Severity::kError},
      {"min-delay-race", "A2 (min-delay race)",
       "the min path delay between two latches with overlapping "
       "transparency windows cannot guarantee the capture window has "
       "closed — data can race through in one cycle",
       Severity::kError},
      {"borrow-chain", "A3 (time-borrowing budget)",
       "a chain of transparent latches accumulates more time borrowing "
       "than the configured budget (default: one full phase)",
       Severity::kError},
      {"cdc-unsync", "A4 (clock-domain inference)",
       "a data path crosses between registers whose inferred clock domains "
       "sample at different effective rates, with no two-register "
       "synchronizer chain in the destination domain",
       Severity::kError},
      {"cdc-reconverge", "A5 (clock-domain inference)",
       "two independently synchronized crossings from the same source "
       "register reconverge inside a bounded combinational cone — the "
       "synchronizers can resolve on different cycles",
       Severity::kError},
      {"rdc-crossing", "A6 (reset-domain inference)",
       "a register in one async-reset domain feeds a register whose reset "
       "root differs and is released no later — the destination can sample "
       "mid-reset garbage",
       Severity::kError},
  };
  return kTable[static_cast<int>(rule)];
}

}  // namespace

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string_view rule_name(RuleId rule) { return info(rule).name; }
std::string_view rule_paper_ref(RuleId rule) { return info(rule).ref; }
std::string_view rule_summary(RuleId rule) { return info(rule).summary; }
Severity rule_severity(RuleId rule) { return info(rule).severity; }

bool rule_from_name(std::string_view name, RuleId* rule) {
  for (int i = 0; i < kNumRules; ++i) {
    if (info(static_cast<RuleId>(i)).name == name) {
      if (rule) *rule = static_cast<RuleId>(i);
      return true;
    }
  }
  return false;
}

std::string Diagnostic::to_string() const {
  std::string out = cat(severity_name(severity), "[", rule_name(rule), "] ",
                        message);
  const auto append_list = [&out](const char* label,
                                  const std::vector<std::string>& names) {
    if (names.empty()) return;
    out += cat(" (", label, ": ");
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i) out += ", ";
      out += names[i];
    }
    out += ")";
  };
  append_list("cells", cells);
  append_list("nets", nets);
  if (!hint.empty()) out += cat(" hint: ", hint);
  out += cat(" {", rule_paper_ref(rule), "}");
  if (waived) out += " [waived]";
  return out;
}

}  // namespace tp::check
