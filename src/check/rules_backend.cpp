// Backend-discipline rules: the two-phase non-overlap guard gap, the
// pulsed-latch pulse-width bound, and the DET divider-clocking structure.
// Each rule gates itself on the netlist features its backend introduces,
// so the full registry runs cleanly on every conversion style.
#include "src/check/rules.hpp"
#include "src/util/strcat.hpp"

namespace tp::check {
namespace {

/// Driver cell of `net` traced back through clock buffers and inverters;
/// invalid CellId when the net is undriven.
CellId traced_driver(const Netlist& netlist, NetId net) {
  for (;;) {
    const CellId driver = netlist.net(net).driver;
    if (!driver.valid()) return driver;
    const Cell& cell = netlist.cell(driver);
    if (cell.kind == CellKind::kClkBuf || cell.kind == CellKind::kBuf ||
        cell.kind == CellKind::kClkInv || cell.kind == CellKind::kInv) {
      net = cell.ins[0];
      continue;
    }
    return driver;
  }
}

}  // namespace

void rule_two_phase_nonoverlap(RuleContext& ctx) {
  const ClockSpec& clocks = ctx.netlist().clocks();
  const PhaseWaveform* clk = clocks.find(Phase::kClk);
  const PhaseWaveform* clkbar = clocks.find(Phase::kClkBar);
  // Only a genuine two-phase plan carries a clkbar waveform; the
  // master-slave baseline runs both latches off the single clk root.
  if (clk == nullptr || clkbar == nullptr) return;
  if (clocks.period_ps <= 0) return;  // schedule-sanity reports that
  // Guard gap on both sides: clk falls before clkbar rises, and clkbar
  // falls before clk rises again (one period later). Overlap is already
  // schedule-sanity's finding; a zero gap (abutting edges) is legal there
  // but breaks the non-overlapping discipline, which is exactly what this
  // rule exists to catch.
  const std::int64_t gap_a = clkbar->rise_ps - clk->fall_ps;
  const std::int64_t gap_b = clk->rise_ps + clocks.period_ps -
                             clkbar->fall_ps;
  const auto report = [&](std::string_view where, std::int64_t gap) {
    ctx.emit(RuleId::kTwoPhaseNonOverlap,
             cat("clk high [", clk->rise_ps, ",", clk->fall_ps,
                 ") and clkbar high [", clkbar->rise_ps, ",",
                 clkbar->fall_ps, ") ps leave a ", gap, " ps guard gap ",
                 where),
             {}, {},
             "delay the phases' rise edges so a positive non-overlap gap "
             "separates them on both sides");
  };
  if (gap_a <= 0) report("between clk fall and clkbar rise", gap_a);
  if (gap_b <= 0) report("between clkbar fall and the next clk rise", gap_b);
}

void rule_pulse_width(RuleContext& ctx) {
  const Netlist& netlist = ctx.netlist();
  const ClockSpec& clocks = netlist.clocks();
  if (clocks.period_ps <= 0) return;
  // Phases that actually clock a pulsed latch (traced through the clock
  // network, so gated pulses count too).
  bool pulsed[6] = {};
  bool any = false;
  for (const CellId id : netlist.registers()) {
    const Cell& cell = netlist.cell(id);
    if (cell.kind != CellKind::kLatchP) continue;
    const ClockTrace& trace =
        ctx.clock_trace(cell.ins[clock_pin(cell.kind)]);
    if (trace.kind != ClockTraceKind::kPhaseRoot || trace.inverted) {
      continue;  // clock-reachability reports broken traces
    }
    pulsed[static_cast<int>(trace.phase)] = true;
    any = true;
  }
  if (!any) return;
  for (const PhaseWaveform& wave : clocks.phases) {
    if (!pulsed[static_cast<int>(wave.phase)]) continue;
    const std::int64_t width = wave.fall_ps - wave.rise_ps;
    if (width <= 0) continue;  // degenerate: schedule-sanity's finding
    if (2 * width > clocks.period_ps) {
      ctx.emit(RuleId::kPulseWidth,
               cat("pulse clock ", phase_name(wave.phase), " is high for ",
                   width, " ps of a ", clocks.period_ps,
                   " ps cycle — wider than half the period"),
               {}, {},
               "narrow the pulse: a pulsed latch approximates an "
               "edge-triggered register only while the pulse is short "
               "relative to the cycle");
    }
  }
}

void rule_det_clocking(RuleContext& ctx) {
  const Netlist& netlist = ctx.netlist();
  bool any_det = false;
  for (const CellId id : netlist.live_cells()) {
    if (netlist.cell(id).kind == CellKind::kDffDet ||
        netlist.cell(id).kind == CellKind::kClkDiv2) {
      any_det = true;
      break;
    }
  }
  if (!any_det) return;

  for (const CellId id : netlist.live_cells()) {
    const Cell& cell = netlist.cell(id);
    if (cell.kind == CellKind::kDffDet) {
      // A DET FF on an undivided clock sees two toggles per cycle and
      // samples twice — silently halving its effective cycle time.
      const CellId src = traced_driver(netlist, cell.ins[1]);
      if (!src.valid() || netlist.cell(src).kind != CellKind::kClkDiv2) {
        ctx.emit(RuleId::kDetClocking,
                 cat("dual-edge FF '", cell.name,
                     "' is clocked by '", netlist.net(cell.ins[1]).name,
                     "', which does not come from a divide-by-two"),
                 {cell.name}, {netlist.net(cell.ins[1]).name},
                 "route the register's clock pin through the kClkDiv2 leaf "
                 "divider of its gated clock net");
      }
    } else if (is_register(cell.kind)) {
      // Conversely a single-edge register behind a divider runs at half
      // rate: it only sees a rising edge every other cycle.
      const CellId src =
          traced_driver(netlist, cell.ins[clock_pin(cell.kind)]);
      if (src.valid() && netlist.cell(src).kind == CellKind::kClkDiv2) {
        ctx.emit(RuleId::kDetClocking,
                 cat("single-edge register '", cell.name,
                     "' is clocked by divide-by-two '",
                     netlist.cell(src).name,
                     "' and would only sample every other cycle"),
                 {cell.name, netlist.cell(src).name}, {},
                 "divided clocks may only drive dual-edge FFs");
      }
    } else if (cell.kind == CellKind::kClkDiv2) {
      // Dividers sit at the leaves: gating upstream keeps ICG semantics
      // intact, and cascaded dividers would quarter the sampling rate.
      const CellId src = traced_driver(netlist, cell.ins[0]);
      if (src.valid() && netlist.cell(src).kind == CellKind::kClkDiv2) {
        ctx.emit(RuleId::kDetClocking,
                 cat("divide-by-two '", cell.name,
                     "' is fed by divide-by-two '", netlist.cell(src).name,
                     "'"),
                 {cell.name, netlist.cell(src).name}, {},
                 "insert exactly one divider per gated clock net, at the "
                 "leaf of the clock network");
      }
      for (const PinRef& ref : netlist.net(cell.out).fanouts) {
        const Cell& sink = netlist.cell(ref.cell);
        if (is_icg(sink.kind) &&
            static_cast<int>(ref.pin) == clock_pin(sink.kind)) {
          ctx.emit(RuleId::kDetClocking,
                   cat("divide-by-two '", cell.name, "' feeds ICG '",
                       sink.name,
                       "' — gating must happen before the division"),
                   {cell.name, sink.name}, {},
                   "place dividers after all ICGs so enables keep their "
                   "full-rate timing");
        }
      }
    }
  }
}

}  // namespace tp::check
