// Clock-network legality rules: clock-pin reachability, ICG phase
// duplication, constant clocks, the DDCG fanout cap, and M1/M2 legality.
#include <algorithm>
#include <unordered_set>

#include "src/check/rules.hpp"
#include "src/util/strcat.hpp"

namespace tp::check {
namespace {

bool is_three_phase(Phase phase) {
  return phase == Phase::kP1 || phase == Phase::kP2 || phase == Phase::kP3;
}

}  // namespace

void rule_clock_reachability(RuleContext& ctx) {
  const Netlist& netlist = ctx.netlist();
  for (const CellId id : netlist.registers()) {
    const Cell& cell = netlist.cell(id);
    const NetId clk = cell.ins[clock_pin(cell.kind)];
    const ClockTrace& trace = ctx.clock_trace(clk);
    switch (trace.kind) {
      case ClockTraceKind::kPhaseRoot:
        if (cell.phase != Phase::kNone && !trace.inverted &&
            cell.phase != trace.phase) {
          ctx.emit(RuleId::kClockReachability,
                   cat("register '", cell.name, "' is tagged ",
                       phase_name(cell.phase),
                       " but its clock pin traces to the ",
                       phase_name(trace.phase), " root"),
                   {cell.name}, {netlist.net(clk).name},
                   "retag the cell or rewire its clock pin onto the tagged "
                   "phase's clock tree");
        }
        break;
      case ClockTraceKind::kData:
        ctx.emit(RuleId::kClockReachability,
                 cat("clock pin of register '", cell.name,
                     "' does not trace to a phase root (reaches data logic "
                     "or a clock-network cycle)"),
                 {cell.name}, {netlist.net(clk).name},
                 "route the clock pin through clock buffers/ICGs to exactly "
                 "one phase root");
        break;
      case ClockTraceKind::kFloating:
        ctx.emit(RuleId::kClockReachability,
                 cat("clock pin of register '", cell.name,
                     "' traces to an undriven net"),
                 {cell.name}, {netlist.net(clk).name},
                 "connect the clock pin to a phase root");
        break;
      case ClockTraceKind::kConstant:
        break;  // reported by the constant-clock rule
    }
  }
}

void rule_mixed_phase_icg(RuleContext& ctx) {
  const Netlist& netlist = ctx.netlist();
  for (const CellId id : netlist.live_cells()) {
    const Cell& cell = netlist.cell(id);
    if (!is_icg(cell.kind)) continue;
    // Distinct 3-phase tags among the gated registers. One witness per
    // phase; clk/clkbar mixing (the retiming master-slave idiom) is legal.
    Phase seen[3] = {Phase::kNone, Phase::kNone, Phase::kNone};
    std::vector<std::string> witnesses;
    int distinct = 0;
    for (const CellId sink_id : ctx.clock_sinks(cell.out)) {
      const Cell& sink = netlist.cell(sink_id);
      if (!is_three_phase(sink.phase)) continue;
      const int slot = static_cast<int>(sink.phase) -
                       static_cast<int>(Phase::kP1);
      if (seen[slot] == Phase::kNone) {
        seen[slot] = sink.phase;
        witnesses.push_back(sink.name);
        ++distinct;
      }
    }
    if (distinct > 1) {
      std::string phases;
      for (const Phase phase : seen) {
        if (phase == Phase::kNone) continue;
        if (!phases.empty()) phases += "/";
        phases += phase_name(phase);
      }
      std::vector<std::string> cells{cell.name};
      cells.insert(cells.end(), witnesses.begin(), witnesses.end());
      ctx.emit(RuleId::kMixedPhaseIcg,
               cat("clock gate '", cell.name, "' fans out to registers of ",
                   distinct, " phases (", phases, ")"),
               std::move(cells), {netlist.net(cell.out).name},
               "duplicate the ICG per phase as in the conversion step");
    }
  }
}

void rule_constant_clock(RuleContext& ctx) {
  const Netlist& netlist = ctx.netlist();
  for (const CellId id : netlist.registers()) {
    const Cell& cell = netlist.cell(id);
    const NetId clk = cell.ins[clock_pin(cell.kind)];
    const ClockTrace& trace = ctx.clock_trace(clk);
    if (trace.kind != ClockTraceKind::kConstant) continue;
    const bool value = trace.constant_value != trace.inverted;
    ctx.emit(RuleId::kConstantClock,
             cat("clock pin of register '", cell.name,
                 "' is tied to constant ", value ? "1" : "0",
                 is_latch(cell.kind)
                     ? (value != (cell.kind == CellKind::kLatchL)
                            ? " (latch is always transparent)"
                            : " (latch is always opaque)")
                     : " (register never samples)"),
             {cell.name}, {netlist.net(clk).name},
             "drive the clock pin from a phase root");
  }
}

void rule_ddcg_fanout(RuleContext& ctx) {
  const Netlist& netlist = ctx.netlist();
  const int cap = ctx.options().ddcg_max_fanout;
  for (const CellId id : netlist.live_cells()) {
    const Cell& cell = netlist.cell(id);
    if (!is_icg(cell.kind)) continue;
    const std::vector<CellId> sinks = ctx.clock_sinks(cell.out);
    if (static_cast<int>(sinks.size()) <= cap) continue;
    // The cap applies only to data-driven groups (enable derived from the
    // gated registers themselves, Sec. IV-D); a wide common-enable group is
    // legal.
    const auto& sources = ctx.enable_sources();
    const auto it = sources.find(id.value());
    if (it == sources.end()) continue;
    const std::unordered_set<std::uint32_t> sink_set = [&] {
      std::unordered_set<std::uint32_t> set;
      for (const CellId sink : sinks) set.insert(sink.value());
      return set;
    }();
    const bool data_driven =
        std::any_of(it->second.begin(), it->second.end(),
                    [&](CellId src) { return sink_set.count(src.value()); });
    if (!data_driven) continue;
    ctx.emit(RuleId::kDdcgFanout,
             cat("data-driven clock gate '", cell.name, "' drives ",
                 sinks.size(), " registers (cap ", cap, ")"),
             {cell.name}, {netlist.net(cell.out).name},
             "split the group: XOR-tree detection cost outgrows the gating "
             "benefit past the cap");
  }
}

void rule_m1_borrow_window(RuleContext& ctx) {
  const Netlist& netlist = ctx.netlist();
  for (const CellId id : netlist.live_cells()) {
    const Cell& cell = netlist.cell(id);
    if (cell.kind != CellKind::kIcgM1) continue;
    const ClockTrace& ck = ctx.clock_trace(cell.ins[1]);
    const ClockTrace& pb = ctx.clock_trace(cell.ins[2]);
    if (pb.kind != ClockTraceKind::kPhaseRoot) {
      ctx.emit(RuleId::kM1BorrowWindow,
               cat("M1 clock gate '", cell.name,
                   "' has a borrow pin that does not trace to a phase root"),
               {cell.name}, {netlist.net(cell.ins[2]).name},
               "drive PB from the phase whose window precedes the gated "
               "clock (p3 for a p2 gate, p1 for a DDCG)");
      continue;
    }
    if (ck.kind != ClockTraceKind::kPhaseRoot) continue;  // reachability's job
    const WindowSet ck_window =
        phase_high_window(netlist.clocks(), ck.phase, ck.inverted);
    const WindowSet pb_window =
        phase_high_window(netlist.clocks(), pb.phase, pb.inverted);
    if (windows_overlap(ck_window, pb_window)) {
      ctx.emit(RuleId::kM1BorrowWindow,
               cat("M1 clock gate '", cell.name,
                   "' is enable-transparent on ", phase_name(pb.phase),
                   " while its gated clock ", phase_name(ck.phase),
                   " is high — the enable can glitch into the pulse"),
               {cell.name}, {netlist.net(cell.ins[2]).name},
               "pick a borrow phase whose high window is disjoint from the "
               "gated phase (Fig. 3(c1))");
    }
  }
}

void rule_m2_enable_phase(RuleContext& ctx) {
  const Netlist& netlist = ctx.netlist();
  for (const CellId id : netlist.live_cells()) {
    const Cell& cell = netlist.cell(id);
    if (cell.kind != CellKind::kIcgNoLatch) continue;
    const ClockTrace& gated = ctx.clock_trace(cell.ins[1]);
    if (gated.kind != ClockTraceKind::kPhaseRoot) continue;
    const auto& sources = ctx.enable_sources();
    const auto it = sources.find(id.value());
    if (it == sources.end()) continue;
    for (const CellId src_id : it->second) {
      const Cell& src = netlist.cell(src_id);
      // Data PIs behave like p1 outputs (they settle before p1 closes).
      const Phase src_phase =
          src.kind == CellKind::kInput ? Phase::kP1 : src.phase;
      if (src_phase != gated.phase) continue;
      ctx.emit(RuleId::kM2EnablePhase,
               cat("latch-free clock gate '", cell.name,
                   "' has enable source '", src.name, "' on its own phase ",
                   phase_name(gated.phase),
                   " — the enable can change mid-pulse"),
               {cell.name, src.name}, {netlist.net(cell.ins[0]).name},
               "keep the conventional ICG latch (undo M2) or re-source the "
               "enable from another phase (Sec. IV-D)");
    }
  }
}

}  // namespace tp::check
