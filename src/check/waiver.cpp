#include "src/check/waiver.hpp"

#include <fstream>
#include <sstream>

#include "src/util/log.hpp"
#include "src/util/strcat.hpp"

namespace tp::check {

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative glob with single-star backtracking.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool Waiver::matches(const Diagnostic& diag) const {
  if (!any_rule && diag.rule != rule) return false;
  for (const std::string& name : diag.cells) {
    if (glob_match(target, name)) return true;
  }
  for (const std::string& name : diag.nets) {
    if (glob_match(target, name)) return true;
  }
  if (diag.cells.empty() && diag.nets.empty()) {
    return glob_match(target, diag.message);
  }
  return false;
}

WaiverSet WaiverSet::parse(std::istream& in) {
  WaiverSet set;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string rule_text, target;
    if (!(fields >> rule_text)) continue;  // blank / comment-only line
    require(static_cast<bool>(fields >> target),
            cat("waiver line ", line_no, ": expected '<rule> <glob>'"));
    Waiver waiver;
    if (rule_text == "*") {
      waiver.any_rule = true;
    } else {
      require(rule_from_name(rule_text, &waiver.rule),
              cat("waiver line ", line_no, ": unknown rule '", rule_text,
                  "'"));
    }
    waiver.target = std::move(target);
    std::getline(fields >> std::ws, waiver.reason);
    set.add(std::move(waiver));
  }
  return set;
}

WaiverSet WaiverSet::parse_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), cat("cannot open waiver file ", path));
  return parse(in);
}

bool WaiverSet::matches(const Diagnostic& diag) const {
  for (const Waiver& waiver : waivers_) {
    if (waiver.matches(diag)) return true;
  }
  return false;
}

}  // namespace tp::check
