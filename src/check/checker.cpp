#include "src/check/checker.hpp"

#include <algorithm>

#include "src/check/rules.hpp"
#include "src/util/json.hpp"
#include "src/util/strcat.hpp"

namespace tp::check {

// --- window helpers ---------------------------------------------------------

bool windows_overlap(const WindowSet& a, const WindowSet& b) {
  for (int i = 0; i < a.n; ++i) {
    for (int j = 0; j < b.n; ++j) {
      if (a.span[i][0] < b.span[j][1] && b.span[j][0] < a.span[i][1]) {
        return true;
      }
    }
  }
  return false;
}

WindowSet phase_high_window(const ClockSpec& clocks, Phase phase,
                            bool inverted) {
  WindowSet window;
  const PhaseWaveform* wave = clocks.find(phase);
  if (wave == nullptr || clocks.period_ps <= 0) return window;
  const std::int64_t period = clocks.period_ps;
  const std::int64_t rise = wave->rise_ps;
  const std::int64_t fall = wave->fall_ps;
  if (!inverted) {
    if (rise < fall) {
      window.add(rise, fall);
    } else {  // wrapping waveform (not produced by this project, but legal)
      window.add(rise, period);
      window.add(0, fall);
    }
  } else {
    if (rise < fall) {
      window.add(0, rise);
      window.add(fall, period);
    } else {
      window.add(fall, rise);
    }
  }
  return window;
}

// --- RuleContext ------------------------------------------------------------

RuleContext::RuleContext(const Netlist& netlist, const CheckOptions& options)
    : netlist_(netlist), options_(options) {}

void RuleContext::emit(RuleId rule, std::string message,
                       std::vector<std::string> cells,
                       std::vector<std::string> nets, std::string hint) {
  emit(rule, rule_severity(rule), std::move(message), std::move(cells),
       std::move(nets), std::move(hint));
}

void RuleContext::emit(RuleId rule, Severity severity, std::string message,
                       std::vector<std::string> cells,
                       std::vector<std::string> nets, std::string hint) {
  Diagnostic diag;
  diag.rule = rule;
  diag.severity = severity;
  diag.message = std::move(message);
  diag.cells = std::move(cells);
  diag.nets = std::move(nets);
  diag.hint = std::move(hint);
  diags_.push_back(std::move(diag));
}

const ClockTrace& RuleContext::clock_trace(NetId net) {
  const auto memo = trace_memo_.find(net.value());
  if (memo != trace_memo_.end()) return memo->second;

  ClockTrace trace;
  // Phase roots terminate the walk.
  for (const PhaseWaveform& wave : netlist_.clocks().phases) {
    if (wave.root == net) {
      trace.kind = ClockTraceKind::kPhaseRoot;
      trace.phase = wave.phase;
      return trace_memo_.emplace(net.value(), trace).first->second;
    }
  }
  // Cycle guard: a loop in the clock network never reaches a root.
  if (std::find(trace_stack_.begin(), trace_stack_.end(), net.value()) !=
      trace_stack_.end()) {
    trace.kind = ClockTraceKind::kData;
    return trace_memo_.emplace(net.value(), trace).first->second;
  }

  const CellId driver_id = netlist_.net(net).driver;
  if (!driver_id.valid()) {
    trace.kind = ClockTraceKind::kFloating;
    return trace_memo_.emplace(net.value(), trace).first->second;
  }
  const Cell& driver = netlist_.cell(driver_id);
  trace_stack_.push_back(net.value());
  switch (driver.kind) {
    case CellKind::kClkBuf:
      trace = clock_trace(driver.ins[0]);
      break;
    case CellKind::kClkInv:
      trace = clock_trace(driver.ins[0]);
      trace.inverted = !trace.inverted;
      break;
    case CellKind::kIcg:
    case CellKind::kIcgM1:
    case CellKind::kIcgNoLatch:
      trace = clock_trace(driver.ins[1]);
      break;
    case CellKind::kClkDiv2:
      // Halved frequency, but still the same phase root; dividers never
      // invert (state starts low, first toggle on the first rise).
      trace = clock_trace(driver.ins[0]);
      break;
    case CellKind::kConst0:
    case CellKind::kConst1:
      trace.kind = ClockTraceKind::kConstant;
      trace.constant_value = driver.kind == CellKind::kConst1;
      break;
    default:
      // Data gates and non-root primary inputs do not clock anything.
      trace.kind = ClockTraceKind::kData;
      break;
  }
  trace_stack_.pop_back();
  return trace_memo_.emplace(net.value(), trace).first->second;
}

bool RuleContext::has_comb_cycle() {
  if (comb_cycle_known_) return comb_cycle_;
  comb_cycle_known_ = true;
  comb_cycle_ = false;
  // Iterative 3-color DFS over combinational cells only; registers, clock
  // gates with internal state, and interface cells are barriers.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(netlist_.num_cells(), kWhite);
  struct Frame {
    std::uint32_t cell;
    std::size_t fanout = 0;
  };
  for (std::uint32_t root = 0; root < netlist_.num_cells() && !comb_cycle_;
       ++root) {
    const Cell& cell = netlist_.cell(CellId{root});
    if (!cell.alive || !is_combinational(cell.kind) ||
        color[root] != kWhite) {
      continue;
    }
    std::vector<Frame> stack{{root}};
    color[root] = kGray;
    while (!stack.empty() && !comb_cycle_) {
      Frame& frame = stack.back();
      const Cell& at = netlist_.cell(CellId{frame.cell});
      const auto& fanouts = netlist_.net(at.out).fanouts;
      if (frame.fanout >= fanouts.size()) {
        color[frame.cell] = kBlack;
        stack.pop_back();
        continue;
      }
      const PinRef ref = fanouts[frame.fanout++];
      const Cell& next = netlist_.cell(ref.cell);
      if (!next.alive || !is_combinational(next.kind)) continue;
      const std::uint32_t id = ref.cell.value();
      if (color[id] == kGray) {
        comb_cycle_ = true;
        for (const Frame& f : stack) {
          if (!comb_cycle_path_.empty() || f.cell == id) {
            comb_cycle_path_.push_back(CellId{f.cell});
          }
        }
        if (comb_cycle_path_.empty()) comb_cycle_path_.push_back(CellId{id});
      } else if (color[id] == kWhite) {
        color[id] = kGray;
        stack.push_back({id});
      }
    }
  }
  return comb_cycle_;
}

const RegisterGraph* RuleContext::register_graph() {
  if (has_comb_cycle()) return nullptr;
  if (!graph_built_) {
    graph_ = build_register_graph(netlist_);
    graph_built_ = true;
  }
  return &graph_;
}

const std::unordered_map<std::uint32_t, std::vector<CellId>>&
RuleContext::enable_sources() {
  if (!enable_sources_built_) {
    if (!has_comb_cycle()) {
      enable_sources_ = icg_enable_sources(netlist_);
    }
    enable_sources_built_ = true;
  }
  return enable_sources_;
}

WindowSet RuleContext::latch_window(CellId reg) {
  const Cell& cell = netlist_.cell(reg);
  if (!is_latch(cell.kind)) return {};  // edge samplers are never transparent
  const ClockTrace& trace = clock_trace(cell.ins[1]);
  if (trace.kind != ClockTraceKind::kPhaseRoot) return {};
  const bool low_transparent = cell.kind == CellKind::kLatchL;
  return phase_high_window(netlist_.clocks(), trace.phase,
                           trace.inverted != low_transparent);
}

std::vector<CellId> RuleContext::clock_sinks(NetId net) {
  std::vector<CellId> sinks;
  std::vector<NetId> frontier{net};
  std::vector<bool> seen(netlist_.num_nets(), false);
  seen[net.value()] = true;
  while (!frontier.empty()) {
    const NetId at = frontier.back();
    frontier.pop_back();
    for (const PinRef& ref : netlist_.net(at).fanouts) {
      const Cell& cell = netlist_.cell(ref.cell);
      if (!cell.alive) continue;
      if (is_register(cell.kind) &&
          static_cast<int>(ref.pin) == clock_pin(cell.kind)) {
        sinks.push_back(ref.cell);
      } else if (is_clock_cell(cell.kind) &&
                 static_cast<int>(ref.pin) == clock_pin(cell.kind) &&
                 cell.out.valid() && !seen[cell.out.value()]) {
        seen[cell.out.value()] = true;
        frontier.push_back(cell.out);
      }
    }
  }
  return sinks;
}

// --- registry and orchestration ---------------------------------------------

namespace {

using RuleFn = void (*)(RuleContext&);

RuleFn rule_fn(RuleId rule) {
  switch (rule) {
    case RuleId::kClockReachability: return rule_clock_reachability;
    case RuleId::kMixedPhaseIcg: return rule_mixed_phase_icg;
    case RuleId::kConstantClock: return rule_constant_clock;
    case RuleId::kTransparencyRace: return rule_transparency_race;
    case RuleId::kPhaseOrder: return rule_phase_order;
    case RuleId::kLatchSelfLoop: return rule_latch_self_loop;
    case RuleId::kCombCycle: return rule_comb_cycle;
    case RuleId::kFloatingNet: return rule_floating_net;
    case RuleId::kMultipleDrivers: return rule_multiple_drivers;
    case RuleId::kDdcgFanout: return rule_ddcg_fanout;
    case RuleId::kM1BorrowWindow: return rule_m1_borrow_window;
    case RuleId::kM2EnablePhase: return rule_m2_enable_phase;
    case RuleId::kScheduleSanity: return rule_schedule_sanity;
    case RuleId::kTwoPhaseNonOverlap: return rule_two_phase_nonoverlap;
    case RuleId::kPulseWidth: return rule_pulse_width;
    case RuleId::kDetClocking: return rule_det_clocking;
    // Analysis-engine rules: no structural entry point here; they are
    // evaluated by analysis::run_analysis() (src/analysis/).
    case RuleId::kXProp:
    case RuleId::kMinDelayRace:
    case RuleId::kBorrowChain:
    case RuleId::kCdcUnsync:
    case RuleId::kCdcReconverge:
    case RuleId::kRdcCrossing:
      return nullptr;
  }
  return nullptr;
}

void write_json_names(util::JsonWriter& w, std::string_view key,
                      const std::vector<std::string>& names) {
  w.key(key).begin_array();
  for (const std::string& name : names) w.value(name);
  w.end_array();
}

}  // namespace

const std::vector<RuleSpec>& rule_registry() {
  static const std::vector<RuleSpec>& registry = *[] {
    auto* r = new std::vector<RuleSpec>;
    for (int i = 0; i < kNumRules; ++i) {
      const RuleId id = static_cast<RuleId>(i);
      r->push_back({id, rule_name(id), rule_paper_ref(id), rule_summary(id),
                    rule_severity(id)});
    }
    return r;
  }();
  return registry;
}

CheckReport run_checks(const Netlist& netlist, const CheckOptions& options) {
  RuleContext ctx(netlist, options);
  for (const RuleSpec& spec : rule_registry()) {
    if (std::find(options.disabled.begin(), options.disabled.end(),
                  spec.id) != options.disabled.end()) {
      continue;
    }
    const RuleFn fn = rule_fn(spec.id);
    if (fn != nullptr) fn(ctx);
  }
  return finalize_report(netlist, ctx.take(), options);
}

CheckReport finalize_report(const Netlist& netlist,
                            std::vector<Diagnostic> diags,
                            const CheckOptions& options) {
  CheckReport report;
  report.design = netlist.name();
  report.diags = std::move(diags);
  // Canonical report order: (rule, first offending cell, first offending
  // net, message). Rules already emit in this order internally, but reports
  // merged from parallel checkpoint waves (flow::run_flow with an executor)
  // or spliced from an incremental AnalysisSession must land byte-identical
  // to a serial full run, so the ordering is enforced here rather than
  // trusted. stable_sort keeps duplicate-key emission order.
  const auto first_or_empty = [](const std::vector<std::string>& names)
      -> const std::string& {
    static const std::string kEmpty;
    return names.empty() ? kEmpty : names.front();
  };
  std::stable_sort(report.diags.begin(), report.diags.end(),
                   [&](const Diagnostic& a, const Diagnostic& b) {
                     if (a.rule != b.rule) return a.rule < b.rule;
                     const std::string& ac = first_or_empty(a.cells);
                     const std::string& bc = first_or_empty(b.cells);
                     if (ac != bc) return ac < bc;
                     const std::string& an = first_or_empty(a.nets);
                     const std::string& bn = first_or_empty(b.nets);
                     if (an != bn) return an < bn;
                     return a.message < b.message;
                   });
  for (Diagnostic& diag : report.diags) {
    diag.waived = options.waivers.matches(diag);
    if (diag.waived) {
      ++report.waived;
      continue;
    }
    ++report.count_by_rule[static_cast<int>(diag.rule)];
    switch (diag.severity) {
      case Severity::kError: ++report.errors; break;
      case Severity::kWarning: ++report.warnings; break;
      case Severity::kInfo: ++report.infos; break;
    }
  }
  return report;
}

void CheckReport::merge(CheckReport other) {
  if (design.empty()) design = std::move(other.design);
  diags.insert(diags.end(), std::make_move_iterator(other.diags.begin()),
               std::make_move_iterator(other.diags.end()));
  errors += other.errors;
  warnings += other.warnings;
  infos += other.infos;
  waived += other.waived;
  for (int i = 0; i < kNumRules; ++i) {
    count_by_rule[i] += other.count_by_rule[i];
  }
}

std::string CheckReport::to_text() const {
  std::string out;
  for (const Diagnostic& diag : diags) {
    out += diag.to_string();
    out += "\n";
  }
  out += cat(design, ": ", errors, " error(s), ", warnings, " warning(s), ",
             infos, " info(s), ", waived, " waived — ",
             clean() ? "clean" : "VIOLATIONS", "\n");
  return out;
}

std::string CheckReport::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("design").value(design);
  w.key("errors").value(errors);
  w.key("warnings").value(warnings);
  w.key("infos").value(infos);
  w.key("waived").value(waived);
  w.key("clean").value(clean());
  w.key("counts").begin_object();
  for (int i = 0; i < kNumRules; ++i) {
    if (count_by_rule[i] == 0) continue;
    w.key(rule_name(static_cast<RuleId>(i))).value(count_by_rule[i]);
  }
  w.end_object();
  w.key("diagnostics").begin_array();
  for (const Diagnostic& diag : diags) {
    w.begin_object();
    w.key("rule").value(rule_name(diag.rule));
    w.key("severity").value(severity_name(diag.severity));
    w.key("message").value(diag.message);
    write_json_names(w, "cells", diag.cells);
    write_json_names(w, "nets", diag.nets);
    w.key("hint").value(diag.hint);
    w.key("waived").value(diag.waived);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string CheckReport::to_baseline() const {
  std::string out = cat("# lint baseline for ", design, "\n");
  for (const Diagnostic& diag : diags) {
    if (diag.waived) continue;
    std::string target = "*";
    if (!diag.cells.empty()) {
      target = diag.cells.front();
    } else if (!diag.nets.empty()) {
      target = diag.nets.front();
    }
    out += cat(rule_name(diag.rule), " ", target, " baselined\n");
  }
  return out;
}

}  // namespace tp::check
