// Structural sanity rules: combinational cycles, floating nets, and
// multiply-driven nets. These run first conceptually — a netlist that fails
// them makes the graph-based phase rules bail out rather than crash.
#include "src/check/rules.hpp"
#include "src/util/strcat.hpp"

namespace tp::check {

void rule_comb_cycle(RuleContext& ctx) {
  if (!ctx.has_comb_cycle()) return;
  const Netlist& netlist = ctx.netlist();
  std::vector<std::string> cells;
  std::string path;
  for (const CellId id : ctx.comb_cycle_path()) {
    cells.push_back(netlist.cell(id).name);
    if (!path.empty()) path += " -> ";
    path += netlist.cell(id).name;
  }
  ctx.emit(RuleId::kCombCycle,
           cat("combinational cycle through ", cells.size(), " cell(s): ",
               path),
           std::move(cells), {},
           "break the loop with a register; transparent latches do not "
           "legalize combinational feedback");
}

void rule_floating_net(RuleContext& ctx) {
  const Netlist& netlist = ctx.netlist();
  for (std::uint32_t i = 0; i < netlist.num_nets(); ++i) {
    const Net& net = netlist.net(NetId{i});
    if (!net.alive || net.fanouts.empty()) continue;
    bool consumed = false;
    for (const PinRef& ref : net.fanouts) {
      if (netlist.cell(ref.cell).alive) {
        consumed = true;
        break;
      }
    }
    if (!consumed) continue;
    if (net.driver.valid() && netlist.cell(net.driver).alive) continue;
    ctx.emit(RuleId::kFloatingNet,
             cat("net '", net.name, "' has ", net.fanouts.size(),
                 " consumer pin(s) but no live driver"),
             {}, {net.name}, "drive the net or disconnect its consumers");
  }
}

void rule_multiple_drivers(RuleContext& ctx) {
  const Netlist& netlist = ctx.netlist();
  // The construction API prevents this, so findings here mean a corrupted
  // netlist (e.g. hand-edited import); still worth a cheap O(cells) sweep.
  std::vector<CellId> first_driver(netlist.num_nets());
  for (const CellId id : netlist.live_cells()) {
    const Cell& cell = netlist.cell(id);
    if (!cell.out.valid()) continue;
    CellId& slot = first_driver[cell.out.value()];
    if (!slot.valid()) {
      slot = id;
      continue;
    }
    ctx.emit(RuleId::kMultipleDrivers,
             cat("net '", netlist.net(cell.out).name, "' is driven by both '",
                 netlist.cell(slot).name, "' and '", cell.name, "'"),
             {netlist.cell(slot).name, cell.name},
             {netlist.net(cell.out).name},
             "give each driver its own net and mux explicitly");
  }
}

}  // namespace tp::check
