// Internal rule machinery: the shared analysis context every rule runs
// against, plus the per-rule entry points implemented in rules_clock.cpp,
// rules_phase.cpp, and rules_structure.cpp.
//
// RuleContext lazily builds the analyses several rules share — backward
// clock-pin traces, the register adjacency graph, ICG enable cones — so a
// full run_checks() pass stays near-linear in netlist size.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/check/checker.hpp"
#include "src/netlist/traverse.hpp"

namespace tp::check {

/// Transparency / clock-high intervals inside one cycle: up to two
/// half-open [lo, hi) spans (a transparent-low latch window wraps the cycle
/// boundary and needs both).
struct WindowSet {
  int n = 0;
  std::array<std::array<std::int64_t, 2>, 2> span{};

  void add(std::int64_t lo, std::int64_t hi) {
    if (lo >= hi) return;
    if (n >= static_cast<int>(span.size())) return;  // capacity 2: drop extras
    span[n][0] = lo;
    span[n][1] = hi;
    ++n;
  }
  [[nodiscard]] bool empty() const { return n == 0; }
};

/// True when any span of `a` intersects any span of `b`.
bool windows_overlap(const WindowSet& a, const WindowSet& b);

/// The high window of `phase` (possibly complemented for inverted clock
/// paths); empty when the clock plan has no such phase.
WindowSet phase_high_window(const ClockSpec& clocks, Phase phase,
                            bool inverted);

/// What a backward walk from a clock pin reaches.
enum class ClockTraceKind {
  kPhaseRoot,  // exactly one phase root (the only legal outcome)
  kConstant,   // kConst0/kConst1
  kFloating,   // an undriven net
  kData,       // data logic, a non-root input, or a clock-net cycle
};

struct ClockTrace {
  ClockTraceKind kind = ClockTraceKind::kData;
  Phase phase = Phase::kNone;  // for kPhaseRoot
  bool inverted = false;       // odd number of kClkInv on the path
  bool constant_value = false; // for kConstant
};

class RuleContext {
 public:
  RuleContext(const Netlist& netlist, const CheckOptions& options);

  [[nodiscard]] const Netlist& netlist() const { return netlist_; }
  [[nodiscard]] const CheckOptions& options() const { return options_; }

  /// Appends a diagnostic under `rule` with the registry severity.
  void emit(RuleId rule, std::string message,
            std::vector<std::string> cells = {},
            std::vector<std::string> nets = {}, std::string hint = {});
  /// Same, with an explicit severity (schedule-sanity demotes the C3
  /// half-stage bound to a warning).
  void emit(RuleId rule, Severity severity, std::string message,
            std::vector<std::string> cells, std::vector<std::string> nets,
            std::string hint);

  /// Backward walk from a clock-pin net to its root; memoized per net.
  const ClockTrace& clock_trace(NetId net);

  /// True when the netlist has a combinational cycle (memoized). Rules that
  /// need the register graph must bail out via register_graph() == nullptr
  /// instead of tripping the graph builder.
  bool has_comb_cycle();

  /// One witness cycle (cells in path order) when has_comb_cycle().
  [[nodiscard]] const std::vector<CellId>& comb_cycle_path() const {
    return comb_cycle_path_;
  }

  /// Register adjacency graph, or nullptr when a combinational cycle makes
  /// it unbuildable (the comb-cycle rule reports the cycle itself).
  const RegisterGraph* register_graph();

  /// Combinational fan-in sources (registers and data PIs) of every ICG's
  /// enable pin, keyed by ICG cell id.
  const std::unordered_map<std::uint32_t, std::vector<CellId>>&
  enable_sources();

  /// Transparency window of register `reg` under the current clock plan:
  /// empty for edge-sampling kinds, the (possibly inverted) traced phase
  /// window for level-sensitive latches.
  WindowSet latch_window(CellId reg);

  /// Registers whose clock pins are reached forward from `net` through the
  /// clock network (clock buffers/inverters and ICG clock pins).
  std::vector<CellId> clock_sinks(NetId net);

  [[nodiscard]] std::vector<Diagnostic> take() { return std::move(diags_); }

 private:
  const Netlist& netlist_;
  const CheckOptions& options_;
  std::vector<Diagnostic> diags_;
  std::unordered_map<std::uint32_t, ClockTrace> trace_memo_;
  std::vector<std::uint32_t> trace_stack_;  // cycle guard for the walk
  bool comb_cycle_known_ = false;
  bool comb_cycle_ = false;
  std::vector<CellId> comb_cycle_path_;
  bool graph_built_ = false;
  RegisterGraph graph_;
  bool enable_sources_built_ = false;
  std::unordered_map<std::uint32_t, std::vector<CellId>> enable_sources_;
};

// Rule entry points (rules_clock.cpp).
void rule_clock_reachability(RuleContext& ctx);
void rule_mixed_phase_icg(RuleContext& ctx);
void rule_constant_clock(RuleContext& ctx);
void rule_ddcg_fanout(RuleContext& ctx);
void rule_m1_borrow_window(RuleContext& ctx);
void rule_m2_enable_phase(RuleContext& ctx);

// Rule entry points (rules_phase.cpp).
void rule_transparency_race(RuleContext& ctx);
void rule_phase_order(RuleContext& ctx);
void rule_latch_self_loop(RuleContext& ctx);
void rule_schedule_sanity(RuleContext& ctx);

// Rule entry points (rules_backend.cpp).
void rule_two_phase_nonoverlap(RuleContext& ctx);
void rule_pulse_width(RuleContext& ctx);
void rule_det_clocking(RuleContext& ctx);

// Rule entry points (rules_structure.cpp).
void rule_comb_cycle(RuleContext& ctx);
void rule_floating_net(RuleContext& ctx);
void rule_multiple_drivers(RuleContext& ctx);

}  // namespace tp::check
