// Waiver / baseline files: known-benign findings that must not fail CI.
//
// A waiver file is line-oriented text:
//
//     # comment
//     <rule-name|*> <name-glob> [free-form reason...]
//
// A diagnostic is waived when a line's rule matches the diagnostic's rule
// (or is "*") and the glob matches any of the diagnostic's cell names, net
// names, or — when it lists neither — the message. Globs support '*' and
// '?'. CheckReport::to_baseline() emits this format for every live finding,
// so a baseline is just a generated waiver file.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/check/diagnostic.hpp"

namespace tp::check {

/// Matches `pattern` (with '*' and '?' wildcards) against all of `text`.
bool glob_match(std::string_view pattern, std::string_view text);

struct Waiver {
  bool any_rule = false;  // rule field was "*"
  RuleId rule = RuleId::kClockReachability;
  std::string target;  // glob over cell/net names
  std::string reason;

  [[nodiscard]] bool matches(const Diagnostic& diag) const;
};

class WaiverSet {
 public:
  /// Parses waiver lines; throws tp::Error on a malformed line or an
  /// unknown rule name (typos in waiver files must not silently un-waive).
  static WaiverSet parse(std::istream& in);
  static WaiverSet parse_file(const std::string& path);

  void add(Waiver waiver) { waivers_.push_back(std::move(waiver)); }

  [[nodiscard]] bool matches(const Diagnostic& diag) const;
  [[nodiscard]] bool empty() const { return waivers_.empty(); }
  [[nodiscard]] std::size_t size() const { return waivers_.size(); }
  [[nodiscard]] const std::vector<Waiver>& waivers() const {
    return waivers_;
  }

 private:
  std::vector<Waiver> waivers_;
};

}  // namespace tp::check
