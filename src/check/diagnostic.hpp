// Structured diagnostics for the static phase-rule checker.
//
// Every finding carries a rule id (stable, kebab-case name used in waiver
// files and JSON output), a severity, the offending cell/net names, and a
// fix hint. Diagnostics reference names rather than ids so that waivers and
// baselines stay meaningful across transform stages that renumber cells.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tp::check {

enum class Severity : int { kInfo, kWarning, kError };

std::string_view severity_name(Severity severity);

/// Rule identifiers, one per phase-legality check. The numeric order is the
/// report order; rule_name() gives the stable external name.
enum class RuleId : int {
  kClockReachability,  // clock pins trace to exactly one phase root
  kMixedPhaseIcg,      // ICG fanout spans two phases (missed duplication)
  kConstantClock,      // clock pin tied to a constant
  kTransparencyRace,   // C2: adjacent latches simultaneously transparent
  kPhaseOrder,         // C1: single-latch / back-to-back structural audit
  kLatchSelfLoop,      // latch feedback bypassing the inserted p2 latch
  kCombCycle,          // combinational cycle
  kFloatingNet,        // net with consumers but no driver
  kMultipleDrivers,    // net driven by more than one live cell
  kDdcgFanout,         // multi-bit DDCG group wider than the fanout cap
  kM1BorrowWindow,     // M1 borrow phase overlaps the gated phase
  kM2EnablePhase,      // M2 cell with a same-phase enable source
  kScheduleSanity,     // C3 / SMO closing-edge and window sanity
  // Backend-discipline rules (rules_backend.cpp). Each gates itself on the
  // netlist properties its discipline introduces (clkbar waveform, pulsed
  // latches, DET flip-flops), so running the full registry on any backend
  // stays cheap and quiet.
  kTwoPhaseNonOverlap, // 2-phase: guard gap between the clk/clkbar windows
  kPulseWidth,         // pulsed-latch: pulse no wider than half the cycle
  kDetClocking,        // DET FFs clocked through a leaf divide-by-two
  // Dataflow analyses (src/analysis/). They share the diagnostic, waiver,
  // and report machinery but are driven by analysis::run_analysis() rather
  // than run_checks(): run_checks() has no entry point for them.
  kXProp,              // A1: X escapes the post-reset state to a reg/output
  kMinDelayRace,       // A2: min path delay inside an overlapped window
  kBorrowChain,        // A3: cumulative time borrowing past the budget
  // Domain-level analyses (src/analysis/domains.cpp). They consume the
  // clock/reset-domain labels inferred by analysis::infer_domains() and so
  // also live on the run_analysis() side of the registry.
  kCdcUnsync,          // A4: unsynchronized clock-domain data crossing
  kCdcReconverge,      // A5: two synchronized crossings reconverge
  kRdcCrossing,        // A6: reset-domain crossing released out of order
};

inline constexpr int kNumRules = static_cast<int>(RuleId::kRdcCrossing) + 1;

/// True for the analysis-engine rules (A1/A2/A3) that run_checks() cannot
/// evaluate; analysis::run_analysis() owns them.
[[nodiscard]] constexpr bool rule_is_analysis(RuleId rule) {
  return rule >= RuleId::kXProp;
}

/// Stable external rule name ("transparency-race", ...).
std::string_view rule_name(RuleId rule);

/// Paper constraint or section the rule encodes ("C2 (Sec. II)", ...).
std::string_view rule_paper_ref(RuleId rule);

/// One-line description for --list-rules and the docs.
std::string_view rule_summary(RuleId rule);

/// Default severity of the rule's findings.
Severity rule_severity(RuleId rule);

/// Inverse of rule_name(); returns false for unknown names.
bool rule_from_name(std::string_view name, RuleId* rule);

struct Diagnostic {
  RuleId rule = RuleId::kClockReachability;
  Severity severity = Severity::kError;
  std::string message;
  std::vector<std::string> cells;  // offending cell names (may be empty)
  std::vector<std::string> nets;   // offending net names (may be empty)
  std::string hint;                // how to fix
  bool waived = false;

  /// "error[transparency-race] ... (cells: a, b) hint: ... {C2 (Sec. II)}"
  [[nodiscard]] std::string to_string() const;
};

}  // namespace tp::check
