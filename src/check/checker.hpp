// Static phase-rule checker (netlist lint).
//
// run_checks() evaluates every registered phase-legality rule on a netlist
// in O(|netlist|)-ish time and returns structured diagnostics — the static
// complement of the SEC subsystem (src/equiv/): SEC proves functional
// equivalence but cannot flag timing-race or clock-legality defects that
// happen to preserve the sampled behavior; the lint rules encode the
// paper's structural invariants (C1/C2/C3, ICG duplication, the DDCG
// fanout cap, M1/M2 legality) directly, so they catch those defects after
// every transform stage and are cheap enough for CI and fuzzing.
//
// The rule catalog lives in rule_registry(); docs/lint.md cross-references
// each rule with the paper constraint it enforces.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "src/check/diagnostic.hpp"
#include "src/check/waiver.hpp"
#include "src/netlist/netlist.hpp"

namespace tp::check {

struct CheckOptions {
  /// Maximum registers per data-driven clock-gating group (the paper's
  /// multi-bit DDCG cap). run_flow() raises this to its DdcgOptions value
  /// when the flow is configured with a larger cap.
  int ddcg_max_fanout = 32;
  /// Rules to skip entirely (no diagnostics, counted as not run).
  std::vector<RuleId> disabled;
  /// Known-benign findings; matching diagnostics are kept but marked
  /// waived and excluded from the severity counts and clean().
  WaiverSet waivers;
};

struct CheckReport {
  std::string design;  // netlist name at check time
  std::vector<Diagnostic> diags;

  // Severity counts over unwaived diagnostics.
  int errors = 0;
  int warnings = 0;
  int infos = 0;
  int waived = 0;

  /// Unwaived finding count per rule.
  std::array<int, kNumRules> count_by_rule{};

  [[nodiscard]] int count(RuleId rule) const {
    return count_by_rule[static_cast<int>(rule)];
  }
  /// No unwaived errors or warnings (infos never fail a run).
  [[nodiscard]] bool clean() const { return errors == 0 && warnings == 0; }

  /// Multi-line human-readable report (diagnostics + summary line).
  [[nodiscard]] std::string to_text() const;
  /// Single JSON object: counts per rule plus the diagnostic list.
  [[nodiscard]] std::string to_json() const;
  /// Waiver lines covering every live finding (see waiver.hpp).
  [[nodiscard]] std::string to_baseline() const;

  /// Folds `other`'s diagnostics and counts into this report (used to
  /// combine a run_checks() pass with an analysis::run_analysis() pass).
  void merge(CheckReport other);
};

/// One registry entry per rule; the registry drives run_checks(),
/// `lint_cli --list-rules`, and the docs.
struct RuleSpec {
  RuleId id;
  std::string_view name;
  std::string_view paper_ref;
  std::string_view summary;
  Severity severity;
};

const std::vector<RuleSpec>& rule_registry();

/// Runs every enabled rule on `netlist`. The netlist must satisfy
/// Netlist::validate(); the checker never mutates it. The analysis-engine
/// rules (rule_is_analysis()) are registry entries only here — evaluate
/// them through analysis::run_analysis().
CheckReport run_checks(const Netlist& netlist,
                       const CheckOptions& options = {});

/// Assembles a CheckReport from raw diagnostics: applies `options.waivers`
/// and computes the severity / per-rule counts. Shared by run_checks() and
/// analysis::run_analysis().
CheckReport finalize_report(const Netlist& netlist,
                            std::vector<Diagnostic> diags,
                            const CheckOptions& options);

}  // namespace tp::check
