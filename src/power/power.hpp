// Activity-based power estimation with the paper's reporting groups.
//
// Table II decomposes power into Clock (clock network: trees, ICGs, clock
// nets, register clock pins and clock-pin-induced register internal power),
// Seq (register data-path internal + register output nets), and Comb
// (everything else). Each live cell's internal energy, its
// output-net switching energy, and its leakage are attributed to the group
// of the driving cell:
//   clock cells / clock nets -> Clock
//   registers                -> Seq (internal clocking energy included)
//   combinational / PI nets  -> Comb
//
// Energies integrate simulator toggle counts: P[mW] = E[fJ/cycle] / Tc[ps].
// When a Placement is supplied, net capacitance uses half-perimeter
// wirelength; otherwise the library's default per-fanout wire cap. When a
// ClockTreeReport is supplied, each clock net additionally carries its tree
// wire capacitance and buffers (cap + internal energy at the net's measured
// toggle rate, so gated subtrees pay only when they actually pulse).
#pragma once

#include "src/cts/cts.hpp"
#include "src/library/cell_library.hpp"
#include "src/sim/simulator.hpp"

namespace tp {

struct PowerBreakdown {
  double clock_mw = 0;
  double seq_mw = 0;
  double comb_mw = 0;
  double leakage_mw = 0;  // informational; already included in the groups

  [[nodiscard]] double total_mw() const {
    return clock_mw + seq_mw + comb_mw;
  }
};

PowerBreakdown compute_power(const Netlist& netlist,
                             const CellLibrary& library,
                             const ActivityStats& activity,
                             const Placement* placement = nullptr,
                             const ClockTreeReport* clock_tree = nullptr);

}  // namespace tp
