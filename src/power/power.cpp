#include "src/power/power.hpp"

namespace tp {
namespace {

enum class Group { kClock, kSeq, kComb };

Group group_of(const Netlist& netlist, const Cell& cell) {
  if (is_clock_cell(cell.kind)) return Group::kClock;
  if (cell.kind == CellKind::kInput &&
      netlist.net(cell.out).is_clock) {
    return Group::kClock;
  }
  if (is_register(cell.kind)) return Group::kSeq;
  return Group::kComb;
}

}  // namespace

PowerBreakdown compute_power(const Netlist& netlist,
                             const CellLibrary& library,
                             const ActivityStats& activity,
                             const Placement* placement,
                             const ClockTreeReport* clock_tree) {
  PowerBreakdown breakdown;
  require(activity.cycles > 0, "compute_power: no simulated cycles");
  const auto period = static_cast<double>(netlist.clocks().period_ps);
  require(period > 0, "compute_power: no clock period");
  const CellParams& clkbuf = library.params(CellKind::kClkBuf);

  double energy[3] = {0, 0, 0};   // fJ per cycle, per group
  double leakage_nw = 0;

  for (const CellId id : netlist.live_cells()) {
    const Cell& cell = netlist.cell(id);
    const CellParams& p = library.params(cell.kind);
    const Group group = group_of(netlist, cell);
    auto& e = energy[static_cast<int>(group)];

    leakage_nw += p.leakage_nw;
    // Leakage enters its group as power directly (converted below); track
    // per group via energy-equivalent: P[mW] = nW * 1e-6.
    const double leak_mw = p.leakage_nw * 1e-6;
    switch (group) {
      case Group::kClock: breakdown.clock_mw += leak_mw; break;
      case Group::kSeq: breakdown.seq_mw += leak_mw; break;
      case Group::kComb: breakdown.comb_mw += leak_mw; break;
    }

    if (!cell.out.valid()) continue;
    const double out_rate = activity.toggle_rate(cell.out);

    // Internal switching energy per output toggle.
    e += p.switch_energy_fj * out_rate;

    // Clocked-cell internal energy per clock-pin edge. Like commercial
    // power reports, the clock-pin-induced internal power of registers is
    // part of the clock network group — it is the component the latch
    // conversion attacks directly (smaller latch clock energy).
    const int ck_pin = clock_pin(cell.kind);
    if (ck_pin >= 0 && p.clock_energy_fj > 0) {
      energy[static_cast<int>(Group::kClock)] +=
          p.clock_energy_fj *
          activity.toggle_rate(cell.ins[static_cast<std::size_t>(ck_pin)]);
    }

    // Output-net switching: pins + wire (+ clock-tree augmentation).
    double cap = placement
                     ? placement->net_cap_ff(netlist, library, cell.out)
                     : library.net_load_ff(netlist, cell.out);
    if (clock_tree && netlist.net(cell.out).is_clock) {
      const std::uint32_t n = cell.out.value();
      cap += clock_tree->wire_of_net[n] * library.wire_cap_per_um_ff() +
             clock_tree->buffers_of_net[n] * clkbuf.input_cap_ff;
      // Tree buffers toggle with the net: internal energy + leakage.
      energy[static_cast<int>(Group::kClock)] +=
          clock_tree->buffers_of_net[n] * clkbuf.switch_energy_fj * out_rate;
      breakdown.clock_mw +=
          clock_tree->buffers_of_net[n] * clkbuf.leakage_nw * 1e-6;
    }
    e += library.net_switch_energy_fj(cap) * out_rate;
  }

  breakdown.clock_mw += energy[static_cast<int>(Group::kClock)] / period;
  breakdown.seq_mw += energy[static_cast<int>(Group::kSeq)] / period;
  breakdown.comb_mw += energy[static_cast<int>(Group::kComb)] / period;
  breakdown.leakage_mw = leakage_nw * 1e-6;
  return breakdown;
}

}  // namespace tp
