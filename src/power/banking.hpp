// Multi-bit register banking analysis (the paper's Sec. IV-D closing
// remark: coupling multi-bit registers with multi-bit clock gating "may
// yield more power savings [25], but this is outside the scope of this
// paper"). This module quantifies that future work without rebuilding the
// netlist: latches that share a clock (or gated-clock) net and sit close
// together in the placement are grouped into 2/4/8-bit banks, and the
// clock-power delta is estimated from the library's multi-bit sharing
// model (one shared clock pin + per-bank internal clocking instead of
// per-bit).
#pragma once

#include <vector>

#include "src/place/placer.hpp"
#include "src/sim/simulator.hpp"

namespace tp {

struct BankingOptions {
  int max_bank_bits = 8;
  /// Maximum placement distance (um) between members of a bank.
  double cluster_radius_um = 12.0;
  /// Clock energy of an n-bit bank relative to n single cells: the shared
  /// local clock buffering amortizes, the storage energy does not.
  /// E_bank(n) = n * clock_energy * (shared_fraction + (1 - shared_fraction) / n)
  double shared_fraction = 0.55;
};

struct BankingReport {
  int candidate_latches = 0;  // latches on multi-sink clock nets
  int banked_latches = 0;     // latches placed into banks of >= 2 bits
  int banks = 0;
  std::vector<int> banks_by_size;  // index = bits, value = count
  double clock_power_before_mw = 0;  // register clocking energy, per-bit
  double clock_power_after_mw = 0;   // with banks sharing clock internals
  [[nodiscard]] double saving_pct() const {
    return clock_power_before_mw > 0
               ? 100.0 *
                     (clock_power_before_mw - clock_power_after_mw) /
                     clock_power_before_mw
               : 0.0;
  }
};

/// Analyzes the banking opportunity of a (typically converted) design.
/// `activity` supplies per-clock-net toggle rates so gated banks are
/// weighted by how often they actually pulse.
BankingReport analyze_banking(const Netlist& netlist,
                              const CellLibrary& library,
                              const Placement& placement,
                              const ActivityStats& activity,
                              const BankingOptions& options = {});

}  // namespace tp
