#include "src/power/banking.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace tp {

BankingReport analyze_banking(const Netlist& netlist,
                              const CellLibrary& library,
                              const Placement& placement,
                              const ActivityStats& activity,
                              const BankingOptions& options) {
  BankingReport report;
  report.banks_by_size.assign(
      static_cast<std::size_t>(options.max_bank_bits) + 1, 0);
  const auto period = static_cast<double>(netlist.clocks().period_ps);
  require(period > 0, "analyze_banking: no clock spec");

  // Group registers by clock net.
  std::map<std::uint32_t, std::vector<CellId>> by_clock;
  for (const CellId id : netlist.registers()) {
    const Cell& cell = netlist.cell(id);
    const int pin = clock_pin(cell.kind);
    by_clock[cell.ins[static_cast<std::size_t>(pin)].value()].push_back(id);
  }

  for (const auto& [clock_net, members] : by_clock) {
    if (members.size() < 2) continue;
    report.candidate_latches += static_cast<int>(members.size());
    const double edge_rate = activity.toggle_rate(NetId{clock_net});

    // Greedy spatial clustering in Morton-ish order: sort by (x + y) then
    // chain members within the cluster radius.
    std::vector<CellId> order = members;
    std::sort(order.begin(), order.end(), [&](CellId a, CellId b) {
      const auto& [ax, ay] = placement.pos[a.value()];
      const auto& [bx, by] = placement.pos[b.value()];
      return ax + ay < bx + by;
    });
    std::vector<CellId> bank;
    auto flush = [&]() {
      const int bits = static_cast<int>(bank.size());
      double before = 0;
      for (const CellId id : bank) {
        before += library.params(netlist.cell(id).kind).clock_energy_fj *
                  edge_rate;
      }
      report.clock_power_before_mw += before / period;
      if (bits >= 2) {
        const double shared =
            options.shared_fraction +
            (1.0 - options.shared_fraction) / static_cast<double>(bits);
        report.clock_power_after_mw += before * shared / period;
        report.banked_latches += bits;
        ++report.banks;
        ++report.banks_by_size[static_cast<std::size_t>(
            std::min(bits, options.max_bank_bits))];
      } else {
        report.clock_power_after_mw += before / period;
      }
      bank.clear();
    };
    for (const CellId id : order) {
      if (!bank.empty()) {
        const auto& [px, py] = placement.pos[bank.back().value()];
        const auto& [x, y] = placement.pos[id.value()];
        const double distance = std::hypot(x - px, y - py);
        if (static_cast<int>(bank.size()) >= options.max_bank_bits ||
            distance > options.cluster_radius_um) {
          flush();
        }
      }
      bank.push_back(id);
    }
    flush();
  }
  return report;
}

}  // namespace tp
